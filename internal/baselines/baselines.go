// Package baselines implements the comparison selectors of § IV-A:
// Random sampling, K-Means (k = b, selecting the pool points nearest the
// cluster centers), and Entropy (top-b predictive-entropy uncertainty
// sampling). These are the scalable-but-guarantee-free methods FIRAL is
// evaluated against.
package baselines

import (
	"repro/internal/kmeans"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

// Random picks b distinct pool indices uniformly at random.
func Random(n, b int, rng *rnd.Source) []int {
	if b > n {
		b = n
	}
	return rng.Choice(n, b)
}

// KMeans clusters the pool features into b clusters (k-means++ seeding,
// Lloyd iterations) and returns the pool point nearest each center.
func KMeans(poolX *mat.Dense, b int, rng *rnd.Source) []int {
	if b > poolX.Rows {
		b = poolX.Rows
	}
	res := kmeans.Run(poolX, b, rng, kmeans.Options{})
	return kmeans.NearestToCenters(poolX, res.Centers)
}

// Entropy returns the b pool points with the highest predictive entropy
// −Σ_c p(y=c|x) log p(y=c|x) under the current classifier probabilities
// (full softmax rows, n×c).
func Entropy(probs *mat.Dense, b int) []int {
	return topByScore(softmax.Entropy(probs), b)
}

// Margin returns the b pool points with the smallest margin between the
// top-two class probabilities — margin-based uncertainty sampling, a
// standard companion baseline to Entropy in active-learning libraries.
func Margin(probs *mat.Dense, b int) []int {
	n := probs.Rows
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		first, second := -1.0, -1.0
		for _, p := range probs.Row(i) {
			if p > first {
				first, second = p, first
			} else if p > second {
				second = p
			}
		}
		scores[i] = -(first - second) // smaller margin = higher score
	}
	return topByScore(scores, b)
}

// LeastConfidence returns the b pool points whose top class probability
// is smallest.
func LeastConfidence(probs *mat.Dense, b int) []int {
	n := probs.Rows
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		_, top := mat.MaxIdx(probs.Row(i))
		scores[i] = -top
	}
	return topByScore(scores, b)
}

// topByScore returns the indices of the b largest scores in descending
// score order, breaking ties by smaller index for determinism. It runs a
// bounded partial selection — a size-b min-heap over the pool, O(n log b)
// — instead of sorting all n indices to take the top b.
func topByScore(scores []float64, b int) []int {
	n := len(scores)
	if b > n {
		b = n
	}
	if b <= 0 {
		return nil
	}
	// worse reports whether index i ranks strictly below index j in the
	// output order (lower score, or equal score with larger index).
	worse := func(i, j int) bool {
		if scores[i] != scores[j] {
			return scores[i] < scores[j]
		}
		return i > j
	}
	// Min-heap of the b best seen so far; the root is the worst kept, so a
	// candidate enters only by beating it.
	heap := make([]int, 0, b)
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			least := i
			if l < len(heap) && worse(heap[l], heap[least]) {
				least = l
			}
			if r < len(heap) && worse(heap[r], heap[least]) {
				least = r
			}
			if least == i {
				return
			}
			heap[i], heap[least] = heap[least], heap[i]
			i = least
		}
	}
	for i := 0; i < n; i++ {
		if len(heap) < b {
			heap = append(heap, i)
			siftUp(len(heap) - 1)
		} else if worse(heap[0], i) {
			heap[0] = i
			siftDown(0)
		}
	}
	// Pop ascending (worst first) into the back of the result, yielding
	// descending rank order.
	out := make([]int, len(heap))
	for k := len(heap) - 1; k >= 0; k-- {
		out[k] = heap[0]
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}
