// Package baselines implements the comparison selectors of § IV-A:
// Random sampling, K-Means (k = b, selecting the pool points nearest the
// cluster centers), and Entropy (top-b predictive-entropy uncertainty
// sampling). These are the scalable-but-guarantee-free methods FIRAL is
// evaluated against.
package baselines

import (
	"sort"

	"repro/internal/kmeans"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

// Random picks b distinct pool indices uniformly at random.
func Random(n, b int, rng *rnd.Source) []int {
	if b > n {
		b = n
	}
	return rng.Choice(n, b)
}

// KMeans clusters the pool features into b clusters (k-means++ seeding,
// Lloyd iterations) and returns the pool point nearest each center.
func KMeans(poolX *mat.Dense, b int, rng *rnd.Source) []int {
	if b > poolX.Rows {
		b = poolX.Rows
	}
	res := kmeans.Run(poolX, b, rng, kmeans.Options{})
	return kmeans.NearestToCenters(poolX, res.Centers)
}

// Entropy returns the b pool points with the highest predictive entropy
// −Σ_c p(y=c|x) log p(y=c|x) under the current classifier probabilities
// (full softmax rows, n×c).
func Entropy(probs *mat.Dense, b int) []int {
	return topByScore(softmax.Entropy(probs), b)
}

// Margin returns the b pool points with the smallest margin between the
// top-two class probabilities — margin-based uncertainty sampling, a
// standard companion baseline to Entropy in active-learning libraries.
func Margin(probs *mat.Dense, b int) []int {
	n := probs.Rows
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		first, second := -1.0, -1.0
		for _, p := range probs.Row(i) {
			if p > first {
				first, second = p, first
			} else if p > second {
				second = p
			}
		}
		scores[i] = -(first - second) // smaller margin = higher score
	}
	return topByScore(scores, b)
}

// LeastConfidence returns the b pool points whose top class probability
// is smallest.
func LeastConfidence(probs *mat.Dense, b int) []int {
	n := probs.Rows
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		_, top := mat.MaxIdx(probs.Row(i))
		scores[i] = -top
	}
	return topByScore(scores, b)
}

// topByScore returns the indices of the b largest scores, breaking ties
// by index for determinism.
func topByScore(scores []float64, b int) []int {
	n := len(scores)
	if b > n {
		b = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		if scores[idx[a]] != scores[idx[c]] {
			return scores[idx[a]] > scores[idx[c]]
		}
		return idx[a] < idx[c]
	})
	return append([]int(nil), idx[:b]...)
}
