package baselines

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

func TestRandomDistinctWithinRange(t *testing.T) {
	rng := rnd.New(1)
	sel := Random(50, 10, rng)
	if len(sel) != 10 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[i] = true
	}
	// b > n clamps.
	if got := Random(3, 10, rng); len(got) != 3 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestKMeansSelectsSpreadPoints(t *testing.T) {
	// Two tight, far-apart clusters: selecting 2 points must take one from
	// each cluster.
	x := mat.NewDense(20, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 10+0.01*float64(i))
	}
	for i := 10; i < 20; i++ {
		x.Set(i, 0, -10-0.01*float64(i))
	}
	sel := KMeans(x, 2, rnd.New(2))
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	side0 := x.At(sel[0], 0) > 0
	side1 := x.At(sel[1], 0) > 0
	if side0 == side1 {
		t.Fatalf("both selections on the same cluster: %v", sel)
	}
}

func TestEntropyPicksMostUncertain(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.99, 0.005, 0.005}, // confident
		{0.34, 0.33, 0.33},   // most uncertain
		{0.8, 0.1, 0.1},
		{0.5, 0.4, 0.1},
	})
	sel := Entropy(probs, 2)
	if sel[0] != 1 {
		t.Fatalf("most uncertain not first: %v", sel)
	}
	if sel[1] != 3 {
		t.Fatalf("second most uncertain wrong: %v", sel)
	}
	// b > n clamps.
	if got := Entropy(probs, 10); len(got) != 4 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestMarginPicksSmallestGap(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.9, 0.05, 0.05},  // margin 0.85
		{0.45, 0.44, 0.11}, // margin 0.01 — most uncertain
		{0.6, 0.3, 0.1},    // margin 0.3
	})
	sel := Margin(probs, 2)
	if sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("margin selections %v", sel)
	}
}

func TestLeastConfidencePicksLowestTop(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.9, 0.1},
		{0.55, 0.45}, // lowest top probability
		{0.7, 0.3},
	})
	sel := LeastConfidence(probs, 1)
	if sel[0] != 1 {
		t.Fatalf("least-confidence selections %v", sel)
	}
	if got := LeastConfidence(probs, 99); len(got) != 3 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestEntropyDeterministicTies(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
		{0.5, 0.5},
	})
	a := Entropy(probs, 2)
	b := Entropy(probs, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("tie-breaking not deterministic: %v vs %v", a, b)
	}
	if a[0] != 0 || a[1] != 1 {
		t.Fatalf("expected index order on ties: %v", a)
	}
}
