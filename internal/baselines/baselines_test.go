package baselines

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

func TestRandomDistinctWithinRange(t *testing.T) {
	rng := rnd.New(1)
	sel := Random(50, 10, rng)
	if len(sel) != 10 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[i] = true
	}
	// b > n clamps.
	if got := Random(3, 10, rng); len(got) != 3 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestKMeansSelectsSpreadPoints(t *testing.T) {
	// Two tight, far-apart clusters: selecting 2 points must take one from
	// each cluster.
	x := mat.NewDense(20, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 10+0.01*float64(i))
	}
	for i := 10; i < 20; i++ {
		x.Set(i, 0, -10-0.01*float64(i))
	}
	sel := KMeans(x, 2, rnd.New(2))
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	side0 := x.At(sel[0], 0) > 0
	side1 := x.At(sel[1], 0) > 0
	if side0 == side1 {
		t.Fatalf("both selections on the same cluster: %v", sel)
	}
}

func TestEntropyPicksMostUncertain(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.99, 0.005, 0.005}, // confident
		{0.34, 0.33, 0.33},   // most uncertain
		{0.8, 0.1, 0.1},
		{0.5, 0.4, 0.1},
	})
	sel := Entropy(probs, 2)
	if sel[0] != 1 {
		t.Fatalf("most uncertain not first: %v", sel)
	}
	if sel[1] != 3 {
		t.Fatalf("second most uncertain wrong: %v", sel)
	}
	// b > n clamps.
	if got := Entropy(probs, 10); len(got) != 4 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestMarginPicksSmallestGap(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.9, 0.05, 0.05},  // margin 0.85
		{0.45, 0.44, 0.11}, // margin 0.01 — most uncertain
		{0.6, 0.3, 0.1},    // margin 0.3
	})
	sel := Margin(probs, 2)
	if sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("margin selections %v", sel)
	}
}

func TestLeastConfidencePicksLowestTop(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.9, 0.1},
		{0.55, 0.45}, // lowest top probability
		{0.7, 0.3},
	})
	sel := LeastConfidence(probs, 1)
	if sel[0] != 1 {
		t.Fatalf("least-confidence selections %v", sel)
	}
	if got := LeastConfidence(probs, 99); len(got) != 3 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

// refTopByScore is the full-sort reference the heap selection replaced.
func refTopByScore(scores []float64, b int) []int {
	n := len(scores)
	if b > n {
		b = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		if scores[idx[a]] != scores[idx[c]] {
			return scores[idx[a]] > scores[idx[c]]
		}
		return idx[a] < idx[c]
	})
	return idx[:b]
}

func TestTopByScoreMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		b := 1 + rng.Intn(n+5) // sometimes b > n
		scores := make([]float64, n)
		for i := range scores {
			// Few distinct values force heavy ties, including across the
			// b-boundary.
			scores[i] = float64(rng.Intn(5))
		}
		got := topByScore(scores, b)
		want := refTopByScore(scores, b)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d indices, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d b=%d): position %d: got %v want %v",
					trial, n, b, i, got, want)
			}
		}
	}
	if got := topByScore(nil, 3); len(got) != 0 {
		t.Fatalf("empty scores returned %v", got)
	}
	if got := topByScore([]float64{1, 2}, 0); len(got) != 0 {
		t.Fatalf("b=0 returned %v", got)
	}
}

func TestTopByScoreTieBreaksByIndex(t *testing.T) {
	// All-equal scores: the selection must be the first b indices in order,
	// exactly as the deterministic full sort produced.
	scores := []float64{7, 7, 7, 7, 7, 7}
	got := topByScore(scores, 3)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break regression: got %v want %v", got, want)
		}
	}
	// Tie across the cut boundary: score 5 at indices 1, 2, 4; b=2 must
	// keep indices 1 and 2 (descending score, then ascending index).
	scores = []float64{1, 5, 5, 0, 5}
	got = topByScore(scores, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("boundary tie-break: got %v want [1 2]", got)
	}
}

func TestEntropyDeterministicTies(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
		{0.5, 0.5},
	})
	a := Entropy(probs, 2)
	b := Entropy(probs, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("tie-breaking not deterministic: %v vs %v", a, b)
	}
	if a[0] != 0 || a[1] != 1 {
		t.Fatalf("expected index order on ties: %v", a)
	}
}
