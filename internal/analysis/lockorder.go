package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockOrder enforces the service layer's two documented ownership
// rules. It only fires in the internal/server package:
//
//   - Lock order is s.mu → sess.mu (server map lock strictly before any
//     session lock). Any function that acquires a Server mu while a
//     Session mu is held inverts the order and can deadlock against
//     the documented nesting. The check is a linear, source-order scan
//     per function body: conservative, but the server code takes both
//     locks in short straight-line critical sections by design.
//   - RoundMeta belongs to the round goroutine once the round is
//     enqueued; handlers read value snapshots. Mutating RoundMeta
//     fields is therefore confined to the owning files round.go and
//     server.go (where rounds are created and re-enqueued).
var LockOrder = &goanalysis.Analyzer{
	Name:     "lockorder",
	Doc:      "enforce s.mu → sess.mu lock order and RoundMeta ownership in internal/server",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runLockOrder,
}

// roundMetaOwners are the files allowed to mutate RoundMeta fields.
var roundMetaOwners = map[string]bool{"round.go": true, "server.go": true}

func runLockOrder(pass *goanalysis.Pass) (interface{}, error) {
	if !pkgPathIs(pass.Pkg.Path(), "internal/server") && pass.Pkg.Name() != "server" {
		return nil, nil
	}
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := fileAllows(pass)
	allowed := func(pos token.Pos, cat string) bool {
		return allows[enclosingFile(pass, pos)].allows(pass.Fset, pos, cat)
	}

	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch f := n.(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			checkLockOrderIn(pass, body, allowed)
		}
	})

	in.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.IncDecStmt)(nil)}, func(n ast.Node) {
		var lhs []ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			lhs = s.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{s.X}
		}
		for _, l := range lhs {
			sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
			if !ok || !isPtrToRoundMeta(pass, sel.X) {
				continue
			}
			file := filepath.Base(pass.Fset.Position(n.Pos()).Filename)
			if roundMetaOwners[file] || strings.HasSuffix(file, "_test.go") {
				continue
			}
			if allowed(n.Pos(), "lockorder") {
				continue
			}
			pass.Reportf(n.Pos(),
				"RoundMeta.%s mutated in %s; the round goroutine owns RoundMeta after enqueue — mutate only in round.go/server.go, handlers take value snapshots",
				sel.Sel.Name, file)
		}
	})
	return nil, nil
}

// checkLockOrderIn scans one function body in source order, tracking
// (approximately) whether a Session mu is held, and reports Server mu
// acquisitions made while it is. Nested function literals run on their
// own goroutine or call schedule, so they are scanned separately and
// skipped here.
func checkLockOrderIn(pass *goanalysis.Pass, body *ast.BlockStmt, allowed func(token.Pos, string) bool) {
	sessHeld := false
	var sessPos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// `defer sess.mu.Unlock()` releases at return, not here:
			// it must not clear the held state for the scan.
			return false
		case *ast.CallExpr:
			recv, method := mutexCall(pass, n)
			switch {
			case recv == "Session" && method == "Lock":
				sessHeld, sessPos = true, n.Pos()
			case recv == "Session" && method == "Unlock":
				sessHeld = false
			case recv == "Server" && method == "Lock" && sessHeld:
				if !allowed(n.Pos(), "lockorder") {
					pass.Reportf(n.Pos(),
						"acquires s.mu while sess.mu is held (locked at line %d); the documented order is s.mu → sess.mu",
						pass.Fset.Position(sessPos).Line)
				}
			}
		}
		return true
	})
}

// isPtrToRoundMeta reports whether e is a *RoundMeta (or an explicit
// dereference of one). Mutating through the pointer touches the shared
// record the round goroutine owns; mutating a value copy (`c := *rm`)
// is local and fine — handlers build exactly such snapshots.
func isPtrToRoundMeta(pass *goanalysis.Pass, e ast.Expr) bool {
	if star, ok := ast.Unparen(e).(*ast.StarExpr); ok {
		e = star.X
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		return false
	}
	return namedTypeName(pass.TypesInfo, e) == "RoundMeta"
}

// mutexCall matches `<recv>.mu.Lock()` / `<recv>.mu.Unlock()` and
// returns the named type of recv ("Session", "Server", …) and the
// method name; otherwise ("", "").
func mutexCall(pass *goanalysis.Pass, call *ast.CallExpr) (recvType, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return "", ""
	}
	mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return "", ""
	}
	return namedTypeName(pass.TypesInfo, mu.X), sel.Sel.Name
}
