package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestCtxPoll(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), analysis.CtxPoll, "ctxpoll")
}
