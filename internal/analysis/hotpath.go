package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Hotpath enforces the Workspace zero-alloc contract on functions
// annotated //firal:hotpath: no make/new, no growing append, no map
// literals, no closure literals, no explicit interface-boxing
// conversions, no fmt calls outside return statements or panic
// arguments (both are cold exits by construction). Two idioms are
// exempt: the allocate-on-nil API convenience — `if dst == nil { dst =
// make(...) }` — because steady-state callers pass dst, and
// immediately-deferred cleanup literals — `defer func(){...}()` —
// which do not escape. Cold branches inside an annotated function opt
// out statement-by-statement with //firal:allow(alloc).
var Hotpath = &goanalysis.Analyzer{
	Name:     "hotpath",
	Doc:      "report allocation sources inside //firal:hotpath functions (Workspace zero-alloc contract)",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runHotpath,
}

func runHotpath(pass *goanalysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := fileAllows(pass)
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !isHotpath(fd) {
			return
		}
		w := &hotWalker{pass: pass, allow: allows[enclosingFile(pass, fd.Pos())]}
		w.walk(fd.Body)
	})
	return nil, nil
}

// hotWalker recursively checks one annotated function body, tracking
// cold-exit context (return statements, panic arguments), nil-guard
// context, and //firal:allow(alloc) regions.
type hotWalker struct {
	pass       *goanalysis.Pass
	allow      allowSet
	inColdExit bool
	nilGuard   types.Object // variable proven nil by the enclosing if
}

func (w *hotWalker) reportf(pos token.Pos, format string, args ...interface{}) {
	if w.allow.allows(w.pass.Fset, pos, "alloc") {
		return
	}
	w.pass.Reportf(pos, format, args...)
}

func (w *hotWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	if stmt, ok := n.(ast.Stmt); ok && w.allow.allows(w.pass.Fset, stmt.Pos(), "alloc") {
		return // the allow comment covers the whole statement subtree
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		// `defer func(){...}()` is the standard cleanup idiom; the
		// literal does not escape and is stack-allocated with open-coded
		// defers. Its body is still checked.
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			w.walk(lit.Body)
			for _, a := range n.Call.Args {
				w.walk(a)
			}
			return
		}
	case *ast.ReturnStmt:
		saved := w.inColdExit
		w.inColdExit = true
		for _, r := range n.Results {
			w.walk(r)
		}
		w.inColdExit = saved
		return
	case *ast.IfStmt:
		// `if x == nil { x = make(...) }` is the allocate-on-nil API
		// convenience: callers on the steady-state path pass x, so the
		// branch is cold. Record the guarded variable for the body.
		if obj := nilCheckedObj(w.pass, n.Cond); obj != nil {
			w.walk(n.Init)
			saved := w.nilGuard
			w.nilGuard = obj
			w.walk(n.Body)
			w.nilGuard = saved
			w.walk(n.Else) // guard does not hold in the else branch
			return
		}
	case *ast.AssignStmt:
		if w.nilGuard != nil && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && identObj(w.pass, id) == w.nilGuard {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isMakeOrNew(w.pass, call) {
					for _, a := range call.Args {
						w.walk(a)
					}
					return
				}
			}
		}
	case *ast.FuncLit:
		// Func literals handed to the parallel dispatchers are
		// pooledfork's finding, with a more specific message; every
		// other closure literal heap-allocates its capture environment
		// at each execution of this line.
		w.reportf(n.Pos(), "closure literal in //firal:hotpath function allocates per call; hoist it or use a pooled task record")
		return // one report per closure; don't cascade into its body
	case *ast.CompositeLit:
		if t := w.pass.TypesInfo.TypeOf(n); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				w.reportf(n.Pos(), "map literal in //firal:hotpath function allocates; hoist the map into reusable state")
			}
		}
	case *ast.CallExpr:
		if isBuiltin(w.pass, n, "panic") {
			// panic(fmt.Sprintf(...)) never returns: a cold exit like a
			// return statement, so its arguments may format.
			saved := w.inColdExit
			w.inColdExit = true
			for _, a := range n.Args {
				w.walk(a)
			}
			w.inColdExit = saved
			return
		}
		w.checkCall(n)
		if isParallelDispatch(w.pass, n) {
			// A func-literal argument here is pooledfork's finding,
			// with the task-record guidance; don't double-report it.
			w.walk(n.Fun)
			for _, a := range n.Args {
				if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					continue
				}
				w.walk(a)
			}
			return
		}
	}
	for _, c := range children(n) {
		w.walk(c)
	}
}

func (w *hotWalker) checkCall(call *ast.CallExpr) {
	info := w.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Builtins: make, new, append.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.reportf(call.Pos(), "make in //firal:hotpath function; draw scratch from the mat.Workspace arena instead")
			case "new":
				w.reportf(call.Pos(), "new in //firal:hotpath function; reuse pooled state instead")
			case "append":
				// append(dst[:0], …) and friends reuse dst's capacity —
				// the documented idiom for result slices — so only flag
				// appends whose base is not an explicit reslice.
				if len(call.Args) > 0 {
					if _, reslice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reslice {
						w.reportf(call.Pos(), "append may grow in //firal:hotpath function; reslice a reusable buffer (dst[:0]) or preallocate")
					}
				}
			}
			return
		}
	}

	// fmt calls: formatting allocates and takes arguments through
	// interfaces. `return fmt.Errorf(…)` and `panic(fmt.Sprintf(…))`
	// exit the function — cold paths by construction — so only in-flow
	// calls are reported.
	if f := calleeIn(w.pass, call, "fmt"); f != nil && !w.inColdExit {
		w.reportf(call.Pos(), "fmt.%s in //firal:hotpath function allocates; move formatting off the hot path", f.Name())
		return
	}

	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src != nil && types.IsInterface(dst) && !types.IsInterface(src) {
			if stv, ok := info.Types[call.Args[0]]; !ok || !stv.IsNil() {
				w.reportf(call.Pos(), "conversion to interface type %s boxes the value in //firal:hotpath function", dst.String())
			}
		}
	}
}

// nilCheckedObj matches `x == nil` / `nil == x` for a plain identifier
// x and returns x's object, else nil.
func nilCheckedObj(pass *goanalysis.Pass, cond ast.Expr) types.Object {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if tv, ok := pass.TypesInfo.Types[x]; ok && tv.IsNil() {
		x, y = y, x
	}
	if tv, ok := pass.TypesInfo.Types[y]; !ok || !tv.IsNil() {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	return identObj(pass, id)
}

// identObj returns the object an identifier uses or defines.
func identObj(pass *goanalysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *goanalysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isMakeOrNew reports whether call is the make or new builtin.
func isMakeOrNew(pass *goanalysis.Pass, call *ast.CallExpr) bool {
	return isBuiltin(pass, call, "make") || isBuiltin(pass, call, "new")
}

// children returns the direct child nodes of n in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
