package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// kernelPackages are the packages whose streaming-decode and CG
// iteration kernels dominate a loop's wall clock: a loop driving them
// from a context-taking function is exactly the loop the per-iteration
// cancellation contract (ARCHITECTURE.md, block-CG contract) is about.
var kernelPackages = []string{"internal/hessian", "internal/krylov", "internal/dataset"}

// kernelNames are the entry points that decode a pool block or advance
// a CG iterate.
var kernelNames = map[string]bool{
	// dataset.PoolSource / hessian.Pool streaming decode
	"ReadRows": true, "Block": true, "Stream": true,
	// hessian blocked engines (single- and multi-RHS)
	"MatVecWS": true, "QuadAccumWS": true, "BlockDiagSumInto": true,
	"MatVecBlockWS": true, "QuadAccumBlockWS": true, "BlockDiagAccumRange": true,
	// krylov solvers
	"Solve": true, "SolveInto": true, "SolveBlock": true,
	"SolveBlockInto": true, "SolveColumnsInto": true,
}

// CtxPoll enforces the per-iteration cancellation contract: a loop
// inside a function that takes a context.Context and whose body calls
// streaming decode or CG iteration kernels must poll the context —
// reference ctx in its body (ctx.Err(), ctx.Done(), or pass ctx to a
// callee that polls). A streamed million-row solve whose loop ignores
// ctx turns DELETE/shutdown into a multi-second hang.
var CtxPoll = &goanalysis.Analyzer{
	Name:     "ctxpoll",
	Doc:      "report kernel-driving loops in ctx-taking functions that never poll the context (per-iteration cancellation contract)",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runCtxPoll,
}

func runCtxPoll(pass *goanalysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := fileAllows(pass)
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		ctxObj := contextParam(pass, fd)
		if ctxObj == nil {
			return
		}
		allow := allows[enclosingFile(pass, fd.Pos())]
		checkLoops(pass, fd.Body, ctxObj, allow, false)
	})
	return nil, nil
}

// contextParam returns the object of the function's context.Context
// parameter, or nil. A parameter named _ cannot be polled, so it
// counts as absent only for the reference check, not for the report —
// a kernel loop under an ignored ctx is still a contract violation,
// reported against the loop.
func contextParam(pass *goanalysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() != "Context" || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			continue
		}
		for _, name := range field.Names {
			if def := pass.TypesInfo.Defs[name]; def != nil {
				return def
			}
		}
	}
	return nil
}

// checkLoops walks stmts looking for for/range loops. A loop that
// contains a kernel call but never references ctx — and has no
// enclosing loop that polls — is reported once, outermost first.
func checkLoops(pass *goanalysis.Pass, n ast.Node, ctxObj types.Object, allow allowSet, ancestorPolls bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c := c.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.ForStmt, *ast.RangeStmt:
			polls := referencesObj(pass, loopBody(c), ctxObj)
			if !polls && !ancestorPolls {
				if pos, kernel := kernelCallIn(pass, loopBody(c)); kernel != "" {
					if !allow.allows(pass.Fset, c.Pos(), "ctxpoll") && !allow.allows(pass.Fset, pos, "ctxpoll") {
						pass.Reportf(c.Pos(),
							"loop drives %s but never polls ctx; the cancellation contract requires a ctx check per iteration (ctx.Err() or pass ctx down)",
							kernel)
					}
					return false // one report covers the nested loops too
				}
			}
			checkLoops(pass, loopBody(c), ctxObj, allow, ancestorPolls || polls)
			return false
		}
		return true
	})
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// referencesObj reports whether the subtree mentions obj (including
// inside nested function literals: a closure capturing ctx — an
// OnIteration hook, say — still delegates cancellation).
func referencesObj(pass *goanalysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// kernelCallIn returns the position and display name of the first
// streaming/CG kernel call in the subtree, skipping nested function
// literals.
func kernelCallIn(pass *goanalysis.Pass, n ast.Node) (pos token.Pos, name string) {
	ast.Inspect(n, func(c ast.Node) bool {
		if name != "" {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, pkg := range kernelPackages {
			if f := calleeIn(pass, call, pkg); f != nil && kernelNames[f.Name()] {
				pos, name = call.Pos(), f.Pkg().Name()+"."+f.Name()
				return false
			}
		}
		return true
	})
	return pos, name
}
