package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVetCleanOnRealModule builds cmd/firal-vet and runs it as a
// vettool over the whole module: the dogfood gate. Every contract the
// suite enforces must hold on the code that defines it.
func TestVetCleanOnRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "firal-vet")

	build := exec.Command("go", "build", "-o", tool, "./cmd/firal-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/firal-vet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var buf bytes.Buffer
	vet.Stdout, vet.Stderr = &buf, &buf
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool=firal-vet ./... failed: %v\n%s", err, buf.String())
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
