// Package hotpath exercises the hotpath analyzer: every allocation
// construct inside a //firal:hotpath function, the return-statement fmt
// exemption, the reslice-append exemption, and //firal:allow(alloc)
// suppression.
package hotpath

import "fmt"

type state struct {
	buf   []float64
	cache map[string]int
}

// scores is a steady-state kernel.
//
//firal:hotpath
func (s *state) scores(x []float64) float64 {
	tmp := make([]float64, len(x)) // want "make in //firal:hotpath function"
	p := new(state)                // want "new in //firal:hotpath function"
	_ = p
	s.buf = append(s.buf, x...) // want "append may grow"
	sum := 0.0
	for _, v := range tmp {
		sum += v
	}
	return sum
}

//firal:hotpath
func grow(dst, src []float64) []float64 {
	dst = append(dst[:0], src...) // reslice reuses capacity: no finding
	return dst
}

//firal:hotpath
func lookup(k string) map[string]int {
	m := map[string]int{k: 1} // want "map literal in //firal:hotpath function"
	return m
}

//firal:hotpath
func closures(xs []float64) float64 {
	f := func(v float64) float64 { return v * v } // want "closure literal in //firal:hotpath function"
	return f(xs[0])
}

//firal:hotpath
func logging(x float64) error {
	fmt.Println("x =", x) // want `fmt.Println in //firal:hotpath function`
	if x < 0 {
		return fmt.Errorf("negative: %g", x) // cold error exit: no finding
	}
	return nil
}

//firal:hotpath
func boxing(x float64) interface{} {
	v := interface{}(x) // want "conversion to interface type interface{} boxes"
	return v
}

//firal:hotpath
func allowed(n int) []float64 {
	//firal:allow(alloc) — cold setup branch, sized once per session
	buf := make([]float64, n)
	tmp := make([]float64, n) //firal:allow(alloc) trailing form
	copy(buf, tmp)
	return buf
}

// nilGuarded uses the allocate-on-nil API convenience: steady-state
// callers pass dst, so the guarded make never runs hot.
//
//firal:hotpath
func nilGuarded(dst, src []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(src))
	} else if len(dst) != len(src) {
		panic(fmt.Sprintf("length mismatch: %d != %d", len(dst), len(src))) // cold exit: no finding
	}
	copy(dst, src)
	return dst
}

// nilGuardedOther allocates a DIFFERENT variable under the nil check:
// not the convenience idiom, still a finding.
//
//firal:hotpath
func nilGuardedOther(dst, src []float64) []float64 {
	if dst == nil {
		tmp := make([]float64, len(src)) // want "make in //firal:hotpath function"
		dst = tmp
	}
	copy(dst, src)
	return dst
}

// deferredCleanup: an immediately-deferred literal is the standard
// cleanup idiom and does not escape — but its body is still checked.
//
//firal:hotpath
func deferredCleanup(dst []float64) {
	defer func() {
		dst = append(dst, 0) // want "append may grow"
	}()
	defer func() { dst[0] = 0 }() // cleanup literal itself: no finding
}

// cold is NOT annotated: the same constructs are fine here.
func cold(n int) map[string]int {
	buf := make([]float64, n)
	_ = append(buf, 1)
	fmt.Println(n)
	return map[string]int{"n": n}
}
