// Package dataset is a fixture stub for repro/internal/dataset.
package dataset

type Matrix struct{ Rows, Cols int }

type PoolSource interface {
	NumRows() int
	Dim() int
	ReadRows(lo, hi int, dst *Matrix) error
}
