// handlers.go is NOT a RoundMeta owner: handlers must read value
// snapshots, never mutate through the shared pointer.
package server

func (sess *Session) handlerMutates(rm *RoundMeta) {
	rm.State = "cancelled" // want `RoundMeta\.State mutated in handlers\.go`
}

func (sess *Session) handlerAppends(rm *RoundMeta) {
	rm.Selected = append(rm.Selected, 7) // want `RoundMeta\.Selected mutated in handlers\.go`
}

// handlerSnapshot builds a value copy and mutates that: the by-design
// handler pattern, no finding.
func (sess *Session) handlerSnapshot(rm *RoundMeta) RoundMeta {
	c := *rm
	c.Selected = append([]int(nil), rm.Selected...)
	return c
}

func (sess *Session) handlerAllowed(rm *RoundMeta) {
	//firal:allow(lockorder) — pre-enqueue, handler still owns the record
	rm.State = "queued"
}
