// Package server is a miniature of the real internal/server layer:
// just enough Session/Server/RoundMeta structure to exercise the
// lockorder analyzer. This file is a RoundMeta owner (round.go).
package server

import "sync"

type RoundMeta struct {
	ID       int
	Selected []int
	State    string
}

type Session struct {
	mu     sync.Mutex
	rounds map[int]*RoundMeta
}

type Server struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// documentedOrder takes s.mu strictly before sess.mu: the contract.
func (s *Server) documentedOrder(id string) *Session {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess
}

// inverted acquires s.mu while sess.mu is held: deadlocks against the
// documented nesting.
func (s *Server) inverted(sess *Session, id string) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	s.mu.Lock() // want "acquires s.mu while sess.mu is held"
	delete(s.sessions, id)
	s.mu.Unlock()
}

// releasedFirst drops sess.mu before touching s.mu: fine.
func (s *Server) releasedFirst(sess *Session, id string) {
	sess.mu.Lock()
	n := len(sess.rounds)
	sess.mu.Unlock()
	s.mu.Lock()
	if n == 0 {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
}

// allowedInversion documents why the order is safe at this one site.
func (s *Server) allowedInversion(sess *Session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	//firal:allow(lockorder) — s is session-private here, no other holder
	s.mu.Lock()
	s.mu.Unlock()
}

// advance mutates RoundMeta from its owning file: no finding.
func (sess *Session) advance(rm *RoundMeta, idx int) {
	rm.Selected = append(rm.Selected, idx)
	rm.State = "running"
}
