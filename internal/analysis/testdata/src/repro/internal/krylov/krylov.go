// Package krylov is a fixture stub for repro/internal/krylov.
package krylov

import "context"

type Result struct{ Iterations int }

type Op func(dst, v []float64)

func Solve(ctx context.Context, op Op, b []float64) (Result, error) { return Result{}, nil }

func SolveBlockInto(ctx context.Context, op Op, b []float64) (Result, error) { return Result{}, nil }
