// Package hessian is a fixture stub for repro/internal/hessian.
package hessian

type Workspace struct{}

type Dense struct{ Rows, Cols int }

type Pool interface {
	N() int
	Block(ws *Workspace, lo, hi int) *Dense
	MatVecWS(ws *Workspace, dst, v, w []float64) []float64
}

func MatVecBlockWS(ws *Workspace, p Pool, dst, v *Dense, w []float64) {}

func QuadAccumBlockWS(ws *Workspace, p Pool, dst []float64, u, v *Dense, scale float64) {}
