// Package parallel is a fixture stub standing in for the real
// repro/internal/parallel: same names, no behavior. The analyzers match
// by package-path suffix, so fixtures importing this path exercise the
// same code paths as the real module.
package parallel

type Limit struct{ n int }

func AcquireLimit(n int) *Limit { return &Limit{n: n} }

func (l *Limit) Release() {}

func SetMaxWorkers(n int) int { return n }

func For(n int, fn func(i int)) {}

func ForChunk(n int, fn func(lo, hi int)) {}

func ForChunkMin(n, minPer int, fn func(lo, hi int)) {}

func Fork(n int, fn func(i int)) {}
