// Package ctxpoll exercises the ctxpoll analyzer: loops driving
// streaming-decode or CG kernels from context-taking functions.
package ctxpoll

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/krylov"
)

func noPoll(ctx context.Context, src dataset.PoolSource, dst *dataset.Matrix) error {
	for i := 0; i < 10; i++ { // want "loop drives dataset.ReadRows but never polls ctx"
		if err := src.ReadRows(i, i+1, dst); err != nil {
			return err
		}
	}
	return nil
}

func polls(ctx context.Context, src dataset.PoolSource, dst *dataset.Matrix) error {
	for i := 0; i < 10; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := src.ReadRows(i, i+1, dst); err != nil {
			return err
		}
	}
	return nil
}

// passesDown hands ctx to a callee inside the loop: the callee owns the
// per-iteration poll, so the loop is compliant.
func passesDown(ctx context.Context, src dataset.PoolSource, dst *dataset.Matrix) error {
	for i := 0; i < 10; i++ {
		if err := step(ctx, src, dst); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context, src dataset.PoolSource, dst *dataset.Matrix) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return src.ReadRows(0, 1, dst)
}

// outerPollInnerKernel: the enclosing loop polls, so the inner kernel
// loop inherits the per-round cadence.
func outerPollInnerKernel(ctx context.Context, src dataset.PoolSource, dst *dataset.Matrix) error {
	for round := 0; round < 3; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if err := src.ReadRows(i, i+1, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// solveLoop launders the incoming ctx away with Background(): the loop
// body never references the parameter, so the contract still fires.
func solveLoop(ctx context.Context, op krylov.Op, b []float64) {
	for i := 0; i < 5; i++ { // want "loop drives krylov.Solve but never polls ctx"
		krylov.Solve(context.Background(), op, b)
	}
}

// solvePassesCtx forwards ctx into the solver each iteration: the
// solver owns the poll.
func solvePassesCtx(ctx context.Context, op krylov.Op, b []float64) {
	for i := 0; i < 5; i++ {
		krylov.Solve(ctx, op, b)
	}
}

// rangeNoPoll: range loops are checked the same as for loops.
func rangeNoPoll(ctx context.Context, src dataset.PoolSource, dsts []*dataset.Matrix) {
	for _, dst := range dsts { // want "loop drives dataset.ReadRows but never polls ctx"
		_ = src.ReadRows(0, 1, dst)
	}
}

// noCtx has no context parameter: nothing to poll, out of scope.
func noCtx(src dataset.PoolSource, dst *dataset.Matrix) {
	for i := 0; i < 10; i++ {
		_ = src.ReadRows(i, i+1, dst)
	}
}

// nonKernelLoop never touches a kernel: free to ignore ctx.
func nonKernelLoop(ctx context.Context, xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func allowedLoop(ctx context.Context, src dataset.PoolSource, dst *dataset.Matrix) {
	//firal:allow(ctxpoll) — bounded 3-block warmup, sub-millisecond
	for i := 0; i < 3; i++ {
		_ = src.ReadRows(i, i+1, dst)
	}
}
