// Package sentinelerr exercises the sentinelerr analyzer: identity
// comparison and switch dispatch on package-level Err* sentinels.
package sentinelerr

import "errors"

var ErrResidentPool = errors.New("exact FIRAL requires a resident pool")
var ErrSaturated = errors.New("all round slots busy")
var errInternal = errors.New("unexported") // lowercase: not a sentinel by the Err* rule

func bad(err error) bool {
	return err == ErrResidentPool // want "comparison with sentinel error ErrResidentPool"
}

func badNeq(err error) bool {
	return err != ErrSaturated // want "comparison with sentinel error ErrSaturated"
}

func badSwitch(err error) string {
	switch err {
	case ErrResidentPool: // want "comparison with sentinel error ErrResidentPool"
		return "resident"
	case nil:
		return "ok"
	}
	return "other"
}

func good(err error) bool {
	return errors.Is(err, ErrResidentPool)
}

func nilCheck(err error) bool {
	return err == nil || err != nil
}

func unexported(err error) bool {
	return err == errInternal // lowercase name: out of contract scope
}

func localShadow() bool {
	ErrLocal := errors.New("local")
	var err error
	return err == ErrLocal // local variable, not a package sentinel
}

func allowed(err error) bool {
	//firal:allow(sentinel) — identity intentionally exact here
	return err == ErrSaturated
}
