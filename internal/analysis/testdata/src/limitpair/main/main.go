// Package main: process entry points own process-wide knobs, so
// SetMaxWorkers is allowed here.
package main

import "repro/internal/parallel"

func main() {
	prev := parallel.SetMaxWorkers(4) // no finding in package main
	defer parallel.SetMaxWorkers(prev)
}
