// Package limitpair exercises the limitpair analyzer: Release pairing
// for parallel.AcquireLimit on every control-flow path, and the
// SetMaxWorkers confinement.
package limitpair

import "repro/internal/parallel"

func deferred(workers int) {
	lim := parallel.AcquireLimit(workers)
	defer lim.Release()
}

func deferredInBranch(workers int) {
	if workers > 0 {
		lim := parallel.AcquireLimit(workers)
		defer lim.Release()
	}
}

func discarded(workers int) {
	parallel.AcquireLimit(workers) // want "result of parallel.AcquireLimit discarded"
}

func blanked(workers int) {
	_ = parallel.AcquireLimit(workers) // want "result of parallel.AcquireLimit discarded"
}

func neverReleased(workers int) {
	lim := parallel.AcquireLimit(workers) // want "no dominating `defer lim.Release\\(\\)`"
	_ = lim
}

func releasedOnAllPaths(workers int, early bool) {
	lim := parallel.AcquireLimit(workers)
	if early {
		lim.Release()
		return
	}
	work()
	lim.Release()
}

func missesOnePath(workers int, early bool) {
	lim := parallel.AcquireLimit(workers) // want "a path reaching the function exit"
	if early {
		return
	}
	lim.Release()
}

func missesLoopBreak(workers int, n int) {
	lim := parallel.AcquireLimit(workers) // want "a path reaching the function exit"
	for i := 0; i < n; i++ {
		if i == 3 {
			return
		}
	}
	lim.Release()
}

// transferred hands the Limit to another owner: pairing is checked at
// the receiving site, not here.
func transferred(workers int) {
	lim := parallel.AcquireLimit(workers)
	keep(lim)
}

// releasedInClosure captures the Limit in a goroutine closure that owns
// the release.
func releasedInClosure(workers int, done chan struct{}) {
	lim := parallel.AcquireLimit(workers)
	go func() {
		<-done
		lim.Release()
	}()
}

func allowedLeak(workers int) {
	//firal:allow(limit) — process-lifetime limit, released at exit elsewhere
	lim := parallel.AcquireLimit(workers)
	_ = lim
}

func setMaxOutsideMain() {
	parallel.SetMaxWorkers(4) // want "SetMaxWorkers is process-wide"
}

func allowedSetMax() {
	parallel.SetMaxWorkers(4) //firal:allow(limit) single-process benchmark driver
}

var sink *parallel.Limit

func keep(l *parallel.Limit) { sink = l }

func work() {}
