// Package pooledfork exercises the pooledfork analyzer: func literals
// handed to the parallel dispatchers inside //firal:hotpath functions.
package pooledfork

import "repro/internal/parallel"

// task mimics the pooled kernel-task pattern: the dispatch func is
// built once, closing over the record, and reused on every call.
type task struct {
	xs []float64
	fn func(lo, hi int)
}

func newTask() *task {
	t := &task{}
	t.fn = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.xs[i] *= 2
		}
	}
	return t
}

var pooled = newTask()

//firal:hotpath
func scale(xs []float64) {
	pooled.xs = xs
	parallel.ForChunk(len(xs), pooled.fn) // pooled record: no finding
	pooled.xs = nil
}

//firal:hotpath
func scaleLiteral(xs []float64) {
	parallel.ForChunk(len(xs), func(lo, hi int) { // want "func literal passed to parallel dispatch"
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}

//firal:hotpath
func forkLiteral(n int) {
	parallel.Fork(n, func(i int) {}) // want "func literal passed to parallel dispatch"
}

//firal:hotpath
func allowedLiteral(xs []float64) {
	//firal:allow(closure) — cold path run once at session setup
	parallel.For(len(xs), func(i int) { xs[i] = 0 })
}

// coldLiteral is not annotated: closure dispatch is fine off the hot
// path.
func coldLiteral(xs []float64) {
	parallel.ForChunk(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}
