package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Analyzers returns the full firal-vet suite in a fixed order.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		Hotpath,
		PooledFork,
		LimitPair,
		SentinelErr,
		LockOrder,
		CtxPoll,
	}
}

// hotpathMarker annotates a function whose body is a steady-state hot
// path: it runs once per candidate/iteration/block inside a selection
// round, so the zero-alloc Workspace contract applies to it.
const hotpathMarker = "firal:hotpath"

// isHotpath reports whether the function declaration carries the
// //firal:hotpath directive in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//"+hotpathMarker) {
			return true
		}
	}
	return false
}

// allowRe matches //firal:allow(cat1,cat2) with an optional trailing
// justification after the closing parenthesis.
var allowRe = regexp.MustCompile(`^//firal:allow\(([a-zA-Z0-9_, ]+)\)`)

// allowSet records, per line of one file, which diagnostic categories a
// //firal:allow comment suppresses.
type allowSet map[int]map[string]bool

// allowsInFile collects the //firal:allow annotations of f.
func allowsInFile(fset *token.FileSet, f *ast.File) allowSet {
	var as allowSet
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if as == nil {
				as = make(allowSet)
			}
			cats := as[line]
			if cats == nil {
				cats = make(map[string]bool)
				as[line] = cats
			}
			for _, cat := range strings.Split(m[1], ",") {
				cats[strings.TrimSpace(cat)] = true
			}
		}
	}
	return as
}

// allows reports whether category cat is suppressed at pos: an allow
// comment sits on the same line (trailing) or on the line above (its
// own line, covering the statement that follows).
func (as allowSet) allows(fset *token.FileSet, pos token.Pos, cat string) bool {
	if as == nil {
		return false
	}
	line := fset.Position(pos).Line
	return as[line][cat] || as[line-1][cat]
}

// fileAllows builds the per-file allow index for one pass.
func fileAllows(pass *goanalysis.Pass) map[*ast.File]allowSet {
	m := make(map[*ast.File]allowSet, len(pass.Files))
	for _, f := range pass.Files {
		m[f] = allowsInFile(pass.Fset, f)
	}
	return m
}

// enclosingFile returns the *ast.File of pos.
func enclosingFile(pass *goanalysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// pkgPathIs reports whether path is suffix itself or ends in /suffix —
// the loose match that lets analysistest fixtures stand in for the real
// repro/internal/... packages.
func pkgPathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeIn returns the called *types.Func if call resolves to a
// function or method of a package whose import path ends in pkgSuffix,
// else nil.
func calleeIn(pass *goanalysis.Pass, call *ast.CallExpr, pkgSuffix string) *types.Func {
	fn := typeutil.Callee(pass.TypesInfo, call)
	f, ok := fn.(*types.Func)
	if !ok || f.Pkg() == nil || !pkgPathIs(f.Pkg().Path(), pkgSuffix) {
		return nil
	}
	return f
}

// isParallelDispatch reports whether call invokes one of the
// internal/parallel loop primitives that hot code must feed pooled task
// records.
func isParallelDispatch(pass *goanalysis.Pass, call *ast.CallExpr) bool {
	f := calleeIn(pass, call, "internal/parallel")
	if f == nil {
		return false
	}
	switch f.Name() {
	case "For", "ForChunk", "ForChunkMin", "Fork":
		return true
	}
	return false
}

// namedTypeName returns the name of the (possibly pointer-wrapped)
// named or aliased type of e, or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	for {
		switch tt := t.(type) {
		case *types.Named:
			return tt.Obj().Name()
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return ""
		}
	}
}

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
