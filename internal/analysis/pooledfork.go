package analysis

import (
	"go/ast"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PooledFork enforces the worker-pool contract inside //firal:hotpath
// functions: the function value handed to parallel.For / ForChunk /
// ForChunkMin / Fork must come from a pooled task record (the
// mat.kernelTask pattern — the dispatch func is built once, closing
// over the record), never from a func literal at the call site, which
// heap-allocates its capture environment on every kernel invocation.
var PooledFork = &goanalysis.Analyzer{
	Name:     "pooledfork",
	Doc:      "report func literals passed to internal/parallel dispatch inside //firal:hotpath functions (pooled task-record contract)",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runPooledFork,
}

func runPooledFork(pass *goanalysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := fileAllows(pass)
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !isHotpath(fd) {
			return
		}
		allow := allows[enclosingFile(pass, fd.Pos())]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if stmt, ok := n.(ast.Stmt); ok && allow.allows(pass.Fset, stmt.Pos(), "closure") {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelDispatch(pass, call) {
				return true
			}
			for _, a := range call.Args {
				if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					if !allow.allows(pass.Fset, lit.Pos(), "closure") {
						pass.Reportf(lit.Pos(),
							"func literal passed to parallel dispatch in //firal:hotpath function; use a pooled task record (mat.kernelTask pattern)")
					}
				}
			}
			return true
		})
	})
	return nil, nil
}
