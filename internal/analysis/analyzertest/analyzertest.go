// Package analyzertest is a self-contained analysistest substitute:
// it loads GOPATH-style fixture packages from a testdata/src tree,
// type-checks them against the real standard library (compiled from
// source, so no export data or network is needed), runs one analyzer —
// resolving its Requires graph — and compares the diagnostics against
// `// want "regexp"` comments in the fixtures.
//
// The upstream golang.org/x/tools/go/analysis/analysistest package is
// not vendored by the Go toolchain (it depends on go/packages and the
// whole module loader); this package reimplements the subset the
// firal-vet suite needs: same fixture layout, same `// want` syntax,
// no facts (none of the suite's analyzers export any).
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	goanalysis "golang.org/x/tools/go/analysis"
)

// Run loads each fixture package (a path under testdata/src), runs a on
// it, and reports any mismatch between the analyzer's diagnostics and
// the fixtures' // want expectations as test errors.
func Run(t *testing.T, testdata string, a *goanalysis.Analyzer, paths ...string) {
	t.Helper()
	ld := loaderFor(testdata)
	for _, path := range paths {
		lp, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: load: %v", path, err)
			continue
		}
		diags, err := runAnalyzer(ld, lp, a)
		if err != nil {
			t.Errorf("%s: run %s: %v", path, a.Name, err)
			continue
		}
		checkWants(t, ld, lp, diags)
	}
}

// TestData returns the testdata directory of the calling test's
// package.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// ---- package loading ----

type loadedPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	mu      sync.Mutex
	srcRoot string // testdata/src
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*loadedPkg
	loading map[string]bool
}

var (
	loadersMu sync.Mutex
	loaders   = map[string]*loader{}
)

// loaderFor returns the shared loader of one testdata tree. Sharing
// matters: the standard library is type-checked from source, and the
// cache makes that cost once per test binary, not once per fixture.
func loaderFor(testdata string) *loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	if ld, ok := loaders[testdata]; ok {
		return ld
	}
	fset := token.NewFileSet()
	ld := &loader{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loadedPkg{},
		loading: map[string]bool{},
	}
	loaders[testdata] = ld
	return ld
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.loadLocked(path)
}

func (ld *loader) loadLocked(path string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{path: path, files: files, pkg: pkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// importPkg resolves fixture imports from testdata/src first — so
// fixtures can stand in for repro/internal/... packages — and falls
// back to the standard library compiled from source.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil {
		lp, err := ld.loadLocked(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ---- analyzer execution ----

// runAnalyzer runs a on lp, first running its Requires closure in
// dependency order, and returns a's diagnostics.
func runAnalyzer(ld *loader, lp *loadedPkg, a *goanalysis.Analyzer) ([]goanalysis.Diagnostic, error) {
	results := map[*goanalysis.Analyzer]interface{}{}
	var diags []goanalysis.Diagnostic
	var exec func(an *goanalysis.Analyzer) error
	exec = func(an *goanalysis.Analyzer) error {
		if _, done := results[an]; done {
			return nil
		}
		for _, req := range an.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		pass := &goanalysis.Pass{
			Analyzer:   an,
			Fset:       ld.fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			Report: func(d goanalysis.Diagnostic) {
				if an == a {
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, goanalysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, goanalysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, goanalysis.Fact) {},
			ExportPackageFact: func(goanalysis.Fact) {},
			AllObjectFacts:    func() []goanalysis.ObjectFact { return nil },
			AllPackageFacts:   func() []goanalysis.PackageFact { return nil },
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := exec(a); err != nil {
		return nil, err
	}
	return diags, nil
}

// ---- want expectations ----

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// parseWants extracts the // want expectations of every file in lp.
func parseWants(ld *loader, lp *loadedPkg) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range lp.files {
		name := ld.fset.Position(f.FileStart).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, lit := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", name, i+1, lit, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, re: re, text: pat})
			}
		}
	}
	return wants, nil
}

// splitQuoted splits `"a" "b"` (or backquoted strings) into the quoted
// literals, ignoring anything after them.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return out
			}
			out = append(out, s[:end+1])
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[:end+2])
			s = s[end+2:]
		default:
			return out
		}
	}
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, ld *loader, lp *loadedPkg, diags []goanalysis.Diagnostic) {
	t.Helper()
	wants, err := parseWants(ld, lp)
	if err != nil {
		t.Errorf("%s: %v", lp.path, err)
		return
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
