// Package analysis implements firal-vet: a go/analysis suite that
// machine-enforces the repo's standing contracts (ARCHITECTURE.md
// § Contract enforcement). Prose contracts rot; these analyzers turn
// each one into a build-time error, run over the whole module in CI via
// `go vet -vettool=bin/firal-vet ./...`.
//
// The suite:
//
//   - hotpath: functions annotated //firal:hotpath must not contain
//     make/new, growing appends, map literals, closure literals,
//     explicit interface-boxing conversions, or fmt calls outside
//     return statements (Workspace-arena contract).
//   - pooledfork: parallel.For/ForChunk/ForChunkMin/Fork arguments in
//     hotpath functions must be pooled task records, never func
//     literals (worker-pool contract).
//   - limitpair: parallel.AcquireLimit must be paired with a deferred
//     (or all-paths) Release, and SetMaxWorkers is forbidden outside
//     internal/parallel and main packages (scoped-limit contract).
//   - sentinelerr: sentinel errors (ErrResidentPool, ErrSaturated,
//     ErrDowndateBreakdown, any package-level Err*) are compared with
//     errors.Is, never == or switch cases (streaming contract).
//   - lockorder: in internal/server, sess.mu must never be held when
//     s.mu is acquired (documented order s.mu → sess.mu), and RoundMeta
//     fields are mutated only in the round-owning files.
//   - ctxpoll: loops in ctx-taking functions that drive streaming
//     decode or CG kernels must poll the context (per-iteration
//     cancellation contract).
//
// Escape hatch: a `//firal:allow(<category>)` comment on — or on the
// line above — a statement suppresses that analyzer category for the
// whole statement. Categories: alloc, closure, limit, sentinel,
// lockorder, ctxpoll. Use it for cold setup branches and deliberate,
// documented exceptions; the comment is grep-able, so every exception
// stays auditable.
package analysis
