package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// LimitPair enforces the scoped-parallelism contract around
// internal/parallel's session limits:
//
//   - every parallel.AcquireLimit result must be released: either a
//     `defer lim.Release()` in the acquiring function, or an explicit
//     Release reachable on every control-flow path from the acquire to
//     every function exit (checked on the go/cfg graph);
//   - discarding the returned *Limit is always a leak;
//   - parallel.SetMaxWorkers is process-wide state whose save/restore
//     races between sessions, so it is forbidden outside
//     internal/parallel itself, package main (process entry points own
//     process-wide knobs), and _test.go files.
var LimitPair = &goanalysis.Analyzer{
	Name:     "limitpair",
	Doc:      "check parallel.AcquireLimit/Release pairing and confine SetMaxWorkers (scoped-limit contract)",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runLimitPair,
}

func runLimitPair(pass *goanalysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := fileAllows(pass)
	allowed := func(pos token.Pos) bool {
		f := enclosingFile(pass, pos)
		return allows[f].allows(pass.Fset, pos, "limit")
	}

	in.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		f := calleeIn(pass, call, "internal/parallel")
		if f == nil {
			return true
		}
		switch f.Name() {
		case "SetMaxWorkers":
			checkSetMaxWorkers(pass, call, allowed)
		case "AcquireLimit":
			checkAcquire(pass, call, stack, allowed)
		}
		return true
	})
	return nil, nil
}

func checkSetMaxWorkers(pass *goanalysis.Pass, call *ast.CallExpr, allowed func(token.Pos) bool) {
	if pass.Pkg.Name() == "main" || pkgPathIs(pass.Pkg.Path(), "internal/parallel") {
		return
	}
	file := pass.Fset.Position(call.Pos()).Filename
	if strings.HasSuffix(filepath.Base(file), "_test.go") {
		return // tests save/restore deliberately, with no concurrent sessions
	}
	if allowed(call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"parallel.SetMaxWorkers is process-wide and races between sessions; use a scoped parallel.AcquireLimit (allowed only in internal/parallel and package main)")
}

func checkAcquire(pass *goanalysis.Pass, call *ast.CallExpr, stack []ast.Node, allowed func(token.Pos) bool) {
	if allowed(call.Pos()) {
		return
	}
	// Walk outward: the call's parent decides what happens to the Limit.
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of parallel.AcquireLimit discarded; the Limit can never be released")
		return
	case *ast.AssignStmt:
		if len(p.Rhs) != 1 || len(p.Lhs) != 1 {
			break
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok {
			break // assigned through a selector/index: ownership stored away
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of parallel.AcquireLimit discarded; the Limit can never be released")
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		body := enclosingFuncBody(stack)
		if body == nil {
			return
		}
		if hasDeferredRelease(pass, body, obj) {
			return
		}
		if escapesOwnership(pass, body, obj) {
			return // handed to another owner; pairing is its responsibility
		}
		if leakPos, ok := releaseMissesPath(pass, body, p, obj); ok {
			pass.Reportf(call.Pos(),
				"parallel.AcquireLimit at this site has no dominating `defer %s.Release()`, and a path reaching the function exit at line %d never calls Release",
				id.Name, pass.Fset.Position(leakPos).Line)
		}
		return
	}
	// Any other use (argument, return value, struct field) transfers
	// ownership; the receiving code is checked where it releases.
}

// enclosingFuncBody returns the body of the innermost enclosing
// function declaration or literal on the inspector stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// hasDeferredRelease reports whether body contains `defer obj.Release()`
// outside nested function literals.
func hasDeferredRelease(pass *goanalysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isReleaseOf(pass, d.Call, obj) {
			found = true
		}
		return true
	})
	return found
}

// isReleaseOf reports whether call is obj.Release().
func isReleaseOf(pass *goanalysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// escapesOwnership reports whether obj is used in a way that hands the
// Limit to other code: passed as a call argument, returned, assigned to
// anything but itself, or captured by a function literal.
func escapesOwnership(pass *goanalysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	escapes := false
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
		case *ast.CallExpr:
			for _, a := range n.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			// `_ = lim` keeps ownership here; any real assignment
			// (another variable, a field, a map slot) transfers it.
			allBlank := true
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if !allBlank {
				for _, r := range n.Rhs {
					if id, ok := ast.Unparen(r).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						escapes = true
					}
				}
			}
		}
		return true
	})
	for _, lit := range lits {
		ast.Inspect(lit, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				escapes = true // goroutine/closure owns the release
			}
			return true
		})
	}
	return escapes
}

// releaseMissesPath walks the control-flow graph of body from the
// acquire statement and reports (exit position, true) if some path
// reaches a function exit without passing a `obj.Release()` call.
func releaseMissesPath(pass *goanalysis.Pass, body *ast.BlockStmt, acquire ast.Stmt, obj types.Object) (token.Pos, bool) {
	g := cfg.New(body, func(*ast.CallExpr) bool { return true })

	releases := func(n ast.Node) bool {
		hit := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && isReleaseOf(pass, call, obj) {
				hit = true
			}
			return !hit
		})
		return hit
	}

	// Locate the block and node index of the acquire statement.
	startBlock, startIdx := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == ast.Node(acquire) || (n.Pos() <= acquire.Pos() && acquire.End() <= n.End()) {
				startBlock, startIdx = bi, ni
			}
		}
	}
	if startBlock < 0 {
		return 0, false // unreachable code; nothing to check
	}

	type visitKey = *cfg.Block
	visited := make(map[visitKey]bool)
	var leak token.Pos
	var visit func(b *cfg.Block, from int) bool
	visit = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			if releases(b.Nodes[i]) {
				return false // this path is closed
			}
		}
		if len(b.Succs) == 0 {
			if b.Return() != nil {
				leak = b.Return().Pos()
			} else if len(b.Nodes) > 0 {
				leak = b.Nodes[len(b.Nodes)-1].End()
			} else {
				leak = body.End()
			}
			return true
		}
		if visited[b] {
			return false // cycle: no new exits on this path
		}
		visited[b] = true
		for _, s := range b.Succs {
			if visit(s, 0) {
				return true
			}
		}
		return false
	}
	if visit(g.Blocks[startBlock], startIdx+1) {
		return leak, true
	}
	return 0, false
}
