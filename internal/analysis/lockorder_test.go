package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestLockOrder(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), analysis.LockOrder,
		"repro/internal/server")
}
