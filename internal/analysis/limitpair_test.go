package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestLimitPair(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), analysis.LimitPair,
		"limitpair", "limitpair/main")
}
