package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// SentinelErr enforces the error-matching side of the streaming and
// incremental contracts: sentinel errors (firal.ErrResidentPool,
// server.ErrSaturated, mat.ErrDowndateBreakdown — and in general any
// package-level `Err*` variable of type error) must be matched with
// errors.Is, never compared with == or != or switched over. The
// sentinels cross package boundaries wrapped in %w chains (shard path
// context, HTTP handler mapping), so identity comparison silently stops
// matching the moment a caller adds context.
var SentinelErr = &goanalysis.Analyzer{
	Name:     "sentinelerr",
	Doc:      "report ==/!=/switch comparisons against sentinel error variables; use errors.Is (wrapped-error contract)",
	Requires: []*goanalysis.Analyzer{inspect.Analyzer},
	Run:      runSentinelErr,
}

func runSentinelErr(pass *goanalysis.Pass) (interface{}, error) {
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	allows := fileAllows(pass)
	report := func(pos token.Pos, name string) {
		f := enclosingFile(pass, pos)
		if allows[f].allows(pass.Fset, pos, "sentinel") {
			return
		}
		pass.Reportf(pos, "comparison with sentinel error %s breaks on wrapped errors; use errors.Is", name)
	}

	in.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			if isNilExpr(pass, n.X) || isNilExpr(pass, n.Y) {
				return // err == nil is the one identity test that is fine
			}
			if v := sentinelVar(pass, n.X); v != nil {
				report(n.Pos(), v.Name())
			} else if v := sentinelVar(pass, n.Y); v != nil {
				report(n.Pos(), v.Name())
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !isErrorType(pass.TypesInfo.TypeOf(n.Tag)) {
				return
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if v := sentinelVar(pass, e); v != nil {
						report(e.Pos(), v.Name())
					}
				}
			}
		}
	})
	return nil, nil
}

// sentinelVar returns the package-level error variable named Err* that
// e refers to, or nil.
func sentinelVar(pass *goanalysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.IsField() {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // local variable, not a sentinel
	}
	if len(v.Name()) < 4 || v.Name()[:3] != "Err" {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isNilExpr(pass *goanalysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
