package kmeans

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

func clusters(rng *rnd.Source, perCluster, k, d int, sep float64) (*mat.Dense, []int) {
	means := mat.NewDense(k, d)
	for j := 0; j < k; j++ {
		rng.UnitVector(means.Row(j))
		mat.Scal(sep, means.Row(j))
	}
	x := mat.NewDense(perCluster*k, d)
	truth := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		j := i % k
		truth[i] = j
		rng.Normal(x.Row(i), 0, 0.1)
		mat.Axpy(1, means.Row(j), x.Row(i))
	}
	return x, truth
}

func TestRunRecoversClusters(t *testing.T) {
	rng := rnd.New(1)
	x, truth := clusters(rng, 40, 4, 5, 5)
	res := Run(x, 4, rng, Options{})
	if res.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	// Same-truth points should share an assignment; different-truth points
	// should not (well separated).
	for i := 1; i < x.Rows; i++ {
		same := truth[i] == truth[0]
		got := res.Assign[i] == res.Assign[0]
		if same != got {
			t.Fatalf("clustering failed at point %d", i)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rnd.New(2)
	x, _ := clusters(rng, 30, 3, 4, 4)
	r1 := Run(x, 1, rnd.New(3), Options{})
	r3 := Run(x, 3, rnd.New(3), Options{})
	if r3.Inertia >= r1.Inertia {
		t.Fatalf("inertia did not decrease: k=1 %g, k=3 %g", r1.Inertia, r3.Inertia)
	}
}

func TestNearestToCentersDistinct(t *testing.T) {
	rng := rnd.New(4)
	x, _ := clusters(rng, 20, 5, 3, 5)
	res := Run(x, 5, rng, Options{})
	sel := NearestToCenters(x, res.Centers)
	if len(sel) != 5 {
		t.Fatalf("selected %d points", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if seen[i] {
			t.Fatal("duplicate selection")
		}
		seen[i] = true
	}
}

func TestKGreaterThanN(t *testing.T) {
	rng := rnd.New(5)
	x := mat.NewDense(3, 2)
	rng.Normal(x.Data, 0, 1)
	res := Run(x, 10, rng, Options{})
	if res.Centers.Rows != 3 {
		t.Fatalf("expected k clamped to n, got %d centers", res.Centers.Rows)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	rng := rnd.New(6)
	res := Run(mat.NewDense(0, 2), 3, rng, Options{})
	if len(res.Assign) != 0 {
		t.Fatal("expected empty assignment")
	}
	// All-identical points: must terminate with zero inertia.
	x := mat.NewDense(10, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 1)
	}
	res2 := Run(x, 2, rng, Options{})
	if res2.Inertia > 1e-12 {
		t.Fatalf("inertia %g on identical points", res2.Inertia)
	}
}
