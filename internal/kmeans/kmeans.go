// Package kmeans implements k-means++ seeding and Lloyd iterations,
// backing the K-Means active-learning baseline of § IV-A (k = b cluster
// centers; the selected points are the pool points nearest each center).
package kmeans

import (
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rnd"
)

// Options configure a clustering run.
type Options struct {
	// MaxIter caps Lloyd iterations (default 50).
	MaxIter int
	// Tol stops when the relative decrease of the objective is below Tol
	// (default 1e-6).
	Tol float64
}

// Result is a clustering.
type Result struct {
	Centers    *mat.Dense // k×d
	Assign     []int      // n
	Inertia    float64    // Σ_i ‖x_i − c_{a(i)}‖²
	Iterations int
}

// Run clusters the rows of x into k clusters with k-means++ seeding.
func Run(x *mat.Dense, k int, rng *rnd.Source, o Options) *Result {
	n, d := x.Rows, x.Cols
	if k <= 0 || n == 0 {
		return &Result{Centers: mat.NewDense(0, d), Assign: make([]int, n)}
	}
	if k > n {
		k = n
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}

	centers := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	dist := make([]float64, n)
	counts := make([]int, k)
	prev := math.Inf(1)
	res := &Result{Centers: centers, Assign: assign}

	for iter := 0; iter < o.MaxIter; iter++ {
		assignAll(x, centers, assign, dist)
		var inertia float64
		for _, v := range dist {
			inertia += v
		}
		res.Inertia = inertia
		res.Iterations = iter + 1

		// Update step.
		centers.Zero()
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			a := assign[i]
			counts[a]++
			mat.Axpy(1, x.Row(i), centers.Row(a))
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, _ := mat.MaxIdx(dist)
				copy(centers.Row(j), x.Row(far))
				dist[far] = 0
				continue
			}
			mat.Scal(1/float64(counts[j]), centers.Row(j))
		}
		if prev-inertia <= o.Tol*math.Max(1, prev) {
			break
		}
		prev = inertia
	}
	assignAll(x, centers, assign, dist)
	return res
}

// NearestToCenters returns, for each cluster center, the index of the
// closest row of x, excluding indices already chosen (each point is used
// at most once). This turns a clustering into a batch selection.
func NearestToCenters(x *mat.Dense, centers *mat.Dense) []int {
	k := centers.Rows
	chosen := make([]int, 0, k)
	used := make(map[int]bool, k)
	for j := 0; j < k; j++ {
		best, bestD := -1, math.Inf(1)
		cj := centers.Row(j)
		for i := 0; i < x.Rows; i++ {
			if used[i] {
				continue
			}
			d := sqDist(x.Row(i), cj)
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			used[best] = true
			chosen = append(chosen, best)
		}
	}
	return chosen
}

func assignAll(x, centers *mat.Dense, assign []int, dist []float64) {
	k := centers.Rows
	parallel.ForChunk(x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x.Row(i)
			best, bestD := 0, math.Inf(1)
			for j := 0; j < k; j++ {
				d := sqDist(xi, centers.Row(j))
				if d < bestD {
					best, bestD = j, d
				}
			}
			assign[i] = best
			dist[i] = bestD
		}
	})
}

func seedPlusPlus(x *mat.Dense, k int, rng *rnd.Source) *mat.Dense {
	n, d := x.Rows, x.Cols
	centers := mat.NewDense(k, d)
	first := rng.Intn(n)
	copy(centers.Row(0), x.Row(first))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(x.Row(i), centers.Row(0))
	}
	for j := 1; j < k; j++ {
		idx := rng.WeightedChoice(minDist)
		copy(centers.Row(j), x.Row(idx))
		cj := centers.Row(j)
		parallel.ForChunk(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if dd := sqDist(x.Row(i), cj); dd < minDist[i] {
					minDist[i] = dd
				}
			}
		})
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
