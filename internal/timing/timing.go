// Package timing provides the phase timers behind the paper's wall-clock
// breakdowns (Figs. 5–7): each solver attributes elapsed time to named
// phases ("precond", "cg", "gradient", "eig", "objective", "comm",
// "other"), which the experiment harnesses print next to the theoretical
// peak-time estimates from internal/perfmodel.
package timing

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phases accumulates elapsed time per named phase. It is not safe for
// concurrent use; distributed solvers keep one Phases per rank and merge.
type Phases struct {
	entries map[string]*phase
	order   []string
}

// phase is one named accumulator. Its stop closure is built once, when
// the phase is first seen, so the Start/stop pair on a warm Phases is
// allocation-free — Start sits inside the per-candidate ROUND loop and
// the RELAX mirror-descent iterations, which are pinned at 0 allocs/op.
type phase struct {
	d    time.Duration
	t0   time.Time
	stop func()
}

// New returns an empty phase accumulator.
func New() *Phases {
	return &Phases{entries: make(map[string]*phase)}
}

func (p *Phases) entry(name string) *phase {
	e := p.entries[name]
	if e == nil {
		e = &phase{}
		e.stop = func() { e.d += time.Since(e.t0) }
		p.entries[name] = e
		p.order = append(p.order, name)
	}
	return e
}

// Start begins timing a phase; call the returned stop function to
// accumulate. Typical use: defer p.Start("cg")(). Phases do not nest
// with themselves: a second Start of the same name before its stop
// restarts the clock.
func (p *Phases) Start(name string) func() {
	e := p.entry(name)
	e.t0 = time.Now()
	return e.stop
}

// Add accumulates d into the named phase.
func (p *Phases) Add(name string, d time.Duration) {
	p.entry(name).d += d
}

// Get returns the accumulated duration of a phase (zero if unknown).
func (p *Phases) Get(name string) time.Duration {
	if e := p.entries[name]; e != nil {
		return e.d
	}
	return 0
}

// Seconds returns the accumulated duration of a phase in seconds.
func (p *Phases) Seconds(name string) float64 { return p.Get(name).Seconds() }

// Total returns the sum over all phases.
func (p *Phases) Total() time.Duration {
	var t time.Duration
	for _, e := range p.entries {
		t += e.d
	}
	return t
}

// Names returns phase names in first-recorded order.
func (p *Phases) Names() []string {
	return append([]string(nil), p.order...)
}

// Merge adds all phases of q into p.
func (p *Phases) Merge(q *Phases) {
	for _, name := range q.order {
		p.Add(name, q.Get(name))
	}
}

// MaxMerge keeps, per phase, the maximum of p's and q's durations. This is
// how per-rank breakdowns aggregate into a parallel region's critical-path
// time.
func (p *Phases) MaxMerge(q *Phases) {
	for _, name := range q.order {
		if d := q.Get(name); d > p.Get(name) {
			p.entry(name).d = d
		}
	}
}

// String renders phases sorted by descending duration.
func (p *Phases) String() string {
	names := p.Names()
	sort.Slice(names, func(i, j int) bool {
		return p.Get(names[i]) > p.Get(names[j])
	})
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.4fs", n, p.Get(n).Seconds())
	}
	return b.String()
}
