// Package timing provides the phase timers behind the paper's wall-clock
// breakdowns (Figs. 5–7): each solver attributes elapsed time to named
// phases ("precond", "cg", "gradient", "eig", "objective", "comm",
// "other"), which the experiment harnesses print next to the theoretical
// peak-time estimates from internal/perfmodel.
package timing

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phases accumulates elapsed time per named phase. It is not safe for
// concurrent use; distributed solvers keep one Phases per rank and merge.
type Phases struct {
	durations map[string]time.Duration
	order     []string
}

// New returns an empty phase accumulator.
func New() *Phases {
	return &Phases{durations: make(map[string]time.Duration)}
}

// Start begins timing a phase; call the returned stop function to
// accumulate. Typical use: defer p.Start("cg")().
func (p *Phases) Start(name string) func() {
	t0 := time.Now()
	return func() { p.Add(name, time.Since(t0)) }
}

// Add accumulates d into the named phase.
func (p *Phases) Add(name string, d time.Duration) {
	if _, ok := p.durations[name]; !ok {
		p.order = append(p.order, name)
	}
	p.durations[name] += d
}

// Get returns the accumulated duration of a phase (zero if unknown).
func (p *Phases) Get(name string) time.Duration { return p.durations[name] }

// Seconds returns the accumulated duration of a phase in seconds.
func (p *Phases) Seconds(name string) float64 { return p.durations[name].Seconds() }

// Total returns the sum over all phases.
func (p *Phases) Total() time.Duration {
	var t time.Duration
	for _, d := range p.durations {
		t += d
	}
	return t
}

// Names returns phase names in first-recorded order.
func (p *Phases) Names() []string {
	return append([]string(nil), p.order...)
}

// Merge adds all phases of q into p.
func (p *Phases) Merge(q *Phases) {
	for _, name := range q.order {
		p.Add(name, q.durations[name])
	}
}

// MaxMerge keeps, per phase, the maximum of p's and q's durations. This is
// how per-rank breakdowns aggregate into a parallel region's critical-path
// time.
func (p *Phases) MaxMerge(q *Phases) {
	for _, name := range q.order {
		if q.durations[name] > p.durations[name] {
			if _, ok := p.durations[name]; !ok {
				p.order = append(p.order, name)
			}
			p.durations[name] = q.durations[name]
		}
	}
}

// String renders phases sorted by descending duration.
func (p *Phases) String() string {
	names := p.Names()
	sort.Slice(names, func(i, j int) bool {
		return p.durations[names[i]] > p.durations[names[j]]
	})
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.4fs", n, p.durations[n].Seconds())
	}
	return b.String()
}
