package timing

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	p := New()
	p.Add("a", time.Second)
	p.Add("a", time.Second)
	p.Add("b", 500*time.Millisecond)
	if p.Get("a") != 2*time.Second {
		t.Fatalf("a = %v", p.Get("a"))
	}
	if p.Seconds("b") != 0.5 {
		t.Fatalf("b = %g", p.Seconds("b"))
	}
	if p.Get("missing") != 0 {
		t.Fatal("missing phase should be zero")
	}
	if p.Total() != 2500*time.Millisecond {
		t.Fatalf("total %v", p.Total())
	}
}

func TestStartStop(t *testing.T) {
	p := New()
	stop := p.Start("work")
	time.Sleep(5 * time.Millisecond)
	stop()
	if p.Get("work") < 4*time.Millisecond {
		t.Fatalf("recorded %v", p.Get("work"))
	}
}

func TestNamesOrder(t *testing.T) {
	p := New()
	p.Add("z", 1)
	p.Add("a", 1)
	p.Add("z", 1)
	names := p.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Fatalf("names %v", names)
	}
}

func TestMergeAndMaxMerge(t *testing.T) {
	a := New()
	a.Add("x", 2*time.Second)
	b := New()
	b.Add("x", 3*time.Second)
	b.Add("y", time.Second)

	sum := New()
	sum.Merge(a)
	sum.Merge(b)
	if sum.Get("x") != 5*time.Second || sum.Get("y") != time.Second {
		t.Fatalf("merge wrong: %v", sum)
	}

	crit := New()
	crit.MaxMerge(a)
	crit.MaxMerge(b)
	if crit.Get("x") != 3*time.Second || crit.Get("y") != time.Second {
		t.Fatalf("max-merge wrong: x=%v y=%v", crit.Get("x"), crit.Get("y"))
	}
}

func TestStringSortedByDuration(t *testing.T) {
	p := New()
	p.Add("small", time.Millisecond)
	p.Add("big", time.Second)
	s := p.String()
	if !strings.Contains(s, "big") || strings.Index(s, "big") > strings.Index(s, "small") {
		t.Fatalf("string not sorted: %s", s)
	}
}
