package mpi

import (
	"fmt"
	"sort"
	"time"
)

// Rank-failure recovery. When a collective fails with ErrRankLost the
// survivors must agree on who is gone before they can continue: each
// rank only observes its own neighbours' silence, and (in the ring and
// tree algorithms) a rank can time out on a peer that is alive but
// itself stuck behind the dead rank. Heal runs a fixed-round
// all-to-all agreement — every rank gossips its suspicion mask to every
// other rank and unions what it hears back — and returns a new Comm over
// the sorted survivors.
//
// The supported failure model is crash-stop before agreement begins: a
// rank that dies stays dead, and no further rank dies while the
// survivors agree. Under that model every survivor times out on exactly
// the dead set in the first exchange and the second exchange makes the
// union common knowledge, so two rounds suffice. A rank that is merely
// slow for longer than the agreement timeout is indistinguishable from a
// dead one (FLP applies); it will be excluded, observe itself suspected,
// and get an error rather than a split-brain Comm — except under a true
// network partition, where each side heals to its own group (documented
// limitation; the ARCHITECTURE notes how the CLI surfaces it).

// agreeTagBase is the top of the reserved tag range for agreement
// traffic, far below any collective tag (collectives use
// -(epoch·2³² + seq); epochs are counted in heals).
const agreeTagBase = -(1 << 50)

// maxAgreeRounds bounds the per-epoch agreement tag space.
const maxAgreeRounds = 8

func agreeTag(epoch, round int) int {
	return agreeTagBase - epoch*maxAgreeRounds - round
}

// Heal agrees on the dead set with the other survivors and returns a new
// Comm over the remaining ranks (re-numbered 0..len(survivors)-1 in old
// rank order), plus the dead ranks in this Comm's numbering. The caller
// must have an operation timeout set — without deadlines a lost rank
// blocks forever and there is nothing to heal from. The returned Comm
// inherits the timeout, chunking and traffic counters; its collective
// sequence restarts under a fresh epoch, so stale messages from the
// abandoned schedule are never matched again.
//
// All survivors must call Heal (they will: once a rank is lost, every
// survivor's collective schedule eventually times out) and must then
// re-shard any rank-partitioned data against the new size and rank.
func (c *Comm) Heal() (*Comm, []int, error) {
	if c.opTimeout <= 0 {
		return nil, nil, fmt.Errorf("mpi: Heal needs an operation timeout (SetOpTimeout) to distinguish lost ranks")
	}
	p := c.Size()
	me := c.Rank()
	// The agreement timeout must cover a survivor that is still timing
	// out of the abandoned collective schedule a few operations behind
	// us, so it is a generous multiple of the per-op deadline.
	agreeTimeout := 8 * c.opTimeout
	if agreeTimeout < 500*time.Millisecond {
		agreeTimeout = 500 * time.Millisecond
	}
	suspect := make([]bool, p)
	payload := make([]float64, p)
	for round := 0; round < 2; round++ {
		tag := agreeTag(c.epoch, round)
		for r := 0; r < p; r++ {
			if suspect[r] {
				payload[r] = 1
			} else {
				payload[r] = 0
			}
		}
		for r := 0; r < p; r++ {
			if r == me || suspect[r] {
				continue
			}
			// Best effort: a send failure just means the peer is dead,
			// which the recv pass below will record.
			_ = c.t.Send(r, tag, payload, time.Now().Add(agreeTimeout))
		}
		for r := 0; r < p; r++ {
			if r == me || suspect[r] {
				continue
			}
			got, err := c.t.Recv(r, tag, time.Now().Add(agreeTimeout))
			if err != nil {
				suspect[r] = true
				continue
			}
			for q := 0; q < p && q < len(got); q++ {
				if got[q] != 0 {
					suspect[q] = true
				}
			}
		}
		if suspect[me] {
			return nil, nil, fmt.Errorf("mpi: rank %d excluded during failure agreement (suspected dead by the survivors)", me)
		}
	}
	var survivors, dead []int
	for r := 0; r < p; r++ {
		if suspect[r] {
			dead = append(dead, r)
		} else {
			survivors = append(survivors, r)
		}
	}
	sort.Ints(survivors)
	newRank := sort.SearchInts(survivors, me)
	nc := &Comm{
		t:         &remapTransport{parent: c.t, oldOf: survivors, rank: newRank},
		epoch:     c.epoch + 1,
		opTimeout: c.opTimeout,
		chunk:     c.chunk,
		stats:     c.stats,
	}
	return nc, dead, nil
}

// remapTransport renumbers a transport group after ranks were lost:
// new rank i speaks as old rank oldOf[i]. Matching still happens in the
// parent's matcher under old source ranks; only the addressing changes.
type remapTransport struct {
	parent Transport
	oldOf  []int // oldOf[newRank] = parent rank, sorted ascending
	rank   int   // this endpoint's new rank
}

func (t *remapTransport) Rank() int { return t.rank }
func (t *remapTransport) Size() int { return len(t.oldOf) }

func (t *remapTransport) Send(dst, tag int, data []float64, deadline time.Time) error {
	return t.parent.Send(t.oldOf[dst], tag, data, deadline)
}

func (t *remapTransport) Recv(src, tag int, deadline time.Time) ([]float64, error) {
	return t.parent.Recv(t.oldOf[src], tag, deadline)
}

func (t *remapTransport) Close() error { return t.parent.Close() }
