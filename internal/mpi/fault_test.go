package mpi_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/mpitest"
)

const faultOpTimeout = 100 * time.Millisecond

// runSchedule is a fixed SPMD collective schedule that every rank runs
// until it completes or a rank is lost.
func runSchedule(c *mpi.Comm, iters int) (err error) {
	defer mpi.RecoverLost(&err)
	for i := 0; i < iters; i++ {
		data := []float64{float64(c.Rank()), 1}
		c.Allreduce(data, mpi.Sum)
		c.Bcast(i%c.Size(), data)
	}
	return nil
}

// TestHealAfterKill kills one rank mid-schedule and checks that every
// survivor observes ErrRankLost, agrees on exactly the dead rank, and
// can run collectives on the healed (p−1)-communicator.
func TestHealAfterKill(t *testing.T) {
	const p, victim = 4, 2
	plan := &mpitest.FaultPlan{Victim: victim, Kind: mpitest.FaultKill, AfterCollectives: 3}
	var mu sync.Mutex
	deadSets := make(map[int][]int)
	mpi.RunTransports(plan.Wrap(mpi.NewLocalWorld(p)), func(c *mpi.Comm) {
		c.SetOpTimeout(faultOpTimeout)
		err := runSchedule(c, 10)
		if c.Rank() == victim {
			if !errors.Is(err, mpitest.ErrVictimKilled) {
				t.Errorf("victim: got %v, want its own kill error", err)
			}
			return
		}
		if !errors.Is(err, mpi.ErrRankLost) {
			t.Errorf("rank %d: got %v, want ErrRankLost", c.Rank(), err)
			return
		}
		nc, dead, herr := c.Heal()
		if herr != nil {
			t.Errorf("rank %d: heal: %v", c.Rank(), herr)
			return
		}
		mu.Lock()
		deadSets[c.Rank()] = dead
		mu.Unlock()
		if nc.Size() != p-1 {
			t.Errorf("rank %d: healed size %d, want %d", c.Rank(), nc.Size(), p-1)
			return
		}
		// The healed communicator must be fully usable: survivors are old
		// ranks {0, 1, 3} renumbered {0, 1, 2}.
		sum := nc.AllreduceScalar(float64(nc.Rank()), mpi.Sum)
		if sum != 3 {
			t.Errorf("rank %d: healed allreduce %g, want 3", c.Rank(), sum)
		}
	})
	for r, dead := range deadSets {
		if len(dead) != 1 || dead[0] != victim {
			t.Errorf("rank %d agreed on dead set %v, want [%d]", r, dead, victim)
		}
	}
	if len(deadSets) != p-1 {
		t.Errorf("only %d survivors healed, want %d", len(deadSets), p-1)
	}
}

// TestPartitionSplitBrain partitions a rank instead of killing it: the
// survivors heal to a (p−1)-group while the victim, timing out on
// everyone, heals to a group of one — the documented split-brain
// outcome.
func TestPartitionSplitBrain(t *testing.T) {
	const p, victim = 3, 1
	plan := &mpitest.FaultPlan{Victim: victim, Kind: mpitest.FaultPartition, AfterCollectives: 2}
	mpi.RunTransports(plan.Wrap(mpi.NewLocalWorld(p)), func(c *mpi.Comm) {
		c.SetOpTimeout(faultOpTimeout)
		err := runSchedule(c, 10)
		if !errors.Is(err, mpi.ErrRankLost) {
			t.Errorf("rank %d: got %v, want ErrRankLost", c.Rank(), err)
			return
		}
		nc, dead, herr := c.Heal()
		if herr != nil {
			t.Errorf("rank %d: heal: %v", c.Rank(), herr)
			return
		}
		if c.Rank() == victim {
			if nc.Size() != 1 || len(dead) != p-1 {
				t.Errorf("victim healed to size %d with dead %v, want a group of one", nc.Size(), dead)
			}
			return
		}
		if nc.Size() != p-1 || len(dead) != 1 || dead[0] != victim {
			t.Errorf("rank %d: healed size %d dead %v", c.Rank(), nc.Size(), dead)
		}
	})
}

// TestDelayBelowTimeoutIsHarmless delays the victim's traffic by less
// than the operation timeout: nothing may be declared lost and the
// schedule must complete with the fault-free results — the
// false-positive guard on the failure detector.
func TestDelayBelowTimeoutIsHarmless(t *testing.T) {
	const p = 3
	plan := &mpitest.FaultPlan{Victim: 1, Kind: mpitest.FaultDelay, AfterCollectives: 1, Delay: 10 * time.Millisecond}
	mpi.RunTransports(plan.Wrap(mpi.NewLocalWorld(p)), func(c *mpi.Comm) {
		c.SetOpTimeout(time.Second)
		if err := runSchedule(c, 4); err != nil {
			t.Errorf("rank %d: delayed schedule failed: %v", c.Rank(), err)
		}
	})
}

// TestHealRequiresTimeout pins the guard: healing without deadlines is
// meaningless and must be refused, not deadlock.
func TestHealRequiresTimeout(t *testing.T) {
	mpi.RunTransports(mpi.NewLocalWorld(2), func(c *mpi.Comm) {
		if _, _, err := c.Heal(); err == nil {
			t.Errorf("rank %d: Heal without SetOpTimeout should fail", c.Rank())
		}
	})
}

// TestSendRecvErrorsWrapContext pins the satellite fix: point-to-point
// failures must wrap rank and tag with %w so errors.Is sees ErrRankLost
// through the context.
func TestSendRecvErrorsWrapContext(t *testing.T) {
	// Rank 0 exits immediately without sending: rank 1's deadline is the
	// failure detector.
	mpi.RunTransports(mpi.NewLocalWorld(2), func(c *mpi.Comm) {
		if c.Rank() != 1 {
			return
		}
		c.SetOpTimeout(50 * time.Millisecond)
		_, err := c.Recv(0, 42)
		if !errors.Is(err, mpi.ErrRankLost) {
			t.Errorf("recv error %v does not wrap ErrRankLost", err)
		}
		var lost *mpi.LostError
		if !errors.As(err, &lost) || lost.Rank != 0 || lost.Tag != 42 {
			t.Errorf("recv error %v does not carry rank/tag context", err)
		}
	})
}
