package mpi_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mpi/mpitest"
)

// localFactory registers the in-process mailbox world with the shared
// conformance suite.
func localFactory(t testing.TB, p int) []mpi.Transport {
	return mpi.NewLocalWorld(p)
}

// tcpFactory bootstraps a loopback TCP group through the real
// rendezvous protocol (rank 0 listens on an ephemeral port, the other
// ranks dial it), so the suite exercises exactly the code path of
// `firal -transport tcp`.
func tcpFactory(t testing.TB, p int) []mpi.Transport {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rz, err := mpi.ListenTCP("127.0.0.1:0", p)
	if err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	ts := make([]mpi.Transport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts[0], errs[0] = rz.Accept(ctx)
	}()
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts[r], errs[r] = mpi.DialTCP(ctx, rz.Addr(), r, p)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("bootstrap rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

func TestConformanceInProcess(t *testing.T) {
	mpitest.RunConformance(t, localFactory)
}

func TestConformanceTCPLoopback(t *testing.T) {
	mpitest.RunConformance(t, tcpFactory)
}
