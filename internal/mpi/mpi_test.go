package mpi

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// ranksToTest includes the paper's GPU counts (1, 2, 3, 6, 12) plus other
// awkward values.
var ranksToTest = []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 13}

func TestSendRecv(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []float64{1, 2, 3}); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			got, err := c.Recv(0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("bad payload %v", got)
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := c.Send(1, 0, buf); err != nil {
				t.Errorf("send: %v", err)
			}
			buf[0] = 99 // must not affect receiver
			c.Barrier()
		} else {
			c.Barrier()
			got, err := c.Recv(0, 0)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if got[0] != 1 {
				t.Errorf("send aliased sender buffer: %v", got)
			}
		}
	})
}

func TestRecvOutOfOrderTags(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for tag, v := range map[int]float64{1: 1, 2: 2} {
				if err := c.Send(1, tag, []float64{v}); err != nil {
					t.Errorf("send tag %d: %v", tag, err)
				}
			}
		} else {
			// Receive in reverse tag order.
			for _, tag := range []int{2, 1} {
				got, err := c.Recv(0, tag)
				if err != nil {
					t.Errorf("recv tag %d: %v", tag, err)
					return
				}
				if got[0] != float64(tag) {
					t.Errorf("tag %d payload %v", tag, got)
				}
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	for _, p := range ranksToTest {
		var mu sync.Mutex
		phase := make([]int, p)
		Run(p, func(c *Comm) {
			mu.Lock()
			phase[c.Rank()] = 1
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			for r, v := range phase {
				if v != 1 {
					t.Errorf("p=%d: rank %d passed barrier before rank %d arrived", p, c.Rank(), r)
				}
			}
			mu.Unlock()
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range ranksToTest {
		for root := 0; root < p; root++ {
			Run(p, func(c *Comm) {
				data := make([]float64, 5)
				if c.Rank() == root {
					for i := range data {
						data[i] = float64(10*root + i)
					}
				}
				c.Bcast(root, data)
				for i := range data {
					if data[i] != float64(10*root+i) {
						t.Errorf("p=%d root=%d rank=%d: bcast got %v", p, root, c.Rank(), data)
						return
					}
				}
			})
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range ranksToTest {
		for _, n := range []int{1, 2, 3, 7, 64, 101} {
			Run(p, func(c *Comm) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()*n + i)
				}
				c.Allreduce(data, Sum)
				for i := range data {
					// Σ_r (r·n + i) = n·p(p−1)/2 + p·i
					want := float64(n*p*(p-1)/2 + p*i)
					if data[i] != want {
						t.Fatalf("p=%d n=%d rank=%d: allreduce[%d]=%g want %g", p, n, c.Rank(), i, data[i], want)
					}
				}
			})
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	for _, p := range ranksToTest {
		Run(p, func(c *Comm) {
			v := []float64{float64(c.Rank()), -float64(c.Rank())}
			c.Allreduce(v, Max)
			if v[0] != float64(p-1) || v[1] != 0 {
				t.Errorf("p=%d: max got %v", p, v)
			}
			w := []float64{float64(c.Rank())}
			c.Allreduce(w, Min)
			if w[0] != 0 {
				t.Errorf("p=%d: min got %v", p, w)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range ranksToTest {
		Run(p, func(c *Comm) {
			local := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
			out := c.Allgather(local)
			if len(out) != 2*p {
				t.Errorf("p=%d: allgather length %d", p, len(out))
				return
			}
			for r := 0; r < p; r++ {
				if out[2*r] != float64(r) || out[2*r+1] != float64(r*10) {
					t.Errorf("p=%d rank=%d: block %d wrong: %v", p, c.Rank(), r, out)
					return
				}
			}
		})
	}
}

func TestAllgatherv(t *testing.T) {
	for _, p := range ranksToTest {
		Run(p, func(c *Comm) {
			// Rank r contributes r+1 elements, each equal to r.
			local := make([]float64, c.Rank()+1)
			for i := range local {
				local[i] = float64(c.Rank())
			}
			out, counts := c.Allgatherv(local)
			wantTotal := p * (p + 1) / 2
			if len(out) != wantTotal {
				t.Errorf("p=%d: total %d want %d", p, len(out), wantTotal)
				return
			}
			idx := 0
			for r := 0; r < p; r++ {
				if counts[r] != r+1 {
					t.Errorf("p=%d: counts[%d]=%d", p, r, counts[r])
					return
				}
				for k := 0; k < counts[r]; k++ {
					if out[idx] != float64(r) {
						t.Errorf("p=%d: element %d = %g want %d", p, idx, out[idx], r)
						return
					}
					idx++
				}
			}
		})
	}
}

func TestAllreduceMaxLoc(t *testing.T) {
	for _, p := range ranksToTest {
		Run(p, func(c *Comm) {
			// Rank r proposes value (r % 3) with loc 100+r: the winner is
			// the smallest rank with value 2 (or value p-1 patterns for
			// small p).
			val := float64(c.Rank() % 3)
			v, r, loc := c.AllreduceMaxLoc(val, 100+c.Rank())
			wantRank := 0
			wantVal := 0.0
			for q := 0; q < p; q++ {
				qv := float64(q % 3)
				if qv > wantVal {
					wantVal, wantRank = qv, q
				}
			}
			if v != wantVal || r != wantRank || loc != 100+wantRank {
				t.Errorf("p=%d rank=%d: maxloc (%g,%d,%d) want (%g,%d,%d)",
					p, c.Rank(), v, r, loc, wantVal, wantRank, 100+wantRank)
			}
		})
	}
}

func TestAllreduceMinLoc(t *testing.T) {
	Run(4, func(c *Comm) {
		v, r, _ := c.AllreduceMinLoc(float64(10-c.Rank()), c.Rank())
		if v != 7 || r != 3 {
			t.Errorf("minloc (%g,%d)", v, r)
		}
	})
}

// TestAllreduceRandomProperty cross-checks Allreduce against a sequential
// reduction for random sizes and rank counts.
func TestAllreduceRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(9)
		n := 1 + rng.Intn(40)
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for r := range inputs {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
				want[i] += inputs[r][i]
			}
		}
		okAll := true
		var mu sync.Mutex
		Run(p, func(c *Comm) {
			data := append([]float64(nil), inputs[c.Rank()]...)
			c.Allreduce(data, Sum)
			for i := range data {
				if diff := data[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
					mu.Lock()
					okAll = false
					mu.Unlock()
					return
				}
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Interleave different collectives to exercise tag sequencing.
	Run(6, func(c *Comm) {
		a := []float64{1}
		c.Allreduce(a, Sum)
		if a[0] != 6 {
			t.Errorf("first allreduce %g", a[0])
		}
		b := make([]float64, 2)
		if c.Rank() == 3 {
			b[0], b[1] = 5, 6
		}
		c.Bcast(3, b)
		if b[0] != 5 || b[1] != 6 {
			t.Errorf("bcast after allreduce %v", b)
		}
		c.Barrier()
		g := c.Allgather([]float64{float64(c.Rank())})
		for r := 0; r < 6; r++ {
			if g[r] != float64(r) {
				t.Errorf("allgather after barrier %v", g)
				return
			}
		}
	})
}

func TestPartition(t *testing.T) {
	for _, p := range ranksToTest {
		for _, n := range []int{0, 1, 5, 100, 101} {
			total := 0
			prevHi := 0
			for r := 0; r < p; r++ {
				lo, hi := Partition(n, p, r)
				if lo != prevHi {
					t.Fatalf("p=%d n=%d: partition gap at rank %d", p, n, r)
				}
				if hi < lo {
					t.Fatalf("p=%d n=%d: negative partition at rank %d", p, n, r)
				}
				total += hi - lo
				prevHi = hi
			}
			if total != n {
				t.Fatalf("p=%d n=%d: partitions cover %d", p, n, total)
			}
		}
	}
}

func TestStatsCounting(t *testing.T) {
	stats := Run(4, func(c *Comm) {
		data := make([]float64, 16)
		c.Allreduce(data, Sum)
	})
	for r, s := range stats {
		if s.Collectives != 1 {
			t.Fatalf("rank %d: collectives %d", r, s.Collectives)
		}
		if s.SentMessages == 0 || s.SentBytes == 0 {
			t.Fatalf("rank %d: no traffic recorded", r)
		}
	}
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from rank")
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}
