package mpi

import "time"

// localWorld is the in-process transport group: one matcher per rank,
// deposits are deep copies, delivery is immediate. It reproduces the
// original goroutine-mailbox semantics bit for bit — same matching, same
// FIFO order per (src, tag), same deep-copy-on-send guarantee — just
// behind the Transport seam the TCP implementation also satisfies.
type localWorld struct {
	ms []*matcher
}

// localTransport is one rank's endpoint of a localWorld.
type localTransport struct {
	w    *localWorld
	rank int
}

// NewLocalWorld creates the in-process transport group used by Run: p
// endpoints whose sends deposit deep copies directly into the receiving
// rank's matcher. Sends never block and, with a zero deadline, recvs
// wait forever — exactly the pre-Transport mailbox behavior.
func NewLocalWorld(p int) []Transport {
	if p <= 0 {
		panic("mpi: non-positive rank count")
	}
	w := &localWorld{ms: make([]*matcher, p)}
	for i := range w.ms {
		w.ms[i] = newMatcher()
	}
	ts := make([]Transport, p)
	for r := range ts {
		ts[r] = &localTransport{w: w, rank: r}
	}
	return ts
}

func (t *localTransport) Rank() int { return t.rank }
func (t *localTransport) Size() int { return len(t.w.ms) }

func (t *localTransport) Send(dst, tag int, data []float64, deadline time.Time) error {
	if dst == t.rank {
		panic("mpi: send to self")
	}
	if err := t.w.ms[t.rank].closedErr(); err != nil {
		return err
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	t.w.ms[dst].deposit(t.rank, tag, cp)
	return nil
}

func (t *localTransport) Recv(src, tag int, deadline time.Time) ([]float64, error) {
	return t.w.ms[t.rank].recv(src, tag, deadline)
}

// Close withdraws the rank from the group: peers see it as lost.
func (t *localTransport) Close() error {
	err := &LostError{Rank: t.rank, Op: "conn"}
	for r, m := range t.w.ms {
		if r == t.rank {
			m.close(err)
		} else {
			m.markDead(t.rank, err)
		}
	}
	return nil
}
