package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrRankLost is the sentinel for a peer that stopped responding: a
// point-to-point deadline expired or the peer's connection failed.
// Collective wrappers surface it through RecoverLost; callers must test
// with errors.Is and may then run Comm.Heal to agree on the dead set and
// continue on the survivors.
var ErrRankLost = errors.New("mpi: rank lost")

// LostError reports which rank was given up on and during which
// operation. It unwraps to ErrRankLost.
type LostError struct {
	Rank int    // the rank this endpoint gave up on
	Tag  int    // tag of the failed operation (0 for connection-level loss)
	Op   string // "send", "recv" or "conn"
}

func (e *LostError) Error() string {
	return fmt.Sprintf("mpi: rank %d lost (%s, tag %d)", e.Rank, e.Op, e.Tag)
}

// Unwrap makes errors.Is(err, ErrRankLost) hold for every LostError.
func (e *LostError) Unwrap() error { return ErrRankLost }

// Transport is the wire under the collectives: point-to-point tagged
// send/recv between a fixed set of ranks. Implementations must be safe
// for concurrent use by multiple goroutines of the same rank and must
// match messages per (source, tag) pair in FIFO order, buffering
// arrivals whose tag nobody is waiting for yet.
//
// A zero deadline means "wait forever". A nil error from Send only
// promises the payload was accepted for delivery, not that the peer
// received it; delivery failures surface on the peer's Recv (or on a
// later Send) as an error satisfying errors.Is(err, ErrRankLost).
//
// Payloads are owned by the transport once sent: implementations must
// deep-copy (or serialize) on send so the caller may immediately reuse
// its buffer, and the slice returned by Recv is freshly owned by the
// caller.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the group.
	Size() int
	// Send transmits data to rank dst under tag. Sending to self panics.
	Send(dst, tag int, data []float64, deadline time.Time) error
	// Recv returns the next payload from rank src under tag.
	Recv(src, tag int, deadline time.Time) ([]float64, error)
	// Close releases the endpoint. Peers observe closure as rank loss.
	Close() error
}

// pairKey indexes the matcher queues by (source rank, tag).
type pairKey struct{ src, tag int }

// matcher is the shared receive-side state of a transport endpoint:
// per-(src, tag) FIFO queues, a broadcast wake channel, and the set of
// peers known dead. Both the in-process mailbox and the TCP reader
// goroutines deposit into a matcher; Recv blocks on it with an optional
// deadline.
type matcher struct {
	mu     sync.Mutex
	queues map[pairKey][][]float64
	wake   chan struct{} // closed and replaced on every state change
	dead   map[int]error
	closed error // non-nil once the endpoint is closed
}

func newMatcher() *matcher {
	return &matcher{
		queues: make(map[pairKey][][]float64),
		wake:   make(chan struct{}),
		dead:   make(map[int]error),
	}
}

// signal wakes every blocked recv; callers hold mu.
func (m *matcher) signal() {
	close(m.wake)
	m.wake = make(chan struct{})
}

// deposit appends a payload (ownership transfers to the matcher).
func (m *matcher) deposit(src, tag int, data []float64) {
	k := pairKey{src, tag}
	m.mu.Lock()
	m.queues[k] = append(m.queues[k], data)
	m.signal()
	m.mu.Unlock()
}

// markDead records that src will never deposit again; pending and future
// recvs from src fail with err once their queue drains.
func (m *matcher) markDead(src int, err error) {
	m.mu.Lock()
	if _, ok := m.dead[src]; !ok {
		m.dead[src] = err
		m.signal()
	}
	m.mu.Unlock()
}

// deadErr returns the recorded loss error for src, or nil.
func (m *matcher) deadErr(src int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead[src]
}

// closedErr returns the close error, or nil while the endpoint is open.
func (m *matcher) closedErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// close fails every pending and future recv with err.
func (m *matcher) close(err error) {
	m.mu.Lock()
	if m.closed == nil {
		m.closed = err
		m.signal()
	}
	m.mu.Unlock()
}

// recv blocks until a payload from (src, tag) is available, src is known
// dead, the matcher is closed, or the deadline passes (zero = never).
func (m *matcher) recv(src, tag int, deadline time.Time) ([]float64, error) {
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		timeout = timer.C
	}
	k := pairKey{src, tag}
	for {
		m.mu.Lock()
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			m.mu.Unlock()
			return data, nil
		}
		if err := m.dead[src]; err != nil {
			m.mu.Unlock()
			return nil, err
		}
		if m.closed != nil {
			err := m.closed
			m.mu.Unlock()
			return nil, err
		}
		wake := m.wake
		m.mu.Unlock()
		select {
		case <-wake:
		case <-timeout:
			return nil, &LostError{Rank: src, Tag: tag, Op: "recv"}
		}
	}
}
