// Package mpi is a message-passing runtime that stands in for the
// paper's GPU-aware MPI (mpi4py over MVAPICH2-GDR, § III-C). Each rank
// runs with a private data partition; ranks exchange data only through
// explicit messages, which are deep-copied on send so no memory is
// shared. The collectives implement the same algorithms the paper's cost
// model assumes (Thakur et al. [17]): binomial-tree broadcast,
// recursive-doubling allreduce/allgather for power-of-two rank counts,
// and ring reduce-scatter/allgather otherwise (the paper's experiments
// use p ∈ {1, 2, 3, 6, 12}, so non-power-of-two paths matter).
//
// The collectives run over a pluggable point-to-point Transport: the
// in-process mailbox world of Run (one goroutine per rank, the original
// behavior, bit for bit) or a length-prefixed TCP transport with a
// rendezvous bootstrap (ConnectTCP) for real multi-process runs. See
// ARCHITECTURE.md § Distributed transport for the interface contract,
// the bootstrap protocol, the failure/agreement semantics behind
// ErrRankLost and Comm.Heal, and the chunked-allreduce invariant.
//
// Per-rank traffic counters feed internal/perfmodel's communication model
// (ts + m·tw latency/bandwidth accounting).
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Comm is one rank's handle on the communicator, layering the collective
// schedule (SPMD tag sequencing, traffic counters, optional operation
// deadlines and allreduce chunking) over a Transport. A Comm is confined
// to its rank's goroutine and is not safe for concurrent use; concurrent
// point-to-point traffic belongs on the Transport directly.
type Comm struct {
	t         Transport
	collSeq   int // per-rank collective sequence number (SPMD ordering)
	epoch     int // incremented by Heal; scopes agreement tags
	opTimeout time.Duration
	chunk     int // allreduce pipeline chunk in elements; 0 = unchunked
	stats     Stats
}

// NewComm wraps a Transport endpoint in a communicator. All ranks of a
// group must construct their Comm over endpoints of the same group and
// keep settings (chunk size, timeouts) identical — the collectives are
// SPMD and both sides of every exchange must agree on the message
// schedule.
func NewComm(t Transport) *Comm { return &Comm{t: t} }

// Transport returns the underlying endpoint.
func (c *Comm) Transport() Transport { return c.t }

// SetOpTimeout bounds every point-to-point operation issued by this
// Comm: an operation that cannot complete within d fails with an error
// satisfying errors.Is(err, ErrRankLost). Zero (the default) waits
// forever, which is the right choice for the in-process world where a
// missing message is a bug, not a failure.
func (c *Comm) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// OpTimeout reports the per-operation timeout (zero = wait forever).
func (c *Comm) OpTimeout() time.Duration { return c.opTimeout }

// SetChunk sets the allreduce pipeline chunk size in float64 elements:
// payloads longer than elems are split so chunk k's reduce overlaps
// chunk k+1's transfer. Results are bit-identical to the unchunked path
// (same element pairing, same reduction order); only the message
// schedule changes. Zero disables chunking. All ranks must agree.
func (c *Comm) SetChunk(elems int) { c.chunk = elems }

// Stats counts traffic originated by one rank.
type Stats struct {
	SentMessages int64
	SentBytes    int64 // 8 bytes per float64 element
	Collectives  int64
}

// Stats returns a copy of the rank's traffic counters.
func (c *Comm) Stats() Stats { return c.stats }

// Rank returns the caller's rank in [0, Size).
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.t.Size() }

// deadline converts the Comm's operation timeout into an absolute
// deadline (zero when unbounded).
func (c *Comm) deadline() time.Time {
	if c.opTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.opTimeout)
}

// Run executes fn on p in-process ranks, one goroutine per rank, and
// blocks until all complete. Panics inside a rank are re-raised in the
// caller annotated with the rank. It returns the per-rank stats.
func Run(p int, fn func(c *Comm)) []Stats {
	return RunTransports(NewLocalWorld(p), fn)
}

// RunTransports is Run over caller-supplied endpoints (one per rank, in
// rank order): the seam the conformance and fault-injection suites use
// to drive the same SPMD body over any Transport implementation.
func RunTransports(ts []Transport, fn func(c *Comm)) []Stats {
	p := len(ts)
	if p == 0 {
		panic("mpi: non-positive rank count")
	}
	comms := make([]*Comm, p)
	errs := make([]any, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		comms[r] = NewComm(ts[r])
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs[r] = e
				}
			}()
			fn(comms[r])
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, e))
		}
	}
	stats := make([]Stats, p)
	for r := range stats {
		stats[r] = comms[r].stats
	}
	return stats
}

// Send transmits a copy of data to rank dst with the given tag
// (user tags must be non-negative; negative tags are reserved for
// collectives). A failure wraps the destination rank and tag and
// satisfies errors.Is(err, ErrRankLost) when the peer is gone.
func (c *Comm) Send(dst, tag int, data []float64) error {
	c.countSend(data)
	if err := c.t.Send(dst, tag, data, c.deadline()); err != nil {
		return fmt.Errorf("mpi: rank %d send to rank %d tag %d: %w", c.Rank(), dst, tag, err)
	}
	return nil
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload. A failure wraps the source rank and tag and
// satisfies errors.Is(err, ErrRankLost) when the peer is gone.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	data, err := c.t.Recv(src, tag, c.deadline())
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d recv from rank %d tag %d: %w", c.Rank(), src, tag, err)
	}
	return data, nil
}

func (c *Comm) countSend(data []float64) {
	c.stats.SentMessages++
	c.stats.SentBytes += int64(8 * len(data))
}

// collFailure carries a collective's transport error up through the
// collective call stack as a panic: the collectives are used inside
// krylov.BlockOp closures with no error return, so the failure unwinds
// to the nearest RecoverLost instead of threading through every
// signature.
type collFailure struct{ err error }

// RecoverLost converts a collective transport failure into an error
// return. Use it as the first deferred call of any function whose body
// runs collectives that may lose a rank:
//
//	func f(...) (err error) {
//		defer mpi.RecoverLost(&err)
//		...collectives...
//	}
//
// Panics that are not collective failures are re-raised unchanged.
func RecoverLost(errp *error) {
	e := recover()
	if e == nil {
		return
	}
	if cf, ok := e.(collFailure); ok {
		*errp = cf.err
		return
	}
	panic(e)
}

// send is the collective-internal send: it panics with a collFailure on
// transport error (unwound by RecoverLost).
func (c *Comm) send(dst, tag int, data []float64) {
	c.countSend(data)
	if err := c.t.Send(dst, tag, data, c.deadline()); err != nil {
		panic(collFailure{fmt.Errorf("mpi: rank %d collective send to rank %d tag %d: %w", c.Rank(), dst, tag, err)})
	}
}

// recv is the collective-internal receive, panicking like send.
func (c *Comm) recv(src, tag int) []float64 {
	data, err := c.t.Recv(src, tag, c.deadline())
	if err != nil {
		panic(collFailure{fmt.Errorf("mpi: rank %d collective recv from rank %d tag %d: %w", c.Rank(), src, tag, err)})
	}
	return data
}

// nextCollTag returns the reserved tag for the next collective. All ranks
// execute collectives in the same program order (SPMD), so sequence
// numbers agree across ranks. The tag is scoped by the heal epoch:
// messages from collectives abandoned when a rank was lost carry the old
// epoch's tags and can never be confused with post-heal traffic, however
// far ahead the failed schedule had run.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	c.stats.Collectives++
	return -(c.epoch<<collTagEpochShift + c.collSeq)
}

// collTagEpochShift gives each heal epoch 2³² collectives before its tags
// could touch the next epoch's range; agreement tags live further below
// (see agreeTagBase).
const collTagEpochShift = 32

// Barrier blocks until all ranks reach it (dissemination algorithm,
// ⌈log₂ p⌉ rounds).
func (c *Comm) Barrier() {
	p := c.Size()
	if p == 1 {
		c.nextCollTag()
		return
	}
	tag := c.nextCollTag()
	rank := c.Rank()
	for dist := 1; dist < p; dist *= 2 {
		to := (rank + dist) % p
		from := (rank - dist + p) % p
		c.send(to, tag, nil)
		c.recv(from, tag)
	}
}

// Bcast distributes root's data to every rank using a binomial tree
// (log p stages, as in the paper's MPI_Bcast cost model). data is
// overwritten on non-root ranks; all ranks must pass slices of equal
// length.
func (c *Comm) Bcast(root int, data []float64) {
	p := c.Size()
	tag := c.nextCollTag()
	if p == 1 {
		return
	}
	// Work in a rotated rank space where root is 0.
	vrank := (c.Rank() - root + p) % p
	// Receive from parent.
	if vrank != 0 {
		// The parent is vrank with its lowest set bit cleared.
		parent := ((vrank & (vrank - 1)) + root) % p
		got := c.recv(parent, tag)
		copy(data, got)
	}
	// Send to children: vrank | (1<<k) for k above vrank's lowest set bit.
	low := lowestBitPos(vrank)
	for k := low - 1; k >= 0; k-- {
		child := vrank | (1 << k)
		if child < p && child != vrank {
			c.send((child+root)%p, tag, data)
		}
	}
}

// lowestBitPos returns the position of the lowest set bit of v, or the
// number of bits needed for the tree when v is 0 (so the root sends to all
// levels).
func lowestBitPos(v int) int {
	if v == 0 {
		return 31
	}
	pos := 0
	for v&1 == 0 {
		v >>= 1
		pos++
	}
	return pos
}
