// Package mpi is an in-process message-passing runtime that stands in for
// the paper's GPU-aware MPI (mpi4py over MVAPICH2-GDR, § III-C). Each rank
// runs as a goroutine with a private data partition; ranks exchange data
// only through explicit messages, which are deep-copied on send so no
// memory is shared. The collectives implement the same algorithms the
// paper's cost model assumes (Thakur et al. [17]): binomial-tree broadcast,
// recursive-doubling allreduce/allgather for power-of-two rank counts, and
// ring reduce-scatter/allgather otherwise (the paper's experiments use
// p ∈ {1, 2, 3, 6, 12}, so non-power-of-two paths matter).
//
// Per-rank traffic counters feed internal/perfmodel's communication model
// (ts + m·tw latency/bandwidth accounting).
package mpi

import (
	"fmt"
	"sync"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  int
	data []float64
}

// world owns the mailboxes of a communicator group.
type world struct {
	size  int
	boxes [][]chan message // boxes[src][dst]
}

// Comm is one rank's handle on the communicator. A Comm is confined to its
// rank's goroutine and is not safe for concurrent use.
type Comm struct {
	w       *world
	rank    int
	collSeq int // per-rank collective sequence number (SPMD ordering)
	pending [][]message
	stats   Stats
}

// Stats counts traffic originated by one rank.
type Stats struct {
	SentMessages int64
	SentBytes    int64 // 8 bytes per float64 element
	Collectives  int64
}

// Stats returns a copy of the rank's traffic counters.
func (c *Comm) Stats() Stats { return c.stats }

// Rank returns the caller's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// Run executes fn on p ranks, one goroutine per rank, and blocks until all
// complete. Panics inside a rank are re-raised in the caller annotated
// with the rank. It returns the per-rank stats.
func Run(p int, fn func(c *Comm)) []Stats {
	if p <= 0 {
		panic("mpi: non-positive rank count")
	}
	w := &world{size: p, boxes: make([][]chan message, p)}
	for s := range w.boxes {
		w.boxes[s] = make([]chan message, p)
		for d := range w.boxes[s] {
			w.boxes[s][d] = make(chan message, 1024)
		}
	}
	comms := make([]*Comm, p)
	errs := make([]any, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		comms[r] = &Comm{w: w, rank: r, pending: make([][]message, p)}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs[r] = e
				}
			}()
			fn(comms[r])
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, e))
		}
	}
	stats := make([]Stats, p)
	for r := range stats {
		stats[r] = comms[r].stats
	}
	return stats
}

// Send transmits a copy of data to rank dst with the given tag
// (user tags must be non-negative; negative tags are reserved for
// collectives).
func (c *Comm) Send(dst, tag int, data []float64) {
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float64) {
	if dst == c.rank {
		panic("mpi: send to self")
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.stats.SentMessages++
	c.stats.SentBytes += int64(8 * len(data))
	c.w.boxes[c.rank][dst] <- message{tag: tag, data: cp}
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload.
func (c *Comm) Recv(src, tag int) []float64 {
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) []float64 {
	// First check messages that arrived out of tag order.
	pend := c.pending[src]
	for i, m := range pend {
		if m.tag == tag {
			c.pending[src] = append(pend[:i], pend[i+1:]...)
			return m.data
		}
	}
	for {
		m := <-c.w.boxes[src][c.rank]
		if m.tag == tag {
			return m.data
		}
		c.pending[src] = append(c.pending[src], m)
	}
}

// nextCollTag returns the reserved tag for the next collective. All ranks
// execute collectives in the same program order (SPMD), so sequence
// numbers agree across ranks.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	c.stats.Collectives++
	return -c.collSeq
}

// Barrier blocks until all ranks reach it (dissemination algorithm,
// ⌈log₂ p⌉ rounds).
func (c *Comm) Barrier() {
	p := c.w.size
	if p == 1 {
		c.nextCollTag()
		return
	}
	tag := c.nextCollTag()
	for dist := 1; dist < p; dist *= 2 {
		to := (c.rank + dist) % p
		from := (c.rank - dist + p) % p
		c.send(to, tag, nil)
		c.recv(from, tag)
	}
}

// Bcast distributes root's data to every rank using a binomial tree
// (log p stages, as in the paper's MPI_Bcast cost model). data is
// overwritten on non-root ranks; all ranks must pass slices of equal
// length.
func (c *Comm) Bcast(root int, data []float64) {
	p := c.w.size
	tag := c.nextCollTag()
	if p == 1 {
		return
	}
	// Work in a rotated rank space where root is 0.
	vrank := (c.rank - root + p) % p
	// Receive from parent.
	if vrank != 0 {
		// The parent is vrank with its lowest set bit cleared.
		parent := ((vrank & (vrank - 1)) + root) % p
		got := c.recv(parent, tag)
		copy(data, got)
	}
	// Send to children: vrank | (1<<k) for k above vrank's lowest set bit.
	low := lowestBitPos(vrank)
	for k := low - 1; k >= 0; k-- {
		child := vrank | (1 << k)
		if child < p && child != vrank {
			c.send((child+root)%p, tag, data)
		}
	}
}

// lowestBitPos returns the position of the lowest set bit of v, or the
// number of bits needed for the tree when v is 0 (so the root sends to all
// levels).
func lowestBitPos(v int) int {
	if v == 0 {
		return 31
	}
	pos := 0
	for v&1 == 0 {
		v >>= 1
		pos++
	}
	return pos
}
