package mpi

// Op is a reduction operator for Allreduce.
type Op int

// Supported reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (op Op) reduce(dst, src []float64) {
	switch op {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic("mpi: unknown reduction op")
	}
}

// Allreduce reduces data element-wise across all ranks and leaves the
// result in data on every rank. Power-of-two rank counts use recursive
// doubling (log p steps, the paper's MPI_Allreduce model ❶); other counts
// use a bandwidth-optimal ring reduce-scatter + ring allgather, which also
// covers the paper's 3-, 6- and 12-GPU configurations.
//
// With SetChunk, each pairwise exchange is pipelined: the payload is
// split into fixed-size chunks and chunk k is reduced while chunk k+1 is
// in flight. The element pairing and per-element reduction order are
// unchanged, so the result is bit-identical to the unchunked path.
func (c *Comm) Allreduce(data []float64, op Op) {
	p := c.Size()
	tag := c.nextCollTag()
	if p == 1 {
		return
	}
	if p&(p-1) == 0 {
		c.allreduceRecursiveDoubling(tag, data, op)
		return
	}
	c.allreduceRing(tag, data, op)
}

func (c *Comm) allreduceRecursiveDoubling(tag int, data []float64, op Op) {
	p := c.Size()
	rank := c.Rank()
	for mask := 1; mask < p; mask <<= 1 {
		partner := rank ^ mask
		c.exchangeReduce(partner, partner, tag, data, data, op)
	}
}

func (c *Comm) allreduceRing(tag int, data []float64, op Op) {
	p := c.Size()
	rank := c.Rank()
	n := len(data)
	bound := func(i int) int { return i * n / p }
	chunk := func(i int) []float64 {
		i = ((i % p) + p) % p
		return data[bound(i):bound(i+1)]
	}
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	// Reduce-scatter: after p-1 steps, this rank owns the fully reduced
	// chunk (rank+1) mod p. Per step, chunk(rank-step) goes right while
	// the left neighbour's copy of chunk(rank-step-1) is reduced in —
	// both sides of each pairwise exchange carry the same global chunk
	// index, so the pipelined sub-chunk schedules agree.
	for step := 0; step < p-1; step++ {
		c.exchangeReduce(right, left, tag, chunk(rank-step), chunk(rank-step-1), op)
	}
	// Ring allgather of the reduced chunks (copy only — nothing to
	// overlap, so it is never sub-chunked).
	for step := 0; step < p-1; step++ {
		c.send(right, tag, chunk(rank+1-step))
		recvIdx := rank - step
		copy(chunk(recvIdx), c.recv(left, tag))
	}
}

// exchangeReduce sends sendSeg to rank to and reduces the matching
// segment arriving from rank from into redSeg (the two are the same
// slice in recursive doubling). With chunking enabled the exchange is
// pipelined: chunk k's reduce overlaps chunk k+1's transfer. Both sides
// of an exchange derive their sub-chunk counts from the segment lengths
// (⌈len/chunk⌉ messages for a segment), which agree pairwise because the
// sender's segment and the receiver's reduce segment share a length.
func (c *Comm) exchangeReduce(to, from, tag int, sendSeg, redSeg []float64, op Op) {
	ck := c.chunk
	if ck <= 0 {
		c.send(to, tag, sendSeg)
		op.reduce(redSeg, c.recv(from, tag))
		return
	}
	// A segment of length m always travels as numChunks(m) messages — a
	// pure function of the length, so sender and receiver agree without
	// negotiation (their segment lengths match pairwise). Prime the
	// pipeline with one send, then alternate send(k+1)/reduce(k) so a
	// chunk is in flight while the previous one is reduced. In recursive
	// doubling sendSeg and redSeg alias: safe, because chunk k is always
	// deep-copied by the transport before iteration k reduces it.
	numChunks := func(m int) int {
		if m <= ck {
			return 1
		}
		return (m + ck - 1) / ck
	}
	toSend, toRecv := numChunks(len(sendSeg)), numChunks(len(redSeg))
	sLo, rLo := 0, 0
	sendNext := func() {
		hi := min(sLo+ck, len(sendSeg))
		c.send(to, tag, sendSeg[sLo:hi])
		sLo = hi
		toSend--
	}
	sendNext()
	for toSend > 0 || toRecv > 0 {
		if toSend > 0 {
			sendNext()
		}
		if toRecv > 0 {
			hi := min(rLo+ck, len(redSeg))
			op.reduce(redSeg[rLo:hi], c.recv(from, tag))
			rLo = hi
			toRecv--
		}
	}
}

// AllreduceScalar reduces a single value across all ranks.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	buf := []float64{v}
	c.Allreduce(buf, op)
	return buf[0]
}

// Allgather concatenates equal-length blocks from every rank, ordered by
// rank (ring algorithm, p−1 steps). It returns a slice of length
// p·len(local).
func (c *Comm) Allgather(local []float64) []float64 {
	p := c.Size()
	rank := c.Rank()
	tag := c.nextCollTag()
	bl := len(local)
	out := make([]float64, p*bl)
	copy(out[rank*bl:(rank+1)*bl], local)
	if p == 1 {
		return out
	}
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := ((rank-step)%p + p) % p
		recvIdx := ((rank-step-1)%p + p) % p
		c.send(right, tag, out[sendIdx*bl:(sendIdx+1)*bl])
		copy(out[recvIdx*bl:(recvIdx+1)*bl], c.recv(left, tag))
	}
	return out
}

// Allgatherv concatenates variable-length blocks from every rank, ordered
// by rank. It returns the concatenation and the per-rank counts. This is
// the MPI_Allgather of Algorithm 3 line 9, where each rank contributes the
// eigenvalues of its c/p blocks (c may not divide evenly).
func (c *Comm) Allgatherv(local []float64) ([]float64, []int) {
	p := c.Size()
	rank := c.Rank()
	// Exchange counts first (small allgather).
	countsF := c.Allgather([]float64{float64(len(local))})
	counts := make([]int, p)
	offs := make([]int, p+1)
	for i, v := range countsF {
		counts[i] = int(v)
		offs[i+1] = offs[i] + counts[i]
	}
	tag := c.nextCollTag()
	out := make([]float64, offs[p])
	copy(out[offs[rank]:offs[rank+1]], local)
	if p == 1 {
		return out, counts
	}
	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := ((rank-step)%p + p) % p
		recvIdx := ((rank-step-1)%p + p) % p
		c.send(right, tag, out[offs[sendIdx]:offs[sendIdx+1]])
		copy(out[offs[recvIdx]:offs[recvIdx+1]], c.recv(left, tag))
	}
	return out, counts
}

// AllreduceMaxLoc returns the globally maximal value and the rank-local
// location data associated with it (val, ownerRank, loc). Ties break
// toward the smallest owner rank, then smallest loc, so all ranks agree
// deterministically. This backs the ROUND step's global argmax (§ III-C,
// MPI_Allreduce usage ❶ for the objective).
func (c *Comm) AllreduceMaxLoc(val float64, loc int) (float64, int, int) {
	p := c.Size()
	packed := c.Allgather([]float64{val, float64(loc)})
	bestRank, bestLoc := 0, int(packed[1])
	bestVal := packed[0]
	for r := 1; r < p; r++ {
		v, l := packed[2*r], int(packed[2*r+1])
		if v > bestVal || (v == bestVal && r < bestRank) {
			bestVal, bestRank, bestLoc = v, r, l
		}
	}
	return bestVal, bestRank, bestLoc
}

// AllreduceMinLoc is the min analogue of AllreduceMaxLoc.
func (c *Comm) AllreduceMinLoc(val float64, loc int) (float64, int, int) {
	v, r, l := c.AllreduceMaxLoc(-val, loc)
	return -v, r, l
}

// Partition computes this rank's contiguous share [lo, hi) of n items
// distributed as evenly as possible across all ranks (the "evenly
// distributing h_i and x_i of n points across p GPUs" of § III-C).
func Partition(n, size, rank int) (lo, hi int) {
	lo = rank * n / size
	hi = (rank + 1) * n / size
	return lo, hi
}
