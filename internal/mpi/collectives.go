package mpi

// Op is a reduction operator for Allreduce.
type Op int

// Supported reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (op Op) reduce(dst, src []float64) {
	switch op {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic("mpi: unknown reduction op")
	}
}

// Allreduce reduces data element-wise across all ranks and leaves the
// result in data on every rank. Power-of-two rank counts use recursive
// doubling (log p steps, the paper's MPI_Allreduce model ❶); other counts
// use a bandwidth-optimal ring reduce-scatter + ring allgather, which also
// covers the paper's 3-, 6- and 12-GPU configurations.
func (c *Comm) Allreduce(data []float64, op Op) {
	p := c.w.size
	tag := c.nextCollTag()
	if p == 1 {
		return
	}
	if p&(p-1) == 0 {
		c.allreduceRecursiveDoubling(tag, data, op)
		return
	}
	c.allreduceRing(tag, data, op)
}

func (c *Comm) allreduceRecursiveDoubling(tag int, data []float64, op Op) {
	p := c.w.size
	for mask := 1; mask < p; mask <<= 1 {
		partner := c.rank ^ mask
		c.send(partner, tag, data)
		op.reduce(data, c.recv(partner, tag))
	}
}

func (c *Comm) allreduceRing(tag int, data []float64, op Op) {
	p := c.w.size
	n := len(data)
	bound := func(i int) int { return i * n / p }
	chunk := func(i int) []float64 {
		i = ((i % p) + p) % p
		return data[bound(i):bound(i+1)]
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	// Reduce-scatter: after p-1 steps, this rank owns the fully reduced
	// chunk (rank+1) mod p.
	for step := 0; step < p-1; step++ {
		c.send(right, tag, chunk(c.rank-step))
		op.reduce(chunk(c.rank-step-1), c.recv(left, tag))
	}
	// Ring allgather of the reduced chunks.
	for step := 0; step < p-1; step++ {
		c.send(right, tag, chunk(c.rank+1-step))
		recvIdx := c.rank - step
		copy(chunk(recvIdx), c.recv(left, tag))
	}
}

// AllreduceScalar reduces a single value across all ranks.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	buf := []float64{v}
	c.Allreduce(buf, op)
	return buf[0]
}

// Allgather concatenates equal-length blocks from every rank, ordered by
// rank (ring algorithm, p−1 steps). It returns a slice of length
// p·len(local).
func (c *Comm) Allgather(local []float64) []float64 {
	p := c.w.size
	tag := c.nextCollTag()
	bl := len(local)
	out := make([]float64, p*bl)
	copy(out[c.rank*bl:(c.rank+1)*bl], local)
	if p == 1 {
		return out
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := ((c.rank-step)%p + p) % p
		recvIdx := ((c.rank-step-1)%p + p) % p
		c.send(right, tag, out[sendIdx*bl:(sendIdx+1)*bl])
		copy(out[recvIdx*bl:(recvIdx+1)*bl], c.recv(left, tag))
	}
	return out
}

// Allgatherv concatenates variable-length blocks from every rank, ordered
// by rank. It returns the concatenation and the per-rank counts. This is
// the MPI_Allgather of Algorithm 3 line 9, where each rank contributes the
// eigenvalues of its c/p blocks (c may not divide evenly).
func (c *Comm) Allgatherv(local []float64) ([]float64, []int) {
	p := c.w.size
	// Exchange counts first (small allgather).
	countsF := c.Allgather([]float64{float64(len(local))})
	counts := make([]int, p)
	offs := make([]int, p+1)
	for i, v := range countsF {
		counts[i] = int(v)
		offs[i+1] = offs[i] + counts[i]
	}
	tag := c.nextCollTag()
	out := make([]float64, offs[p])
	copy(out[offs[c.rank]:offs[c.rank+1]], local)
	if p == 1 {
		return out, counts
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := ((c.rank-step)%p + p) % p
		recvIdx := ((c.rank-step-1)%p + p) % p
		c.send(right, tag, out[offs[sendIdx]:offs[sendIdx+1]])
		copy(out[offs[recvIdx]:offs[recvIdx+1]], c.recv(left, tag))
	}
	return out, counts
}

// AllreduceMaxLoc returns the globally maximal value and the rank-local
// location data associated with it (val, ownerRank, loc). Ties break
// toward the smallest owner rank, then smallest loc, so all ranks agree
// deterministically. This backs the ROUND step's global argmax (§ III-C,
// MPI_Allreduce usage ❶ for the objective).
func (c *Comm) AllreduceMaxLoc(val float64, loc int) (float64, int, int) {
	p := c.w.size
	packed := c.Allgather([]float64{val, float64(loc)})
	bestRank, bestLoc := 0, int(packed[1])
	bestVal := packed[0]
	for r := 1; r < p; r++ {
		v, l := packed[2*r], int(packed[2*r+1])
		if v > bestVal || (v == bestVal && r < bestRank) {
			bestVal, bestRank, bestLoc = v, r, l
		}
	}
	return bestVal, bestRank, bestLoc
}

// AllreduceMinLoc is the min analogue of AllreduceMaxLoc.
func (c *Comm) AllreduceMinLoc(val float64, loc int) (float64, int, int) {
	v, r, l := c.AllreduceMaxLoc(-val, loc)
	return -v, r, l
}

// Partition computes this rank's contiguous share [lo, hi) of n items
// distributed as evenly as possible across all ranks (the "evenly
// distributing h_i and x_i of n points across p GPUs" of § III-C).
func Partition(n, size, rank int) (lo, hi int) {
	lo = rank * n / size
	hi = (rank + 1) * n / size
	return lo, hi
}
