// Package mpitest is the transport conformance and fault-injection kit:
// a single table-driven suite covering the full collectives matrix
// (broadcast from every root, allreduce sum/max/min, ragged allgatherv
// payloads, concurrent per-tag point-to-point traffic, deep-copy
// aliasing) that every mpi.Transport implementation must pass, plus a
// FaultTransport wrapper that kills, partitions or delays a chosen rank
// at a chosen collective step for failure-recovery tests.
//
// Registering a new transport is one RunConformance call with a Factory;
// see conformance_test.go in internal/mpi for the in-process and
// TCP-loopback registrations.
package mpitest

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// noDeadline is the explicit "wait forever" deadline of the Transport
// contract.
func noDeadline() time.Time { return time.Time{} }

// Factory builds a connected transport group of size p, one endpoint per
// rank in rank order. Cleanup (closing endpoints, freeing ports) should
// be registered on t.
type Factory func(t testing.TB, p int) []mpi.Transport

// Sizes is the rank-count matrix of the conformance suite: the paper's
// GPU counts plus the awkward in-between values.
var Sizes = []int{1, 2, 3, 4, 6, 12}

// RunConformance runs the full collectives matrix against the factory's
// transport. Every subtest builds a fresh group, so factories may be
// stateful per call.
func RunConformance(t *testing.T, f Factory) {
	t.Run("Bcast", func(t *testing.T) { conformBcast(t, f) })
	t.Run("Allreduce", func(t *testing.T) { conformAllreduce(t, f) })
	t.Run("AllreduceChunked", func(t *testing.T) { conformAllreduceChunked(t, f) })
	t.Run("RaggedAllgatherv", func(t *testing.T) { conformRagged(t, f) })
	t.Run("MaxLoc", func(t *testing.T) { conformMaxLoc(t, f) })
	t.Run("Barrier", func(t *testing.T) { conformBarrier(t, f) })
	t.Run("ConcurrentTags", func(t *testing.T) { conformConcurrentTags(t, f) })
	t.Run("SendAliasing", func(t *testing.T) { conformAliasing(t, f) })
	t.Run("MixedSequence", func(t *testing.T) { conformMixed(t, f) })
}

func conformBcast(t *testing.T, f Factory) {
	for _, p := range Sizes {
		for root := 0; root < p; root++ {
			mpi.RunTransports(f(t, p), func(c *mpi.Comm) {
				data := make([]float64, 5)
				if c.Rank() == root {
					for i := range data {
						data[i] = float64(10*root + i)
					}
				}
				c.Bcast(root, data)
				for i := range data {
					if data[i] != float64(10*root+i) {
						t.Errorf("p=%d root=%d rank=%d: bcast got %v", p, root, c.Rank(), data)
						return
					}
				}
			})
		}
	}
}

func conformAllreduce(t *testing.T, f Factory) {
	for _, p := range Sizes {
		for _, n := range []int{1, 3, 64, 101} {
			mpi.RunTransports(f(t, p), func(c *mpi.Comm) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()*n + i)
				}
				c.Allreduce(data, mpi.Sum)
				for i := range data {
					want := float64(n*p*(p-1)/2 + p*i)
					if data[i] != want {
						t.Errorf("p=%d n=%d rank=%d: sum[%d]=%g want %g", p, n, c.Rank(), i, data[i], want)
						return
					}
				}
				mx := []float64{float64(c.Rank()), -float64(c.Rank())}
				c.Allreduce(mx, mpi.Max)
				if mx[0] != float64(p-1) || mx[1] != 0 {
					t.Errorf("p=%d rank=%d: max got %v", p, c.Rank(), mx)
				}
				mn := []float64{float64(c.Rank())}
				c.Allreduce(mn, mpi.Min)
				if mn[0] != 0 {
					t.Errorf("p=%d rank=%d: min got %v", p, c.Rank(), mn)
				}
			})
		}
	}
}

// conformAllreduceChunked pins the chunked pipeline to the unchunked
// result on every transport, including chunk > payload and
// payload % chunk ≠ 0.
func conformAllreduceChunked(t *testing.T, f Factory) {
	input := func(rank int, data []float64) {
		for i := range data {
			data[i] = 1 / float64(1+rank+i)
		}
	}
	for _, p := range Sizes {
		// The invariant is chunked == unchunked bit for bit — the
		// reduction order is algorithmic, not sequential, so the
		// reference is an unchunked run (transport-independent).
		want := make([][]float64, p)
		mpi.Run(p, func(c *mpi.Comm) {
			data := make([]float64, 37)
			input(c.Rank(), data)
			c.Allreduce(data, mpi.Sum)
			want[c.Rank()] = data
		})
		for _, chunk := range []int{1, 3, 16, 1000} {
			mpi.RunTransports(f(t, p), func(c *mpi.Comm) {
				c.SetChunk(chunk)
				data := make([]float64, 37)
				input(c.Rank(), data)
				c.Allreduce(data, mpi.Sum)
				for i := range data {
					if data[i] != want[c.Rank()][i] {
						t.Errorf("p=%d chunk=%d rank=%d: [%d]=%g want %g", p, chunk, c.Rank(), i, data[i], want[c.Rank()][i])
						return
					}
				}
			})
		}
	}
}

func conformRagged(t *testing.T, f Factory) {
	for _, p := range Sizes {
		mpi.RunTransports(f(t, p), func(c *mpi.Comm) {
			// Rank r contributes r+1 elements (including a rank with the
			// minimum payload), each equal to r.
			local := make([]float64, c.Rank()+1)
			for i := range local {
				local[i] = float64(c.Rank())
			}
			out, counts := c.Allgatherv(local)
			if len(out) != p*(p+1)/2 {
				t.Errorf("p=%d: total %d", p, len(out))
				return
			}
			idx := 0
			for r := 0; r < p; r++ {
				if counts[r] != r+1 {
					t.Errorf("p=%d: counts[%d]=%d", p, r, counts[r])
					return
				}
				for k := 0; k < counts[r]; k++ {
					if out[idx] != float64(r) {
						t.Errorf("p=%d: element %d = %g want %d", p, idx, out[idx], r)
						return
					}
					idx++
				}
			}
		})
	}
}

func conformMaxLoc(t *testing.T, f Factory) {
	for _, p := range Sizes {
		mpi.RunTransports(f(t, p), func(c *mpi.Comm) {
			val := float64(c.Rank() % 3)
			v, r, loc := c.AllreduceMaxLoc(val, 100+c.Rank())
			wantRank, wantVal := 0, 0.0
			for q := 0; q < p; q++ {
				if qv := float64(q % 3); qv > wantVal {
					wantVal, wantRank = qv, q
				}
			}
			if v != wantVal || r != wantRank || loc != 100+wantRank {
				t.Errorf("p=%d rank=%d: maxloc (%g,%d,%d)", p, c.Rank(), v, r, loc)
			}
		})
	}
}

func conformBarrier(t *testing.T, f Factory) {
	for _, p := range Sizes {
		var mu sync.Mutex
		arrived := make([]bool, p)
		mpi.RunTransports(f(t, p), func(c *mpi.Comm) {
			mu.Lock()
			arrived[c.Rank()] = true
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			defer mu.Unlock()
			for r, ok := range arrived {
				if !ok {
					t.Errorf("p=%d: rank %d passed the barrier before rank %d arrived", p, c.Rank(), r)
				}
			}
		})
	}
}

// conformConcurrentTags drives concurrent per-tag point-to-point traffic
// on the raw transport (the Transport contract requires concurrency
// safety; Comm does not). Under -race this doubles as the data-race
// check of the tentpole's satellite.
func conformConcurrentTags(t *testing.T, f Factory) {
	const tags = 8
	for _, p := range Sizes {
		if p == 1 {
			continue
		}
		ts := f(t, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(tr mpi.Transport) {
				defer wg.Done()
				me := tr.Rank()
				dst := (me + 1) % p
				src := (me - 1 + p) % p
				var inner sync.WaitGroup
				for tag := 0; tag < tags; tag++ {
					inner.Add(2)
					go func(tag int) {
						defer inner.Done()
						payload := []float64{float64(me), float64(tag), float64(me * tag)}
						if err := tr.Send(dst, tag, payload, noDeadline()); err != nil {
							t.Errorf("p=%d rank=%d tag=%d: send: %v", p, me, tag, err)
						}
					}(tag)
					go func(tag int) {
						defer inner.Done()
						got, err := tr.Recv(src, tag, noDeadline())
						if err != nil {
							t.Errorf("p=%d rank=%d tag=%d: recv: %v", p, me, tag, err)
							return
						}
						if len(got) != 3 || got[0] != float64(src) || got[1] != float64(tag) || got[2] != float64(src*tag) {
							t.Errorf("p=%d rank=%d tag=%d: payload %v", p, me, tag, got)
						}
					}(tag)
				}
				inner.Wait()
			}(ts[r])
		}
		wg.Wait()
	}
}

// conformAliasing is the explicit deep-copy-on-send regression test: a
// sender mutating its buffer right after Send must not corrupt what the
// receiver sees, on any transport.
func conformAliasing(t *testing.T, f Factory) {
	mpi.RunTransports(f(t, 2), func(c *mpi.Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			if err := c.Send(1, 5, buf); err != nil {
				t.Errorf("send: %v", err)
			}
			buf[0], buf[1], buf[2] = 99, 98, 97 // must not reach rank 1
			c.Barrier()
		} else {
			c.Barrier()
			got, err := c.Recv(0, 5)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Errorf("send aliased the sender's buffer: %v", got)
			}
		}
	})
}

func conformMixed(t *testing.T, f Factory) {
	mpi.RunTransports(f(t, 6), func(c *mpi.Comm) {
		a := []float64{1}
		c.Allreduce(a, mpi.Sum)
		if a[0] != 6 {
			t.Errorf("first allreduce %g", a[0])
		}
		b := make([]float64, 2)
		if c.Rank() == 3 {
			b[0], b[1] = 5, 6
		}
		c.Bcast(3, b)
		if b[0] != 5 || b[1] != 6 {
			t.Errorf("bcast after allreduce %v", b)
		}
		c.Barrier()
		g := c.Allgather([]float64{float64(c.Rank())})
		for r := 0; r < 6; r++ {
			if g[r] != float64(r) {
				t.Errorf("allgather after barrier %v", g)
				return
			}
		}
	})
}
