package mpitest

import (
	"errors"
	"sync"
	"time"

	"repro/internal/mpi"
)

// FaultKind selects what happens to the victim once the fault fires.
type FaultKind int

const (
	// FaultKill crash-stops the victim: its own operations fail with
	// ErrVictimKilled (so the rank's goroutine exits its SPMD body) and
	// nothing it sends is delivered. Survivors observe silence, time out,
	// and agree the victim dead.
	FaultKill FaultKind = iota
	// FaultPartition cuts the victim off in both directions but leaves
	// it running: survivors heal to a (p−1)-group while the victim times
	// out on everyone and heals to a group of one (the split-brain
	// outcome the agreement doc warns about).
	FaultPartition
	// FaultDelay holds the victim's outgoing messages for Delay before
	// delivery. With Delay below the operation timeout nothing is lost —
	// the false-positive guard: selections must match the fault-free run.
	FaultDelay
)

// ErrVictimKilled is what the killed rank itself observes — deliberately
// not an ErrRankLost, so a victim cannot mistake its own death for a
// peer's and try to heal.
var ErrVictimKilled = errors.New("mpitest: rank killed by fault plan")

// FaultPlan schedules one fault: Victim suffers Kind at the moment its
// own endpoint has seen AfterCollectives distinct collective operations
// begin (collective tags are negative and strictly decreasing per
// epoch, so distinct tags count collective steps). Zero means
// immediately.
type FaultPlan struct {
	Victim           int
	Kind             FaultKind
	AfterCollectives int
	Delay            time.Duration

	mu      sync.Mutex
	seen    int
	lastTag int
	fired   bool
}

// step observes a tag passing through the victim's endpoint and reports
// whether the fault is active.
func (p *FaultPlan) step(tag int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if tag < 0 && tag != p.lastTag {
		p.lastTag = tag
		p.seen++
	}
	if !p.fired && p.seen > p.AfterCollectives {
		p.fired = true
	}
	return p.fired
}

func (p *FaultPlan) active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Wrap applies the plan to a transport group: the victim's endpoint is
// wrapped so the fault triggers at the chosen collective step, and —
// for Kill and Partition — the other endpoints stop exchanging with the
// victim too (matching a real network, where both directions die).
func (p *FaultPlan) Wrap(ts []mpi.Transport) []mpi.Transport {
	out := make([]mpi.Transport, len(ts))
	for r, t := range ts {
		out[r] = &faultTransport{Transport: t, plan: p}
	}
	return out
}

// faultTransport injects the plan's fault around a single endpoint.
type faultTransport struct {
	mpi.Transport
	plan *FaultPlan
}

// blockedPair reports whether traffic between this endpoint and peer is
// cut by the active fault.
func (f *faultTransport) blockedPair(peer int) bool {
	me := f.Transport.Rank()
	victim := f.plan.Victim
	switch f.plan.Kind {
	case FaultKill, FaultPartition:
		return me == victim || peer == victim
	default:
		return false
	}
}

func (f *faultTransport) Send(dst, tag int, data []float64, deadline time.Time) error {
	me := f.Transport.Rank()
	fired := f.plan.active()
	if me == f.plan.Victim {
		fired = f.plan.step(tag)
	}
	if !fired || !f.blockedPair(dst) {
		if fired && f.plan.Kind == FaultDelay && me == f.plan.Victim {
			time.Sleep(f.plan.Delay)
		}
		return f.Transport.Send(dst, tag, data, deadline)
	}
	if me == f.plan.Victim && f.plan.Kind == FaultKill {
		return ErrVictimKilled
	}
	// Partition (either side) and survivor→victim sends vanish silently,
	// like packets into a dead host.
	return nil
}

func (f *faultTransport) Recv(src, tag int, deadline time.Time) ([]float64, error) {
	me := f.Transport.Rank()
	fired := f.plan.active()
	if me == f.plan.Victim {
		fired = f.plan.step(tag)
	}
	if !fired || !f.blockedPair(src) {
		return f.Transport.Recv(src, tag, deadline)
	}
	if me == f.plan.Victim && f.plan.Kind == FaultKill {
		return nil, ErrVictimKilled
	}
	// The pair is cut: messages deposited before the fault must not be
	// seen either, so just run out the deadline like a silent peer.
	if deadline.IsZero() {
		select {} // no deadline, no fault recovery: hang like a real loss
	}
	time.Sleep(time.Until(deadline))
	return nil, &mpi.LostError{Rank: src, Tag: tag, Op: "recv"}
}
