package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestChunkedAllreduceBitIdentical pins the chunk-pipelined allreduce to
// the unchunked path bit for bit, across rank counts (both the
// recursive-doubling and ring algorithms), payload sizes, and chunk
// sizes including chunk > payload and payload % chunk ≠ 0. Floating
// point makes "equal" mean "same pairing and reduction order", which is
// exactly the chunking invariant documented in ARCHITECTURE.md.
func TestChunkedAllreduceBitIdentical(t *testing.T) {
	run := func(p, n, chunk int, inputs [][]float64, op Op) [][]float64 {
		out := make([][]float64, p)
		Run(p, func(c *Comm) {
			c.SetChunk(chunk)
			data := append([]float64(nil), inputs[c.Rank()]...)
			c.Allreduce(data, op)
			out[c.Rank()] = data
		})
		return out
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(13)
		n := 1 + rng.Intn(120)
		// Chunk menu: tiny, misaligned, equal, larger than the payload.
		chunks := []int{1, 1 + rng.Intn(7), n, n + 1 + rng.Intn(50)}
		op := []Op{Sum, Max, Min}[rng.Intn(3)]
		inputs := make([][]float64, p)
		for r := range inputs {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
			}
		}
		want := run(p, n, 0, inputs, op)
		for _, ck := range chunks {
			got := run(p, n, ck, inputs, op)
			for r := range got {
				for i := range got[r] {
					if got[r][i] != want[r][i] {
						t.Logf("p=%d n=%d chunk=%d op=%d rank=%d elem=%d: %g != %g",
							p, n, ck, op, r, i, got[r][i], want[r][i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedAllreduceMessageCount checks chunking actually splits the
// wire schedule (the pipelining is real, not a no-op): halving the chunk
// roughly doubles the allreduce's message count at fixed payload.
func TestChunkedAllreduceMessageCount(t *testing.T) {
	msgs := func(chunk int) int64 {
		stats := Run(4, func(c *Comm) {
			c.SetChunk(chunk)
			data := make([]float64, 64)
			c.Allreduce(data, Sum)
		})
		return stats[0].SentMessages
	}
	unchunked := msgs(0)
	chunked := msgs(16)
	if chunked != 4*unchunked {
		t.Fatalf("chunk=16 over 64 elements: %d messages, want %d (4× the unchunked %d)",
			chunked, 4*unchunked, unchunked)
	}
}
