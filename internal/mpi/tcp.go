package mpi

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// The TCP transport puts a real wire under the collectives: one
// length-prefixed stream per unordered rank pair, a per-peer writer
// goroutine so sends never block on the socket, and a per-peer reader
// goroutine that demultiplexes frames into the shared matcher. Failures
// (reset, EOF, write error) mark the peer dead, which every pending and
// future operation against that peer observes as ErrRankLost.
//
// Bootstrap (rendezvous): rank 0 listens on a well-known address; ranks
// 1..p−1 dial it, register their own data-listener port, and receive the
// full address table back. Rank r then dials every rank q < r (rank 0's
// data conns arrive on the rendezvous listener itself) and accepts a
// conn from every rank q > r, so each pair shares exactly one conn,
// dialed by the higher rank. Hosts are taken from the registering
// conn's remote address, so they are routable wherever the rendezvous
// address is.

// Frame layout: [int64 tag][int64 count][count × float64], all little
// endian. maxFrameElems bounds count so a corrupt or hostile header
// cannot drive a huge allocation.
const maxFrameElems = 1 << 28 // 2 GiB of payload

// Conn-opening preamble kinds on a listener.
const (
	tcpKindRegister = 0 // rendezvous registration: [kind][rank][dataPort]
	tcpKindData     = 1 // pairwise data conn hello: [kind][rank]
)

const tcpDefaultBootstrapTimeout = 60 * time.Second

func putFrame(buf []byte, tag int, data []float64) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(len(data))))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[16+8*i:], math.Float64bits(v))
	}
}

func encodeFrame(tag int, data []float64) []byte {
	buf := make([]byte, 16+8*len(data))
	putFrame(buf, tag, data)
	return buf
}

func readFrame(r io.Reader) (tag int, data []float64, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	tag = int(int64(binary.LittleEndian.Uint64(hdr[0:])))
	n := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if n < 0 || n > maxFrameElems {
		return 0, nil, fmt.Errorf("mpi: tcp frame announces %d elements", n)
	}
	payload := make([]byte, 8*n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	data = make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return tag, data, nil
}

// tcpPeer is one live pairwise connection.
type tcpPeer struct {
	rank int
	conn net.Conn
	out  chan []byte
	gone chan struct{} // closed once the peer is marked dead
	once sync.Once
}

// tcpTransport implements Transport over pairwise TCP conns.
type tcpTransport struct {
	rank, size int
	m          *matcher
	peers      []*tcpPeer // nil at the self index
	listeners  []net.Listener
	quit       chan struct{} // closed by Close; writers drain and flush
	closeOnce  sync.Once
	wg         sync.WaitGroup
	writerWg   sync.WaitGroup
}

func (t *tcpTransport) Rank() int { return t.rank }
func (t *tcpTransport) Size() int { return t.size }

// fail marks a peer dead: its conn is closed, pending recvs from it
// error out, and future sends to it return immediately.
func (t *tcpTransport) fail(p *tcpPeer, cause error) {
	p.once.Do(func() {
		t.m.markDead(p.rank, &LostError{Rank: p.rank, Op: "conn"})
		close(p.gone)
		p.conn.Close()
		_ = cause // the LostError is the caller-visible signal; the cause stays local
	})
}

func (t *tcpTransport) startPeer(p *tcpPeer) {
	t.peers[p.rank] = p
	// Writer: drains the outbox so Send never blocks on socket writes —
	// the overlap the chunked-allreduce pipeline relies on.
	t.wg.Add(1)
	t.writerWg.Add(1)
	go func() {
		defer t.wg.Done()
		defer t.writerWg.Done()
		bw := bufio.NewWriterSize(p.conn, 1<<16)
		for {
			select {
			case frame := <-p.out:
				if _, err := bw.Write(frame); err != nil {
					t.fail(p, err)
					return
				}
				// Flush once the queue momentarily drains, batching
				// back-to-back chunk frames into fewer syscalls.
				if len(p.out) == 0 {
					if err := bw.Flush(); err != nil {
						t.fail(p, err)
						return
					}
				}
			case <-p.gone:
				return
			case <-t.quit:
				// Graceful close: a rank's part in its final collective can
				// end on a send its peers have yet to receive, so deliver
				// everything already queued and flush before letting Close
				// tear the connection down.
				for {
					select {
					case frame := <-p.out:
						if _, err := bw.Write(frame); err != nil {
							t.fail(p, err)
							return
						}
					default:
						if err := bw.Flush(); err != nil {
							t.fail(p, err)
						}
						return
					}
				}
			}
		}
	}()
	// Reader: demultiplexes incoming frames into the matcher.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		br := bufio.NewReaderSize(p.conn, 1<<16)
		for {
			tag, data, err := readFrame(br)
			if err != nil {
				t.fail(p, err)
				return
			}
			t.m.deposit(p.rank, tag, data)
		}
	}()
}

func (t *tcpTransport) Send(dst, tag int, data []float64, deadline time.Time) error {
	if dst == t.rank {
		panic("mpi: send to self")
	}
	p := t.peers[dst]
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case p.out <- encodeFrame(tag, data):
		return nil
	case <-p.gone:
		return &LostError{Rank: dst, Tag: tag, Op: "send"}
	case <-timeout:
		return &LostError{Rank: dst, Tag: tag, Op: "send"}
	}
}

func (t *tcpTransport) Recv(src, tag int, deadline time.Time) ([]float64, error) {
	return t.m.recv(src, tag, deadline)
}

func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		// Let the writers deliver queued frames before any conn closes —
		// a graceful Close must not turn our own completed sends into a
		// rank loss at the peers.
		close(t.quit)
		t.writerWg.Wait()
		for _, ln := range t.listeners {
			ln.Close()
		}
		for _, p := range t.peers {
			if p != nil {
				t.fail(p, nil)
			}
		}
		t.m.close(fmt.Errorf("mpi: transport closed: %w", &LostError{Rank: t.rank, Op: "conn"}))
		t.wg.Wait()
	})
	return nil
}

// bootstrapDeadline picks the absolute deadline for the bootstrap
// handshake from the context, defaulting to a generous fixed timeout.
func bootstrapDeadline(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Now().Add(tcpDefaultBootstrapTimeout)
}

func writeInts(c net.Conn, vals ...int64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	_, err := c.Write(buf)
	return err
}

func readInts(c net.Conn, n int) ([]int64, error) {
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return nil, err
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return vals, nil
}

func writeString(c net.Conn, s string) error {
	if err := writeInts(c, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(c, s)
	return err
}

func readString(c net.Conn) (string, error) {
	n, err := readInts(c, 1)
	if err != nil {
		return "", err
	}
	if n[0] < 0 || n[0] > 1<<16 {
		return "", fmt.Errorf("mpi: bootstrap string of %d bytes", n[0])
	}
	buf := make([]byte, n[0])
	if _, err := io.ReadFull(c, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Rendezvous is rank 0's side of the TCP bootstrap: a listener on the
// well-known address every other rank dials. Create it with ListenTCP
// (so tests can bind ":0" and read the assigned address back) and turn
// it into rank 0's Transport with Accept.
type Rendezvous struct {
	ln   net.Listener
	size int
}

// ListenTCP opens the rendezvous listener for a group of size ranks.
func ListenTCP(addr string, size int) (*Rendezvous, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: non-positive rank count %d", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: rendezvous listen %s: %w", addr, err)
	}
	return &Rendezvous{ln: ln, size: size}, nil
}

// Addr returns the bound rendezvous address (useful after ":0").
func (rz *Rendezvous) Addr() string { return rz.ln.Addr().String() }

// Close abandons the bootstrap (Accept consumes the listener otherwise).
func (rz *Rendezvous) Close() error { return rz.ln.Close() }

// Accept completes rank 0's bootstrap: it collects the other ranks'
// registrations, replies with the address table, accepts one data conn
// from every peer, and returns rank 0's Transport.
func (rz *Rendezvous) Accept(ctx context.Context) (Transport, error) {
	p := rz.size
	dl := bootstrapDeadline(ctx)
	if d, ok := rz.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(dl)
	}
	t := &tcpTransport{
		rank: 0, size: p,
		m:         newMatcher(),
		peers:     make([]*tcpPeer, p),
		listeners: []net.Listener{rz.ln},
		quit:      make(chan struct{}),
	}
	if p == 1 {
		return t, nil
	}
	regConns := make([]net.Conn, p) // per registering rank
	addrs := make([]string, p)
	cleanup := func(err error) (Transport, error) {
		for _, c := range regConns {
			if c != nil {
				c.Close()
			}
		}
		t.Close()
		return nil, err
	}
	registered, data := 0, 0
	for registered < p-1 || data < p-1 {
		conn, err := rz.ln.Accept()
		if err != nil {
			return cleanup(fmt.Errorf("mpi: rendezvous accept: %w", err))
		}
		conn.SetDeadline(dl)
		hdr, err := readInts(conn, 2)
		if err != nil {
			conn.Close()
			return cleanup(fmt.Errorf("mpi: bootstrap preamble: %w", err))
		}
		kind, rank := hdr[0], int(hdr[1])
		if rank <= 0 || rank >= p {
			conn.Close()
			return cleanup(fmt.Errorf("mpi: bootstrap from invalid rank %d (group size %d)", rank, p))
		}
		switch kind {
		case tcpKindRegister:
			port, err := readInts(conn, 1)
			if err != nil {
				conn.Close()
				return cleanup(fmt.Errorf("mpi: bootstrap registration: %w", err))
			}
			host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
			if err != nil {
				conn.Close()
				return cleanup(err)
			}
			if regConns[rank] != nil {
				conn.Close()
				return cleanup(fmt.Errorf("mpi: rank %d registered twice", rank))
			}
			regConns[rank] = conn
			addrs[rank] = net.JoinHostPort(host, fmt.Sprint(port[0]))
			registered++
		case tcpKindData:
			if t.peers[rank] != nil {
				conn.Close()
				return cleanup(fmt.Errorf("mpi: duplicate data conn from rank %d", rank))
			}
			conn.SetDeadline(time.Time{})
			t.startPeer(&tcpPeer{rank: rank, conn: conn, out: make(chan []byte, 1024), gone: make(chan struct{})})
			data++
		default:
			conn.Close()
			return cleanup(fmt.Errorf("mpi: unknown bootstrap preamble %d", kind))
		}
		// Once everyone registered, publish the table; data conns follow.
		if registered == p-1 && addrs[0] == "" {
			addrs[0] = rz.Addr()
			for r := 1; r < p; r++ {
				c := regConns[r]
				ok := true
				for q := 1; q < p && ok; q++ {
					ok = writeString(c, addrs[q]) == nil
				}
				c.Close()
				regConns[r] = nil
				if !ok {
					return cleanup(fmt.Errorf("mpi: sending address table to rank %d failed", r))
				}
			}
		}
	}
	if d, ok := rz.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	return t, nil
}

// DialTCP runs rank r's (r > 0) side of the bootstrap against the
// rendezvous address and returns the rank's Transport. It retries the
// rendezvous dial until the context's deadline so start order does not
// matter.
func DialTCP(ctx context.Context, rendezvous string, rank, size int) (Transport, error) {
	if rank <= 0 || rank >= size {
		return nil, fmt.Errorf("mpi: DialTCP needs 0 < rank < size, got rank %d of %d", rank, size)
	}
	dl := bootstrapDeadline(ctx)
	// Data listener for conns from higher ranks; ":0" on all interfaces,
	// the port is announced during registration and combined with the
	// host rank 0 observes.
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return nil, fmt.Errorf("mpi: data listen: %w", err)
	}
	_, portStr, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	var port int64
	fmt.Sscan(portStr, &port)

	// Register with rank 0 (retrying while it is not up yet) and read the
	// address table back.
	var reg net.Conn
	for {
		d := net.Dialer{Deadline: dl}
		reg, err = d.DialContext(ctx, "tcp", rendezvous)
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			ln.Close()
			return nil, fmt.Errorf("mpi: rendezvous dial %s: %w", rendezvous, err)
		case <-time.After(50 * time.Millisecond):
		}
		if !time.Now().Before(dl) {
			ln.Close()
			return nil, fmt.Errorf("mpi: rendezvous dial %s: %w", rendezvous, err)
		}
	}
	reg.SetDeadline(dl)
	if err := writeInts(reg, tcpKindRegister, int64(rank), port); err != nil {
		reg.Close()
		ln.Close()
		return nil, fmt.Errorf("mpi: bootstrap registration: %w", err)
	}
	addrs := make([]string, size)
	addrs[0] = rendezvous
	for q := 1; q < size; q++ {
		if addrs[q], err = readString(reg); err != nil {
			reg.Close()
			ln.Close()
			return nil, fmt.Errorf("mpi: reading address table: %w", err)
		}
	}
	reg.Close()

	t := &tcpTransport{
		rank: rank, size: size,
		m:         newMatcher(),
		peers:     make([]*tcpPeer, size),
		listeners: []net.Listener{ln},
		quit:      make(chan struct{}),
	}
	fail := func(err error) (Transport, error) {
		t.Close()
		return nil, err
	}
	// Dial every lower rank (rank 0 via the rendezvous listener itself).
	for q := 0; q < rank; q++ {
		d := net.Dialer{Deadline: dl}
		conn, err := d.DialContext(ctx, "tcp", addrs[q])
		if err != nil {
			return fail(fmt.Errorf("mpi: dialing rank %d at %s: %w", q, addrs[q], err))
		}
		conn.SetDeadline(dl)
		if err := writeInts(conn, tcpKindData, int64(rank)); err != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: data hello to rank %d: %w", q, err))
		}
		conn.SetDeadline(time.Time{})
		t.startPeer(&tcpPeer{rank: q, conn: conn, out: make(chan []byte, 1024), gone: make(chan struct{})})
	}
	// Accept one conn from every higher rank.
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(dl)
	}
	for have := 0; have < size-rank-1; have++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("mpi: accepting data conn: %w", err))
		}
		conn.SetDeadline(dl)
		hdr, err := readInts(conn, 2)
		if err != nil || hdr[0] != tcpKindData {
			conn.Close()
			return fail(fmt.Errorf("mpi: bad data hello (kind %v): %v", hdr, err))
		}
		q := int(hdr[1])
		if q <= rank || q >= size || t.peers[q] != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: unexpected data hello from rank %d", q))
		}
		conn.SetDeadline(time.Time{})
		t.startPeer(&tcpPeer{rank: q, conn: conn, out: make(chan []byte, 1024), gone: make(chan struct{})})
	}
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	return t, nil
}

// ConnectTCP joins a TCP transport group: rank 0 listens on the
// rendezvous address and every other rank dials it. This is the one-call
// entry point the CLI flags (-transport tcp -rank R -peers ADDR) map to.
func ConnectTCP(ctx context.Context, rendezvous string, rank, size int) (Transport, error) {
	if rank == 0 {
		rz, err := ListenTCP(rendezvous, size)
		if err != nil {
			return nil, err
		}
		return rz.Accept(ctx)
	}
	return DialTCP(ctx, rendezvous, rank, size)
}
