package mat

import "sync"

// Kernel task pools: the allocation-free bridge between the mat kernels
// and the persistent worker pool of internal/parallel.
//
// A closure literal at a parallel call site captures the kernel operands
// and is therefore heap-allocated on every call — one object per kernel
// invocation, which the repeated full-pool sweeps of a FIRAL round turn
// into the last remaining steady-state allocation source on multicore.
// Instead, each parallel kernel keeps a sync.Pool of kernelTask records
// whose dispatch func was built once, closing over the record itself;
// a call checks out a record, fills in the operand slots, hands the
// pre-built func to parallel.ForChunk/Fork, and clears the slots on
// return. Steady state: zero allocations and zero goroutine forks.
type kernelTask struct {
	m1, m2, m3, m4 *Dense
	v1, v2         []float64
	f1             float64
	i1, i2, i3, i4 int
	b1             bool
	hdrs           []Dense // per-worker matrix headers (Fork reductions)

	// fn/forkFn are bound to this record at pool-New time; exactly one is
	// non-nil per pool.
	fn     func(lo, hi int)
	forkFn func(i int)
}

// release clears every reference slot (so pooled records don't pin
// operand memory) and returns the record to its pool.
func (t *kernelTask) release(p *sync.Pool) {
	t.m1, t.m2, t.m3, t.m4 = nil, nil, nil, nil
	t.v1, t.v2 = nil, nil
	for i := range t.hdrs {
		t.hdrs[i].Data = nil
	}
	p.Put(t)
}

// newChunkTaskPool builds a pool of records whose fn runs body over the
// record's operand slots.
func newChunkTaskPool(body func(t *kernelTask, lo, hi int)) *sync.Pool {
	p := &sync.Pool{}
	p.New = func() any {
		t := &kernelTask{}
		t.fn = func(lo, hi int) { body(t, lo, hi) }
		return t
	}
	return p
}

// newForkTaskPool is newChunkTaskPool for Fork-style (per-index) bodies.
func newForkTaskPool(body func(t *kernelTask, i int)) *sync.Pool {
	p := &sync.Pool{}
	p.New = func() any {
		t := &kernelTask{}
		t.forkFn = func(i int) { body(t, i) }
		return t
	}
	return p
}
