// SSE2 micro-kernel for the blocked GEMM. SSE2 is part of the amd64
// baseline, so no CPU-feature detection is needed. The kernel computes a
// 4×4 tile C = Ap·Bp from packed panels (A interleaved 4 values per k,
// B interleaved 4 values per k) into acc, with each accumulator summing
// its k-terms in ascending order — exactly the order of the scalar
// fallback kernel, so both produce bit-identical results.

#include "textflag.h"

// func micro4x4sse(kc int, ap, bp, acc *float64)
TEXT ·micro4x4sse(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ acc+24(FP), DX

	// Accumulators: X0..X7 hold the 4×4 tile, two columns per register:
	// X(2r) = C[r][0:2], X(2r+1) = C[r][2:4].
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JZ    done

loop:
	MOVUPD (DI), X8    // b0 b1
	MOVUPD 16(DI), X9  // b2 b3

	MOVUPD (SI), X10   // a0 a1
	MOVAPD X10, X12
	UNPCKLPD X10, X10  // a0 a0
	UNPCKHPD X12, X12  // a1 a1
	MOVAPD X10, X11
	MULPD  X8, X10
	MULPD  X9, X11
	ADDPD  X10, X0
	ADDPD  X11, X1
	MOVAPD X12, X13
	MULPD  X8, X12
	MULPD  X9, X13
	ADDPD  X12, X2
	ADDPD  X13, X3

	MOVUPD 16(SI), X10 // a2 a3
	MOVAPD X10, X12
	UNPCKLPD X10, X10  // a2 a2
	UNPCKHPD X12, X12  // a3 a3
	MOVAPD X10, X11
	MULPD  X8, X10
	MULPD  X9, X11
	ADDPD  X10, X4
	ADDPD  X11, X5
	MOVAPD X12, X13
	MULPD  X8, X12
	MULPD  X9, X13
	ADDPD  X12, X6
	ADDPD  X13, X7

	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

done:
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	MOVUPD X4, 64(DX)
	MOVUPD X5, 80(DX)
	MOVUPD X6, 96(DX)
	MOVUPD X7, 112(DX)
	RET
