package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when LU factorization meets a zero pivot.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P A = L U.
// It serves the small non-symmetric c×c solves of the exact ROUND step's
// Woodbury identity, where (I + ηS G) is not symmetric.
type LU struct {
	lu   *Dense
	piv  []int
	sign float64
}

// NewLU factors a (copied, not modified) with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	n := a.Rows
	if a.Cols != n {
		panic("mat: LU of non-square matrix")
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Pivot search.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A x = b; dst may be nil or alias b.
func (f *LU) SolveVec(dst, b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("mat: LU SolveVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	// Apply permutation.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 0; i < n; i++ {
		s := tmp[i]
		row := f.lu.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * tmp[k]
		}
		tmp[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := tmp[i]
		row := f.lu.Row(i)
		for k := i + 1; k < n; k++ {
			s -= row[k] * tmp[k]
		}
		tmp[i] = s / row[i]
	}
	copy(dst, tmp)
	return dst
}

// Solve solves A X = B into dst (nil allocates).
func (f *LU) Solve(dst, b *Dense) *Dense {
	if dst == nil {
		dst = NewDense(b.Rows, b.Cols)
	}
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		b.Col(col, j)
		f.SolveVec(col, col)
		dst.SetCol(j, col)
	}
	return dst
}

// Det returns the determinant.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
