package mat

import (
	"errors"
	"math"
)

// ErrDowndateBreakdown is returned by DowndateRank1 when removing the
// rank-1 term would make the factored matrix indefinite (or numerically
// so): the hyperbolic rotation at some pivot would need |w_k| ≥ L_kk.
// Callers that maintain the unfactored matrix alongside the factor
// recover by refactoring it with FactorRidge — the downdated matrix may
// still be semidefinite up to roundoff even though the rotation sequence
// broke down.
var ErrDowndateBreakdown = errors.New("mat: rank-1 downdate would make the factor indefinite")

// UpdateRank1 replaces the factorization A = L Lᵀ held by c with the
// factorization of A + alpha·x xᵀ (alpha ≥ 0) in place, by the standard
// Givens-rotation sweep: O(n²) instead of the O(n³) refactorization, with
// the only transient — the scaled copy of x — drawn from ws, so a warm
// workspace makes the update allocation-free. alpha = 0 is a no-op;
// alpha < 0 panics (use DowndateRank1, whose breakdown is detectable).
//
//firal:hotpath
func (c *Cholesky) UpdateRank1(ws *Workspace, x []float64, alpha float64) {
	n := c.L.Rows
	if len(x) != n {
		panic("mat: UpdateRank1 vector length mismatch")
	}
	if alpha == 0 {
		return
	}
	if alpha < 0 {
		panic("mat: UpdateRank1 needs alpha ≥ 0; use DowndateRank1 for removal")
	}
	w := ws.Vec(n)
	s := math.Sqrt(alpha)
	for i, v := range x {
		w[i] = s * v
	}
	l := c.L
	for k := 0; k < n; k++ {
		lk := l.Row(k)
		r := math.Hypot(lk[k], w[k])
		ck := r / lk[k]
		sk := w[k] / lk[k]
		lk[k] = r
		for i := k + 1; i < n; i++ {
			li := l.Row(i)
			li[k] = (li[k] + sk*w[i]) / ck
			w[i] = ck*w[i] - sk*li[k]
		}
	}
	ws.PutVec(w)
}

// DowndateRank1 replaces the factorization A = L Lᵀ held by c with the
// factorization of A − alpha·x xᵀ (alpha ≥ 0) in place, by the hyperbolic
// counterpart of the UpdateRank1 sweep. When some pivot would lose
// positivity it returns ErrDowndateBreakdown; the factor contents are then
// unspecified and the caller must refactor from the maintained matrix
// (FactorRidge) before using c again. Scratch comes from ws; a warm
// workspace makes the downdate allocation-free.
//
//firal:hotpath
func (c *Cholesky) DowndateRank1(ws *Workspace, x []float64, alpha float64) error {
	n := c.L.Rows
	if len(x) != n {
		panic("mat: DowndateRank1 vector length mismatch")
	}
	if alpha == 0 {
		return nil
	}
	if alpha < 0 {
		panic("mat: DowndateRank1 needs alpha ≥ 0; use UpdateRank1 for addition")
	}
	w := ws.Vec(n)
	s := math.Sqrt(alpha)
	for i, v := range x {
		w[i] = s * v
	}
	l := c.L
	for k := 0; k < n; k++ {
		lk := l.Row(k)
		// r² = L_kk² − w_k², computed as a product of sum and difference
		// for accuracy when the two magnitudes are close.
		d := (lk[k] - w[k]) * (lk[k] + w[k])
		if d <= 0 || math.IsNaN(d) {
			ws.PutVec(w)
			return ErrDowndateBreakdown
		}
		r := math.Sqrt(d)
		ck := r / lk[k]
		sk := w[k] / lk[k]
		lk[k] = r
		for i := k + 1; i < n; i++ {
			li := l.Row(i)
			li[k] = (li[k] - sk*w[i]) / ck
			w[i] = ck*w[i] - sk*li[k]
		}
	}
	ws.PutVec(w)
	return nil
}
