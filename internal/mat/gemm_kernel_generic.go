//go:build !amd64

package mat

// useAsmKernel is false off amd64; the scalar micro-kernel runs instead.
const useAsmKernel = false

func micro4x4sse(kc int, ap, bp, acc *float64) {
	panic("mat: asm micro-kernel unavailable on this architecture")
}
