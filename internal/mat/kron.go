package mat

// Kron returns the Kronecker product a ⊗ b. It materializes the full
// (ra·rb)×(ca·cb) matrix and is used by Exact-FIRAL's dense Hessian
// assembly (Eq. 2) and by tests validating the matrix-free fast matvec of
// Lemma 2 against the dense operator.
func Kron(a, b *Dense) *Dense {
	out := NewDense(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			v := a.At(i, j)
			if v == 0 {
				continue
			}
			for p := 0; p < b.Rows; p++ {
				dst := out.Row(i*b.Rows + p)
				src := b.Row(p)
				off := j * b.Cols
				for q, bv := range src {
					dst[off+q] += v * bv
				}
			}
		}
	}
	return out
}

// Block returns a copy of the d×d block (k, l) of a block-structured
// square matrix m whose blocks are d×d (so m is (cd)×(cd)). Definition 1
// in the paper takes the diagonal blocks k = l.
func Block(m *Dense, k, l, d int) *Dense {
	out := NewDense(d, d)
	for i := 0; i < d; i++ {
		src := m.Row(k*d + i)
		copy(out.Row(i), src[l*d:(l+1)*d])
	}
	return out
}

// SetBlock writes the d×d matrix b into block (k, l) of m.
func SetBlock(m *Dense, k, l, d int, b *Dense) {
	for i := 0; i < d; i++ {
		dst := m.Row(k*d + i)
		copy(dst[l*d:(l+1)*d], b.Row(i))
	}
}

// BlockDiag assembles a (cd)×(cd) block-diagonal matrix from c blocks of
// size d×d.
func BlockDiag(blocks []*Dense) *Dense {
	if len(blocks) == 0 {
		return NewDense(0, 0)
	}
	d := blocks[0].Rows
	c := len(blocks)
	out := NewDense(c*d, c*d)
	for k, b := range blocks {
		SetBlock(out, k, k, d, b)
	}
	return out
}
