package mat

import (
	"errors"
	"math"
	"sort"
)

// ErrEigNoConverge is returned when the implicit QL iteration fails to
// converge. With the iteration cap used here this indicates NaN/Inf input.
var ErrEigNoConverge = errors.New("mat: symmetric eigensolver did not converge")

// SymEig computes the full eigendecomposition of the symmetric matrix a:
// a = V diag(vals) Vᵀ with vals in ascending order and eigenvectors in the
// columns of V. Only the lower triangle of a is trusted; a is not modified.
//
// This is the CPU substitute for the paper's batched
// cupy.linalg.eigvalsh/eigh calls (Algorithm 3, line 9, and the Σ^{±1/2}
// transforms of Eq. 8). It uses Householder tridiagonalization followed by
// implicit-shift QL iteration.
func SymEig(a *Dense) ([]float64, *Dense, error) {
	n := a.Rows
	if a.Cols != n {
		panic("mat: SymEig of non-square matrix")
	}
	work := a.Clone()
	work.Symmetrize()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(work, d, e, true)
	if err := tql(d, e, work, true); err != nil {
		return nil, nil, err
	}
	sortEig(d, work)
	return d, work, nil
}

// SymEigvals computes only the eigenvalues of symmetric a, in ascending
// order (the cupy.linalg.eigvalsh analogue). It avoids accumulating the
// orthogonal transform, roughly halving the work of SymEig.
func SymEigvals(a *Dense) ([]float64, error) {
	return SymEigvalsInto(nil, nil, a)
}

// SymEigvalsInto is SymEigvals with the tridiagonalization scratch drawn
// from ws and the eigenvalues written into dst (reused when its capacity
// suffices, allocated otherwise) — the per-update eigen scratch of the
// ROUND loop. A nil ws or dst falls back to allocation.
func SymEigvalsInto(ws *Workspace, dst []float64, a *Dense) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		panic("mat: SymEigvals of non-square matrix")
	}
	work := ws.Matrix(n, n)
	work.CopyFrom(a)
	work.Symmetrize()
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	e := ws.Vec(n)
	tred2(work, dst, e, false)
	err := tql(dst, e, nil, false)
	ws.PutVec(e)
	ws.PutMatrix(work)
	if err != nil {
		return nil, err
	}
	sort.Float64s(dst)
	return dst, nil
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form with
// diagonal d and sub-diagonal e (e[0] unused). When wantV is true, z is
// overwritten with the accumulated orthogonal transformation Q such that
// Qᵀ A Q = T; otherwise z holds scratch data on return.
func tred2(z *Dense, d, e []float64, wantV bool) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				zi := z.Row(i)
				for k := 0; k <= l; k++ {
					zi[k] /= scale
					h += zi[k] * zi[k]
				}
				f := zi[l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				zi[l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					if wantV {
						z.Set(j, i, zi[j]/h)
					}
					g := 0.0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * zi[k]
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * zi[k]
					}
					e[j] = g / h
					f += e[j] * zi[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f := zi[j]
					g := e[j] - hh*f
					e[j] = g
					zj := z.Row(j)
					for k := 0; k <= j; k++ {
						zj[k] -= f*e[k] + g*zi[k]
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	if !wantV {
		for i := 0; i < n; i++ {
			d[i] = z.At(i, i)
		}
		return
	}
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tql performs implicit-shift QL iteration on the tridiagonal matrix
// (d, e). When wantV is true the rotations are accumulated into z.
func tql(d, e []float64, z *Dense, wantV bool) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 64 {
				return ErrEigNoConverge
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			broke := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					broke = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if wantV {
					for k := 0; k < n; k++ {
						f := z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*f)
						z.Set(k, i, c*z.At(k, i)-s*f)
					}
				}
			}
			if broke {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// sortEig sorts eigenvalues ascending and permutes the eigenvector columns
// of z to match.
func sortEig(d []float64, z *Dense) {
	n := len(d)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	dOld := append([]float64(nil), d...)
	zOld := z.Clone()
	col := make([]float64, n)
	for newPos, oldPos := range idx {
		d[newPos] = dOld[oldPos]
		zOld.Col(col, oldPos)
		z.SetCol(newPos, col)
	}
}
