package mat

import "math"

// Vector helpers operate on plain []float64 slices; they are the BLAS-1
// layer under the CG solver and the mirror-descent updates.

// Dot returns xᵀy.
//
//firal:hotpath
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x.
//
//firal:hotpath
func Nrm2(x []float64) float64 {
	// Two-pass scaling keeps us safe from overflow for the magnitudes the
	// solvers produce.
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Axpy performs y += alpha*x.
//
//firal:hotpath
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal performs x *= alpha.
//
//firal:hotpath
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CopyVec copies src into dst (lengths must match).
//
//firal:hotpath
func CopyVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mat: CopyVec length mismatch")
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
//
//firal:hotpath
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns Σ x_i.
//
//firal:hotpath
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MaxIdx returns the index of the maximum element (first on ties) and its
// value. It panics on empty input.
//
//firal:hotpath
func MaxIdx(x []float64) (int, float64) {
	if len(x) == 0 {
		panic("mat: MaxIdx of empty slice")
	}
	best, bv := 0, x[0]
	for i, v := range x[1:] {
		if v > bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}

// MinIdx returns the index of the minimum element (first on ties) and its
// value. It panics on empty input.
//
//firal:hotpath
func MinIdx(x []float64) (int, float64) {
	if len(x) == 0 {
		panic("mat: MinIdx of empty slice")
	}
	best, bv := 0, x[0]
	for i, v := range x[1:] {
		if v < bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}
