package mat

import (
	"errors"
	"testing"
)

// pseudoVec fills a deterministic pseudo-random vector in [-1, 1).
func pseudoVec(n int, seed uint64) []float64 {
	x := make([]float64, n)
	s := seed
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(s>>33))/float64(1<<30) - 1
	}
	return x
}

// TestUpdateRank1MatchesRefactor is the from-scratch oracle property: a
// chain of rank-1 updates must track the factorization of the explicitly
// accumulated matrix.
func TestUpdateRank1MatchesRefactor(t *testing.T) {
	ws := NewWorkspace()
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdFromFactor(n, uint64(n)+3)
		var c Cholesky
		if err := c.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 5; step++ {
			x := pseudoVec(n, uint64(n*100+step))
			alpha := 0.25 + 0.5*float64(step)
			c.UpdateRank1(ws, x, alpha)
			a.AddOuter(alpha, x)
			var want Cholesky
			if err := want.FactorInto(a); err != nil {
				t.Fatal(err)
			}
			if d := MaxAbsDiff(want.L, c.L); d > 1e-9*float64(n) {
				t.Fatalf("n=%d step=%d: updated factor differs from refactorization by %g", n, step, d)
			}
		}
	}
}

// TestDowndateRank1MatchesRefactor checks the inverse property: factoring
// A + αxxᵀ and downdating by (x, α) must recover the factor of A.
func TestDowndateRank1MatchesRefactor(t *testing.T) {
	ws := NewWorkspace()
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdFromFactor(n, uint64(n)+17)
		var want Cholesky
		if err := want.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3; step++ {
			x := pseudoVec(n, uint64(n*55+step))
			alpha := 0.5 + float64(step)
			up := a.Clone()
			up.AddOuter(alpha, x)
			var c Cholesky
			if err := c.FactorInto(up); err != nil {
				t.Fatal(err)
			}
			if err := c.DowndateRank1(ws, x, alpha); err != nil {
				t.Fatalf("n=%d step=%d: unexpected breakdown: %v", n, step, err)
			}
			if d := MaxAbsDiff(want.L, c.L); d > 1e-8*float64(n) {
				t.Fatalf("n=%d step=%d: downdated factor differs from original by %g", n, step, d)
			}
		}
	}
}

// TestDowndateRank1Breakdown forces the indefinite case: removing more
// mass along x than the matrix holds must report ErrDowndateBreakdown,
// and the documented recovery — refactor the maintained matrix with
// FactorRidge — must leave the factor usable again.
func TestDowndateRank1Breakdown(t *testing.T) {
	ws := NewWorkspace()
	n := 8
	a := spdFromFactor(n, 5)
	var c Cholesky
	if err := c.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	x := pseudoVec(n, 77)
	// xᵀA x bounds the removable mass along x; ask for far more.
	ax := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x[j]
		}
		ax[i] = s
	}
	var quad, norm2 float64
	for i := range x {
		quad += x[i] * ax[i]
		norm2 += x[i] * x[i]
	}
	alpha := 4 * quad / (norm2 * norm2)
	if err := c.DowndateRank1(ws, x, alpha); !errors.Is(err, ErrDowndateBreakdown) {
		t.Fatalf("downdating by %g×xxᵀ: got %v, want ErrDowndateBreakdown", alpha, err)
	}
	// Fallback path: the factor contents are unspecified now; FactorRidge
	// from the maintained matrix restores a valid factorization.
	if _, err := c.FactorRidge(a, 1e-12); err != nil {
		t.Fatalf("FactorRidge fallback after breakdown: %v", err)
	}
	var want Cholesky
	if err := want.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(want.L, c.L); d != 0 {
		t.Fatalf("refactored-after-breakdown factor differs by %g", d)
	}
}

// TestDowndateRank1ZeroAlpha pins the no-op contracts shared with
// UpdateRank1: alpha = 0 must leave the factor bit-identical.
func TestDowndateRank1ZeroAlpha(t *testing.T) {
	ws := NewWorkspace()
	a := spdFromFactor(6, 9)
	var c, want Cholesky
	if err := c.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	if err := want.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	x := pseudoVec(6, 3)
	c.UpdateRank1(ws, x, 0)
	if err := c.DowndateRank1(ws, x, 0); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(want.L, c.L); d != 0 {
		t.Fatalf("zero-alpha update/downdate changed the factor by %g", d)
	}
}

// TestRank1UpdateZeroAllocWarm pins the workspace contract: with a warm
// workspace, an update/downdate pair allocates nothing.
func TestRank1UpdateZeroAllocWarm(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	ws := NewWorkspace()
	a := spdFromFactor(24, 13)
	var c Cholesky
	if err := c.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	x := pseudoVec(24, 21)
	pair := func() {
		c.UpdateRank1(ws, x, 0.5)
		if err := c.DowndateRank1(ws, x, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	pair() // warm the workspace free list
	if allocs := testing.AllocsPerRun(50, pair); allocs != 0 {
		t.Fatalf("warm rank-1 update/downdate allocates %.1f objects per pair", allocs)
	}
	// The pair is numerically a no-op up to roundoff; guard against drift.
	var want Cholesky
	if err := want.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(want.L, c.L); d > 1e-6 {
		t.Fatalf("update/downdate round trips drifted the factor by %g", d)
	}
}

// TestUpdateRank1PanicsOnNegativeAlpha documents the directionality of
// the two entry points.
func TestUpdateRank1PanicsOnNegativeAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateRank1 with negative alpha did not panic")
		}
	}()
	a := spdFromFactor(3, 1)
	var c Cholesky
	if err := c.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	c.UpdateRank1(nil, []float64{1, 0, 0}, -1)
}
