package mat

import (
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// relTol scales a comparison tolerance by the summation length.
func relTol(k int) float64 { return 1e-12 * float64(k+1) }

// TestBlockedMulMatchesReference drives the packed kernels at sizes large
// enough to take the blocked path, including dimensions that are not
// multiples of the 4×4 micro-tile and of the cache-block sizes.
func TestBlockedMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ m, k, n int }{
		{16, 16, 16},
		{64, 64, 64},
		{67, 129, 35},
		{128, 300, 70},
		{257, 261, 259}, // crosses gemmKC/gemmMC/gemmNC boundaries, odd edges
		{30, 512, 40},
	}
	for _, tc := range cases {
		a := randDense(rng, tc.m, tc.k)
		b := randDense(rng, tc.k, tc.n)
		got := Mul(nil, a, b)
		want := RefMul(nil, a, b)
		if d := MaxAbsDiff(got, want); d > relTol(tc.k) {
			t.Errorf("Mul %dx%dx%d: mismatch %g", tc.m, tc.k, tc.n, d)
		}

		at := randDense(rng, tc.k, tc.m) // aᵀ operand: k×m so aᵀ is m×k
		gotTA := MulTransA(nil, at, b)
		wantTA := RefMulTransA(nil, at, b)
		if d := MaxAbsDiff(gotTA, wantTA); d > relTol(tc.k) {
			t.Errorf("MulTransA %dx%dx%d: mismatch %g", tc.m, tc.k, tc.n, d)
		}

		bt := randDense(rng, tc.n, tc.k)
		gotTB := MulTransB(nil, a, bt)
		wantTB := RefMulTransB(nil, a, bt)
		if d := MaxAbsDiff(gotTB, wantTB); d > relTol(tc.k) {
			t.Errorf("MulTransB %dx%dx%d: mismatch %g", tc.m, tc.k, tc.n, d)
		}
	}
}

func TestBlockedMatVecAndRowDots(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 301, 129)
	x := make([]float64, 129)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MatVec(nil, a, x)
	want := RefMatVec(nil, a, x)
	for i := range got {
		if d := abs(got[i] - want[i]); d > relTol(129) {
			t.Fatalf("MatVec row %d: mismatch %g", i, d)
		}
	}
	b := randDense(rng, 301, 129)
	rd := RowDots(nil, a, b)
	for i := range rd {
		want := Dot(a.Row(i), b.Row(i))
		if d := abs(rd[i] - want); d > relTol(129) {
			t.Fatalf("RowDots row %d: mismatch %g", i, d)
		}
	}
}

func TestWeightedGramSymmetricAndMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ n, d int }{{5, 3}, {130, 17}, {1000, 40}} {
		x := randDense(rng, tc.n, tc.d)
		w := make([]float64, tc.n)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		w[0] = 0 // zero-weight row must be skipped cleanly
		got := WeightedGram(nil, x, w)
		want := RefWeightedGram(nil, x, w)
		if d := MaxAbsDiff(got, want); d > relTol(tc.n) {
			t.Errorf("WeightedGram n=%d d=%d: mismatch %g", tc.n, tc.d, d)
		}
		for i := 0; i < tc.d; i++ {
			for j := 0; j < i; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("WeightedGram not exactly symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	v := ws.Vec(64)
	ws.PutVec(v)
	v2 := ws.Vec(64)
	if &v[0] != &v2[0] {
		t.Fatal("Vec did not reuse the returned buffer")
	}
	m := ws.Matrix(8, 8)
	hdr := m
	ws.PutMatrix(m)
	m2 := ws.Matrix(8, 8)
	if m2 != hdr {
		t.Fatal("Matrix did not reuse the returned header")
	}
	data := make([]float64, 12)
	view := ws.View(data, 3, 4)
	if view.Rows != 3 || view.Cols != 4 || &view.Data[0] != &data[0] {
		t.Fatal("View built wrong header")
	}
	ws.PutView(view)
	// nil workspace falls back to allocation everywhere.
	var nilWS *Workspace
	if got := nilWS.Vec(5); len(got) != 5 {
		t.Fatal("nil workspace Vec broken")
	}
	nilWS.PutVec(nil)
	nilWS.PutMatrix(nil)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
