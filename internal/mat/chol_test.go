package mat

import (
	"math"
	"testing"
)

// spdFromFactor builds a well-conditioned SPD matrix G·Gᵀ + I from a
// deterministic pseudo-random factor.
func spdFromFactor(n int, seed uint64) *Dense {
	g := NewDense(n, n)
	s := seed
	for i := range g.Data {
		s = s*6364136223846793005 + 1442695040888963407
		g.Data[i] = float64(int64(s>>33))/float64(1<<30) - 1
	}
	a := MulTransB(nil, g, g)
	a.AddDiag(float64(n))
	return a
}

func TestFactorIntoMatchesNewCholesky(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdFromFactor(n, uint64(n)+7)
		want, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		var c Cholesky
		// Factor twice into the same storage, with a different matrix in
		// between, to prove reuse leaves no residue.
		other := spdFromFactor(n, uint64(n)+99)
		if err := c.FactorInto(other); err != nil {
			t.Fatal(err)
		}
		if err := c.FactorInto(a); err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(want.L, c.L); d != 0 {
			t.Fatalf("n=%d: reused factor differs from fresh factor by %g", n, d)
		}
		// a must be untouched.
		check := spdFromFactor(n, uint64(n)+7)
		if d := MaxAbsDiff(a, check); d != 0 {
			t.Fatalf("n=%d: FactorInto modified its input (diff %g)", n, d)
		}
	}
}

func TestFactorRidgeMatchesNewCholeskyRidge(t *testing.T) {
	// Rank-deficient: x xᵀ needs a ridge for n > 1.
	n := 6
	a := NewDense(n, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	a.AddOuter(1, x)
	want, wantRidge, err := NewCholeskyRidge(a.Clone(), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var c Cholesky
	ridge, err := c.FactorRidge(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ridge != wantRidge {
		t.Fatalf("ridge %g, want %g", ridge, wantRidge)
	}
	if d := MaxAbsDiff(want.L, c.L); d != 0 {
		t.Fatalf("ridged factor differs by %g", d)
	}
	if ridge == 0 {
		t.Fatal("expected a nonzero ridge for a rank-1 matrix")
	}
}

func TestSolveIntoAndInverseInto(t *testing.T) {
	n := 12
	a := spdFromFactor(n, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()

	// InverseInto into reused storage equals Inverse.
	want := ch.Inverse()
	dst := NewDense(n, n)
	Fill(dst.Data, math.NaN()) // residue must be fully overwritten
	ch.InverseInto(ws, dst)
	if d := MaxAbsDiff(want, dst); d != 0 {
		t.Fatalf("InverseInto differs from Inverse by %g", d)
	}

	// A·A⁻¹ ≈ I.
	prod := Mul(nil, a, dst)
	eye := Eye(n)
	if d := MaxAbsDiff(prod, eye); d > 1e-10 {
		t.Fatalf("A·A⁻¹ off identity by %g", d)
	}

	// SolveInto with a warm workspace matches Solve and is allocation-free.
	b := spdFromFactor(n, 11)
	wantX := ch.Solve(nil, b)
	x := NewDense(n, n)
	ch.SolveInto(ws, x, b)
	if d := MaxAbsDiff(wantX, x); d != 0 {
		t.Fatalf("SolveInto differs from Solve by %g", d)
	}
	if !RaceEnabled {
		var rc Cholesky
		if allocs := testing.AllocsPerRun(20, func() {
			if err := rc.FactorInto(a); err != nil {
				t.Fatal(err)
			}
			ch.SolveInto(ws, x, b)
			ch.InverseInto(ws, dst)
		}); allocs > 1 { // rc.L allocated once on the warm-up run only
			t.Fatalf("warm FactorInto+SolveInto+InverseInto allocates %.1f objects per call", allocs)
		}
	}
}
