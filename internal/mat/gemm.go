package mat

import (
	"sync"

	"repro/internal/parallel"
)

// Matrix-product kernels. Large products run through a cache-blocked,
// panel-packed GEMM (packA/packB + a 4×4 register micro-kernel, the
// standard GotoBLAS/BLIS decomposition): A and B tiles are copied into
// contiguous panels so the inner kernel streams packed memory regardless
// of the operand layout — in particular aᵀ·b no longer strides down
// columns — and each loaded element feeds gemmMR×gemmNR multiply-adds
// instead of one. Small products keep the register-friendly row-sweep
// reference kernels, where packing overhead would dominate.
//
// Results are deterministic for a fixed worker count: workers split output
// rows, and every output element accumulates its k-terms in the same
// order (k-panels of gemmKC in ascending order) regardless of how rows are
// distributed. The blocked kernels reorder floating-point sums relative to
// the reference kernels, so results agree to roundoff (~1e-12 relative),
// not bit-for-bit.

const (
	gemmMR = 4 // micro-kernel rows
	gemmNR = 4 // micro-kernel cols
	gemmKC = 256
	gemmMC = 64
	gemmNC = 512
	// gemmMinWork gates the blocked path: below this many multiply-adds
	// the packing overhead outweighs the cache savings.
	gemmMinWork = 1 << 15
	// gemmRowFloor is the per-worker row floor for parallel products: a
	// GEMM row costs n·k flops, so far fewer rows than parallel.ForChunk's
	// scalar-loop floor justify a goroutine.
	gemmRowFloor = 8
)

// gemmScratch holds one worker's packing panels.
type gemmScratch struct {
	a, b []float64
}

var gemmPool = sync.Pool{New: func() any { return new(gemmScratch) }}

func growBuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

func useBlocked(m, n, k int) bool {
	return m >= 16 && n >= 8 && k >= 8 && m*n*k >= gemmMinWork
}

// Mul computes dst = a*b. dst must not alias a or b. If dst is nil a new
// matrix is allocated. Rows of dst are computed in parallel.
//
//firal:hotpath
func Mul(dst, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("mat: Mul inner dimension mismatch")
	}
	dst = prepDst(dst, a.Rows, b.Cols)
	if useBlocked(a.Rows, b.Cols, a.Cols) {
		gemm(dst, a, b, false, false)
		return dst
	}
	if parallel.Serial(a.Rows) {
		refMulRange(dst, a, b, 0, a.Rows)
		return dst
	}
	t := mulTasks.Get().(*kernelTask)
	t.m1, t.m2, t.m3 = dst, a, b
	parallel.ForChunk(a.Rows, t.fn)
	t.release(mulTasks)
	return dst
}

var mulTasks = newChunkTaskPool(func(t *kernelTask, lo, hi int) {
	refMulRange(t.m1, t.m2, t.m3, lo, hi)
})

// MulTransA computes dst = aᵀ*b for a (n×r) and b (n×c), yielding r×c.
// dst must not alias a or b.
//
//firal:hotpath
func MulTransA(dst, a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("mat: MulTransA row mismatch")
	}
	dst = prepDst(dst, a.Cols, b.Cols)
	if useBlocked(a.Cols, b.Cols, a.Rows) {
		gemm(dst, a, b, true, false)
		return dst
	}
	// Small path: k-outer accumulation walks a and b row-major (the packed
	// kernel's job at scale); each worker owns a disjoint dst row range.
	if parallel.SerialMin(a.Cols, gemmRowFloor) {
		mulTransASmallRange(dst, a, b, 0, a.Cols)
		return dst
	}
	t := mulTransATasks.Get().(*kernelTask)
	t.m1, t.m2, t.m3 = dst, a, b
	parallel.ForChunkMin(a.Cols, gemmRowFloor, t.fn)
	t.release(mulTransATasks)
	return dst
}

var mulTransATasks = newChunkTaskPool(func(t *kernelTask, lo, hi int) {
	mulTransASmallRange(t.m1, t.m2, t.m3, lo, hi)
})

//firal:hotpath
func mulTransASmallRange(dst, a, b *Dense, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)[lo:hi]
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst.Row(lo + i)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// MulTransB computes dst = a*bᵀ for a (m×k) and b (n×k), yielding m×n.
// dst must not alias a or b.
//
//firal:hotpath
func MulTransB(dst, a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("mat: MulTransB column mismatch")
	}
	dst = prepDst(dst, a.Rows, b.Rows)
	if useBlocked(a.Rows, b.Rows, a.Cols) {
		gemm(dst, a, b, false, true)
		return dst
	}
	if parallel.SerialMin(a.Rows, gemmRowFloor) {
		mulTransBSmallRange(dst, a, b, 0, a.Rows)
		return dst
	}
	t := mulTransBTasks.Get().(*kernelTask)
	t.m1, t.m2, t.m3 = dst, a, b
	parallel.ForChunkMin(a.Rows, gemmRowFloor, t.fn)
	t.release(mulTransBTasks)
	return dst
}

var mulTransBTasks = newChunkTaskPool(func(t *kernelTask, lo, hi int) {
	mulTransBSmallRange(t.m1, t.m2, t.m3, lo, hi)
})

//firal:hotpath
func mulTransBSmallRange(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			dr[j] = dotu(ar, b.Row(j))
		}
	}
}

// gemm runs the blocked driver for dst = op(a)·op(b). Each B tile is
// packed exactly once, on the calling goroutine; the row-parallel workers
// share it read-only and pack only their own A blocks. Workers split
// output rows, so the result is identical for any worker count.
//
//firal:hotpath
func gemm(dst, a, b *Dense, transA, transB bool) {
	m, n := dst.Rows, dst.Cols
	kd := a.Cols
	if transA {
		kd = a.Rows
	}
	serial := parallel.SerialMin(m, gemmRowFloor)
	sc := gemmPool.Get().(*gemmScratch)
	bp := growBuf(&sc.b, gemmKC*(gemmNC+gemmNR))
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < kd; pc += gemmKC {
			kc := min(gemmKC, kd-pc)
			packB(bp, b, transB, pc, jc, kc, nc)
			if serial {
				ap := growBuf(&sc.a, gemmMC*gemmKC)
				gemmRowRange(dst, a, transA, ap, bp, pc, jc, kc, nc, 0, m)
				continue
			}
			// Out-of-line call: a closure here would capture gemm's loop
			// variables and heap-allocate them every iteration, even on
			// the serial path.
			gemmTileParallel(dst, a, transA, bp, pc, jc, kc, nc, m)
		}
	}
	gemmPool.Put(sc)
}

// gemmTileParallel fans the row loop of one packed-B tile out across
// workers; each worker packs its own A blocks from pooled scratch.
//
//firal:hotpath
func gemmTileParallel(dst, a *Dense, transA bool, bp []float64, pc, jc, kc, nc, m int) {
	t := gemmTileTasks.Get().(*kernelTask)
	t.m1, t.m2, t.b1, t.v1 = dst, a, transA, bp
	t.i1, t.i2, t.i3, t.i4 = pc, jc, kc, nc
	parallel.ForChunkMin(m, gemmRowFloor, t.fn)
	t.release(gemmTileTasks)
}

var gemmTileTasks = newChunkTaskPool(func(t *kernelTask, lo, hi int) {
	wsc := gemmPool.Get().(*gemmScratch)
	ap := growBuf(&wsc.a, gemmMC*gemmKC)
	gemmRowRange(t.m1, t.m2, t.b1, ap, t.v1, t.i1, t.i2, t.i3, t.i4, lo, hi)
	gemmPool.Put(wsc)
})

// gemmRowRange runs the packed micro-kernels for output rows [lo, hi) of
// one (pc, jc) tile, packing A blocks into ap and reading the shared
// packed B panel bp.
//
//firal:hotpath
func gemmRowRange(dst, a *Dense, transA bool, ap, bp []float64, pc, jc, kc, nc, lo, hi int) {
	for ic := lo; ic < hi; ic += gemmMC {
		mc := min(gemmMC, hi-ic)
		packA(ap, a, transA, ic, pc, mc, kc)
		for pj := 0; pj < nc; pj += gemmNR {
			nr := min(gemmNR, nc-pj)
			bpanel := bp[pj*kc:]
			for pi := 0; pi < mc; pi += gemmMR {
				mr := min(gemmMR, mc-pi)
				micro4x4(kc, ap[pi*kc:], bpanel, dst, ic+pi, jc+pj, mr, nr)
			}
		}
	}
}

// packA copies the mc×kc block of op(a) at (i0, k0) into gemmMR-row
// panels: panel p holds rows [p·MR, p·MR+MR) interleaved by k, so the
// micro-kernel reads MR values per k from one contiguous stream. Rows
// beyond mc are zero-padded (the padded accumulators are never written
// back).
//
//firal:hotpath
func packA(ap []float64, a *Dense, trans bool, i0, k0, mc, kc int) {
	for pi := 0; pi < mc; pi += gemmMR {
		dst := ap[pi*kc:]
		mr := min(gemmMR, mc-pi)
		if !trans {
			if mr == gemmMR {
				r0 := a.Row(i0 + pi)[k0 : k0+kc]
				r1 := a.Row(i0 + pi + 1)[k0 : k0+kc]
				r2 := a.Row(i0 + pi + 2)[k0 : k0+kc]
				r3 := a.Row(i0 + pi + 3)[k0 : k0+kc]
				for k := 0; k < kc; k++ {
					d := dst[4*k : 4*k+4 : 4*k+4]
					d[0] = r0[k]
					d[1] = r1[k]
					d[2] = r2[k]
					d[3] = r3[k]
				}
				continue
			}
			for r := 0; r < gemmMR; r++ {
				if r < mr {
					src := a.Row(i0 + pi + r)[k0 : k0+kc]
					for k := 0; k < kc; k++ {
						dst[4*k+r] = src[k]
					}
				} else {
					for k := 0; k < kc; k++ {
						dst[4*k+r] = 0
					}
				}
			}
			continue
		}
		// op(a) = aᵀ: element (i, k) lives at a[k0+k][i0+i], so each k is a
		// contiguous run of a's row k0+k.
		for k := 0; k < kc; k++ {
			src := a.Row(k0 + k)[i0+pi:]
			d := dst[4*k : 4*k+4 : 4*k+4]
			if mr == gemmMR {
				d[0] = src[0]
				d[1] = src[1]
				d[2] = src[2]
				d[3] = src[3]
				continue
			}
			for r := 0; r < gemmMR; r++ {
				if r < mr {
					d[r] = src[r]
				} else {
					d[r] = 0
				}
			}
		}
	}
}

// packB copies the kc×nc block of op(b) at (k0, j0) into gemmNR-column
// panels, zero-padding columns beyond nc.
//
//firal:hotpath
func packB(bp []float64, b *Dense, trans bool, k0, j0, kc, nc int) {
	for pj := 0; pj < nc; pj += gemmNR {
		dst := bp[pj*kc:]
		nr := min(gemmNR, nc-pj)
		if !trans {
			for k := 0; k < kc; k++ {
				src := b.Row(k0 + k)[j0+pj:]
				d := dst[4*k : 4*k+4 : 4*k+4]
				if nr == gemmNR {
					d[0] = src[0]
					d[1] = src[1]
					d[2] = src[2]
					d[3] = src[3]
					continue
				}
				for t := 0; t < gemmNR; t++ {
					if t < nr {
						d[t] = src[t]
					} else {
						d[t] = 0
					}
				}
			}
			continue
		}
		// op(b) = bᵀ: column j of op(b) is row j0+j of b, contiguous in k.
		for t := 0; t < gemmNR; t++ {
			if t < nr {
				src := b.Row(j0 + pj + t)[k0 : k0+kc]
				for k := 0; k < kc; k++ {
					dst[4*k+t] = src[k]
				}
			} else {
				for k := 0; k < kc; k++ {
					dst[4*k+t] = 0
				}
			}
		}
	}
}

// micro4x4 accumulates a 4×4 tile of the product of one packed A panel and
// one packed B panel into dst at (i, j). Only the valid mr×nr region is
// written back; the padded lanes accumulate zeros. The tile itself comes
// from the SSE2 kernel on amd64 and from the scalar loop elsewhere; both
// sum k-terms in the same order, so results are identical.
//
//firal:hotpath
func micro4x4(kc int, ap, bp []float64, dst *Dense, i, j, mr, nr int) {
	var acc [gemmMR * gemmNR]float64
	if useAsmKernel {
		micro4x4sse(kc, &ap[0], &bp[0], &acc[0])
	} else {
		microScalar4x4(kc, ap, bp, &acc)
	}
	if mr == gemmMR && nr == gemmNR {
		r := dst.Row(i)[j : j+4 : j+4]
		r[0] += acc[0]
		r[1] += acc[1]
		r[2] += acc[2]
		r[3] += acc[3]
		r = dst.Row(i + 1)[j : j+4 : j+4]
		r[0] += acc[4]
		r[1] += acc[5]
		r[2] += acc[6]
		r[3] += acc[7]
		r = dst.Row(i + 2)[j : j+4 : j+4]
		r[0] += acc[8]
		r[1] += acc[9]
		r[2] += acc[10]
		r[3] += acc[11]
		r = dst.Row(i + 3)[j : j+4 : j+4]
		r[0] += acc[12]
		r[1] += acc[13]
		r[2] += acc[14]
		r[3] += acc[15]
		return
	}
	for r := 0; r < mr; r++ {
		row := dst.Row(i + r)
		for t := 0; t < nr; t++ {
			row[j+t] += acc[gemmNR*r+t]
		}
	}
}

// microScalar4x4 is the portable micro-kernel: sixteen independent
// accumulators over the packed panels, overwriting acc.
//
//firal:hotpath
func microScalar4x4(kc int, ap, bp []float64, acc *[gemmMR * gemmNR]float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ap = ap[:4*kc]
	bp = bp[:4*kc]
	for off := 0; off < len(ap); off += 4 {
		av := ap[off : off+4 : off+4]
		bv := bp[off : off+4 : off+4]
		a0 := av[0]
		a1 := av[1]
		a2 := av[2]
		a3 := av[3]
		b0 := bv[0]
		b1 := bv[1]
		b2 := bv[2]
		b3 := bv[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0] = c00
	acc[1] = c01
	acc[2] = c02
	acc[3] = c03
	acc[4] = c10
	acc[5] = c11
	acc[6] = c12
	acc[7] = c13
	acc[8] = c20
	acc[9] = c21
	acc[10] = c22
	acc[11] = c23
	acc[12] = c30
	acc[13] = c31
	acc[14] = c32
	acc[15] = c33
}

// dotu is an instruction-parallel dot product (four independent
// accumulators). It reorders the summation relative to Dot, so kernels
// built on it agree with the reference kernels to roundoff, not
// bit-for-bit.
//
//firal:hotpath
func dotu(x, y []float64) float64 {
	n := len(x)
	if len(y) != n {
		panic("mat: dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		xv := x[i : i+4 : i+4]
		yv := y[i : i+4 : i+4]
		s0 += xv[0] * yv[0]
		s1 += xv[1] * yv[1]
		s2 += xv[2] * yv[2]
		s3 += xv[3] * yv[3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// MatVec computes dst = a*x. If dst is nil it is allocated.
//
//firal:hotpath
func MatVec(dst []float64, a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mat: MatVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	} else if len(dst) != a.Rows {
		panic("mat: MatVec dst length mismatch")
	}
	if parallel.Serial(a.Rows) {
		matVecRange(dst, a, x, 0, a.Rows)
		return dst
	}
	t := matVecTasks.Get().(*kernelTask)
	t.v1, t.m1, t.v2 = dst, a, x
	parallel.ForChunk(a.Rows, t.fn)
	t.release(matVecTasks)
	return dst
}

var matVecTasks = newChunkTaskPool(func(t *kernelTask, lo, hi int) {
	matVecRange(t.v1, t.m1, t.v2, lo, hi)
})

//firal:hotpath
func matVecRange(dst []float64, a *Dense, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = dotu(a.Row(i), x)
	}
}

// MatTVec computes dst = aᵀ*x. If dst is nil it is allocated. The serial
// inner accumulation keeps this deterministic.
//
//firal:hotpath
func MatTVec(dst []float64, a *Dense, x []float64) []float64 {
	if a.Rows != len(x) {
		panic("mat: MatTVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Cols)
	} else if len(dst) != a.Cols {
		panic("mat: MatTVec dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// WeightedGram computes dst = Xᵀ diag(w) X for X (n×d), yielding the d×d
// symmetric matrix Σ_i w_i x_i x_iᵀ. This is the kernel behind the
// block-diagonal preconditioner of Eq. 14: B_k(Σ) = Σ_i w_ik x_i x_iᵀ.
// Entries of w may be any sign. If w is nil, unit weights are used.
//
// Only the lower triangle is accumulated (rank-4 panels of rows); the
// upper triangle is mirrored at the end, so the result is exactly
// symmetric.
func WeightedGram(dst *Dense, x *Dense, w []float64) *Dense {
	return WeightedGramWS(nil, dst, x, w)
}

// WeightedGramWS is WeightedGram with the per-worker partial buffers of
// the parallel reduction drawn from ws (acquired and returned on the
// calling goroutine, so the single-owner workspace contract holds); hot
// loops that rebuild Gram blocks every iteration reuse them instead of
// re-allocating O(workers·d²) per call.
//
//firal:hotpath
func WeightedGramWS(ws *Workspace, dst *Dense, x *Dense, w []float64) *Dense {
	d := x.Cols
	dst = prepDst(dst, d, d)
	// Per-row cost is O(d²), so cap workers well below ForChunk's scalar
	// floor; a few dozen rows per worker already amortize the fork.
	nw := parallel.Workers()
	if lim := x.Rows / 64; nw > lim {
		nw = lim
	}
	if nw <= 1 {
		weightedGramRange(dst, x, w, 0, x.Rows)
		mirrorLower(dst)
		return dst
	}
	// Each worker accumulates into a private d×d region of one workspace
	// buffer; regions are summed serially so the result is deterministic
	// for a fixed worker count. Fork (not For) because the task count
	// equals the worker count, far below For's per-worker iteration floor,
	// which would serialize it. The per-worker Dense headers live on the
	// pooled task record, so the whole reduction is allocation-free with a
	// warm workspace.
	buf := ws.Vec(nw * d * d)
	t := gramTasks.Get().(*kernelTask)
	if cap(t.hdrs) < nw {
		//firal:allow(alloc) — amortized: grows once per worker-count change
		t.hdrs = make([]Dense, nw)
	}
	t.m1, t.v1, t.v2 = x, w, buf
	t.i1, t.i2, t.i3 = d, (x.Rows+nw-1)/nw, x.Rows
	parallel.Fork(nw, t.forkFn)
	for i := 0; i < nw; i++ {
		dst.AddScaled(1, &t.hdrs[i])
	}
	t.release(gramTasks)
	ws.PutVec(buf)
	mirrorLower(dst)
	return dst
}

var gramTasks = newForkTaskPool(func(t *kernelTask, widx int) {
	d, chunk, rows := t.i1, t.i2, t.i3
	p := &t.hdrs[widx]
	p.Rows, p.Cols, p.Stride = d, d, d
	p.Data = t.v2[widx*d*d : (widx+1)*d*d]
	p.Zero() // workspace contents are unspecified
	lo := widx * chunk
	hi := min(lo+chunk, rows)
	if lo >= hi {
		return
	}
	weightedGramRange(p, t.m1, t.v1, lo, hi)
})

// weightedGramRange accumulates the lower triangle of Σ_i w_i x_i x_iᵀ for
// rows [lo, hi), four rows at a time so each loaded dst element absorbs
// four multiply-adds.
//
//firal:hotpath
func weightedGramRange(dst *Dense, x *Dense, w []float64, lo, hi int) {
	d := x.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		w0, w1, w2, w3 := 1.0, 1.0, 1.0, 1.0
		if w != nil {
			w0, w1, w2, w3 = w[i], w[i+1], w[i+2], w[i+3]
			if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 {
				continue
			}
		}
		x0 := x.Row(i)
		x1 := x.Row(i + 1)
		x2 := x.Row(i + 2)
		x3 := x.Row(i + 3)
		for r := 0; r < d; r++ {
			v0 := w0 * x0[r]
			v1 := w1 * x1[r]
			v2 := w2 * x2[r]
			v3 := w3 * x3[r]
			row := dst.Row(r)[: r+1 : r+1]
			for c := range row {
				row[c] += v0*x0[c] + v1*x1[c] + v2*x2[c] + v3*x3[c]
			}
		}
	}
	for ; i < hi; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		if wi == 0 {
			continue
		}
		xi := x.Row(i)
		for r := 0; r < d; r++ {
			v := wi * xi[r]
			if v == 0 {
				continue
			}
			row := dst.Row(r)[: r+1 : r+1]
			for c := range row {
				row[c] += v * xi[c]
			}
		}
	}
}

// mirrorLower copies the strict lower triangle into the upper.
//
//firal:hotpath
func mirrorLower(dst *Dense) {
	for r := 1; r < dst.Rows; r++ {
		row := dst.Row(r)
		for c := 0; c < r; c++ {
			dst.Set(c, r, row[c])
		}
	}
}

// RowDots computes dst[i] = Σ_j a_ij * b_ij, i.e. the diagonal of a*bᵀ.
// This implements the diag(X M Xᵀ) pattern of the ROUND objective (Eq. 17):
// pass a = X and b = X*M. If dst is nil it is allocated.
//
//firal:hotpath
func RowDots(dst []float64, a, b *Dense) []float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: RowDots shape mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	}
	if parallel.Serial(a.Rows) {
		rowDotsRange(dst, a, b, 0, a.Rows)
		return dst
	}
	t := rowDotsTasks.Get().(*kernelTask)
	t.v1, t.m1, t.m2 = dst, a, b
	parallel.ForChunk(a.Rows, t.fn)
	t.release(rowDotsTasks)
	return dst
}

var rowDotsTasks = newChunkTaskPool(func(t *kernelTask, lo, hi int) {
	rowDotsRange(t.v1, t.m1, t.m2, lo, hi)
})

//firal:hotpath
func rowDotsRange(dst []float64, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = dotu(a.Row(i), b.Row(i))
	}
}

func prepDst(dst *Dense, r, c int) *Dense {
	if dst == nil {
		return NewDense(r, c)
	}
	if dst.Rows != r || dst.Cols != c {
		panic("mat: destination has wrong shape")
	}
	dst.Zero()
	return dst
}
