package mat

import (
	"repro/internal/parallel"
)

// Mul computes dst = a*b. dst must not alias a or b. If dst is nil a new
// matrix is allocated. Rows of dst are computed in parallel.
func Mul(dst, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("mat: Mul inner dimension mismatch")
	}
	dst = prepDst(dst, a.Rows, b.Cols)
	parallel.ForChunk(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			dr := dst.Row(i)
			for j := range dr {
				dr[j] = 0
			}
			for k, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Row(k)
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MulTransA computes dst = aᵀ*b for a (n×r) and b (n×c), yielding r×c.
// dst must not alias a or b.
func MulTransA(dst, a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("mat: MulTransA row mismatch")
	}
	dst = prepDst(dst, a.Cols, b.Cols)
	// Parallelize over output rows (columns of a): each worker scans all of
	// a and b but writes a disjoint row range of dst.
	parallel.ForChunk(a.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dr := dst.Row(i)
			for j := range dr {
				dr[j] = 0
			}
			for k := 0; k < a.Rows; k++ {
				av := a.At(k, i)
				if av == 0 {
					continue
				}
				br := b.Row(k)
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MulTransB computes dst = a*bᵀ for a (m×k) and b (n×k), yielding m×n.
// dst must not alias a or b.
func MulTransB(dst, a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("mat: MulTransB column mismatch")
	}
	dst = prepDst(dst, a.Rows, b.Rows)
	parallel.ForChunk(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			dr := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				dr[j] = Dot(ar, b.Row(j))
			}
		}
	})
	return dst
}

// MatVec computes dst = a*x. If dst is nil it is allocated.
func MatVec(dst []float64, a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mat: MatVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	} else if len(dst) != a.Rows {
		panic("mat: MatVec dst length mismatch")
	}
	parallel.ForChunk(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(a.Row(i), x)
		}
	})
	return dst
}

// MatTVec computes dst = aᵀ*x. If dst is nil it is allocated. The serial
// inner accumulation keeps this deterministic.
func MatTVec(dst []float64, a *Dense, x []float64) []float64 {
	if a.Rows != len(x) {
		panic("mat: MatTVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Cols)
	} else if len(dst) != a.Cols {
		panic("mat: MatTVec dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// WeightedGram computes dst = Xᵀ diag(w) X for X (n×d), yielding the d×d
// symmetric matrix Σ_i w_i x_i x_iᵀ. This is the kernel behind the
// block-diagonal preconditioner of Eq. 14: B_k(Σ) = Σ_i w_ik x_i x_iᵀ.
// Entries of w may be any sign. If w is nil, unit weights are used.
func WeightedGram(dst *Dense, x *Dense, w []float64) *Dense {
	d := x.Cols
	dst = prepDst(dst, d, d)
	nw := parallel.Workers()
	if nw > x.Rows {
		nw = x.Rows
	}
	if nw <= 1 {
		weightedGramRange(dst, x, w, 0, x.Rows)
		return dst
	}
	// Each worker accumulates into a private d×d buffer; buffers are summed
	// serially so the result is deterministic for a fixed worker count.
	partials := make([]*Dense, nw)
	chunk := (x.Rows + nw - 1) / nw
	parallel.For(nw, func(widx int) {
		lo := widx * chunk
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		if lo >= hi {
			return
		}
		p := NewDense(d, d)
		weightedGramRange(p, x, w, lo, hi)
		partials[widx] = p
	})
	for _, p := range partials {
		if p != nil {
			dst.AddScaled(1, p)
		}
	}
	return dst
}

func weightedGramRange(dst *Dense, x *Dense, w []float64, lo, hi int) {
	d := x.Cols
	for i := lo; i < hi; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		if wi == 0 {
			continue
		}
		xi := x.Row(i)
		for r := 0; r < d; r++ {
			v := wi * xi[r]
			if v == 0 {
				continue
			}
			row := dst.Row(r)
			for c := 0; c < d; c++ {
				row[c] += v * xi[c]
			}
		}
	}
}

// RowDots computes dst[i] = Σ_j a_ij * b_ij, i.e. the diagonal of a*bᵀ.
// This implements the diag(X M Xᵀ) pattern of the ROUND objective (Eq. 17):
// pass a = X and b = X*M. If dst is nil it is allocated.
func RowDots(dst []float64, a, b *Dense) []float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: RowDots shape mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	}
	parallel.ForChunk(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(a.Row(i), b.Row(i))
		}
	})
	return dst
}

func prepDst(dst *Dense, r, c int) *Dense {
	if dst == nil {
		return NewDense(r, c)
	}
	if dst.Rows != r || dst.Cols != c {
		panic("mat: destination has wrong shape")
	}
	dst.Zero()
	return dst
}
