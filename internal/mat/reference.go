package mat

// Reference (unblocked) kernels: the straightforward row-sweep loops the
// blocked kernels of gemm.go replaced. They remain the correctness oracle
// for the property tests and the baseline side of the GEMM benchmarks, and
// they still serve the small-matrix fast paths where packing overhead
// would dominate.

// RefMul computes dst = a*b with the unblocked row-sweep kernel (serial).
func RefMul(dst, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("mat: Mul inner dimension mismatch")
	}
	dst = prepDst(dst, a.Rows, b.Cols)
	refMulRange(dst, a, b, 0, a.Rows)
	return dst
}

func refMulRange(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := range dr {
			dr[j] = 0
		}
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// RefMulTransA computes dst = aᵀ*b with the unblocked kernel (serial).
// Note the column-strided a.At(k, i) access — this is the cache behaviour
// the packed kernel exists to avoid.
func RefMulTransA(dst, a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("mat: MulTransA row mismatch")
	}
	dst = prepDst(dst, a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		dr := dst.Row(i)
		for j := range dr {
			dr[j] = 0
		}
		for k := 0; k < a.Rows; k++ {
			av := a.At(k, i)
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
	return dst
}

// RefMulTransB computes dst = a*bᵀ with the unblocked kernel (serial).
func RefMulTransB(dst, a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("mat: MulTransB column mismatch")
	}
	dst = prepDst(dst, a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
	return dst
}

// RefMatVec computes dst = a*x with per-row serial dot products.
func RefMatVec(dst []float64, a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("mat: MatVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	} else if len(dst) != a.Rows {
		panic("mat: MatVec dst length mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
	return dst
}

// RefWeightedGram computes dst = Xᵀ diag(w) X with serial rank-1 updates.
func RefWeightedGram(dst *Dense, x *Dense, w []float64) *Dense {
	d := x.Cols
	dst = prepDst(dst, d, d)
	for i := 0; i < x.Rows; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		if wi == 0 {
			continue
		}
		xi := x.Row(i)
		for r := 0; r < d; r++ {
			v := wi * xi[r]
			if v == 0 {
				continue
			}
			row := dst.Row(r)
			for c := 0; c < d; c++ {
				row[c] += v * xi[c]
			}
		}
	}
	return dst
}
