package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func randSPD(rng *rand.Rand, n int) *Dense {
	x := NewDense(n+3, n)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	a := MulTransA(nil, x, x)
	a.AddDiag(0.5)
	return a
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, b := NewDense(m, k), NewDense(k, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		got := Mul(nil, a, b)
		want := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for l := 0; l < k; l++ {
					s += a.At(i, l) * b.At(l, j)
				}
				want.Set(i, j, s)
			}
		}
		if d := MaxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("trial %d: Mul mismatch %g", trial, d)
		}
	}
}

func TestMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewDense(7, 4)
	b := NewDense(7, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MulTransA(nil, a, b)
	want := Mul(nil, a.T(), b)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("MulTransA mismatch %g", d)
	}
	c := NewDense(6, 5)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	got2 := MulTransB(nil, c, b)
	want2 := Mul(nil, c, b.T())
	if d := MaxAbsDiff(got2, want2); d > 1e-12 {
		t.Fatalf("MulTransB mismatch %g", d)
	}
}

func TestMatVecAndTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewDense(9, 6)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	x := make([]float64, 6)
	y := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	// Adjoint identity: yᵀ(Ax) == (Aᵀy)ᵀx.
	lhs := Dot(y, MatVec(nil, a, x))
	rhs := Dot(MatTVec(nil, a, y), x)
	if math.Abs(lhs-rhs) > 1e-10 {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestWeightedGram(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := NewDense(40, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	w := make([]float64, 40)
	for i := range w {
		w[i] = rng.Float64()
	}
	got := WeightedGram(nil, x, w)
	want := NewDense(5, 5)
	for i := 0; i < 40; i++ {
		want.AddOuter(w[i], x.Row(i))
	}
	if d := MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("WeightedGram mismatch %g", d)
	}
	// nil weights = unit weights
	got2 := WeightedGram(nil, x, nil)
	want2 := MulTransA(nil, x, x)
	if d := MaxAbsDiff(got2, want2); d > 1e-10 {
		t.Fatalf("unit WeightedGram mismatch %g", d)
	}
}

func TestCholeskySolveAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 25} {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Factor reconstructs A.
		rec := MulTransB(nil, ch.L, ch.L)
		if d := MaxAbsDiff(rec, a); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: LLᵀ != A (%g)", n, d)
		}
		// Solve.
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := ch.SolveVec(nil, b)
		ax := MatVec(nil, a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("n=%d: solve residual %g", n, ax[i]-b[i])
			}
		}
		// Inverse.
		inv := ch.Inverse()
		id := Mul(nil, a, inv)
		if d := MaxAbsDiff(id, Eye(n)); d > 1e-8 {
			t.Fatalf("n=%d: A·A⁻¹ != I (%g)", n, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD for indefinite matrix")
	}
}

func TestCholeskyRidgeRecovers(t *testing.T) {
	// Rank-1 PSD matrix: plain Cholesky fails, ridge version succeeds.
	a := NewDense(3, 3)
	a.AddOuter(1, []float64{1, 2, 3})
	ch, ridge, err := NewCholeskyRidge(a, 1e-12)
	if err != nil {
		t.Fatalf("ridge factorization failed: %v", err)
	}
	if ridge <= 0 {
		t.Fatalf("expected positive ridge, got %g", ridge)
	}
	if ch == nil {
		t.Fatal("nil factorization")
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 5, 10, 40} {
		a := randSym(rng, n)
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("n=%d: eigenvalues not ascending", n)
			}
		}
		// Orthonormal columns.
		vtv := MulTransA(nil, vecs, vecs)
		if d := MaxAbsDiff(vtv, Eye(n)); d > 1e-9 {
			t.Fatalf("n=%d: VᵀV != I (%g)", n, d)
		}
		// Reconstruction.
		lam := NewDense(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		rec := Mul(nil, Mul(nil, vecs, lam), vecs.T())
		if d := MaxAbsDiff(rec, a); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: VΛVᵀ != A (%g)", n, d)
		}
	}
}

func TestSymEigvalsMatchesSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 6, 17} {
		a := randSym(rng, n)
		v1, _, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := SymEigvals(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v1 {
			if math.Abs(v1[i]-v2[i]) > 1e-9*(1+math.Abs(v1[i])) {
				t.Fatalf("n=%d: eigenvalue %d mismatch %g vs %g", n, i, v1[i], v2[i])
			}
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("diag eig mismatch: %v", vals)
		}
	}
}

func TestSPDFuncs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSPD(rng, 12)
	sf, err := NewSPDFuncs(a, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	sq := sf.Sqrt()
	rec := Mul(nil, sq, sq)
	if d := MaxAbsDiff(rec, a); d > 1e-8 {
		t.Fatalf("sqrt² != A (%g)", d)
	}
	isq := sf.InvSqrt()
	id := Mul(nil, Mul(nil, isq, a), isq)
	if d := MaxAbsDiff(id, Eye(12)); d > 1e-8 {
		t.Fatalf("A^{-1/2} A A^{-1/2} != I (%g)", d)
	}
	inv := sf.Inv()
	id2 := Mul(nil, inv, a)
	if d := MaxAbsDiff(id2, Eye(12)); d > 1e-8 {
		t.Fatalf("A⁻¹A != I (%g)", d)
	}
	if sf.Cond() < 1 {
		t.Fatalf("condition number < 1: %g", sf.Cond())
	}
}

func TestKronAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewDense(3, 2)
	b := NewDense(2, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	k := Kron(a, b)
	if k.Rows != 6 || k.Cols != 8 {
		t.Fatalf("Kron shape %dx%d", k.Rows, k.Cols)
	}
	for i := 0; i < k.Rows; i++ {
		for j := 0; j < k.Cols; j++ {
			want := a.At(i/2, j/4) * b.At(i%2, j%4)
			if math.Abs(k.At(i, j)-want) > 1e-12 {
				t.Fatalf("Kron(%d,%d) = %g want %g", i, j, k.At(i, j), want)
			}
		}
	}
}

func TestKronMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD) — property-based via testing/quick over seeds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		m := 2 + rng.Intn(2)
		mk := func(r, c int) *Dense {
			x := NewDense(r, c)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			return x
		}
		a, c := mk(n, n), mk(n, n)
		b, d := mk(m, m), mk(m, m)
		lhs := Mul(nil, Kron(a, b), Kron(c, d))
		rhs := Kron(Mul(nil, a, c), Mul(nil, b, d))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, c := 3, 4
	blocks := make([]*Dense, c)
	for k := range blocks {
		blocks[k] = randSym(rng, d)
	}
	m := BlockDiag(blocks)
	if m.Rows != c*d {
		t.Fatalf("BlockDiag shape %d", m.Rows)
	}
	for k := 0; k < c; k++ {
		got := Block(m, k, k, d)
		if d := MaxAbsDiff(got, blocks[k]); d > 0 {
			t.Fatalf("block %d mismatch %g", k, d)
		}
	}
	// Off-diagonal blocks are zero.
	off := Block(m, 0, 1, d)
	for _, v := range off.Data {
		if v != 0 {
			t.Fatal("off-diagonal block not zero")
		}
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Nrm2(x) != 5 {
		t.Fatalf("Nrm2 = %g", Nrm2(x))
	}
	if Nrm2(nil) != 0 {
		t.Fatal("Nrm2(nil) != 0")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy result %v", y)
	}
	i, v := MaxIdx([]float64{1, 9, 3})
	if i != 1 || v != 9 {
		t.Fatal("MaxIdx wrong")
	}
	j, w := MinIdx([]float64{5, 2, 8})
	if j != 1 || w != 2 {
		t.Fatal("MinIdx wrong")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum wrong")
	}
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Fatal("Set/At broken")
	}
	tr := m.T()
	if tr.At(1, 0) != 5 {
		t.Fatal("T broken")
	}
	cl := m.Clone()
	cl.Set(0, 1, 7)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone aliases")
	}
	fr := FromRows([][]float64{{1, 2}, {3, 4}})
	if fr.Trace() != 5 {
		t.Fatal("FromRows/Trace broken")
	}
	fr.AddDiag(1)
	if fr.Trace() != 7 {
		t.Fatal("AddDiag broken")
	}
	if FrobDot(fr, fr) <= 0 {
		t.Fatal("FrobDot broken")
	}
	if !fr.IsFinite() {
		t.Fatal("IsFinite false on finite matrix")
	}
	fr.Set(0, 0, math.NaN())
	if fr.IsFinite() {
		t.Fatal("IsFinite true on NaN")
	}
}
