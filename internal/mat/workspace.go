package mat

// Workspace is a size-keyed free list of float64 scratch buffers and Dense
// headers. The hot solver loops (the Lemma-2 Hessian matvec, CG
// iterations, and the ROUND scoring pass) acquire their temporaries from a
// Workspace and return them when done; after one warm-up pass every
// steady-state acquisition is a free-list hit, so the loops run
// allocation-free (guarded by AllocsPerRun regression tests).
//
// Ownership contract:
//
//   - A Workspace is owned by exactly one goroutine; it is NOT safe for
//     concurrent use. Parallel code (e.g. the simulated MPI ranks of
//     internal/distfiral) creates one Workspace per goroutine.
//   - A buffer obtained from Vec/Matrix/View is owned by the caller until
//     it is returned with the matching Put*; returning it and continuing
//     to use it is a bug, as the next Vec/Matrix call may hand it out
//     again.
//   - Buffer contents are unspecified on acquisition; callers that need
//     zeros must clear them (the mat kernels zero their destinations).
//
// A nil *Workspace is valid everywhere one is accepted: every acquisition
// falls back to a plain allocation and every Put* is a no-op, restoring
// the allocate-per-call behaviour.
type Workspace struct {
	vecs  map[int][][]float64
	views []*Dense
}

// NewWorkspace returns an empty Workspace.
func NewWorkspace() *Workspace {
	return &Workspace{vecs: make(map[int][][]float64)}
}

// Vec returns a length-n buffer with unspecified contents.
func (w *Workspace) Vec(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	free := w.vecs[n]
	if len(free) == 0 {
		return make([]float64, n)
	}
	v := free[len(free)-1]
	w.vecs[n] = free[:len(free)-1]
	return v
}

// PutVec returns a buffer to the free list, keyed by its length.
func (w *Workspace) PutVec(v []float64) {
	if w == nil || len(v) == 0 {
		return
	}
	w.vecs[len(v)] = append(w.vecs[len(v)], v)
}

// View returns a Dense header (recycled when possible) wrapping data as an
// r×c row-major matrix with compact stride. The data is shared, not
// copied; release the header with PutView when done.
func (w *Workspace) View(data []float64, r, c int) *Dense {
	if len(data) < r*c {
		panic("mat: Workspace.View data too short")
	}
	if w == nil || len(w.views) == 0 {
		return &Dense{Rows: r, Cols: c, Stride: c, Data: data}
	}
	m := w.views[len(w.views)-1]
	w.views = w.views[:len(w.views)-1]
	m.Rows, m.Cols, m.Stride, m.Data = r, c, c, data
	return m
}

// PutView returns a header obtained from View; the data it wrapped stays
// with its owner.
func (w *Workspace) PutView(m *Dense) {
	if w == nil || m == nil {
		return
	}
	m.Data = nil
	w.views = append(w.views, m)
}

// Matrix returns an r×c matrix (compact stride) with unspecified contents,
// backed by workspace memory. Release it with PutMatrix.
func (w *Workspace) Matrix(r, c int) *Dense {
	return w.View(w.Vec(r*c), r, c)
}

// PutMatrix returns a matrix obtained from Matrix, recycling both its data
// and its header. Matrices with non-compact stride are not poolable and
// are rejected.
func (w *Workspace) PutMatrix(m *Dense) {
	if w == nil || m == nil {
		return
	}
	if m.Stride != m.Cols {
		panic("mat: Workspace.PutMatrix of non-compact matrix")
	}
	w.PutVec(m.Data[:m.Rows*m.Cols])
	w.PutView(m)
}
