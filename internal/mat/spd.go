package mat

import "math"

// SPDFuncs holds an eigendecomposition of an SPD matrix and serves matrix
// functions of it (A^{1/2}, A^{-1/2}, A^{-1}). The paper needs Σ⋄^{±1/2}
// for the tilde transform of Eq. 8 both globally (Exact-FIRAL) and per
// d×d block (Approx-FIRAL ROUND, Algorithm 3 line 9).
type SPDFuncs struct {
	vals []float64
	vecs *Dense
	// floor is the eigenvalue floor applied when inverting, guarding
	// rank-deficient inputs (e.g. Σ blocks before any mass accumulates).
	floor float64
}

// NewSPDFuncs eigendecomposes the symmetric PSD matrix a. Eigenvalues
// below floor·λmax are clamped to floor·λmax for inverse-type functions.
func NewSPDFuncs(a *Dense, floor float64) (*SPDFuncs, error) {
	vals, vecs, err := SymEig(a)
	if err != nil {
		return nil, err
	}
	return &SPDFuncs{vals: vals, vecs: vecs, floor: floor}, nil
}

// Eigenvalues returns the (ascending) eigenvalues. The slice is owned by
// the receiver and must not be modified.
func (s *SPDFuncs) Eigenvalues() []float64 { return s.vals }

// apply returns V diag(f(λ)) Vᵀ.
func (s *SPDFuncs) apply(f func(float64) float64) *Dense {
	n := len(s.vals)
	scaled := NewDense(n, n)
	for j := 0; j < n; j++ {
		fj := f(s.vals[j])
		for i := 0; i < n; i++ {
			scaled.Set(i, j, s.vecs.At(i, j)*fj)
		}
	}
	return MulTransB(nil, scaled, s.vecs)
}

func (s *SPDFuncs) clamped(v float64) float64 {
	lmax := s.vals[len(s.vals)-1]
	lo := s.floor * math.Max(lmax, 1e-300)
	if v < lo {
		return lo
	}
	return v
}

// Sqrt returns A^{1/2} (negative eigenvalues from roundoff are clamped to
// zero).
func (s *SPDFuncs) Sqrt() *Dense {
	return s.apply(func(l float64) float64 {
		if l < 0 {
			return 0
		}
		return math.Sqrt(l)
	})
}

// InvSqrt returns A^{-1/2} with eigenvalue flooring.
func (s *SPDFuncs) InvSqrt() *Dense {
	return s.apply(func(l float64) float64 { return 1 / math.Sqrt(s.clamped(l)) })
}

// Inv returns A^{-1} with eigenvalue flooring.
func (s *SPDFuncs) Inv() *Dense {
	return s.apply(func(l float64) float64 { return 1 / s.clamped(l) })
}

// Cond returns the 2-norm condition number λmax/λmin (after flooring),
// used to report preconditioner quality as in § III-A.
func (s *SPDFuncs) Cond() float64 {
	lmin := s.clamped(s.vals[0])
	lmax := s.vals[len(s.vals)-1]
	return lmax / lmin
}
