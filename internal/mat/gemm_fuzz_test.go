package mat

import (
	"math"
	"testing"

	"repro/internal/parallel"
)

// Property and fuzz tests comparing the blocked/parallel GEMM family
// against the Ref* row-sweep oracles on ragged shapes — m, n, k that are
// not multiples of the 4×4 micro-kernel or of the gemmMC/gemmKC/gemmNC
// blocking parameters, where packing-padding bugs would live.

// lcg fills data deterministically without pulling in internal/rnd.
type lcg uint64

func (s *lcg) fill(data []float64) {
	for i := range data {
		*s = *s*6364136223846793005 + 1442695040888963407
		data[i] = float64(int64(uint64(*s)>>33))/float64(1<<30) - 1
	}
}

// relDiff returns max |a-b| scaled by the magnitude of the reference.
func relDiff(got, want *Dense) float64 {
	scale := 1.0
	for i := 0; i < want.Rows; i++ {
		for _, v := range want.Row(i) {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	return MaxAbsDiff(got, want) / scale
}

func checkGEMMShape(t *testing.T, m, n, k int, seed uint64) {
	t.Helper()
	s := lcg(seed)
	a := NewDense(m, k)
	b := NewDense(k, n)
	at := NewDense(k, m) // for MulTransA: op(at) = a
	bt := NewDense(n, k) // for MulTransB: op(bt) = b
	s.fill(a.Data)
	s.fill(b.Data)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			at.Set(i, j, a.At(j, i))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bt.Set(i, j, b.At(j, i))
		}
	}
	const tol = 1e-12
	want := RefMul(nil, a, b)
	if got := Mul(nil, a, b); relDiff(got, want) > tol {
		t.Errorf("Mul m=%d n=%d k=%d: rel diff %g", m, n, k, relDiff(got, want))
	}
	wantTA := RefMulTransA(nil, at, b)
	if got := MulTransA(nil, at, b); relDiff(got, wantTA) > tol {
		t.Errorf("MulTransA m=%d n=%d k=%d: rel diff %g", m, n, k, relDiff(got, wantTA))
	}
	wantTB := RefMulTransB(nil, a, bt)
	if got := MulTransB(nil, a, bt); relDiff(got, wantTB) > tol {
		t.Errorf("MulTransB m=%d n=%d k=%d: rel diff %g", m, n, k, relDiff(got, wantTB))
	}
}

// TestBlockedGEMMRaggedShapes sweeps boundary shapes around the
// micro-kernel (4), the parallel row floor (8), and the cache-blocking
// parameters (64/256/512), serially and with the worker pool engaged.
func TestBlockedGEMMRaggedShapes(t *testing.T) {
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 65}
	if !testing.Short() {
		dims = append(dims, 127, 129, 255, 257)
	}
	for _, workers := range []int{1, 4} {
		prev := parallel.SetMaxWorkers(workers)
		// Ragged triples: rotate the dimension list against itself so each
		// (m, n, k) mixes small/large and aligned/unaligned extents.
		for i, m := range dims {
			n := dims[(i+5)%len(dims)]
			k := dims[(i+9)%len(dims)]
			checkGEMMShape(t, m, n, k, uint64(i+1))
		}
		// Shapes straddling the blocked-path gate and blocking boundaries.
		for _, tr := range [][3]int{
			{16, 8, 256}, {16, 8, 257}, {17, 9, 255},
			{64, 512, 9}, {65, 513, 8}, {63, 511, 17},
			{600, 32, 32}, {601, 33, 31},
		} {
			checkGEMMShape(t, tr[0], tr[1], tr[2], uint64(tr[0]*tr[1]))
		}
		parallel.SetMaxWorkers(prev)
	}
}

// FuzzGEMMShapes is the fuzzing entry for the same property; `go test`
// runs the seed corpus, and `go test -fuzz=FuzzGEMMShapes ./internal/mat`
// explores further shapes.
func FuzzGEMMShapes(f *testing.F) {
	f.Add(uint16(5), uint16(9), uint16(3), uint64(1))
	f.Add(uint16(33), uint16(17), uint16(65), uint64(2))
	f.Add(uint16(64), uint16(512), uint16(256), uint64(3))
	f.Add(uint16(601), uint16(33), uint16(31), uint64(4))
	f.Fuzz(func(t *testing.T, m, n, k uint16, seed uint64) {
		mm := int(m%700) + 1
		nn := int(n%700) + 1
		kk := int(k%700) + 1
		checkGEMMShape(t, mm, nn, kk, seed|1)
	})
}

// TestWeightedGramMatchesRefUnderPool checks the Fork-based parallel
// reduction (workspace partials, pooled task headers) against the serial
// oracle, including the zero-weight row skip and a row count that leaves
// the final worker an empty chunk.
func TestWeightedGramMatchesRefUnderPool(t *testing.T) {
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	ws := NewWorkspace()
	for _, rows := range []int{64, 255, 256, 257, 1000} {
		for _, d := range []int{1, 3, 8, 17} {
			s := lcg(uint64(rows*d + 1))
			x := NewDense(rows, d)
			s.fill(x.Data)
			w := make([]float64, rows)
			s.fill(w)
			for i := 0; i < rows; i += 7 {
				w[i] = 0
			}
			want := RefWeightedGram(nil, x, w)
			got := WeightedGramWS(ws, nil, x, w)
			if relDiff(got, want) > 1e-12 {
				t.Errorf("rows=%d d=%d: rel diff %g", rows, d, relDiff(got, want))
			}
			gotNil := WeightedGramWS(ws, nil, x, nil)
			wantNil := RefWeightedGram(nil, x, nil)
			if relDiff(gotNil, wantNil) > 1e-12 {
				t.Errorf("rows=%d d=%d nil weights: rel diff %g", rows, d, relDiff(gotNil, wantNil))
			}
		}
	}
}

// TestKernelsZeroAllocMulticore pins the tentpole guarantee at the mat
// layer: with the persistent worker pool and pooled kernel tasks, the
// parallel Mul/MatVec/RowDots/WeightedGram paths allocate nothing per
// call once warm — not just in the serial regime.
func TestKernelsZeroAllocMulticore(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	s := lcg(99)
	a := NewDense(600, 32)
	b := NewDense(32, 32)
	s.fill(a.Data)
	s.fill(b.Data)
	dst := NewDense(600, 32)
	small := NewDense(32, 32)
	x := make([]float64, 32)
	y := make([]float64, 600)
	w := make([]float64, 600)
	s.fill(x)
	s.fill(w)
	ws := NewWorkspace()
	warmAndPin := func(name string, fn func()) {
		fn() // warm pools and workspace
		if allocs := testing.AllocsPerRun(30, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per warm call at 4 workers", name, allocs)
		}
	}
	warmAndPin("Mul(600x32,32x32)", func() { Mul(dst, a, b) })
	warmAndPin("Mul(32x32,32x32)", func() { Mul(small, b, b) })
	warmAndPin("MulTransA", func() { MulTransA(small, a, dst) })
	warmAndPin("MulTransB", func() { MulTransB(small, b, b) })
	warmAndPin("MatVec", func() { MatVec(y, a, x) })
	warmAndPin("RowDots", func() { RowDots(y, a, dst) })
	warmAndPin("WeightedGramWS", func() { WeightedGramWS(ws, small, a, w) })
}
