package mat

// useAsmKernel selects the SSE2 micro-kernel (gemm_amd64.s). SSE2 is in
// the amd64 baseline, so no runtime feature detection is required.
const useAsmKernel = true

// micro4x4sse computes the 4×4 tile product of packed panels ap and bp
// over kc steps into acc (row-major [16]float64), overwriting acc.
//
//go:noescape
func micro4x4sse(kc int, ap, bp, acc *float64)
