// Package mat implements the dense linear-algebra substrate the paper gets
// from CuPy: matrix products, weighted Gram matrices, Cholesky
// factorization, a symmetric eigensolver, and SPD matrix functions
// (inverse, square root, inverse square root). Batched kernels are
// parallelized over host cores via internal/parallel, mirroring how the
// paper's batched cupy.linalg calls parallelize over GPU SMs.
//
// All storage is row-major float64. The paper uses float32 on GPUs; we use
// float64 on CPUs for robustness and document the difference in DESIGN.md.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix. The zero value is an empty matrix; use
// NewDense to allocate.
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mat: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns a mutable view of row i.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// Col copies column j into dst (allocating if dst is nil) and returns it.
func (m *Dense) Col(dst []float64, j int) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.At(i, j)
	}
	return dst
}

// SetCol writes src into column j.
func (m *Dense) SetCol(j int, src []float64) {
	for i := 0; i < m.Rows; i++ {
		m.Set(i, j, src[i])
	}
}

// RowSlice returns a view of rows [lo, hi) sharing m's storage.
func (m *Dense) RowSlice(lo, hi int) *Dense {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: RowSlice [%d, %d) out of range [0, %d)", lo, hi, m.Rows))
	}
	return &Dense{Rows: hi - lo, Cols: m.Cols, Stride: m.Stride, Data: m.Data[lo*m.Stride:]}
}

// Clone returns a deep copy with compact stride.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies a into m; dimensions must match.
func (m *Dense) CopyFrom(a *Dense) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic(fmt.Sprintf("mat: copy shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, a.Rows, a.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), a.Row(i))
	}
}

// Zero sets all elements to 0.
func (m *Dense) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Eye returns the n×n identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Scale multiplies every element by alpha.
func (m *Dense) Scale(alpha float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= alpha
		}
	}
}

// AddScaled performs m += alpha*a. Shapes must match.
func (m *Dense) AddScaled(alpha float64, a *Dense) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst, src := m.Row(i), a.Row(i)
		for j := range dst {
			dst[j] += alpha * src[j]
		}
	}
}

// AddDiag performs m += alpha*I on a square matrix.
func (m *Dense) AddDiag(alpha float64) {
	if m.Rows != m.Cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Stride+i] += alpha
	}
}

// AddOuter performs m += alpha * x xᵀ for square m (symmetric rank-1
// update; both triangles are written).
func (m *Dense) AddOuter(alpha float64, x []float64) {
	n := m.Rows
	if m.Cols != n || len(x) != n {
		panic("mat: AddOuter shape mismatch")
	}
	for i := 0; i < n; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// T returns a newly allocated transpose.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Dense) Trace() float64 {
	if m.Rows != m.Cols {
		panic("mat: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// FrobDot returns the matrix inner product A·B = Σ_ij A_ij B_ij (the "·"
// of Eq. 4 in the paper).
func FrobDot(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: FrobDot shape mismatch")
	}
	var s float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			s += ra[j] * rb[j]
		}
	}
	return s
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|, a convenience for tests.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// Symmetrize replaces m with (m + mᵀ)/2.
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// IsFinite reports whether all entries are finite.
func (m *Dense) IsFinite() bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}
