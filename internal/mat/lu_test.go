package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20} {
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		a.AddDiag(float64(n)) // keep well-conditioned
		lu, err := NewLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := lu.SolveVec(nil, b)
		ax := MatVec(nil, a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("n=%d: residual %g", n, ax[i]-b[i])
			}
		}
	}
}

func TestLUSolveMatrixAndNonsymmetric(t *testing.T) {
	// LU must handle non-symmetric systems (the exact ROUND's I + ηSG).
	a := FromRows([][]float64{
		{0, 2, 1}, // zero pivot forces a row swap
		{1, 0, 3},
		{2, 1, 0},
	})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	x := lu.Solve(nil, b)
	ax := Mul(nil, a, x)
	if d := MaxAbsDiff(ax, b); d > 1e-10 {
		t.Fatalf("AX != B (%g)", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lu.Det()-6) > 1e-12 {
		t.Fatalf("det %g", lu.Det())
	}
	// Permutation flips the sign consistently: det of a row-swapped
	// identity is -1.
	p := FromRows([][]float64{{0, 1}, {1, 0}})
	lup, err := NewLU(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lup.Det()+1) > 1e-12 {
		t.Fatalf("permutation det %g", lup.Det())
	}
}

// TestLUAgainstCholesky: on SPD inputs both factorizations must give the
// same solutions.
func TestLUAgainstCholesky(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, err := NewLU(a)
		if err != nil {
			return true
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return true
		}
		x1 := lu.SolveVec(nil, b)
		x2 := ch.SolveVec(nil, b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
