//go:build !race

package mat

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
