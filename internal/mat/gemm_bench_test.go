package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

// GEMM benchmarks: the blocked kernels against the unblocked reference at
// the dimensions the ROADMAP targets (d ≥ 256 feature blocks). Run with
//
//	go test -bench 'Gemm|MatVec' -benchmem ./internal/mat
func benchDims(d int) (*Dense, *Dense) {
	rng := rand.New(rand.NewSource(42))
	return randDense(rng, d, d), randDense(rng, d, d)
}

func benchmarkGemm(b *testing.B, d int, f func(dst, x, y *Dense) *Dense) {
	x, y := benchDims(d)
	dst := NewDense(d, d)
	b.SetBytes(int64(8 * d * d))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, x, y)
	}
}

func BenchmarkGemmBlocked(b *testing.B) {
	for _, d := range []int{64, 256, 512} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) { benchmarkGemm(b, d, Mul) })
	}
}

func BenchmarkGemmNaive(b *testing.B) {
	for _, d := range []int{64, 256, 512} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) { benchmarkGemm(b, d, RefMul) })
	}
}

func BenchmarkGemmTransABlocked(b *testing.B) {
	benchmarkGemm(b, 256, MulTransA)
}

func BenchmarkGemmTransANaive(b *testing.B) {
	benchmarkGemm(b, 256, RefMulTransA)
}

func BenchmarkMatVec(b *testing.B) {
	a, _ := benchDims(512)
	x := make([]float64, 512)
	dst := make([]float64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(dst, a, x)
	}
}

func BenchmarkWeightedGram(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randDense(rng, 2000, 64)
	w := make([]float64, 2000)
	for i := range w {
		w[i] = rng.Float64()
	}
	dst := NewDense(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WeightedGram(dst, x, w)
	}
}
