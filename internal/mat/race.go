//go:build race

package mat

// RaceEnabled reports whether the race detector is compiled in. Its
// instrumentation allocates, so the AllocsPerRun regression tests skip
// their zero-allocation assertions under -race.
const RaceEnabled = true
