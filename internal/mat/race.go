package mat

import "repro/internal/parallel"

// RaceEnabled reports whether the race detector is compiled in. Its
// instrumentation allocates, so the AllocsPerRun regression tests skip
// their zero-allocation assertions under -race. Aliased from
// internal/parallel so there is a single build-tag pair to maintain.
const RaceEnabled = parallel.RaceEnabled
