package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot.
var ErrNotSPD = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L Lᵀ.
type Cholesky struct {
	L *Dense
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotSPD when a pivot is not
// positive.
func NewCholesky(a *Dense) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		panic("mat: Cholesky of non-square matrix")
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		lj[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s * inv
		}
	}
	return &Cholesky{L: l}, nil
}

// NewCholeskyRidge factors a, retrying with geometrically increasing
// diagonal ridge terms when a is numerically semidefinite. It returns the
// factorization and the ridge that was finally applied. This backs the
// preconditioner and block-inverse construction, which must survive
// rank-deficient Σ blocks (e.g. a class with no weight yet).
func NewCholeskyRidge(a *Dense, ridge0 float64) (*Cholesky, float64, error) {
	if ch, err := NewCholesky(a); err == nil {
		return ch, 0, nil
	}
	// Scale the ridge to the matrix magnitude so behaviour is unit-free.
	scale := 0.0
	for i := 0; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, i)); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	ridge := ridge0 * scale
	for iter := 0; iter < 40; iter++ {
		b := a.Clone()
		b.AddDiag(ridge)
		if ch, err := NewCholesky(b); err == nil {
			return ch, ridge, nil
		}
		ridge *= 10
	}
	return nil, ridge, ErrNotSPD
}

// SolveVec solves A x = b in place of dst (dst may be b itself).
func (c *Cholesky) SolveVec(dst, b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("mat: Cholesky SolveVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		li := c.L.Row(i)
		s := dst[i]
		for k := 0; k < i; k++ {
			s -= li[k] * dst[k]
		}
		dst[i] = s / li[i]
	}
	// Backward solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * dst[k]
		}
		dst[i] = s / c.L.At(i, i)
	}
	return dst
}

// Solve solves A X = B column-by-column; dst may be nil or B itself.
func (c *Cholesky) Solve(dst, b *Dense) *Dense {
	if dst == nil {
		dst = b.Clone()
	} else if dst != b {
		dst.CopyFrom(b)
	}
	col := make([]float64, dst.Rows)
	for j := 0; j < dst.Cols; j++ {
		dst.Col(col, j)
		c.SolveVec(col, col)
		dst.SetCol(j, col)
	}
	return dst
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Dense {
	n := c.L.Rows
	inv := Eye(n)
	return c.Solve(inv, inv)
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// InvSPD inverts a symmetric positive definite matrix, applying a ridge if
// needed. It panics only on shape errors; numerically hopeless inputs
// return an error.
func InvSPD(a *Dense) (*Dense, error) {
	ch, _, err := NewCholeskyRidge(a, 1e-12)
	if err != nil {
		return nil, err
	}
	return ch.Inverse(), nil
}
