package mat

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot.
var ErrNotSPD = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L Lᵀ.
//
// The zero value is ready for use with FactorInto/FactorRidge, which
// reuse the factor storage across refactorizations — the in-place path
// behind the RELAX preconditioner and the ROUND block-inverse rebuild,
// which refactor the same-sized blocks every iteration and must not
// allocate per call.
type Cholesky struct {
	L *Dense
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read; a is not modified. It returns ErrNotSPD
// when a pivot is not positive.
func NewCholesky(a *Dense) (*Cholesky, error) {
	var c Cholesky
	if err := c.FactorInto(a); err != nil {
		return nil, err
	}
	return &c, nil
}

// FactorInto factors a into c, reusing c.L's storage when it has the
// right shape and allocating it otherwise. Only the lower triangle of a
// is read; a is not modified. On error the factor contents are
// unspecified but the storage remains reusable.
func (c *Cholesky) FactorInto(a *Dense) error {
	return c.factor(a, 0)
}

// FactorRidge factors a + r·I into c, starting from r = 0 and retrying
// with geometrically increasing diagonal ridge terms when a is
// numerically semidefinite, exactly as NewCholeskyRidge but without
// cloning a per retry: the ridge is added to the pivots on the fly. It
// returns the ridge that was finally applied.
func (c *Cholesky) FactorRidge(a *Dense, ridge0 float64) (float64, error) {
	if err := c.factor(a, 0); err == nil {
		return 0, nil
	}
	// Scale the ridge to the matrix magnitude so behaviour is unit-free.
	scale := 0.0
	for i := 0; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, i)); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	ridge := ridge0 * scale
	for iter := 0; iter < 40; iter++ {
		if err := c.factor(a, ridge); err == nil {
			return ridge, nil
		}
		ridge *= 10
	}
	return ridge, ErrNotSPD
}

// factor runs the left-looking factorization of a + ridge·I, reading
// only the lower triangle of a and writing c.L (which never aliases a's
// storage in supported use; factoring a matrix into itself is not
// supported).
//
//firal:hotpath
func (c *Cholesky) factor(a *Dense, ridge float64) error {
	n := a.Rows
	if a.Cols != n {
		panic("mat: Cholesky of non-square matrix")
	}
	if c.L == nil || c.L.Rows != n || c.L.Cols != n {
		c.L = NewDense(n, n)
	}
	l := c.L
	for j := 0; j < n; j++ {
		d := a.At(j, j) + ridge
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		d = math.Sqrt(d)
		lj[j] = d
		// Keep the strict upper triangle zeroed so a reused factor is
		// identical to a freshly allocated one.
		for k := j + 1; k < n; k++ {
			lj[k] = 0
		}
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s * inv
		}
	}
	return nil
}

// NewCholeskyRidge factors a, retrying with geometrically increasing
// diagonal ridge terms when a is numerically semidefinite. It returns the
// factorization and the ridge that was finally applied. This backs the
// preconditioner and block-inverse construction, which must survive
// rank-deficient Σ blocks (e.g. a class with no weight yet).
func NewCholeskyRidge(a *Dense, ridge0 float64) (*Cholesky, float64, error) {
	var c Cholesky
	ridge, err := c.FactorRidge(a, ridge0)
	if err != nil {
		return nil, ridge, err
	}
	return &c, ridge, nil
}

// SolveVec solves A x = b in place of dst (dst may be b itself).
//
//firal:hotpath
func (c *Cholesky) SolveVec(dst, b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("mat: Cholesky SolveVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		li := c.L.Row(i)
		s := dst[i]
		for k := 0; k < i; k++ {
			s -= li[k] * dst[k]
		}
		dst[i] = s / li[i]
	}
	// Backward solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * dst[k]
		}
		dst[i] = s / c.L.At(i, i)
	}
	return dst
}

// Solve solves A X = B column-by-column; dst may be nil or B itself.
func (c *Cholesky) Solve(dst, b *Dense) *Dense {
	return c.SolveInto(nil, dst, b)
}

// SolveInto is Solve with the column buffer drawn from ws, so repeated
// solves against a warm workspace are allocation-free.
//
//firal:hotpath
func (c *Cholesky) SolveInto(ws *Workspace, dst, b *Dense) *Dense {
	if dst == nil {
		dst = b.Clone()
	} else if dst != b {
		dst.CopyFrom(b)
	}
	col := ws.Vec(dst.Rows)
	for j := 0; j < dst.Cols; j++ {
		dst.Col(col, j)
		c.SolveVec(col, col)
		dst.SetCol(j, col)
	}
	ws.PutVec(col)
	return dst
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Dense {
	return c.InverseInto(nil, nil)
}

// InverseInto writes A⁻¹ into dst (allocated when nil) with scratch from
// ws — the in-place counterpart of Inverse for hot loops that rebuild the
// same-sized inverse every iteration.
func (c *Cholesky) InverseInto(ws *Workspace, dst *Dense) *Dense {
	n := c.L.Rows
	if dst == nil {
		dst = NewDense(n, n)
	} else if dst.Rows != n || dst.Cols != n {
		panic("mat: Cholesky InverseInto shape mismatch")
	}
	dst.Zero()
	for i := 0; i < n; i++ {
		dst.Set(i, i, 1)
	}
	return c.SolveInto(ws, dst, dst)
}

// LogDet returns log det A = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// InvSPD inverts a symmetric positive definite matrix, applying a ridge if
// needed. It panics only on shape errors; numerically hopeless inputs
// return an error.
func InvSPD(a *Dense) (*Dense, error) {
	ch, _, err := NewCholeskyRidge(a, 1e-12)
	if err != nil {
		return nil, err
	}
	return ch.Inverse(), nil
}
