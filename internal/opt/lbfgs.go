// Package opt provides the generic optimizers the reproduction needs:
// L-BFGS with backtracking line search (used to train the multinomial
// logistic classifier, replacing scikit-learn's lbfgs solver) and a
// guarded bisection root finder (used for the FTRL normalization constant
// ν_t in the ROUND step, Algorithm 1 line 17 / Algorithm 3 line 10).
package opt

import (
	"errors"
	"math"

	"repro/internal/mat"
)

// Objective evaluates f(x) and writes ∇f(x) into grad.
type Objective func(x, grad []float64) float64

// LBFGSOptions configure Minimize.
type LBFGSOptions struct {
	// Memory is the number of correction pairs (default 10).
	Memory int
	// MaxIter caps outer iterations (default 200).
	MaxIter int
	// GradTol stops when ‖∇f‖∞ ≤ GradTol (default 1e-6).
	GradTol float64
	// FTol stops when the relative decrease of f falls below FTol
	// (default 1e-12).
	FTol float64
}

// LBFGSResult reports a minimization.
type LBFGSResult struct {
	F          float64
	Iterations int
	Evals      int
	Converged  bool
}

func (o *LBFGSOptions) defaults() {
	if o.Memory <= 0 {
		o.Memory = 10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.FTol <= 0 {
		o.FTol = 1e-12
	}
}

// Minimize runs L-BFGS from x (updated in place) and returns the result.
func Minimize(f Objective, x []float64, opt LBFGSOptions) LBFGSResult {
	opt.defaults()
	n := len(x)
	g := make([]float64, n)
	fx := f(x, g)
	res := LBFGSResult{F: fx, Evals: 1}

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair
	d := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	alphaBuf := make([]float64, opt.Memory)

	for iter := 0; iter < opt.MaxIter; iter++ {
		if infNorm(g) <= opt.GradTol {
			res.Converged = true
			break
		}
		// Two-loop recursion: d = -H·g.
		copy(d, g)
		for i := len(hist) - 1; i >= 0; i-- {
			p := hist[i]
			alphaBuf[i] = p.rho * mat.Dot(p.s, d)
			mat.Axpy(-alphaBuf[i], p.y, d)
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			gamma := mat.Dot(last.s, last.y) / mat.Dot(last.y, last.y)
			mat.Scal(gamma, d)
		}
		for i := 0; i < len(hist); i++ {
			p := hist[i]
			beta := p.rho * mat.Dot(p.y, d)
			mat.Axpy(alphaBuf[i]-beta, p.s, d)
		}
		mat.Scal(-1, d)

		dg := mat.Dot(d, g)
		if dg >= 0 {
			// Not a descent direction (stale curvature); restart with -g.
			hist = hist[:0]
			copy(d, g)
			mat.Scal(-1, d)
			dg = -mat.Dot(g, g)
		}

		// Backtracking Armijo line search.
		step := 1.0
		if iter == 0 {
			step = 1 / math.Max(1, infNorm(g))
		}
		const c1 = 1e-4
		var fNew float64
		ok := false
		for ls := 0; ls < 60; ls++ {
			copy(xNew, x)
			mat.Axpy(step, d, xNew)
			fNew = f(xNew, gNew)
			res.Evals++
			if fNew <= fx+c1*step*dg && !math.IsNaN(fNew) {
				ok = true
				break
			}
			step *= 0.5
		}
		if !ok {
			break
		}

		// Curvature pair.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := mat.Dot(s, y)
		if sy > 1e-12*mat.Nrm2(s)*mat.Nrm2(y) {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > opt.Memory {
				hist = hist[1:]
			}
		}

		prevF := fx
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		res.Iterations = iter + 1
		if math.Abs(prevF-fx) <= opt.FTol*(1+math.Abs(fx)) {
			res.Converged = true
			break
		}
	}
	res.F = fx
	return res
}

func infNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) do not bracket a
// root.
var ErrNoBracket = errors.New("opt: bisection endpoints do not bracket a root")

// Bisect finds x in [lo, hi] with f(x) ≈ 0 by bisection. f must be
// monotone (either direction) across the bracket. tol is the interval
// width at which to stop.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	for i := 0; i < maxIter && hi-lo > tol; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
