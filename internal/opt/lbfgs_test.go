package opt

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestLBFGSQuadratic(t *testing.T) {
	// f(x) = 0.5 xᵀ D x − bᵀx with diagonal D.
	d := []float64{1, 4, 9, 16}
	b := []float64{1, 1, 1, 1}
	f := func(x, g []float64) float64 {
		var v float64
		for i := range x {
			g[i] = d[i]*x[i] - b[i]
			v += 0.5*d[i]*x[i]*x[i] - b[i]*x[i]
		}
		return v
	}
	x := make([]float64, 4)
	res := Minimize(f, x, LBFGSOptions{GradTol: 1e-10})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range x {
		want := b[i] / d[i]
		if math.Abs(x[i]-want) > 1e-6 {
			t.Fatalf("x[%d] = %g want %g", i, x[i], want)
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	f := func(x, g []float64) float64 {
		a, b := x[0], x[1]
		g[0] = -400*a*(b-a*a) - 2*(1-a)
		g[1] = 200 * (b - a*a)
		return 100*(b-a*a)*(b-a*a) + (1-a)*(1-a)
	}
	x := []float64{-1.2, 1}
	res := Minimize(f, x, LBFGSOptions{MaxIter: 500, GradTol: 1e-8, FTol: 1e-16})
	if math.Abs(x[0]-1) > 1e-4 || math.Abs(x[1]-1) > 1e-4 {
		t.Fatalf("Rosenbrock minimum not found: %v (res %+v)", x, res)
	}
}

func TestLBFGSLogSumExp(t *testing.T) {
	// Smooth convex: f(x) = log(Σ exp(x_i)) + 0.5‖x‖²; unique minimum.
	f := func(x, g []float64) float64 {
		m := x[0]
		for _, v := range x {
			if v > m {
				m = v
			}
		}
		var s float64
		for _, v := range x {
			s += math.Exp(v - m)
		}
		lse := m + math.Log(s)
		var q float64
		for i, v := range x {
			g[i] = math.Exp(v-m)/s + v
			q += v * v
		}
		return lse + 0.5*q
	}
	x := []float64{3, -2, 0.5}
	res := Minimize(f, x, LBFGSOptions{})
	g := make([]float64, 3)
	f(x, g)
	if mat.Nrm2(g) > 1e-5 {
		t.Fatalf("gradient not small: %v (res %+v)", g, res)
	}
}

func TestBisect(t *testing.T) {
	// Root of x² − 2 on [0, 2].
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root %g", root)
	}
	// Decreasing function.
	root2, err := Bisect(func(x float64) float64 { return 1 - x }, 0, 5, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root2-1) > 1e-10 {
		t.Fatalf("root %g", root2)
	}
	// No bracket.
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12, 0); err == nil {
		t.Fatal("expected ErrNoBracket")
	}
	// Exact endpoint roots.
	if r, _ := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12, 0); r != 0 {
		t.Fatalf("endpoint root %g", r)
	}
}

// TestBisectFTRLShape exercises the actual ν_t equation from the ROUND
// step: Σ_j (ν + ηλ_j)⁻² = 1 with the bracket from DESIGN.md § 5.
func TestBisectFTRLShape(t *testing.T) {
	lambda := []float64{0, 0.3, 1.1, 2.2, 5.0}
	eta := 1.7
	ed := float64(len(lambda))
	f := func(nu float64) float64 {
		var s float64
		for _, l := range lambda {
			d := nu + eta*l
			s += 1 / (d * d)
		}
		return s - 1
	}
	lmin := lambda[0]
	lo := -eta*lmin + 1/math.Sqrt(ed)
	hi := -eta*lmin + math.Sqrt(ed)
	nu, err := Bisect(f, lo, hi, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(nu)) > 1e-8 {
		t.Fatalf("ν residual %g", f(nu))
	}
}
