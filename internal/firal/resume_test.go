package firal

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// TestRelaxResumeBitForBit pins the checkpoint/resume contract: a RelaxFast
// solve interrupted after any iteration and resumed from the checkpoint
// taken there produces exactly the RelaxResult of an uninterrupted solve —
// same Z bits, same iteration and CG counts. This is what lets a server
// restart continue a half-finished selection instead of recomputing it.
func TestRelaxResumeBitForBit(t *testing.T) {
	p := testProblem(7, 20, 120, 6, 3)
	b := 8
	opts := RelaxOptions{Probes: 4, Seed: 42, MaxIter: 12}

	// Reference: uninterrupted solve, checkpoints collected along the way.
	var ckpts []*RelaxCheckpoint
	ref, err := RelaxFast(context.Background(), p, b, withHook(opts, func(c *RelaxCheckpoint) {
		ckpts = append(ckpts, c.Clone())
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) < 3 {
		t.Fatalf("want several checkpoints, got %d", len(ckpts))
	}
	last := ckpts[len(ckpts)-1]
	if !last.Done {
		t.Fatalf("final checkpoint not marked Done")
	}
	if last.Iteration != ref.Iterations || last.CGIterations != ref.CGIterations {
		t.Fatalf("Done checkpoint (it=%d, cg=%d) disagrees with result (it=%d, cg=%d)",
			last.Iteration, last.CGIterations, ref.Iterations, ref.CGIterations)
	}

	// Resume from every intermediate checkpoint, including Done.
	for _, ck := range ckpts {
		o := opts
		o.Resume = ck
		res, err := RelaxFast(context.Background(), p, b, o)
		if err != nil {
			t.Fatalf("resume from iteration %d (done=%v): %v", ck.Iteration, ck.Done, err)
		}
		if res.Iterations != ref.Iterations {
			t.Errorf("resume from %d: %d iterations, want %d", ck.Iteration, res.Iterations, ref.Iterations)
		}
		if res.CGIterations != ref.CGIterations && !ck.Done {
			t.Errorf("resume from %d: %d CG iterations, want %d", ck.Iteration, res.CGIterations, ref.CGIterations)
		}
		if !bytes.Equal(floatBits(res.Z), floatBits(ref.Z)) {
			t.Errorf("resume from iteration %d (done=%v): Z differs from uninterrupted run", ck.Iteration, ck.Done)
		}
	}
}

// TestSelectApproxResumeSameSelection pins the end-to-end property the
// service relies on: resuming a full selection (RELAX + ROUND) from a
// mid-RELAX checkpoint yields the same selected set as never stopping.
func TestSelectApproxResumeSameSelection(t *testing.T) {
	p := testProblem(11, 25, 150, 5, 3)
	b := 6
	base := Options{Relax: RelaxOptions{Probes: 4, Seed: 9, MaxIter: 10}}

	var mid *RelaxCheckpoint
	refOpts := base
	refOpts.Relax.OnIteration = func(c *RelaxCheckpoint) {
		if c.Iteration == 4 && !c.Done {
			mid = c.Clone()
		}
	}
	ref, err := SelectApprox(context.Background(), p, b, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no mid-solve checkpoint captured")
	}

	resOpts := base
	resOpts.Relax.Resume = mid
	res, err := SelectApprox(context.Background(), p, b, resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Selected) != fmt.Sprint(ref.Selected) {
		t.Fatalf("resumed selection %v != uninterrupted %v", res.Selected, ref.Selected)
	}
}

// TestRelaxResumeShapeMismatch pins the typed error for a checkpoint that
// does not belong to the problem.
func TestRelaxResumeShapeMismatch(t *testing.T) {
	p := testProblem(3, 10, 40, 4, 2)
	o := RelaxOptions{Probes: 2, Seed: 1, MaxIter: 3}
	o.Resume = &RelaxCheckpoint{Iteration: 1, Z: make([]float64, 7)}
	if _, err := RelaxFast(context.Background(), p, 2, o); err == nil {
		t.Fatal("want error for mismatched checkpoint, got nil")
	}
}

// TestRoundExcludeSkipsIndices pins RoundOptions.Exclude: excluded indices
// are never selected, by either ROUND solver.
func TestRoundExcludeSkipsIndices(t *testing.T) {
	p := testProblem(13, 15, 60, 4, 3)
	b := 5
	relax, err := RelaxFast(context.Background(), p, b, RelaxOptions{Probes: 3, Seed: 5, MaxIter: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude whatever an unconstrained round picks first.
	free, err := RoundFast(p, relax.Z, b, RoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exclude := append([]int(nil), free.Selected[:2]...)
	exclude = append(exclude, -3, p.N()+10) // out-of-range entries are ignored

	for name, run := range map[string]func() (*RoundResult, error){
		"fast":  func() (*RoundResult, error) { return RoundFast(p, relax.Z, b, RoundOptions{Exclude: exclude}) },
		"exact": func() (*RoundResult, error) { return RoundExact(p, relax.Z, b, RoundOptions{Exclude: exclude}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		banned := map[int]bool{}
		for _, i := range exclude {
			banned[i] = true
		}
		for _, i := range res.Selected {
			if banned[i] {
				t.Errorf("%s: excluded index %d was selected", name, i)
			}
		}
		if len(res.Selected) != b {
			t.Errorf("%s: selected %d points, want %d", name, len(res.Selected), b)
		}
	}
}

func withHook(o RelaxOptions, hook func(*RelaxCheckpoint)) RelaxOptions {
	o.OnIteration = hook
	return o
}

func floatBits(x []float64) []byte {
	buf := make([]byte, 0, 8*len(x))
	for _, v := range x {
		buf = fmt.Appendf(buf, "%x;", v)
	}
	return buf
}
