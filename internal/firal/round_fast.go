package firal

import (
	"math"
	"sync"

	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/timing"
)

// RoundState carries the per-class block matrices of the diagonal ROUND
// step (Algorithm 3). All blocks are d×d; there are c of each, so the
// state costs O(cd²) — this is what replaces Exact-FIRAL's dense ẽd×ẽd
// matrices. The state is exported so the distributed solver
// (internal/distfiral) can construct it from allreduced blocks and shard
// the eigenvalue work across ranks.
type RoundState struct {
	eta   float64
	b     int
	d, c  int
	edF   float64
	sig   []*mat.Dense // (Σ⋄)_k
	ho    []*mat.Dense // (Ho)_k
	isqrt []*mat.Dense // (Σ⋄)_k^{-1/2}
	binv  []*mat.Dense // (B_t)⁻¹_k
	hacc  []*mat.Dense // (H)_k accumulated (line 8)

	// Persistent scratch, reused across the b inner iterations so the hot
	// Scores/Eigvals/FinishUpdate loop stays allocation-free after
	// warm-up. A RoundState is owned by one goroutine.
	ws     *mat.Workspace
	tmp    *mat.Dense   // d×d product scratch
	pk     *mat.Dense   // d×d product scratch (H̃_k)
	chol   mat.Cholesky // persistent factor storage for the (B_t)⁻¹ rebuild
	pks    []*mat.Dense // per-class P_k = B⁻¹_k (Σ⋄)_k B⁻¹_k (Scores)
	xmBuf  []float64    // block×d Scores product scratch (lazily sized)
	qp, qb []float64    // block Scores row-dot scratch
	lamBuf []float64    // concatenated eigenvalues (Eigvals)
	valBuf []float64    // single-block eigenvalues (Eigvals)
	nuBuf  []float64    // scaled eigenvalues (FinishUpdate)
}

// NewRoundState performs lines 3–5 of Algorithm 3 given the diagonal
// blocks of Σ⋄ and Ho: it builds the inverse square roots (Σ⋄)_k^{-1/2}
// (for the eigenvalue transform of line 9), the initial (B_1)⁻¹_k, and
// zeroed accumulators (H)_k. The blocks are retained by the state and
// must not be mutated by the caller afterwards; the state itself only
// reads them (callers may pass cached blocks they also keep).
func NewRoundState(sig, ho []*mat.Dense, b int, eta float64, ph *timing.Phases) (*RoundState, error) {
	return newRoundStateInto(nil, sig, ho, b, eta, ph)
}

// ensureRoundState returns prev when it matches the block shape (its
// scratch, accumulators, and inverse-block storage are recycled), or
// fresh storage otherwise.
func ensureRoundState(prev *RoundState, d, c int) *RoundState {
	if prev != nil && prev.d == d && prev.c == c {
		return prev
	}
	st := &RoundState{
		d: d, c: c,
		hacc:  make([]*mat.Dense, c),
		binv:  make([]*mat.Dense, c),
		isqrt: make([]*mat.Dense, c),
		ws:    mat.NewWorkspace(),
		tmp:   mat.NewDense(d, d),
		pk:    mat.NewDense(d, d),
	}
	for k := 0; k < c; k++ {
		st.hacc[k] = mat.NewDense(d, d)
	}
	return st
}

// newRoundStateInto is NewRoundState reusing a previous state's storage
// (pooled by RoundFast): when prev matches the block shape, its scratch,
// accumulators, and inverse-block storage are recycled and only the
// genuinely input-dependent eigendecompositions behind (Σ⋄)_k^{-1/2}
// allocate. A nil or mismatched prev builds fresh storage.
func newRoundStateInto(prev *RoundState, sig, ho []*mat.Dense, b int, eta float64, ph *timing.Phases) (*RoundState, error) {
	c := len(sig)
	if c == 0 || len(ho) != c {
		panic("firal: RoundState needs matching non-empty block sets")
	}
	d := sig[0].Rows
	st := ensureRoundState(prev, d, c)
	st.eta, st.b, st.edF = eta, b, float64(d*c)
	st.sig, st.ho = sig, ho

	if err := st.invSqrtBlocks(ph); err != nil {
		return nil, err
	}

	stop := ph.Start("other")
	sqrtEd := math.Sqrt(st.edF)
	for k := 0; k < c; k++ {
		b1 := st.tmp
		b1.CopyFrom(st.sig[k])
		b1.Scale(sqrtEd)
		b1.AddScaled(eta/float64(b), st.ho[k])
		if _, err := st.chol.FactorRidge(b1, choleskyRidge); err != nil {
			return nil, err
		}
		st.binv[k] = st.chol.InverseInto(st.ws, st.binv[k])
		st.hacc[k].Zero()
	}
	stop()
	return st, nil
}

// invSqrtBlocks rebuilds the (Σ⋄)_k^{-1/2} transforms from the current
// sig blocks (line 4 of Algorithm 3).
func (st *RoundState) invSqrtBlocks(ph *timing.Phases) error {
	stop := ph.Start("eig")
	defer stop()
	for k := 0; k < st.c; k++ {
		sf, err := mat.NewSPDFuncs(st.sig[k], 1e-10)
		if err != nil {
			return err
		}
		st.isqrt[k] = sf.InvSqrt()
	}
	return nil
}

// NewRoundStateFromFactors is NewRoundState with the B₁ factorizations
// already in hand: instead of assembling and factoring
// √ẽd·(Σ⋄)_k + (η/b)·(Ho)_k per class, the supplied factors — kept
// current across rounds by rank-1 updates (see Incremental) — are
// inverted directly, so starting round t+1 costs O(cd³) with no fresh
// Gram assembly. The factors and blocks are read, not consumed; repeated
// rounds off one maintained state stay valid.
func NewRoundStateFromFactors(prev *RoundState, sig, ho []*mat.Dense, factors []mat.Cholesky, b int, eta float64, ph *timing.Phases) (*RoundState, error) {
	c := len(sig)
	if c == 0 || len(ho) != c || len(factors) != c {
		panic("firal: RoundState needs matching non-empty block and factor sets")
	}
	d := sig[0].Rows
	st := ensureRoundState(prev, d, c)
	st.eta, st.b, st.edF = eta, b, float64(d*c)
	st.sig, st.ho = sig, ho

	if err := st.invSqrtBlocks(ph); err != nil {
		return nil, err
	}

	stop := ph.Start("other")
	for k := 0; k < c; k++ {
		st.binv[k] = factors[k].InverseInto(st.ws, st.binv[k])
		st.hacc[k].Zero()
	}
	stop()
	return st, nil
}

// NumBlocks returns the number of Fisher blocks c.
func (st *RoundState) NumBlocks() int { return st.c }

// Scores evaluates the equivalent ROUND objective of Proposition 4 /
// Eq. 17 for every point of pool (scores to maximize):
//
//	r_i = Σ_k γ_ik · x_iᵀ B⁻¹_k (Σ⋄)_k B⁻¹_k x_i / (1 + η γ_ik x_iᵀ B⁻¹_k x_i)
//
// with γ_ik = h_ik(1 − h_ik). The pool is visited in row blocks
// (outermost) with all c classes evaluated per block, so a streamed pool
// is read exactly once per rescoring pass; each class contributes two
// batched GEMM + row-dot passes per block and the cost is O(n c d²) per
// round (Table II). The per-class P_k products are hoisted into
// persistent state before the sweep.
//
//firal:hotpath
func (st *RoundState) Scores(pool hessian.Pool, dst []float64) {
	n := pool.N()
	if len(dst) != n {
		panic("firal: scores destination length mismatch")
	}
	mat.Fill(dst, 0)
	if n == 0 {
		return
	}
	// P_k = B⁻¹_k (Σ⋄)_k B⁻¹_k, shared by every block of this pass.
	//firal:allow(alloc) — lazy init, once per state
	if st.pks == nil {
		st.pks = make([]*mat.Dense, st.c)
		for k := range st.pks {
			st.pks[k] = mat.NewDense(st.d, st.d)
		}
	}
	for k := 0; k < st.c; k++ {
		mat.Mul(st.tmp, st.binv[k], st.sig[k])
		mat.Mul(st.pks[k], st.tmp, st.binv[k])
	}
	h := pool.Probs()
	bs := min(pool.BlockRows(), n)
	// Guard every buffer: xmBuf's capacity can be rounded up by the
	// allocator while qp/qb land exactly on their size class, so a state
	// reused with a slightly larger block size could pass an xmBuf-only
	// check and then overrun qp/qb.
	//firal:allow(alloc) — amortized: regrows only when the block size grows
	if cap(st.xmBuf) < bs*st.d || cap(st.qp) < bs {
		st.xmBuf = make([]float64, bs*st.d)
		st.qp = make([]float64, bs)
		st.qb = make([]float64, bs)
	}
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		m := hi - lo
		xb := pool.Block(st.ws, lo, hi)
		xm := st.ws.View(st.xmBuf[:m*st.d], m, st.d)
		qp, qb := st.qp[:m], st.qb[:m]
		for k := 0; k < st.c; k++ {
			mat.Mul(xm, xb, st.pks[k])
			mat.RowDots(qp, xb, xm)
			mat.Mul(xm, xb, st.binv[k])
			mat.RowDots(qb, xb, xm)
			for i := 0; i < m; i++ {
				hv := h.At(lo+i, k)
				gamma := hv * (1 - hv)
				if gamma == 0 {
					continue
				}
				dst[lo+i] += gamma * qp[i] / (1 + st.eta*gamma*qb[i])
			}
		}
		st.ws.PutView(xm)
		pool.PutBlock(st.ws, xb)
	}
}

// AddPoint accumulates the chosen point into (H)_k (line 8):
// (H)_k ← (H)_k + (1/b)(Ho)_k + h_k(1−h_k) x xᵀ.
//
//firal:hotpath
func (st *RoundState) AddPoint(x, h []float64) {
	for k := 0; k < st.c; k++ {
		st.hacc[k].AddScaled(1/float64(st.b), st.ho[k])
		gamma := h[k] * (1 - h[k])
		if gamma != 0 {
			st.hacc[k].AddOuter(gamma, x)
		}
	}
}

// Update performs lines 8–11 of Algorithm 3 for the chosen point (x, h)
// serially: AddPoint, block eigenvalues, ν bisection, and the (B_{t+1})⁻¹
// rebuild. It returns ν_{t+1}. The distributed solver instead calls
// AddPoint, shards Eigvals over ranks, and calls FinishUpdate.
func (st *RoundState) Update(x, h []float64, ph *timing.Phases) (float64, error) {
	stop := ph.Start("other")
	st.AddPoint(x, h)
	stop()

	stop = ph.Start("eig")
	lam, err := st.Eigvals(0, st.c)
	stop()
	if err != nil {
		return 0, err
	}
	return st.FinishUpdate(lam, ph)
}

// Eigvals computes the eigenvalues of (H̃)_k = (Σ⋄)_k^{-1/2} (H)_k
// (Σ⋄)_k^{-1/2} for classes [kLo, kHi), concatenated (line 9). The
// returned slice is state-owned scratch, valid until the next Eigvals
// call on this state.
func (st *RoundState) Eigvals(kLo, kHi int) ([]float64, error) {
	out := st.lamBuf[:0]
	for k := kLo; k < kHi; k++ {
		mat.Mul(st.tmp, st.isqrt[k], st.hacc[k])
		mat.Mul(st.pk, st.tmp, st.isqrt[k])
		st.pk.Symmetrize()
		vals, err := mat.SymEigvalsInto(st.ws, st.valBuf, st.pk)
		if err != nil {
			return nil, err
		}
		st.valBuf = vals
		out = append(out, vals...)
	}
	st.lamBuf = out
	return out, nil
}

// FinishUpdate solves for ν_{t+1} from the full eigenvalue set (line 10)
// and rebuilds the block inverses (line 11).
func (st *RoundState) FinishUpdate(lam []float64, ph *timing.Phases) (float64, error) {
	stop := ph.Start("other")
	defer stop()
	if cap(st.nuBuf) < len(lam) {
		st.nuBuf = make([]float64, len(lam))
	}
	scaled := st.nuBuf[:len(lam)]
	for i, l := range lam {
		if l < 0 {
			l = 0 // roundoff guard: H̃ is PSD
		}
		scaled[i] = st.eta * l
	}
	nu, err := solveNu(scaled, st.edF)
	if err != nil {
		return 0, err
	}
	// Rebuild (B_{t+1})⁻¹_k in place: the persistent factor storage and
	// the retained binv blocks absorb the per-iteration Cholesky work, so
	// the rebuild allocates nothing after the state is warm.
	for k := 0; k < st.c; k++ {
		bt := st.tmp
		bt.CopyFrom(st.sig[k])
		bt.Scale(nu)
		bt.AddScaled(st.eta, st.hacc[k])
		bt.AddScaled(st.eta/float64(st.b), st.ho[k])
		if _, err := st.chol.FactorRidge(bt, choleskyRidge); err != nil {
			return 0, err
		}
		st.chol.InverseInto(st.ws, st.binv[k])
	}
	return nu, nil
}

// MinEig returns min_k λ_min((H)_k) of the accumulated selected-point
// Hessian blocks — the η-tuning criterion.
func (st *RoundState) MinEig() float64 {
	minEig := math.Inf(1)
	for _, blk := range st.hacc {
		vals, err := mat.SymEigvals(blk)
		if err != nil || len(vals) == 0 {
			return math.Inf(-1)
		}
		if vals[0] < minEig {
			minEig = vals[0]
		}
	}
	return minEig
}

// roundScratch pools RoundFast's per-call setup: the score and selection
// vectors plus the previous RoundState and Σ⋄ blocks, whose storage the
// next same-shaped call reuses (the state retains the blocks, so both
// recycle together — a pooled state never outlives its blocks). Like the
// RELAX scratch pool this only matters for tiny rounds, where the setup
// used to rival the solve.
type roundScratch struct {
	n, d, c  int
	ws       *mat.Workspace // block-setup scratch (SigmaBlocksInto)
	scores   []float64
	selected []bool
	rowBuf   []float64
	sig      []*mat.Dense
	st       *RoundState
}

var roundScratchPool = sync.Pool{New: func() any { return &roundScratch{ws: mat.NewWorkspace()} }}

func getRoundScratch(n, d, c int) *roundScratch {
	sc := roundScratchPool.Get().(*roundScratch)
	if sc.n != n {
		sc.scores = make([]float64, n)
		sc.selected = make([]bool, n)
	} else {
		for i := range sc.selected {
			sc.selected[i] = false
		}
	}
	if sc.d != d {
		sc.rowBuf = make([]float64, d)
	}
	if sc.d != d || sc.c != c {
		sc.sig = nil // SigmaBlocksInto re-allocates to the new shape
		sc.st = nil  // newRoundStateInto builds fresh storage
	}
	sc.n, sc.d, sc.c = n, d, c
	return sc
}

func (sc *roundScratch) release() { roundScratchPool.Put(sc) }

// newRoundState assembles the blocks from a serial Problem and delegates
// to newRoundStateInto with the scratch's pooled state and block storage.
// The Ho blocks alias the Problem's labeled-block cache, which
// SigmaBlocksInto just warmed — safe because both the cache and the
// RoundState treat them as read-only.
func newRoundState(p *Problem, sc *roundScratch, z []float64, b int, eta float64, ph *timing.Phases) (*RoundState, error) {
	stop := ph.Start("other")
	sc.sig = p.SigmaBlocksInto(sc.ws, sc.sig, z)
	ho := p.labeledBlocks()
	stop()
	st, err := newRoundStateInto(sc.st, sc.sig, ho, b, eta, ph)
	if err != nil {
		return nil, err
	}
	sc.st = st
	return st, nil
}

// RoundFast runs the diagonal ROUND step of Algorithm 3: all Fisher
// matrices keep only their d×d diagonal blocks (Eq. 14), the low-rank
// block update of Lemma 3 turns the FTRL objective into the closed form of
// Eq. 17, and each iteration costs O(ncd² + cd³) instead of Exact-FIRAL's
// O(nc³ + c³d³) (Table II).
func RoundFast(p *Problem, z []float64, b int, o RoundOptions) (*RoundResult, error) {
	if o.Eta <= 0 {
		o.Eta = p.DefaultEta()
	}
	res := &RoundResult{Timings: timing.New()}
	ph := res.Timings

	n := p.N()
	sc := getRoundScratch(n, p.D(), p.C())
	defer sc.release()
	st, err := newRoundState(p, sc, z, b, o.Eta, ph)
	if err != nil {
		return nil, err
	}
	scores, selected, rowBuf := sc.scores, sc.selected, sc.rowBuf
	for _, i := range o.Exclude {
		if i >= 0 && i < n {
			selected[i] = true
		}
	}
	if err := runRoundLoop(p.Pool, st, b, scores, selected, rowBuf, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runRoundLoop executes the b greedy iterations of Algorithm 3 lines
// 6–11 over pool: rescore, argmax over unselected points, and the FTRL
// state update for the winner. selected marks points the loop must skip
// (earlier selections, the caller's exclude set) and is updated in
// place; scores and rowBuf are caller scratch of length n and d. Shared
// by RoundFast and the incremental delta rounds, which differ only in
// how the entering RoundState was built.
//
//firal:hotpath
func runRoundLoop(pool hessian.Pool, st *RoundState, b int, scores []float64, selected []bool, rowBuf []float64, res *RoundResult) error {
	n := pool.N()
	probs := pool.Probs()
	ph := res.Timings
	for t := 1; t <= b; t++ {
		stop := ph.Start("objective")
		st.Scores(pool, scores)
		stop()

		stop = ph.Start("other")
		best, bestV := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			if scores[i] > bestV {
				best, bestV = i, scores[i]
			}
		}
		stop()
		if best < 0 {
			break
		}
		selected[best] = true
		res.Selected = append(res.Selected, best)      //firal:allow(alloc) result history, one entry per selection
		res.Objectives = append(res.Objectives, bestV) //firal:allow(alloc) result history, one entry per selection

		nu, err := st.Update(pool.Row(best, rowBuf), probs.Row(best), ph)
		if err != nil {
			return err
		}
		res.Nu = append(res.Nu, nu) //firal:allow(alloc) result history, one entry per selection
	}
	res.MinEigH = st.MinEig()
	return nil
}
