package firal

import (
	"context"
	"math"
	"testing"

	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// lowerMaxAbsDiff compares the lower triangles of two factors (the upper
// triangle of a Cholesky L is unspecified storage).
func lowerMaxAbsDiff(a, b *mat.Dense) float64 {
	var m float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}

// oracleFactor builds the B₁ factor for one class from scratch blocks
// (ed is the Fisher dimension ẽd = d·c of the problem).
func oracleFactor(t *testing.T, sig, ho *mat.Dense, ed, b int, eta float64) *mat.Cholesky {
	t.Helper()
	d := sig.Rows
	b1 := mat.NewDense(d, d)
	b1.CopyFrom(sig)
	b1.Scale(math.Sqrt(float64(ed)))
	b1.AddScaled(eta/float64(b), ho)
	var ch mat.Cholesky
	if _, err := ch.FactorRidge(b1, choleskyRidge); err != nil {
		t.Fatal(err)
	}
	return &ch
}

// testIncremental builds a problem, runs a short RELAX, and captures the
// incremental state at its weights.
func testIncremental(t *testing.T, seed int64, nLabeled, nPool, d, c, b int) (*Incremental, *Problem, []float64) {
	t.Helper()
	p := testProblem(seed, nLabeled, nPool, d, c)
	relax, err := RelaxFast(context.Background(), p, b, RelaxOptions{
		FixedIterations: 6, Probes: 4, CGMaxIter: 30, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(p, relax.Z, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	return inc, p, relax.Z
}

// TestWarmStartUniformMatchesCold pins the WarmStart contract: seeding
// mirror descent with the uniform distribution must reproduce the cold
// solve bit for bit (n a power of two makes the normalization exact), so
// a warm-started round on an unchanged pool selects identically.
func TestWarmStartUniformMatchesCold(t *testing.T) {
	p := testProblem(7, 12, 128, 8, 3)
	opts := RelaxOptions{FixedIterations: 8, Probes: 4, CGMaxIter: 30, Seed: 7}
	cold, err := RelaxFast(context.Background(), p, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.WarmStart = uniformSimplex(p.N())
	warm, err := RelaxFast(context.Background(), p, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Z {
		if cold.Z[i] != warm.Z[i] {
			t.Fatalf("weight %d: cold %v != warm %v", i, cold.Z[i], warm.Z[i])
		}
	}
	rc, err := RoundFast(p, cold.Z, 4, RoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RoundFast(p, warm.Z, 4, RoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rc.Selected {
		if rc.Selected[i] != rw.Selected[i] {
			t.Fatalf("selection %d: cold picked %d, warm picked %d", i, rc.Selected[i], rw.Selected[i])
		}
	}
}

// TestWarmStartValidation covers the option's error contract.
func TestWarmStartValidation(t *testing.T) {
	p := testProblem(9, 8, 40, 6, 3)
	for name, ws := range map[string][]float64{
		"wrong length": make([]float64, 7),
		"negative":     append(make([]float64, p.N()-1), -1),
		"zero sum":     make([]float64, p.N()),
	} {
		if _, err := RelaxFast(context.Background(), p, 2, RelaxOptions{
			FixedIterations: 1, Probes: 2, WarmStart: ws,
		}); err == nil {
			t.Errorf("%s warm start accepted", name)
		}
	}
}

// TestIncrementalAddLabelMatchesRefactor pins the rank-1 label event:
// after AddLabel, the maintained factors must match a from-scratch
// factorization of the blocks with the labeled point folded in.
func TestIncrementalAddLabelMatchesRefactor(t *testing.T) {
	const d, c, b = 9, 4, 3
	inc, p, z := testIncremental(t, 11, 15, 120, d, c, b)
	cc := p.C() // reduced class count: c−1 Fisher blocks

	x := make([]float64, d)
	h := make([]float64, cc)
	for j := range x {
		x[j] = 0.3 * float64(j+1)
	}
	for k := range h {
		h[k] = 0.08 + 0.03*float64(k)
	}
	inc.AddLabel(x, h)

	sigO := p.SigmaBlocks(z)
	hoO := p.labeledBlocks()
	for k := 0; k < cc; k++ {
		gamma := h[k] * (1 - h[k])
		sig := mat.NewDense(d, d)
		sig.CopyFrom(sigO[k])
		sig.AddOuter(gamma, x)
		ho := mat.NewDense(d, d)
		ho.CopyFrom(hoO[k])
		ho.AddOuter(gamma, x)
		want := oracleFactor(t, sig, ho, p.Ed(), b, inc.Eta())
		if diff := lowerMaxAbsDiff(inc.fact[k].L, want.L); diff > 1e-8 {
			t.Errorf("class %d: maintained factor diverges from refactor by %g", k, diff)
		}
	}
}

// TestIncrementalTombstoneMatchesScratch pins the rank-1 removal event:
// a tombstoned row's factors match a from-scratch build at the zeroed
// weights, and the next delta round selects exactly what a from-scratch
// round with the row excluded selects.
func TestIncrementalTombstoneMatchesScratch(t *testing.T) {
	const d, c, b = 9, 4, 3
	inc, p, z := testIncremental(t, 13, 15, 120, d, c, b)

	const gone = 17
	if err := inc.Tombstone(gone); err != nil {
		t.Fatal(err)
	}
	if err := inc.Tombstone(gone); err != nil { // idempotent
		t.Fatal(err)
	}

	z2 := append([]float64(nil), z...)
	z2[gone] = 0
	sigO := p.SigmaBlocks(z2)
	hoO := p.labeledBlocks()
	for k := 0; k < p.C(); k++ {
		want := oracleFactor(t, sigO[k], hoO[k], p.Ed(), b, inc.Eta())
		if diff := lowerMaxAbsDiff(inc.fact[k].L, want.L); diff > 1e-8 {
			t.Errorf("class %d: maintained factor diverges from refactor by %g", k, diff)
		}
	}

	got, err := inc.Select(context.Background(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RoundFast(p, z2, b, RoundOptions{Eta: inc.Eta(), Exclude: []int{gone}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("delta round picked %v, scratch picked %v", got.Selected, want.Selected)
	}
	for i := range got.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("selection %d: delta picked %d, scratch picked %d", i, got.Selected[i], want.Selected[i])
		}
	}
	for _, s := range got.Selected {
		if s == gone {
			t.Fatalf("tombstoned row %d was selected", gone)
		}
	}
}

// TestIncrementalAppendMatchesScratch is the acceptance property at test
// scale: grow the pool, run the delta round, and demand the selections
// match a from-scratch RELAX-free round at the reprojected weights.
func TestIncrementalAppendMatchesScratch(t *testing.T) {
	const d, c, b = 9, 4, 3
	const nOld, nNew = 120, 150
	// One grown problem; the base pool is its first nOld rows.
	full := testProblem(19, 15, nNew, d, c)
	fullSet := full.Pool.(*hessian.Set)
	base := NewProblem(full.Labeled, hessian.NewSet(
		fullSet.X.RowSlice(0, nOld), fullSet.H.RowSlice(0, nOld)))

	relax, err := RelaxFast(context.Background(), base, b, RelaxOptions{
		FixedIterations: 6, Probes: 4, CGMaxIter: 30, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(base, relax.Z, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.AppendRows(full.Pool); err != nil {
		t.Fatal(err)
	}

	z2 := ReprojectSimplex(relax.Z, nNew)
	var sum float64
	for _, v := range inc.Z() {
		sum += v
	}
	if math.Abs(sum-float64(b)) > 1e-10 {
		t.Fatalf("reprojected z⋄ sums to %g, want %d", sum, b)
	}

	got, err := inc.Select(context.Background(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RoundFast(full, z2, b, RoundOptions{Eta: inc.Eta()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selected) == 0 || len(got.Selected) != len(want.Selected) {
		t.Fatalf("delta round picked %v, scratch picked %v", got.Selected, want.Selected)
	}
	for i := range got.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("selection %d: delta picked %d, scratch picked %d", i, got.Selected[i], want.Selected[i])
		}
	}

	// The round is repeatable: the maintained factors were read, not
	// consumed.
	again, err := inc.Select(context.Background(), SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Selected {
		if got.Selected[i] != again.Selected[i] {
			t.Fatalf("repeat selection %d: %d then %d", i, got.Selected[i], again.Selected[i])
		}
	}
}

// TestIncrementalRefineRound exercises the Refine > 0 path: a
// warm-started RELAX runs, the maintained state is rebuilt at the new
// weights, and the subsequent delta round matches a scratch round there.
func TestIncrementalRefineRound(t *testing.T) {
	const d, c, b = 9, 4, 3
	inc, p, _ := testIncremental(t, 23, 15, 120, d, c, b)

	got, err := inc.Select(context.Background(), SelectOptions{
		Refine: 3,
		Relax:  RelaxOptions{Probes: 4, CGMaxIter: 30, Seed: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Relax == nil || got.Relax.Iterations != 3 {
		t.Fatalf("refine solve reported %+v", got.Relax)
	}
	want, err := RoundFast(p, inc.Z(), b, RoundOptions{Eta: inc.Eta()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("selection %d: refined picked %d, scratch picked %d", i, got.Selected[i], want.Selected[i])
		}
	}
}

// TestReprojectSimplex pins the reprojection arithmetic.
func TestReprojectSimplex(t *testing.T) {
	out := ReprojectSimplex([]float64{0.5, 0.5}, 4)
	for i, v := range out {
		if math.Abs(v-0.25) > 1e-15 {
			t.Fatalf("entry %d = %g, want 0.25", i, v)
		}
	}
	old := []float64{3, 1, 0, 2} // total 6
	out = ReprojectSimplex(old, 6)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-6) > 1e-12 {
		t.Fatalf("reprojection changed total mass: %g", sum)
	}
	if out[4] != 1 || out[5] != 1 { // total/n = 6/6
		t.Fatalf("new rows got %g, %g, want 1", out[4], out[5])
	}
	same := ReprojectSimplex(old, 4)
	same[0] = -1
	if old[0] != 3 {
		t.Fatal("same-size reprojection aliases its input")
	}
}

// TestIncrementalEventsZeroAlloc pins the warm event path: once the
// state is warm, AddLabel and Tombstone — the per-event rank-1 updates —
// allocate nothing, serial and with four workers engaged (the
// alloc-multicore CI job runs exactly this test at GOMAXPROCS=4).
func TestIncrementalEventsZeroAlloc(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const d, c, b = 24, 5, 5
	p := testProblem(41, 20, 500, d, c)
	z := make([]float64, p.N())
	mat.Fill(z, float64(b)/float64(p.N()))
	inc, err := NewIncremental(p, z, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, d)
	h := make([]float64, p.C())
	for j := range x {
		x[j] = 0.1 * float64(j+1)
	}
	for k := range h {
		h[k] = 0.15
	}
	inc.AddLabel(x, h)
	row := 0
	next := func() int { row++; return row - 1 }
	if err := inc.Tombstone(next()); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(50, func() {
		inc.AddLabel(x, h)
	}); allocs != 0 {
		t.Errorf("AddLabel allocates %.1f objects per call warm", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := inc.Tombstone(next()); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Tombstone allocates %.1f objects per call warm", allocs)
	}

	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	if allocs := testing.AllocsPerRun(30, func() {
		inc.AddLabel(x, h)
	}); allocs != 0 {
		t.Errorf("AddLabel allocates %.1f objects per call at 4 workers", allocs)
	}
	if allocs := testing.AllocsPerRun(30, func() {
		if err := inc.Tombstone(next()); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Tombstone allocates %.1f objects per call at 4 workers", allocs)
	}
}
