package firal

import (
	"math"

	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/opt"
	"repro/internal/timing"
)

// RoundOptions configure the ROUND solvers.
type RoundOptions struct {
	// Eta is the FTRL learning rate η (0 → Problem.DefaultEta()).
	Eta float64
	// Naive switches the exact solver to the O((dc)³)-per-candidate
	// reference objective (tests and tiny problems only).
	Naive bool
	// Exclude lists pool indices that must not be selected — points a
	// previous round already picked, or whose labels the caller already
	// holds. They are pre-marked as selected, so the greedy argmax skips
	// them; they still contribute to the RELAX weights and the Fisher
	// state like any other pool point. Out-of-range entries are ignored.
	Exclude []int
}

// RoundResult reports a ROUND solve.
type RoundResult struct {
	// Selected holds the b chosen pool indices in selection order.
	Selected []int
	// Nu holds the FTRL normalization constants ν_t found by bisection.
	Nu []float64
	// Objectives holds the winning objective value of each round.
	Objectives []float64
	// MinEigH is min_k λ_min((H)_k) for the accumulated Hessian sum of
	// the selected points — the η-tuning criterion of § IV-A.
	MinEigH float64
	// Timings attributes wall-clock time to phases ("objective", "eig",
	// "other").
	Timings *timing.Phases
}

// RoundExact runs the exact ROUND step of Algorithm 1 (lines 10–19):
// FTRL regret minimization over dense transformed Hessians
// H̃ = Σ⋄^{-1/2} H Σ⋄^{-1/2}. The per-candidate objective
// Trace[(A_t + (η/b)H̃o + ηH̃_i)⁻¹] is evaluated through the
// Woodbury/push-through identity on the rank-c factorization
// H̃_i = U S_i Uᵀ with U = Σ⋄^{-1/2}(I_c ⊗ x_i), costing O(c³) per
// candidate after an O((dc)³) per-round setup; RoundOptions.Naive selects
// the direct dense inverse per candidate instead.
func RoundExact(p *Problem, z []float64, b int, o RoundOptions) (*RoundResult, error) {
	pool := p.ResidentPool()
	if pool == nil {
		return nil, ErrResidentPool
	}
	if o.Eta <= 0 {
		o.Eta = p.DefaultEta()
	}
	eta := o.Eta
	n, d, c := p.N(), p.D(), p.C()
	ed := p.Ed()
	edF := float64(ed)
	res := &RoundResult{Timings: timing.New()}
	ph := res.Timings

	// Σ⋄ = Ho + Hz⋄ and its ±1/2 powers (Eq. 8).
	stop := ph.Start("other")
	sigma := p.DenseSigma(z)
	sf, err := mat.NewSPDFuncs(sigma, 1e-12)
	if err != nil {
		return nil, err
	}
	isqrt := sf.InvSqrt()
	hoDense := p.Labeled.DenseSum(nil)
	hoTilde := mat.Mul(nil, mat.Mul(nil, isqrt, hoDense), isqrt)
	hoTilde.Symmetrize()

	// A_1 = √ẽd · I (line 12).
	a := mat.Eye(ed)
	a.Scale(math.Sqrt(edF))
	hTilde := mat.NewDense(ed, ed) // accumulated ηH̃ numerator (line 15)
	stop()

	selected := make(map[int]bool, b+len(o.Exclude))
	for _, i := range o.Exclude {
		if i >= 0 && i < n {
			selected[i] = true
		}
	}
	ri := make([]float64, n)
	xm := mat.NewDense(n, d)

	for t := 1; t <= b; t++ {
		stop = ph.Start("objective")
		// K = A_t + (η/b) H̃o, shared by all candidates this round.
		k := a.Clone()
		k.AddScaled(eta/float64(b), hoTilde)
		k.Symmetrize()
		kinv, err := mat.InvSPD(k)
		if err != nil {
			return nil, err
		}
		if o.Naive {
			roundExactNaiveObjective(p, k, isqrt, eta, ri)
		} else {
			trK := kinv.Trace()
			kinv2 := mat.Mul(nil, kinv, kinv)
			// M1 = Σ^{-1/2} K⁻¹ Σ^{-1/2}, M2 = Σ^{-1/2} K⁻² Σ^{-1/2}:
			// G_i[k,l] = x_iᵀ M1^{(k,l)} x_i, P_i[k,l] = x_iᵀ M2^{(k,l)} x_i.
			m1 := mat.Mul(nil, mat.Mul(nil, isqrt, kinv), isqrt)
			m2 := mat.Mul(nil, mat.Mul(nil, isqrt, kinv2), isqrt)
			gAll := make([][]float64, c*c)
			pAll := make([][]float64, c*c)
			for kk := 0; kk < c; kk++ {
				for ll := kk; ll < c; ll++ {
					blk := mat.Block(m1, kk, ll, d)
					mat.Mul(xm, pool.X, blk)
					buf := make([]float64, n)
					mat.RowDots(buf, pool.X, xm)
					gAll[kk*c+ll] = buf
					gAll[ll*c+kk] = buf
					blk2 := mat.Block(m2, kk, ll, d)
					mat.Mul(xm, pool.X, blk2)
					buf2 := make([]float64, n)
					mat.RowDots(buf2, pool.X, xm)
					pAll[kk*c+ll] = buf2
					pAll[ll*c+kk] = buf2
				}
			}
			// Per candidate: r_i = Tr K⁻¹ − η·Tr[(I + ηS_iG_i)⁻¹ S_i P_i].
			gi := mat.NewDense(c, c)
			pi := mat.NewDense(c, c)
			si := mat.NewDense(c, c)
			for i := 0; i < n; i++ {
				hi := pool.H.Row(i)
				for kk := 0; kk < c; kk++ {
					for ll := 0; ll < c; ll++ {
						gi.Set(kk, ll, gAll[kk*c+ll][i])
						pi.Set(kk, ll, pAll[kk*c+ll][i])
						v := -hi[kk] * hi[ll]
						if kk == ll {
							v += hi[kk]
						}
						si.Set(kk, ll, v)
					}
				}
				sg := mat.Mul(nil, si, gi)
				sg.Scale(eta)
				sg.AddDiag(1) // E = I + ηS G
				sp := mat.Mul(nil, si, pi)
				lu, err := mat.NewLU(sg)
				if err != nil {
					ri[i] = math.Inf(1)
					continue
				}
				sol := lu.Solve(nil, sp)
				ri[i] = trK - eta*sol.Trace()
			}
		}
		stop()

		// Select the minimizer among unselected candidates (line 14).
		stop = ph.Start("other")
		best, bestV := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			if ri[i] < bestV {
				best, bestV = i, ri[i]
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		res.Selected = append(res.Selected, best)
		res.Objectives = append(res.Objectives, bestV)

		// Line 15: H̃ ← H̃ + (1/b)H̃o + H̃_it.
		hit := hessian.DensePoint(pool.X.Row(best), pool.H.Row(best))
		hitT := mat.Mul(nil, mat.Mul(nil, isqrt, hit), isqrt)
		hTilde.AddScaled(1/float64(b), hoTilde)
		hTilde.AddScaled(1, hitT)
		hTilde.Symmetrize()
		stop()

		// Lines 16–18: eigenvalues of ηH̃, bisection for ν_{t+1}, and
		// A_{t+1} = ν_{t+1}I + ηH̃.
		stop = ph.Start("eig")
		scaled := hTilde.Clone()
		scaled.Scale(eta)
		lam, err := mat.SymEigvals(scaled)
		if err != nil {
			return nil, err
		}
		stop()
		stop = ph.Start("other")
		nu, err := solveNu(lam, edF)
		if err != nil {
			return nil, err
		}
		res.Nu = append(res.Nu, nu)
		a.CopyFrom(scaled)
		a.AddDiag(nu)
		stop()
	}

	res.MinEigH = minEigSelectedBlocks(p, res.Selected, float64(b))
	return res, nil
}

// roundExactNaiveObjective evaluates r_i = Trace[(K + ηH̃_i)⁻¹] by a dense
// inverse per candidate — the literal line 14 of Algorithm 1, used as the
// ground truth in tests.
func roundExactNaiveObjective(p *Problem, k, isqrt *mat.Dense, eta float64, ri []float64) {
	pool := p.ResidentPool()
	for i := 0; i < p.N(); i++ {
		hit := hessian.DensePoint(pool.X.Row(i), pool.H.Row(i))
		hitT := mat.Mul(nil, mat.Mul(nil, isqrt, hit), isqrt)
		m := k.Clone()
		m.AddScaled(eta, hitT)
		m.Symmetrize()
		inv, err := mat.InvSPD(m)
		if err != nil {
			ri[i] = math.Inf(1)
			continue
		}
		ri[i] = inv.Trace()
	}
}

// solveNu finds ν with Σ_j (ν + λ_j)⁻² = 1 by bisection on the provable
// bracket ν ∈ [−λ_min + ẽd^{-1/2}, −λ_min + ẽd^{1/2}] (DESIGN.md § 5).
// The bisection is inlined (mirroring opt.Bisect) rather than passing a
// closure: solveNu runs once per ROUND candidate inside the 0-allocs/op
// steady-state loop, and a closure over lam would heap-allocate there.
func solveNu(lam []float64, edF float64) (float64, error) {
	lmin := lam[0]
	for _, l := range lam {
		if l < lmin {
			lmin = l
		}
	}
	lo := -lmin + 1/math.Sqrt(edF)
	hi := -lmin + math.Sqrt(edF)
	tol := 1e-12 * (1 + math.Abs(hi))
	flo, fhi := nuResidual(lam, lo), nuResidual(lam, hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, opt.ErrNoBracket
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := 0.5 * (lo + hi)
		fm := nuResidual(lam, mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// nuResidual evaluates Σ_j (ν + λ_j)⁻² − 1, the FTRL normalization
// residual of Algorithm 3 line 10.
func nuResidual(lam []float64, nu float64) float64 {
	var s float64
	for _, l := range lam {
		d := nu + l
		s += 1 / (d * d)
	}
	return s - 1
}

// minEigSelectedBlocks computes min_k λ_min((H)_k) where H = Ho + Σ_t H_it
// restricted to its diagonal blocks — the η-selection criterion (§ IV-A).
func minEigSelectedBlocks(p *Problem, selected []int, b float64) float64 {
	if len(selected) == 0 {
		return 0
	}
	pool := p.ResidentPool()
	blocks := p.Labeled.BlockDiagSum(nil)
	for _, i := range selected {
		hessian.AddBlockDiagPoint(blocks, pool.X.Row(i), pool.H.Row(i), 1)
	}
	minEig := math.Inf(1)
	for _, blk := range blocks {
		vals, err := mat.SymEigvals(blk)
		if err != nil || len(vals) == 0 {
			return math.Inf(-1)
		}
		if vals[0] < minEig {
			minEig = vals[0]
		}
	}
	return minEig
}
