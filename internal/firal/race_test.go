package firal

import (
	"context"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// TestConcurrentSelectSessions drives several full Approx-FIRAL
// selections at once, each holding its own parallelism Limit on the
// shared worker pool. Run with -race this exercises the pool's dispatch
// protocol, the pooled kernel tasks, and the per-session limit registry
// under real kernel load; without -race it still checks that concurrent
// sessions produce the same selections as a serial run. (Pool resizing
// under dispatch load is covered by TestPoolStress in internal/parallel;
// here the worker target stays fixed so the kernel reductions remain
// comparable to the serial baselines.)
func TestConcurrentSelectSessions(t *testing.T) {
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)

	// Serial baselines, computed under the same worker limit every
	// session will hold (limits compose by min, so a uniform limit keeps
	// the effective worker count — and with it the grouping of the
	// deterministic kernel reductions — identical between the serial and
	// concurrent runs).
	const sessions = 4
	const sessionLimit = 2
	want := make([][]int, sessions)
	for g := 0; g < sessions; g++ {
		lim := parallel.AcquireLimit(sessionLimit)
		p := testProblem(int64(100+g), 10, 300, 16, 5)
		res, err := SelectApprox(context.Background(), p, 3, Options{
			Relax: RelaxOptions{FixedIterations: 2, Seed: int64(g)},
		})
		lim.Release()
		if err != nil {
			t.Fatal(err)
		}
		want[g] = res.Selected
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	got := make([][]int, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lim := parallel.AcquireLimit(sessionLimit)
			defer lim.Release()
			// Each session owns its Problem and workspace; only the worker
			// pool and the limit registry are shared.
			p := testProblem(int64(100+g), 10, 300, 16, 5)
			res, err := SelectApprox(context.Background(), p, 3, Options{
				Relax: RelaxOptions{FixedIterations: 2, Seed: int64(g)},
			})
			if err != nil {
				errs[g] = err
				return
			}
			got[g] = res.Selected
		}(g)
	}
	wg.Wait()
	for g := 0; g < sessions; g++ {
		if errs[g] != nil {
			t.Fatalf("session %d: %v", g, errs[g])
		}
		if len(got[g]) != len(want[g]) {
			t.Fatalf("session %d: selected %v, serial run selected %v", g, got[g], want[g])
		}
		for i := range got[g] {
			if got[g][i] != want[g][i] {
				t.Fatalf("session %d: selected %v, serial run selected %v", g, got[g], want[g])
			}
		}
	}
}
