package firal

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/timing"
)

// packPoolShard writes the problem's pool features to a float32 shard —
// the production out-of-core representation the prefetcher exists to
// accelerate — and opens it.
func packPoolShard(t *testing.T, p *Problem) *dataset.ShardSource {
	t.Helper()
	pool := p.ResidentPool()
	path := filepath.Join(t.TempDir(), "pool.shard")
	w, err := dataset.CreateShard(path, pool.D())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock(pool.X); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestSelectApproxPrefetchBitIdentical is the end-to-end transparency
// property: over the same shard-backed pool, the full Approx-FIRAL
// selection (RELAX mirror descent + block CG, then ROUND) with block
// read-ahead picks the identical batch — and RELAX lands on bit-for-bit
// identical simplex weights — as the synchronous decode path. This is
// the guarantee that lets prefetch default on everywhere: it changes
// when blocks are decoded, never what is computed from them.
func TestSelectApproxPrefetchBitIdentical(t *testing.T) {
	p := testProblem(43, 10, 500, 8, 3)
	pool := p.ResidentPool()
	const bs = 64 // 500/64: ragged blocks

	syncSrc := packPoolShard(t, p)
	defer syncSrc.Close()
	preSrc := packPoolShard(t, p)
	pre := dataset.NewPrefetchSource(context.Background(), preSrc, bs)
	defer pre.Close()

	opts := Options{Relax: RelaxOptions{FixedIterations: 3, Probes: 6, CGTol: 0.1, Seed: 9}}
	want, err := SelectApprox(context.Background(), NewProblem(p.Labeled, hessian.NewStream(syncSrc, pool.H, bs)), 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectApprox(context.Background(), NewProblem(p.Labeled, hessian.NewStream(pre, pool.H, bs)), 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("prefetched selection picked %d points, sync %d", len(got.Selected), len(want.Selected))
	}
	for i := range want.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("selection %d: prefetched %d, sync %d", i, got.Selected[i], want.Selected[i])
		}
	}
	if got.Relax.Iterations != want.Relax.Iterations || got.Relax.CGIterations != want.Relax.CGIterations {
		t.Fatalf("prefetched solve ran %d/%d iterations, sync %d/%d",
			got.Relax.Iterations, got.Relax.CGIterations, want.Relax.Iterations, want.Relax.CGIterations)
	}
	for i := range want.Relax.Z {
		if math.Float64bits(got.Relax.Z[i]) != math.Float64bits(want.Relax.Z[i]) {
			t.Fatalf("z[%d]: prefetched %x, sync %x — RELAX weights must be bit-identical",
				i, math.Float64bits(got.Relax.Z[i]), math.Float64bits(want.Relax.Z[i]))
		}
	}
}

// TestRelaxPrefetchDecodeSweepsUnchanged pins the cost side of the
// transparency claim with a CountingSource BELOW the prefetcher (every
// asynchronous read still lands on the counted ReadRows): block
// read-ahead reorders decode timing but performs exactly the decode
// traffic of the synchronous path — same ReadRows calls, same rows, no
// discarded speculation — because the forward-sweep prediction never
// reads a window the consumer doesn't then use.
func TestRelaxPrefetchDecodeSweepsUnchanged(t *testing.T) {
	p := testProblem(47, 12, 500, 8, 4)
	pool := p.ResidentPool()
	const bs = 64
	opts := RelaxOptions{FixedIterations: 3, Probes: 8, Seed: 5}

	syncCount := dataset.NewCountingSource(dataset.NewMatrixSource(pool.X))
	if _, err := RelaxFast(context.Background(), NewProblem(p.Labeled, hessian.NewStream(syncCount, pool.H, bs)), 6, opts); err != nil {
		t.Fatal(err)
	}

	preCount := dataset.NewCountingSource(dataset.NewMatrixSource(pool.X))
	pre := dataset.NewPrefetchSource(context.Background(), preCount, bs)
	defer pre.Close()
	if _, err := RelaxFast(context.Background(), NewProblem(p.Labeled, hessian.NewStream(pre, pool.H, bs)), 6, opts); err != nil {
		t.Fatal(err)
	}

	if preCount.RowsRead() != syncCount.RowsRead() || preCount.Reads() != syncCount.Reads() {
		t.Fatalf("prefetched RELAX decoded %d rows in %d reads; sync %d rows in %d reads — read-ahead must not add decode traffic",
			preCount.RowsRead(), preCount.Reads(), syncCount.RowsRead(), syncCount.Reads())
	}
	if syncCount.RowsRead()%int64(p.N()) != 0 {
		t.Fatalf("pool read %d rows, not a whole number of %d-row sweeps", syncCount.RowsRead(), p.N())
	}
	t.Logf("both paths: %.0f sweeps in %d reads", preCount.Sweeps(), preCount.Reads())
}

// TestScoresPrefetchBitIdentical pins the ROUND rescoring pass: scores
// through a prefetched stream match the synchronous stream bit for bit
// (same block partition, same arithmetic, only decode timing differs).
func TestScoresPrefetchBitIdentical(t *testing.T) {
	p := testProblem(41, 12, 397, 9, 4)
	pool := p.ResidentPool()
	z := make([]float64, p.N())
	mat.Fill(z, 5/float64(p.N()))
	st, err := testRoundState(p, z, 5, p.DefaultEta(), timing.New())
	if err != nil {
		t.Fatal(err)
	}
	const bs = 48
	sync := hessian.NewStream(dataset.NewCountingSource(dataset.NewMatrixSource(pool.X)), pool.H, bs)
	want := make([]float64, p.N())
	st.Scores(sync, want)

	pre := dataset.NewPrefetchSource(context.Background(),
		dataset.NewCountingSource(dataset.NewMatrixSource(pool.X)), bs)
	defer pre.Close()
	got := make([]float64, p.N())
	st.Scores(hessian.NewStream(pre, pool.H, bs), got)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("score %d = %x prefetched, %x sync", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}
