package firal

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/timing"
)

// TestIterativeNuMatchesExact: with a full-dimension Lanczos subspace the
// SLQ quadrature is exact, so the iterative ν must match the eigensolve ν
// closely; with a reduced subspace it must still land within a few
// percent (the extreme eigenvalues dominate the FTRL equation).
func TestIterativeNuMatchesExact(t *testing.T) {
	p := testProblem(60, 8, 20, 6, 4)
	z := uniformSimplex(p.N())
	mat.Scal(4, z)
	eta := 5.0

	mkState := func() *RoundState {
		st, err := testRoundState(p, z, 4, eta, timing.New())
		if err != nil {
			t.Fatal(err)
		}
		st.AddPoint(p.ResidentPool().X.Row(0), p.ResidentPool().H.Row(0))
		st.AddPoint(p.ResidentPool().X.Row(1), p.ResidentPool().H.Row(1))
		return st
	}

	// Exact reference.
	stExact := mkState()
	lam, err := stExact.Eigvals(0, stExact.c)
	if err != nil {
		t.Fatal(err)
	}
	nuExact, err := stExact.FinishUpdate(lam, timing.New())
	if err != nil {
		t.Fatal(err)
	}

	// Full-subspace SLQ (Steps = d): quadrature nodes are the exact
	// spectrum, so ν should agree tightly even with few probes.
	stFull := mkState()
	nuFull, err := stFull.FinishUpdateIterative(IterativeNuOptions{Probes: 8, Steps: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(nuFull-nuExact) / (1 + math.Abs(nuExact)); rel > 0.05 {
		t.Fatalf("full-subspace iterative ν %g vs exact %g (rel %g)", nuFull, nuExact, rel)
	}

	// Reduced subspace: still close.
	stRed := mkState()
	nuRed, err := stRed.FinishUpdateIterative(IterativeNuOptions{Probes: 12, Steps: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(nuRed-nuExact) / (1 + math.Abs(nuExact)); rel > 0.15 {
		t.Fatalf("reduced-subspace iterative ν %g vs exact %g (rel %g)", nuRed, nuExact, rel)
	}
}

// TestIterativeQuadratureWeightSum: SLQ weights must sum to ≈ c·d (the
// quadrature preserves Trace(I) per block).
func TestIterativeQuadratureWeightSum(t *testing.T) {
	p := testProblem(61, 8, 16, 5, 3)
	z := uniformSimplex(p.N())
	mat.Scal(3, z)
	st, err := testRoundState(p, z, 3, 4, timing.New())
	if err != nil {
		t.Fatal(err)
	}
	st.AddPoint(p.ResidentPool().X.Row(2), p.ResidentPool().H.Row(2))
	_, weights, err := st.EigQuadrature(0, st.c, IterativeNuOptions{Probes: 4, Steps: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	want := float64(st.c * st.d)
	if math.Abs(sum-want) > 1e-6*want {
		t.Fatalf("weight sum %g want %g", sum, want)
	}
}

// TestSolveNuQuadratureDegenerate: empty or non-positive quadratures are
// rejected, not mis-solved.
func TestSolveNuQuadratureDegenerate(t *testing.T) {
	p := testProblem(62, 6, 10, 4, 3)
	z := uniformSimplex(p.N())
	mat.Scal(2, z)
	st, err := testRoundState(p, z, 2, 3, timing.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SolveNuQuadrature(nil, nil); err == nil {
		t.Fatal("empty quadrature accepted")
	}
	if _, err := st.SolveNuQuadrature([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("non-positive weights accepted")
	}
	// A valid single-node quadrature: w(ν+ηθ)⁻² = 1 → ν = √w − ηθ.
	nu, err := st.SolveNuQuadrature([]float64{2}, []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 - st.eta*2
	if math.Abs(nu-want) > 1e-8 {
		t.Fatalf("single-node ν %g want %g", nu, want)
	}
}
