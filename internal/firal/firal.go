package firal

import (
	"context"
	"math"
)

// Options configure a full FIRAL selection (RELAX + ROUND).
type Options struct {
	// Relax configures the RELAX solver.
	Relax RelaxOptions
	// Eta is the ROUND learning rate; 0 means DefaultEta (Theorem 1 with
	// ε = 1) unless EtaGrid is set.
	Eta float64
	// EtaGrid, when non-empty, tunes η as in § IV-A: the ROUND step is run
	// once per candidate η and the one maximizing min_k λ_min((H)_k) of
	// the selected batch wins.
	EtaGrid []float64
	// NaiveRound switches Exact-FIRAL to the literal per-candidate dense
	// inverse (reference implementation; tiny problems only).
	NaiveRound bool
	// Exclude lists pool indices the ROUND step must not select (see
	// RoundOptions.Exclude) — the tombstone set of a multi-round session
	// whose earlier selections are still part of the pool.
	Exclude []int
}

// Result is a full FIRAL selection.
type Result struct {
	// Selected are the b chosen pool indices.
	Selected []int
	// Eta is the learning rate actually used by the ROUND step.
	Eta float64
	// Relax and Round carry the per-step reports.
	Relax *RelaxResult
	Round *RoundResult
}

// SelectApprox runs Approx-FIRAL (Algorithm 2 + Algorithm 3) to pick b
// pool points. Cancelling the context aborts mid-RELAX or between ROUND
// candidates with ctx.Err().
func SelectApprox(ctx context.Context, p *Problem, b int, o Options) (*Result, error) {
	relax, err := RelaxFast(ctx, p, b, o.Relax)
	if err != nil {
		return nil, err
	}
	return roundWithTuning(ctx, p, relax, b, o, RoundFast)
}

// SelectExact runs Exact-FIRAL (Algorithm 1) to pick b pool points.
func SelectExact(ctx context.Context, p *Problem, b int, o Options) (*Result, error) {
	relax, err := RelaxExact(ctx, p, b, o.Relax)
	if err != nil {
		return nil, err
	}
	runner := func(p *Problem, z []float64, b int, ro RoundOptions) (*RoundResult, error) {
		ro.Naive = o.NaiveRound
		return RoundExact(p, z, b, ro)
	}
	return roundWithTuning(ctx, p, relax, b, o, runner)
}

type roundRunner func(p *Problem, z []float64, b int, o RoundOptions) (*RoundResult, error)

// roundWithTuning runs the ROUND step, optionally sweeping EtaGrid and
// keeping the η that maximizes min_k λ_min((H)_k) (§ IV-A). The context
// is checked before each candidate η.
func roundWithTuning(ctx context.Context, p *Problem, relax *RelaxResult, b int, o Options, run roundRunner) (*Result, error) {
	etas := o.EtaGrid
	if len(etas) == 0 {
		eta := o.Eta
		if eta <= 0 {
			eta = p.DefaultEta()
		}
		etas = []float64{eta}
	}
	var best *RoundResult
	bestEta := 0.0
	bestCrit := math.Inf(-1)
	for _, eta := range etas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		round, err := run(p, relax.Z, b, RoundOptions{Eta: eta, Exclude: o.Exclude})
		if err != nil {
			return nil, err
		}
		if round.MinEigH > bestCrit {
			best, bestEta, bestCrit = round, eta, round.MinEigH
		}
	}
	return &Result{
		Selected: best.Selected,
		Eta:      bestEta,
		Relax:    relax,
		Round:    best,
	}, nil
}
