package firal

import (
	"context"
	"math"
	"testing"

	"repro/internal/hessian"
	"repro/internal/mat"
)

// TestExactGradientFiniteDifference validates the exact RELAX gradient
// g_i = ∂f/∂z_i = −Trace(H_i Σz⁻¹ Hp Σz⁻¹) against central differences of
// f(z) = Trace(Σz⁻¹ Hp).
func TestExactGradientFiniteDifference(t *testing.T) {
	p := testProblem(30, 5, 8, 3, 3)
	n := p.N()
	z := uniformSimplex(n)

	// Analytic gradient (the inner loop of RelaxExact, recomputed here
	// explicitly from the dense operators).
	hp := p.ResidentPool().DenseSum(nil)
	sigma := p.DenseSigma(z)
	sigInv, err := mat.InvSPD(sigma)
	if err != nil {
		t.Fatal(err)
	}
	m := mat.Mul(nil, mat.Mul(nil, sigInv, hp), sigInv)
	grad := make([]float64, n)
	for i := 0; i < n; i++ {
		hi := hessian.DensePoint(p.ResidentPool().X.Row(i), p.ResidentPool().H.Row(i))
		grad[i] = -mat.FrobDot(hi, m)
	}

	f := func(z []float64) float64 {
		s := p.DenseSigma(z)
		inv, err := mat.InvSPD(s)
		if err != nil {
			t.Fatal(err)
		}
		return mat.Mul(nil, inv, hp).Trace()
	}
	const h = 1e-6
	for i := 0; i < n; i += 3 { // subsample for speed
		zp := append([]float64(nil), z...)
		zp[i] += h
		zm := append([]float64(nil), z...)
		zm[i] -= h
		num := (f(zp) - f(zm)) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("grad[%d] = %g, numerical %g", i, grad[i], num)
		}
	}
}

// TestRelaxFastHandlesConfidentModel: when the classifier is extremely
// confident, the Fisher curvature weights h(1−h) vanish and Σ blocks are
// nearly singular; the ridge guards must keep the solver running.
func TestRelaxFastHandlesConfidentModel(t *testing.T) {
	p := testProblem(40, 8, 20, 3, 3)
	// Push probabilities to near-one-hot.
	for _, set := range []*hessian.Set{p.Labeled, p.ResidentPool()} {
		for i := 0; i < set.N(); i++ {
			row := set.H.Row(i)
			for k := range row {
				if row[k] > 0.5 {
					row[k] = 1 - 1e-9
				} else {
					row[k] = 1e-9 / float64(len(row))
				}
			}
		}
	}
	res, err := RelaxFast(context.Background(), p, 5, RelaxOptions{MaxIter: 5, Seed: 1})
	if err != nil {
		t.Fatalf("solver failed on near-singular problem: %v", err)
	}
	for _, v := range res.Z {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("invalid weight %g", v)
		}
	}
}

// TestRoundFastHandlesDegeneratePool: all pool points identical — scores
// tie, selection must still return b distinct indices.
func TestRoundFastHandlesDegeneratePool(t *testing.T) {
	base := testProblem(41, 6, 1, 3, 3)
	x := mat.NewDense(8, 3)
	h := mat.NewDense(8, 2)
	for i := 0; i < 8; i++ {
		copy(x.Row(i), base.ResidentPool().X.Row(0))
		copy(h.Row(i), base.ResidentPool().H.Row(0))
	}
	p := NewProblem(base.Labeled, hessian.NewSet(x, h))
	z := uniformSimplex(8)
	mat.Scal(4, z)
	res, err := RoundFast(p, z, 4, RoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 4 {
		t.Fatalf("selected %d of identical points", len(res.Selected))
	}
	seen := map[int]bool{}
	for _, i := range res.Selected {
		if seen[i] {
			t.Fatal("duplicate under ties")
		}
		seen[i] = true
	}
}

// TestLowRankFeatures: pool features confined to a 1-D subspace make Σ
// rank-deficient in feature space; the ridge path must still produce a
// selection.
func TestLowRankFeatures(t *testing.T) {
	d, c := 4, 3
	n := 12
	x := mat.NewDense(n, d)
	h := mat.NewDense(n, c-1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i+1)) // only dimension 0 populated
		h.Set(i, 0, 0.4)
		h.Set(i, 1, 0.3)
	}
	xo := mat.NewDense(3, d)
	hO := mat.NewDense(3, c-1)
	for i := 0; i < 3; i++ {
		xo.Set(i, 0, 1)
		hO.Set(i, 0, 0.5)
		hO.Set(i, 1, 0.2)
	}
	p := NewProblem(hessian.NewSet(xo, hO), hessian.NewSet(x, h))
	res, err := SelectApprox(context.Background(), p, 3, Options{Relax: RelaxOptions{MaxIter: 3, Seed: 2, CGMaxIter: 30}})
	if err != nil {
		t.Fatalf("rank-deficient selection failed: %v", err)
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %d", len(res.Selected))
	}
}

// TestStochasticConvergedBehaviour pins the windowed stopping rule.
func TestStochasticConvergedBehaviour(t *testing.T) {
	// Too short: never converged.
	if StochasticConverged([]float64{1, 1, 1}, 1e-4) {
		t.Fatal("converged with < 2 windows")
	}
	// Flat series: converged.
	flat := make([]float64, 12)
	for i := range flat {
		flat[i] = 5
	}
	if !StochasticConverged(flat, 1e-4) {
		t.Fatal("flat series should converge")
	}
	// Steep descent with tiny noise: not converged.
	desc := make([]float64, 12)
	for i := range desc {
		desc[i] = 100 - 10*float64(i) + 0.001*float64(i%2)
	}
	if StochasticConverged(desc, 1e-4) {
		t.Fatal("steep descent should not converge")
	}
	// Plateau within noise (both comparison windows flat): converged via
	// the noise-floor criterion.
	noisy := []float64{50, 30, 20, 15, 12,
		10.2, 9.8, 10.1, 9.9, 10.0, // first window on the plateau
		10.05, 9.95, 10.02, 9.98, 10.01} // second window
	if !StochasticConverged(noisy, 1e-4) {
		t.Fatal("noise-level plateau should converge")
	}
}

func TestDefaultEta(t *testing.T) {
	p := testProblem(50, 6, 10, 4, 3)
	want := 8 * math.Sqrt(float64(4*2)) // d=4, c−1=2 blocks
	if math.Abs(p.DefaultEta()-want) > 1e-12 {
		t.Fatalf("DefaultEta %g want %g", p.DefaultEta(), want)
	}
}
