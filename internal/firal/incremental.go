package firal

import (
	"context"
	"fmt"
	"math"

	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/timing"
)

// Incremental carries a selection session's Fisher state between rounds
// so that round t+1 costs what changed, not what exists. After a full
// RELAX+ROUND selection over a pool of n points, the converged weights
// define Σ⋄ = Hz + Ho and the c per-class B₁ = √ẽd·(Σ⋄)_k + (η/b)·(Ho)_k
// factors that seed the next ROUND. A from-scratch round rebuilds all of
// it with an O(n·c·d²) pool sweep; an Incremental instead maintains the
// blocks and the Cholesky factors across three kinds of pool delta:
//
//   - AddLabel: a labeled point arrives. (Ho)_k and (Σ⋄)_k gain
//     γ_k·x·xᵀ and each factor takes one O(d²) rank-1 update.
//   - Tombstone: a pool point leaves. Its z-mass is removed from
//     (Σ⋄)_k by one O(d²) rank-1 downdate per class, with an automatic
//     refactor from the maintained blocks if the downdate would make a
//     factor indefinite (mat.ErrDowndateBreakdown).
//   - AppendRows: Δn rows arrive. The previous weights are reprojected
//     onto the grown simplex (see ReprojectSimplex), the pool Gram is
//     rescaled in place, and only the appended window is swept
//     (hessian.BlockDiagAccumRange) — O(Δn·c·d²), then an O(c·d³)
//     refactor. No full-pool pass.
//
// Select then starts ROUND directly from the maintained factors
// (Refine == 0) or runs a warm-started RELAX first (Refine > 0). The
// delta path's selections match the from-scratch path at the same
// weights: both evaluate the same Eq. 17 scores up to the O(1e-13)
// summation-order noise of the rescaled Gram, far below the argmax
// score gaps.
//
// An Incremental is owned by one goroutine.
type Incremental struct {
	p   *Problem
	b   int
	eta float64

	z    []float64      // z⋄ over current pool rows; Σz ≤ b (tombstones remove mass)
	dead []bool         // tombstoned rows, excluded from every Select
	sig  []*mat.Dense   // maintained (Σ⋄)_k = pool Gram at z + (Ho)_k
	ho   []*mat.Dense   // maintained (Ho)_k (own copies; AddLabel mutates them)
	fact []mat.Cholesky // maintained B₁ factors, kept current by rank-1 events

	ws     *mat.Workspace
	tmp    *mat.Dense
	rowBuf []float64
	st     *RoundState // recycled across Selects

	// Select scratch, resized when the pool grows.
	scores   []float64
	selected []bool
}

// NewIncremental captures the session state after a converged selection:
// zstar are the RELAX weights z⋄ over p's pool (summing to b, as
// RelaxResult.Z reports them). The Σ⋄ blocks are assembled once here —
// the last full-pool sweep the session needs — and the labeled blocks
// are deep-copied so label arrivals never mutate p's cache. eta ≤ 0
// selects p.DefaultEta().
func NewIncremental(p *Problem, zstar []float64, b int, eta float64) (*Incremental, error) {
	if len(zstar) != p.N() {
		return nil, fmt.Errorf("firal: incremental state needs %d weights, got %d", p.N(), len(zstar))
	}
	if b <= 0 {
		return nil, fmt.Errorf("firal: incremental state needs a positive batch size, got %d", b)
	}
	if eta <= 0 {
		eta = p.DefaultEta()
	}
	inc := &Incremental{
		p:   p,
		b:   b,
		eta: eta,
		z:   append([]float64(nil), zstar...),
		ws:  mat.NewWorkspace(),
	}
	d, c := p.D(), p.C()
	inc.dead = make([]bool, p.N())
	inc.tmp = mat.NewDense(d, d)
	inc.rowBuf = make([]float64, d)
	inc.sig = p.SigmaBlocksInto(inc.ws, nil, inc.z)
	lab := p.labeledBlocks()
	inc.ho = make([]*mat.Dense, c)
	for k := 0; k < c; k++ {
		inc.ho[k] = mat.NewDense(d, d)
		inc.ho[k].CopyFrom(lab[k])
	}
	inc.fact = make([]mat.Cholesky, c)
	if err := inc.refactor(0, c); err != nil {
		return nil, err
	}
	return inc, nil
}

// refactor rebuilds the B₁ factors for classes [kLo, kHi) from the
// maintained blocks — the fallback when a downdate breaks down and the
// bulk path after AppendRows rescales the Gram.
func (inc *Incremental) refactor(kLo, kHi int) error {
	sqrtEd := math.Sqrt(float64(inc.p.Ed()))
	for k := kLo; k < kHi; k++ {
		inc.tmp.CopyFrom(inc.sig[k])
		inc.tmp.Scale(sqrtEd)
		inc.tmp.AddScaled(inc.eta/float64(inc.b), inc.ho[k])
		if _, err := inc.fact[k].FactorRidge(inc.tmp, choleskyRidge); err != nil {
			return err
		}
	}
	return nil
}

// Problem returns the current selection problem (its pool is replaced by
// AppendRows). Callers that run Refine > 0 after label arrivals should
// keep the problem's labeled set current themselves — AddLabel maintains
// the block-diagonal ROUND state, not the exact labeled matvec RELAX
// uses.
func (inc *Incremental) Problem() *Problem { return inc.p }

// Z returns the maintained weights z⋄ (live; do not mutate).
func (inc *Incremental) Z() []float64 { return inc.z }

// Eta returns the ROUND learning rate the state was built with.
func (inc *Incremental) Eta() float64 { return inc.eta }

// AddLabel folds a newly labeled point (features x, reduced
// probabilities h) into the maintained state: per class,
// (Ho)_k += γ_k·x·xᵀ, (Σ⋄)_k += γ_k·x·xᵀ, and the B₁ factor takes one
// rank-1 update with weight γ_k·(√ẽd + η/b) — the exact delta of
// √ẽd·(Σ⋄)_k + (η/b)·(Ho)_k. O(c·d²) total, allocation-free warm.
func (inc *Incremental) AddLabel(x, h []float64) {
	coef := math.Sqrt(float64(inc.p.Ed())) + inc.eta/float64(inc.b)
	for k := range inc.ho {
		gamma := h[k] * (1 - h[k])
		if gamma == 0 {
			continue
		}
		inc.ho[k].AddOuter(gamma, x)
		inc.sig[k].AddOuter(gamma, x)
		inc.fact[k].UpdateRank1(inc.ws, x, gamma*coef)
	}
}

// Tombstone removes pool row i from the session: its z-mass leaves
// (Σ⋄)_k by one rank-1 downdate per class and the row is excluded from
// every future Select. A downdate that would make a factor indefinite
// (accumulated roundoff on a nearly-exhausted direction) falls back to
// refactoring that class from the maintained blocks, which are updated
// first and stay exact. O(c·d²) on the downdate path.
func (inc *Incremental) Tombstone(i int) error {
	if i < 0 || i >= len(inc.z) {
		return fmt.Errorf("firal: tombstone index %d out of range [0, %d)", i, len(inc.z))
	}
	if inc.dead[i] {
		return nil
	}
	inc.dead[i] = true
	zi := inc.z[i]
	inc.z[i] = 0
	if zi == 0 {
		return nil
	}
	x := inc.p.Pool.Row(i, inc.rowBuf)
	h := inc.p.Pool.Probs().Row(i)
	sqrtEd := math.Sqrt(float64(inc.p.Ed()))
	for k := range inc.sig {
		gamma := h[k] * (1 - h[k])
		if zi*gamma == 0 {
			continue
		}
		inc.sig[k].AddOuter(-zi*gamma, x)
		if err := inc.fact[k].DowndateRank1(inc.ws, x, sqrtEd*zi*gamma); err != nil {
			if err := inc.refactor(k, k+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendRows absorbs a grown pool: pool must serve the current rows at
// their current indices followed by the appended rows (the LiveSource
// contract). The maintained weights are reprojected onto the grown
// simplex, the pool part of (Σ⋄)_k is rescaled in place, and only the
// appended window [nOld, nNew) is swept — the delta-only Fisher pass.
// The B₁ factors are then refactored (the reprojection rescales every
// direction at once, which no bounded sequence of rank-1 updates
// expresses).
func (inc *Incremental) AppendRows(pool hessian.Pool) error {
	nOld := len(inc.z)
	nNew := pool.N()
	if pool.D() != inc.p.D() || pool.C() != inc.p.C() {
		return fmt.Errorf("firal: appended pool is %d-dim %d-class, want %d-dim %d-class",
			pool.D(), pool.C(), inc.p.D(), inc.p.C())
	}
	if nNew < nOld {
		return fmt.Errorf("firal: appended pool has %d rows, fewer than the current %d", nNew, nOld)
	}
	if nNew == nOld {
		inc.p = NewProblem(inc.p.Labeled, pool)
		return nil
	}
	alpha := float64(nNew-nOld) / float64(nNew)
	inc.z = ReprojectSimplex(inc.z, nNew)
	inc.dead = append(inc.dead, make([]bool, nNew-nOld)...)

	// Pool Gram rescale + delta sweep: (Σ⋄−Ho) ← (1−α)(Σ⋄−Ho) + ΔGram.
	for k := range inc.sig {
		inc.sig[k].AddScaled(-1, inc.ho[k])
		inc.sig[k].Scale(1 - alpha)
	}
	hessian.BlockDiagAccumRange(inc.ws, pool, inc.sig, inc.z, nOld, nNew, 1)
	for k := range inc.sig {
		inc.sig[k].AddScaled(1, inc.ho[k])
	}
	inc.p = NewProblem(inc.p.Labeled, pool)
	return inc.refactor(0, len(inc.fact))
}

// SelectOptions configure an incremental selection round.
type SelectOptions struct {
	// Refine, when positive, runs this many warm-started mirror-descent
	// iterations before rounding (one full RELAX pass per iteration). Zero
	// is the pure delta round: ROUND starts directly from the maintained
	// factors with no pool-scale RELAX work.
	Refine int
	// Relax configures the Refine solve; WarmStart and FixedIterations are
	// overridden from the maintained weights and Refine.
	Relax RelaxOptions
	// Exclude lists additional pool indices this round must not select
	// (tombstoned rows are always excluded).
	Exclude []int
}

// Select runs one incremental ROUND over the current pool. With
// o.Refine == 0 the round reuses the maintained B₁ factors and costs
// b·O(n·c·d²) scoring sweeps plus O(c·d³) setup — no RELAX, no Gram
// assembly; the result is identical (argmax-for-argmax) to rebuilding
// Σ⋄ from scratch at the maintained weights. With o.Refine > 0 a
// warm-started RELAX refines the weights first, after which the
// maintained blocks are rebuilt at the new weights (one full pool
// sweep — refinement is a paid upgrade, not a delta). Select does not
// mark its own selections: callers exclude or tombstone them when the
// labels arrive.
func (inc *Incremental) Select(ctx context.Context, o SelectOptions) (*Result, error) {
	n := inc.p.N()
	res := &Result{Eta: inc.eta}
	if o.Refine > 0 {
		ro := o.Relax
		ro.WarmStart = inc.z
		ro.FixedIterations = o.Refine
		relax, err := RelaxFast(ctx, inc.p, inc.b, ro)
		if err != nil {
			return nil, err
		}
		copy(inc.z, relax.Z)
		for i, d := range inc.dead {
			if d {
				inc.z[i] = 0
			}
		}
		// Rebuild the maintained blocks at the refined weights: one full
		// sweep, then a refactor — the state is again exact for the next
		// delta round.
		inc.p.Pool.BlockDiagSumInto(inc.ws, inc.sig, inc.z)
		for k := range inc.sig {
			inc.sig[k].AddScaled(1, inc.ho[k])
		}
		if err := inc.refactor(0, len(inc.fact)); err != nil {
			return nil, err
		}
		res.Relax = relax
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	round := &RoundResult{Timings: timing.New()}
	st, err := NewRoundStateFromFactors(inc.st, inc.sig, inc.ho, inc.fact, inc.b, inc.eta, round.Timings)
	if err != nil {
		return nil, err
	}
	inc.st = st

	if cap(inc.scores) < n {
		inc.scores = make([]float64, n)
		inc.selected = make([]bool, n)
	}
	scores, selected := inc.scores[:n], inc.selected[:n]
	for i := range selected {
		selected[i] = inc.dead[i]
	}
	for _, i := range o.Exclude {
		if i >= 0 && i < n {
			selected[i] = true
		}
	}
	if err := runRoundLoop(inc.p.Pool, st, inc.b, scores, selected, inc.rowBuf, round); err != nil {
		return nil, err
	}
	res.Selected = round.Selected
	res.Round = round
	return res, nil
}

// ReprojectSimplex maps a weight vector over len(old) rows onto a pool
// grown to n rows, preserving total mass: with α = (n−len(old))/n, old
// entries are scaled by (1−α) and each new row receives total/n — the
// mass a uniform draw over the grown pool would give it. A unit simplex
// stays a unit simplex; a z⋄ summing to b keeps summing to b. The warm
// seed for RelaxOptions.WarmStart after an append.
func ReprojectSimplex(old []float64, n int) []float64 {
	m := len(old)
	if n < m {
		panic(fmt.Sprintf("firal: cannot reproject %d weights onto a smaller pool of %d", m, n))
	}
	if n == m {
		return append([]float64(nil), old...)
	}
	var total float64
	for _, v := range old {
		total += v
	}
	alpha := float64(n-m) / float64(n)
	out := make([]float64, n)
	for i, v := range old {
		out[i] = v * (1 - alpha)
	}
	fill := total / float64(n)
	for i := m; i < n; i++ {
		out[i] = fill
	}
	return out
}
