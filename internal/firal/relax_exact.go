package firal

import (
	"context"
	"math"

	"repro/internal/mat"
	"repro/internal/timing"
)

// RelaxExact runs the exact RELAX step of Algorithm 1 (lines 1–9): at
// every mirror-descent iteration it assembles the dense ẽd×ẽd matrix Σz,
// inverts it directly, and evaluates the exact gradient
// g_i = −Trace(H_i Σz⁻¹ Hp Σz⁻¹). Storage is O(c²d² + n c² d)-class and
// per-iteration work is O(n c² d² + (dc)³) — the cost profile that
// motivates Approx-FIRAL (Table II). The context is checked once per
// mirror-descent iteration.
func RelaxExact(ctx context.Context, p *Problem, b int, o RelaxOptions) (*RelaxResult, error) {
	pool := p.ResidentPool()
	if pool == nil {
		return nil, ErrResidentPool
	}
	o.defaults()
	n, d, c := p.N(), p.D(), p.C()
	z := uniformSimplex(n)
	res := &RelaxResult{Timings: timing.New()}
	ph := res.Timings

	// Hp is constant across iterations.
	stop := ph.Start("dense")
	hp := pool.DenseSum(nil)
	stop()

	g := make([]float64, n)
	q := make([]float64, n)
	xm := mat.NewDense(n, d)
	prevF := math.Inf(1)

	for t := 1; t <= o.MaxIter; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Σz ← Ho + Hz and its inverse (Algorithm 1 line 5).
		stop = ph.Start("dense")
		sigma := p.DenseSigma(z)
		sigInv, err := mat.InvSPD(sigma)
		if err != nil {
			return nil, err
		}
		// M = Σz⁻¹ Hp Σz⁻¹; f = Trace(Σz⁻¹ Hp).
		tmp := mat.Mul(nil, sigInv, hp)
		f := tmp.Trace()
		m := mat.Mul(nil, tmp, sigInv)
		stop()

		// Exact gradient (line 6): g_i = −Trace(H_i M) with
		// H_i = S_i ⊗ x_i x_iᵀ, so Trace(H_i M) = Σ_{k,l} S_i[k,l] ·
		// x_iᵀ M^{(k,l)} x_i (M is symmetric). The quadratic forms are
		// batched over the pool with two GEMMs per (k, l) block.
		stop = ph.Start("gradient")
		mat.Fill(g, 0)
		for k := 0; k < c; k++ {
			for l := k; l < c; l++ {
				blk := mat.Block(m, k, l, d)
				mat.Mul(xm, pool.X, blk)
				mat.RowDots(q, pool.X, xm)
				mult := 1.0
				if l != k {
					mult = 2 // symmetric pair (k,l) and (l,k)
				}
				for i := 0; i < n; i++ {
					hik := pool.H.At(i, k)
					hil := pool.H.At(i, l)
					s := -hik * hil
					if k == l {
						s += hik
					}
					g[i] -= mult * s * q[i]
				}
			}
		}
		stop()

		// Mirror-descent update (lines 7–8).
		stop = ph.Start("other")
		mirrorStep(z, g, o.Beta0, t)
		stop()

		res.Iterations = t
		if o.RecordObjective {
			res.Objectives = append(res.Objectives, f)
		}
		if o.FixedIterations == 0 && relConv(prevF, f, o.ObjTol) {
			break
		}
		prevF = f
	}

	res.Z = z
	mat.Scal(float64(b), res.Z)
	return res, nil
}
