package firal

import (
	"errors"
	"math"

	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/opt"
)

// This file implements the paper's future-work extension (§ V, limitation
// 1): replacing the exact per-block eigensolves of the ROUND step with an
// iterative, matvec-only estimate. The FTRL normalization of Algorithm 3
// line 10,
//
//	g(ν) = Σ_k Σ_j (ν + ηλ_kj)⁻² = Σ_k Trace[(νI + ηH̃_k)⁻²],
//
// is a spectral sum, so stochastic Lanczos quadrature yields nodes and
// weights per block once, after which g(ν) is evaluable for every
// bisection candidate without another eigensolve.

// IterativeNuOptions configure the SLQ-based ν solve.
type IterativeNuOptions struct {
	// Probes is the number of Rademacher probes per block (default 6).
	Probes int
	// Steps is the Lanczos subspace dimension per probe (default
	// min(d, 24)).
	Steps int
	// Seed seeds the probe draws.
	Seed int64
}

// EigQuadrature computes, for each block k in [kLo, kHi), the SLQ
// quadrature of the transformed accumulator H̃_k = S_k^{-1/2} H_k
// S_k^{-1/2} using only matvecs (no dense eigensolve). Nodes and weights
// from all requested blocks are concatenated; Σ weights ≈ (kHi−kLo)·d.
func (st *RoundState) EigQuadrature(kLo, kHi int, o IterativeNuOptions) (nodes, weights []float64, err error) {
	if o.Probes <= 0 {
		o.Probes = 6
	}
	if o.Steps <= 0 {
		o.Steps = st.d
		if o.Steps > 24 {
			o.Steps = 24
		}
	}
	tmp := make([]float64, st.d)
	for k := kLo; k < kHi; k++ {
		isq := st.isqrt[k]
		hk := st.hacc[k]
		op := krylov.Op(func(dst, v []float64) {
			// dst = S^{-1/2} H S^{-1/2} v via three d×d matvecs.
			mat.MatVec(tmp, isq, v)
			dst2 := mat.MatVec(nil, hk, tmp)
			mat.MatVec(dst, isq, dst2)
		})
		nk, wk, e := krylov.SLQNodes(op, st.d, o.Probes, o.Steps, o.Seed+int64(k)*131)
		if e != nil {
			return nil, nil, e
		}
		nodes = append(nodes, nk...)
		weights = append(weights, wk...)
	}
	return nodes, weights, nil
}

// ErrNuBracket is returned when the weighted FTRL equation cannot be
// bracketed (degenerate quadrature).
var ErrNuBracket = errors.New("firal: iterative ν solve failed to bracket the FTRL equation")

// SolveNuQuadrature solves Σ_i w_i (ν + ηθ_i)⁻² = 1 for ν by bisection on
// the weighted quadrature. Negative nodes (roundoff) are clamped to zero,
// exactly as FinishUpdate clamps exact eigenvalues.
func (st *RoundState) SolveNuQuadrature(nodes, weights []float64) (float64, error) {
	if len(nodes) == 0 || len(nodes) != len(weights) {
		return 0, ErrNuBracket
	}
	mu := make([]float64, len(nodes))
	muMin := math.Inf(1)
	var wTotal float64
	for i, th := range nodes {
		if th < 0 {
			th = 0
		}
		mu[i] = st.eta * th
		if weights[i] > 0 && mu[i] < muMin {
			muMin = mu[i]
		}
		wTotal += math.Max(0, weights[i])
	}
	if wTotal <= 0 || math.IsInf(muMin, 1) {
		return 0, ErrNuBracket
	}
	g := func(nu float64) float64 {
		var s float64
		for i := range mu {
			w := weights[i]
			if w <= 0 {
				continue
			}
			d := nu + mu[i]
			s += w / (d * d)
		}
		return s - 1
	}
	// hi: each term ≤ w/(ν+μmin)² so g ≤ Wtotal/(ν+μmin)² − 1 ≤ 0 at
	// ν = −μmin + √Wtotal.
	hi := -muMin + math.Sqrt(wTotal)
	// lo: expand toward −μmin until g ≥ 0.
	lo := -muMin + math.Sqrt(wTotal)*1e-6
	for iter := 0; g(lo) < 0 && iter < 60; iter++ {
		lo = -muMin + (lo+muMin)/4
	}
	if g(lo) < 0 {
		return 0, ErrNuBracket
	}
	return opt.Bisect(g, lo, hi, 1e-12*(1+math.Abs(hi)), 0)
}

// FinishUpdateIterative is the matvec-only counterpart of FinishUpdate:
// it derives ν_{t+1} from SLQ quadratures instead of exact eigensolves
// and rebuilds the block inverses. The ν it produces converges to the
// exact one as Probes·Steps grow (tested against FinishUpdate).
func (st *RoundState) FinishUpdateIterative(o IterativeNuOptions) (float64, error) {
	nodes, weights, err := st.EigQuadrature(0, st.c, o)
	if err != nil {
		return 0, err
	}
	nu, err := st.SolveNuQuadrature(nodes, weights)
	if err != nil {
		return 0, err
	}
	for k := 0; k < st.c; k++ {
		bt := st.tmp
		bt.CopyFrom(st.sig[k])
		bt.Scale(nu)
		bt.AddScaled(st.eta, st.hacc[k])
		bt.AddScaled(st.eta/float64(st.b), st.ho[k])
		if _, err := st.chol.FactorRidge(bt, choleskyRidge); err != nil {
			return 0, err
		}
		st.chol.InverseInto(st.ws, st.binv[k])
	}
	return nu, nil
}
