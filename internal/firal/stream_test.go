package firal

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/timing"
)

// streamProblem rebuilds a resident test problem with its pool served
// through a Stream over the given block size.
func streamProblem(p *Problem, blockRows int) *Problem {
	pool := p.ResidentPool()
	stream := hessian.NewStream(dataset.NewMatrixSource(pool.X), pool.H, blockRows)
	return NewProblem(p.Labeled, stream)
}

// TestScoresStreamMatchesResident is the ROUND block-boundary property
// test: rescoring a pool through ragged streaming blocks must match the
// resident single-sweep oracle.
func TestScoresStreamMatchesResident(t *testing.T) {
	p := testProblem(41, 12, 397, 9, 4) // 397 prime: ragged against every block size
	z := make([]float64, p.N())
	mat.Fill(z, 5/float64(p.N()))
	st, err := testRoundState(p, z, 5, p.DefaultEta(), timing.New())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, p.N())
	st.Scores(p.Pool, want)

	for _, bs := range []int{1, 32, 100, 396, 397, 512} {
		sp := streamProblem(p, bs)
		got := make([]float64, p.N())
		st.Scores(sp.Pool, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("bs=%d: score %d = %g, resident oracle %g", bs, i, got[i], want[i])
			}
		}
	}
}

// TestSelectApproxStreamMatchesResident runs the full Approx-FIRAL
// selection (RELAX + ROUND) over a streamed pool with an awkward block
// size and requires the identical batch the resident solver picks.
func TestSelectApproxStreamMatchesResident(t *testing.T) {
	p := testProblem(43, 10, 203, 7, 3)
	opts := Options{Relax: RelaxOptions{FixedIterations: 4, Seed: 9}}
	want, err := SelectApprox(context.Background(), p, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	sp := streamProblem(p, 48) // 203 = 4×48 + 11: ragged tail
	got, err := SelectApprox(context.Background(), sp, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("streamed selection picked %d points, resident %d", len(got.Selected), len(want.Selected))
	}
	for i := range want.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("selection %d: streamed %d, resident %d", i, got.Selected[i], want.Selected[i])
		}
	}
}

// TestSelectExactRequiresResidentPool pins the exact-solver contract:
// Algorithm 1 assembles dense pool Hessians and must refuse a streaming
// pool with ErrResidentPool instead of panicking deep in the dense path.
// Covered twice: a Stream over a resident matrix (the cheap wrapper case)
// and a Stream over a streaming-ONLY source (no Resident fast path, the
// out-of-core case) — the CountingSource additionally proves the exact
// solvers bail out before touching a single row.
func TestSelectExactRequiresResidentPool(t *testing.T) {
	p := testProblem(44, 8, 40, 5, 3)
	pool := p.ResidentPool()
	counting := dataset.NewCountingSource(dataset.NewMatrixSource(pool.X))
	for name, sp := range map[string]*Problem{
		"resident-backed": streamProblem(p, 16),
		"streaming-only":  NewProblem(p.Labeled, hessian.NewStream(counting, pool.H, 16)),
	} {
		if _, err := SelectExact(context.Background(), sp, 3, Options{}); !errors.Is(err, ErrResidentPool) {
			t.Fatalf("%s: SelectExact err = %v, want ErrResidentPool", name, err)
		}
		if _, err := RelaxExact(context.Background(), sp, 3, RelaxOptions{}); !errors.Is(err, ErrResidentPool) {
			t.Fatalf("%s: RelaxExact err = %v, want ErrResidentPool", name, err)
		}
		if _, err := RoundExact(sp, make([]float64, sp.N()), 3, RoundOptions{}); !errors.Is(err, ErrResidentPool) {
			t.Fatalf("%s: RoundExact err = %v, want ErrResidentPool", name, err)
		}
	}
	if counting.Reads() != 0 {
		t.Fatalf("exact solvers decoded %d blocks from a streaming pool before refusing", counting.Reads())
	}
}

// TestSolverScratchPoolAllocs pins the per-call setup pooling: once the
// sync.Pool-backed scratch is warm, a full RelaxFast call allocates only
// its escaping outputs (result struct, timings, z) and a full RoundFast
// call additionally pays the input-dependent eigendecompositions — far
// below the pre-pooling cost of rebuilding every hoisted buffer, the
// workspace, the preconditioner storage, and the round state per call.
// The bounds are generous (~1.6× measured) so shape changes in the
// escaping results don't flake, while reintroducing per-call setup
// (dozens of buffers) trips them immediately.
func TestSolverScratchPoolAllocs(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	p := testProblem(5, 15, 400, 16, 5)
	relax := func() {
		if _, err := RelaxFast(context.Background(), p, 4, RelaxOptions{FixedIterations: 2, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	relax()
	relax()
	if allocs := testing.AllocsPerRun(10, relax); allocs > 40 {
		t.Errorf("warm RelaxFast allocates %.0f objects per call; want ≤ 40 (measured 25 when pooled)", allocs)
	}

	z := make([]float64, p.N())
	mat.Fill(z, 4/float64(p.N()))
	round := func() {
		if _, err := RoundFast(p, z, 4, RoundOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	round()
	round()
	if allocs := testing.AllocsPerRun(10, round); allocs > 170 {
		t.Errorf("warm RoundFast allocates %.0f objects per call; want ≤ 170 (measured 104 when pooled)", allocs)
	}
}
