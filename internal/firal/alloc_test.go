package firal

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/timing"
)

// BenchmarkScores measures the ROUND pool-scoring pass with warm
// persistent state; -benchmem must report 0 allocs/op when run on a
// single core (on multicore the parallel fan-out adds O(workers)
// transient allocations per kernel call).
func BenchmarkScores(b *testing.B) {
	p := testProblem(32, 20, 2000, 64, 10)
	z := make([]float64, p.N())
	mat.Fill(z, 10/float64(p.N()))
	st, err := newRoundState(p, z, 10, p.DefaultEta(), timing.New())
	if err != nil {
		b.Fatal(err)
	}
	scores := make([]float64, p.N())
	st.Scores(p.Pool, scores)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Scores(p.Pool, scores)
	}
}

// TestScoresZeroAllocWarm pins the ROUND scoring pass: with the
// RoundState's persistent pk/xm scratch warmed by one call, rescoring the
// pool allocates nothing.
func TestScoresZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	p := testProblem(31, 10, 400, 12, 4)
	z := make([]float64, p.N())
	mat.Fill(z, 3/float64(p.N()))
	st, err := newRoundState(p, z, 3, p.DefaultEta(), timing.New())
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, p.N())
	st.Scores(p.Pool, scores) // warm the lazily-sized pool scratch
	if allocs := testing.AllocsPerRun(30, func() {
		st.Scores(p.Pool, scores)
	}); allocs != 0 {
		t.Fatalf("Scores allocates %.1f objects per call with warm state", allocs)
	}
}
