package firal

import (
	"context"
	"math"
	"testing"

	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rnd"
	"repro/internal/timing"
)

// BenchmarkScores measures the ROUND pool-scoring pass with warm
// persistent state; -benchmem must report 0 allocs/op on any core count
// (the persistent worker pool dispatches without forking or allocating).
func BenchmarkScores(b *testing.B) {
	p := testProblem(32, 20, 2000, 64, 10)
	z := make([]float64, p.N())
	mat.Fill(z, 10/float64(p.N()))
	st, err := testRoundState(p, z, 10, p.DefaultEta(), timing.New())
	if err != nil {
		b.Fatal(err)
	}
	scores := make([]float64, p.N())
	st.Scores(p.Pool, scores)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Scores(p.Pool, scores)
	}
}

// TestScoresZeroAllocWarm pins the ROUND scoring pass: with the
// RoundState's persistent pk/xm scratch warmed by one call, rescoring the
// pool allocates nothing.
func TestScoresZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	p := testProblem(31, 10, 400, 12, 4)
	z := make([]float64, p.N())
	mat.Fill(z, 3/float64(p.N()))
	st, err := testRoundState(p, z, 3, p.DefaultEta(), timing.New())
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, p.N())
	st.Scores(p.Pool, scores) // warm the lazily-sized pool scratch
	if allocs := testing.AllocsPerRun(30, func() {
		st.Scores(p.Pool, scores)
	}); allocs != 0 {
		t.Fatalf("Scores allocates %.1f objects per call with warm state", allocs)
	}
}

// TestRoundSteadyStateZeroAllocMulticore pins the tentpole guarantee:
// with four workers engaged, a full steady-state ROUND candidate step —
// rescoring the pool, the argmax, AddPoint, the block eigensolves, the ν
// bisection, and the in-place Cholesky rebuild of every (B_t)⁻¹ block —
// allocates nothing once the state is warm. Before the persistent worker
// pool and the in-place factorization this path allocated O(workers) per
// kernel call plus fresh Cholesky factors and inverses per candidate.
func TestRoundSteadyStateZeroAllocMulticore(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	p := testProblem(17, 20, 600, 32, 8)
	z := make([]float64, p.N())
	mat.Fill(z, 5/float64(p.N()))
	ph := timing.New()
	st, err := testRoundState(p, z, 5, p.DefaultEta(), ph)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, p.N())
	step := func() {
		st.Scores(p.Pool, scores)
		best, bestV := -1, math.Inf(-1)
		for i := range scores {
			if scores[i] > bestV {
				best, bestV = i, scores[i]
			}
		}
		if _, err := st.Update(p.ResidentPool().X.Row(best), p.ResidentPool().H.Row(best), ph); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm scratch, eigen buffers, factor storage, task pools
	step()
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("steady-state ROUND step allocates %.1f objects per candidate at 4 workers", allocs)
	}
}

// TestSolveBlockZeroAllocMulticore pins the integrated RELAX block solve:
// a full krylov.SolveBlockInto sweep driven by the real Σz block operator
// (multi-RHS Lemma-2 matvec + labeled term) and the block preconditioner,
// with four workers engaged, allocates nothing once the workspace and
// factor storage are warm. This is the per-iteration hot path of the
// block-CG RELAX loop.
func TestSolveBlockZeroAllocMulticore(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	p := testProblem(29, 15, 2000, 24, 6)
	z := make([]float64, p.N())
	mat.Fill(z, 1/float64(p.N()))
	ws := mat.NewWorkspace()
	bp := NewBlockPreconditionerWS()
	if err := bp.Update(p.SigmaBlocksInto(ws, nil, z)); err != nil {
		t.Fatal(err)
	}
	const s = 5
	bT := mat.NewDense(s, p.Ed())
	rnd.New(7).Rademacher(bT.Data) // independent probe columns, staggered convergence
	xT := mat.NewDense(s, p.Ed())
	sigMV := krylov.BlockOp(p.SigmaMatVecBlockWS(ws, z))
	precond := krylov.BlockOp(bp.ApplyBlock)
	opt := krylov.Options{Tol: 0.1, MaxIter: 60, Workspace: ws}
	var results []krylov.Result
	sweep := func() {
		xT.Zero()
		results = krylov.SolveBlockInto(context.Background(), sigMV, precond, bT, xT, results, opt)
	}
	sweep() // warm
	if allocs := testing.AllocsPerRun(15, sweep); allocs != 0 {
		t.Fatalf("warm block solve allocates %.1f objects per sweep at 4 workers", allocs)
	}
}

// TestBlockPreconditionerWSZeroAllocWarm pins the RELAX preconditioner
// rebuild: refactoring the Σz blocks into the persistent factor storage
// and applying the preconditioner allocates nothing once warm, even with
// the worker pool engaged.
func TestBlockPreconditionerWSZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	p := testProblem(23, 15, 600, 16, 5)
	z := make([]float64, p.N())
	mat.Fill(z, 1/float64(p.N()))
	ws := mat.NewWorkspace()
	var blocks []*mat.Dense
	bp := NewBlockPreconditionerWS()
	v := make([]float64, p.Ed())
	dst := make([]float64, p.Ed())
	mat.Fill(v, 1)
	iter := func() {
		blocks = p.SigmaBlocksInto(ws, blocks, z)
		if err := bp.Update(blocks); err != nil {
			t.Fatal(err)
		}
		bp.Apply(dst, v)
	}
	iter() // warm
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("preconditioner rebuild allocates %.1f objects per iteration", allocs)
	}
}
