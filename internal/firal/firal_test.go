package firal

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/softmax"
	"repro/internal/timing"
)

// testProblem builds a small synthetic problem with class structure: class
// means on the unit sphere, Gaussian spread, and probabilities from a
// logistic model evaluated at noisy true weights.
func testProblem(seed int64, nLabeled, nPool, d, c int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	means := mat.NewDense(c, d)
	for k := 0; k < c; k++ {
		for j := 0; j < d; j++ {
			means.Set(k, j, rng.NormFloat64())
		}
		mat.Scal(2/mat.Nrm2(means.Row(k)), means.Row(k))
	}
	sample := func(n int) *mat.Dense {
		x := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			k := i % c
			for j := 0; j < d; j++ {
				x.Set(i, j, means.At(k, j)+0.4*rng.NormFloat64())
			}
		}
		return x
	}
	theta := means.T() // d×c "classifier": logits = x·means ᵀ
	xo := sample(nLabeled)
	xu := sample(nPool)
	ho := hessian.ReduceProbs(softmax.Probabilities(nil, xo, theta))
	hu := hessian.ReduceProbs(softmax.Probabilities(nil, xu, theta))
	return NewProblem(hessian.NewSet(xo, ho), hessian.NewSet(xu, hu))
}

// TestLemma3BlockShermanMorrison verifies Eq. 16: the blockwise rank-1
// update formula for (A + diag(γ)⊗xxᵀ)⁻¹ agrees with the dense inverse.
func TestLemma3BlockShermanMorrison(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		c := 1 + rng.Intn(3)
		// Random SPD blocks.
		blocks := make([]*mat.Dense, c)
		for k := range blocks {
			g := mat.NewDense(d+2, d)
			for i := range g.Data {
				g.Data[i] = rng.NormFloat64()
			}
			blocks[k] = mat.MulTransA(nil, g, g)
			blocks[k].AddDiag(0.5)
		}
		x := make([]float64, d)
		gamma := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for k := range gamma {
			gamma[k] = rng.Float64() // non-negative keeps SPD
		}
		// Dense reference.
		a := mat.BlockDiag(blocks)
		for k := 0; k < c; k++ {
			upd := mat.NewDense(d, d)
			upd.AddOuter(gamma[k], x)
			mat.SetBlock(a, k, k, d, mat.Block(a, k, k, d)) // no-op, clarity
			blk := mat.Block(a, k, k, d)
			blk.AddScaled(1, upd)
			mat.SetBlock(a, k, k, d, blk)
		}
		dense, err := mat.InvSPD(a)
		if err != nil {
			return true // skip ill-conditioned draws
		}
		// Blockwise formula (Eq. 16).
		for k := 0; k < c; k++ {
			ainvK, err := mat.InvSPD(blocks[k])
			if err != nil {
				return true
			}
			ax := mat.MatVec(nil, ainvK, x)
			denom := 1 + gamma[k]*mat.Dot(x, ax)
			got := ainvK.Clone()
			got.AddOuter(-gamma[k]/denom, ax)
			want := mat.Block(dense, k, k, d)
			if mat.MaxAbsDiff(got, want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestProposition4Equivalence is the key ROUND correctness test: when all
// Hessians are truncated to their diagonal blocks, the Eq. 17 score must
// reproduce the FTRL trace objective Trace[(B_t + ηH_i)⁻¹ Σ⋄] exactly, up
// to the candidate-independent constant Trace[B_t⁻¹ Σ⋄] (Eq. 20).
func TestProposition4Equivalence(t *testing.T) {
	p := testProblem(1, 6, 10, 3, 3)
	n := p.N()
	b := 3
	eta := 2.5
	z := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range z {
		z[i] = rng.Float64()
	}
	st, err := testRoundState(p, z, b, eta, timing.New())
	if err != nil {
		t.Fatal(err)
	}

	// Dense block-diagonal counterparts.
	sigBD := mat.BlockDiag(st.sig)
	bt := mat.BlockDiag(st.binv)
	btDense, err := mat.InvSPD(bt) // B_t = (B_t⁻¹)⁻¹
	if err != nil {
		t.Fatal(err)
	}
	btInvSig := mat.Mul(nil, bt, sigBD)
	constTerm := btInvSig.Trace()

	scores := make([]float64, n)
	st.Scores(p.Pool, scores)

	d, c := p.D(), p.C()
	for i := 0; i < n; i++ {
		// Dense H_i truncated to diagonal blocks.
		hi := p.ResidentPool().H.Row(i)
		xi := p.ResidentPool().X.Row(i)
		hiBD := mat.NewDense(d*c, d*c)
		for k := 0; k < c; k++ {
			blk := mat.NewDense(d, d)
			blk.AddOuter(hi[k]*(1-hi[k]), xi)
			mat.SetBlock(hiBD, k, k, d, blk)
		}
		m := btDense.Clone()
		m.AddScaled(eta, hiBD)
		mInv, err := mat.InvSPD(m)
		if err != nil {
			t.Fatal(err)
		}
		riDense := mat.Mul(nil, mInv, sigBD).Trace()
		riFormula := constTerm - eta*scores[i]
		if math.Abs(riDense-riFormula) > 1e-5*(1+math.Abs(riDense)) {
			t.Fatalf("point %d: dense %g formula %g", i, riDense, riFormula)
		}
	}
}

// TestRoundFastFTRLInvariant: after each update, A_{t+1} = ν Σ^{1/2⊤}…
// reduces to Trace(A_{t+1}⁻²) = 1, i.e. Σ_{k,j}(ν + ηλ_kj)⁻² = 1.
func TestRoundFastFTRLInvariant(t *testing.T) {
	p := testProblem(3, 6, 12, 2, 3)
	z := uniformSimplex(p.N())
	mat.Scal(4, z) // b=4
	res, err := RoundFast(p, z, 4, RoundOptions{Eta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nu) != 4 {
		t.Fatalf("expected 4 ν values, got %d", len(res.Nu))
	}
	for _, nu := range res.Nu {
		// ν may be negative (when ηH̃ already has large eigenvalues) but
		// must be finite; A_t ≻ 0 is guaranteed by the bisection bracket.
		if math.IsNaN(nu) || math.IsInf(nu, 0) {
			t.Fatalf("invalid ν %g", nu)
		}
	}
	if len(res.Selected) != 4 {
		t.Fatalf("selected %d points", len(res.Selected))
	}
	seen := map[int]bool{}
	for _, i := range res.Selected {
		if seen[i] {
			t.Fatal("duplicate selection")
		}
		seen[i] = true
	}
}

// TestRoundExactWoodburyMatchesNaive checks that the production Woodbury
// objective ranks candidates identically to the literal dense objective.
func TestRoundExactWoodburyMatchesNaive(t *testing.T) {
	p := testProblem(4, 6, 8, 2, 3)
	z := uniformSimplex(p.N())
	mat.Scal(2, z)
	fast, err := RoundExact(p, z, 2, RoundOptions{Eta: 5})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RoundExact(p, z, 2, RoundOptions{Eta: 5, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.Selected {
		if fast.Selected[i] != naive.Selected[i] {
			t.Fatalf("selection mismatch: woodbury %v naive %v", fast.Selected, naive.Selected)
		}
	}
	for i := range fast.Objectives {
		// The two paths differ by inverse algorithm (Cholesky+Woodbury vs
		// eigen-floored dense inverse); allow small numerical slack.
		if math.Abs(fast.Objectives[i]-naive.Objectives[i]) > 5e-4*(1+math.Abs(naive.Objectives[i])) {
			t.Fatalf("objective mismatch at round %d: %g vs %g", i, fast.Objectives[i], naive.Objectives[i])
		}
	}
}

// TestRelaxFastTracksExact compares the Fig. 4 quantities: the fast RELAX
// objective trajectory should track the exact one closely on a small
// problem.
func TestRelaxFastTracksExact(t *testing.T) {
	p := testProblem(5, 8, 24, 3, 3)
	b := 4
	opts := RelaxOptions{FixedIterations: 15, RecordObjective: true, Seed: 7, Probes: 30, CGTol: 0.01}
	fast, err := RelaxFast(context.Background(), p, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RelaxExact(context.Background(), p, b, RelaxOptions{FixedIterations: 15, RecordObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Objectives) != 15 || len(exact.Objectives) != 15 {
		t.Fatalf("objective traces %d/%d", len(fast.Objectives), len(exact.Objectives))
	}
	// Objectives decrease overall.
	if fast.Objectives[14] >= fast.Objectives[0] {
		t.Fatalf("fast objective did not decrease: %g → %g", fast.Objectives[0], fast.Objectives[14])
	}
	if exact.Objectives[14] >= exact.Objectives[0] {
		t.Fatalf("exact objective did not decrease: %g → %g", exact.Objectives[0], exact.Objectives[14])
	}
	// Trajectories agree within Hutchinson noise (s=30 ⇒ ~20%).
	for i := range fast.Objectives {
		rel := math.Abs(fast.Objectives[i]-exact.Objectives[i]) / exact.Objectives[i]
		if rel > 0.35 {
			t.Fatalf("iteration %d: fast %g exact %g (rel %g)", i, fast.Objectives[i], exact.Objectives[i], rel)
		}
	}
	// Final weights correlate: both should sum to b.
	if math.Abs(mat.Sum(fast.Z)-float64(b)) > 1e-6 {
		t.Fatalf("fast Z sums to %g", mat.Sum(fast.Z))
	}
	if math.Abs(mat.Sum(exact.Z)-float64(b)) > 1e-6 {
		t.Fatalf("exact Z sums to %g", mat.Sum(exact.Z))
	}
}

// TestNuSolvesFTRLEquation verifies the line-10 invariant directly: after
// an update, Σ_{k,j} (ν + ηλ_kj)⁻² = 1 for the eigenvalues λ of the
// accumulated (H̃)_k blocks.
func TestNuSolvesFTRLEquation(t *testing.T) {
	p := testProblem(20, 6, 10, 2, 3)
	z := uniformSimplex(p.N())
	mat.Scal(3, z)
	eta := 4.0
	st, err := testRoundState(p, z, 3, eta, timing.New())
	if err != nil {
		t.Fatal(err)
	}
	nu, err := st.Update(p.ResidentPool().X.Row(0), p.ResidentPool().H.Row(0), timing.New())
	if err != nil {
		t.Fatal(err)
	}
	lam, err := st.Eigvals(0, st.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, l := range lam {
		if l < 0 {
			l = 0
		}
		dd := nu + eta*l
		sum += 1 / (dd * dd)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("FTRL normalization violated: Σ(ν+ηλ)⁻² = %g", sum)
	}
}

func TestSelectApproxEndToEnd(t *testing.T) {
	p := testProblem(8, 10, 40, 3, 4)
	res, err := SelectApprox(context.Background(), p, 5, Options{Relax: RelaxOptions{MaxIter: 20, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 5 {
		t.Fatalf("selected %d", len(res.Selected))
	}
	seen := map[int]bool{}
	for _, i := range res.Selected {
		if i < 0 || i >= p.N() || seen[i] {
			t.Fatalf("bad selection %v", res.Selected)
		}
		seen[i] = true
	}
	if res.Eta != p.DefaultEta() {
		t.Fatalf("default eta not used: %g", res.Eta)
	}
}

func TestSelectExactEndToEnd(t *testing.T) {
	p := testProblem(9, 8, 16, 2, 3)
	res, err := SelectExact(context.Background(), p, 3, Options{Relax: RelaxOptions{MaxIter: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %d", len(res.Selected))
	}
}

func TestEtaGridTuning(t *testing.T) {
	p := testProblem(10, 8, 20, 2, 3)
	res, err := SelectApprox(context.Background(), p, 3, Options{
		Relax:   RelaxOptions{MaxIter: 10, Seed: 2},
		EtaGrid: []float64{1, 4, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range []float64{1, 4, 16} {
		if res.Eta == e {
			found = true
		}
	}
	if !found {
		t.Fatalf("tuned eta %g not from grid", res.Eta)
	}
	if res.Round.MinEigH <= 0 {
		t.Fatalf("MinEigH %g not positive", res.Round.MinEigH)
	}
}

// TestExactVsApproxSelectionOverlap: on a small well-separated problem the
// two algorithms should choose substantially overlapping batches.
func TestExactVsApproxSelectionOverlap(t *testing.T) {
	p := testProblem(11, 9, 30, 3, 3)
	b := 6
	ex, err := SelectExact(context.Background(), p, b, Options{Relax: RelaxOptions{MaxIter: 25}})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := SelectApprox(context.Background(), p, b, Options{Relax: RelaxOptions{MaxIter: 25, Seed: 3, Probes: 30, CGTol: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	inEx := map[int]bool{}
	for _, i := range ex.Selected {
		inEx[i] = true
	}
	overlap := 0
	for _, i := range ap.Selected {
		if inEx[i] {
			overlap++
		}
	}
	if overlap < b/3 {
		t.Fatalf("selections too different: exact %v approx %v (overlap %d)", ex.Selected, ap.Selected, overlap)
	}
}

func TestRelaxZStaysOnScaledSimplex(t *testing.T) {
	p := testProblem(12, 6, 15, 2, 3)
	res, err := RelaxFast(context.Background(), p, 5, RelaxOptions{MaxIter: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.Z {
		if v < 0 {
			t.Fatalf("negative weight %g", v)
		}
		sum += v
	}
	if math.Abs(sum-5) > 1e-8 {
		t.Fatalf("Z sums to %g, want 5", sum)
	}
}

func TestBudgetLargerThanPool(t *testing.T) {
	p := testProblem(13, 5, 4, 2, 2)
	res, err := SelectApprox(context.Background(), p, 10, Options{Relax: RelaxOptions{MaxIter: 5, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 4 {
		t.Fatalf("expected all 4 pool points, got %d", len(res.Selected))
	}
}

// testRoundState builds a fresh RoundState from a Problem — the
// non-pooled form of the RoundFast setup, for tests that exercise the
// state directly.
func testRoundState(p *Problem, z []float64, b int, eta float64, ph *timing.Phases) (*RoundState, error) {
	return NewRoundState(p.SigmaBlocks(z), p.labeledBlocks(), b, eta, ph)
}
