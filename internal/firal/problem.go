// Package firal implements the paper's primary contribution: the FIRAL
// active-learning algorithm (Fisher Information Ratio Active Learning) in
// both its exact form (Algorithm 1) and the scalable Approx-FIRAL form
// (Algorithms 2 and 3).
//
// Given an initial labeled set Xo and an unlabeled pool Xu under a
// multinomial logistic-regression classifier, FIRAL selects a batch of b
// pool points minimizing the Fisher Information Ratio
//
//	f(z) = (Ho + Hz)⁻¹ · Hp,   z ∈ {0,1}ⁿ, ‖z‖₁ = b        (Eq. 4)
//
// via a continuous RELAX step (entropic mirror descent) followed by a
// regret-minimization ROUND step (Follow-The-Regularized-Leader).
package firal

import (
	"errors"
	"math"

	"repro/internal/hessian"
	"repro/internal/mat"
)

// Problem is one batch-selection instance: the labeled set Xo and the
// unlabeled pool Xu, each with class probabilities h(x) under the current
// classifier.
//
// As in Eq. 1, probabilities use the reduced (c−1)-class parametrization:
// build Sets from hessian.ReduceProbs of the classifier's full softmax
// output. C() below therefore reports the number of Fisher blocks (c−1),
// and ẽd = d·(c−1). The full-softmax parametrization would make every Σz
// singular along the gauge directions 1 ⊗ u and stall the CG solves.
//
// The pool is a hessian.Pool: a resident Set or a block-streaming Stream
// over a dataset.PoolSource. The fast RELAX/ROUND path only touches the
// pool through the blocked Pool kernels, so Approx-FIRAL selects from
// pools that never materialize as one matrix; the exact Algorithm-1
// solvers assemble dense pool Hessians and require residency (see
// ResidentPool).
type Problem struct {
	Labeled *hessian.Set // Xo
	Pool    hessian.Pool // Xu

	// labBlocks caches the z-independent labeled block-diagonal
	// Σ_i∈Xo h_ik(1−h_ik) x_i x_iᵀ, which every SigmaBlocks call reuses.
	// Lazily built; a Problem is owned by one selection goroutine.
	labBlocks []*mat.Dense
}

// NewProblem validates dimensions and builds a Problem.
func NewProblem(labeled *hessian.Set, pool hessian.Pool) *Problem {
	if labeled.D() != pool.D() || labeled.C() != pool.C() {
		panic("firal: labeled/pool dimension mismatch")
	}
	return &Problem{Labeled: labeled, Pool: pool}
}

// ErrResidentPool is returned by the exact Algorithm-1 solvers when the
// pool streams from a PoolSource: they assemble dense pool Hessians and
// per-point outer products, which requires the resident representation.
var ErrResidentPool = errors.New("firal: exact FIRAL requires a resident pool (hessian.Set)")

// ResidentPool returns the pool as a resident Set, or nil when the pool
// is block-streaming.
func (p *Problem) ResidentPool() *hessian.Set {
	s, _ := p.Pool.(*hessian.Set)
	return s
}

// D returns the feature dimension d.
func (p *Problem) D() int { return p.Pool.D() }

// C returns the class count c.
func (p *Problem) C() int { return p.Pool.C() }

// N returns the pool size n.
func (p *Problem) N() int { return p.Pool.N() }

// Ed returns the Fisher dimension ẽd = d·c.
func (p *Problem) Ed() int { return p.Pool.Ed() }

// DefaultEta returns the learning rate of Theorem 1, η = 8·√(ẽd)/ε, at
// ε = 1.
func (p *Problem) DefaultEta() float64 { return 8 * math.Sqrt(float64(p.Ed())) }

// SigmaMatVec returns the matrix-free operator v ↦ (Ho + Hz)·v with pool
// weights z (Σz of Eq. 7), built from the Lemma-2 fast matvec. The
// operator reads z live, so a caller that updates z in place (the
// mirror-descent loop) can build it once.
func (p *Problem) SigmaMatVec(z []float64) func(dst, v []float64) {
	return p.SigmaMatVecWS(nil, z)
}

// SigmaMatVecWS is SigmaMatVec with scratch drawn from ws; with a warm
// workspace each application is allocation-free.
func (p *Problem) SigmaMatVecWS(ws *mat.Workspace, z []float64) func(dst, v []float64) {
	buf := make([]float64, p.Ed())
	return func(dst, v []float64) {
		p.Labeled.MatVecWS(ws, dst, v, nil)
		p.Pool.MatVecWS(ws, buf, v, z)
		for i := range dst {
			dst[i] += buf[i]
		}
	}
}

// SigmaMatVecBlockWS returns the block operator V ↦ (Ho + Hz)·V over a
// transposed probe block (s×ẽd, row j = probe j; see krylov.BlockOp): one
// hessian.MatVecBlockWS sweep applies the pool term to all s probes — for
// a streamed pool, one decode per application instead of one per probe —
// and the small resident labeled term is applied per row. Like
// SigmaMatVecWS, the operator reads z live and column results match the
// per-column operator bit for bit.
func (p *Problem) SigmaMatVecBlockWS(ws *mat.Workspace, z []float64) func(dst, v *mat.Dense) {
	return func(dst, v *mat.Dense) {
		for j := 0; j < v.Rows; j++ {
			p.Labeled.MatVecWS(ws, dst.Row(j), v.Row(j), nil)
		}
		buf := ws.Matrix(v.Rows, v.Cols)
		hessian.MatVecBlockWS(ws, p.Pool, buf, v, z)
		dst.AddScaled(1, buf)
		ws.PutMatrix(buf)
	}
}

// PoolMatVec returns the operator v ↦ Hp·v (unweighted pool sum).
func (p *Problem) PoolMatVec() func(dst, v []float64) {
	return p.PoolMatVecWS(nil)
}

// PoolMatVecWS is PoolMatVec with scratch drawn from ws.
func (p *Problem) PoolMatVecWS(ws *mat.Workspace) func(dst, v []float64) {
	return func(dst, v []float64) {
		p.Pool.MatVecWS(ws, dst, v, nil)
	}
}

// PoolMatVecBlockWS is the block form of PoolMatVecWS: V ↦ Hp·V over a
// transposed block in one pool sweep.
func (p *Problem) PoolMatVecBlockWS(ws *mat.Workspace) func(dst, v *mat.Dense) {
	return func(dst, v *mat.Dense) {
		hessian.MatVecBlockWS(ws, p.Pool, dst, v, nil)
	}
}

// labeledBlocks returns the cached labeled block-diagonal contribution.
func (p *Problem) labeledBlocks() []*mat.Dense {
	if p.labBlocks == nil {
		p.labBlocks = p.Labeled.BlockDiagSum(nil)
	}
	return p.labBlocks
}

// SigmaBlocks returns the c diagonal d×d blocks of Σz = Ho + Hz (Eq. 14).
func (p *Problem) SigmaBlocks(z []float64) []*mat.Dense {
	return p.SigmaBlocksInto(nil, nil, z)
}

// SigmaBlocksInto is SigmaBlocks writing into dst (allocated when nil)
// with scratch from ws; callers that rebuild the blocks every iteration
// pass the same dst to reuse its buffers. The returned blocks are only
// valid until the next call with the same dst.
func (p *Problem) SigmaBlocksInto(ws *mat.Workspace, dst []*mat.Dense, z []float64) []*mat.Dense {
	lab := p.labeledBlocks()
	dst = p.Pool.BlockDiagSumInto(ws, dst, z)
	for k := range dst {
		dst[k].AddScaled(1, lab[k])
	}
	return dst
}

// DenseSigma assembles Σz densely (Exact-FIRAL only; O((dc)²) storage).
// It panics on a streaming pool — exact callers check ResidentPool first.
func (p *Problem) DenseSigma(z []float64) *mat.Dense {
	s := p.Labeled.DenseSum(nil)
	s.AddScaled(1, p.ResidentPool().DenseSum(z))
	return s
}

// choleskyRidge is the initial ridge floor shared by every Cholesky
// factorization in the solver: the CG block preconditioner, the ROUND
// (B_t)⁻¹ construction and rebuild, and the iterative-ν rebuild. The
// preconditioner historically used 1e-10 while the ROUND rebuilds used
// 1e-12, so the two paths factored subtly different matrices for the
// same rank-deficient block; one constant keeps them in lockstep.
const choleskyRidge = 1e-12

// BlockPreconditionerWS is the reusable state behind the CG
// preconditioner B(Σz)⁻¹ of § III-A: one Cholesky factor per diagonal
// block, with the factor storage owned by the state. Update refactors
// the current blocks in place, so the RELAX loop — which rebuilds the
// preconditioner every mirror-descent iteration — reuses the same
// O(cd²) storage instead of allocating fresh factors per iteration.
// A BlockPreconditionerWS is owned by one goroutine.
type BlockPreconditionerWS struct {
	d     int
	chols []mat.Cholesky
}

// NewBlockPreconditionerWS returns an empty preconditioner state; the
// factor storage is sized lazily by the first Update.
func NewBlockPreconditionerWS() *BlockPreconditionerWS {
	return &BlockPreconditionerWS{}
}

// Update refactors the given diagonal blocks into the state's factor
// storage. Rank-deficient blocks (a class with no effective weight yet)
// are regularized with an automatic ridge. On error the state must not
// be applied until a successful Update.
func (bp *BlockPreconditionerWS) Update(blocks []*mat.Dense) error {
	if len(bp.chols) != len(blocks) {
		bp.chols = make([]mat.Cholesky, len(blocks))
	}
	bp.d = blocks[0].Rows
	for k, b := range blocks {
		if _, err := bp.chols[k].FactorRidge(b, choleskyRidge); err != nil {
			return err
		}
	}
	return nil
}

// Apply computes dst = B(Σz)⁻¹ v block by block. Hot loops hoist the
// method value (apply := bp.Apply) once; the solve itself is
// allocation-free.
func (bp *BlockPreconditionerWS) Apply(dst, v []float64) {
	d := bp.d
	for k := range bp.chols {
		bp.chols[k].SolveVec(dst[k*d:(k+1)*d], v[k*d:(k+1)*d])
	}
}

// ApplyBlock applies the preconditioner to a transposed vector block
// (s×ẽd, row j = vector j; see krylov.BlockOp): dst_j = B(Σz)⁻¹ v_j for
// every row. The block-diagonal solve is column-separable, so this is
// exactly s Apply calls sharing one hoisted method value.
func (bp *BlockPreconditionerWS) ApplyBlock(dst, v *mat.Dense) {
	for j := 0; j < v.Rows; j++ {
		bp.Apply(dst.Row(j), v.Row(j))
	}
}

// BlockPreconditioner builds the CG preconditioner B(Σz)⁻¹ of § III-A
// from the diagonal blocks: each d×d block is factorized once and applied
// per class. One-shot form of BlockPreconditionerWS; loops that rebuild
// the preconditioner per iteration should hold a WS state instead.
func BlockPreconditioner(blocks []*mat.Dense) (func(dst, v []float64), error) {
	bp := NewBlockPreconditionerWS()
	if err := bp.Update(blocks); err != nil {
		return nil, err
	}
	return bp.Apply, nil
}

// uniformSimplex returns the initial mirror-descent iterate
// z = (1/n, …, 1/n).
func uniformSimplex(n int) []float64 {
	z := make([]float64, n)
	mat.Fill(z, 1/float64(n))
	return z
}
