package firal

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/hessian"
	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/sketch"
	"repro/internal/timing"
)

// relaxScratch pools the per-call setup of RelaxFast: the workspace, the
// hoisted probe/gradient buffers, the preconditioner factor storage, the
// Σz block cache, and the CG result and objective-history slices. For the
// paper-scale solves this setup is noise, but a session running many
// small rounds (the Table V schedules select 5–10 points per round) used
// to pay it per selection; with the pool a steady-state round reuses the
// previous round's storage whenever the shapes match. Only z and the
// RelaxResult escape and stay per-call.
type relaxScratch struct {
	n, ed, s, c, d int
	ws             *mat.Workspace
	g              []float64
	v              *mat.Dense // ẽd×s probe block, Rademacher draw order
	vt, w, hpw, w2 *mat.Dense // transposed blocks (s×ẽd, row j = column j)
	sigBlocks      []*mat.Dense
	fHist          []float64
	cg             []krylov.Result
	bp             *BlockPreconditionerWS
}

var relaxScratchPool = sync.Pool{New: func() any {
	return &relaxScratch{ws: mat.NewWorkspace(), bp: NewBlockPreconditionerWS()}
}}

// getRelaxScratch draws a scratch set from the pool, resizing whichever
// buffers do not match the requested shape (a reuse with the same shape
// allocates nothing).
func getRelaxScratch(n, ed, s, c, d int) *relaxScratch {
	sc := relaxScratchPool.Get().(*relaxScratch)
	if sc.n != n {
		sc.g = make([]float64, n)
	}
	if sc.ed != ed || sc.s != s {
		sc.v = mat.NewDense(ed, s)
		sc.vt = mat.NewDense(s, ed)
		sc.w = mat.NewDense(s, ed)
		sc.hpw = mat.NewDense(s, ed)
		sc.w2 = mat.NewDense(s, ed)
	}
	if sc.c != c || sc.d != d {
		sc.sigBlocks = nil // SigmaBlocksInto re-allocates to the new shape
	}
	sc.n, sc.ed, sc.s, sc.c, sc.d = n, ed, s, c, d
	sc.fHist = sc.fHist[:0]
	return sc
}

func (sc *relaxScratch) release() { relaxScratchPool.Put(sc) }

// RelaxOptions configure the RELAX solvers (exact Algorithm 1 lines 1–9
// and fast Algorithm 2).
type RelaxOptions struct {
	// MaxIter is the mirror-descent iteration cap T (default 100, the
	// paper's bound for its convergence criterion).
	MaxIter int
	// Beta0 scales the mirror-descent learning-rate schedule
	// β_t = Beta0 / (‖g_t‖∞ √t) (default 1).
	Beta0 float64
	// ObjTol stops when the relative change of the objective falls below
	// it (default 1e-4, § IV-A).
	ObjTol float64
	// Probes is the number of Rademacher vectors s (default 10, § IV-A).
	// Fast solver only.
	Probes int
	// CGTol is the CG relative-residual tolerance (default 0.1, § IV-A).
	// Fast solver only.
	CGTol float64
	// CGMaxIter caps CG iterations per solve (default 400). Fast solver
	// only.
	CGMaxIter int
	// Seed seeds the Rademacher probes. Fast solver only.
	Seed int64
	// RecordObjective stores the objective after every iteration,
	// enabling the Fig. 4 sensitivity curves.
	RecordObjective bool
	// FixedIterations, when positive, disables the ObjTol stop and runs
	// exactly this many mirror-descent iterations (used by the
	// performance experiments, which time a fixed iteration count).
	FixedIterations int
	// WarmStart, when non-nil, seeds mirror descent from this weight
	// vector instead of the uniform simplex — the warm-started round of an
	// incremental session, where the previous round's converged z
	// (reprojected onto the grown simplex, see ReprojectSimplex) is a far
	// better iterate than uniform. The vector must have one nonnegative
	// entry per pool point with a positive sum; it is copied and normalized
	// to sum 1, so callers may pass z⋄ (which sums to b) directly. Resume
	// takes precedence: a checkpointed trajectory restarts from its exact
	// iterate, not from the warm seed. Fast solver only.
	WarmStart []float64
	// Resume, when non-nil, continues a previous RelaxFast solve from the
	// checkpointed state instead of starting at the uniform simplex. The
	// remaining options (Seed, Probes, tolerances, …) must match the
	// original solve for the resumed trajectory to be bit-for-bit
	// identical to an uninterrupted one. Fast solver only; the exact and
	// distributed solvers ignore it.
	Resume *RelaxCheckpoint
	// OnIteration, when non-nil, is called after every completed
	// mirror-descent iteration with the current resumable state, and once
	// more with Done=true when mirror descent finishes — the hook for
	// periodic checkpointing and progress reporting. The checkpoint's
	// slices alias live solver buffers and are only valid during the
	// call; Clone to persist. The hook runs on the solver goroutine, so a
	// slow hook slows the solve. Fast solver only.
	OnIteration func(*RelaxCheckpoint)
}

func (o *RelaxOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Beta0 <= 0 {
		o.Beta0 = 1
	}
	if o.ObjTol <= 0 {
		o.ObjTol = 1e-4
	}
	if o.Probes <= 0 {
		o.Probes = 10
	}
	if o.CGTol <= 0 {
		o.CGTol = 0.1
	}
	if o.CGMaxIter <= 0 {
		o.CGMaxIter = 400
	}
	if o.FixedIterations > 0 {
		o.MaxIter = o.FixedIterations
	}
}

// RelaxResult reports a RELAX solve.
type RelaxResult struct {
	// Z is the relaxed solution z⋄ = b·z (Algorithm 1 line 9 /
	// Algorithm 2 line 12); it sums to b.
	Z []float64
	// Objectives holds the per-iteration objective estimates
	// f = Trace(Σz⁻¹ Hp) when recording was requested.
	Objectives []float64
	// Iterations is the number of mirror-descent iterations executed.
	Iterations int
	// CGIterations is the total number of CG iterations across all solves
	// (fast solver; zero for exact).
	CGIterations int
	// Timings attributes wall-clock time to phases: "precond", "cg",
	// "gradient", "other" (fast), or "dense"/"gradient" (exact).
	Timings *timing.Phases
}

// mirrorStep applies the entropic mirror-descent update of Algorithm 1
// lines 7–8 (z_i ← z_i e^{−β g_i}, renormalized), with β_t scaled by the
// gradient's ∞-norm for a scale-free schedule.
//
//firal:hotpath
func mirrorStep(z, g []float64, beta0 float64, t int) {
	gmax := 0.0
	for _, v := range g {
		if a := math.Abs(v); a > gmax {
			gmax = a
		}
	}
	if gmax == 0 {
		return
	}
	beta := beta0 / (gmax * math.Sqrt(float64(t)))
	var sum float64
	for i := range z {
		z[i] *= math.Exp(-beta * g[i])
		sum += z[i]
	}
	inv := 1 / sum
	for i := range z {
		z[i] *= inv
	}
}

// relConv reports whether the objective change between prev and cur is
// below tol, relative to |prev|. Used by the exact solver, whose
// objective is deterministic.
func relConv(prev, cur, tol float64) bool {
	if math.IsInf(prev, 0) {
		return false
	}
	return math.Abs(prev-cur) <= tol*math.Max(1e-300, math.Abs(prev))
}

// StochasticConverged is the windowed form of the paper's stopping rule
// for the fast solver: the Hutchinson objective estimate is redrawn every
// iteration, so a pointwise relative-change test never fires through the
// estimator noise. We instead compare the means of two consecutive
// 5-iteration windows and stop when the change is below tol relative to
// the level, or below half the within-window standard deviation (the
// trajectory has plateaued to within estimator noise).
func StochasticConverged(f []float64, tol float64) bool {
	const w = 5
	if len(f) < 2*w {
		return false
	}
	mean := func(v []float64) float64 {
		var m float64
		for _, x := range v {
			m += x
		}
		return m / float64(len(v))
	}
	m1 := mean(f[len(f)-2*w : len(f)-w])
	m2 := mean(f[len(f)-w:])
	diff := math.Abs(m2 - m1)
	if diff <= tol*math.Abs(m1) {
		return true
	}
	last := f[len(f)-w:]
	var sd float64
	for _, x := range last {
		sd += (x - m2) * (x - m2)
	}
	sd = math.Sqrt(sd / float64(w-1))
	return diff <= 0.5*sd
}

// RelaxFast runs the fast RELAX solve of Algorithm 2: Hutchinson gradient
// estimation with s Rademacher probes, matrix-free Σz and Hp matvecs
// (Lemma 2), and CG preconditioned by the block-diagonal B(Σz)⁻¹. The
// context is checked at every mirror-descent iteration and inside the CG
// solves, so a cancellation or deadline aborts mid-RELAX with ctx.Err().
//
// The probe block advances through krylov.SolveBlockInto and the
// multi-RHS hessian kernels: every CG iteration, the Hp·W products, and
// the Eq. 12 gradient accumulation each visit the pool ONCE for all s
// probes. A streamed pool is therefore decoded O(iterations) times per
// mirror-descent step rather than O(probes·iterations) — the per-column
// arithmetic is unchanged (bit-for-bit with the historical per-column
// sweeps), only the sweep sharing is new.
//
//firal:hotpath
func RelaxFast(ctx context.Context, p *Problem, b int, o RelaxOptions) (*RelaxResult, error) {
	o.defaults()
	n, ed := p.N(), p.Ed()
	s := o.Probes
	rng := rnd.New(o.Seed)
	z := uniformSimplex(n)
	if o.WarmStart != nil && o.Resume == nil {
		if len(o.WarmStart) != n {
			return nil, fmt.Errorf("firal: warm start has %d weights, pool has %d", len(o.WarmStart), n)
		}
		var sum float64
		for _, v := range o.WarmStart {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("firal: warm start weights must be nonnegative, got %g", v)
			}
			sum += v
		}
		if !(sum > 0) {
			return nil, fmt.Errorf("firal: warm start weights sum to %g, want > 0", sum)
		}
		copy(z, o.WarmStart)
		mat.Scal(1/sum, z)
	}
	res := &RelaxResult{Timings: timing.New()}
	ph := res.Timings

	start := 1
	if o.Resume != nil {
		if len(o.Resume.Z) != n {
			return nil, fmt.Errorf("%w: checkpoint has %d weights, pool has %d", ErrBadCheckpoint, len(o.Resume.Z), n)
		}
		copy(z, o.Resume.Z)
		start = o.Resume.Iteration + 1
		res.Iterations = o.Resume.Iteration
		res.CGIterations = o.Resume.CGIterations
		if o.Resume.Done {
			// Mirror descent already finished; only the b· scaling of
			// line 12 remains. The caller re-runs ROUND on the restored
			// final iterate.
			res.Z = z
			mat.Scal(float64(b), res.Z)
			return res, nil
		}
	}

	// All per-iteration buffers are hoisted — drawn from the pooled
	// scratch, so consecutive same-shaped selections reuse them across
	// calls — and every solver below draws its transient scratch from ws,
	// including the preconditioner state, whose Cholesky factors are
	// refactored in place each iteration. The mirror-descent loop is
	// therefore allocation-free after the first iteration (aside from the
	// recorded histories).
	sc := getRelaxScratch(n, ed, s, p.C(), p.D())
	defer sc.release()
	ws := sc.ws
	g := sc.g
	v, vt, w, hpw, w2 := sc.v, sc.vt, sc.w, sc.hpw, sc.w2

	cgOpt := krylov.Options{Tol: o.CGTol, MaxIter: o.CGMaxIter, Workspace: ws}
	poolMV := p.PoolMatVecBlockWS(ws)
	// The operator closes over z, which the mirror step updates in place.
	sigmaMV := krylov.BlockOp(p.SigmaMatVecBlockWS(ws, z))
	bp := sc.bp
	precond := krylov.BlockOp(bp.ApplyBlock)

	if o.Resume != nil {
		// Restore the objective history so convergence decisions replay
		// identically, and fast-forward the probe stream: iteration t of
		// the resumed run must see exactly the Rademacher block iteration
		// t of the uninterrupted run saw.
		sc.fHist = append(sc.fHist, o.Resume.FHist...) //firal:allow(alloc) resume path, once per run
		for t := 1; t < start; t++ {
			rng.Rademacher(v.Data)
		}
	}

	for t := start; t <= o.MaxIter; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Line 4: fresh Rademacher probe block V ∈ R^{dc×s}, drawn in the
		// historical ẽd×s order and transposed into the contiguous-probe
		// layout the block solver works in.
		stop := ph.Start("other")
		rng.Rademacher(v.Data)
		for j := 0; j < s; j++ {
			v.Col(vt.Row(j), j)
		}
		stop()

		// Line 5: block-diagonal preconditioner for Σz, refactored into the
		// state's persistent storage.
		stop = ph.Start("precond")
		sc.sigBlocks = p.SigmaBlocksInto(ws, sc.sigBlocks, z)
		err := bp.Update(sc.sigBlocks)
		stop()
		if err != nil {
			return nil, err
		}

		// Line 6: W ← Σz⁻¹ V by lockstep block CG (zero initial guess, as
		// the buffer reuse must not introduce warm starts): one Σz·block
		// application — one pool sweep — per CG iteration.
		stop = ph.Start("cg")
		w.Zero()
		sc.cg = krylov.SolveBlockInto(ctx, sigmaMV, precond, vt, w, sc.cg, cgOpt)
		res.CGIterations += krylov.TotalIterations(sc.cg)
		stop()
		if err := krylov.FirstError(sc.cg); err != nil {
			return nil, err
		}

		// Line 7: W ← Hp W in one multi-RHS sweep; also yields the free
		// objective estimate f ≈ (1/s) Σ_j v_jᵀ Σz⁻¹ Hp v_j =
		// (1/s) Σ_j v_jᵀ (Hp w_j) by symmetry of Σz and Hp.
		stop = ph.Start("gradient")
		poolMV(hpw, w)
		f := sketch.TraceFromProbesT(vt, hpw)
		stop()

		// Line 8: W ← Σz⁻¹ W by the second lockstep block CG.
		stop = ph.Start("cg")
		w2.Zero()
		sc.cg = krylov.SolveBlockInto(ctx, sigmaMV, precond, hpw, w2, sc.cg, cgOpt)
		res.CGIterations += krylov.TotalIterations(sc.cg)
		stop()
		if err := krylov.FirstError(sc.cg); err != nil {
			return nil, err
		}

		// Line 9: g_i ← −(1/s) Σ_j v_jᵀ H_i w_j over the pool — all probes
		// accumulated in one sweep.
		stop = ph.Start("gradient")
		mat.Fill(g, 0)
		hessian.QuadAccumBlockWS(ws, p.Pool, g, vt, w2, -1/float64(s))
		stop()

		// Lines 10–11: entropic mirror-descent update.
		stop = ph.Start("other")
		mirrorStep(z, g, o.Beta0, t)
		stop()

		res.Iterations = t
		sc.fHist = append(sc.fHist, f) //firal:allow(alloc) recorded history, one float per iteration
		if o.RecordObjective {
			res.Objectives = append(res.Objectives, f) //firal:allow(alloc) diagnostics mode
		}
		if o.OnIteration != nil {
			ck := RelaxCheckpoint{Iteration: t, Z: z, FHist: sc.fHist, CGIterations: res.CGIterations}
			o.OnIteration(&ck)
		}
		if o.FixedIterations == 0 && StochasticConverged(sc.fHist, o.ObjTol) {
			break
		}
	}
	if o.OnIteration != nil {
		// Final Done checkpoint: a caller interrupted during the ROUND
		// phase resumes with mirror descent skipped.
		ck := RelaxCheckpoint{Iteration: res.Iterations, Done: true, Z: z, FHist: sc.fHist, CGIterations: res.CGIterations}
		o.OnIteration(&ck)
	}

	// Line 12: z⋄ ← b·z.
	res.Z = z
	mat.Scal(float64(b), res.Z)
	return res, nil
}
