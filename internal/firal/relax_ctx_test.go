package firal

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// pollCancelContext cancels itself after its Err method has been polled a
// fixed number of times — a deterministic way to trigger cancellation in
// the middle of a solver loop, independent of wall-clock timing.
type pollCancelContext struct {
	context.Context
	remaining atomic.Int64
}

func newPollCancelContext(polls int) *pollCancelContext {
	ctx := &pollCancelContext{Context: context.Background()}
	ctx.remaining.Store(int64(polls))
	return ctx
}

func (c *pollCancelContext) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *pollCancelContext) Deadline() (time.Time, bool) { return time.Time{}, false }

func relaxProblem() *Problem {
	return testProblem(9, 12, 80, 6, 3)
}

func TestRelaxFastAbortsMidLoop(t *testing.T) {
	p := relaxProblem()
	// Let a handful of polls through so the abort lands beyond the first
	// mirror-descent iteration, then cancel.
	ctx := newPollCancelContext(8)
	res, err := RelaxFast(ctx, p, 5, RelaxOptions{FixedIterations: 50, Seed: 1, Probes: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("aborted solve returned a result")
	}
	// The full 50 iterations poll far more than 8 times, so the abort
	// necessarily happened mid-loop.
}

func TestRelaxExactAbortsMidLoop(t *testing.T) {
	p := relaxProblem()
	ctx := newPollCancelContext(3)
	_, err := RelaxExact(ctx, p, 5, RelaxOptions{FixedIterations: 50})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSelectApproxPropagatesCancellation(t *testing.T) {
	p := relaxProblem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SelectApprox(ctx, p, 3, Options{Relax: RelaxOptions{MaxIter: 100, Seed: 2}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled SelectApprox took %s", elapsed)
	}
}
