package firal

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hessian"
)

// TestRelaxStreamDecodeCount pins the block-CG decode contract on a
// shard-backed pool: one streamed RELAX solve reads the pool
//
//	sweeps = Σ_t [ k1_t + k2_t + 5 ]
//
// full decodes — one per lockstep CG iteration (k1, k2 are the DEEPEST
// column's iteration counts of the two solves) plus five fixed sweeps per
// mirror-descent iteration (Σz blocks, two CG initial residuals, Hp·W,
// and the gradient accumulation). That is bounded by CGIterations +
// 5·Iterations and is a factor ~s below the historical per-column cost of
// CGIterations + (4s+1)·Iterations sweeps, where every probe column paid
// its own decode per CG iteration.
func TestRelaxStreamDecodeCount(t *testing.T) {
	p := testProblem(47, 12, 500, 8, 4)
	pool := p.ResidentPool()

	// Pack the pool into an on-disk float32 shard — the production
	// out-of-core representation — and serve it through a CountingSource,
	// which forces and counts the decode path.
	path := filepath.Join(t.TempDir(), "pool.shard")
	w, err := dataset.CreateShard(path, pool.D())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock(pool.X); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	counting := dataset.NewCountingSource(src)
	stream := hessian.NewStream(counting, pool.H, 64) // 500/64: ragged blocks
	sp := NewProblem(p.Labeled, stream)

	const probes = 8
	opts := RelaxOptions{FixedIterations: 3, Probes: probes, Seed: 5}
	res, err := RelaxFast(context.Background(), sp, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CGIterations == 0 {
		t.Fatal("no CG iterations recorded — test exercises nothing")
	}

	n := int64(sp.N())
	if counting.RowsRead()%n != 0 {
		t.Fatalf("pool read %d rows, not a whole number of %d-row sweeps", counting.RowsRead(), n)
	}
	sweeps := int(counting.RowsRead() / n)
	bound := res.CGIterations + 5*res.Iterations
	if sweeps > bound {
		t.Fatalf("streamed RELAX decoded the pool %d times; want ≤ CGIterations + 5·iterations = %d + 5·%d = %d",
			sweeps, res.CGIterations, res.Iterations, bound)
	}
	// The historical per-column path paid one decode per probe column per
	// CG iteration. Require a real amortization factor, not a constant
	// shave.
	perColumn := res.CGIterations + (4*probes+1)*res.Iterations
	if 3*sweeps > perColumn {
		t.Fatalf("streamed RELAX decoded the pool %d times; per-column cost would be %d — expected ≥3× amortization",
			sweeps, perColumn)
	}
	t.Logf("sweeps=%d (CG=%d, T=%d; per-column path would be %d)",
		sweeps, res.CGIterations, res.Iterations, perColumn)
}

// TestRelaxStreamMatchesResident pins the numerics next to the decode
// count: the block-CG streamed solve returns the same z⋄ as the resident
// solver (block accumulation reorders float sums, hence the tolerance;
// the shard's float32 feature rounding is avoided by streaming the exact
// matrix).
func TestRelaxStreamMatchesResident(t *testing.T) {
	p := testProblem(47, 12, 500, 8, 4)
	opts := RelaxOptions{FixedIterations: 3, Probes: 8, Seed: 5}
	want, err := RelaxFast(context.Background(), p, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := p.ResidentPool()
	stream := hessian.NewStream(dataset.NewCountingSource(dataset.NewMatrixSource(pool.X)), pool.H, 64)
	got, err := RelaxFast(context.Background(), NewProblem(p.Labeled, stream), 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations || got.CGIterations != want.CGIterations {
		t.Fatalf("streamed solve ran %d/%d iterations, resident %d/%d",
			got.Iterations, got.CGIterations, want.Iterations, want.CGIterations)
	}
	for i := range want.Z {
		if math.Abs(got.Z[i]-want.Z[i]) > 1e-10*(1+math.Abs(want.Z[i])) {
			t.Fatalf("z[%d]: streamed %g, resident %g", i, got.Z[i], want.Z[i])
		}
	}
}
