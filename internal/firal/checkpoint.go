package firal

import "errors"

// ErrBadCheckpoint is returned when a RelaxCheckpoint does not match the
// problem it is being resumed against.
var ErrBadCheckpoint = errors.New("firal: checkpoint does not match problem")

// RelaxCheckpoint is the resumable state of a RelaxFast solve: everything
// the mirror-descent loop needs to continue from iteration Iteration+1 as
// if it had never stopped. The probe stream is a pure function of
// (RelaxOptions.Seed, iteration) — on resume the solver fast-forwards the
// Rademacher draws to the checkpoint iteration — so no RNG state needs to
// be captured, and a resumed trajectory is bit-for-bit identical to an
// uninterrupted one.
//
// Checkpoints are produced by the RelaxOptions.OnIteration hook and
// consumed through RelaxOptions.Resume. Inside the hook the slices alias
// live solver buffers; use Clone to keep one past the call.
type RelaxCheckpoint struct {
	// Iteration is the number of completed mirror-descent iterations.
	Iteration int
	// Done marks a finished solve: mirror descent converged (or hit its
	// iteration cap) and Z is the final simplex iterate. Resuming a Done
	// checkpoint skips mirror descent entirely and returns b·Z, so a
	// caller interrupted after RELAX but before ROUND re-runs only ROUND.
	Done bool
	// Z is the current simplex iterate (length n, sums to 1). It is the
	// pre-scaling iterate even when Done — RelaxResult.Z's b· scaling is
	// applied on resume.
	Z []float64
	// FHist is the objective-estimate history driving StochasticConverged;
	// restoring it makes the resumed run's stopping decisions identical.
	FHist []float64
	// CGIterations is the cumulative CG iteration count, carried so
	// resumed RelaxResult reporting matches an uninterrupted run.
	CGIterations int
}

// Clone returns a deep copy safe to retain after the OnIteration hook
// returns.
func (c *RelaxCheckpoint) Clone() *RelaxCheckpoint {
	if c == nil {
		return nil
	}
	return &RelaxCheckpoint{
		Iteration:    c.Iteration,
		Done:         c.Done,
		Z:            append([]float64(nil), c.Z...),
		FHist:        append([]float64(nil), c.FHist...),
		CGIterations: c.CGIterations,
	}
}
