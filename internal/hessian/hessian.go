// Package hessian implements the Fisher-information structure at the heart
// of FIRAL. For a point x with class-probability vector h, the Fisher
// information (Hessian of the negative log-likelihood) is
//
//	H = (diag(h) − h hᵀ) ⊗ (x xᵀ)   ∈ R^{dc×dc}          (Eq. 2)
//
// Package hessian provides:
//   - dense assembly of single Hessians and weighted sums (Exact-FIRAL),
//   - the matrix-free fast matvec of Lemma 2 with O(dc) work per point,
//   - the block-diagonal extraction of Eq. 14–15 used by the CG
//     preconditioner and the diagonal ROUND step.
//
// Vectors v ∈ R^{dc} use the vec(V) layout of the paper: v stacks the
// columns of V ∈ R^{d×c}, so block k (length d) corresponds to class k.
package hessian

import (
	"sync"

	"repro/internal/mat"
)

// Set is a collection of points with attached class probabilities — the
// (x_i, h_i) pairs over which Hessian sums such as Ho, Hp, Hz (Eq. 3)
// range. X is n×d and H is n×c; row i of H is h(x_i) under the current
// classifier.
//
// FIRAL uses the reduced (c−1)-class parametrization of Eq. 1 (θ ∈
// R^{d×(c−1)}, h ∈ R^{c−1} with class c as reference): pass probability
// rows with the last class dropped (see ReduceProbs). Under the full
// c-class parametrization every Fisher Hessian is singular along the
// softmax gauge directions 1_c ⊗ u, which breaks the CG solves; the
// algebra in this package is width-agnostic and works for either width.
type Set struct {
	X *mat.Dense
	H *mat.Dense
}

// ReduceProbs drops the last class column of a full softmax probability
// matrix (n×c → n×(c−1)), producing the reduced parametrization of Eq. 1
// under which diag(h)−hhᵀ is nonsingular for interior probabilities.
func ReduceProbs(h *mat.Dense) *mat.Dense {
	out := mat.NewDense(h.Rows, h.Cols-1)
	for i := 0; i < h.Rows; i++ {
		copy(out.Row(i), h.Row(i)[:h.Cols-1])
	}
	return out
}

// NewSet validates shapes and builds a Set.
func NewSet(x, h *mat.Dense) *Set {
	if x.Rows != h.Rows {
		panic("hessian: X and H row mismatch")
	}
	return &Set{X: x, H: h}
}

// N returns the number of points.
func (s *Set) N() int { return s.X.Rows }

// D returns the point dimension.
func (s *Set) D() int { return s.X.Cols }

// C returns the number of classes.
func (s *Set) C() int { return s.H.Cols }

// Ed returns the Fisher dimension ẽd = d·c.
func (s *Set) Ed() int { return s.X.Cols * s.H.Cols }

// Subset returns a Set view restricted to the given point indices
// (data is copied).
func (s *Set) Subset(idx []int) *Set {
	x := mat.NewDense(len(idx), s.D())
	h := mat.NewDense(len(idx), s.C())
	for r, i := range idx {
		copy(x.Row(r), s.X.Row(i))
		copy(h.Row(r), s.H.Row(i))
	}
	return NewSet(x, h)
}

// DensePoint assembles the dense dc×dc Hessian of Eq. 2 for a single
// (x, h) pair. Used by Exact-FIRAL and as the reference implementation in
// property tests.
func DensePoint(x, h []float64) *mat.Dense {
	c := len(h)
	s := mat.NewDense(c, c)
	for k := 0; k < c; k++ {
		for l := 0; l < c; l++ {
			v := -h[k] * h[l]
			if k == l {
				v += h[k]
			}
			s.Set(k, l, v)
		}
	}
	xx := mat.NewDense(len(x), len(x))
	xx.AddOuter(1, x)
	return mat.Kron(s, xx)
}

// DenseSum assembles Σ_i w_i H_i densely (dc×dc). A nil w means unit
// weights. Block (k, l) equals Σ_i w_i h_ik (δ_kl − h_il) x_i x_iᵀ, which
// is a weighted Gram matrix, so the assembly runs c² parallel Gram kernels
// — this is the O(n c² d²) storage/compute bottleneck that motivates
// Approx-FIRAL.
func (s *Set) DenseSum(w []float64) *mat.Dense {
	n, d, c := s.N(), s.D(), s.C()
	out := mat.NewDense(d*c, d*c)
	u := make([]float64, n)
	for k := 0; k < c; k++ {
		for l := 0; l < c; l++ {
			for i := 0; i < n; i++ {
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				hik := s.H.At(i, k)
				hil := s.H.At(i, l)
				v := -hik * hil
				if k == l {
					v += hik
				}
				u[i] = wi * v
			}
			blk := mat.WeightedGram(nil, s.X, u)
			mat.SetBlock(out, k, l, d, blk)
		}
	}
	return out
}

// Vectors v ∈ R^{dc} (vec layout, columns stacked) are reinterpreted as
// c×d row-major matrices whose row k is block k, via mat.Workspace.View —
// no copying, and with a warm workspace no header allocation either.

// MatVec computes dst = Σ_i w_i H_i v with the Lemma-2 fast matvec:
//
//	G = X Vmat           (n×c, G_ik = x_iᵀ v_k)
//	α_i = Σ_k G_ik h_ik  (x_iᵀ V h_i)
//	Γ_ik = w_i (G_ik − α_i) h_ik
//	dst block k = Σ_i Γ_ik x_i = (Γᵀ X) row k
//
// A nil w means unit weights. dst is allocated when nil; dst must not
// alias v. The cost is two n×d×c products — O(ndc) — versus O(n d²c²) for
// the dense operator (Table III). It allocates its block-sized scratch
// per call; hot loops use MatVecWS with a warm Workspace to run
// allocation-free.
func (s *Set) MatVec(dst, v, w []float64) []float64 {
	return s.MatVecWS(nil, dst, v, w)
}

// MatVecWS is MatVec with all scratch — the per-block n_b×c products and
// the matrix-view headers — drawn from ws, so a warm workspace makes the
// call allocation-free (the Set itself stays read-only, so one Set may be
// shared by goroutines as long as each passes its own Workspace). A nil
// ws falls back to per-call allocation. The sum is accumulated block by
// block (see Pool), which bounds the scratch to one row block regardless
// of n.
//
//firal:hotpath
func (s *Set) MatVecWS(ws *mat.Workspace, dst, v, w []float64) []float64 {
	return poolMatVecWS(ws, s, dst, v, w)
}

// chunkTask carries the operands of a parallel loop in pooled storage
// with a dispatch func bound once at pool-New time, so the hot MatVecWS
// and QuadAccumWS paths hand the worker pool a func without allocating a
// closure per call (see the kernel task pools in internal/mat). base is
// the global row index of the block's first row: the scratch products g
// and gv are block-local while h, w, and dst are globally indexed.
type chunkTask struct {
	g, gv, h *mat.Dense
	dst, w   []float64
	scale    float64
	base     int
	fn       func(lo, hi int)
}

func (t *chunkTask) put(p *sync.Pool) {
	t.g, t.gv, t.h, t.dst, t.w = nil, nil, nil, nil, nil
	p.Put(t)
}

var gammaTasks = &sync.Pool{New: func() any {
	t := &chunkTask{}
	t.fn = func(lo, hi int) { gammaRange(t.g, t.h, t.w, t.base, lo, hi) }
	return t
}}

var quadTasks = &sync.Pool{New: func() any {
	t := &chunkTask{}
	t.fn = func(lo, hi int) { quadRange(t.dst, t.g, t.gv, t.h, t.scale, t.base, lo, hi) }
	return t
}}

// gammaRange rewrites rows [lo, hi) of the block-local product g in
// place: g_ik ← w_i (g_ik − α_i) h_ik with α_i = Σ_k g_ik h_ik. h and w
// are globally indexed at base+i.
//
//firal:hotpath
func gammaRange(g, h *mat.Dense, w []float64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		gr := g.Row(i)
		hr := h.Row(base + i)
		alpha := mat.Dot(gr, hr)
		wi := 1.0
		if w != nil {
			wi = w[base+i]
		}
		for k := range gr {
			gr[k] = wi * (gr[k] - alpha) * hr[k]
		}
	}
}

// PointMatVec computes dst = H_i v for a single point using the four-step
// procedure after Lemma 2 (❶ γ ← Vᵀx, ❷ α ← γᵀh, ❸ γ ← (γ−α)⊙h,
// ❹ dst ← vec(γ ⊗ x)).
func PointMatVec(dst []float64, x, h, v []float64) []float64 {
	d, c := len(x), len(h)
	if dst == nil {
		dst = make([]float64, d*c)
	}
	gamma := make([]float64, c)
	for k := 0; k < c; k++ {
		gamma[k] = mat.Dot(v[k*d:(k+1)*d], x)
	}
	alpha := mat.Dot(gamma, h)
	for k := 0; k < c; k++ {
		gk := (gamma[k] - alpha) * h[k]
		out := dst[k*d : (k+1)*d]
		for j, xj := range x {
			out[j] = gk * xj
		}
	}
	return dst
}

// QuadAccum adds scale · (uᵀ H_i v) to dst[i] for every point i. This is
// the inner kernel of the gradient estimator (Eq. 12):
// g_i ≈ −(1/s) Σ_j v_jᵀ H_i w_j accumulates with scale = −1/s.
func (s *Set) QuadAccum(dst []float64, u, v []float64, scale float64) {
	s.QuadAccumWS(nil, dst, u, v, scale)
}

// QuadAccumWS is QuadAccum with the per-block scratch products drawn
// from ws (see MatVecWS for the workspace and blocking contract).
//
//firal:hotpath
func (s *Set) QuadAccumWS(ws *mat.Workspace, dst []float64, u, v []float64, scale float64) {
	poolQuadAccumWS(ws, s, dst, u, v, scale)
}

// quadRange accumulates dst[base+i] += scale·uᵀH_{base+i}v for block-local
// rows [lo, hi) of the products gu, gv; h and dst are globally indexed.
//
//firal:hotpath
func quadRange(dst []float64, gu, gv, h *mat.Dense, scale float64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		hu := gu.Row(i)
		hv := gv.Row(i)
		hr := h.Row(base + i)
		alpha := mat.Dot(hv, hr)
		var q float64
		for k := range hr {
			q += (hv[k] - alpha) * hr[k] * hu[k]
		}
		dst[base+i] += scale * q
	}
}

// GammaCol writes γ_i = h_ik (1 − h_ik) for class k into dst (allocated if
// nil) — the per-class curvature weights of Eq. 15.
//
//firal:hotpath
func (s *Set) GammaCol(dst []float64, k int) []float64 {
	n := s.N()
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		h := s.H.At(i, k)
		dst[i] = h * (1 - h)
	}
	return dst
}

// BlockDiagSum computes the c diagonal blocks of Σ_i w_i H_i (Eq. 14):
// block k = Σ_i w_i h_ik(1−h_ik) x_i x_iᵀ. A nil w means unit weights.
func (s *Set) BlockDiagSum(w []float64) []*mat.Dense {
	return s.BlockDiagSumInto(nil, nil, w)
}

// BlockDiagSumInto is BlockDiagSum writing into the given d×d blocks
// (allocated when blocks is nil) with scratch drawn from ws, so callers
// that rebuild the blocks every iteration (the RELAX preconditioner, the
// distributed allreduce) reuse one set of buffers round to round.
//
//firal:hotpath
func (s *Set) BlockDiagSumInto(ws *mat.Workspace, blocks []*mat.Dense, w []float64) []*mat.Dense {
	return poolBlockDiagSumInto(ws, s, blocks, w)
}

// AddBlockDiagPoint adds γ_k x xᵀ to each block (γ_k = h_k(1−h_k)),
// optionally scaled — the per-point block-diagonal update of Algorithm 3,
// line 8.
//
//firal:hotpath
func AddBlockDiagPoint(blocks []*mat.Dense, x, h []float64, scale float64) {
	for k, b := range blocks {
		g := scale * h[k] * (1 - h[k])
		if g != 0 {
			b.AddOuter(g, x)
		}
	}
}
