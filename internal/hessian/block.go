package hessian

import (
	"repro/internal/mat"
	"repro/internal/parallel"
)

// This file holds the multi-RHS forms of the blocked pool kernels: one
// pool sweep serves a whole block of s vectors. They exist for the
// block-CG RELAX path (krylov.SolveBlockInto), where the per-column forms
// would decode a streamed pool once per probe column per CG iteration —
// s·k full sweeps — while the block forms decode it once per iteration.
//
// Vector blocks are held transposed, matching krylov.BlockOp: an s×(d·c)
// row-major matrix whose row j is the j-th vec-layout vector, so each
// vector is contiguous and feeds the same per-vector kernels
// (gammaRange/quadRange and the GEMM engines) as the single-RHS paths.
// For every column the arithmetic — scratch shapes, kernel order, and
// block accumulation — is identical to s sequential calls of the
// per-column kernel, so results match MatVecWS/QuadAccumWS bit for bit;
// only the pool visit order changes (blocks outermost, columns inner).

// checkBlockShapes validates a transposed vector block against the pool.
func checkBlockShapes(p Pool, vs ...*mat.Dense) {
	ed := p.Ed()
	for _, v := range vs {
		if v.Cols != ed {
			panic("hessian: block vector has wrong length")
		}
		if v.Rows != vs[0].Rows {
			panic("hessian: block column count mismatch")
		}
	}
}

// MatVecBlockWS computes dst_j = Σ_i w_i H_i v_j for all s vectors of the
// transposed block v (s×ẽd, row j = vector j) in ONE sweep over the
// pool: every row block obtained from Pool.Block — for a streamed source,
// every decode — updates all s outputs before the next block is read.
// A nil w means unit weights. Scratch comes from ws; a warm workspace
// makes the call allocation-free. Column results are bit-for-bit equal to
// s calls of Pool.MatVecWS.
//
//firal:hotpath
func MatVecBlockWS(ws *mat.Workspace, p Pool, dst, v *mat.Dense, w []float64) {
	checkBlockShapes(p, dst, v)
	s := v.Rows
	n, d, c := p.N(), p.D(), p.C()
	if n == 0 {
		// An empty pool (e.g. a rank whose partition is empty when ranks
		// exceed pool rows) contributes a zero sum; without this the
		// single-block path would leave stale data in dst.
		dst.Zero()
		return
	}
	h := p.Probs()
	bs := p.BlockRows()
	single := bs >= n
	var acc *mat.Dense
	if !single {
		dst.Zero()
		acc = ws.Matrix(c, d)
	}
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		m := hi - lo
		xb := p.Block(ws, lo, hi)
		g := ws.Matrix(m, c)
		for j := 0; j < s; j++ {
			vt := ws.View(v.Row(j), c, d)
			dt := ws.View(dst.Row(j), c, d)
			mat.MulTransB(g, xb, vt) // m×c: x_iᵀ v_k
			if parallel.Serial(m) {
				gammaRange(g, h, w, lo, 0, m)
			} else {
				t := gammaTasks.Get().(*chunkTask)
				t.g, t.h, t.w, t.base = g, h, w, lo
				parallel.ForChunk(m, t.fn)
				t.put(gammaTasks)
			}
			if single {
				mat.MulTransA(dt, g, xb) // c×d: row k = Σ_i Γ_ik x_iᵀ
			} else {
				mat.MulTransA(acc, g, xb)
				dt.AddScaled(1, acc)
			}
			ws.PutView(dt)
			ws.PutView(vt)
		}
		ws.PutMatrix(g)
		p.PutBlock(ws, xb)
	}
	if acc != nil {
		ws.PutMatrix(acc)
	}
}

// QuadAccumBlockWS adds scale·(u_jᵀ H_i v_j), summed over all s columns
// of the transposed blocks u and v (s×ẽd, row j = vector j), to dst[i]
// for every pool point i — the whole Eq. 12 gradient accumulation in ONE
// pool sweep instead of one sweep per probe. For each point the per-probe
// contributions land in ascending j order, exactly as s sequential
// Pool.QuadAccumWS sweeps would order them, so the result is bit-for-bit
// identical.
//
//firal:hotpath
func QuadAccumBlockWS(ws *mat.Workspace, p Pool, dst []float64, u, v *mat.Dense, scale float64) {
	checkBlockShapes(p, u, v)
	s := u.Rows
	n, d, c := p.N(), p.D(), p.C()
	if len(dst) != n {
		panic("hessian: QuadAccum dst length mismatch")
	}
	h := p.Probs()
	bs := p.BlockRows()
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		m := hi - lo
		xb := p.Block(ws, lo, hi)
		gu := ws.Matrix(m, c)
		gv := ws.Matrix(m, c)
		for j := 0; j < s; j++ {
			ut := ws.View(u.Row(j), c, d)
			vt := ws.View(v.Row(j), c, d)
			mat.MulTransB(gu, xb, ut) // m×c: x_iᵀ u_k
			mat.MulTransB(gv, xb, vt) // m×c: x_iᵀ v_k
			if parallel.Serial(m) {
				quadRange(dst, gu, gv, h, scale, lo, 0, m)
			} else {
				t := quadTasks.Get().(*chunkTask)
				t.dst, t.g, t.gv, t.h, t.scale, t.base = dst, gu, gv, h, scale, lo
				parallel.ForChunk(m, t.fn)
				t.put(quadTasks)
			}
			ws.PutView(vt)
			ws.PutView(ut)
		}
		ws.PutMatrix(gv)
		ws.PutMatrix(gu)
		p.PutBlock(ws, xb)
	}
}
