package hessian

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rnd"
)

// skipUnderRace skips allocation-count assertions when the race detector
// is compiled in: its instrumentation allocates.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
}

func allocSet(n, d, c int) *Set {
	x := mat.NewDense(n, d)
	h := mat.NewDense(n, c)
	rng := rnd.New(9)
	rng.Normal(x.Data, 0, 1)
	for i := 0; i < n; i++ {
		row := h.Row(i)
		var sum float64
		for k := range row {
			row[k] = 0.1 + float64(k%3)
			sum += row[k]
		}
		for k := range row {
			row[k] /= sum * 1.5 // interior, sums below 1 (reduced classes)
		}
	}
	return NewSet(x, h)
}

// TestMatVecWSZeroAlloc pins the steady-state allocation behaviour of the
// Lemma-2 fast matvec with a warm Workspace: after the first call, none.
func TestMatVecWSZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s := allocSet(300, 24, 7)
	ws := mat.NewWorkspace()
	v := make([]float64, s.Ed())
	dst := make([]float64, s.Ed())
	w := make([]float64, s.N())
	rnd.New(3).Normal(v, 0, 1)
	mat.Fill(w, 0.5)
	if allocs := testing.AllocsPerRun(50, func() {
		s.MatVecWS(ws, dst, v, w)
	}); allocs != 0 {
		t.Fatalf("MatVecWS allocates %.1f objects per call with a warm workspace", allocs)
	}
}

func TestQuadAccumWSZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s := allocSet(300, 24, 7)
	ws := mat.NewWorkspace()
	u := make([]float64, s.Ed())
	v := make([]float64, s.Ed())
	dst := make([]float64, s.N())
	rnd.New(4).Normal(u, 0, 1)
	rnd.New(5).Normal(v, 0, 1)
	if allocs := testing.AllocsPerRun(50, func() {
		s.QuadAccumWS(ws, dst, u, v, -0.1)
	}); allocs != 0 {
		t.Fatalf("QuadAccumWS allocates %.1f objects per call with a warm workspace", allocs)
	}
}

// BenchmarkMatVecWS measures the Lemma-2 fast matvec with a warm
// workspace; -benchmem must report 0 allocs/op on any core count
// (the persistent worker pool dispatches without forking or allocating).
func BenchmarkMatVecWS(b *testing.B) {
	s := allocSet(2000, 64, 9)
	ws := mat.NewWorkspace()
	v := make([]float64, s.Ed())
	dst := make([]float64, s.Ed())
	w := make([]float64, s.N())
	rnd.New(3).Normal(v, 0, 1)
	mat.Fill(w, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatVecWS(ws, dst, v, w)
	}
}

func TestBlockDiagSumIntoZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s := allocSet(300, 24, 7)
	ws := mat.NewWorkspace()
	blocks := s.BlockDiagSumInto(ws, nil, nil)
	if allocs := testing.AllocsPerRun(50, func() {
		s.BlockDiagSumInto(ws, blocks, nil)
	}); allocs != 0 {
		t.Fatalf("BlockDiagSumInto allocates %.1f objects per call with reused blocks", allocs)
	}
}

// TestHessianKernelsZeroAllocMulticore re-pins the three workspace-backed
// kernels with four workers engaged: with the persistent worker pool and
// the pooled chunk tasks the parallel fan-out no longer costs O(workers)
// transient allocations per call — multicore is as clean as serial.
func TestHessianKernelsZeroAllocMulticore(t *testing.T) {
	skipUnderRace(t)
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	s := allocSet(2000, 64, 9)
	ws := mat.NewWorkspace()
	u := make([]float64, s.Ed())
	v := make([]float64, s.Ed())
	dst := make([]float64, s.Ed())
	g := make([]float64, s.N())
	w := make([]float64, s.N())
	rnd.New(3).Normal(u, 0, 1)
	rnd.New(4).Normal(v, 0, 1)
	mat.Fill(w, 0.5)
	blocks := s.BlockDiagSumInto(ws, nil, w)
	warmAndPin := func(name string, fn func()) {
		fn()
		if allocs := testing.AllocsPerRun(30, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per call at 4 workers", name, allocs)
		}
	}
	warmAndPin("MatVecWS", func() { s.MatVecWS(ws, dst, v, w) })
	warmAndPin("QuadAccumWS", func() { s.QuadAccumWS(ws, g, u, v, -0.1) })
	warmAndPin("BlockDiagSumInto", func() { s.BlockDiagSumInto(ws, blocks, w) })
}
