package hessian

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rnd"
)

// blockVectors draws a transposed s×ẽd vector block and its ẽd×s
// column-major twin with identical values.
func blockVectors(ed, s int, seed int64) (vt *mat.Dense, cols [][]float64) {
	vt = mat.NewDense(s, ed)
	rnd.New(seed).Normal(vt.Data, 0, 1)
	cols = make([][]float64, s)
	for j := range cols {
		cols[j] = append([]float64(nil), vt.Row(j)...)
	}
	return vt, cols
}

// streamPool rebuilds a resident Set as a block-streaming pool with the
// given block size.
func streamPool(s *Set, blockRows int) *Stream {
	return NewStream(dataset.NewMatrixSource(s.X), s.H, blockRows)
}

// TestMatVecBlockWSMatchesPerColumn pins the multi-RHS matvec contract:
// for resident pools and for streamed pools at ragged block sizes, every
// column of MatVecBlockWS is bit-for-bit identical to a per-column
// MatVecWS call.
func TestMatVecBlockWSMatchesPerColumn(t *testing.T) {
	set := allocSet(397, 13, 5) // 397 prime: ragged against every block size
	w := make([]float64, set.N())
	for i := range w {
		w[i] = 0.1 + float64(i%9)/9
	}
	const s = 6
	vt, cols := blockVectors(set.Ed(), s, 21)
	ws := mat.NewWorkspace()

	pools := []struct {
		name string
		p    Pool
	}{
		{"resident", set},
		{"stream_bs32", streamPool(set, 32)},
		{"stream_bs100", streamPool(set, 100)},
		{"stream_bs396", streamPool(set, 396)},
		{"stream_bs512", streamPool(set, 512)},
	}
	dst := mat.NewDense(s, set.Ed())
	for _, pc := range pools {
		// The oracle is the per-column kernel over the SAME pool: the
		// block form shares each pool visit across columns but must not
		// change a single column's arithmetic.
		want := make([][]float64, s)
		for j := 0; j < s; j++ {
			want[j] = pc.p.MatVecWS(ws, nil, cols[j], w)
		}
		MatVecBlockWS(ws, pc.p, dst, vt, w)
		for j := 0; j < s; j++ {
			for i, v := range dst.Row(j) {
				if v != want[j][i] {
					t.Fatalf("%s: column %d element %d = %g, per-column oracle %g",
						pc.name, j, i, v, want[j][i])
				}
			}
		}
		// nil weights too.
		MatVecBlockWS(ws, pc.p, dst, vt, nil)
		ref := pc.p.MatVecWS(ws, nil, cols[2], nil)
		for i, v := range dst.Row(2) {
			if v != ref[i] {
				t.Fatalf("%s nil-w: element %d = %g, oracle %g", pc.name, i, v, ref[i])
			}
		}
	}
}

// TestQuadAccumBlockWSMatchesPerColumn pins the multi-RHS gradient
// accumulation: one block sweep equals s sequential per-column sweeps bit
// for bit, resident and streamed.
func TestQuadAccumBlockWSMatchesPerColumn(t *testing.T) {
	set := allocSet(397, 13, 5)
	const s, scale = 6, -1.0 / 6
	ut, ucols := blockVectors(set.Ed(), s, 31)
	vt, vcols := blockVectors(set.Ed(), s, 32)
	ws := mat.NewWorkspace()

	for _, bs := range []int{0, 32, 100, 396, 512} {
		var p Pool = set
		name := "resident"
		if bs > 0 {
			p = streamPool(set, bs)
			name = "stream"
		}
		want := make([]float64, set.N())
		for j := 0; j < s; j++ {
			p.QuadAccumWS(ws, want, ucols[j], vcols[j], scale)
		}
		got := make([]float64, set.N())
		QuadAccumBlockWS(ws, p, got, ut, vt, scale)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s bs=%d: g[%d] = %g, per-column oracle %g", name, bs, i, got[i], want[i])
			}
		}
	}
}

// TestEmptyPoolKernelsWriteZeros pins the empty-partition contract: a
// pool with zero rows (a rank whose slice is empty when ranks exceed
// pool rows) contributes a ZERO sum — the kernels must overwrite stale
// destination data, not skip the write. Regression test: the blocked
// engines' single-block fast path used to leave dst/blocks untouched at
// n=0, so reused buffers (the CG scratch, the RELAX sigCache) leaked a
// previous iteration's values into the distributed allreduce.
func TestEmptyPoolKernelsWriteZeros(t *testing.T) {
	full := allocSet(10, 6, 3)
	empty := NewSet(mat.NewDense(0, 6), mat.NewDense(0, 3))
	emptyStream := NewStream(dataset.Subrange(dataset.NewMatrixSource(full.X), 3, 3), mat.NewDense(0, 3), 4)
	ws := mat.NewWorkspace()
	const s = 2
	for _, pc := range []struct {
		name string
		p    Pool
	}{{"set", empty}, {"stream", emptyStream}} {
		dst := make([]float64, pc.p.Ed())
		mat.Fill(dst, 7) // stale data from a previous iteration
		pc.p.MatVecWS(ws, dst, make([]float64, pc.p.Ed()), nil)
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("%s: MatVecWS left stale dst[%d] = %g on an empty pool", pc.name, i, v)
			}
		}
		bdst := mat.NewDense(s, pc.p.Ed())
		mat.Fill(bdst.Data, 7)
		MatVecBlockWS(ws, pc.p, bdst, mat.NewDense(s, pc.p.Ed()), nil)
		for i, v := range bdst.Data {
			if v != 0 {
				t.Fatalf("%s: MatVecBlockWS left stale dst[%d] = %g on an empty pool", pc.name, i, v)
			}
		}
		blocks := pc.p.BlockDiagSumInto(ws, nil, nil)
		for k := range blocks {
			mat.Fill(blocks[k].Data, 7)
		}
		blocks = pc.p.BlockDiagSumInto(ws, blocks, nil) // reuse, like the RELAX sigCache
		for k := range blocks {
			for i, v := range blocks[k].Data {
				if v != 0 {
					t.Fatalf("%s: BlockDiagSumInto left stale block %d[%d] = %g on an empty pool", pc.name, k, i, v)
				}
			}
		}
		// QuadAccum destinations are length n = 0: nothing to check beyond
		// not panicking.
		pc.p.QuadAccumWS(ws, nil, make([]float64, pc.p.Ed()), make([]float64, pc.p.Ed()), 1)
	}
}

// TestBlockKernelsZeroAllocWarm pins the serial steady state of the
// multi-RHS kernels: with a warm workspace, one block sweep over resident
// and streamed pools allocates nothing.
func TestBlockKernelsZeroAllocWarm(t *testing.T) {
	skipUnderRace(t)
	set := allocSet(300, 24, 7)
	const s = 5
	vt, _ := blockVectors(set.Ed(), s, 41)
	ut, _ := blockVectors(set.Ed(), s, 42)
	dst := mat.NewDense(s, set.Ed())
	g := make([]float64, set.N())
	w := make([]float64, set.N())
	mat.Fill(w, 0.5)
	for _, pc := range []struct {
		name string
		p    Pool
	}{{"resident", set}, {"streamed", streamPool(set, 64)}} {
		ws := mat.NewWorkspace()
		warmAndPin := func(name string, fn func()) {
			fn()
			if allocs := testing.AllocsPerRun(30, fn); allocs != 0 {
				t.Errorf("%s/%s allocates %.1f objects per sweep with a warm workspace", pc.name, name, allocs)
			}
		}
		warmAndPin("MatVecBlockWS", func() { MatVecBlockWS(ws, pc.p, dst, vt, w) })
		warmAndPin("QuadAccumBlockWS", func() { QuadAccumBlockWS(ws, pc.p, g, ut, vt, -0.2) })
	}
}

// TestBlockKernelsZeroAllocMulticore re-pins the multi-RHS kernels with
// four workers engaged: the pooled chunk tasks keep the parallel fan-out
// allocation-free, exactly as for the per-column kernels.
func TestBlockKernelsZeroAllocMulticore(t *testing.T) {
	skipUnderRace(t)
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	set := allocSet(2000, 64, 9)
	const s = 4
	vt, _ := blockVectors(set.Ed(), s, 51)
	ut, _ := blockVectors(set.Ed(), s, 52)
	dst := mat.NewDense(s, set.Ed())
	g := make([]float64, set.N())
	w := make([]float64, set.N())
	mat.Fill(w, 0.5)
	ws := mat.NewWorkspace()
	warmAndPin := func(name string, fn func()) {
		fn()
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per sweep at 4 workers", name, allocs)
		}
	}
	warmAndPin("MatVecBlockWS", func() { MatVecBlockWS(ws, set, dst, vt, w) })
	warmAndPin("QuadAccumBlockWS", func() { QuadAccumBlockWS(ws, set, g, ut, vt, -0.25) })
	st := streamPool(set, 512)
	warmAndPin("MatVecBlockWS/stream", func() { MatVecBlockWS(ws, st, dst, vt, w) })
	warmAndPin("QuadAccumBlockWS/stream", func() { QuadAccumBlockWS(ws, st, g, ut, vt, -0.25) })
}
