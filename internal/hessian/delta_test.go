package hessian

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// TestBlockDiagAccumRangeMatchesFullSweep is the delta-pass oracle: a
// base accumulation over [0, split) plus a delta accumulation over
// [split, n) must reproduce the full BlockDiagSumInto sweep exactly,
// for splits landing inside, on, and across block boundaries of both a
// resident Set and a streamed pool.
func TestBlockDiagAccumRangeMatchesFullSweep(t *testing.T) {
	const n, d, c = 997, 11, 4
	set, w := streamTestData(17, n, d, c)
	ws := mat.NewWorkspace()
	want := set.BlockDiagSumInto(ws, nil, w)

	pools := map[string]Pool{
		"set":       set,
		"stream64":  NewStream(dataset.NewMatrixSource(set.X), set.H, 64),
		"stream997": NewStream(dataset.NewMatrixSource(set.X), set.H, 997),
	}
	for name, p := range pools {
		for _, split := range []int{0, 1, 63, 64, 65, 500, 996, n} {
			got := make([]*mat.Dense, c)
			for k := range got {
				got[k] = mat.NewDense(d, d)
			}
			BlockDiagAccumRange(ws, p, got, w, 0, split, 1)
			BlockDiagAccumRange(ws, p, got, w, split, n, 1)
			for k := 0; k < c; k++ {
				if diff := mat.MaxAbsDiff(got[k], want[k]); diff > 1e-10 {
					t.Errorf("%s split=%d class %d: base+delta diverges from full sweep by %g",
						name, split, k, diff)
				}
			}
		}
	}
}

// TestBlockDiagAccumRangeScale pins the scale argument: accumulating a
// range at scale s must equal scaling the weights by s, which is how the
// simplex reprojection folds its (1−α) shrink into the same pass.
func TestBlockDiagAccumRangeScale(t *testing.T) {
	const n, d, c = 100, 7, 3
	set, w := streamTestData(23, n, d, c)
	ws := mat.NewWorkspace()

	scaled := make([]float64, n)
	for i := range w {
		scaled[i] = 0.375 * w[i]
	}
	want := set.BlockDiagSumInto(ws, nil, scaled)

	got := make([]*mat.Dense, c)
	for k := range got {
		got[k] = mat.NewDense(d, d)
	}
	BlockDiagAccumRange(ws, set, got, w, 0, n, 0.375)
	for k := 0; k < c; k++ {
		if diff := mat.MaxAbsDiff(got[k], want[k]); diff > 1e-10 {
			t.Errorf("class %d: scaled accumulation diverges by %g", k, diff)
		}
	}

	// scale == 0 and an empty window are no-ops.
	BlockDiagAccumRange(ws, set, got, w, 0, n, 0)
	BlockDiagAccumRange(ws, set, got, w, 40, 40, 1)
	for k := 0; k < c; k++ {
		if diff := mat.MaxAbsDiff(got[k], want[k]); diff != 0 {
			t.Errorf("class %d: no-op accumulation mutated blocks by %g", k, diff)
		}
	}
}

// TestBlockDiagAccumRangeZeroAlloc pins the delta pass at zero
// allocations with a warm workspace — the incremental-round budget is
// O(Δn) work and no garbage, serial and at four workers.
func TestBlockDiagAccumRangeZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s := allocSet(2000, 64, 9)
	w := make([]float64, s.N())
	mat.Fill(w, 0.5)
	ws := mat.NewWorkspace()
	blocks := s.BlockDiagSumInto(ws, nil, w)
	BlockDiagAccumRange(ws, s, blocks, w, 1900, 2000, 1)
	if allocs := testing.AllocsPerRun(50, func() {
		BlockDiagAccumRange(ws, s, blocks, w, 1900, 2000, 1)
	}); allocs != 0 {
		t.Errorf("BlockDiagAccumRange allocates %.1f objects per call with a warm workspace", allocs)
	}

	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	BlockDiagAccumRange(ws, s, blocks, w, 1900, 2000, 1)
	if allocs := testing.AllocsPerRun(30, func() {
		BlockDiagAccumRange(ws, s, blocks, w, 1900, 2000, 1)
	}); allocs != 0 {
		t.Errorf("BlockDiagAccumRange allocates %.1f objects per call at 4 workers", allocs)
	}
}
