package hessian

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/rnd"
)

// streamTestData builds a random Set plus weights with awkward shapes.
func streamTestData(seed int64, n, d, c int) (*Set, []float64) {
	rng := rnd.New(seed)
	x := mat.NewDense(n, d)
	rng.Normal(x.Data, 0, 1)
	h := mat.NewDense(n, c)
	for i := 0; i < n; i++ {
		row := h.Row(i)
		var sum float64
		for k := range row {
			row[k] = 0.05 + rng.Float64()
			sum += row[k]
		}
		for k := range row {
			row[k] /= sum * 1.1 // interior probabilities, off the simplex boundary
		}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	return NewSet(x, h), w
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestStreamMatchesSetOracle is the block-boundary property test: for
// ragged n not divisible by the block size (and block sizes bracketing
// n), every blocked kernel over a Stream must match the resident Set
// oracle to summation-order tolerance — including MatVec accumulation
// across blocks, the globally-indexed gradient accumulation, and the Gram
// block accumulation.
func TestStreamMatchesSetOracle(t *testing.T) {
	const n, d, c = 997, 11, 4 // 997 is prime: ragged against every block size
	set, w := streamTestData(5, n, d, c)
	rng := rnd.New(6)
	v := make([]float64, d*c)
	u := make([]float64, d*c)
	rng.Normal(v, 0, 1)
	rng.Normal(u, 0, 1)

	wantMV := set.MatVec(nil, v, w)
	wantQuad := make([]float64, n)
	set.QuadAccum(wantQuad, u, v, -0.5)
	wantBlocks := set.BlockDiagSum(w)

	for _, bs := range []int{1, 16, 64, 996, 997, 1024} {
		stream := NewStream(dataset.NewMatrixSource(set.X), set.H, bs)
		ws := mat.NewWorkspace()

		gotMV := stream.MatVecWS(ws, nil, v, w)
		if diff := maxAbsDiff(gotMV, wantMV); diff > 1e-10 {
			t.Errorf("bs=%d: MatVec diverges from resident oracle by %g", bs, diff)
		}
		gotQuad := make([]float64, n)
		stream.QuadAccumWS(ws, gotQuad, u, v, -0.5)
		if diff := maxAbsDiff(gotQuad, wantQuad); diff > 1e-10 {
			t.Errorf("bs=%d: QuadAccum diverges from resident oracle by %g", bs, diff)
		}
		gotBlocks := stream.BlockDiagSumInto(ws, nil, w)
		for k := range wantBlocks {
			if diff := maxAbsDiff(gotBlocks[k].Data, wantBlocks[k].Data); diff > 1e-9 {
				t.Errorf("bs=%d: Gram block %d diverges by %g", bs, k, diff)
			}
		}
	}
}

// TestResidentSetCrossesBlockBoundary pins the resident Set's own blocked
// path: a pool larger than the default block size must agree with a
// single-block sweep of the same data.
func TestResidentSetCrossesBlockBoundary(t *testing.T) {
	n := dataset.DefaultBlockRows + 173 // forces two blocks, ragged tail
	set, w := streamTestData(7, n, 6, 3)
	rng := rnd.New(8)
	v := make([]float64, set.Ed())
	rng.Normal(v, 0, 1)

	// Single-block oracle: the same engine with blockRows ≥ n.
	oracle := NewStream(dataset.NewMatrixSource(set.X), set.H, n)
	want := oracle.MatVecWS(nil, nil, v, w)
	got := set.MatVec(nil, v, w)
	if diff := maxAbsDiff(got, want); diff > 1e-10 {
		t.Fatalf("resident multi-block MatVec diverges from single-block oracle by %g", diff)
	}
	wantQ := make([]float64, n)
	gotQ := make([]float64, n)
	oracle.QuadAccumWS(nil, wantQ, v, v, 1)
	set.QuadAccum(gotQ, v, v, 1)
	if diff := maxAbsDiff(gotQ, wantQ); diff > 1e-10 {
		t.Fatalf("resident multi-block QuadAccum diverges by %g", diff)
	}
	wb := oracle.BlockDiagSumInto(nil, nil, w)
	gb := set.BlockDiagSum(w)
	for k := range wb {
		if diff := maxAbsDiff(gb[k].Data, wb[k].Data); diff > 1e-9 {
			t.Fatalf("resident multi-block Gram block %d diverges by %g", k, diff)
		}
	}
}

// TestStreamShardMatchesRoundedResident checks the full out-of-core path:
// a Stream over mmap'd float32 shards must match a resident Set built
// from the float32-rounded values bit-for-bit.
func TestStreamShardMatchesRoundedResident(t *testing.T) {
	const n, d, c = 301, 9, 3
	set, w := streamTestData(9, n, d, c)
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.shard"), filepath.Join(dir, "b.shard")}
	for s, span := range [][2]int{{0, 150}, {150, n}} {
		sw, err := dataset.CreateShard(paths[s], d)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.AppendBlock(set.X.RowSlice(span[0], span[1])); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	src, err := dataset.OpenShards(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Resident oracle over the rounded values.
	rounded := mat.NewDense(n, d)
	for i := range rounded.Data {
		rounded.Data[i] = float64(float32(set.X.Data[i]))
	}
	oracle := NewSet(rounded, set.H)

	stream := NewStream(src, set.H, 64)
	v := make([]float64, d*c)
	rnd.New(10).Normal(v, 0, 1)
	want := oracle.MatVec(nil, v, w)
	got := stream.MatVecWS(nil, nil, v, w)
	if diff := maxAbsDiff(got, want); diff > 1e-10 {
		t.Fatalf("shard stream MatVec diverges from rounded resident oracle by %g", diff)
	}
}

// TestStreamZeroAllocWarm pins the streaming paths' steady-state
// allocation behaviour: with a warm workspace, both the zero-copy
// in-memory source and the decode-into-scratch shard source run the
// blocked kernels at 0 allocs/op.
func TestStreamZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const n, d, c = 530, 8, 3
	set, w := streamTestData(11, n, d, c)

	shardPath := filepath.Join(t.TempDir(), "pool.shard")
	sw, err := dataset.CreateShard(shardPath, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendBlock(set.X); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	shards, err := dataset.OpenShards(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()

	v := make([]float64, d*c)
	rnd.New(12).Normal(v, 0, 1)
	dst := make([]float64, d*c)
	quad := make([]float64, n)
	for _, tc := range []struct {
		name string
		src  dataset.PoolSource
	}{
		{"in-memory", dataset.NewMatrixSource(set.X)},
		{"mmap-shard", shards},
	} {
		stream := NewStream(tc.src, set.H, 128) // multi-block with ragged tail
		ws := mat.NewWorkspace()
		var blocks []*mat.Dense
		iter := func() {
			stream.MatVecWS(ws, dst, v, w)
			stream.QuadAccumWS(ws, quad, v, v, 0.5)
			blocks = stream.BlockDiagSumInto(ws, blocks, w)
		}
		iter() // warm the workspace and block scratch
		if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
			t.Errorf("%s: blocked kernels allocate %.1f objects per sweep with a warm workspace", tc.name, allocs)
		}
	}
}
