package hessian

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// Pool is the solver-facing view of a weighted point set: either the
// resident Set or the block-streaming Stream. Every kernel that used to
// sweep one resident n×d matrix — the Lemma-2 matvec, the Hutchinson
// gradient accumulation, the Eq. 14 Gram blocks, and the ROUND rescoring
// pass in internal/firal — instead visits the pool in contiguous row
// blocks obtained from Block/PutBlock, so an out-of-core pool (mmap'd
// float32 shards, CSV) flows through the same Workspace/worker-pool
// machinery as a resident one.
//
// Probabilities stay resident: the n×c probability matrix is a factor d/c
// smaller than the features and the solvers index it per row (the mirror
// step, the argmax winner, the per-class γ weights), so only the O(n·d)
// feature side streams.
type Pool interface {
	// N, D, C, Ed give the pool shape (points, features, classes, d·c).
	N() int
	D() int
	C() int
	Ed() int
	// Probs returns the resident n×c probability matrix.
	Probs() *mat.Dense
	// Row returns feature row i, using buf (length ≥ D()) as scratch when
	// the row must be fetched; resident pools return a view and ignore
	// buf. The result is only valid until the next Row call with the same
	// buf.
	Row(i int, buf []float64) []float64
	// BlockRows is the row-block granularity Block serves.
	BlockRows() int
	// Block returns feature rows [lo, hi) as a matrix, drawing any header
	// or copy scratch from ws; release it with PutBlock. Resident pools
	// return a zero-copy view. Sources are expected to fail at open time
	// (see dataset.PoolSource); a read failure mid-sweep panics.
	Block(ws *mat.Workspace, lo, hi int) *mat.Dense
	// PutBlock releases a matrix obtained from Block.
	PutBlock(ws *mat.Workspace, b *mat.Dense)
	// MatVecWS computes dst = Σ_i w_i H_i v (Lemma 2); see Set.MatVec.
	MatVecWS(ws *mat.Workspace, dst, v, w []float64) []float64
	// QuadAccumWS adds scale·(uᵀH_i v) to dst[i] for every point.
	QuadAccumWS(ws *mat.Workspace, dst []float64, u, v []float64, scale float64)
	// BlockDiagSumInto computes the c diagonal d×d blocks of Σ_i w_i H_i.
	BlockDiagSumInto(ws *mat.Workspace, blocks []*mat.Dense, w []float64) []*mat.Dense
}

// Set implements Pool with resident storage.

// Probs returns the resident probability matrix H.
func (s *Set) Probs() *mat.Dense { return s.H }

// Row returns feature row i (a view; buf is ignored).
func (s *Set) Row(i int, buf []float64) []float64 { return s.X.Row(i) }

// BlockRows returns the default block granularity; every pool smaller
// than it (all the paper-table configs that fit in RAM) is served as one
// block, which keeps the resident fast paths on their historical
// single-sweep behaviour.
func (s *Set) BlockRows() int { return dataset.DefaultBlockRows }

// Block returns rows [lo, hi) of X as a zero-copy view when X is compact
// (the overwhelmingly common case), or copied into workspace scratch.
func (s *Set) Block(ws *mat.Workspace, lo, hi int) *mat.Dense {
	if s.X.Stride == s.X.Cols {
		return ws.View(s.X.Data[lo*s.X.Cols:hi*s.X.Cols], hi-lo, s.X.Cols)
	}
	b := ws.Matrix(hi-lo, s.X.Cols)
	for i := lo; i < hi; i++ {
		copy(b.Row(i-lo), s.X.Row(i))
	}
	return b
}

// PutBlock releases a block obtained from Block.
func (s *Set) PutBlock(ws *mat.Workspace, b *mat.Dense) {
	if s.X.Stride == s.X.Cols {
		ws.PutView(b)
	} else {
		ws.PutMatrix(b)
	}
}

// Stream is the block-streaming Pool: features come from a
// dataset.PoolSource block by block while the probability rows stay
// resident. It is how selection scales past resident pools — an mmap'd
// float32 shard set or a CSV file feeds the same solver kernels as an
// in-memory matrix, with scratch bounded by one row block.
//
// Like Set, a Stream is read-only after construction and may be shared by
// goroutines that each bring their own Workspace, provided the source's
// ReadRows is concurrency-safe (all dataset sources are).
type Stream struct {
	src       dataset.PoolSource
	res       dataset.Resident    // non-nil: zero-copy fast path
	lend      dataset.BlockLender // non-nil: prefetching zero-copy handoff
	h         *mat.Dense
	blockRows int
}

// NewStream builds a streaming pool over src with resident reduced
// probabilities probs (n×c, one row per source row — see ReduceProbs).
// blockRows ≤ 0 selects dataset.DefaultBlockRows.
func NewStream(src dataset.PoolSource, probs *mat.Dense, blockRows int) *Stream {
	if probs.Rows != src.NumRows() {
		panic(fmt.Sprintf("hessian: stream has %d probability rows for %d source rows",
			probs.Rows, src.NumRows()))
	}
	if blockRows <= 0 {
		blockRows = dataset.DefaultBlockRows
	}
	res, _ := src.(dataset.Resident)
	lend, _ := src.(dataset.BlockLender)
	return &Stream{src: src, res: res, lend: lend, h: probs, blockRows: blockRows}
}

// Source returns the underlying PoolSource.
func (st *Stream) Source() dataset.PoolSource { return st.src }

// N returns the number of points.
func (st *Stream) N() int { return st.src.NumRows() }

// D returns the feature dimension.
func (st *Stream) D() int { return st.src.Dim() }

// C returns the number of classes.
func (st *Stream) C() int { return st.h.Cols }

// Ed returns the Fisher dimension d·c.
func (st *Stream) Ed() int { return st.D() * st.C() }

// Probs returns the resident probability matrix.
func (st *Stream) Probs() *mat.Dense { return st.h }

// BlockRows returns the configured block granularity.
func (st *Stream) BlockRows() int { return st.blockRows }

// Row fetches feature row i into buf (resident sources return a view).
func (st *Stream) Row(i int, buf []float64) []float64 {
	if st.res != nil {
		return st.res.ResidentRows(i, i+1)
	}
	d := st.D()
	if len(buf) < d {
		buf = make([]float64, d)
	}
	tmp := mat.Dense{Rows: 1, Cols: d, Stride: d, Data: buf[:d]}
	if err := st.src.ReadRows(i, i+1, &tmp); err != nil {
		panic(fmt.Sprintf("hessian: pool source read failed: %v", err))
	}
	return buf[:d]
}

// Block returns rows [lo, hi): a zero-copy view for resident sources, a
// borrowed prefetch buffer for lending sources (dataset.BlockLender —
// the async read-ahead path, where the block's decode already ran under
// the previous block's kernels), otherwise decoded into workspace
// scratch.
func (st *Stream) Block(ws *mat.Workspace, lo, hi int) *mat.Dense {
	if st.res != nil {
		return ws.View(st.res.ResidentRows(lo, hi), hi-lo, st.D())
	}
	if st.lend != nil {
		b, err := st.lend.LendBlock(lo, hi)
		if err != nil {
			panic(fmt.Sprintf("hessian: pool source read failed: %v", err))
		}
		return b
	}
	b := ws.Matrix(hi-lo, st.D())
	if err := st.src.ReadRows(lo, hi, b); err != nil {
		panic(fmt.Sprintf("hessian: pool source read failed: %v", err))
	}
	return b
}

// PutBlock releases a block obtained from Block. For a lending source
// this is what frees a prefetch buffer for the next read-ahead, so the
// blocked engines' lend-compute-return rhythm must hold (it does: every
// consumer releases block k before requesting block k+1).
func (st *Stream) PutBlock(ws *mat.Workspace, b *mat.Dense) {
	if st.res != nil {
		ws.PutView(b)
	} else if st.lend != nil {
		st.lend.ReturnBlock(b)
	} else {
		ws.PutMatrix(b)
	}
}

// MatVecWS computes dst = Σ_i w_i H_i v block by block (see Set.MatVec).
func (st *Stream) MatVecWS(ws *mat.Workspace, dst, v, w []float64) []float64 {
	return poolMatVecWS(ws, st, dst, v, w)
}

// QuadAccumWS adds scale·(uᵀH_i v) to dst[i] for every point, block by
// block (see Set.QuadAccum).
func (st *Stream) QuadAccumWS(ws *mat.Workspace, dst []float64, u, v []float64, scale float64) {
	poolQuadAccumWS(ws, st, dst, u, v, scale)
}

// BlockDiagSumInto computes the Eq. 14 diagonal blocks block by block
// (see Set.BlockDiagSum).
func (st *Stream) BlockDiagSumInto(ws *mat.Workspace, blocks []*mat.Dense, w []float64) []*mat.Dense {
	return poolBlockDiagSumInto(ws, st, blocks, w)
}

// poolMatVecWS is the per-column form of the blocked Lemma-2 matvec: it
// wraps the single vector as a one-row transposed block and delegates to
// MatVecBlockWS, so the single/multi-block accumulator logic exists once.
// A pool that fits one block (n ≤ BlockRows, every test-scale config)
// takes the direct path with no accumulator, reproducing the historical
// resident kernel exactly.
func poolMatVecWS(ws *mat.Workspace, p Pool, dst, v, w []float64) []float64 {
	d, c := p.D(), p.C()
	if dst == nil {
		dst = make([]float64, d*c)
	}
	if len(v) != d*c {
		panic("hessian: vector has wrong length")
	}
	dt := ws.View(dst, 1, d*c)
	vt := ws.View(v, 1, d*c)
	MatVecBlockWS(ws, p, dt, vt, w)
	ws.PutView(vt)
	ws.PutView(dt)
	return dst
}

// poolQuadAccumWS is the per-column form of the blocked
// gradient-estimator engine; see poolMatVecWS for the delegation.
func poolQuadAccumWS(ws *mat.Workspace, p Pool, dst []float64, u, v []float64, scale float64) {
	d, c := p.D(), p.C()
	if len(dst) != p.N() {
		panic("hessian: QuadAccum dst length mismatch")
	}
	if len(u) != d*c || len(v) != d*c {
		panic("hessian: vector has wrong length")
	}
	ut := ws.View(u, 1, d*c)
	vt := ws.View(v, 1, d*c)
	QuadAccumBlockWS(ws, p, dst, ut, vt, scale)
	ws.PutView(vt)
	ws.PutView(ut)
}

// poolBlockDiagSumInto is the blocked Eq. 14 Gram engine shared by Set
// and Stream. Blocks are visited outermost so a streamed source is read
// once per call, with all c class Grams accumulated per visit.
func poolBlockDiagSumInto(ws *mat.Workspace, p Pool, blocks []*mat.Dense, w []float64) []*mat.Dense {
	n, d, c := p.N(), p.D(), p.C()
	if blocks == nil {
		blocks = make([]*mat.Dense, c)
		for k := range blocks {
			blocks[k] = mat.NewDense(d, d)
		}
	} else if len(blocks) != c {
		panic("hessian: BlockDiagSumInto block count mismatch")
	}
	if n == 0 {
		// Empty pool partition: the sum is zero, and reused blocks (the
		// RELAX sigCache) must not keep a previous iteration's values.
		for k := range blocks {
			blocks[k].Zero()
		}
		return blocks
	}
	h := p.Probs()
	bs := p.BlockRows()
	single := bs >= n
	var acc *mat.Dense
	if !single {
		for k := range blocks {
			blocks[k].Zero()
		}
		acc = ws.Matrix(d, d)
	}
	u := ws.Vec(min(bs, n))
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		m := hi - lo
		xb := p.Block(ws, lo, hi)
		for k := 0; k < c; k++ {
			for i := 0; i < m; i++ {
				wi := 1.0
				if w != nil {
					wi = w[lo+i]
				}
				hv := h.At(lo+i, k)
				u[i] = wi * hv * (1 - hv)
			}
			if single {
				mat.WeightedGramWS(ws, blocks[k], xb, u)
			} else {
				mat.WeightedGramWS(ws, acc, xb, u[:m])
				blocks[k].AddScaled(1, acc)
			}
		}
		p.PutBlock(ws, xb)
	}
	ws.PutVec(u)
	if acc != nil {
		ws.PutMatrix(acc)
	}
	return blocks
}
