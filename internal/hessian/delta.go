package hessian

import (
	"fmt"

	"repro/internal/mat"
)

// BlockDiagAccumRange adds scale·Σ_{i∈[lo,hi)} w_i H_i's diagonal d×d
// class blocks into blocks — the delta form of BlockDiagSumInto. An
// incremental round that appended Δn rows to a pool of n runs the
// probability/Fisher pass over just the appended window instead of
// re-sweeping all n+Δn rows:
//
//	BlockDiagAccumRange(ws, pool, sig, w, n, n+Δn, 1)
//
// costs O(Δn·d²·c) against the full pass's O((n+Δn)·d²·c). With w == nil
// every row weighs 1; scale multiplies the whole contribution, which is
// how a reprojection that shrinks old z-mass by (1−α) folds the rescale
// and the delta into one accumulation sequence.
//
// blocks must hold exactly C() matrices of shape d×d and is never
// zeroed — callers own the base state. Warm calls perform no allocation:
// all scratch (the block decode, the per-row weight vector, the Gram
// accumulator) comes from ws.
//
//firal:hotpath
func BlockDiagAccumRange(ws *mat.Workspace, p Pool, blocks []*mat.Dense, w []float64, lo, hi int, scale float64) {
	n, d, c := p.N(), p.D(), p.C()
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("hessian: BlockDiagAccumRange window [%d, %d) out of range [0, %d)", lo, hi, n))
	}
	if len(blocks) != c {
		panic("hessian: BlockDiagAccumRange block count mismatch")
	}
	if lo == hi || scale == 0 {
		return
	}
	h := p.Probs()
	bs := p.BlockRows()
	acc := ws.Matrix(d, d)
	u := ws.Vec(min(bs, hi-lo))
	for blo := lo; blo < hi; blo += bs {
		bhi := min(blo+bs, hi)
		m := bhi - blo
		xb := p.Block(ws, blo, bhi)
		for k := 0; k < c; k++ {
			for i := 0; i < m; i++ {
				wi := scale
				if w != nil {
					wi = scale * w[blo+i]
				}
				hv := h.At(blo+i, k)
				u[i] = wi * hv * (1 - hv)
			}
			mat.WeightedGramWS(ws, acc, xb, u[:m])
			blocks[k].AddScaled(1, acc)
		}
		p.PutBlock(ws, xb)
	}
	ws.PutVec(u)
	ws.PutMatrix(acc)
}
