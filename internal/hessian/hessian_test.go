package hessian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/softmax"
)

// randSet builds a random Set with softmax-valid probability rows.
func randSet(rng *rand.Rand, n, d, c int) *Set {
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	h := mat.NewDense(n, c)
	for i := 0; i < n; i++ {
		row := h.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		softmax.SoftmaxInPlace(row)
	}
	return NewSet(x, h)
}

func TestDensePointMatchesKroneckerDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, c := 3, 4
	s := randSet(rng, 1, d, c)
	hm := DensePoint(s.X.Row(0), s.H.Row(0))
	if hm.Rows != d*c || hm.Cols != d*c {
		t.Fatalf("shape %dx%d", hm.Rows, hm.Cols)
	}
	// Element check: H[(k,r),(l,q)] = S_kl x_r x_q with S = diag(h)-hhᵀ.
	x, h := s.X.Row(0), s.H.Row(0)
	for k := 0; k < c; k++ {
		for l := 0; l < c; l++ {
			skl := -h[k] * h[l]
			if k == l {
				skl += h[k]
			}
			for r := 0; r < d; r++ {
				for q := 0; q < d; q++ {
					want := skl * x[r] * x[q]
					got := hm.At(k*d+r, l*d+q)
					if math.Abs(got-want) > 1e-12 {
						t.Fatalf("H[(%d,%d),(%d,%d)] = %g want %g", k, r, l, q, got, want)
					}
				}
			}
		}
	}
}

// TestLemma2FastMatvec is the central property test: the matrix-free
// matvec must agree with the dense Kronecker operator for arbitrary
// points, probabilities, and vectors.
func TestLemma2FastMatvec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		d := 1 + rng.Intn(5)
		c := 2 + rng.Intn(4)
		s := randSet(rng, n, d, c)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
		}
		v := make([]float64, d*c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		fast := s.MatVec(nil, v, w)
		dense := s.DenseSum(w)
		want := mat.MatVec(nil, dense, v)
		for i := range want {
			if math.Abs(fast[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPointMatVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		c := 2 + rng.Intn(4)
		s := randSet(rng, 1, d, c)
		x, h := s.X.Row(0), s.H.Row(0)
		v := make([]float64, d*c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		fast := PointMatVec(nil, x, h, v)
		want := mat.MatVec(nil, DensePoint(x, h), v)
		for i := range want {
			if math.Abs(fast[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuadAccumMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d, c := 7, 4, 3
	s := randSet(rng, n, d, c)
	u := make([]float64, d*c)
	v := make([]float64, d*c)
	for i := range u {
		u[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	s.QuadAccum(got, u, v, 2.5)
	for i := 0; i < n; i++ {
		hi := DensePoint(s.X.Row(i), s.H.Row(i))
		want := 2.5 * mat.Dot(u, mat.MatVec(nil, hi, v))
		if math.Abs(got[i]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("point %d: %g want %g", i, got[i], want)
		}
	}
}

// TestBlockDiagMatchesDense verifies Eq. 14–15: the k-th diagonal block of
// the dense Hessian sum equals h_k(1−h_k)·x xᵀ summed with weights.
func TestBlockDiagMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		d := 1 + rng.Intn(4)
		c := 2 + rng.Intn(3)
		s := randSet(rng, n, d, c)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
		}
		blocks := s.BlockDiagSum(w)
		dense := s.DenseSum(w)
		for k := 0; k < c; k++ {
			want := mat.Block(dense, k, k, d)
			if mat.MaxAbsDiff(blocks[k], want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHessianPSD(t *testing.T) {
	// Fisher information matrices are PSD: check eigenvalues of a random
	// point Hessian.
	rng := rand.New(rand.NewSource(4))
	s := randSet(rng, 1, 3, 4)
	hm := DensePoint(s.X.Row(0), s.H.Row(0))
	vals, err := mat.SymEigvals(hm)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < -1e-10 {
			t.Fatalf("negative eigenvalue %g", v)
		}
	}
}

func TestAddBlockDiagPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, c := 3, 4
	s := randSet(rng, 1, d, c)
	x, h := s.X.Row(0), s.H.Row(0)
	blocks := make([]*mat.Dense, c)
	for k := range blocks {
		blocks[k] = mat.NewDense(d, d)
	}
	AddBlockDiagPoint(blocks, x, h, 1)
	want := s.BlockDiagSum(nil)
	for k := 0; k < c; k++ {
		if mat.MaxAbsDiff(blocks[k], want[k]) > 1e-10 {
			t.Fatalf("block %d mismatch", k)
		}
	}
}

func TestSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randSet(rng, 10, 3, 2)
	sub := s.Subset([]int{2, 5, 9})
	if sub.N() != 3 {
		t.Fatalf("subset size %d", sub.N())
	}
	for r, i := range []int{2, 5, 9} {
		if mat.Dot(sub.X.Row(r), sub.X.Row(r)) != mat.Dot(s.X.Row(i), s.X.Row(i)) {
			t.Fatal("subset row mismatch")
		}
	}
	if s.Ed() != 6 {
		t.Fatalf("Ed = %d", s.Ed())
	}
}

// TestMatVecSumLinearity: H(Ho+Hz) v = Ho v + Hz v when combining two sets.
func TestMatVecSumLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, c := 3, 3
	a := randSet(rng, 4, d, c)
	b := randSet(rng, 5, d, c)
	v := make([]float64, d*c)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	wb := make([]float64, 5)
	for i := range wb {
		wb[i] = rng.Float64()
	}
	ra := a.MatVec(nil, v, nil)
	rb := b.MatVec(nil, v, wb)
	sum := make([]float64, d*c)
	for i := range sum {
		sum[i] = ra[i] + rb[i]
	}
	// Dense combined
	da := a.DenseSum(nil)
	db := b.DenseSum(wb)
	da.AddScaled(1, db)
	want := mat.MatVec(nil, da, v)
	for i := range want {
		if math.Abs(sum[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("linearity mismatch at %d", i)
		}
	}
}
