package hessian

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rnd"
)

// prefetchedStream serves a Set's features through a PrefetchSource, the
// async read-ahead path. The CountingSource underneath hides the
// Resident fast path, so reads flow through the same decode machinery an
// out-of-core shard would use; wrapping forces the lender route in
// Stream regardless of pool size.
func prefetchedStream(s *Set, blockRows int) (*Stream, *dataset.CountingSource) {
	counting := dataset.NewCountingSource(dataset.NewMatrixSource(s.X))
	p := dataset.NewPrefetchSource(context.Background(), counting, blockRows)
	return NewStream(p, s.H, blockRows), counting
}

// TestPrefetchedKernelsBitIdentical pins the tentpole's transparency at
// the kernel level: every blocked engine — the multi-RHS Lemma-2 matvec,
// the gradient accumulation, and the Gram block sum — produces
// bit-for-bit identical results whether the blocks arrive through
// synchronous workspace decode or the asynchronous lend handoff, across
// ragged block sizes.
func TestPrefetchedKernelsBitIdentical(t *testing.T) {
	set := allocSet(397, 13, 5) // 397 prime: ragged against every block size
	w := make([]float64, set.N())
	for i := range w {
		w[i] = 0.1 + float64(i%9)/9
	}
	const s = 4
	vt, _ := blockVectors(set.Ed(), s, 31)
	ut, _ := blockVectors(set.Ed(), s, 32)

	for _, bs := range []int{32, 100, 396} {
		sync := NewStream(dataset.NewCountingSource(dataset.NewMatrixSource(set.X)), set.H, bs)
		pre, _ := prefetchedStream(set, bs)
		ws1, ws2 := mat.NewWorkspace(), mat.NewWorkspace()

		wantMV, gotMV := mat.NewDense(s, set.Ed()), mat.NewDense(s, set.Ed())
		MatVecBlockWS(ws1, sync, wantMV, vt, w)
		MatVecBlockWS(ws2, pre, gotMV, vt, w)
		for i := range wantMV.Data {
			if math.Float64bits(gotMV.Data[i]) != math.Float64bits(wantMV.Data[i]) {
				t.Fatalf("bs=%d: MatVecBlock[%d] = %g prefetched, %g sync", bs, i, gotMV.Data[i], wantMV.Data[i])
			}
		}

		wantQ, gotQ := make([]float64, set.N()), make([]float64, set.N())
		QuadAccumBlockWS(ws1, sync, wantQ, ut, vt, -0.5)
		QuadAccumBlockWS(ws2, pre, gotQ, ut, vt, -0.5)
		for i := range wantQ {
			if math.Float64bits(gotQ[i]) != math.Float64bits(wantQ[i]) {
				t.Fatalf("bs=%d: QuadAccum[%d] = %g prefetched, %g sync", bs, i, gotQ[i], wantQ[i])
			}
		}

		wantG := sync.BlockDiagSumInto(ws1, nil, w)
		gotG := pre.BlockDiagSumInto(ws2, nil, w)
		for k := range wantG {
			for i := range wantG[k].Data {
				if math.Float64bits(gotG[k].Data[i]) != math.Float64bits(wantG[k].Data[i]) {
					t.Fatalf("bs=%d: Gram block %d[%d] = %g prefetched, %g sync",
						bs, k, i, gotG[k].Data[i], wantG[k].Data[i])
				}
			}
		}
	}
}

// TestPrefetchedDeltaSweepBitIdentical covers the windowed consumer:
// BlockDiagAccumRange sweeps arbitrary [lo, hi) windows whose starts are
// misaligned with the pipeline's predictions, so the prefetcher serves
// its miss path mid-stream — results must still match the synchronous
// sweep bit for bit.
func TestPrefetchedDeltaSweepBitIdentical(t *testing.T) {
	set := allocSet(397, 11, 4)
	const bs = 48
	sync := NewStream(dataset.NewCountingSource(dataset.NewMatrixSource(set.X)), set.H, bs)
	pre, _ := prefetchedStream(set, bs)
	ws1, ws2 := mat.NewWorkspace(), mat.NewWorkspace()
	c := set.C()
	want := make([]*mat.Dense, c)
	got := make([]*mat.Dense, c)
	for k := 0; k < c; k++ {
		want[k] = mat.NewDense(set.D(), set.D())
		got[k] = mat.NewDense(set.D(), set.D())
	}
	for _, win := range [][2]int{{0, 397}, {13, 250}, {250, 397}, {40, 41}, {96, 397}} {
		BlockDiagAccumRange(ws1, sync, want, nil, win[0], win[1], 1)
		BlockDiagAccumRange(ws2, pre, got, nil, win[0], win[1], 1)
		for k := 0; k < c; k++ {
			for i := range want[k].Data {
				if math.Float64bits(got[k].Data[i]) != math.Float64bits(want[k].Data[i]) {
					t.Fatalf("window [%d, %d): block %d[%d] = %g prefetched, %g sync",
						win[0], win[1], k, i, got[k].Data[i], want[k].Data[i])
				}
			}
		}
	}
}

// TestPrefetchedStreamZeroAllocMulticore pins the standing 0-alloc
// contract on the new path: with four workers engaged and warm state, a
// full prefetched sweep through each blocked kernel — including the
// asynchronous read-ahead spawned per block — allocates nothing. Named
// *Alloc* for the CI alloc-multicore job.
func TestPrefetchedStreamZeroAllocMulticore(t *testing.T) {
	skipUnderRace(t)
	prev := parallel.SetMaxWorkers(4)
	defer parallel.SetMaxWorkers(prev)
	set := allocSet(2000, 24, 5)
	const bs = 256
	pre, _ := prefetchedStream(set, bs)
	ws := mat.NewWorkspace()
	const s = 3
	vt, _ := blockVectors(set.Ed(), s, 41)
	ut, _ := blockVectors(set.Ed(), s, 42)
	dstMV := mat.NewDense(s, set.Ed())
	dstQ := make([]float64, set.N())
	w := make([]float64, set.N())
	mat.Fill(w, 0.5)
	var grams []*mat.Dense
	sweep := func() {
		MatVecBlockWS(ws, pre, dstMV, vt, w)
		QuadAccumBlockWS(ws, pre, dstQ, ut, vt, -0.1)
		grams = pre.BlockDiagSumInto(ws, grams, w)
	}
	sweep() // size the double buffer, workspace scratch, and Gram storage
	sweep()
	if allocs := testing.AllocsPerRun(30, sweep); allocs != 0 {
		t.Fatalf("warm prefetched kernel sweep allocates %.1f objects per pass at 4 workers", allocs)
	}
}

// TestPrefetchedStreamRowFetch pins the Row passthrough: single-row
// fetches through a prefetched stream (the ROUND winner's feature row)
// return exact bytes without disturbing an ongoing sweep's pipeline.
func TestPrefetchedStreamRowFetch(t *testing.T) {
	set := allocSet(300, 9, 4)
	pre, _ := prefetchedStream(set, 64)
	buf := make([]float64, set.D())
	rng := rnd.New(17)
	for k := 0; k < 20; k++ {
		i := int(rng.Float64() * float64(set.N()))
		row := pre.Row(i, buf)
		for j, v := range row {
			if math.Float64bits(v) != math.Float64bits(set.X.At(i, j)) {
				t.Fatalf("row %d col %d = %g, want %g", i, j, v, set.X.At(i, j))
			}
		}
	}
}
