package perfmodel

import (
	"time"

	"repro/internal/mat"
)

// CalibrateHost measures the effective FLOP rate of the Go dense kernels
// on this host (a square GEMM, the dominant kernel class) and returns a
// matching Machine model. This plays the role of the paper's "ideal peak
// performance of 19.5 TFLOPS" anchor: theoretical bars in the Fig. 5–7
// reproductions are computed against this rate so theory and measurement
// are in the same units on any machine.
func CalibrateHost() Machine {
	const n = 160
	a := mat.NewDense(n, n)
	b := mat.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i%7) * 0.25
		b.Data[i] = float64(i%5) * 0.5
	}
	dst := mat.NewDense(n, n)
	// Warm up, then time a few repetitions.
	mat.Mul(dst, a, b)
	const reps = 6
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		mat.Mul(dst, a, b)
	}
	el := time.Since(t0).Seconds()
	flops := float64(reps) * 2 * float64(n) * float64(n) * float64(n) / el
	if flops <= 0 {
		flops = 1e9
	}
	return Host(flops)
}
