package perfmodel

import (
	"fmt"
	"strings"
)

// Complexity formulas of Tables II and III, evaluated numerically. These
// back the complexity-table printers in cmd/ and the scaling assertions in
// tests (storage and work must match the paper's asymptotics).

// ExactStorage is Exact-FIRAL's storage O(c²d² + n c² d) in words.
func ExactStorage(n, d, c int) float64 {
	nf, df, cf := float64(n), float64(d), float64(c)
	return cf*cf*df*df + nf*cf*cf*df
}

// ApproxRelaxStorage is the fast RELAX storage O(n(d + sc) + cd²) per
// Table II (including the probe block and preconditioner).
func ApproxRelaxStorage(n, d, c, s int) float64 {
	nf, df, cf, sf := float64(n), float64(d), float64(c), float64(s)
	return nf*(df+sf*cf) + cf*df*df
}

// ApproxRoundStorage is the diagonal ROUND storage O(n(d + c) + cd²).
func ApproxRoundStorage(n, d, c int) float64 {
	nf, df, cf := float64(n), float64(d), float64(c)
	return nf*(df+cf) + cf*df*df
}

// ExactRelaxWork is Exact-FIRAL's RELAX work O(nrelax·n·c³·d²).
func ExactRelaxWork(nrelax, n, d, c int) float64 {
	return float64(nrelax) * float64(n) * float64(c) * float64(c) * float64(c) * float64(d) * float64(d)
}

// ApproxRelaxWork is the fast RELAX work O(nrelax·n·c·d·(d + nCG·s)).
func ApproxRelaxWork(nrelax, n, d, c, ncg, s int) float64 {
	return float64(nrelax) * float64(n) * float64(c) * float64(d) * (float64(d) + float64(ncg)*float64(s))
}

// ExactRoundWork is Exact-FIRAL's ROUND work O(b·c³·(d³ + n)).
func ExactRoundWork(b, n, d, c int) float64 {
	cf, df := float64(c), float64(d)
	return float64(b) * cf * cf * cf * (df*df*df + float64(n))
}

// ApproxRoundWork is the diagonal ROUND work O(b·n·c·d²).
func ApproxRoundWork(b, n, d, c int) float64 {
	return float64(b) * float64(n) * float64(c) * float64(d) * float64(d)
}

// DirectMatvecWork and FastMatvecWork are the Table III per-point matvec
// costs (O(d²c²) vs O(dc)).
func DirectMatvecWork(d, c int) float64 { return float64(d) * float64(d) * float64(c) * float64(c) }

// FastMatvecWork is the Lemma-2 matvec cost per point.
func FastMatvecWork(d, c int) float64 { return float64(d) * float64(c) }

// FormatTableII renders Table II for concrete sizes, reporting the
// speedup/storage ratios the approximation buys.
func FormatTableII(nrelax, b, n, d, c, ncg, s int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II (n=%d d=%d c=%d b=%d nrelax=%d nCG=%d s=%d)\n", n, d, c, b, nrelax, ncg, s)
	fmt.Fprintf(&sb, "%-22s %14s %14s %10s\n", "quantity", "Exact-FIRAL", "Approx-FIRAL", "ratio")
	row := func(name string, exact, approx float64) {
		fmt.Fprintf(&sb, "%-22s %14.3g %14.3g %9.1fx\n", name, exact, approx, exact/approx)
	}
	row("storage (words)", ExactStorage(n, d, c), ApproxRelaxStorage(n, d, c, s))
	row("relax work (flops)", ExactRelaxWork(nrelax, n, d, c), ApproxRelaxWork(nrelax, n, d, c, ncg, s))
	row("round work (flops)", ExactRoundWork(b, n, d, c), ApproxRoundWork(b, n, d, c))
	return sb.String()
}

// FormatTableIII renders the matvec comparison of Table III.
func FormatTableIII(d, c int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III (d=%d c=%d): per-point Hessian matvec\n", d, c)
	fmt.Fprintf(&sb, "%-14s %12s %12s\n", "method", "storage", "compute")
	fmt.Fprintf(&sb, "%-14s %12.3g %12.3g\n", "direct", DirectMatvecWork(d, c), DirectMatvecWork(d, c))
	fmt.Fprintf(&sb, "%-14s %12.3g %12.3g\n", "fast (Lemma 2)", FastMatvecWork(d, c), FastMatvecWork(d, c))
	return sb.String()
}
