// Package perfmodel implements the theoretical performance model of
// § III-C: per-kernel peak-compute times from FLOP counts at a given
// machine rate, and collective-communication times under the
// latency/bandwidth/reduce model of Thakur et al. [17]
// (ts + m·tw + m·tc). The experiment harnesses print these estimates next
// to measured times, reproducing the paired theoretical/experimental bars
// of Figs. 5–7.
package perfmodel

import "math"

// Machine holds the model constants. The paper's values: 19.5 TFLOPS
// fp32 peak on an A100, ts = 1e-4 s, 1/tw = 2e10 B/s, tc = 1e-10 s/B,
// 4-byte words (fp32).
type Machine struct {
	Flops        float64 // peak FLOP/s
	Ts           float64 // message latency (s)
	Tw           float64 // transfer time per byte (s)
	Tc           float64 // local reduce compute per byte (s)
	BytesPerWord float64
}

// Paper returns the constants used in § IV-B/§ IV-C.
func Paper() Machine {
	return Machine{Flops: 19.5e12, Ts: 1e-4, Tw: 1 / 2.0e10, Tc: 1e-10, BytesPerWord: 4}
}

// Host returns a model of the local CPU device for like-for-like
// comparison with measured Go times: flopRate is an empirically calibrated
// effective FLOP/s of the Go kernels on this host. Communication constants
// model in-process channel transfers.
func Host(flopRate float64) Machine {
	return Machine{Flops: flopRate, Ts: 2e-6, Tw: 1 / 4.0e9, Tc: 2.5e-10, BytesPerWord: 8}
}

func (m Machine) comp(flops float64) float64 { return flops / m.Flops }

func logp(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// Allreduce models a recursive-doubling allreduce of words elements:
// log p · (ts + m(tw + tc)).
func (m Machine) Allreduce(words float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	bytes := words * m.BytesPerWord
	return logp(p) * (m.Ts + bytes*(m.Tw+m.Tc))
}

// AllreduceChunked models the chunked pipelined allreduce of
// Comm.SetChunk: a segment of words elements is split into
// K = ⌈words/chunkWords⌉ frames, each paying the per-message latency,
// while the transfer of chunk k+1 overlaps the local reduce of chunk k —
// so the reduce term is paid once per chunk-sized frame in steady state,
// not per byte of the whole segment:
// log p · (K·ts + m·tw + mᶜ·tc) with mᶜ the chunk byte size.
// chunkWords ≤ 0 or K = 1 degenerates to Allreduce.
func (m Machine) AllreduceChunked(words float64, p int, chunkWords int) float64 {
	if p <= 1 {
		return 0
	}
	if chunkWords <= 0 || words <= float64(chunkWords) {
		return m.Allreduce(words, p)
	}
	k := math.Ceil(words / float64(chunkWords))
	bytes := words * m.BytesPerWord
	chunkBytes := float64(chunkWords) * m.BytesPerWord
	return logp(p) * (k*m.Ts + bytes*m.Tw + chunkBytes*m.Tc)
}

// Allgather models a recursive-doubling allgather of a total of words
// elements: log p · ts + (p−1)/p · m·tw.
func (m Machine) Allgather(words float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	bytes := words * m.BytesPerWord
	return logp(p)*m.Ts + float64(p-1)/float64(p)*bytes*m.Tw
}

// Bcast models a binomial-tree broadcast: log p · (ts + m·tw).
func (m Machine) Bcast(words float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	bytes := words * m.BytesPerWord
	return logp(p) * (m.Ts + bytes*m.Tw)
}

// RelaxParams collects the sizes entering the RELAX model.
type RelaxParams struct {
	N, D, C, S int // pool size, dim, classes, probes
	NCG        int // CG iterations per solve
	P          int // ranks
	// ChunkWords is the pipelined-allreduce chunk size in elements
	// (Comm.SetChunk); zero models the unchunked collectives.
	ChunkWords int
}

// PrecondComp is the per-iteration preconditioner construction time:
// (2·(n/p)·c·d² + c·d³)/F — building {B_k(Σz)} then inverting each block
// (§ IV-B: cd³ + 2cnd²).
func (m Machine) PrecondComp(q RelaxParams) float64 {
	np := float64(q.N) / float64(q.P)
	d, c := float64(q.D), float64(q.C)
	return m.comp(2*np*c*d*d + c*d*d*d)
}

// PrecondComm is the block allreduce of cd² words (Eq. 22).
func (m Machine) PrecondComm(q RelaxParams) float64 {
	return m.AllreduceChunked(float64(q.C)*float64(q.D)*float64(q.D), q.P, q.ChunkWords)
}

// CGComp is the CG time for the two multi-RHS solves of one mirror-descent
// iteration: nCG iterations, each a fast matvec 4·(n/p)·c·s·d plus the
// block-preconditioner application 2·c·d²·s (§ IV-B: dominated by
// 4·nCG·n·c·s·d).
func (m Machine) CGComp(q RelaxParams) float64 {
	np := float64(q.N) / float64(q.P)
	d, c, s := float64(q.D), float64(q.C), float64(q.S)
	per := 4*np*c*s*d + 2*c*d*d*s
	return m.comp(float64(q.NCG) * per)
}

// CGComm is the per-CG-iteration matvec allreduce of c·d·s words, nCG
// times (Eq. 24).
func (m Machine) CGComm(q RelaxParams) float64 {
	return float64(q.NCG) * m.AllreduceChunked(float64(q.C)*float64(q.D)*float64(q.S), q.P, q.ChunkWords)
}

// GradientComp covers line 7's Hp matvec and line 9's gradient
// accumulation: ≈ 8·(n/p)·c·d·s.
func (m Machine) GradientComp(q RelaxParams) float64 {
	np := float64(q.N) / float64(q.P)
	return m.comp(8 * np * float64(q.C) * float64(q.D) * float64(q.S))
}

// GradientComm is the Hp-matvec allreduce (c·d·s words) plus the scalar
// reductions of the mirror update.
func (m Machine) GradientComm(q RelaxParams) float64 {
	return m.AllreduceChunked(float64(q.C)*float64(q.D)*float64(q.S), q.P, q.ChunkWords) + 2*m.Allreduce(1, q.P)
}

// RelaxIter sums the compute of one mirror-descent iteration.
func (m Machine) RelaxIter(q RelaxParams) (precond, cg, gradient, comm float64) {
	precond = m.PrecondComp(q)
	cg = m.CGComp(q)
	gradient = m.GradientComp(q)
	comm = m.PrecondComm(q) + m.CGComm(q) + m.GradientComm(q)
	return
}

// RoundParams collects the sizes entering the ROUND model.
type RoundParams struct {
	N, D, C int
	P       int
}

// EigPrefactor is the paper's fitted constant for the batched symmetric
// eigensolver ("we fit the prefactor to 300").
const EigPrefactor = 300

// EigComp is the per-round eigenvalue time: 300·(c/p)·d³/F (line 9 of
// Algorithm 3, sharded over ranks).
func (m Machine) EigComp(q RoundParams) float64 {
	cp := float64(q.C) / float64(q.P)
	d := float64(q.D)
	return m.comp(EigPrefactor * cp * d * d * d)
}

// ObjectiveComp is the per-round Eq. 17 evaluation: 3·c·d³ + 4·(n/p)·c·d²
// (§ IV-B).
func (m Machine) ObjectiveComp(q RoundParams) float64 {
	np := float64(q.N) / float64(q.P)
	d, c := float64(q.D), float64(q.C)
	return m.comp(3*c*d*d*d + 4*np*c*d*d)
}

// RoundOtherComp covers the block-inverse rebuild of line 11 (≈ 2·c·d³)
// replicated on each rank.
func (m Machine) RoundOtherComp(q RoundParams) float64 {
	d, c := float64(q.D), float64(q.C)
	return m.comp(2 * c * d * d * d)
}

// RoundComm is the per-round communication: maxloc allreduce (2 words),
// winner bcast (c+d words), eigenvalue allgather (c·d words total).
func (m Machine) RoundComm(q RoundParams) float64 {
	return m.Allreduce(2, q.P) +
		m.Bcast(float64(q.C+q.D), q.P) +
		m.Allgather(float64(q.C)*float64(q.D), q.P)
}
