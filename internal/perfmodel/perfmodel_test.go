package perfmodel

import (
	"strings"
	"testing"
)

func TestPaperConstants(t *testing.T) {
	m := Paper()
	if m.Flops != 19.5e12 {
		t.Fatalf("Flops %g", m.Flops)
	}
	if m.Ts != 1e-4 || m.Tw != 1/2.0e10 || m.Tc != 1e-10 {
		t.Fatalf("comm constants wrong: %+v", m)
	}
}

func TestCollectivesZeroAtP1(t *testing.T) {
	m := Paper()
	if m.Allreduce(1000, 1) != 0 || m.Allgather(1000, 1) != 0 || m.Bcast(1000, 1) != 0 {
		t.Fatal("p=1 should cost nothing")
	}
}

func TestCollectivesGrowWithP(t *testing.T) {
	m := Paper()
	if m.Allreduce(1e6, 4) <= m.Allreduce(1e6, 2) {
		t.Fatal("allreduce should grow with p")
	}
	if m.Bcast(1e6, 8) <= m.Bcast(1e6, 2) {
		t.Fatal("bcast should grow with p")
	}
}

// TestStrongScalingShape: compute terms with an n/p factor must scale
// close to 1/p — the Fig. 6/7 ideal-speedup dashed lines.
func TestStrongScalingShape(t *testing.T) {
	m := Paper()
	q1 := RelaxParams{N: 1_300_000, D: 383, C: 1000, S: 10, NCG: 50, P: 1}
	q12 := q1
	q12.P = 12
	cg1, cg12 := m.CGComp(q1), m.CGComp(q12)
	speedup := cg1 / cg12
	if speedup < 11 || speedup > 12.5 {
		t.Fatalf("CG strong-scaling speedup %g, want ≈12", speedup)
	}
	r1 := RoundParams{N: 1_300_000, D: 383, C: 1000, P: 1}
	r12 := r1
	r12.P = 12
	if s := m.EigComp(r1) / m.EigComp(r12); s < 11.5 || s > 12.5 {
		t.Fatalf("eig speedup %g", s)
	}
}

// TestWeakScalingShape: with n per rank fixed, compute should be nearly
// flat while communication grows logarithmically (Fig. 6 B/D behaviour).
func TestWeakScalingShape(t *testing.T) {
	m := Paper()
	base := RelaxParams{N: 100_000, D: 383, C: 1000, S: 10, NCG: 50, P: 1}
	t1 := m.CGComp(base)
	grown := base
	grown.N = 100_000 * 12
	grown.P = 12
	t12 := m.CGComp(grown)
	if rel := (t12 - t1) / t1; rel > 0.01 {
		t.Fatalf("weak-scaling compute drifted %g%%", 100*rel)
	}
	if m.CGComm(grown) <= m.CGComm(RelaxParams{N: 2, D: 383, C: 1000, S: 10, NCG: 50, P: 2}) {
		t.Fatal("comm should grow with p")
	}
}

// TestLinearInC: both RELAX and ROUND components scale linearly with c
// (§ IV-B "the complexity of the RELAX step scales linearly with the
// number of classes").
func TestLinearInC(t *testing.T) {
	m := Paper()
	mk := func(c int) RelaxParams {
		return RelaxParams{N: 1_300_000, D: 383, C: c, S: 10, NCG: 50, P: 1}
	}
	r100, r1000 := m.PrecondComp(mk(100)), m.PrecondComp(mk(1000))
	if ratio := r1000 / r100; ratio < 9.5 || ratio > 10.5 {
		t.Fatalf("precond c-scaling ratio %g, want ≈10", ratio)
	}
	o100 := m.ObjectiveComp(RoundParams{N: 1_300_000, D: 383, C: 100, P: 1})
	o1000 := m.ObjectiveComp(RoundParams{N: 1_300_000, D: 383, C: 1000, P: 1})
	if ratio := o1000 / o100; ratio < 9.5 || ratio > 10.5 {
		t.Fatalf("objective c-scaling ratio %g, want ≈10", ratio)
	}
}

// TestSuperlinearInD: the d³ terms make the preconditioner grow faster
// than d² when d doubles (the paper reports 4.72× for d 383→766).
func TestSuperlinearInD(t *testing.T) {
	m := Paper()
	mk := func(d int) RelaxParams {
		return RelaxParams{N: 100_000, D: d, C: 1000, S: 10, NCG: 50, P: 1}
	}
	p383, p766 := m.PrecondComp(mk(383)), m.PrecondComp(mk(766))
	ratio := p766 / p383
	if ratio < 4 || ratio > 6.5 {
		t.Fatalf("precond d-scaling ratio %g, want ≈4.7 (paper)", ratio)
	}
	// CG is linear in d: paper reports 1.7×... ≈2.
	c383, c766 := m.CGComp(mk(383)), m.CGComp(mk(766))
	if r := c766 / c383; r < 1.5 || r > 2.5 {
		t.Fatalf("CG d-scaling ratio %g, want ≈2", r)
	}
}

// TestTableIIRatios: the approximation must win by orders of magnitude at
// ImageNet-1k scale, consistent with Table II/VI.
func TestTableIIRatios(t *testing.T) {
	n, d, c := 50_000, 383, 1000
	if r := ExactStorage(n, d, c) / ApproxRelaxStorage(n, d, c, 10); r < 1000 {
		t.Fatalf("storage ratio only %g", r)
	}
	if r := ExactRoundWork(200, n, d, c) / ApproxRoundWork(200, n, d, c); r < 1000 {
		t.Fatalf("round work ratio only %g", r)
	}
	if r := DirectMatvecWork(d, c) / FastMatvecWork(d, c); r != float64(d)*float64(c) {
		t.Fatalf("matvec ratio %g", r)
	}
}

func TestFormatters(t *testing.T) {
	s := FormatTableII(100, 50, 5000, 50, 50, 50, 10)
	if !strings.Contains(s, "Exact-FIRAL") || !strings.Contains(s, "ratio") {
		t.Fatalf("Table II format: %s", s)
	}
	s3 := FormatTableIII(383, 1000)
	if !strings.Contains(s3, "Lemma 2") {
		t.Fatalf("Table III format: %s", s3)
	}
}

func TestHostModel(t *testing.T) {
	h := Host(5e9)
	if h.Flops != 5e9 || h.BytesPerWord != 8 {
		t.Fatalf("host model %+v", h)
	}
}

// TestAllreduceChunked pins the chunked-allreduce model: chunk 0 and
// single-chunk segments degenerate exactly to Allreduce, chunking trades
// extra latency (K·ts) for a reduce term paid per chunk instead of per
// segment, and on a latency-dominated machine small chunks cost more.
func TestAllreduceChunked(t *testing.T) {
	m := Paper()
	words, p := 1e6, 12
	if got, want := m.AllreduceChunked(words, p, 0), m.Allreduce(words, p); got != want {
		t.Fatalf("chunk 0 should match Allreduce: %g vs %g", got, want)
	}
	if got, want := m.AllreduceChunked(words, p, 2_000_000), m.Allreduce(words, p); got != want {
		t.Fatalf("single chunk should match Allreduce: %g vs %g", got, want)
	}
	if m.AllreduceChunked(words, p, 1) <= m.AllreduceChunked(words, p, 500_000) {
		t.Fatal("word-sized chunks should pay far more latency than two large chunks")
	}
	// On a bandwidth/reduce-heavy machine (negligible latency), pipelining
	// the reduce behind the transfer must beat the unchunked model.
	fat := Machine{Flops: 1e12, Ts: 1e-9, Tw: 1e-10, Tc: 1e-9, BytesPerWord: 8}
	if fat.AllreduceChunked(words, p, 10_000) >= fat.Allreduce(words, p) {
		t.Fatal("chunking should hide the reduce term when latency is negligible")
	}
	if m.AllreduceChunked(words, 1, 1000) != 0 {
		t.Fatal("p=1 should cost nothing")
	}
}

// TestRelaxChunkWordsFlowThrough: ChunkWords must reach the RELAX
// communication terms (CG dominates, Eq. 24).
func TestRelaxChunkWordsFlowThrough(t *testing.T) {
	m := Paper()
	q := RelaxParams{N: 1_300_000, D: 383, C: 1000, S: 10, NCG: 50, P: 12}
	qc := q
	qc.ChunkWords = 64
	if m.CGComm(qc) <= m.CGComm(q) {
		t.Fatal("tiny chunks should raise the modeled CG latency cost")
	}
	if m.PrecondComm(qc) <= m.PrecondComm(q) || m.GradientComm(qc) <= m.GradientComm(q) {
		t.Fatal("ChunkWords must reach every large RELAX allreduce")
	}
	qc.ChunkWords = 0
	if m.CGComm(qc) != m.CGComm(q) {
		t.Fatal("ChunkWords 0 must model the unchunked collectives")
	}
}
