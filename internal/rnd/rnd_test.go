package rnd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRademacherOnlyPlusMinusOne(t *testing.T) {
	s := New(1)
	v := make([]float64, 1000)
	s.Rademacher(v)
	plus := 0
	for _, x := range v {
		switch x {
		case 1:
			plus++
		case -1:
		default:
			t.Fatalf("non-Rademacher value %g", x)
		}
	}
	// Roughly balanced (±5σ).
	if plus < 340 || plus > 660 {
		t.Fatalf("unbalanced Rademacher: %d/1000 positive", plus)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(2)
	v := make([]float64, 20000)
	s.Normal(v, 3, 2)
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var varr float64
	for _, x := range v {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(v) - 1)
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("mean %g", mean)
	}
	if math.Abs(varr-4) > 0.3 {
		t.Fatalf("variance %g", varr)
	}
}

func TestUnitVectorNorm(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 5, 50} {
		v := make([]float64, n)
		s.UnitVector(v)
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Fatalf("dim %d: norm² = %g", n, norm)
		}
	}
}

func TestChoiceDistinct(t *testing.T) {
	s := New(4)
	sel := s.Choice(20, 10)
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 20 || seen[i] {
			t.Fatalf("bad choice %v", sel)
		}
		seen[i] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(2,3) should panic")
		}
	}()
	s.Choice(2, 3)
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	s := New(5)
	w := []float64{0, 0, 1, 0}
	for trial := 0; trial < 50; trial++ {
		if got := s.WeightedChoice(w); got != 2 {
			t.Fatalf("weighted choice picked %d", got)
		}
	}
	// All-zero weights fall back to uniform without panicking.
	if got := s.WeightedChoice([]float64{0, 0}); got < 0 || got > 1 {
		t.Fatalf("fallback choice %d", got)
	}
	// Negative weights are ignored.
	if got := s.WeightedChoice([]float64{-5, 1}); got != 1 {
		t.Fatalf("negative weight selected: %d", got)
	}
}

func TestSplitProperties(t *testing.T) {
	// Distinct streams from the same seed; deterministic.
	f := func(seed int64) bool {
		a := Split(seed, 0)
		b := Split(seed, 1)
		c := Split(seed, 0)
		return a != b && a == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
