// Package rnd provides seeded random-number utilities used throughout the
// reproduction: Rademacher probes for Hutchinson trace estimation, Gaussian
// samples for the synthetic embeddings, permutations for data splits, and a
// splittable seed derivation so distributed ranks draw from independent but
// reproducible streams.
package rnd

import (
	"math"
	"math/rand"
)

// Source wraps math/rand with the sampling helpers the reproduction needs.
// A Source is not safe for concurrent use; derive per-goroutine sources with
// Split.
type Source struct {
	*rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rand.New(rand.NewSource(seed))}
}

// Split derives a new independent seed from (seed, stream) using the
// SplitMix64 finalizer, so rank r of a distributed run can use
// Split(root, r) and obtain a stream that is reproducible and uncorrelated
// with other ranks.
func Split(seed, stream int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Rademacher fills dst with independent ±1 entries.
func (s *Source) Rademacher(dst []float64) {
	for i := range dst {
		if s.Int63()&1 == 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
}

// Normal fills dst with independent N(mean, std²) samples.
func (s *Source) Normal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = mean + std*s.NormFloat64()
	}
}

// UnitVector fills dst with a uniformly random point on the unit sphere.
func (s *Source) UnitVector(dst []float64) {
	for {
		s.Normal(dst, 0, 1)
		var n float64
		for _, v := range dst {
			n += v * v
		}
		if n > 1e-24 {
			n = 1 / math.Sqrt(n)
			for i := range dst {
				dst[i] *= n
			}
			return
		}
	}
}

// Choice returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n.
func (s *Source) Choice(n, k int) []int {
	if k > n {
		panic("rnd: Choice k > n")
	}
	perm := s.Perm(n)
	return perm[:k]
}

// WeightedChoice returns an index drawn with probability proportional to
// w[i]. Weights must be non-negative and not all zero; otherwise it falls
// back to uniform.
func (s *Source) WeightedChoice(w []float64) int {
	var total float64
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return s.Intn(len(w))
	}
	u := s.Float64() * total
	var acc float64
	for i, v := range w {
		if v <= 0 {
			continue
		}
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}
