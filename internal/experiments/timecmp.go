package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/firal"
)

// TimeComparison is one row pair of Table VI: wall-clock seconds of the
// RELAX and ROUND steps for Exact-FIRAL and Approx-FIRAL on the first
// active-learning round of a dataset.
type TimeComparison struct {
	Dataset                  string
	N, D, C                  int
	ExactRelax, ExactRound   float64
	ApproxRelax, ApproxRound float64
	RelaxIterations          int
}

// RunTableVI times Exact vs Approx on one config's first round. Both
// RELAX solvers run the same fixed number of mirror-descent iterations so
// the comparison is per-equal-work, as in the paper's single-round timing.
func RunTableVI(ctx context.Context, cfg dataset.Config, scale float64, seed int64, relaxIters int) (*TimeComparison, error) {
	if scale <= 0 {
		scale = 1
	}
	if relaxIters <= 0 {
		relaxIters = 10
	}
	ds := dataset.Generate(cfg.Scale(scale), seed)
	p, err := problemFromDataset(ds)
	if err != nil {
		return nil, err
	}
	b := cfg.Budget
	tc := &TimeComparison{
		Dataset: cfg.Name, N: p.N(), D: p.D(), C: p.C(),
		RelaxIterations: relaxIters,
	}

	relaxOpts := firal.RelaxOptions{FixedIterations: relaxIters, Seed: seed}

	var zExact, zApprox []float64
	tc.ExactRelax = Timed(func() {
		res, e := firal.RelaxExact(ctx, p, b, relaxOpts)
		if e != nil {
			err = e
			return
		}
		zExact = res.Z
	})
	if err != nil {
		return nil, err
	}
	tc.ExactRound = Timed(func() {
		_, e := firal.RoundExact(p, zExact, b, firal.RoundOptions{})
		if e != nil {
			err = e
		}
	})
	if err != nil {
		return nil, err
	}
	tc.ApproxRelax = Timed(func() {
		res, e := firal.RelaxFast(ctx, p, b, relaxOpts)
		if e != nil {
			err = e
			return
		}
		zApprox = res.Z
	})
	if err != nil {
		return nil, err
	}
	tc.ApproxRound = Timed(func() {
		_, e := firal.RoundFast(p, zApprox, b, firal.RoundOptions{})
		if e != nil {
			err = e
		}
	})
	if err != nil {
		return nil, err
	}
	return tc, nil
}

// PrintTableVI renders comparisons in the layout of Table VI with speedup
// columns.
func PrintTableVI(w io.Writer, comparisons []*TimeComparison) {
	fmt.Fprintln(w, "# Table VI — Exact-FIRAL vs Approx-FIRAL wall-clock (seconds)")
	headers := []string{"dataset", "step", "Exact-FIRAL", "Approx-FIRAL", "speedup"}
	var rows [][]string
	for _, tc := range comparisons {
		rows = append(rows,
			[]string{fmt.Sprintf("%s (n=%d d=%d c=%d)", tc.Dataset, tc.N, tc.D, tc.C),
				"RELAX", Secs(tc.ExactRelax), Secs(tc.ApproxRelax),
				fmt.Sprintf("%.1fx", tc.ExactRelax/tc.ApproxRelax)},
			[]string{"", "ROUND", Secs(tc.ExactRound), Secs(tc.ApproxRound),
				fmt.Sprintf("%.1fx", tc.ExactRound/tc.ApproxRound)},
		)
	}
	PrintTable(w, headers, rows)
}
