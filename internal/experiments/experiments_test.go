package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/perfmodel"
)

// tinyConfig is a fast, well-separated config for driver smoke tests.
func tinyConfig() dataset.Config {
	return dataset.Config{Name: "tiny", Classes: 3, Dim: 6, PoolSize: 90,
		EvalSize: 90, InitPerClass: 1, Rounds: 2, Budget: 5, Separation: 1.5}
}

func TestRunAccuracySmoke(t *testing.T) {
	curves, err := RunAccuracy(context.Background(), tinyConfig(), AccuracyOptions{
		Trials:    2,
		Selectors: []string{"Random", "Entropy", "Approx-FIRAL"},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.Labels) != 2 || len(c.Mean) != 2 {
			t.Fatalf("%s: curve lengths %d/%d", c.Selector, len(c.Labels), len(c.Mean))
		}
		if c.Labels[0] != 8 || c.Labels[1] != 13 {
			t.Fatalf("%s: label counts %v", c.Selector, c.Labels)
		}
		for _, a := range c.Mean {
			if a <= 0 || a > 1 {
				t.Fatalf("%s: accuracy %g out of range", c.Selector, a)
			}
		}
	}
	var buf bytes.Buffer
	PrintAccuracy(&buf, curves)
	if !strings.Contains(buf.String(), "Approx-FIRAL") {
		t.Fatal("printout missing selector")
	}
}

func TestExactSkippedWhenTooLarge(t *testing.T) {
	cfg := tinyConfig()
	curves, err := RunAccuracy(context.Background(), cfg, AccuracyOptions{
		Trials:     1,
		Selectors:  []string{"Exact-FIRAL"},
		MaxExactEd: 2, // force the skip
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 0 {
		t.Fatal("Exact-FIRAL should have been skipped")
	}
}

func TestUnknownSelectorRejected(t *testing.T) {
	_, err := RunAccuracy(context.Background(), tinyConfig(), AccuracyOptions{Selectors: []string{"bogus"}, Trials: 1})
	if err == nil {
		t.Fatal("unknown selector accepted")
	}
}

// TestCGConvergenceFig1Shape asserts the headline Fig. 1 property: the
// preconditioned solve needs strictly fewer iterations than the plain one,
// and preconditioning improves the condition number (paper: 198 → 72).
func TestCGConvergenceFig1Shape(t *testing.T) {
	res, err := RunCGConvergence(context.Background(), tinyConfig(), 1, 3, 1e-3, 500, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreconditionedIts >= res.PlainIters {
		t.Fatalf("preconditioner did not reduce iterations: %d vs %d",
			res.PreconditionedIts, res.PlainIters)
	}
	if res.CondSigma <= 0 || res.CondPrecondSigma <= 0 {
		t.Fatal("condition numbers not computed")
	}
	if res.CondPrecondSigma >= res.CondSigma {
		t.Fatalf("preconditioning did not improve conditioning: %g vs %g",
			res.CondPrecondSigma, res.CondSigma)
	}
	var buf bytes.Buffer
	PrintCGConvergence(&buf, res)
	if !strings.Contains(buf.String(), "cond(") {
		t.Fatal("printout missing condition numbers")
	}
}

func TestSensitivityFig4Smoke(t *testing.T) {
	curves, err := RunSensitivity(context.Background(), tinyConfig(), SensitivityOptions{
		Seed: 2, Iterations: 6,
		SValues:      []int{5, 10},
		TolValues:    []float64{0.5, 0.01},
		IncludeExact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// exact + 2 s-curves + 2 tol-curves.
	if len(curves) != 5 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.Objectives) != 6 {
			t.Fatalf("%s: %d objectives", c.Label, len(c.Objectives))
		}
	}
	var buf bytes.Buffer
	PrintSensitivity(&buf, "tiny", curves)
	if !strings.Contains(buf.String(), "cgtol") {
		t.Fatal("printout missing curves")
	}
}

// TestTableVIShape asserts the headline Table VI property: Approx-FIRAL is
// faster than Exact-FIRAL in both steps. The config must be large enough
// in c·d for the exact O(nc²d² + (dc)³) cost to dominate the approximate
// solver's CG constant factors — mirroring the paper, where the advantage
// appears on ImageNet-50-sized problems and grows with scale.
func TestTableVIShape(t *testing.T) {
	cfg := dataset.Config{Name: "t6", Classes: 20, Dim: 20, PoolSize: 250,
		EvalSize: 50, InitPerClass: 1, Rounds: 1, Budget: 3, Separation: 1.5}
	tc, err := RunTableVI(context.Background(), cfg, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tc.ApproxRelax >= tc.ExactRelax {
		t.Fatalf("RELAX: approx %.4fs not faster than exact %.4fs", tc.ApproxRelax, tc.ExactRelax)
	}
	if tc.ApproxRound >= tc.ExactRound {
		t.Fatalf("ROUND: approx %.4fs not faster than exact %.4fs", tc.ApproxRound, tc.ExactRound)
	}
	var buf bytes.Buffer
	PrintTableVI(&buf, []*TimeComparison{tc})
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("printout missing speedups")
	}
}

func TestRelaxSweepSmoke(t *testing.T) {
	rows, err := RunRelaxSweep(context.Background(), "d", []int{4, 8}, 3, SingleDeviceOptions{
		N: 400, S: 4, NCG: 5, Seed: 1, Machine: perfmodel.Host(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured["cg"] <= 0 {
			t.Fatalf("d=%d: no cg time measured", r.Param)
		}
		if r.Theory["cg"] <= 0 {
			t.Fatalf("d=%d: no cg theory", r.Param)
		}
	}
	var buf bytes.Buffer
	PrintBreakdown(&buf, "Fig 5A", "d", []string{"precond", "cg", "gradient", "other"}, rows)
	if !strings.Contains(buf.String(), "cg (exp)") {
		t.Fatal("breakdown printout wrong")
	}
}

func TestRoundSweepSmoke(t *testing.T) {
	rows, err := RunRoundSweep(context.Background(), "c", []int{2, 4}, 6, SingleDeviceOptions{
		N: 400, Seed: 1, Machine: perfmodel.Host(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured["objective"] <= 0 || r.Measured["eig"] <= 0 {
			t.Fatalf("c=%d: phases missing: %v", r.Param, r.Measured)
		}
	}
}

func TestRelaxScalingSmoke(t *testing.T) {
	points, err := RunRelaxScaling(context.Background(), ScalingOptions{
		Ranks: []int{1, 2, 3}, Strong: true, N: 600, D: 5, C: 3,
		S: 4, NCG: 5, Seed: 2, Machine: perfmodel.Host(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Ideal line follows 1/p.
	if points[1].Ideal >= points[0].Ideal {
		t.Fatal("strong-scaling ideal line not decreasing")
	}
	// Ranks > 1 must record communication time.
	if points[1].Measured["comm"] <= 0 {
		t.Fatal("no comm time at p=2")
	}
	// Theory comm is zero at p=1 and positive beyond.
	if points[0].Theory["comm"] != 0 || points[2].Theory["comm"] <= 0 {
		t.Fatalf("theory comm wrong: %v vs %v", points[0].Theory, points[2].Theory)
	}
	var buf bytes.Buffer
	PrintScaling(&buf, "Fig 6", []string{"precond", "cg", "gradient", "comm"}, points)
	if !strings.Contains(buf.String(), "ideal") {
		t.Fatal("scaling printout wrong")
	}
}

func TestRoundScalingSmoke(t *testing.T) {
	points, err := RunRoundScaling(context.Background(), ScalingOptions{
		Ranks: []int{1, 2}, Strong: false, NPerRank: 200, D: 5, C: 4,
		B: 2, Seed: 3, Machine: perfmodel.Host(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// Weak scaling: n grows with p.
	if points[1].N != 2*points[0].N {
		t.Fatalf("weak scaling sizes %d/%d", points[0].N, points[1].N)
	}
	// Ideal line is flat for weak scaling.
	if points[1].Ideal != points[0].Ideal {
		t.Fatal("weak-scaling ideal line not flat")
	}
}

func TestSynthSetsShapes(t *testing.T) {
	lab, pool := SynthSets(10, 50, 7, 4, 5)
	if lab.N() != 10 || pool.N() != 50 || pool.D() != 7 || pool.C() != 4 {
		t.Fatalf("shapes wrong: %d %d %d %d", lab.N(), pool.N(), pool.D(), pool.C())
	}
	// Probability rows must be valid sub-probabilities (reduced rows).
	for i := 0; i < pool.N(); i++ {
		var sum float64
		for _, v := range pool.H.Row(i) {
			if v < 0 || v > 1 {
				t.Fatal("invalid probability")
			}
			sum += v
		}
		if sum >= 1 {
			t.Fatalf("reduced row sums to %g", sum)
		}
	}
}
