// Package experiments contains the runnable drivers that regenerate every
// table and figure of the paper's evaluation (§ IV): accuracy comparisons
// (Figs. 2–3), CG preconditioner convergence (Fig. 1), RELAX sensitivity
// (Fig. 4), Exact-vs-Approx timing (Table VI), single-device breakdowns
// with theoretical peak estimates (Fig. 5), and strong/weak scaling over
// the MPI simulator (Figs. 6–7). The cmd/ binaries and the top-level
// benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	pub "repro"
	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

// Selector resolves a strategy name through the public selector registry
// (case-insensitive, aliases included), so the experiment harnesses and
// cmd/ binaries share one source of truth for what strategies exist.
func Selector(name string, o pub.FIRALOptions) (pub.Selector, error) {
	return pub.New(name, pub.SelectorOptions{FIRAL: o})
}

// SynthSets generates a labeled set and pool for performance experiments:
// Gaussian features and reduced probability rows with c Fisher blocks
// (softmax over c+1 classes, last dropped). Accuracy experiments use
// internal/dataset instead; this generator is for timing runs where only
// shapes matter.
func SynthSets(nLabeled, nPool, d, c int, seed int64) (labeled, pool *hessian.Set) {
	rng := rnd.New(seed)
	theta := mat.NewDense(d, c+1)
	rng.Normal(theta.Data, 0, 1)
	gen := func(n int) *hessian.Set {
		x := mat.NewDense(n, d)
		rng.Normal(x.Data, 0, 1)
		for i := 0; i < n; i++ {
			mat.Scal(1/mat.Nrm2(x.Row(i)), x.Row(i))
		}
		h := hessian.ReduceProbs(softmax.Probabilities(nil, x, theta))
		return hessian.NewSet(x, h)
	}
	return gen(nLabeled), gen(nPool)
}

// Timed runs fn and returns its duration in seconds.
func Timed(fn func()) float64 {
	t0 := time.Now()
	fn()
	return time.Since(t0).Seconds()
}

// PrintTable renders an aligned text table.
func PrintTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

// PrintCSV renders rows as CSV.
func PrintCSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// F formats a float compactly for tables.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Secs formats seconds with four significant digits.
func Secs(v float64) string { return fmt.Sprintf("%.4gs", v) }
