package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/krylov"
	"repro/internal/logreg"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

// CGConvergence holds the Fig. 1 data: relative residual per CG iteration
// with and without the block-diagonal preconditioner, for the linear
// system of the first mirror-descent iteration, plus the condition
// numbers the paper quotes (198 vs 72 for CIFAR-10).
type CGConvergence struct {
	Dataset           string
	Plain             []float64 // residual history without preconditioner
	Preconditioned    []float64 // residual history with B(Σz)⁻¹
	CondSigma         float64   // κ(Σz); 0 when ẽd too large to compute
	CondPrecondSigma  float64   // κ(B(Σz)⁻¹Σz)
	PlainIters        int
	PreconditionedIts int
}

// problemFromDataset trains the round-1 classifier on the initial labeled
// set and assembles the FIRAL problem exactly as the accuracy pipeline
// does.
func problemFromDataset(ds *dataset.Dataset) (*firal.Problem, error) {
	model, err := logreg.Train(ds.LabeledX, ds.LabeledY, ds.Classes, nil, logreg.Options{})
	if err != nil {
		return nil, err
	}
	ho := hessian.ReduceProbs(softmax.Probabilities(nil, ds.LabeledX, model.Theta))
	hu := hessian.ReduceProbs(softmax.Probabilities(nil, ds.PoolX, model.Theta))
	labeled := hessian.NewSet(ds.LabeledX, ho)
	pool := hessian.NewSet(ds.PoolX, hu)
	return firal.NewProblem(labeled, pool), nil
}

// RunCGConvergence reproduces Fig. 1 on one dataset config: it builds Σz
// at the uniform initial z, draws one Rademacher right-hand side, and
// records CG convergence with and without the preconditioner.
// maxEdForCond bounds the dense condition-number computation (0 disables).
func RunCGConvergence(ctx context.Context, cfg dataset.Config, scale float64, seed int64, tol float64, maxIter, maxEdForCond int) (*CGConvergence, error) {
	if scale <= 0 {
		scale = 1
	}
	if tol <= 0 {
		tol = 1e-3
	}
	if maxIter <= 0 {
		maxIter = 800
	}
	ds := dataset.Generate(cfg.Scale(scale), seed)
	p, err := problemFromDataset(ds)
	if err != nil {
		return nil, err
	}
	n, ed := p.N(), p.Ed()
	z := make([]float64, n)
	mat.Fill(z, 1/float64(n))

	sigMV := p.SigmaMatVec(z)
	blocks := p.SigmaBlocks(z)
	// One-iteration experiment, but use the reusable state so this path
	// exercises the same preconditioner code the RELAX loop runs.
	bp := firal.NewBlockPreconditionerWS()
	if err := bp.Update(blocks); err != nil {
		return nil, err
	}
	precond := bp.Apply

	rng := rnd.New(seed + 99)
	b := make([]float64, ed)
	rng.Rademacher(b)

	res := &CGConvergence{Dataset: cfg.Name}
	opt := krylov.Options{Tol: tol, MaxIter: maxIter, RecordResiduals: true}

	x1 := make([]float64, ed)
	plain := krylov.CG(ctx, sigMV, b, x1, opt)
	if plain.Err != nil {
		return nil, plain.Err
	}
	res.Plain = plain.Residuals
	res.PlainIters = plain.Iterations

	x2 := make([]float64, ed)
	prec := krylov.PCG(ctx, sigMV, precond, b, x2, opt)
	if prec.Err != nil {
		return nil, prec.Err
	}
	res.Preconditioned = prec.Residuals
	res.PreconditionedIts = prec.Iterations

	// Condition numbers via the dense operator, when affordable.
	if maxEdForCond > 0 && ed <= maxEdForCond {
		sigma := p.DenseSigma(z)
		if sf, err := mat.NewSPDFuncs(sigma, 1e-12); err == nil {
			res.CondSigma = sf.Cond()
		}
		// Preconditioned operator: B(Σ)⁻¹Σ has the same spectrum as the
		// symmetric form B^{-1/2} Σ B^{-1/2}.
		bd := mat.BlockDiag(blocks)
		if bsf, err := mat.NewSPDFuncs(bd, 1e-12); err == nil {
			bis := bsf.InvSqrt()
			m := mat.Mul(nil, mat.Mul(nil, bis, sigma), bis)
			m.Symmetrize()
			if msf, err := mat.NewSPDFuncs(m, 1e-12); err == nil {
				res.CondPrecondSigma = msf.Cond()
			}
		}
	}
	return res, nil
}

// PrintCGConvergence renders the two residual series side by side.
func PrintCGConvergence(w io.Writer, r *CGConvergence) {
	fmt.Fprintf(w, "# Fig. 1 — CG convergence on %s\n", r.Dataset)
	if r.CondSigma > 0 {
		fmt.Fprintf(w, "cond(Σz) = %.4g, cond(B(Σz)⁻¹Σz) = %.4g\n", r.CondSigma, r.CondPrecondSigma)
	}
	fmt.Fprintf(w, "iterations: w/o preconditioner %d, w/ preconditioner %d\n",
		r.PlainIters, r.PreconditionedIts)
	steps := len(r.Plain)
	if len(r.Preconditioned) > steps {
		steps = len(r.Preconditioned)
	}
	var rows [][]string
	for i := 0; i < steps; i++ {
		row := []string{fmt.Sprintf("%d", i), "", ""}
		if i < len(r.Plain) {
			row[1] = fmt.Sprintf("%.3e", r.Plain[i])
		}
		if i < len(r.Preconditioned) {
			row[2] = fmt.Sprintf("%.3e", r.Preconditioned[i])
		}
		rows = append(rows, row)
	}
	PrintTable(w, []string{"cg step", "w/o precond", "w/ precond"}, rows)
}
