package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	pub "repro"
	"repro/internal/dataset"
)

// AccuracyOptions configure a Fig. 2 / Fig. 3 style accuracy experiment.
type AccuracyOptions struct {
	// Scale shrinks the Table V pool/eval sizes for CPU runs (1 = paper
	// size).
	Scale float64
	// Trials is the number of repetitions for the stochastic selectors
	// (Random, K-Means); the paper uses 10.
	Trials int
	// Selectors lists strategy names to run; empty means the paper's
	// five: Random, K-Means, Entropy, Exact-FIRAL, Approx-FIRAL. The
	// Exact-FIRAL entry is skipped automatically for large configs, as in
	// the paper ("we do not conduct tests on Exact-FIRAL" for
	// Caltech-101/ImageNet-1k).
	Selectors []string
	// FIRAL holds selector options for both FIRAL variants.
	FIRAL pub.FIRALOptions
	// Seed is the master seed; trial t of dataset D derives its own.
	Seed int64
	// MaxExactEd bounds ẽd = d(c−1) above which Exact-FIRAL is skipped
	// (default 600).
	MaxExactEd int
	// Observer, when non-nil, streams every completed round's report
	// while the experiment runs (live progress for long sweeps).
	Observer pub.RoundObserver
}

func (o *AccuracyOptions) defaults() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Trials <= 0 {
		o.Trials = 10
	}
	if len(o.Selectors) == 0 {
		o.Selectors = []string{"Random", "K-Means", "Entropy", "Exact-FIRAL", "Approx-FIRAL"}
	}
	if o.MaxExactEd <= 0 {
		o.MaxExactEd = 600
	}
}

// AccuracyCurve is one selector's accuracy trajectory, aggregated over
// trials: entry r corresponds to Labels[r] labeled samples.
type AccuracyCurve struct {
	Dataset  string
	Selector string
	Labels   []int
	// Mean and Std of the evaluation accuracy over trials; PoolMean for
	// pool accuracy; BalancedMean for class-balanced eval accuracy.
	Mean, Std    []float64
	PoolMean     []float64
	BalancedMean []float64
	Trials       int
}

// stochastic reports whether a selector benefits from multi-trial
// averaging (the deterministic ones produce identical runs).
func stochastic(name string) bool {
	return name == "Random" || name == "K-Means"
}

// RunAccuracy executes the active-learning comparison on one Table V
// configuration and returns one curve per selector. Selector names
// resolve through the public registry; cancelling the context aborts the
// sweep mid-selection.
func RunAccuracy(ctx context.Context, cfg dataset.Config, o AccuracyOptions) ([]*AccuracyCurve, error) {
	o.defaults()
	scaled := cfg.Scale(o.Scale)
	var curves []*AccuracyCurve
	for _, name := range o.Selectors {
		// Resolve aliases/case up front so the intractability and
		// multi-trial guards below see the canonical name; unknown names
		// fall through and error in Selector().
		if canonical, ok := pub.CanonicalName(name); ok {
			name = canonical
		}
		if name == "Exact-FIRAL" && scaled.Dim*(scaled.Classes-1) > o.MaxExactEd {
			continue // intractable, as in the paper
		}
		trials := 1
		if stochastic(name) {
			trials = o.Trials
		}
		curve := &AccuracyCurve{Dataset: cfg.Name, Selector: name, Trials: trials}
		sums := make([][]float64, 0)
		for trial := 0; trial < trials; trial++ {
			seed := o.Seed + int64(trial)*1009 + 1
			learnCfg := publicConfig(dataset.Generate(scaled, o.Seed+31))
			learnCfg.Seed = seed
			learner, err := pub.NewLearner(learnCfg)
			if err != nil {
				return nil, err
			}
			sel, err := Selector(name, o.FIRAL)
			if err != nil {
				return nil, err
			}
			runOpts := []pub.RunOption{
				pub.WithRounds(scaled.Rounds),
				pub.WithBudget(scaled.Budget),
			}
			if o.Observer != nil {
				runOpts = append(runOpts, pub.WithObserver(o.Observer))
			}
			reports, err := learner.RunContext(ctx, sel, runOpts...)
			if err != nil {
				return nil, err
			}
			for r, rep := range reports {
				if trial == 0 {
					curve.Labels = append(curve.Labels, rep.LabeledCount)
					curve.PoolMean = append(curve.PoolMean, 0)
					curve.BalancedMean = append(curve.BalancedMean, 0)
					sums = append(sums, nil)
				}
				sums[r] = append(sums[r], rep.EvalAccuracy)
				curve.PoolMean[r] += rep.PoolAccuracy / float64(trials)
				curve.BalancedMean[r] += rep.BalancedEvalAccuracy / float64(trials)
			}
		}
		for _, vals := range sums {
			m, s := meanStd(vals)
			curve.Mean = append(curve.Mean, m)
			curve.Std = append(curve.Std, s)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

func meanStd(vals []float64) (float64, float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	var m float64
	for _, v := range vals {
		m += v
	}
	m /= float64(len(vals))
	var s float64
	for _, v := range vals {
		s += (v - m) * (v - m)
	}
	if len(vals) > 1 {
		s = math.Sqrt(s / float64(len(vals)-1))
	} else {
		s = 0
	}
	return m, s
}

// publicConfig converts an internal dataset into a public learner Config.
func publicConfig(ds *dataset.Dataset) pub.Config {
	toRows := func(m interface {
		Row(i int) []float64
	}, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = append([]float64(nil), m.Row(i)...)
		}
		return out
	}
	return pub.Config{
		PoolX:    toRows(ds.PoolX, ds.PoolX.Rows),
		PoolY:    ds.PoolY,
		LabeledX: toRows(ds.LabeledX, ds.LabeledX.Rows),
		LabeledY: ds.LabeledY,
		EvalX:    toRows(ds.EvalX, ds.EvalX.Rows),
		EvalY:    ds.EvalY,
		Classes:  ds.Classes,
		Rounds:   ds.Rounds,
		Budget:   ds.Budget,
	}
}

// PrintAccuracy renders curves in the layout of Fig. 2/3: one row per
// (selector, #labels) with pool, eval and class-balanced accuracies.
func PrintAccuracy(w io.Writer, curves []*AccuracyCurve) {
	if len(curves) == 0 {
		return
	}
	fmt.Fprintf(w, "# %s — evaluation accuracy vs labeled samples\n", curves[0].Dataset)
	headers := []string{"selector", "#labels", "pool acc", "eval acc", "eval std", "balanced"}
	var rows [][]string
	for _, c := range curves {
		for r := range c.Labels {
			rows = append(rows, []string{
				c.Selector,
				fmt.Sprintf("%d", c.Labels[r]),
				F(c.PoolMean[r]),
				F(c.Mean[r]),
				F(c.Std[r]),
				F(c.BalancedMean[r]),
			})
		}
	}
	PrintTable(w, headers, rows)
}
