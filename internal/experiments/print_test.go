package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrintTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	PrintTable(&buf, []string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	// Column alignment: "long-header" position consistent.
	idx := strings.Index(lines[0], "long-header")
	if idx <= 0 {
		t.Fatal("header missing")
	}
	if lines[2][idx] != '2' {
		t.Fatalf("misaligned table:\n%s", buf.String())
	}
}

func TestPrintCSV(t *testing.T) {
	var buf bytes.Buffer
	PrintCSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}})
	want := "x,y\n1,2\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.123456) != "0.1235" {
		t.Fatalf("F: %s", F(0.123456))
	}
	if Secs(1.5) != "1.5s" {
		t.Fatalf("Secs: %s", Secs(1.5))
	}
}

func TestTimed(t *testing.T) {
	ran := false
	secs := Timed(func() { ran = true })
	if !ran || secs < 0 {
		t.Fatal("Timed broken")
	}
}
