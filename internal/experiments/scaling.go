package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/distfiral"
	"repro/internal/firal"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/timing"
)

// ScalingPoint is one rank-count measurement of Fig. 6/7: per-phase
// wall-clock (critical path over ranks) and the corresponding theoretical
// estimates, plus the ideal-scaling reference.
type ScalingPoint struct {
	Ranks    int
	N        int // global pool size at this point
	Measured map[string]float64
	Theory   map[string]float64
	// Wall is the end-to-end time of the timed region.
	Wall float64
	// Ideal is the p=1 wall divided by p (strong) or the p=1 wall (weak):
	// the dashed line of Figs. 6–7.
	Ideal float64
}

// ScalingOptions configure the Fig. 6/7 experiments.
type ScalingOptions struct {
	// Ranks to sweep (paper: 1, 2, 3, 6, 12).
	Ranks []int
	// Strong: N is the fixed global pool size. Weak: NPerRank points per
	// rank.
	Strong   bool
	N        int
	NPerRank int
	D, C     int
	S, NCG   int // RELAX parameters (probes, fixed CG iterations)
	B        int // ROUND selections to time (time is reported per point)
	Seed     int64
	Machine  perfmodel.Machine
}

func (o *ScalingOptions) defaults() {
	if len(o.Ranks) == 0 {
		o.Ranks = []int{1, 2, 3, 6, 12}
	}
	if o.N <= 0 {
		o.N = 24000
	}
	if o.NPerRank <= 0 {
		o.NPerRank = 2000
	}
	if o.S <= 0 {
		o.S = 10
	}
	if o.NCG <= 0 {
		o.NCG = 20
	}
	if o.B <= 0 {
		o.B = 3
	}
	if o.Machine.Flops == 0 {
		o.Machine = perfmodel.CalibrateHost()
	}
}

// maxPhases reduces per-rank phase timings to the parallel critical path
// (max over ranks per phase).
func maxPhases(perRank []*timing.Phases) map[string]float64 {
	out := map[string]float64{}
	for _, ph := range perRank {
		if ph == nil {
			continue
		}
		for _, name := range ph.Names() {
			if s := ph.Seconds(name); s > out[name] {
				out[name] = s
			}
		}
	}
	return out
}

// RunRelaxScaling reproduces Fig. 6: time for one mirror-descent
// iteration of the distributed RELAX step at each rank count.
func RunRelaxScaling(ctx context.Context, o ScalingOptions) ([]*ScalingPoint, error) {
	o.defaults()
	var points []*ScalingPoint
	var firstErr error
	for _, p := range o.Ranks {
		// Cancellation is honored between measurements; the timed solve
		// itself runs under a background context so the per-iteration
		// cancellation-flag broadcast is skipped and the measured comm
		// phase is exactly the paper's communication schedule.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := o.N
		if !o.Strong {
			n = o.NPerRank * p
		}
		labeled, pool := SynthSets(2*o.C, n, o.D, o.C, o.Seed)
		phases := make([]*timing.Phases, p)
		wall := Timed(func() {
			mpi.Run(p, func(c *mpi.Comm) {
				sh := distfiral.MakeShard(labeled, pool, p, c.Rank())
				res, err := distfiral.Relax(context.Background(), c, sh, 10, firal.RelaxOptions{
					FixedIterations: 1,
					Probes:          o.S,
					CGTol:           1e-30,
					CGMaxIter:       o.NCG,
					Seed:            o.Seed,
				})
				if err != nil {
					if c.Rank() == 0 {
						firstErr = err
					}
					return
				}
				phases[c.Rank()] = res.Timings
			})
		})
		if firstErr != nil {
			return nil, firstErr
		}
		q := perfmodel.RelaxParams{N: n, D: o.D, C: o.C, S: o.S, NCG: 2 * o.NCG, P: p}
		pre, cg, grad, comm := o.Machine.RelaxIter(q)
		points = append(points, &ScalingPoint{
			Ranks: p, N: n,
			Measured: maxPhases(phases),
			Theory: map[string]float64{
				"precond": pre, "cg": cg, "gradient": grad, "comm": comm,
			},
			Wall: wall,
		})
	}
	fillIdeal(points, o.Strong)
	return points, nil
}

// RunRoundScaling reproduces Fig. 7: time per selected point of the
// distributed ROUND step at each rank count.
func RunRoundScaling(ctx context.Context, o ScalingOptions) ([]*ScalingPoint, error) {
	o.defaults()
	var points []*ScalingPoint
	var firstErr error
	for _, p := range o.Ranks {
		// As in RunRelaxScaling: poll between measurements, time the
		// solve itself without the cancellation broadcast.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := o.N
		if !o.Strong {
			n = o.NPerRank * p
		}
		labeled, pool := SynthSets(2*o.C, n, o.D, o.C, o.Seed)
		phases := make([]*timing.Phases, p)
		wall := Timed(func() {
			mpi.Run(p, func(c *mpi.Comm) {
				sh := distfiral.MakeShard(labeled, pool, p, c.Rank())
				z := make([]float64, sh.PoolLocal.N())
				mat.Fill(z, float64(o.B)/float64(n))
				res, err := distfiral.Round(context.Background(), c, sh, z, o.B, 0)
				if err != nil {
					if c.Rank() == 0 {
						firstErr = err
					}
					return
				}
				phases[c.Rank()] = res.Timings
			})
		})
		if firstErr != nil {
			return nil, firstErr
		}
		// Per-point times, as in Fig. 7.
		meas := maxPhases(phases)
		for k := range meas {
			meas[k] /= float64(o.B)
		}
		q := perfmodel.RoundParams{N: n, D: o.D, C: o.C, P: p}
		points = append(points, &ScalingPoint{
			Ranks: p, N: n,
			Measured: meas,
			Theory: map[string]float64{
				"eig":       o.Machine.EigComp(q),
				"objective": o.Machine.ObjectiveComp(q),
				"other":     o.Machine.RoundOtherComp(q),
				"comm":      o.Machine.RoundComm(q),
			},
			Wall: wall / float64(o.B),
		})
	}
	fillIdeal(points, o.Strong)
	return points, nil
}

// fillIdeal computes the dashed ideal-scaling line from the p = 1 point.
func fillIdeal(points []*ScalingPoint, strong bool) {
	if len(points) == 0 {
		return
	}
	base := points[0].Wall * float64(points[0].Ranks)
	for _, pt := range points {
		if strong {
			pt.Ideal = base / float64(pt.Ranks)
		} else {
			pt.Ideal = points[0].Wall
		}
	}
}

// PrintScaling renders a Fig. 6/7 sweep.
func PrintScaling(w io.Writer, title string, phases []string, points []*ScalingPoint) {
	fmt.Fprintf(w, "# %s\n", title)
	headers := []string{"ranks", "n", "wall", "ideal"}
	for _, ph := range phases {
		headers = append(headers, ph+" (exp)", ph+" (theory)")
	}
	var rows [][]string
	for _, pt := range points {
		row := []string{
			fmt.Sprintf("%d", pt.Ranks),
			fmt.Sprintf("%d", pt.N),
			Secs(pt.Wall),
			Secs(pt.Ideal),
		}
		for _, ph := range phases {
			row = append(row, Secs(pt.Measured[ph]), Secs(pt.Theory[ph]))
		}
		rows = append(rows, row)
	}
	PrintTable(w, headers, rows)
}
