package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/firal"
	"repro/internal/mat"
	"repro/internal/perfmodel"
	"repro/internal/timing"
)

// BreakdownRow is one bar group of Fig. 5: for one value of the swept
// parameter (d or c), the measured wall-clock per phase next to the
// theoretical peak estimate per phase.
type BreakdownRow struct {
	Param    int
	Measured map[string]float64
	Theory   map[string]float64
}

// SingleDeviceOptions configure the Fig. 5 sweeps.
type SingleDeviceOptions struct {
	// N is the pool size (paper: 1e5 for the d sweep, 1.3e6 for c sweep).
	N int
	// S is the number of Rademacher probes (paper: 10).
	S int
	// NCG fixes the CG iteration count (paper: 50).
	NCG int
	// Seed for the synthetic sets.
	Seed int64
	// Machine supplies the theory constants; zero value calibrates the
	// host.
	Machine perfmodel.Machine
}

func (o *SingleDeviceOptions) defaults() {
	if o.N <= 0 {
		o.N = 20000
	}
	if o.S <= 0 {
		o.S = 10
	}
	if o.NCG <= 0 {
		o.NCG = 50
	}
	if o.Machine.Flops == 0 {
		o.Machine = perfmodel.CalibrateHost()
	}
}

// relaxOnce runs exactly one mirror-descent iteration with a fixed CG
// iteration count and returns the phase breakdown.
func relaxOnce(ctx context.Context, p *firal.Problem, s, ncg int, seed int64) (*timing.Phases, error) {
	res, err := firal.RelaxFast(ctx, p, 10, firal.RelaxOptions{
		FixedIterations: 1,
		Probes:          s,
		// A tiny tolerance with MaxIter = ncg forces exactly ncg CG
		// iterations per solve, matching the paper's fixed nCG = 50 runs.
		CGTol:     1e-30,
		CGMaxIter: ncg,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Timings, nil
}

// roundOnce runs exactly one ROUND iteration and returns the phase
// breakdown.
func roundOnce(p *firal.Problem, seed int64) (*timing.Phases, error) {
	z := make([]float64, p.N())
	mat.Fill(z, 10/float64(p.N()))
	res, err := firal.RoundFast(p, z, 1, firal.RoundOptions{})
	if err != nil {
		return nil, err
	}
	return res.Timings, nil
}

// RunRelaxSweep reproduces Fig. 5(A)/(B): the RELAX phase breakdown as a
// function of the swept parameter. sweep is "d" (c held fixed) or "c"
// (d held fixed); values are the parameter values; fixedOther is the
// non-swept dimension.
func RunRelaxSweep(ctx context.Context, sweep string, values []int, fixedOther int, o SingleDeviceOptions) ([]*BreakdownRow, error) {
	o.defaults()
	var rows []*BreakdownRow
	for _, v := range values {
		d, c := fixedOther, v
		if sweep == "d" {
			d, c = v, fixedOther
		}
		labeled, pool := SynthSets(2*c, o.N, d, c, o.Seed)
		p := firal.NewProblem(labeled, pool)
		ph, err := relaxOnce(ctx, p, o.S, o.NCG, o.Seed)
		if err != nil {
			return nil, err
		}
		q := perfmodel.RelaxParams{N: o.N, D: d, C: c, S: o.S, NCG: 2 * o.NCG, P: 1}
		// 2·NCG: Algorithm 2 performs two multi-RHS solves per iteration.
		rows = append(rows, &BreakdownRow{
			Param: v,
			Measured: map[string]float64{
				"precond":  ph.Seconds("precond"),
				"cg":       ph.Seconds("cg"),
				"gradient": ph.Seconds("gradient"),
				"other":    ph.Seconds("other"),
			},
			Theory: map[string]float64{
				"precond":  o.Machine.PrecondComp(q),
				"cg":       o.Machine.CGComp(q),
				"gradient": o.Machine.GradientComp(q),
				"other":    0,
			},
		})
	}
	return rows, nil
}

// RunRoundSweep reproduces Fig. 5(C)/(D): the ROUND phase breakdown per
// iteration as a function of d or c.
func RunRoundSweep(ctx context.Context, sweep string, values []int, fixedOther int, o SingleDeviceOptions) ([]*BreakdownRow, error) {
	o.defaults()
	var rows []*BreakdownRow
	for _, v := range values {
		d, c := fixedOther, v
		if sweep == "d" {
			d, c = v, fixedOther
		}
		labeled, pool := SynthSets(2*c, o.N, d, c, o.Seed)
		p := firal.NewProblem(labeled, pool)
		ph, err := roundOnce(p, o.Seed)
		if err != nil {
			return nil, err
		}
		q := perfmodel.RoundParams{N: o.N, D: d, C: c, P: 1}
		rows = append(rows, &BreakdownRow{
			Param: v,
			Measured: map[string]float64{
				"eig":       ph.Seconds("eig"),
				"objective": ph.Seconds("objective"),
				"other":     ph.Seconds("other"),
			},
			Theory: map[string]float64{
				"eig":       o.Machine.EigComp(q),
				"objective": o.Machine.ObjectiveComp(q),
				"other":     o.Machine.RoundOtherComp(q),
			},
		})
	}
	return rows, nil
}

// PrintBreakdown renders a Fig. 5 sweep: for every parameter value, a
// theory and a measured column per phase (the paper's paired bars).
func PrintBreakdown(w io.Writer, title, param string, phases []string, rows []*BreakdownRow) {
	fmt.Fprintf(w, "# %s\n", title)
	headers := []string{param}
	for _, ph := range phases {
		headers = append(headers, ph+" (exp)", ph+" (theory)")
	}
	var table [][]string
	for _, r := range rows {
		row := []string{fmt.Sprintf("%d", r.Param)}
		for _, ph := range phases {
			row = append(row, Secs(r.Measured[ph]), Secs(r.Theory[ph]))
		}
		table = append(table, row)
	}
	PrintTable(w, headers, table)
}
