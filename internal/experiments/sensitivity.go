package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/firal"
)

// SensitivityCurve is one RELAX objective trajectory of Fig. 4.
type SensitivityCurve struct {
	Label      string
	Objectives []float64
}

// SensitivityOptions configure the Fig. 4 experiment.
type SensitivityOptions struct {
	Scale      float64
	Seed       int64
	Iterations int       // mirror-descent iterations to trace (paper: ~40)
	SValues    []int     // Rademacher counts to sweep (paper: 10, 20, 100)
	TolValues  []float64 // cgtol values to sweep (paper: 0.5, 0.1, 0.01, 0.001)
	// IncludeExact adds the exact RELAX trajectory (skipped automatically
	// when ẽd is too large).
	IncludeExact bool
	MaxExactEd   int
}

// RunSensitivity reproduces Fig. 4 on one dataset: the RELAX objective
// trace for the exact solver and for the fast solver at each probe count
// (fixed cgtol = 0.1) and each cgtol (fixed s = 10).
func RunSensitivity(ctx context.Context, cfg dataset.Config, o SensitivityOptions) ([]*SensitivityCurve, error) {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Iterations <= 0 {
		o.Iterations = 40
	}
	if len(o.SValues) == 0 {
		o.SValues = []int{10, 20, 100}
	}
	if len(o.TolValues) == 0 {
		o.TolValues = []float64{0.5, 0.1, 0.01, 0.001}
	}
	if o.MaxExactEd <= 0 {
		o.MaxExactEd = 600
	}
	ds := dataset.Generate(cfg.Scale(o.Scale), o.Seed)
	p, err := problemFromDataset(ds)
	if err != nil {
		return nil, err
	}
	b := cfg.Budget

	var curves []*SensitivityCurve
	if o.IncludeExact && p.Ed() <= o.MaxExactEd {
		res, err := firal.RelaxExact(ctx, p, b, firal.RelaxOptions{
			FixedIterations: o.Iterations, RecordObjective: true,
		})
		if err != nil {
			return nil, err
		}
		curves = append(curves, &SensitivityCurve{Label: "Exact", Objectives: res.Objectives})
	}
	for _, s := range o.SValues {
		res, err := firal.RelaxFast(ctx, p, b, firal.RelaxOptions{
			FixedIterations: o.Iterations, RecordObjective: true,
			Probes: s, CGTol: 0.1, Seed: o.Seed + int64(s),
		})
		if err != nil {
			return nil, err
		}
		curves = append(curves, &SensitivityCurve{
			Label:      fmt.Sprintf("Approx: s = %d", s),
			Objectives: res.Objectives,
		})
	}
	for _, tol := range o.TolValues {
		res, err := firal.RelaxFast(ctx, p, b, firal.RelaxOptions{
			FixedIterations: o.Iterations, RecordObjective: true,
			Probes: 10, CGTol: tol, Seed: o.Seed + 7,
		})
		if err != nil {
			return nil, err
		}
		curves = append(curves, &SensitivityCurve{
			Label:      fmt.Sprintf("Approx: cgtol = %g", tol),
			Objectives: res.Objectives,
		})
	}
	return curves, nil
}

// PrintSensitivity renders the Fig. 4 objective traces, one column per
// curve.
func PrintSensitivity(w io.Writer, dataset string, curves []*SensitivityCurve) {
	fmt.Fprintf(w, "# Fig. 4 — RELAX objective vs iteration on %s\n", dataset)
	headers := []string{"iter"}
	for _, c := range curves {
		headers = append(headers, c.Label)
	}
	iters := 0
	for _, c := range curves {
		if len(c.Objectives) > iters {
			iters = len(c.Objectives)
		}
	}
	var rows [][]string
	for i := 0; i < iters; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, c := range curves {
			if i < len(c.Objectives) {
				row = append(row, F(c.Objectives[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	PrintTable(w, headers, rows)
}
