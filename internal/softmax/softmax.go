// Package softmax implements the multiclass logistic-regression model of
// Eq. 1: given weights θ ∈ R^{d×c}, p(y = k | x, θ) ∝ exp(θ_kᵀ x).
//
// The reproduction uses the full c-column softmax parametrization (so the
// Fisher blocks run over k ∈ [c] and ẽd = dc), matching Lemma 2 and
// Algorithm 3 of the paper; an L2 penalty fixes the gauge freedom when
// training.
package softmax

import (
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Probabilities computes the n×c matrix of class probabilities
// h_i = softmax(θᵀ x_i) for the rows x_i of x (n×d) and θ (d×c). If dst is
// nil it is allocated.
func Probabilities(dst *mat.Dense, x, theta *mat.Dense) *mat.Dense {
	if x.Cols != theta.Rows {
		panic("softmax: dimension mismatch")
	}
	logits := mat.Mul(dst, x, theta)
	parallel.ForChunk(logits.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			SoftmaxInPlace(logits.Row(i))
		}
	})
	return logits
}

// SoftmaxInPlace replaces the logits z with softmax(z), numerically
// stabilized by max subtraction.
func SoftmaxInPlace(z []float64) {
	m := z[0]
	for _, v := range z[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - m)
		z[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range z {
		z[i] *= inv
	}
}

// NLL returns the average negative log-likelihood of labels y under
// probability rows h (n×c), i.e. (1/n) Σ_i -log h_i[y_i].
func NLL(h *mat.Dense, y []int) float64 {
	if len(y) != h.Rows {
		panic("softmax: label length mismatch")
	}
	var loss float64
	for i, yi := range y {
		p := h.At(i, yi)
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	return loss / float64(len(y))
}

// LossGrad evaluates the L2-regularized mean negative log-likelihood
//
//	f(θ) = (1/n) Σ_i −log p(y_i | x_i, θ) + (λ/2)‖θ‖²_F
//
// and writes ∇f into grad (d×c, allocated if nil). It returns f and the
// probability matrix h (n×c) as a by-product, since active-learning
// selectors need h for every pool point.
func LossGrad(x *mat.Dense, y []int, theta *mat.Dense, lambda float64, grad *mat.Dense) (float64, *mat.Dense, *mat.Dense) {
	n := x.Rows
	h := Probabilities(nil, x, theta)
	loss := NLL(h, y)

	// Residual R = (h − onehot(y))/n; grad = XᵀR + λθ.
	r := h.Clone()
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := r.Row(i)
		row[y[i]] -= 1
		for j := range row {
			row[j] *= invN
		}
	}
	grad = mat.MulTransA(grad, x, r)
	if lambda != 0 {
		grad.AddScaled(lambda, theta)
		loss += 0.5 * lambda * mat.FrobDot(theta, theta)
	}
	return loss, grad, h
}

// Predict returns argmax_k h_ik for every row of h.
func Predict(h *mat.Dense) []int {
	out := make([]int, h.Rows)
	parallel.ForChunk(h.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k, _ := mat.MaxIdx(h.Row(i))
			out[i] = k
		}
	})
	return out
}

// Entropy returns the Shannon entropy of each probability row, the score
// used by the Entropy baseline selector (§ IV-A): points with the highest
// predictive entropy are the most uncertain.
func Entropy(h *mat.Dense) []float64 {
	out := make([]float64, h.Rows)
	parallel.ForChunk(h.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var e float64
			for _, p := range h.Row(i) {
				if p > 0 {
					e -= p * math.Log(p)
				}
			}
			out[i] = e
		}
	})
	return out
}
