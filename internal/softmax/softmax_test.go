package softmax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestSoftmaxInPlaceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		z := make([]float64, n)
		for i := range z {
			z[i] = 100 * rng.NormFloat64() // stress stability
		}
		SoftmaxInPlace(z)
		var sum float64
		for _, p := range z {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilitiesUniformAtZeroTheta(t *testing.T) {
	x := mat.NewDense(3, 2)
	x.Set(0, 0, 1)
	theta := mat.NewDense(2, 4)
	h := Probabilities(nil, x, theta)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(h.At(i, j)-0.25) > 1e-12 {
				t.Fatalf("expected uniform probabilities, got %g", h.At(i, j))
			}
		}
	}
}

func TestLossGradNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d, c := 8, 3, 4
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(c)
	}
	theta := mat.NewDense(d, c)
	for i := range theta.Data {
		theta.Data[i] = 0.3 * rng.NormFloat64()
	}
	lambda := 0.05
	_, grad, _ := LossGrad(x, y, theta, lambda, nil)

	// Finite-difference check.
	const h = 1e-6
	for idx := 0; idx < d*c; idx++ {
		tp := theta.Clone()
		tp.Data[idx] += h
		fp, _, _ := LossGrad(x, y, tp, lambda, nil)
		tm := theta.Clone()
		tm.Data[idx] -= h
		fm, _, _ := LossGrad(x, y, tm, lambda, nil)
		num := (fp - fm) / (2 * h)
		if math.Abs(num-grad.Data[idx]) > 1e-5 {
			t.Fatalf("grad[%d] = %g, numerical %g", idx, grad.Data[idx], num)
		}
	}
}

func TestPredictAndEntropy(t *testing.T) {
	h := mat.FromRows([][]float64{
		{0.7, 0.2, 0.1},
		{0.1, 0.1, 0.8},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	})
	pred := Predict(h)
	if pred[0] != 0 || pred[1] != 2 {
		t.Fatalf("predictions %v", pred)
	}
	ent := Entropy(h)
	// Uniform row has maximal entropy log(3).
	if math.Abs(ent[2]-math.Log(3)) > 1e-12 {
		t.Fatalf("uniform entropy %g", ent[2])
	}
	if ent[0] >= ent[2] || ent[1] >= ent[2] {
		t.Fatal("confident rows should have lower entropy than uniform")
	}
}

func TestNLLMatchesManual(t *testing.T) {
	h := mat.FromRows([][]float64{{0.5, 0.5}, {0.9, 0.1}})
	y := []int{0, 1}
	want := -(math.Log(0.5) + math.Log(0.1)) / 2
	if got := NLL(h, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NLL %g want %g", got, want)
	}
}
