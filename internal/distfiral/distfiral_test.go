package distfiral

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

// testSets builds a labeled set and a pool with class structure (reduced
// probabilities, as the FIRAL solvers require).
func testSets(seed int64, nLabeled, nPool, d, c int) (*hessian.Set, *hessian.Set) {
	rng := rnd.New(seed)
	means := mat.NewDense(c, d)
	for k := 0; k < c; k++ {
		rng.UnitVector(means.Row(k))
		mat.Scal(2, means.Row(k))
	}
	sample := func(n int) *mat.Dense {
		x := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			k := i % c
			rng.Normal(x.Row(i), 0, 0.4)
			mat.Axpy(1, means.Row(k), x.Row(i))
		}
		return x
	}
	theta := means.T()
	xo, xu := sample(nLabeled), sample(nPool)
	ho := hessian.ReduceProbs(softmax.Probabilities(nil, xo, theta))
	hu := hessian.ReduceProbs(softmax.Probabilities(nil, xu, theta))
	return hessian.NewSet(xo, ho), hessian.NewSet(xu, hu)
}

func TestMakeShardCoversPool(t *testing.T) {
	labeled, pool := testSets(1, 6, 23, 3, 3)
	for _, p := range []int{1, 2, 3, 5} {
		total := 0
		for r := 0; r < p; r++ {
			sh := MakeShard(labeled, pool, p, r)
			total += sh.PoolLocal.N()
			if sh.PoolTotal != 23 {
				t.Fatalf("PoolTotal %d", sh.PoolTotal)
			}
		}
		if total != 23 {
			t.Fatalf("p=%d: shards cover %d points", p, total)
		}
	}
}

// TestDistributedRelaxMatchesSerial: with identical seeds and fixed
// iteration counts, the distributed RELAX must reproduce the serial z⋄ up
// to floating-point summation-order noise, for every paper-relevant rank
// count.
func TestDistributedRelaxMatchesSerial(t *testing.T) {
	labeled, pool := testSets(2, 8, 36, 3, 3)
	b := 5
	opts := firal.RelaxOptions{FixedIterations: 8, Seed: 11, Probes: 8, CGTol: 0.01}

	serial, err := firal.RelaxFast(context.Background(), firal.NewProblem(labeled, pool), b, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 2, 3, 4} {
		zGlobal := make([]float64, pool.N())
		var mu sync.Mutex
		mpi.Run(p, func(c *mpi.Comm) {
			sh := MakeShard(labeled, pool, p, c.Rank())
			res, err := Relax(context.Background(), c, sh, b, opts)
			if err != nil {
				t.Errorf("p=%d: %v", p, err)
				return
			}
			mu.Lock()
			copy(zGlobal[sh.PoolOffset:sh.PoolOffset+sh.PoolLocal.N()], res.ZLocal)
			mu.Unlock()
		})
		for i := range zGlobal {
			if math.Abs(zGlobal[i]-serial.Z[i]) > 1e-6*(1+math.Abs(serial.Z[i])) {
				t.Fatalf("p=%d: z[%d] = %g serial %g", p, i, zGlobal[i], serial.Z[i])
			}
		}
	}
}

// TestDistributedRoundMatchesSerial feeds the same z⋄ to the serial and
// distributed ROUND and demands identical selections.
func TestDistributedRoundMatchesSerial(t *testing.T) {
	labeled, pool := testSets(3, 8, 30, 3, 3)
	b := 6
	prob := firal.NewProblem(labeled, pool)
	z := make([]float64, pool.N())
	rng := rnd.New(7)
	var sum float64
	for i := range z {
		z[i] = rng.Float64()
		sum += z[i]
	}
	mat.Scal(float64(b)/sum, z)

	serial, err := firal.RoundFast(prob, z, b, firal.RoundOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 2, 3, 4} {
		var selected []int
		var nus []float64
		var minEig float64
		var once sync.Once
		mpi.Run(p, func(c *mpi.Comm) {
			sh := MakeShard(labeled, pool, p, c.Rank())
			zLocal := append([]float64(nil), z[sh.PoolOffset:sh.PoolOffset+sh.PoolLocal.N()]...)
			res, err := Round(context.Background(), c, sh, zLocal, b, 0)
			if err != nil {
				t.Errorf("p=%d: %v", p, err)
				return
			}
			once.Do(func() {
				selected = res.Selected
				nus = res.Nu
				minEig = res.MinEigH
			})
		})
		if len(selected) != len(serial.Selected) {
			t.Fatalf("p=%d: %d selections vs %d", p, len(selected), len(serial.Selected))
		}
		for i := range selected {
			if selected[i] != serial.Selected[i] {
				t.Fatalf("p=%d: selection %d: %d vs serial %d (%v vs %v)",
					p, i, selected[i], serial.Selected[i], selected, serial.Selected)
			}
		}
		for i := range nus {
			if math.Abs(nus[i]-serial.Nu[i]) > 1e-6*(1+math.Abs(serial.Nu[i])) {
				t.Fatalf("p=%d: ν[%d] = %g serial %g", p, i, nus[i], serial.Nu[i])
			}
		}
		if math.Abs(minEig-serial.MinEigH) > 1e-6*(1+math.Abs(serial.MinEigH)) {
			t.Fatalf("p=%d: MinEigH %g serial %g", p, minEig, serial.MinEigH)
		}
	}
}

// TestAllRanksAgreeOnSelection: the Selected slice must be identical on
// every rank (it is assembled from collectives only).
func TestAllRanksAgreeOnSelection(t *testing.T) {
	labeled, pool := testSets(4, 6, 24, 2, 3)
	b := 4
	p := 3
	results := make([][]int, p)
	mpi.Run(p, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p, c.Rank())
		sel, _, _, err := Select(context.Background(), c, sh, b, 0, firal.RelaxOptions{FixedIterations: 5, Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		results[c.Rank()] = sel
	})
	for r := 1; r < p; r++ {
		if len(results[r]) != len(results[0]) {
			t.Fatalf("rank %d selection length differs", r)
		}
		for i := range results[r] {
			if results[r][i] != results[0][i] {
				t.Fatalf("rank %d disagrees: %v vs %v", r, results[r], results[0])
			}
		}
	}
}

// TestBudgetExceedsPool: with b > n the distributed round must select every
// pool point exactly once and stop.
func TestBudgetExceedsPool(t *testing.T) {
	labeled, pool := testSets(5, 6, 5, 2, 3)
	p := 2
	mpi.Run(p, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p, c.Rank())
		z := make([]float64, sh.PoolLocal.N())
		mat.Fill(z, 1)
		res, err := Round(context.Background(), c, sh, z, 9, 0)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if len(res.Selected) != 5 {
			t.Errorf("selected %d of 5 pool points", len(res.Selected))
		}
		seen := map[int]bool{}
		for _, i := range res.Selected {
			if seen[i] {
				t.Errorf("duplicate global index %d", i)
			}
			seen[i] = true
		}
	})
}

// TestCommStatsNonzero sanity-checks that the distributed path actually
// communicates (guards against accidentally serial fallbacks).
func TestCommStatsNonzero(t *testing.T) {
	labeled, pool := testSets(6, 6, 20, 2, 3)
	stats := mpi.Run(3, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, 3, c.Rank())
		if _, _, _, err := Select(context.Background(), c, sh, 3, 0, firal.RelaxOptions{FixedIterations: 3, Seed: 1}); err != nil {
			t.Errorf("%v", err)
		}
	})
	for r, s := range stats {
		if s.SentBytes == 0 {
			t.Fatalf("rank %d sent no data", r)
		}
	}
}
