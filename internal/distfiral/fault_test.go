package distfiral

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/mpi"
	"repro/internal/mpi/mpitest"
)

const distFaultTimeout = 150 * time.Millisecond

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// victimCollectives measures how many collectives the victim's endpoint
// participates in during a fault-free distributed RELAX with the given
// options — the calibration for planting a fault at a chosen phase. The
// checkpoint hook is set (as SelectResilient always sets it) so the
// collective schedule matches the run under test.
func victimCollectives(t *testing.T, labeled, pool *hessian.Set, p, b, victim int, opts firal.RelaxOptions) int {
	t.Helper()
	opts.OnIteration = func(*firal.RelaxCheckpoint) {}
	stats := mpi.Run(p, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p, c.Rank())
		if _, err := Relax(context.Background(), c, sh, b, opts); err != nil {
			t.Errorf("calibration relax: %v", err)
		}
	})
	return int(stats[victim].Collectives)
}

// freshSelect runs a fault-free p-rank Select resumed from ck and returns
// its selection — the reference the healed run must match bit for bit.
func freshSelect(t *testing.T, labeled, pool *hessian.Set, p, b int, opts firal.RelaxOptions, ck *firal.RelaxCheckpoint) []int {
	t.Helper()
	opts.Resume = ck
	var out []int
	var once sync.Once
	mpi.Run(p, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p, c.Rank())
		sel, _, _, err := Select(context.Background(), c, sh, b, 0, opts)
		if err != nil {
			t.Errorf("fresh %d-rank run: %v", p, err)
			return
		}
		once.Do(func() { out = sel })
	})
	return out
}

// runResilientWithKill runs SelectResilient at p ranks with the victim
// killed after the given collective count and returns the survivors'
// results keyed by original rank.
func runResilientWithKill(t *testing.T, labeled, pool *hessian.Set, p, b, victim, afterCollectives int, opts firal.RelaxOptions) map[int]*ResilientResult {
	t.Helper()
	plan := &mpitest.FaultPlan{Victim: victim, Kind: mpitest.FaultKill, AfterCollectives: afterCollectives}
	var mu sync.Mutex
	results := make(map[int]*ResilientResult)
	mpi.RunTransports(plan.Wrap(mpi.NewLocalWorld(p)), func(c *mpi.Comm) {
		c.SetOpTimeout(distFaultTimeout)
		mk := func(size, rank int) (*Shard, error) {
			return MakeShard(labeled, pool, size, rank), nil
		}
		res, err := SelectResilient(context.Background(), c, mk, b, 0, opts)
		if c.Rank() == victim {
			if !errors.Is(err, mpitest.ErrVictimKilled) {
				t.Errorf("victim: got %v, want its own kill error", err)
			}
			return
		}
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
	})
	if len(results) != p-1 {
		t.Fatalf("%d survivors finished, want %d", len(results), p-1)
	}
	return results
}

// checkRecovery asserts the survivors agree with each other, lost exactly
// the victim, and — the ISSUE's core acceptance — selected bit-identically
// to a fresh (p−1)-rank run resumed from the same checkpoint.
func checkRecovery(t *testing.T, labeled, pool *hessian.Set, p, b, victim int, opts firal.RelaxOptions, results map[int]*ResilientResult) *firal.RelaxCheckpoint {
	t.Helper()
	var ref *ResilientResult
	for _, res := range results {
		ref = res
		break
	}
	for r, res := range results {
		if len(res.LostRanks) != 1 || res.LostRanks[0] != victim {
			t.Fatalf("rank %d: lost ranks %v, want [%d]", r, res.LostRanks, victim)
		}
		if res.Size != p-1 {
			t.Fatalf("rank %d: final size %d, want %d", r, res.Size, p-1)
		}
		if !equalInts(res.Selected, ref.Selected) {
			t.Fatalf("rank %d selection %v disagrees with %v", r, res.Selected, ref.Selected)
		}
		if len(res.ResumePoints) != 1 {
			t.Fatalf("rank %d: %d heals, want 1", r, len(res.ResumePoints))
		}
		if ckKey(res.ResumePoints[0]) != ckKey(ref.ResumePoints[0]) {
			t.Fatalf("rank %d resumed from step %g, rank %d from %g",
				r, ckKey(res.ResumePoints[0]), ref.Rank, ckKey(ref.ResumePoints[0]))
		}
	}
	fresh := freshSelect(t, labeled, pool, p-1, b, opts, ref.ResumePoints[0])
	if !equalInts(fresh, ref.Selected) {
		t.Fatalf("healed selection %v differs from fresh %d-rank run %v resumed from the same checkpoint",
			ref.Selected, p-1, fresh)
	}
	return ref.ResumePoints[0]
}

// TestSelectResilientKillMidRelax kills one rank in the middle of the
// mirror-descent loop — including rank 0, whose death takes the probe
// stream with it — and checks the survivors heal, re-shard, resume from
// the agreed checkpoint, and select exactly what a fresh (p−1)-rank run
// resumed from that checkpoint selects.
func TestSelectResilientKillMidRelax(t *testing.T) {
	labeled, pool := testSets(7, 8, 30, 3, 3)
	const p, b = 3, 5
	opts := firal.RelaxOptions{FixedIterations: 7, Seed: 11, Probes: 6, CGTol: 0.01}
	for _, victim := range []int{0, 2} {
		t.Run(fmt.Sprintf("victim=%d", victim), func(t *testing.T) {
			calib := opts
			calib.FixedIterations = 3
			after := victimCollectives(t, labeled, pool, p, b, victim, calib)
			results := runResilientWithKill(t, labeled, pool, p, b, victim, after, opts)
			ck := checkRecovery(t, labeled, pool, p, b, victim, opts, results)
			if ck == nil || ck.Done {
				t.Fatalf("expected a mid-RELAX checkpoint, resumed from %+v", ck)
			}
			if ck.Iteration < 1 || ck.Iteration >= opts.FixedIterations {
				t.Fatalf("resume iteration %d not strictly inside the %d-iteration RELAX", ck.Iteration, opts.FixedIterations)
			}
		})
	}
}

// TestSelectResilientKillMidRound plants the kill a few collectives after
// RELAX completes, so the loss hits the greedy rounding loop: survivors
// must resume with mirror descent skipped (or only its final checkpoint
// replayed) and rerun ROUND to the same selection as a fresh (p−1)-rank
// run from the final checkpoint.
func TestSelectResilientKillMidRound(t *testing.T) {
	labeled, pool := testSets(7, 8, 30, 3, 3)
	const p, b, victim = 3, 5, 1
	opts := firal.RelaxOptions{FixedIterations: 5, Seed: 11, Probes: 6, CGTol: 0.01}
	after := victimCollectives(t, labeled, pool, p, b, victim, opts) + 4
	results := runResilientWithKill(t, labeled, pool, p, b, victim, after, opts)
	ck := checkRecovery(t, labeled, pool, p, b, victim, opts, results)
	if ck == nil || ck.Iteration != opts.FixedIterations {
		t.Fatalf("expected the final RELAX checkpoint, resumed from %+v", ck)
	}
}

// TestSelectResilientCleanRunMatchesSelect pins the zero-fault overhead
// path: with no failures SelectResilient must select exactly what plain
// Select does (the checkpoint gathers change the collective schedule but
// not the data flow).
func TestSelectResilientCleanRunMatchesSelect(t *testing.T) {
	labeled, pool := testSets(9, 8, 24, 3, 3)
	const p, b = 3, 4
	opts := firal.RelaxOptions{FixedIterations: 4, Seed: 5, Probes: 6, CGTol: 0.01}
	want := freshSelect(t, labeled, pool, p, b, opts, nil)
	var mu sync.Mutex
	results := make(map[int]*ResilientResult)
	mpi.Run(p, func(c *mpi.Comm) {
		c.SetOpTimeout(5 * time.Second)
		mk := func(size, rank int) (*Shard, error) {
			return MakeShard(labeled, pool, size, rank), nil
		}
		res, err := SelectResilient(context.Background(), c, mk, b, 0, opts)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
	})
	for r, res := range results {
		if len(res.LostRanks) != 0 || len(res.ResumePoints) != 0 {
			t.Fatalf("rank %d: clean run reports losses %v / %d heals", r, res.LostRanks, len(res.ResumePoints))
		}
		if !equalInts(res.Selected, want) {
			t.Fatalf("rank %d: resilient %v vs plain %v", r, res.Selected, want)
		}
	}
}

// TestSelectResilientRequiresTimeout pins the guard: resilience without a
// failure detector is a lie and must be refused up front.
func TestSelectResilientRequiresTimeout(t *testing.T) {
	labeled, pool := testSets(9, 6, 12, 2, 3)
	mpi.Run(2, func(c *mpi.Comm) {
		mk := func(size, rank int) (*Shard, error) {
			return MakeShard(labeled, pool, size, rank), nil
		}
		if _, err := SelectResilient(context.Background(), c, mk, 2, 0, firal.RelaxOptions{FixedIterations: 2}); err == nil {
			t.Errorf("rank %d: SelectResilient without SetOpTimeout should fail", c.Rank())
		}
	})
}

// TestDistributedRelaxCheckpointResume pins the serial-parity resume
// semantics on the distributed solver: resuming mid-run at the same rank
// count reproduces the uninterrupted trajectory bit for bit, and resuming
// a Done checkpoint skips mirror descent entirely.
func TestDistributedRelaxCheckpointResume(t *testing.T) {
	labeled, pool := testSets(8, 8, 28, 3, 3)
	const p, b = 3, 4
	opts := firal.RelaxOptions{FixedIterations: 6, Seed: 13, Probes: 6, CGTol: 0.01}

	var mu sync.Mutex
	var cks []*firal.RelaxCheckpoint // rank 0's checkpoint stream
	full := make([][]float64, p)
	mpi.Run(p, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p, c.Rank())
		o := opts
		o.OnIteration = func(ck *firal.RelaxCheckpoint) {
			if c.Rank() == 0 {
				cks = append(cks, ck.Clone())
			}
		}
		res, err := Relax(context.Background(), c, sh, b, o)
		if err != nil {
			t.Errorf("full run: %v", err)
			return
		}
		mu.Lock()
		full[c.Rank()] = res.ZLocal
		mu.Unlock()
	})
	if len(cks) != opts.FixedIterations+1 || !cks[len(cks)-1].Done {
		t.Fatalf("captured %d checkpoints (last done=%v), want %d with a Done tail",
			len(cks), cks[len(cks)-1].Done, opts.FixedIterations+1)
	}

	// Resume from the middle at the same rank count: bit-identical z⋄.
	resumed := make([][]float64, p)
	mpi.Run(p, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p, c.Rank())
		o := opts
		o.Resume = cks[2] // after iteration 3
		res, err := Relax(context.Background(), c, sh, b, o)
		if err != nil {
			t.Errorf("resumed run: %v", err)
			return
		}
		mu.Lock()
		resumed[c.Rank()] = res.ZLocal
		mu.Unlock()
	})
	for r := 0; r < p; r++ {
		for i := range full[r] {
			if resumed[r][i] != full[r][i] {
				t.Fatalf("rank %d: resumed z[%d]=%g, uninterrupted %g", r, i, resumed[r][i], full[r][i])
			}
		}
	}

	// Resume the Done checkpoint, at a different rank count: mirror
	// descent is skipped and the restored iterate reproduces the full
	// run's z⋄ exactly (the checkpoint is global, so re-sharding at p−1
	// just re-slices it).
	mpi.Run(p-1, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, p-1, c.Rank())
		o := opts
		o.Resume = cks[len(cks)-1]
		res, err := Relax(context.Background(), c, sh, b, o)
		if err != nil {
			t.Errorf("done-resume: %v", err)
			return
		}
		if res.Iterations != opts.FixedIterations {
			t.Errorf("done-resume reports %d iterations", res.Iterations)
		}
		lo := sh.PoolOffset
		for i, v := range res.ZLocal {
			want := cks[len(cks)-1].Z[lo+i] * float64(b)
			if v != want {
				t.Errorf("rank %d: done-resume z[%d]=%g, want %g", c.Rank(), i, v, want)
				return
			}
		}
	})
}

// TestRelaxRejectsMismatchedCheckpoint pins the ErrBadCheckpoint wrap.
func TestRelaxRejectsMismatchedCheckpoint(t *testing.T) {
	labeled, pool := testSets(9, 6, 12, 2, 3)
	mpi.Run(2, func(c *mpi.Comm) {
		sh := MakeShard(labeled, pool, 2, c.Rank())
		o := firal.RelaxOptions{FixedIterations: 2, Resume: &firal.RelaxCheckpoint{Iteration: 1, Z: make([]float64, 5)}}
		_, err := Relax(context.Background(), c, sh, 2, o)
		if !errors.Is(err, firal.ErrBadCheckpoint) {
			t.Errorf("rank %d: got %v, want ErrBadCheckpoint", c.Rank(), err)
		}
	})
}
