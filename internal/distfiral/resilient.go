package distfiral

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/firal"
	"repro/internal/mpi"
)

// ShardMaker rebuilds a rank's shard for a given communicator geometry.
// SelectResilient calls it once at start and again after every heal, with
// the survivor group's new size and this rank's new rank, so the maker
// must re-slice the same global problem by mpi.Partition(n, size, rank)
// — exactly what MakeShard and MakeStreamShard do when curried over
// their data arguments.
type ShardMaker func(size, rank int) (*Shard, error)

// ResilientResult reports a fault-tolerant distributed selection.
type ResilientResult struct {
	// Selected are the chosen global pool indices, identical across
	// surviving ranks.
	Selected []int
	// Relax and Round are the final (successful) attempt's results.
	Relax *RelaxResult
	Round *RoundResult
	// Rank and Size are this rank's position in the final communicator.
	Rank, Size int
	// LostRanks lists every rank declared dead over the run, in the
	// numbering of the communicator that lost it (original numbering for
	// the first loss, healed numbering for later ones).
	LostRanks []int
	// ResumePoints records the checkpoint each heal resumed from (nil =
	// restarted from scratch), in heal order. len(ResumePoints) is the
	// number of heal-reshard-resume cycles.
	ResumePoints []*firal.RelaxCheckpoint
}

// ckKey totally orders the checkpoint sequence (1,run)…(T,run),(T,done);
// nil (no checkpoint yet) sorts below everything.
func ckKey(ck *firal.RelaxCheckpoint) float64 {
	if ck == nil {
		return -1
	}
	k := float64(2 * ck.Iteration)
	if ck.Done {
		k++
	}
	return k
}

// agreeCheckpoint picks the newest checkpoint every rank of the healed
// communicator holds. A failure can strand survivors one checkpoint
// apart (a rank that completed the checkpoint gather next to one that
// died inside it), never more — completing gather k requires every live
// rank to have entered it — so the minimum over ranks is always each
// rank's last or previous checkpoint.
func agreeCheckpoint(c *mpi.Comm, last, prev *firal.RelaxCheckpoint) (ck *firal.RelaxCheckpoint, err error) {
	defer mpi.RecoverLost(&err)
	minKey := c.AllreduceScalar(ckKey(last), mpi.Min)
	switch {
	case ckKey(last) == minKey:
		return last, nil
	case ckKey(prev) == minKey:
		return prev, nil
	}
	return nil, fmt.Errorf("distfiral: no checkpoint at agreed step %g (have %g and %g)",
		minKey, ckKey(last), ckKey(prev))
}

// SelectResilient runs the full distributed Approx-FIRAL with rank-failure
// recovery: it checkpoints every completed RELAX iteration globally, and
// when a collective fails with mpi.ErrRankLost the survivors agree on the
// dead set (mpi.Comm.Heal) and on the newest common checkpoint, rebuild
// their shards over the survivor geometry, and restart the interrupted
// phase from that checkpoint — mid-RELAX losses resume at the
// checkpointed iteration, mid-ROUND losses rerun ROUND on the
// checkpointed final iterate (ROUND reruns from its start: its state is
// O(cd²) and cheap relative to RELAX, and rerunning keeps the selection
// bit-identical to a fresh survivor-count run).
//
// The communicator must have an operation timeout (mpi.Comm.SetOpTimeout)
// or failures can never be detected; SelectResilient refuses to start
// without one. o.Resume seeds the first attempt; o.OnIteration, if set,
// additionally observes every global checkpoint (set it on all ranks or
// on none — the checkpoint gather is a collective).
//
// Because checkpoints are global and the probe stream is owned by rank 0,
// the recovered selection is bit-identical to a fresh run at the survivor
// count resumed from the same checkpoint; the fault-injection tests pin
// this. If rank 0 dies, its probe stream dies with it: the new rank 0
// re-seeds from o.Seed and fast-forwards to the checkpointed iteration,
// which reproduces the identical stream.
func SelectResilient(ctx context.Context, c *mpi.Comm, mk ShardMaker, b int, eta float64, o firal.RelaxOptions) (*ResilientResult, error) {
	if c.OpTimeout() <= 0 {
		return nil, fmt.Errorf("distfiral: SelectResilient requires an operation timeout (SetOpTimeout) to detect rank failures")
	}
	res := &ResilientResult{}
	userHook := o.OnIteration

	var last, prev *firal.RelaxCheckpoint
	if o.Resume != nil {
		last = o.Resume.Clone()
	}
	for {
		s, err := mk(c.Size(), c.Rank())
		if err != nil {
			return nil, fmt.Errorf("distfiral: reshard at size %d: %w", c.Size(), err)
		}
		attempt := o
		attempt.Resume = last
		attempt.OnIteration = func(ck *firal.RelaxCheckpoint) {
			prev, last = last, ck.Clone()
			if userHook != nil {
				userHook(ck)
			}
		}
		relax, err := Relax(ctx, c, s, b, attempt)
		if err == nil {
			var round *RoundResult
			round, err = Round(ctx, c, s, relax.ZLocal, b, eta)
			if err == nil {
				res.Selected = round.Selected
				res.Relax = relax
				res.Round = round
				res.Rank, res.Size = c.Rank(), c.Size()
				return res, nil
			}
		}
		if !errors.Is(err, mpi.ErrRankLost) {
			return nil, err
		}
		nc, dead, herr := c.Heal()
		if herr != nil {
			return nil, fmt.Errorf("distfiral: heal after %w: %v", err, herr)
		}
		if len(dead) == 0 {
			// Spurious failure: every rank answered the agreement rounds,
			// so the loss was a transient (e.g. a delay spike past the op
			// timeout on one link). Retrying under the same timeout would
			// likely repeat it — surface the original error instead.
			return nil, err
		}
		ck, aerr := agreeCheckpoint(nc, last, prev)
		if aerr != nil {
			return nil, fmt.Errorf("distfiral: checkpoint agreement after heal: %w", aerr)
		}
		last, prev = ck, nil
		res.LostRanks = append(res.LostRanks, dead...)
		res.ResumePoints = append(res.ResumePoints, ck)
		c = nc
	}
}
