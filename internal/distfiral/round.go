package distfiral

import (
	"context"
	"math"

	"repro/internal/firal"
	"repro/internal/mpi"
	"repro/internal/timing"
)

// RoundResult reports a distributed ROUND solve. Selected indices are
// global pool indices and identical across ranks.
type RoundResult struct {
	Selected []int
	Nu       []float64
	MinEigH  float64
	// Timings holds this rank's phase breakdown ("objective", "eig",
	// "comm", "other").
	Timings *timing.Phases
}

// Round runs the distributed diagonal ROUND step (Algorithm 3 over MPI):
// every rank keeps the replicated O(cd²) block state, scores its local
// pool partition, and the per-round argmax, winner broadcast, and
// eigenvalue allgather follow § III-C. zLocal is this rank's slice of z⋄.
// Cancellation is detected collectively once per selected candidate. A
// lost rank surfaces as an error satisfying errors.Is(err,
// mpi.ErrRankLost); see SelectResilient for the heal-reshard-resume loop.
//
// exclude lists global pool indices the step must not select (tombstones
// from earlier selection rounds, mirroring firal.Options.Exclude); it
// must be identical on every rank.
func Round(ctx context.Context, c *mpi.Comm, s *Shard, zLocal []float64, b int, eta float64, exclude ...int) (res *RoundResult, err error) {
	defer mpi.RecoverLost(&err)
	if eta <= 0 {
		eta = 8 * math.Sqrt(float64(s.Ed()))
	}
	res = &RoundResult{Timings: timing.New()}
	ph := res.Timings
	d, cc := s.D(), s.C()

	// Global Σ⋄ and Ho blocks (allreduced pool part + replicated labeled
	// part), then the replicated RoundState (lines 3–5 of Algorithm 3).
	// The blocks are retained by the RoundState, so they must be fresh,
	// not the Shard's reusable RELAX cache.
	sig := s.sigmaBlocks(c, zLocal, ph, false)
	stop := ph.Start("other")
	ho := s.labeledDiag()
	stop()
	st, err := firal.NewRoundState(sig, ho, b, eta, ph)
	if err != nil {
		return nil, err
	}

	nLocal := s.PoolLocal.N()
	scores := make([]float64, nLocal)
	selectedLocal := make(map[int]bool, b+len(exclude))
	for _, gi := range exclude {
		if li := gi - s.PoolOffset; li >= 0 && li < nLocal {
			selectedLocal[li] = true
		}
	}
	probsLocal := s.PoolLocal.Probs()
	rowBuf := make([]float64, d)
	// Winner broadcast buffer: x (d), h (c), global index (1).
	xh := make([]float64, d+cc+1)
	kLo, kHi := mpi.Partition(cc, c.Size(), c.Rank())

	budget := b
	if s.PoolTotal < budget {
		budget = s.PoolTotal
	}
	for t := 1; t <= budget; t++ {
		if collectiveCancelled(ctx, c, ph) {
			return nil, ctxErr(ctx)
		}
		// Line 7: local objective + global argmax via maxloc reduction.
		stop := ph.Start("objective")
		st.Scores(s.PoolLocal, scores)
		stop()

		stop = ph.Start("other")
		bestLocal, bestVal := -1, math.Inf(-1)
		for i := 0; i < nLocal; i++ {
			if selectedLocal[i] {
				continue
			}
			if scores[i] > bestVal {
				bestLocal, bestVal = i, scores[i]
			}
		}
		if bestLocal < 0 {
			bestVal = math.Inf(-1)
		}
		stop()

		stop = ph.Start("comm")
		_, ownerRank, ownerLoc := c.AllreduceMaxLoc(bestVal, bestLocal)
		stop()
		if ownerLoc < 0 {
			break // every rank exhausted its partition
		}

		// Winner's global index and (x, h) broadcast (line 11's
		// MPI_Bcast of x_it, h_it; O(c+d) payload).
		stop = ph.Start("other")
		if c.Rank() == ownerRank {
			selectedLocal[ownerLoc] = true
			copy(xh[:d], s.PoolLocal.Row(ownerLoc, rowBuf))
			copy(xh[d:d+cc], probsLocal.Row(ownerLoc))
			xh[d+cc] = float64(s.PoolOffset + ownerLoc)
		}
		stop()
		stop = ph.Start("comm")
		c.Bcast(ownerRank, xh)
		stop()
		res.Selected = append(res.Selected, int(xh[d+cc]))

		// Line 8: accumulate (H)_k (replicated).
		stop = ph.Start("other")
		st.AddPoint(xh[:d], xh[d:d+cc])
		stop()

		// Line 9: eigenvalues of this rank's c/p blocks, then allgather.
		stop = ph.Start("eig")
		lamLocal, err := st.Eigvals(kLo, kHi)
		stop()
		if err != nil {
			return nil, err
		}
		stop = ph.Start("comm")
		lam, _ := c.Allgatherv(lamLocal)
		stop()

		// Lines 10–11: ν bisection + block-inverse rebuild (replicated).
		nu, err := st.FinishUpdate(lam, ph)
		if err != nil {
			return nil, err
		}
		res.Nu = append(res.Nu, nu)
	}

	stop = ph.Start("eig")
	res.MinEigH = st.MinEig()
	stop()
	return res, nil
}

// Select runs the full distributed Approx-FIRAL (RELAX + ROUND) on one
// rank's shard. All ranks return identical Selected slices. Cancelling
// the context aborts all ranks together at the next collective check.
func Select(ctx context.Context, c *mpi.Comm, s *Shard, b int, eta float64, relaxOpts firal.RelaxOptions) ([]int, *RelaxResult, *RoundResult, error) {
	relax, err := Relax(ctx, c, s, b, relaxOpts)
	if err != nil {
		return nil, nil, nil, err
	}
	round, err := Round(ctx, c, s, relax.ZLocal, b, eta)
	if err != nil {
		return nil, relax, nil, err
	}
	return round.Selected, relax, round, nil
}
