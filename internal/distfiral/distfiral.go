// Package distfiral implements the distributed-memory parallel
// Approx-FIRAL of § III-C on top of the internal/mpi runtime. The data
// layout follows the paper: the n pool points (x_i, h_i) are evenly
// partitioned across the p ranks, while all ẽd-length vectors and all
// O(cd²) block matrices are replicated. Communication per § III-C:
//
//   - RELAX: MPI_Allreduce to sum the block-diagonal preconditioner and the
//     partial fast-matvec results inside CG; the probe block is broadcast
//     from rank 0.
//   - ROUND: MPI_Allreduce (maxloc) to pick the globally best candidate;
//     MPI_Bcast of the winner's (x, h); MPI_Allgather of the block
//     eigenvalues, which are computed c/p blocks per rank.
package distfiral

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/rnd"
	"repro/internal/sketch"
	"repro/internal/timing"
)

// Shard is one rank's view of the selection problem: the (small) labeled
// set replicated everywhere and this rank's contiguous slice of the pool.
// A Shard is owned by its rank goroutine; its workspace and cached
// buffers are reused round to round and are not safe for sharing.
type Shard struct {
	Labeled   *hessian.Set // Xo, replicated
	PoolLocal hessian.Pool // local slice of Xu (resident or block-streaming)
	// PoolOffset is the global index of the first local pool point.
	PoolOffset int
	// PoolTotal is the global pool size n.
	PoolTotal int

	// Per-rank reusable buffers. The labeled Set may be shared across
	// ranks, so all scratch lives here, never on the Sets.
	ws        *mat.Workspace
	arBuf     []float64    // allreduce packing buffer (c·d² floats)
	labBlocks []*mat.Dense // cached z-independent labeled block diagonal
	sigCache  []*mat.Dense // reusable Σz blocks for the RELAX iterations
	mvBuf     []float64    // labeled-term buffer for sigmaMatVecBlock
	// bp holds the rank's CG preconditioner state; its Cholesky factor
	// storage is refactored in place every RELAX iteration and reused
	// round to round.
	bp *firal.BlockPreconditionerWS
}

// workspace lazily creates the rank-local workspace.
func (s *Shard) workspace() *mat.Workspace {
	if s.ws == nil {
		s.ws = mat.NewWorkspace()
	}
	return s.ws
}

// precond lazily creates the rank-local preconditioner state.
func (s *Shard) precond() *firal.BlockPreconditionerWS {
	if s.bp == nil {
		s.bp = firal.NewBlockPreconditionerWS()
	}
	return s.bp
}

// labeledDiag lazily builds and caches the replicated labeled
// block-diagonal Σ_i∈Xo h_ik(1−h_ik) x_i x_iᵀ. The blocks are read-only
// after construction: sigmaBlocks adds them into its accumulators and
// the ROUND state retains them as (Ho)_k without mutating either.
func (s *Shard) labeledDiag() []*mat.Dense {
	if s.labBlocks == nil {
		s.labBlocks = s.Labeled.BlockDiagSumInto(s.workspace(), nil, nil)
	}
	return s.labBlocks
}

// MakeShard cuts rank's partition out of a global pool, mirroring the
// paper's even distribution of x_i and h_i. The partition is materialized
// (copied); MakeStreamShard shards without materializing.
func MakeShard(labeled, pool *hessian.Set, size, rank int) *Shard {
	lo, hi := mpi.Partition(pool.N(), size, rank)
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return &Shard{
		Labeled:    labeled,
		PoolLocal:  pool.Subset(idx),
		PoolOffset: lo,
		PoolTotal:  pool.N(),
	}
}

// MakeStreamShard cuts rank's partition out of a streamed global pool:
// the rank-local pool is a hessian.Stream over a prefetched Subrange view
// of src, so nothing is materialized — every rank reads its contiguous
// row window of the shared source (safe: dataset sources support
// concurrent ReadRows) and indexes its slice of the replicated
// probability matrix, with each rank's next block decoding under the
// current block's kernels (dataset.WithPrefetch; resident sources skip
// the wrapper). blockRows ≤ 0 selects the default block granularity.
func MakeStreamShard(labeled *hessian.Set, src dataset.PoolSource, probs *mat.Dense, blockRows, size, rank int) *Shard {
	n := src.NumRows()
	lo, hi := mpi.Partition(n, size, rank)
	view := dataset.WithPrefetch(nil, dataset.Subrange(src, lo, hi), blockRows)
	local := hessian.NewStream(view, probs.RowSlice(lo, hi), blockRows)
	return &Shard{
		Labeled:    labeled,
		PoolLocal:  local,
		PoolOffset: lo,
		PoolTotal:  n,
	}
}

// D returns the feature dimension.
func (s *Shard) D() int { return s.PoolLocal.D() }

// C returns the number of Fisher blocks.
func (s *Shard) C() int { return s.PoolLocal.C() }

// Ed returns ẽd = d·c.
func (s *Shard) Ed() int { return s.D() * s.C() }

// allreduceBlocks sums a set of d×d blocks across ranks in one
// MPI_Allreduce of cd² floats (§ III-C, Eq. 22 message size). The packing
// buffer is kept on the Shard and reused round to round.
func (s *Shard) allreduceBlocks(c *mpi.Comm, blocks []*mat.Dense, ph *timing.Phases) {
	if c.Size() == 1 {
		return
	}
	d := blocks[0].Rows
	n := len(blocks) * d * d
	if cap(s.arBuf) < n {
		s.arBuf = make([]float64, n)
	}
	buf := s.arBuf[:n]
	off := 0
	for _, b := range blocks {
		copy(buf[off:off+d*d], b.Data)
		off += d * d
	}
	stop := ph.Start("comm")
	c.Allreduce(buf, mpi.Sum)
	stop()
	off = 0
	for _, b := range blocks {
		copy(b.Data, buf[off:off+d*d])
		off += d * d
	}
}

// sigmaBlocks computes the global diagonal blocks of Σz: local pool
// contributions are allreduced, then the replicated (and cached) labeled
// contribution is added identically on every rank. When reuse is true the
// result lives in the Shard's block cache, valid until the next reusing
// call — the RELAX loop rebuilds the blocks every iteration and must not
// re-allocate them; ROUND retains its blocks in the RoundState and takes
// fresh ones.
func (s *Shard) sigmaBlocks(c *mpi.Comm, z []float64, ph *timing.Phases, reuse bool) []*mat.Dense {
	stop := ph.Start("precond")
	var blocks []*mat.Dense
	if reuse {
		s.sigCache = s.PoolLocal.BlockDiagSumInto(s.workspace(), s.sigCache, z)
		blocks = s.sigCache
	} else {
		blocks = s.PoolLocal.BlockDiagSumInto(s.workspace(), nil, z)
	}
	stop()
	s.allreduceBlocks(c, blocks, ph)
	stop = ph.Start("precond")
	lab := s.labeledDiag()
	for k := range blocks {
		blocks[k].AddScaled(1, lab[k])
	}
	stop()
	return blocks
}

// allreduceDense sums an s×n transposed vector block across ranks: one
// MPI_Allreduce of s·n floats when the storage is compact (it always is —
// the block solver hands the ops compact workspace matrices), a per-row
// fallback otherwise. Folding the probe block into one collective
// divides the RELAX message count per CG iteration by s.
func allreduceDense(c *mpi.Comm, m *mat.Dense, ph *timing.Phases) {
	stop := ph.Start("comm")
	if m.Stride == m.Cols {
		c.Allreduce(m.Data[:m.Rows*m.Cols], mpi.Sum)
	} else {
		for j := 0; j < m.Rows; j++ {
			c.Allreduce(m.Row(j), mpi.Sum)
		}
	}
	stop()
}

// sigmaMatVecBlock is the block form of sigmaMatVec over a transposed
// probe block (s×ẽd, row j = probe j; see krylov.BlockOp): the local
// Lemma-2 sweep serves all s probes in one pool visit — one decode per CG
// iteration on a streamed shard — and the rank partials are summed in a
// single allreduce before the replicated labeled term is added per row.
// Per-column arithmetic matches sigmaMatVec exactly, so serial and
// distributed runs stay comparable draw for draw.
func (s *Shard) sigmaMatVecBlock(c *mpi.Comm, z []float64, ph *timing.Phases) krylov.BlockOp {
	if cap(s.mvBuf) < s.Ed() {
		s.mvBuf = make([]float64, s.Ed())
	}
	buf := s.mvBuf[:s.Ed()]
	ws := s.workspace()
	return func(dst, v *mat.Dense) {
		hessian.MatVecBlockWS(ws, s.PoolLocal, dst, v, z)
		allreduceDense(c, dst, ph)
		for j := 0; j < v.Rows; j++ {
			s.Labeled.MatVecWS(ws, buf, v.Row(j), nil)
			dj := dst.Row(j)
			for i := range dj {
				dj[i] += buf[i]
			}
		}
	}
}

// poolMatVecBlock is the distributed block form of V ↦ Hp·V.
func (s *Shard) poolMatVecBlock(c *mpi.Comm, ph *timing.Phases) krylov.BlockOp {
	ws := s.workspace()
	return func(dst, v *mat.Dense) {
		hessian.MatVecBlockWS(ws, s.PoolLocal, dst, v, nil)
		allreduceDense(c, dst, ph)
	}
}

// RelaxResult reports a distributed RELAX solve (per rank; z holds the
// local partition's weights scaled to the global budget).
type RelaxResult struct {
	// ZLocal is this rank's slice of z⋄ = b·z.
	ZLocal []float64
	// Objectives per iteration (identical across ranks).
	Objectives []float64
	// Iterations executed, CG iteration total.
	Iterations   int
	CGIterations int
	// Timings holds this rank's phase breakdown ("precond", "cg",
	// "gradient", "comm", "other").
	Timings *timing.Phases
}

// collectiveCancelled is the SPMD-safe cancellation check: rank 0 polls
// the context and broadcasts a one-float stop flag, so every rank leaves
// the collective schedule at the same iteration. Checking ctx directly on
// each rank would let ranks observe cancellation at different iterations
// and deadlock inside a collective.
func collectiveCancelled(ctx context.Context, c *mpi.Comm, ph *timing.Phases) bool {
	if ctx.Done() == nil {
		// Non-cancellable context (e.g. context.Background), uniform
		// across ranks: skip the flag broadcast so benchmarks and
		// experiments measure the paper's communication pattern only.
		return false
	}
	flag := []float64{0}
	if c.Rank() == 0 && ctx.Err() != nil {
		flag[0] = 1
	}
	stop := ph.Start("comm")
	c.Bcast(0, flag)
	stop()
	return flag[0] != 0
}

// ctxErr returns the context's error, defaulting to context.Canceled for
// ranks that learned of the cancellation through the collective flag
// before their own ctx poll would have fired.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// Relax runs the distributed fast RELAX (Algorithm 2 over MPI).
// Cancellation is detected collectively once per mirror-descent
// iteration; all ranks abort together with the context error.
//
// o.OnIteration and o.Resume work as in the serial solver, with global
// checkpoints: each completed iteration allgathers the full simplex
// iterate so every rank holds an identical RelaxCheckpoint that can be
// resumed under a different rank count (the pool is re-sliced by this
// rank's Partition window). Because the checkpoint gather is a
// collective, OnIteration must be set on all ranks or on none. A lost
// rank surfaces as an error satisfying errors.Is(err, mpi.ErrRankLost);
// see SelectResilient for the heal-reshard-resume loop.
func Relax(ctx context.Context, c *mpi.Comm, s *Shard, b int, o firal.RelaxOptions) (res *RelaxResult, err error) {
	defer mpi.RecoverLost(&err)
	// Mirror the serial option defaults.
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Beta0 <= 0 {
		o.Beta0 = 1
	}
	if o.ObjTol <= 0 {
		o.ObjTol = 1e-4
	}
	if o.Probes <= 0 {
		o.Probes = 10
	}
	if o.CGTol <= 0 {
		o.CGTol = 0.1
	}
	if o.CGMaxIter <= 0 {
		o.CGMaxIter = 400
	}
	if o.FixedIterations > 0 {
		o.MaxIter = o.FixedIterations
	}

	ed := s.Ed()
	nLocal := s.PoolLocal.N()
	nGlobal := s.PoolTotal
	res = &RelaxResult{Timings: timing.New()}
	ph := res.Timings

	z := make([]float64, nLocal)
	mat.Fill(z, 1/float64(nGlobal))

	// Resume from a global checkpoint: slice the replicated simplex
	// iterate by this rank's pool window — the rank count may differ from
	// the run that produced the checkpoint (that is the point: survivors
	// re-shard after a rank loss and continue).
	start := 1
	if o.Resume != nil {
		if len(o.Resume.Z) != nGlobal {
			return nil, fmt.Errorf("%w: checkpoint has %d weights, global pool has %d",
				firal.ErrBadCheckpoint, len(o.Resume.Z), nGlobal)
		}
		copy(z, o.Resume.Z[s.PoolOffset:s.PoolOffset+nLocal])
		start = o.Resume.Iteration + 1
		res.Iterations = o.Resume.Iteration
		res.CGIterations = o.Resume.CGIterations
		if o.Resume.Done {
			// Mirror descent already finished; only the b· scaling of
			// line 12 remains. The caller re-runs ROUND on the restored
			// final iterate.
			res.ZLocal = z
			mat.Scal(float64(b), res.ZLocal)
			return res, nil
		}
	}

	// Rank 0 owns the probe stream; with the same seed it draws exactly
	// the probe sequence of the serial solver, so serial and distributed
	// runs are comparable draw-for-draw.
	var rng *rnd.Source
	if c.Rank() == 0 {
		rng = rnd.New(o.Seed)
	}

	// Hoisted per-iteration buffers; all solver scratch comes from the
	// rank-local workspace, so iterations are allocation-free after
	// warm-up (aside from the preconditioner factorizations). v keeps the
	// historical ẽd×s Rademacher draw/broadcast order; the solver works in
	// the transposed contiguous-probe layout (s×ẽd; see krylov.BlockOp).
	ws := s.workspace()
	g := make([]float64, nLocal)
	v := mat.NewDense(ed, o.Probes)
	vt := mat.NewDense(o.Probes, ed)
	w := mat.NewDense(o.Probes, ed)
	hpw := mat.NewDense(o.Probes, ed)
	w2 := mat.NewDense(o.Probes, ed)
	var fHist []float64
	if o.Resume != nil {
		// Restore the objective history so convergence decisions replay
		// identically, and fast-forward rank 0's probe stream: iteration t
		// of the resumed run must see exactly the Rademacher block
		// iteration t of the uninterrupted run saw — regardless of the
		// rank count either run used, since only rank 0 draws.
		fHist = append(fHist, o.Resume.FHist...)
		if c.Rank() == 0 {
			for t := 1; t < start; t++ {
				rng.Rademacher(v.Data)
			}
		}
	}
	var cgRes []krylov.Result // reused across iterations by SolveBlockInto
	cgOpt := krylov.Options{Tol: o.CGTol, MaxIter: o.CGMaxIter, Workspace: ws}
	sigMV := s.sigmaMatVecBlock(c, z, ph) // reads z live; z is updated in place
	poolMV := s.poolMatVecBlock(c, ph)
	bp := s.precond()
	applyPrec := krylov.BlockOp(bp.ApplyBlock)

	for t := start; t <= o.MaxIter; t++ {
		if collectiveCancelled(ctx, c, ph) {
			return nil, ctxErr(ctx)
		}
		// Probe block: rank 0 draws, everyone else receives (MPI_Bcast of
		// W per § III-C).
		stop := ph.Start("other")
		if c.Rank() == 0 {
			rng.Rademacher(v.Data)
		}
		stop()
		stop = ph.Start("comm")
		c.Bcast(0, v.Data)
		stop()
		stop = ph.Start("other")
		for j := 0; j < o.Probes; j++ {
			v.Col(vt.Row(j), j)
		}
		stop()

		// Preconditioner from allreduced blocks, refactored into the
		// Shard's persistent factor storage (reused round to round).
		blocks := s.sigmaBlocks(c, z, ph, true)
		stop = ph.Start("precond")
		err := bp.Update(blocks)
		stop()
		if err != nil {
			return nil, err
		}

		// W ← Σz⁻¹ V by lockstep block CG: every rank runs the same
		// recurrences on replicated vectors; only the matvec is
		// distributed, and the whole probe block shares one local pool
		// sweep plus one allreduce per iteration. The convergence masks
		// are replicated too, so all ranks enter the same number of
		// collectives. The CG deliberately gets a background context: the
		// matvec is a collective, so ranks must not abort it at different
		// inner iterations — cancellation is honored at the loop-top
		// collective check instead. Zero initial guess: buffer reuse must
		// not introduce warm starts.
		stop = ph.Start("cg")
		w.Zero()
		cgRes = krylov.SolveBlockInto(context.Background(), sigMV, applyPrec, vt, w, cgRes, cgOpt)
		res.CGIterations += krylov.TotalIterations(cgRes)
		stop()

		// W ← Hp W (one multi-RHS sweep) and objective estimate.
		stop = ph.Start("gradient")
		poolMV(hpw, w)
		f := sketch.TraceFromProbesT(vt, hpw)
		stop()

		// W ← Σz⁻¹ W.
		stop = ph.Start("cg")
		w2.Zero()
		cgRes = krylov.SolveBlockInto(context.Background(), sigMV, applyPrec, hpw, w2, cgRes, cgOpt)
		res.CGIterations += krylov.TotalIterations(cgRes)
		stop()

		// Local gradient slice: all probes accumulated in one sweep over
		// the rank's partition.
		stop = ph.Start("gradient")
		mat.Fill(g, 0)
		hessian.QuadAccumBlockWS(ws, s.PoolLocal, g, vt, w2, -1/float64(o.Probes))
		stop()

		// Mirror-descent update with global normalization: the ∞-norm of
		// the gradient and the partition sum both need an allreduce.
		stop = ph.Start("other")
		gmaxLocal := 0.0
		for _, gv := range g {
			if a := math.Abs(gv); a > gmaxLocal {
				gmaxLocal = a
			}
		}
		stop()
		stop = ph.Start("comm")
		gmax := c.AllreduceScalar(gmaxLocal, mpi.Max)
		stop()
		stop = ph.Start("other")
		var localSum float64
		if gmax > 0 {
			beta := o.Beta0 / (gmax * math.Sqrt(float64(t)))
			for i := range z {
				z[i] *= math.Exp(-beta * g[i])
				localSum += z[i]
			}
		} else {
			localSum = mat.Sum(z)
		}
		stop()
		stop = ph.Start("comm")
		total := c.AllreduceScalar(localSum, mpi.Sum)
		stop()
		stop = ph.Start("other")
		mat.Scal(1/total, z)
		stop()

		res.Iterations = t
		fHist = append(fHist, f)
		if o.RecordObjective {
			res.Objectives = append(res.Objectives, f)
		}
		if o.OnIteration != nil {
			// Global checkpoint: allgather the full simplex iterate so the
			// checkpoint resumes under any rank count. This is a collective
			// — OnIteration must be set on all ranks or on none.
			stop = ph.Start("comm")
			zGlob, _ := c.Allgatherv(z)
			stop()
			ck := firal.RelaxCheckpoint{Iteration: t, Z: zGlob, FHist: fHist, CGIterations: res.CGIterations}
			o.OnIteration(&ck)
		}
		// f is identical on every rank, so the windowed stop fires in
		// lockstep.
		if o.FixedIterations == 0 && firal.StochasticConverged(fHist, o.ObjTol) {
			break
		}
	}
	if o.OnIteration != nil {
		// Final Done checkpoint: a caller interrupted during the ROUND
		// phase resumes with mirror descent skipped.
		stop := ph.Start("comm")
		zGlob, _ := c.Allgatherv(z)
		stop()
		ck := firal.RelaxCheckpoint{Iteration: res.Iterations, Done: true, Z: zGlob, FHist: fHist, CGIterations: res.CGIterations}
		o.OnIteration(&ck)
	}

	res.ZLocal = z
	mat.Scal(float64(b), res.ZLocal)
	return res, nil
}
