package distfiral

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/firal"
	"repro/internal/mpi"
)

// TestStreamShardMatchesResidentShard runs the full distributed selection
// (RELAX + ROUND over the simulated MPI ranks) twice — once with
// materialized per-rank Subset shards, once with MakeStreamShard views
// over one shared in-memory source — and requires identical selections.
// The streaming shards use a small block size so every rank crosses block
// boundaries inside its partition.
func TestStreamShardMatchesResidentShard(t *testing.T) {
	labeled, pool := testSets(31, 20, 151, 8, 3)
	const ranks, b = 3, 5
	opts := firal.RelaxOptions{FixedIterations: 3, Seed: 2}

	run := func(mk func(rank int) *Shard) [][]int {
		selected := make([][]int, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			sel, _, _, err := Select(context.Background(), c, mk(c.Rank()), b, 0, opts)
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			selected[c.Rank()] = sel
		})
		return selected
	}

	resident := run(func(rank int) *Shard {
		return MakeShard(labeled, pool, ranks, rank)
	})
	src := dataset.NewMatrixSource(pool.X)
	streamed := run(func(rank int) *Shard {
		return MakeStreamShard(labeled, src, pool.H, 16, ranks, rank)
	})

	for r := 0; r < ranks; r++ {
		if len(streamed[r]) != b || len(resident[r]) != b {
			t.Fatalf("rank %d: selected %d streamed / %d resident, want %d", r, len(streamed[r]), len(resident[r]), b)
		}
		for i := range resident[r] {
			if streamed[r][i] != resident[r][i] {
				t.Fatalf("rank %d selection %d: streamed %d, resident %d", r, i, streamed[r][i], resident[r][i])
			}
		}
	}
	// All ranks agree with each other too.
	for r := 1; r < ranks; r++ {
		for i := range streamed[0] {
			if streamed[r][i] != streamed[0][i] {
				t.Fatalf("streamed ranks disagree at %d: %v vs %v", i, streamed[r], streamed[0])
			}
		}
	}
}

// TestMoreRanksThanPoolRows pins the empty-partition path: with more
// ranks than pool rows, some ranks hold zero-row shards whose kernel
// outputs must be exact zeros in every allreduce (regression: the
// single-block kernel fast path used to leave stale scratch in dst at
// n=0, corrupting Σz·p on all ranks from the second CG iteration on).
// The distributed selection must complete and match the serial solver on
// both resident and streamed shards.
func TestMoreRanksThanPoolRows(t *testing.T) {
	labeled, pool := testSets(35, 20, 2, 6, 3)
	const ranks, b = 3, 2
	opts := firal.RelaxOptions{FixedIterations: 3, Seed: 6}

	want, err := firal.SelectApprox(context.Background(), firal.NewProblem(labeled, pool), b,
		firal.Options{Relax: opts})
	if err != nil {
		t.Fatal(err)
	}

	run := func(name string, mk func(rank int) *Shard) {
		selected := make([][]int, ranks)
		errs := make([]error, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			selected[c.Rank()], _, _, errs[c.Rank()] = Select(context.Background(), c, mk(c.Rank()), b, 0, opts)
		})
		for r := 0; r < ranks; r++ {
			if errs[r] != nil {
				t.Fatalf("%s rank %d: %v", name, r, errs[r])
			}
			if len(selected[r]) != len(want.Selected) {
				t.Fatalf("%s rank %d: selected %v, serial %v", name, r, selected[r], want.Selected)
			}
			for i := range want.Selected {
				if selected[r][i] != want.Selected[i] {
					t.Fatalf("%s rank %d selection %d: %d, serial %d", name, r, i, selected[r][i], want.Selected[i])
				}
			}
		}
	}
	run("resident", func(rank int) *Shard { return MakeShard(labeled, pool, ranks, rank) })
	src := dataset.NewMatrixSource(pool.X)
	run("streamed", func(rank int) *Shard { return MakeStreamShard(labeled, src, pool.H, 4, ranks, rank) })
}

// TestStreamShardExactRequiresResidentPool pins the distfiral side of the
// residency contract: a stream shard cut from a streaming-only source (no
// Resident fast path — what -shards serves from disk) carries a pool that
// the exact Algorithm-1 solvers must refuse with the typed
// firal.ErrResidentPool on every rank, without decoding a row; the
// distributed Approx path on the very same shards must still run.
func TestStreamShardExactRequiresResidentPool(t *testing.T) {
	labeled, pool := testSets(33, 20, 97, 6, 3)
	counting := dataset.NewCountingSource(dataset.NewMatrixSource(pool.X))
	const ranks = 3
	shards := make([]*Shard, ranks)
	for r := 0; r < ranks; r++ {
		shards[r] = MakeStreamShard(labeled, counting, pool.H, 16, ranks, r)
	}

	// Exact solvers need no communicator; every rank's shard must refuse
	// identically, before a single block is decoded.
	for r, sh := range shards {
		p := firal.NewProblem(sh.Labeled, sh.PoolLocal)
		if _, err := firal.SelectExact(context.Background(), p, 3, firal.Options{}); !errors.Is(err, firal.ErrResidentPool) {
			t.Fatalf("rank %d: exact select on stream shard: err = %v, want firal.ErrResidentPool", r, err)
		}
		if _, err := firal.RelaxExact(context.Background(), p, 3, firal.RelaxOptions{}); !errors.Is(err, firal.ErrResidentPool) {
			t.Fatalf("rank %d: exact RELAX on stream shard: err = %v, want firal.ErrResidentPool", r, err)
		}
	}
	if counting.Reads() != 0 {
		t.Fatalf("exact solvers decoded %d blocks from the stream shards before refusing", counting.Reads())
	}

	// The distributed Approx path must still run on the very same shards.
	selected := make([][]int, ranks)
	errsSel := make([]error, ranks)
	mpi.Run(ranks, func(c *mpi.Comm) {
		selected[c.Rank()], _, _, errsSel[c.Rank()] = Select(context.Background(), c, shards[c.Rank()], 3, 0,
			firal.RelaxOptions{FixedIterations: 2, Seed: 4})
	})
	for r := 0; r < ranks; r++ {
		if errsSel[r] != nil {
			t.Fatalf("rank %d: approx select on the same stream shard failed: %v", r, errsSel[r])
		}
		if len(selected[r]) != 3 {
			t.Fatalf("rank %d: approx select picked %d points, want 3", r, len(selected[r]))
		}
	}
}
