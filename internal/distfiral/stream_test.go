package distfiral

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/firal"
	"repro/internal/mpi"
)

// TestStreamShardMatchesResidentShard runs the full distributed selection
// (RELAX + ROUND over the simulated MPI ranks) twice — once with
// materialized per-rank Subset shards, once with MakeStreamShard views
// over one shared in-memory source — and requires identical selections.
// The streaming shards use a small block size so every rank crosses block
// boundaries inside its partition.
func TestStreamShardMatchesResidentShard(t *testing.T) {
	labeled, pool := testSets(31, 20, 151, 8, 3)
	const ranks, b = 3, 5
	opts := firal.RelaxOptions{FixedIterations: 3, Seed: 2}

	run := func(mk func(rank int) *Shard) [][]int {
		selected := make([][]int, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			sel, _, _, err := Select(context.Background(), c, mk(c.Rank()), b, 0, opts)
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			selected[c.Rank()] = sel
		})
		return selected
	}

	resident := run(func(rank int) *Shard {
		return MakeShard(labeled, pool, ranks, rank)
	})
	src := dataset.NewMatrixSource(pool.X)
	streamed := run(func(rank int) *Shard {
		return MakeStreamShard(labeled, src, pool.H, 16, ranks, rank)
	})

	for r := 0; r < ranks; r++ {
		if len(streamed[r]) != b || len(resident[r]) != b {
			t.Fatalf("rank %d: selected %d streamed / %d resident, want %d", r, len(streamed[r]), len(resident[r]), b)
		}
		for i := range resident[r] {
			if streamed[r][i] != resident[r][i] {
				t.Fatalf("rank %d selection %d: streamed %d, resident %d", r, i, streamed[r][i], resident[r][i])
			}
		}
	}
	// All ranks agree with each other too.
	for r := 1; r < ranks; r++ {
		for i := range streamed[0] {
			if streamed[r][i] != streamed[0][i] {
				t.Fatalf("streamed ranks disagree at %d: %v vs %v", i, streamed[r], streamed[0])
			}
		}
	}
}
