// Package logreg trains the multiclass logistic-regression classifier used
// throughout the paper's accuracy experiments (§ IV-A). It replaces
// scikit-learn's LogisticRegression (lbfgs solver, L2 penalty) with an
// L-BFGS fit of the softmax model in internal/softmax. Hyperparameters are
// held fixed across active-learning rounds, as in the paper.
package logreg

import (
	"errors"

	"repro/internal/mat"
	"repro/internal/opt"
	"repro/internal/softmax"
)

// Options configure training.
type Options struct {
	// Lambda is the L2 penalty weight λ (default 1e-3). scikit-learn's
	// C=1 with mean loss corresponds to λ = 1/n; a small fixed λ keeps
	// conditioning stable across the tiny label counts of early AL rounds.
	Lambda float64
	// MaxIter caps L-BFGS iterations (default 300).
	MaxIter int
	// GradTol is the L-BFGS gradient tolerance (default 1e-6).
	GradTol float64
}

func (o *Options) defaults() {
	if o.Lambda <= 0 {
		o.Lambda = 1e-3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
}

// Model is a trained classifier with weights θ ∈ R^{d×c}.
type Model struct {
	Theta   *mat.Dense
	Classes int
}

// ErrNoData is returned when the training set is empty.
var ErrNoData = errors.New("logreg: empty training set")

// Train fits a softmax classifier on (x, y) with labels in [0, c).
// A warm start can be supplied via init (cloned, not mutated); pass nil to
// start from zero.
func Train(x *mat.Dense, y []int, c int, init *mat.Dense, o Options) (*Model, error) {
	o.defaults()
	if x.Rows == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if x.Rows != len(y) {
		panic("logreg: feature/label count mismatch")
	}
	for _, yi := range y {
		if yi < 0 || yi >= c {
			panic("logreg: label out of range")
		}
	}
	d := x.Cols
	theta := make([]float64, d*c)
	if init != nil {
		if init.Rows != d || init.Cols != c {
			panic("logreg: init shape mismatch")
		}
		copy(theta, init.Data)
	}
	gradBuf := mat.NewDense(d, c)
	obj := func(t, g []float64) float64 {
		tm := &mat.Dense{Rows: d, Cols: c, Stride: c, Data: t}
		loss, _, _ := softmax.LossGrad(x, y, tm, o.Lambda, gradBuf)
		copy(g, gradBuf.Data)
		return loss
	}
	opt.Minimize(obj, theta, opt.LBFGSOptions{MaxIter: o.MaxIter, GradTol: o.GradTol})
	return &Model{
		Theta:   &mat.Dense{Rows: d, Cols: c, Stride: c, Data: theta},
		Classes: c,
	}, nil
}

// Probabilities returns the n×c matrix of class probabilities for the rows
// of x.
func (m *Model) Probabilities(x *mat.Dense) *mat.Dense {
	return softmax.Probabilities(nil, x, m.Theta)
}

// Predict returns the argmax class for each row of x.
func (m *Model) Predict(x *mat.Dense) []int {
	return softmax.Predict(m.Probabilities(x))
}

// Accuracy returns the fraction of correct predictions on (x, y).
func (m *Model) Accuracy(x *mat.Dense, y []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := m.Predict(x)
	var correct int
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// ClassBalancedAccuracy returns the accuracy averaged with each class
// weighted equally — the metric of Fig. 3(B) for imbalanced Caltech-101.
// Classes absent from y are skipped.
func (m *Model) ClassBalancedAccuracy(x *mat.Dense, y []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := m.Predict(x)
	correct := make([]int, m.Classes)
	total := make([]int, m.Classes)
	for i, p := range pred {
		total[y[i]]++
		if p == y[i] {
			correct[y[i]]++
		}
	}
	var sum float64
	var seen int
	for k := 0; k < m.Classes; k++ {
		if total[k] > 0 {
			sum += float64(correct[k]) / float64(total[k])
			seen++
		}
	}
	if seen == 0 {
		return 0
	}
	return sum / float64(seen)
}
