package logreg

import (
	"errors"
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

// blobs generates an easily separable c-class Gaussian mixture.
func blobs(rng *rnd.Source, n, d, c int, sep float64) (*mat.Dense, []int) {
	means := mat.NewDense(c, d)
	for k := 0; k < c; k++ {
		rng.UnitVector(means.Row(k))
		mat.Scal(sep, means.Row(k))
	}
	x := mat.NewDense(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		k := i % c
		y[i] = k
		rng.Normal(x.Row(i), 0, 0.3)
		mat.Axpy(1, means.Row(k), x.Row(i))
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	rng := rnd.New(1)
	x, y := blobs(rng, 120, 6, 3, 3)
	m, err := Train(x, y, 3, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("training accuracy %g on separable data", acc)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	rng := rnd.New(2)
	xTr, yTr := blobs(rng, 200, 5, 4, 4)
	xTe, yTe := blobs(rng, 400, 5, 4, 4)
	// Same means? blobs redraws means, so regenerate with one generator:
	// instead train/test split from one pool.
	x, y := blobs(rnd.New(3), 600, 5, 4, 4)
	xTr, yTr = x.Clone(), append([]int(nil), y...)
	xTr.Rows = 200
	yTr = yTr[:200]
	xTe = &mat.Dense{Rows: 400, Cols: x.Cols, Stride: x.Stride, Data: x.Data[200*x.Stride:]}
	yTe = y[200:]
	m, err := Train(xTr, yTr, 4, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(xTe, yTe); acc < 0.9 {
		t.Fatalf("test accuracy %g", acc)
	}
}

func TestWarmStart(t *testing.T) {
	rng := rnd.New(4)
	x, y := blobs(rng, 90, 4, 3, 3)
	m1, err := Train(x, y, 3, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, 3, m1.Theta, Options{MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m2.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("warm-started accuracy %g", acc)
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	if _, err := Train(mat.NewDense(0, 3), nil, 2, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("expected ErrNoData, got %v", err)
	}
}

func TestClassBalancedAccuracy(t *testing.T) {
	rng := rnd.New(5)
	x, y := blobs(rng, 100, 4, 2, 5)
	m, err := Train(x, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := m.Accuracy(x, y)
	balanced := m.ClassBalancedAccuracy(x, y)
	// Balanced classes: the two metrics should nearly agree.
	if plain < 0.9 || balanced < 0.9 {
		t.Fatalf("accuracies too low: %g %g", plain, balanced)
	}
	// Empty input edge cases.
	if m.Accuracy(mat.NewDense(0, 4), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	if m.ClassBalancedAccuracy(mat.NewDense(0, 4), nil) != 0 {
		t.Fatal("empty balanced accuracy should be 0")
	}
}

func TestProbabilitiesRowsSumToOne(t *testing.T) {
	rng := rnd.New(6)
	x, y := blobs(rng, 50, 3, 3, 2)
	m, err := Train(x, y, 3, nil, Options{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	h := m.Probabilities(x)
	for i := 0; i < h.Rows; i++ {
		if s := mat.Sum(h.Row(i)); s < 0.999 || s > 1.001 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}
