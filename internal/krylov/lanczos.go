package krylov

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rnd"
)

// This file implements the paper's stated future-work direction
// (§ V, limitation 1): replacing the exact eigenvalue solves of the ROUND
// step with iterative methods. Lanczos tridiagonalization yields Ritz
// values that approximate the spectrum of a symmetric operator using only
// matvecs; the FTRL normalization Σ_j (ν + ηλ_j)⁻² = 1 is dominated by
// the extreme eigenvalues, which Lanczos resolves first.

// LanczosOptions configure a Lanczos run.
type LanczosOptions struct {
	// Steps is the Krylov subspace dimension m (default min(n, 40)).
	Steps int
	// Seed seeds the start vector.
	Seed int64
	// Reorthogonalize enables full reorthogonalization (default true;
	// without it repeated Ritz values appear for clustered spectra).
	NoReorthogonalize bool
}

// Lanczos runs m steps of the Lanczos iteration on the symmetric operator
// a (dimension n) and returns the Ritz values (ascending), which
// approximate eigenvalues of a. For m = n (and exact arithmetic with
// reorthogonalization) the Ritz values are the exact spectrum.
func Lanczos(a Op, n int, o LanczosOptions) ([]float64, error) {
	m := o.Steps
	if m <= 0 || m > n {
		m = n
		if m > 40 {
			m = 40
		}
	}
	rng := rnd.New(o.Seed)
	v := make([]float64, n)
	rng.Normal(v, 0, 1)
	mat.Scal(1/mat.Nrm2(v), v)
	alpha, beta := lanczosTridiag(a, v, m, !o.NoReorthogonalize)

	// Eigenvalues of the tridiagonal (α, β) via the dense symmetric
	// solver on the small m×m matrix.
	k := len(alpha)
	t := mat.NewDense(k, k)
	for i := 0; i < k; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < k && i < len(beta) {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	return mat.SymEigvals(t)
}

// LanczosExtremes estimates (λ_min, λ_max) of the symmetric operator a.
func LanczosExtremes(a Op, n int, o LanczosOptions) (float64, float64, error) {
	vals, err := Lanczos(a, n, o)
	if err != nil {
		return 0, 0, err
	}
	if len(vals) == 0 {
		return 0, 0, nil
	}
	return vals[0], vals[len(vals)-1], nil
}

// DenseOp wraps a dense symmetric matrix as an Op.
func DenseOp(a *mat.Dense) Op {
	return func(dst, v []float64) { mat.MatVec(dst, a, v) }
}

// lanczosTridiag runs m Lanczos steps from the given unit start vector
// and returns the tridiagonal coefficients.
func lanczosTridiag(a Op, start []float64, m int, reorth bool) (alpha, beta []float64) {
	n := len(start)
	if m > n {
		m = n
	}
	q := make([][]float64, 0, m)
	v := append([]float64(nil), start...)
	w := make([]float64, n)
	for j := 0; j < m; j++ {
		q = append(q, append([]float64(nil), v...))
		a(w, v)
		aj := mat.Dot(v, w)
		alpha = append(alpha, aj)
		mat.Axpy(-aj, q[j], w)
		if j > 0 {
			mat.Axpy(-beta[j-1], q[j-1], w)
		}
		if reorth {
			for pass := 0; pass < 2; pass++ {
				for _, qi := range q {
					mat.Axpy(-mat.Dot(qi, w), qi, w)
				}
			}
		}
		bj := mat.Nrm2(w)
		if bj < 1e-13 || j == m-1 {
			break
		}
		beta = append(beta, bj)
		copy(v, w)
		mat.Scal(1/bj, v)
	}
	return alpha, beta
}

// SLQNodes computes a spectral quadrature for the symmetric operator a of
// dimension n: nodes θ_i (Ritz values) and weights w_i such that
// Trace(f(A)) ≈ Σ_i w_i f(θ_i) for smooth f. The quadrature is computed
// once and can then be evaluated for many functions f — e.g. the FTRL
// normalization g(ν) = Trace[(νI + ηA)⁻²] for every bisection candidate
// ν. Σ_i w_i = n (the quadrature preserves Trace(I)).
func SLQNodes(a Op, n, probes, steps int, seed int64) (nodes, weights []float64, err error) {
	if probes <= 0 {
		probes = 8
	}
	if steps <= 0 {
		steps = 30
	}
	rng := rnd.New(seed)
	start := make([]float64, n)
	for v := 0; v < probes; v++ {
		rng.Rademacher(start)
		mat.Scal(1/mat.Nrm2(start), start)
		alpha, beta := lanczosTridiag(a, start, steps, true)
		k := len(alpha)
		t := mat.NewDense(k, k)
		for i := 0; i < k; i++ {
			t.Set(i, i, alpha[i])
			if i+1 < k && i < len(beta) {
				t.Set(i, i+1, beta[i])
				t.Set(i+1, i, beta[i])
			}
		}
		theta, y, eerr := mat.SymEig(t)
		if eerr != nil {
			return nil, nil, eerr
		}
		for i := 0; i < k; i++ {
			tau := y.At(0, i)
			nodes = append(nodes, theta[i])
			weights = append(weights, float64(n)*tau*tau/float64(probes))
		}
	}
	return nodes, weights, nil
}

// SLQTrace estimates Trace(f(A)) for a symmetric PSD operator a of
// dimension n by stochastic Lanczos quadrature: for each Rademacher probe
// the Lanczos tridiagonal yields Gauss quadrature nodes θ_i (Ritz values)
// and weights τ_i² (squared first components of the tridiagonal
// eigenvectors), and
//
//	Trace(f(A)) ≈ (n/n_v) Σ_v Σ_i τ_i² f(θ_i).
//
// This is the building block for the paper's future-work replacement of
// the exact ROUND eigensolves (§ V): the FTRL normalization
// Σ_j (ν + ηλ_j)⁻² = Trace[(νI + ηH̃)⁻²] is a spectral sum.
func SLQTrace(a Op, n int, f func(float64) float64, probes, steps int, seed int64) (float64, error) {
	if probes <= 0 {
		probes = 8
	}
	if steps <= 0 {
		steps = 30
	}
	rng := rnd.New(seed)
	start := make([]float64, n)
	var acc float64
	for v := 0; v < probes; v++ {
		rng.Rademacher(start)
		mat.Scal(1/mat.Nrm2(start), start)
		alpha, beta := lanczosTridiag(a, start, steps, true)
		k := len(alpha)
		t := mat.NewDense(k, k)
		for i := 0; i < k; i++ {
			t.Set(i, i, alpha[i])
			if i+1 < k && i < len(beta) {
				t.Set(i, i+1, beta[i])
				t.Set(i+1, i, beta[i])
			}
		}
		theta, y, err := mat.SymEig(t)
		if err != nil {
			return 0, err
		}
		for i := 0; i < k; i++ {
			tau := y.At(0, i)
			acc += tau * tau * f(theta[i])
		}
	}
	return float64(n) * acc / float64(probes), nil
}

// RelativeSpectrumError measures max_i |got_i − want_i| / (1 + |want_i|)
// after aligning lengths by padding the shorter tail — a test helper for
// comparing Ritz values against exact spectra.
func RelativeSpectrumError(got, want []float64) float64 {
	var worst float64
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		e := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i]))
		if e > worst {
			worst = e
		}
	}
	return worst
}
