package krylov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestLanczosFullRecoverySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 12} {
		a := randSPD(rng, n, 50)
		want, err := mat.SymEigvals(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Lanczos(DenseOp(a), n, LanczosOptions{Steps: n, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: %d Ritz values", n, len(got))
		}
		if e := RelativeSpectrumError(got, want); e > 1e-8 {
			t.Fatalf("n=%d: spectrum error %g", n, e)
		}
	}
}

func TestLanczosExtremesPartial(t *testing.T) {
	// m ≪ n Lanczos must still resolve the extreme eigenvalues well.
	rng := rand.New(rand.NewSource(2))
	n := 120
	a := randSPD(rng, n, 1000)
	want, err := mat.SymEigvals(a)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := LanczosExtremes(DenseOp(a), n, LanczosOptions{Steps: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hi-want[n-1]) > 0.02*want[n-1] {
		t.Fatalf("λmax estimate %g want %g", hi, want[n-1])
	}
	// λmin estimate is an upper bound that should be within the spectrum.
	if lo < want[0]-1e-8 || lo > want[n-1] {
		t.Fatalf("λmin estimate %g outside [%g, %g]", lo, want[0], want[n-1])
	}
}

func TestLanczosDiagonalExact(t *testing.T) {
	n := 6
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, float64(i+1))
	}
	got, err := Lanczos(DenseOp(a), n, LanczosOptions{Steps: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-float64(i+1)) > 1e-8 {
			t.Fatalf("Ritz values %v", got)
		}
	}
}

// TestSLQTraceMatchesDense: SLQ estimates of Trace(f(A)) must agree with
// the dense computation for several spectral functions, including the
// FTRL kernel f(λ) = (ν + ηλ)⁻².
func TestSLQTraceMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 80
	a := randSPD(rng, n, 100)
	vals, err := mat.SymEigvals(a)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    func(float64) float64
	}{
		{"identity (trace)", func(l float64) float64 { return l }},
		{"inverse-square (FTRL)", func(l float64) float64 { d := 2 + 0.5*l; return 1 / (d * d) }},
		{"log", func(l float64) float64 { return math.Log(l) }},
	}
	for _, tc := range cases {
		var want float64
		for _, l := range vals {
			want += tc.f(l)
		}
		got, err := SLQTrace(DenseOp(a), n, tc.f, 24, 40, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.08*math.Abs(want) {
			t.Fatalf("%s: SLQ %g want %g", tc.name, got, want)
		}
	}
}

func TestSLQTraceIdentityExact(t *testing.T) {
	// For A = c·I every probe gives the exact answer.
	n := 30
	a := mat.Eye(n)
	a.Scale(3)
	got, err := SLQTrace(DenseOp(a), n, func(l float64) float64 { return l }, 2, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-90) > 1e-8 {
		t.Fatalf("SLQ on scaled identity: %g", got)
	}
}

func TestRelativeSpectrumError(t *testing.T) {
	if e := RelativeSpectrumError([]float64{1, 2}, []float64{1, 2}); e != 0 {
		t.Fatalf("zero error expected, got %g", e)
	}
	if e := RelativeSpectrumError([]float64{1, 3}, []float64{1, 2}); e <= 0 {
		t.Fatal("nonzero error expected")
	}
}
