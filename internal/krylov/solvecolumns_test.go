package krylov

import (
	"context"
	"testing"

	"repro/internal/mat"
)

// TestSolveColumnsIntoReuse pins the caller-owned results contract: the
// slice is reused in place when capacity suffices (no per-iteration
// allocation in the RELAX loop), stale fields from the previous sweep are
// cleared, and the solutions match a fresh SolveColumns call.
func TestSolveColumnsIntoReuse(t *testing.T) {
	const n, cols = 24, 5
	spd := mat.Eye(n)
	for i := 0; i < n; i++ {
		spd.Set(i, i, 2+float64(i%3))
	}
	a := func(dst, v []float64) { mat.MatVec(dst, spd, v) }
	b := mat.NewDense(n, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < n; i++ {
			b.Set(i, j, float64(i+j+1))
		}
	}
	opt := Options{Tol: 1e-12, MaxIter: 200, Workspace: mat.NewWorkspace()}

	x1 := mat.NewDense(n, cols)
	fresh := SolveColumns(context.Background(), a, nil, b, x1, opt)

	// Poison a recycled slice with stale state; Into must clear it.
	recycled := make([]Result, cols, cols+3)
	recycled[2].Err = context.Canceled
	recycled[2].Residuals = []float64{1, 2, 3}
	x2 := mat.NewDense(n, cols)
	got := SolveColumnsInto(context.Background(), a, nil, b, x2, recycled, opt)
	if &got[0] != &recycled[0] {
		t.Fatal("SolveColumnsInto reallocated despite sufficient capacity")
	}
	for j := range got {
		if got[j].Err != nil || got[j].Residuals != nil {
			t.Fatalf("column %d: stale result state not cleared: %+v", j, got[j])
		}
		if !got[j].Converged || got[j].Iterations != fresh[j].Iterations {
			t.Fatalf("column %d: reused solve diverges from fresh: %+v vs %+v", j, got[j], fresh[j])
		}
	}
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("reused solve produced different solution")
		}
	}

	// Short capacity grows.
	grown := SolveColumnsInto(context.Background(), a, nil, b, x2, make([]Result, 0, 1), opt)
	if len(grown) != cols {
		t.Fatalf("grown results have %d entries, want %d", len(grown), cols)
	}
}

// TestSolveColumnsIntoZeroAllocWarm pins that the RELAX pattern — one
// results slice reused across sweeps with a warm workspace — allocates
// nothing per sweep.
func TestSolveColumnsIntoZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const n, cols = 16, 4
	spd := mat.Eye(n)
	for i := 0; i < n; i++ {
		spd.Set(i, i, 3+float64(i%2))
	}
	a := func(dst, v []float64) { mat.MatVec(dst, spd, v) }
	b := mat.NewDense(n, cols)
	for i := range b.Data {
		b.Data[i] = float64(i%7) - 3
	}
	x := mat.NewDense(n, cols)
	opt := Options{Tol: 1e-10, MaxIter: 100, Workspace: mat.NewWorkspace()}
	var results []Result
	sweep := func() {
		x.Zero()
		results = SolveColumnsInto(context.Background(), a, nil, b, x, results, opt)
	}
	sweep() // warm
	if allocs := testing.AllocsPerRun(20, sweep); allocs != 0 {
		t.Fatalf("warm SolveColumnsInto sweep allocates %.1f objects", allocs)
	}
}
