package krylov

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestPCGZeroAllocWithWorkspace pins the steady-state allocation behaviour
// of repeated PCG solves drawing scratch from a Workspace: zero after the
// warm-up solve, provided the operator and preconditioner are themselves
// allocation-free.
func TestPCGZeroAllocWithWorkspace(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const n = 64
	rng := rand.New(rand.NewSource(8))
	spd := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			spd.Set(i, j, v)
			spd.Set(j, i, v)
		}
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	a := func(dst, v []float64) { mat.MatVec(dst, spd, v) }
	diag := func(dst, v []float64) {
		for i := range dst {
			dst[i] = v[i] / spd.At(i, i)
		}
	}
	opt := Options{Tol: 1e-10, MaxIter: 200, Workspace: mat.NewWorkspace()}
	if allocs := testing.AllocsPerRun(30, func() {
		mat.Fill(x, 0)
		res := PCG(context.Background(), a, diag, b, x, opt)
		if !res.Converged {
			t.Fatal("PCG did not converge on SPD test matrix")
		}
	}); allocs != 0 {
		t.Fatalf("PCG allocates %.1f objects per solve with a warm workspace", allocs)
	}
}
