package krylov

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func denseOp(a *mat.Dense) Op {
	return func(dst, v []float64) {
		mat.MatVec(dst, a, v)
	}
}

func randSPD(rng *rand.Rand, n int, cond float64) *mat.Dense {
	// Build SPD with controlled condition number via random orthogonal-ish
	// basis from QR-free construction: A = Σ λ_i q_i q_iᵀ using Gram.
	x := mat.NewDense(n+5, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	a := mat.MulTransA(nil, x, x)
	a.AddDiag(float64(n) / cond)
	return a
}

func TestCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(rng, n, 100)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		res := CG(context.Background(), denseOp(a), b, x, Options{Tol: 1e-10})
		if !res.Converged {
			t.Fatalf("n=%d: CG did not converge (rel=%g)", n, res.RelResidual)
		}
		ax := mat.MatVec(nil, a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6 {
				t.Fatalf("n=%d: residual %g at %d", n, ax[i]-b[i], i)
			}
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := mat.Eye(4)
	x := []float64{1, 2, 3, 4}
	res := CG(context.Background(), denseOp(a), make([]float64, 4), x, Options{})
	if !res.Converged {
		t.Fatal("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("solution of A x = 0 should be 0")
		}
	}
}

func TestPCGWithExactPreconditionerConvergesInOneIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 30
	a := randSPD(rng, n, 1e4)
	inv, err := mat.InvSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res := PCG(context.Background(), denseOp(a), denseOp(inv), b, x, Options{Tol: 1e-8})
	if res.Iterations > 3 {
		t.Fatalf("exact preconditioner took %d iterations", res.Iterations)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

// TestPreconditionerReducesIterations encodes the Fig. 1 invariant: a good
// (here: diagonal for a diagonally dominant system) preconditioner must
// reduce CG iteration counts.
func TestPreconditionerReducesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 80
	a := randSPD(rng, n, 10)
	// Exaggerate diagonal spread so Jacobi preconditioning matters.
	for i := 0; i < n; i++ {
		scale := 1 + 50*rng.Float64()
		a.Set(i, i, a.At(i, i)*scale)
	}
	diagInv := func(dst, v []float64) {
		for i := range v {
			dst[i] = v[i] / a.At(i, i)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	plain := CG(context.Background(), denseOp(a), b, x1, Options{Tol: 1e-8, RecordResiduals: true})
	x2 := make([]float64, n)
	prec := PCG(context.Background(), denseOp(a), diagInv, b, x2, Options{Tol: 1e-8, RecordResiduals: true})
	if !plain.Converged || !prec.Converged {
		t.Fatalf("convergence failure: plain=%v prec=%v", plain.Converged, prec.Converged)
	}
	if prec.Iterations >= plain.Iterations {
		t.Fatalf("preconditioner did not help: %d vs %d iterations", prec.Iterations, plain.Iterations)
	}
	if len(plain.Residuals) != plain.Iterations+1 {
		t.Fatalf("residual history length %d for %d iterations", len(plain.Residuals), plain.Iterations)
	}
}

func TestResidualsMonotoneEnough(t *testing.T) {
	// CG residuals need not be monotone, but the recorded history must end
	// below tolerance and start at 1 for x0 = 0.
	rng := rand.New(rand.NewSource(4))
	n := 40
	a := randSPD(rng, n, 100)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res := CG(context.Background(), denseOp(a), b, x, Options{Tol: 1e-9, RecordResiduals: true})
	if math.Abs(res.Residuals[0]-1) > 1e-12 {
		t.Fatalf("initial relative residual %g != 1", res.Residuals[0])
	}
	last := res.Residuals[len(res.Residuals)-1]
	if last > 1e-9 {
		t.Fatalf("final residual %g above tolerance", last)
	}
}

func TestSolveColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, s := 25, 4
	a := randSPD(rng, n, 50)
	b := mat.NewDense(n, s)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	x := mat.NewDense(n, s)
	results := SolveColumns(context.Background(), denseOp(a), nil, b, x, Options{Tol: 1e-10})
	if len(results) != s {
		t.Fatalf("expected %d results", s)
	}
	got := mat.Mul(nil, a, x)
	if d := mat.MaxAbsDiff(got, b); d > 1e-5 {
		t.Fatalf("AX != B (%g)", d)
	}
	if TotalIterations(results) <= 0 || MaxIterations(results) <= 0 {
		t.Fatal("iteration accounting broken")
	}
}

func TestMaxIterCap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 60
	a := randSPD(rng, n, 1e6)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res := CG(context.Background(), denseOp(a), b, x, Options{Tol: 1e-14, MaxIter: 3})
	if res.Iterations > 3 {
		t.Fatalf("MaxIter not honored: %d", res.Iterations)
	}
}

func TestCancelledContextAbortsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	a := randSPD(rng, n, 1e6)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, n)
	res := CG(ctx, denseOp(a), b, x, Options{Tol: 1e-14})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", res.Err)
	}
	if res.Converged {
		t.Fatal("cancelled solve reported convergence")
	}
	if res.Iterations != 0 {
		t.Fatalf("cancelled solve ran %d iterations", res.Iterations)
	}

	bm := mat.NewDense(n, 2)
	for i := range bm.Data {
		bm.Data[i] = rng.NormFloat64()
	}
	xm := mat.NewDense(n, 2)
	results := SolveColumns(ctx, denseOp(a), nil, bm, xm, Options{Tol: 1e-10})
	if err := FirstError(results); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveColumns: expected context.Canceled, got %v", err)
	}
}
