package krylov

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// blockTestSystem builds an SPD matrix and an n×s RHS engineered so CG
// converges at genuinely different iteration counts per column: the
// matrix is block-diagonal with s decoupled tridiagonal sub-blocks whose
// conditioning worsens with the block index, and RHS column j is
// supported on sub-block j only — its Krylov trajectory never leaves its
// sub-block, so later columns need strictly more iterations and the
// lockstep masking actually engages.
func blockTestSystem(n, s int, seed int64) (*mat.Dense, *mat.Dense) {
	rng := rand.New(rand.NewSource(seed))
	m := n / s
	spd := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		blk := i / m
		if blk >= s {
			blk = s - 1
		}
		// tridiag(−1, c, −1): condition worsens as c → 2.
		c := 2 + 1/float64(blk+1) + 0.01*rng.Float64()
		spd.Set(i, i, c)
		if i+1 < n && (i+1)/m == i/m {
			spd.Set(i, i+1, -1)
			spd.Set(i+1, i, -1)
		}
	}
	b := mat.NewDense(n, s)
	for j := 0; j < s; j++ {
		lo := j * m
		for i := lo; i < lo+m && i < n; i++ {
			b.Set(i, j, 1+0.2*rng.NormFloat64())
		}
	}
	return spd, b
}

// transpose copies an n×s matrix into a fresh s×n transposed block.
func transpose(m *mat.Dense) *mat.Dense {
	t := mat.NewDense(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		m.Col(t.Row(j), j)
	}
	return t
}

// perColumnBlockOp lifts a per-vector Op to a BlockOp by applying it row
// by row — the reference lifting under which lockstep block CG performs
// exactly the arithmetic of s independent solves.
func perColumnBlockOp(op Op) BlockOp {
	return func(dst, v *mat.Dense) {
		for j := 0; j < v.Rows; j++ {
			op(dst.Row(j), v.Row(j))
		}
	}
}

// TestSolveBlockIntoMatchesPerColumnOracle pins the lockstep contract:
// for ragged probe counts, with and without preconditioning, the block
// solver's solutions, iteration counts, convergence flags, residuals, and
// recorded residual histories are IDENTICAL (not just close) to the
// per-column SolveColumnsInto oracle, including when columns converge at
// different iteration counts.
func TestSolveBlockIntoMatchesPerColumnOracle(t *testing.T) {
	const n = 48
	for _, s := range []int{1, 2, 3, 5, 8, 11} {
		spd, b := blockTestSystem(n, s, int64(100+s))
		op := func(dst, v []float64) { mat.MatVec(dst, spd, v) }
		diag := func(dst, v []float64) {
			for i := range dst {
				dst[i] = v[i] / spd.At(i, i)
			}
		}
		for _, tc := range []struct {
			withPrec bool
			tol      float64
		}{{false, 1e-3}, {false, 1e-9}, {true, 1e-3}, {true, 1e-9}} {
			withPrec := tc.withPrec
			opt := Options{Tol: tc.tol, MaxIter: 300, RecordResiduals: true, Workspace: mat.NewWorkspace()}
			var prec Op
			var bprec BlockOp
			if withPrec {
				prec = diag
				bprec = perColumnBlockOp(diag)
			}

			xRef := mat.NewDense(n, s)
			ref := SolveColumnsInto(context.Background(), op, prec, b, xRef, nil, opt)

			bT := transpose(b)
			xT := mat.NewDense(s, n)
			got := SolveBlockInto(context.Background(), perColumnBlockOp(op), bprec, bT, xT, nil, opt)

			iters := map[int]bool{}
			for j := 0; j < s; j++ {
				iters[ref[j].Iterations] = true
				if got[j].Iterations != ref[j].Iterations ||
					got[j].Converged != ref[j].Converged ||
					got[j].RelResidual != ref[j].RelResidual {
					t.Fatalf("s=%d prec=%v column %d: block %+v, oracle %+v",
						s, withPrec, j, got[j], ref[j])
				}
				if len(got[j].Residuals) != len(ref[j].Residuals) {
					t.Fatalf("s=%d prec=%v column %d: residual history %d entries, oracle %d",
						s, withPrec, j, len(got[j].Residuals), len(ref[j].Residuals))
				}
				for k := range ref[j].Residuals {
					if got[j].Residuals[k] != ref[j].Residuals[k] {
						t.Fatalf("s=%d prec=%v column %d residual %d: %g vs %g",
							s, withPrec, j, k, got[j].Residuals[k], ref[j].Residuals[k])
					}
				}
				xj := xT.Row(j)
				for i := 0; i < n; i++ {
					if xj[i] != xRef.At(i, j) {
						t.Fatalf("s=%d prec=%v x[%d,%d]: block %g, oracle %g",
							s, withPrec, i, j, xj[i], xRef.At(i, j))
					}
				}
			}
			// At the paper-style loose tolerance the per-block conditioning
			// dominates, so mid-size blocks must converge at different
			// counts — the masking path is genuinely exercised.
			if !withPrec && tc.tol == 1e-3 && s >= 3 && s <= 5 && len(iters) < 2 {
				t.Fatalf("s=%d: all columns converged in the same iteration count %v — masking untested", s, ref)
			}
		}
	}
}

// TestSolveBlockIntoZeroRHSColumn pins the degenerate-column path: a zero
// RHS column converges immediately with a zeroed iterate while the rest
// of the block keeps iterating.
func TestSolveBlockIntoZeroRHSColumn(t *testing.T) {
	const n, s = 20, 3
	spd, b := blockTestSystem(n, s, 7)
	for i := 0; i < n; i++ {
		b.Set(i, 1, 0)
	}
	bT := transpose(b)
	xT := mat.NewDense(s, n)
	mat.Fill(xT.Row(1), 3) // garbage initial guess must be zeroed
	op := perColumnBlockOp(func(dst, v []float64) { mat.MatVec(dst, spd, v) })
	res := SolveBlockInto(context.Background(), op, nil, bT, xT, nil, Options{Tol: 1e-10, MaxIter: 200})
	if !res[1].Converged || res[1].Iterations != 0 {
		t.Fatalf("zero column: %+v, want immediate convergence", res[1])
	}
	for i, v := range xT.Row(1) {
		if v != 0 {
			t.Fatalf("zero column iterate x[%d] = %g, want 0", i, v)
		}
	}
	if !res[0].Converged || !res[2].Converged {
		t.Fatalf("non-zero columns failed to converge: %+v", res)
	}
}

// TestSolveBlockIntoCancellation pins the mid-block cancellation
// contract: when the context dies partway through the lockstep sweep, the
// still-active columns report the context error and x holds their best
// iterates — exactly the iterate a per-column solve capped at the same
// iteration count produces — while already-converged columns keep their
// finished results.
func TestSolveBlockIntoCancellation(t *testing.T) {
	const n, s = 48, 4
	spd, b := blockTestSystem(n, s, 9)
	matvec := func(dst, v []float64) { mat.MatVec(dst, spd, v) }
	// Loose tolerance: per-block conditioning staggers the convergence, so
	// the fastest column finishes several lockstep iterations before the
	// slowest and the cancellation lands mid-block.
	opt := Options{Tol: 1e-3, MaxIter: 300, Workspace: mat.NewWorkspace()}

	// Uncancelled oracle, for iteration counts and converged columns.
	xRef := mat.NewDense(n, s)
	ref := SolveColumnsInto(context.Background(), matvec, nil, b, xRef, nil, opt)
	fastest := ref[0].Iterations
	for j := range ref {
		if ref[j].Iterations < fastest {
			fastest = ref[j].Iterations
		}
	}

	// Cancel after enough block applications that the fastest column has
	// converged but the others are still running: application 1 is the
	// initial residual, application 1+k completes lockstep iteration k.
	cancelAfter := fastest + 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applications := 0
	countingOp := BlockOp(func(dst, v *mat.Dense) {
		applications++
		if applications == cancelAfter {
			cancel()
		}
		for j := 0; j < v.Rows; j++ {
			matvec(dst.Row(j), v.Row(j))
		}
	})
	bT := transpose(b)
	xT := mat.NewDense(s, n)
	got := SolveBlockInto(ctx, countingOp, nil, bT, xT, nil, opt)

	sawCancelled := false
	for j := 0; j < s; j++ {
		if got[j].Converged {
			// Finished before the cancellation: full oracle result.
			if got[j].Err != nil || got[j].Iterations != ref[j].Iterations {
				t.Fatalf("converged column %d carries %+v, oracle %+v", j, got[j], ref[j])
			}
			for i := 0; i < n; i++ {
				if xT.Row(j)[i] != xRef.At(i, j) {
					t.Fatalf("converged column %d iterate differs from oracle at %d", j, i)
				}
			}
			continue
		}
		sawCancelled = true
		if got[j].Err == nil {
			t.Fatalf("unconverged column %d has nil Err after cancellation: %+v", j, got[j])
		}
		// Best iterate: identical to a per-column solve capped at the
		// iterations this column actually completed.
		capped := Options{Tol: opt.Tol, MaxIter: got[j].Iterations, Workspace: opt.Workspace}
		bc := make([]float64, n)
		xc := make([]float64, n)
		b.Col(bc, j)
		PCG(context.Background(), matvec, nil, bc, xc, capped)
		for i := 0; i < n; i++ {
			if xT.Row(j)[i] != xc[i] {
				t.Fatalf("cancelled column %d best iterate differs at %d: %g vs %g",
					j, i, xT.Row(j)[i], xc[i])
			}
		}
	}
	if !sawCancelled {
		t.Fatal("cancellation fired after every column converged — test exercises nothing")
	}
}

// TestSolveBlockIntoResultReuse pins the caller-owned results contract
// shared with SolveColumnsInto: reuse in place when capacity suffices,
// stale state cleared, growth when short.
func TestSolveBlockIntoResultReuse(t *testing.T) {
	const n, s = 16, 4
	spd, b := blockTestSystem(n, s, 3)
	op := perColumnBlockOp(func(dst, v []float64) { mat.MatVec(dst, spd, v) })
	bT := transpose(b)
	xT := mat.NewDense(s, n)
	opt := Options{Tol: 1e-10, MaxIter: 200, Workspace: mat.NewWorkspace()}

	recycled := make([]Result, s, s+2)
	recycled[1].Err = context.Canceled
	recycled[1].Residuals = []float64{9}
	got := SolveBlockInto(context.Background(), op, nil, bT, xT, recycled, opt)
	if &got[0] != &recycled[0] {
		t.Fatal("SolveBlockInto reallocated despite sufficient capacity")
	}
	for j := range got {
		if got[j].Err != nil || got[j].Residuals != nil {
			t.Fatalf("column %d: stale result state not cleared: %+v", j, got[j])
		}
		if !got[j].Converged {
			t.Fatalf("column %d did not converge: %+v", j, got[j])
		}
	}
	grown := SolveBlockInto(context.Background(), op, nil, bT, xT, make([]Result, 0, 1), opt)
	if len(grown) != s {
		t.Fatalf("grown results have %d entries, want %d", len(grown), s)
	}
}

// TestSolveBlockIntoZeroAllocWarm pins the RELAX pattern for the block
// solver: one results slice and a warm workspace make a full lockstep
// sweep allocation-free.
func TestSolveBlockIntoZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const n, s = 24, 5
	spd, b := blockTestSystem(n, s, 5)
	op := perColumnBlockOp(func(dst, v []float64) { mat.MatVec(dst, spd, v) })
	prec := perColumnBlockOp(func(dst, v []float64) {
		for i := range dst {
			dst[i] = v[i] / spd.At(i, i)
		}
	})
	bT := transpose(b)
	xT := mat.NewDense(s, n)
	opt := Options{Tol: 1e-10, MaxIter: 200, Workspace: mat.NewWorkspace()}
	var results []Result
	sweep := func() {
		xT.Zero()
		results = SolveBlockInto(context.Background(), op, prec, bT, xT, results, opt)
	}
	sweep() // warm
	if allocs := testing.AllocsPerRun(20, sweep); allocs != 0 {
		t.Fatalf("warm SolveBlockInto sweep allocates %.1f objects", allocs)
	}
}
