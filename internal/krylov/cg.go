// Package krylov implements the (preconditioned) conjugate-gradient solver
// used by the fast RELAX step (Algorithm 2, lines 6 and 8). Operators are
// matrix-free: the caller supplies closures for A·v and M⁻¹·r, which in the
// reproduction come from the Lemma-2 fast Hessian matvec and the
// block-diagonal preconditioner of Eq. 14.
//
// Multi-RHS solves come in two forms. SolveColumns/SolveColumnsInto run
// one independent CG per column. SolveBlockInto is the batched block-CG
// the RELAX probe block uses: all s columns advance in LOCKSTEP — one
// BlockOp application (for a streamed pool, one decode sweep) per
// iteration serves every column — with per-column convergence masking, so
// a column that converges or breaks down freezes while the rest keep
// iterating. Each column still runs the scalar PCG recurrence on its own
// data, so block results equal the per-column oracle bit for bit; only
// the operator traffic is shared. Blocks are passed transposed (s×n, row
// j = column j) so every vector is contiguous.
//
// Solves are cancellable: every entry point takes a context.Context and
// checks it once per iteration, so a deadline or cancellation aborts a
// long solve between matvecs (SolveBlockInto reports ctx.Err() on the
// columns still active and leaves their best iterates in x).
package krylov

import (
	"context"
	"math"

	"repro/internal/mat"
)

// Op applies a linear operator: dst = A·v. dst and v never alias.
type Op func(dst, v []float64)

// Options configure a CG solve.
type Options struct {
	// Tol is the relative-residual termination tolerance ‖r‖/‖b‖ (the
	// paper's cgtol; its accuracy experiments use 0.1).
	Tol float64
	// MaxIter caps the iteration count. Zero means 10·n.
	MaxIter int
	// RecordResiduals stores the relative residual after every iteration
	// (including iteration 0), enabling the Fig. 1 convergence curves.
	RecordResiduals bool
	// Workspace supplies the solver's four n-vectors (and SolveColumns'
	// column buffers) from a reusable arena instead of fresh allocations,
	// so repeated solves run allocation-free after warm-up (aside from
	// RecordResiduals appends). The workspace must not be shared across
	// goroutines; nil restores allocate-per-solve.
	Workspace *mat.Workspace
}

// Result reports a CG solve.
type Result struct {
	Iterations int
	Converged  bool
	// RelResidual is the final relative residual ‖b−Ax‖/‖b‖ (recurrence
	// estimate).
	RelResidual float64
	// Residuals holds per-iteration relative residuals when requested.
	Residuals []float64
	// Err is non-nil when the solve was aborted by the context; x then
	// holds the best iterate reached before cancellation.
	Err error
}

// CG solves A x = b with plain conjugate gradients. x is both the initial
// guess and the output.
func CG(ctx context.Context, a Op, b, x []float64, opt Options) Result {
	return PCG(ctx, a, nil, b, x, opt)
}

// PCG solves A x = b with preconditioned conjugate gradients. precond
// applies M⁻¹ (pass nil for unpreconditioned CG). x is both the initial
// guess and the output. The context is polled once per iteration; on
// cancellation the result carries ctx.Err() and the current iterate.
//
//firal:hotpath
func PCG(ctx context.Context, a Op, precond Op, b, x []float64, opt Options) Result {
	n := len(b)
	if len(x) != n {
		panic("krylov: x/b length mismatch")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	ws := opt.Workspace
	r := ws.Vec(n)
	av := ws.Vec(n)
	defer func() {
		ws.PutVec(r)
		ws.PutVec(av)
	}()
	a(av, x)
	for i := range r {
		r[i] = b[i] - av[i]
	}
	bnorm := mat.Nrm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true, RelResidual: 0}
	}

	z := ws.Vec(n)
	//firal:allow(alloc) — built once per solve, non-escaping
	applyPrec := func() {
		if precond != nil {
			precond(z, r)
		} else {
			copy(z, r)
		}
	}
	applyPrec()
	p := ws.Vec(n)
	copy(p, z)
	defer func() {
		ws.PutVec(z)
		ws.PutVec(p)
	}()
	rz := mat.Dot(r, z)

	res := Result{}
	rel := mat.Nrm2(r) / bnorm
	if opt.RecordResiduals {
		res.Residuals = append(res.Residuals, rel) //firal:allow(alloc) diagnostics mode
	}
	if rel <= opt.Tol {
		res.Converged = true
		res.RelResidual = rel
		return res
	}

	for it := 0; it < maxIter; it++ {
		if err := ctx.Err(); err != nil {
			res.RelResidual = rel
			res.Err = err
			return res
		}
		a(av, p)
		pap := mat.Dot(p, av)
		if pap <= 0 || math.IsNaN(pap) {
			// Operator lost positive definiteness numerically; stop with
			// the best iterate so far.
			res.Iterations = it
			res.RelResidual = rel
			return res
		}
		alpha := rz / pap
		mat.Axpy(alpha, p, x)
		mat.Axpy(-alpha, av, r)
		rel = mat.Nrm2(r) / bnorm
		res.Iterations = it + 1
		if opt.RecordResiduals {
			res.Residuals = append(res.Residuals, rel) //firal:allow(alloc) diagnostics mode
		}
		if rel <= opt.Tol {
			res.Converged = true
			break
		}
		applyPrec()
		rzNew := mat.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.RelResidual = rel
	return res
}

// SolveColumns solves A X = B column-by-column with (preconditioned) CG,
// writing solutions into x (same shape as b, used as initial guesses).
// It returns per-column results. This is the W ← Σ⁻¹V pattern of
// Algorithm 2, lines 6 and 8. A cancelled context stops the sweep at the
// current column; the remaining results report the context error.
func SolveColumns(ctx context.Context, a Op, precond Op, b, x *mat.Dense, opt Options) []Result {
	return SolveColumnsInto(ctx, a, precond, b, x, nil, opt)
}

// SolveColumnsInto is SolveColumns writing the per-column results into
// the caller's slice (grown when its capacity is short, reset
// otherwise), so loops that sweep the same probe block every iteration —
// the RELAX mirror descent runs two sweeps per iteration — reuse one
// slice instead of allocating b.Cols results per call. Pass the previous
// return value back in; the contents are overwritten.
//
//firal:hotpath
func SolveColumnsInto(ctx context.Context, a Op, precond Op, b, x *mat.Dense, results []Result, opt Options) []Result {
	if b.Rows != x.Rows || b.Cols != x.Cols {
		panic("krylov: SolveColumns shape mismatch")
	}
	if cap(results) < b.Cols {
		results = make([]Result, b.Cols) //firal:allow(alloc) amortized: grows once per larger probe block
	} else {
		results = results[:b.Cols]
		for j := range results {
			results[j] = Result{}
		}
	}
	ws := opt.Workspace
	bc := ws.Vec(b.Rows)
	xc := ws.Vec(b.Rows)
	defer func() {
		ws.PutVec(bc)
		ws.PutVec(xc)
	}()
	for j := 0; j < b.Cols; j++ {
		if err := ctx.Err(); err != nil {
			for k := j; k < b.Cols; k++ {
				results[k].Err = err
			}
			return results
		}
		b.Col(bc, j)
		x.Col(xc, j)
		results[j] = PCG(ctx, a, precond, bc, xc, opt)
		x.SetCol(j, xc)
	}
	return results
}

// FirstError returns the first context error recorded in a batch of
// results, if any.
func FirstError(rs []Result) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// TotalIterations sums the iteration counts of a batch of results.
func TotalIterations(rs []Result) int {
	var t int
	for _, r := range rs {
		t += r.Iterations
	}
	return t
}

// MaxIterations returns the largest iteration count in a batch.
func MaxIterations(rs []Result) int {
	var m int
	for _, r := range rs {
		if r.Iterations > m {
			m = r.Iterations
		}
	}
	return m
}
