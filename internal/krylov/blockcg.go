package krylov

import (
	"context"

	"repro/internal/mat"
)

// BlockOp applies a linear operator to a block of s vectors at once:
// dst = A·V for V ∈ R^{n×s}. The block is held TRANSPOSED — dst and v are
// s×n row-major matrices whose row j is column j of the mathematical
// block — so every vector is one contiguous slice and implementations can
// hand rows straight to the per-vector kernels. dst and v never alias,
// and dst is always a compact (stride == cols) workspace matrix.
//
// The whole point of the block form is sweep amortization: an
// implementation backed by a streamed pool (hessian.MatVecBlockWS) visits
// every pool row block exactly once per application and updates all s
// vectors from that one visit, so a CG solve over an s-column probe block
// decodes the pool once per iteration instead of once per column per
// iteration.
type BlockOp func(dst, v *mat.Dense)

// SolveBlock solves A X = B for all columns simultaneously with lockstep
// (preconditioned) CG; see SolveBlockInto.
func SolveBlock(ctx context.Context, a BlockOp, precond BlockOp, b, x *mat.Dense, opt Options) []Result {
	return SolveBlockInto(ctx, a, precond, b, x, nil, opt)
}

// SolveBlockInto solves A X = B with batched conjugate gradients: all s
// columns advance in lockstep, one BlockOp application per iteration,
// with per-column convergence masking. b and x are transposed blocks (s×n
// row-major, row j = column j; x is both the initial guess and the
// output, updated in place). It is the multi-RHS form of SolveColumnsInto
// and follows the same contracts: per-column Results written into the
// caller's slice (grown when capacity is short, reset otherwise), scratch
// drawn from opt.Workspace so warm sweeps are allocation-free, and the
// context polled once per iteration.
//
// Lockstep semantics: every column runs the scalar PCG recurrence on its
// own (b_j, x_j) with its own α, β, and residual bookkeeping — the block
// solve performs exactly the arithmetic of s independent PCG solves, so
// solutions, iteration counts, and convergence flags match the per-column
// SolveColumnsInto oracle bit for bit. A column that converges (or breaks
// down on a loss of positive definiteness) is masked: its iterate freezes
// while the remaining columns keep iterating, and the operator keeps
// being applied to the full block (the masked columns' stale directions
// are computed but ignored — with a streamed pool the decode dominates,
// and it is already shared). On cancellation the still-active columns
// report ctx.Err() with x holding their best iterates; columns that
// already converged keep their results.
//
//firal:hotpath
func SolveBlockInto(ctx context.Context, a BlockOp, precond BlockOp, b, x *mat.Dense, results []Result, opt Options) []Result {
	if b.Rows != x.Rows || b.Cols != x.Cols {
		panic("krylov: SolveBlock shape mismatch")
	}
	s, n := b.Rows, b.Cols
	if cap(results) < s {
		results = make([]Result, s) //firal:allow(alloc) amortized: grows once per larger probe block
	} else {
		results = results[:s]
		for j := range results {
			results[j] = Result{}
		}
	}
	if s == 0 {
		return results
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	ws := opt.Workspace
	r := ws.Matrix(s, n)
	z := ws.Matrix(s, n)
	p := ws.Matrix(s, n)
	ap := ws.Matrix(s, n)
	bnorm := ws.Vec(s)
	rz := ws.Vec(s)
	rel := ws.Vec(s)
	act := ws.Vec(s) // 1 = still iterating, 0 = masked off
	defer func() {
		ws.PutMatrix(r)
		ws.PutMatrix(z)
		ws.PutMatrix(p)
		ws.PutMatrix(ap)
		ws.PutVec(bnorm)
		ws.PutVec(rz)
		ws.PutVec(rel)
		ws.PutVec(act)
	}()

	//firal:allow(alloc) — built once per solve, non-escaping
	applyPrec := func() {
		if precond != nil {
			precond(z, r)
		} else {
			z.CopyFrom(r)
		}
	}

	// Initial residuals R = B − A·X from one block application.
	a(ap, x)
	nActive := 0
	for j := 0; j < s; j++ {
		bj, rj, apj := b.Row(j), r.Row(j), ap.Row(j)
		for i := range rj {
			rj[i] = bj[i] - apj[i]
		}
		act[j] = 0
		bnorm[j] = mat.Nrm2(bj)
		if bnorm[j] == 0 {
			xj := x.Row(j)
			for i := range xj {
				xj[i] = 0
			}
			results[j].Converged = true
			continue
		}
		rel[j] = mat.Nrm2(rj) / bnorm[j]
		if opt.RecordResiduals {
			results[j].Residuals = append(results[j].Residuals, rel[j]) //firal:allow(alloc) diagnostics mode
		}
		if rel[j] <= opt.Tol {
			results[j].Converged = true
			results[j].RelResidual = rel[j]
			continue
		}
		act[j] = 1
		nActive++
	}
	if nActive == 0 {
		return results
	}

	// First preconditioned search directions.
	applyPrec()
	for j := 0; j < s; j++ {
		if act[j] == 0 {
			continue
		}
		copy(p.Row(j), z.Row(j))
		rz[j] = mat.Dot(r.Row(j), z.Row(j))
	}

	for it := 0; it < maxIter && nActive > 0; it++ {
		if err := ctx.Err(); err != nil {
			for j := 0; j < s; j++ {
				if act[j] == 0 {
					continue
				}
				results[j].RelResidual = rel[j]
				results[j].Err = err
			}
			return results
		}
		// One operator application advances every active column (masked
		// columns ride along on their stale directions; the results are
		// simply not read).
		a(ap, p)
		for j := 0; j < s; j++ {
			if act[j] == 0 {
				continue
			}
			pj, apj := p.Row(j), ap.Row(j)
			pap := mat.Dot(pj, apj)
			if pap <= 0 || pap != pap {
				// Column j lost positive definiteness numerically; freeze
				// its best iterate (mirrors the PCG breakdown path).
				results[j].RelResidual = rel[j]
				act[j] = 0
				nActive--
				continue
			}
			alpha := rz[j] / pap
			mat.Axpy(alpha, pj, x.Row(j))
			mat.Axpy(-alpha, apj, r.Row(j))
			rel[j] = mat.Nrm2(r.Row(j)) / bnorm[j]
			results[j].Iterations = it + 1
			if opt.RecordResiduals {
				results[j].Residuals = append(results[j].Residuals, rel[j]) //firal:allow(alloc) diagnostics mode
			}
			if rel[j] <= opt.Tol {
				results[j].Converged = true
				results[j].RelResidual = rel[j]
				act[j] = 0
				nActive--
			}
		}
		if nActive == 0 {
			break
		}
		applyPrec()
		for j := 0; j < s; j++ {
			if act[j] == 0 {
				continue
			}
			rzNew := mat.Dot(r.Row(j), z.Row(j))
			beta := rzNew / rz[j]
			rz[j] = rzNew
			pj, zj := p.Row(j), z.Row(j)
			for i := range pj {
				pj[i] = zj[i] + beta*pj[i]
			}
		}
	}
	for j := 0; j < s; j++ {
		if act[j] != 0 {
			results[j].RelResidual = rel[j] // iteration budget exhausted
		}
	}
	return results
}
