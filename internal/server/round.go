package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	pub "repro"
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/distfiral"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/logreg"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

// roundSeedStride mirrors Learner.state(): round r of a session seeded s
// draws from s + r·7919, so the service's per-round seeds line up with the
// library's.
const roundSeedStride = 7919

// runRound is the round goroutine: wait for an admission slot, run one
// train+select under the session's scoped worker limit, and record the
// outcome. Cancellation (session delete, server shutdown) marks the round
// interrupted — its checkpoint stays on disk and the next server startup
// resumes it; any other failure marks it failed and clears the checkpoint.
func (s *Server) runRound(ctx context.Context, cancel context.CancelFunc, sess *Session, rm *RoundMeta, ticket *Ticket) {
	defer s.wg.Done()
	defer sess.roundWG.Done()
	defer cancel()
	defer ticket.Release()

	finish := func(status, errMsg string) {
		sess.mu.Lock()
		rm.Status = status
		rm.Error = errMsg
		sess.cancelRound = nil
		sess.ticket = nil
		if err := sess.persistLocked(); err != nil {
			s.cfg.Logf("session %s: persist round %d: %v", sess.meta.ID, rm.Round, err)
		}
		sess.mu.Unlock()
	}

	if err := ticket.Wait(ctx); err != nil {
		finish(RoundInterrupted, "")
		return
	}
	sess.mu.Lock()
	rm.Status = RoundRunning
	if err := sess.persistLocked(); err != nil {
		s.cfg.Logf("session %s: persist round %d: %v", sess.meta.ID, rm.Round, err)
	}
	workers := sess.meta.Workers
	sess.mu.Unlock()

	if workers > 0 {
		lim := parallel.AcquireLimit(workers)
		defer lim.Release()
	}
	sess.mu.Lock()
	rm.WorkersObserved = parallel.Workers()
	sess.mu.Unlock()

	t0 := time.Now()
	out, err := s.selectOnce(ctx, sess, rm)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		s.cfg.Logf("session %s: round %d interrupted (checkpoint retained)", sess.meta.ID, rm.Round)
		finish(RoundInterrupted, "")
		return
	case err != nil:
		s.cfg.Logf("session %s: round %d failed: %v", sess.meta.ID, rm.Round, err)
		os.Remove(checkpointPath(sess.dir)) // a failed round's state is not resumable
		finish(RoundFailed, err.Error())
		return
	}

	sess.mu.Lock()
	rm.Selected = out.selected
	rm.Eta = out.eta
	rm.RelaxIterations = out.relaxIters
	rm.CGIterations = out.cgIters
	rm.TrainSeconds = out.trainSeconds
	rm.SelectSeconds = time.Since(t0).Seconds() - out.trainSeconds
	labeled := len(sess.meta.LabeledY) + len(sess.meta.IndexLabels)
	remaining := sess.meta.Rows - len(sess.excludeLocked())
	observers := append([]pub.RoundObserver(nil), sess.observers...)
	sess.mu.Unlock()

	os.Remove(checkpointPath(sess.dir)) // the round is durable in session.json now
	finish(RoundDone, "")
	s.cfg.Logf("session %s: round %d done: %d selected in %.2fs",
		sess.meta.ID, rm.Round, len(out.selected), rm.SelectSeconds)

	report := &pub.RoundReport{
		Round:         rm.Round,
		LabeledCount:  labeled,
		PoolRemaining: remaining,
		Selected:      out.selected,
		SelectSeconds: rm.SelectSeconds,
		TrainSeconds:  rm.TrainSeconds,
	}
	for _, observe := range observers {
		observe(report)
	}
}

// AddObserver registers fn to receive the RoundReport of every round the
// session completes from now on — the in-process embedding's alternative
// to polling the HTTP status endpoint, using the library's streaming
// observer type.
func (s *Server) AddObserver(sessionID string, fn pub.RoundObserver) error {
	sess, err := s.session(sessionID)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	sess.observers = append(sess.observers, fn)
	sess.mu.Unlock()
	return nil
}

// roundOutput is what selectOnce hands back to runRound.
type roundOutput struct {
	selected     []int
	eta          float64
	relaxIters   int
	cgIters      int
	trainSeconds float64
}

// selectOnce performs one train+select: assemble the labeled set (direct
// uploads plus index-labeled pool rows), train the classifier, stream the
// pool once for probabilities, and dispatch to the session's selector with
// previously selected rows excluded. For Approx-FIRAL the RELAX state is
// checkpointed through the solver's iteration hook and restored when a
// matching checkpoint survives from an interrupted attempt.
func (s *Server) selectOnce(ctx context.Context, sess *Session, rm *RoundMeta) (*roundOutput, error) {
	sess.mu.Lock()
	meta := sess.meta // shallow copy; slices are not mutated while a round runs
	exclude := sess.excludeLocked()
	cachedProbs, cachedLabeled := sess.probs, sess.probsLabeled
	sess.mu.Unlock()
	src := sess.src

	// Labeled set: uploaded examples first, then index-labeled pool rows
	// read back from the shards (stable order — a resumed round must train
	// on the identical matrix).
	nLab := len(meta.LabeledX) + len(meta.IndexLabels)
	labM := mat.NewDense(nLab, meta.Dim)
	labY := make([]int, 0, nLab)
	for i, row := range meta.LabeledX {
		copy(labM.Row(i), row)
	}
	labY = append(labY, meta.LabeledY...)
	for k, il := range meta.IndexLabels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rowDst := labM.RowSlice(len(meta.LabeledX)+k, len(meta.LabeledX)+k+1)
		if err := src.ReadRows(il.Index, il.Index+1, rowDst); err != nil {
			return nil, fmt.Errorf("read labeled pool row %d: %w", il.Index, err)
		}
		labY = append(labY, il.Label)
	}

	t0 := time.Now()
	model, err := logreg.Train(labM, labY, meta.Classes, nil, logreg.Options{Lambda: meta.Lambda})
	if err != nil {
		return nil, fmt.Errorf("train classifier: %w", err)
	}
	out := &roundOutput{trainSeconds: time.Since(t0).Seconds()}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	seed := meta.Seed + int64(rm.Round)*roundSeedStride
	blockRows := meta.BlockRows
	if blockRows <= 0 {
		blockRows = s.cfg.BlockRows
	}

	switch meta.Selector {
	case "Approx-FIRAL":
		reduced, err := s.roundProbs(sess, meta, rm.Round, src, model, nLab, blockRows, cachedProbs, cachedLabeled)
		if err != nil {
			return nil, err
		}

		relax := firal.RelaxOptions{
			MaxIter:         meta.RelaxIters,
			FixedIterations: meta.FixedRelaxIters,
			Probes:          meta.Probes,
			CGTol:           meta.CGTol,
			Seed:            seed,
		}
		// Warm start: seed mirror descent from the previous round's
		// converged weights (reprojected onto the grown simplex if rows
		// were appended in between). A resume checkpoint for *this* round
		// takes precedence below — mid-round state beats a prior's.
		if wr, wck, err := readCheckpoint(warmPath(sess.dir)); err == nil {
			if wr == rm.Round-1 && len(wck.Z) > 0 && len(wck.Z) <= meta.Rows {
				relax.WarmStart = firal.ReprojectSimplex(wck.Z, meta.Rows)
				s.cfg.Logf("session %s: round %d warm-started from round %d weights (%d → %d rows)",
					meta.ID, rm.Round, wr, len(wck.Z), meta.Rows)
			}
		}
		if round, ck, err := readCheckpoint(checkpointPath(sess.dir)); err == nil && round == rm.Round {
			relax.Resume = ck
			sess.mu.Lock()
			sess.progress = roundProgress{RelaxIteration: ck.Iteration, RelaxDone: ck.Done, CGIterations: ck.CGIterations}
			sess.mu.Unlock()
			s.cfg.Logf("session %s: round %d resuming RELAX from iteration %d (done=%v)",
				meta.ID, rm.Round, ck.Iteration, ck.Done)
		} else if err == nil {
			os.Remove(checkpointPath(sess.dir)) // stale: belongs to another round
		}
		every := s.cfg.CheckpointEvery
		relax.OnIteration = func(ck *firal.RelaxCheckpoint) {
			sess.mu.Lock()
			sess.progress = roundProgress{RelaxIteration: ck.Iteration, RelaxDone: ck.Done, CGIterations: ck.CGIterations}
			sess.mu.Unlock()
			if ck.Done || ck.Iteration%every == 0 {
				if err := writeCheckpoint(checkpointPath(sess.dir), rm.Round, ck); err != nil {
					s.cfg.Logf("session %s: round %d checkpoint: %v", meta.ID, rm.Round, err)
				}
			}
			if ck.Done {
				// The Done checkpoint fires before the budget scaling, so
				// ck.Z still sums to 1 — exactly the simplex point the
				// next round wants to start from.
				if err := writeCheckpoint(warmPath(sess.dir), rm.Round, ck); err != nil {
					s.cfg.Logf("session %s: round %d warm checkpoint: %v", meta.ID, rm.Round, err)
				}
			}
		}
		labeled := hessian.NewSet(labM, hessian.ReduceProbs(softmax.Probabilities(nil, labM, model.Theta)))
		// The sweep source is a pinned [0, meta.Rows) view of the session's
		// live pool wrapped in block read-ahead: while the solver kernels
		// chew block k, block k+1 is already decoding. The Subrange both
		// pins the round's row count and makes the prefetcher's Close a
		// no-op chain — the session's LiveSource outlives the round.
		// Cancelling the round stops further read-ahead; the solver exits
		// at its next ctx poll and the deferred Close drains whatever read
		// is still in flight.
		swept := dataset.WithPrefetch(ctx, dataset.Subrange(src, 0, meta.Rows), blockRows)
		defer swept.Close()
		pool := hessian.NewStream(swept, reduced, blockRows)
		res, err := firal.SelectApprox(ctx, firal.NewProblem(labeled, pool), rm.Budget,
			firal.Options{Relax: relax, Exclude: exclude})
		if err != nil {
			return nil, err
		}
		out.selected = res.Selected
		out.eta = res.Eta
		out.relaxIters = res.Relax.Iterations
		out.cgIters = res.Relax.CGIterations
		return out, nil

	case "Dist-FIRAL":
		// In-process distributed rounds: Config.Ranks goroutine ranks run
		// the § III-C solver over stream shards of the pinned pool view.
		// RELAX checkpoints are global (rank-count independent) and share
		// the serial format, so an interrupted dist round resumes like an
		// Approx one — even if the server restarts with a different -ranks.
		reduced, err := s.roundProbs(sess, meta, rm.Round, src, model, nLab, blockRows, cachedProbs, cachedLabeled)
		if err != nil {
			return nil, err
		}
		relax := firal.RelaxOptions{
			MaxIter:         meta.RelaxIters,
			FixedIterations: meta.FixedRelaxIters,
			Probes:          meta.Probes,
			CGTol:           meta.CGTol,
			Seed:            seed,
		}
		if round, ck, err := readCheckpoint(checkpointPath(sess.dir)); err == nil && round == rm.Round {
			relax.Resume = ck
			sess.mu.Lock()
			sess.progress = roundProgress{RelaxIteration: ck.Iteration, RelaxDone: ck.Done, CGIterations: ck.CGIterations}
			sess.mu.Unlock()
			s.cfg.Logf("session %s: round %d resuming RELAX from iteration %d (done=%v)",
				meta.ID, rm.Round, ck.Iteration, ck.Done)
		} else if err == nil {
			os.Remove(checkpointPath(sess.dir)) // stale: belongs to another round
		}
		every := s.cfg.CheckpointEvery
		labeled := hessian.NewSet(labM, hessian.ReduceProbs(softmax.Probabilities(nil, labM, model.Theta)))
		pinned := dataset.Subrange(src, 0, meta.Rows)
		ranks := s.cfg.Ranks
		type rankOut struct {
			sel                 []int
			relaxIters, cgIters int
			err                 error
		}
		outs := make([]rankOut, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			ro := relax
			writer := c.Rank() == 0
			// The checkpoint gather is a collective, so the hook must be
			// set on every rank; only rank 0 touches disk and progress.
			ro.OnIteration = func(ck *firal.RelaxCheckpoint) {
				if !writer {
					return
				}
				sess.mu.Lock()
				sess.progress = roundProgress{RelaxIteration: ck.Iteration, RelaxDone: ck.Done, CGIterations: ck.CGIterations}
				sess.mu.Unlock()
				if ck.Done || ck.Iteration%every == 0 {
					if err := writeCheckpoint(checkpointPath(sess.dir), rm.Round, ck); err != nil {
						s.cfg.Logf("session %s: round %d checkpoint: %v", meta.ID, rm.Round, err)
					}
				}
			}
			sh := distfiral.MakeStreamShard(labeled, pinned, reduced, blockRows, ranks, c.Rank())
			rres, rerr := distfiral.Relax(ctx, c, sh, rm.Budget, ro)
			if rerr != nil {
				outs[c.Rank()].err = rerr
				return
			}
			rd, rerr := distfiral.Round(ctx, c, sh, rres.ZLocal, rm.Budget, 0, exclude...)
			if rerr != nil {
				outs[c.Rank()].err = rerr
				return
			}
			outs[c.Rank()] = rankOut{sel: rd.Selected, relaxIters: rres.Iterations, cgIters: rres.CGIterations}
		})
		for _, ro := range outs {
			if ro.err != nil {
				return nil, ro.err
			}
		}
		out.selected = outs[0].sel
		out.eta = 8 * math.Sqrt(float64(meta.Dim*(meta.Classes-1)))
		out.relaxIters = outs[0].relaxIters
		out.cgIters = outs[0].cgIters
		return out, nil

	case "Exact-FIRAL":
		x, err := s.resident(src)
		if err != nil {
			return nil, err
		}
		probs := softmax.Probabilities(nil, x, model.Theta)
		labeled := hessian.NewSet(labM, hessian.ReduceProbs(softmax.Probabilities(nil, labM, model.Theta)))
		pool := hessian.NewSet(x, hessian.ReduceProbs(probs))
		relax := firal.RelaxOptions{MaxIter: meta.RelaxIters, FixedIterations: meta.FixedRelaxIters, Seed: seed}
		res, err := firal.SelectExact(ctx, firal.NewProblem(labeled, pool), rm.Budget,
			firal.Options{Relax: relax, Exclude: exclude})
		if err != nil {
			return nil, err
		}
		out.selected = res.Selected
		out.eta = res.Eta
		out.relaxIters = res.Relax.Iterations
		return out, nil

	case "Random":
		allowed := allowedIndices(meta.Rows, exclude)
		picked := baselines.Random(len(allowed), rm.Budget, rnd.New(seed))
		out.selected = mapBack(picked, allowed)
		return out, nil

	case "K-Means":
		x, err := s.resident(src)
		if err != nil {
			return nil, err
		}
		allowed := allowedIndices(meta.Rows, exclude)
		compact := mat.NewDense(len(allowed), meta.Dim)
		for r, i := range allowed {
			copy(compact.Row(r), x.Row(i))
		}
		picked := baselines.KMeans(compact, rm.Budget, rnd.New(seed))
		out.selected = mapBack(picked, allowed)
		return out, nil

	case "Entropy", "Margin", "Least-Confidence":
		probs, err := streamProbs(src, model, meta.Classes, blockRows, false)
		if err != nil {
			return nil, err
		}
		allowed := allowedIndices(meta.Rows, exclude)
		compact := mat.NewDense(len(allowed), meta.Classes)
		for r, i := range allowed {
			copy(compact.Row(r), probs.Row(i))
		}
		var picked []int
		switch meta.Selector {
		case "Entropy":
			picked = baselines.Entropy(compact, rm.Budget)
		case "Margin":
			picked = baselines.Margin(compact, rm.Budget)
		default:
			picked = baselines.LeastConfidence(compact, rm.Budget)
		}
		out.selected = mapBack(picked, allowed)
		return out, nil
	}
	return nil, fmt.Errorf("selector %s is not servable", meta.Selector)
}

// roundProbs computes the round's reduced probability matrix and caches
// it on the session. The labeled set only grows, so an unchanged labeled
// count means the identical training matrix and (training being
// deterministic) the identical model — the previous round's probabilities
// are still exact, and only rows appended to the pool since then need the
// model applied. This is what makes a round after a small pool append
// cost O(Δn·d) here instead of O(n·d).
func (s *Server) roundProbs(sess *Session, meta sessionMeta, round int, src dataset.PoolSource, model *logreg.Model, nLab, blockRows int, cachedProbs *mat.Dense, cachedLabeled int) (*mat.Dense, error) {
	var reduced *mat.Dense
	switch {
	case cachedProbs != nil && cachedLabeled == nLab && cachedProbs.Rows == meta.Rows:
		reduced = cachedProbs
	case cachedProbs != nil && cachedLabeled == nLab && cachedProbs.Rows < meta.Rows:
		reduced = mat.NewDense(meta.Rows, meta.Classes-1)
		copy(reduced.Data[:cachedProbs.Rows*reduced.Cols], cachedProbs.Data)
		if err := streamProbsRange(src, model, meta.Classes, blockRows, true, cachedProbs.Rows, meta.Rows, reduced); err != nil {
			return nil, err
		}
		s.cfg.Logf("session %s: round %d probability pass over %d appended rows (of %d)",
			meta.ID, round, meta.Rows-cachedProbs.Rows, meta.Rows)
	default:
		var err error
		if reduced, err = streamProbs(src, model, meta.Classes, blockRows, true); err != nil {
			return nil, err
		}
	}
	sess.mu.Lock()
	sess.probs, sess.probsLabeled = reduced, nLab
	sess.mu.Unlock()
	return reduced, nil
}

// streamProbs sweeps the pool once under the trained model. With reduce
// set it returns the n×(c−1) reduced matrix the FIRAL solvers consume
// (Eq. 1, last class dropped); otherwise the full n×c softmax the
// uncertainty baselines score — either way O(n·c) resident, never the
// features.
func streamProbs(src dataset.PoolSource, model *logreg.Model, classes, blockRows int, reduce bool) (*mat.Dense, error) {
	n := src.NumRows()
	cols := classes
	if reduce {
		cols = classes - 1
	}
	outM := mat.NewDense(n, cols)
	if err := streamProbsRange(src, model, classes, blockRows, reduce, 0, n, outM); err != nil {
		return nil, err
	}
	return outM, nil
}

// streamProbsRange applies the model to pool rows [lo, hi) only, writing
// into the matching rows of outM (an n×cols matrix whose other rows are
// left untouched). Delta-aware rounds use it to score just the appended
// tail of a grown pool.
func streamProbsRange(src dataset.PoolSource, model *logreg.Model, classes, blockRows int, reduce bool, lo, hi int, outM *mat.Dense) error {
	if lo >= hi {
		return nil
	}
	if blockRows <= 0 {
		blockRows = dataset.DefaultBlockRows
	}
	cols := classes
	if reduce {
		cols = classes - 1
	}
	block := mat.NewDense(min(blockRows, hi-lo), src.Dim())
	probsBlock := mat.NewDense(min(blockRows, hi-lo), classes)
	for blo := lo; blo < hi; blo += block.Rows {
		bhi := min(blo+block.Rows, hi)
		xb := block.RowSlice(0, bhi-blo)
		if err := src.ReadRows(blo, bhi, xb); err != nil {
			return err
		}
		pb := softmax.Probabilities(probsBlock.RowSlice(0, bhi-blo), xb, model.Theta)
		for i := blo; i < bhi; i++ {
			copy(outM.Row(i), pb.Row(i - blo)[:cols])
		}
	}
	return nil
}

// allowedIndices returns [0, n) minus the excluded set, ascending.
func allowedIndices(n int, exclude []int) []int {
	dead := make(map[int]bool, len(exclude))
	for _, i := range exclude {
		dead[i] = true
	}
	out := make([]int, 0, n-len(exclude))
	for i := 0; i < n; i++ {
		if !dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// mapBack translates compacted-pool indices to global pool rows.
func mapBack(picked, allowed []int) []int {
	out := make([]int, len(picked))
	for k, i := range picked {
		out[k] = allowed[i]
	}
	return out
}
