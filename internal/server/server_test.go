package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// testPool generates a synthetic c-class pool, packs it into a shard file
// under dir, and returns the shard path plus a labeled seed set.
func testPool(t *testing.T, dir string, n, d, c int, seed int64) (string, [][]float64, []int) {
	t.Helper()
	ds := dataset.Generate(dataset.Config{
		Classes: c, Dim: d, PoolSize: n, EvalSize: c, InitPerClass: 3,
		Rounds: 1, Budget: 1,
	}, seed)
	shard := filepath.Join(dir, fmt.Sprintf("pool-%d.shard", seed))
	w, err := dataset.CreateShard(shard, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock(ds.PoolX); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	labX := make([][]float64, ds.LabeledX.Rows)
	for i := range labX {
		labX[i] = append([]float64(nil), ds.LabeledX.Row(i)...)
	}
	return shard, labX, ds.LabeledY
}

// api is a tiny JSON client against a test server.
type api struct {
	t    *testing.T
	base string
}

// do issues a request and decodes the JSON response into out (when
// non-nil), returning the status code.
func (a *api) do(method, path string, body, out any) int {
	a.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			a.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, a.base+path, rd)
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			a.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// must asserts the expected status and fails with the error payload.
func (a *api) must(status int, method, path string, body, out any) {
	a.t.Helper()
	var raw json.RawMessage
	got := a.do(method, path, body, &raw)
	if got != status {
		a.t.Fatalf("%s %s: status %d, want %d: %s", method, path, got, status, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			a.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

// waitRound polls a round until it reaches a terminal status.
func (a *api) waitRound(id string, round int, timeout time.Duration) roundView {
	a.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var rv roundView
		a.must(http.StatusOK, "GET", fmt.Sprintf("/v1/sessions/%s/rounds/%d", id, round), nil, &rv)
		switch rv.Status {
		case RoundDone, RoundFailed, RoundInterrupted:
			return rv
		}
		if time.Now().After(deadline) {
			a.t.Fatalf("round %d still %s after %v", round, rv.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *api) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, &api{t: t, base: hs.URL}
}

// TestSessionLifecycle drives the full dialogue over HTTP: create against
// a shard-path pool, extend labels by pool index, run two asynchronous
// rounds, fetch selections, and delete. Round 2 must respect the
// tombstones from round 1 and the index-labeled rows.
func TestSessionLifecycle(t *testing.T) {
	shard, labX, labY := testPool(t, t.TempDir(), 300, 6, 3, 11)
	_, a := newTestServer(t, Config{})

	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards:  []string{shard},
		Labeled: labeledUpload{X: labX, Y: labY},
		Seed:    7,
		// The registry alias must resolve (satellite of the CLI gap).
		Selector:        "firal",
		Probes:          4,
		FixedRelaxIters: 3,
		Workers:         2,
	}, &sv)
	if sv.Selector != "Approx-FIRAL" {
		t.Fatalf("alias not canonicalized: %q", sv.Selector)
	}
	if sv.Rows != 300 || sv.Dim != 6 || sv.Classes != 3 {
		t.Fatalf("session shape %d×%d/%d classes", sv.Rows, sv.Dim, sv.Classes)
	}

	// Label two pool rows by index; they become tombstones for selection.
	var lab map[string]int
	a.must(http.StatusOK, "POST", "/v1/sessions/"+sv.ID+"/labels", &labelsRequest{
		Pool: []IndexLabel{{Index: 5, Label: 0}, {Index: 6, Label: 1}},
	}, &lab)
	if lab["labeled"] != len(labY)+2 {
		t.Fatalf("labeled = %d, want %d", lab["labeled"], len(labY)+2)
	}
	// Relabeling the same row is a client error.
	if code := a.do("POST", "/v1/sessions/"+sv.ID+"/labels", &labelsRequest{
		Pool: []IndexLabel{{Index: 5, Label: 2}},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("duplicate index label: status %d, want 400", code)
	}

	var kicked map[string]any
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 4}, &kicked)
	rv := a.waitRound(sv.ID, 1, 30*time.Second)
	if rv.Status != RoundDone {
		t.Fatalf("round 1 ended %s: %s", rv.Status, rv.Error)
	}
	if rv.WorkersObserved < 1 || rv.WorkersObserved > 2 {
		t.Fatalf("workers observed %d under a scoped limit of 2", rv.WorkersObserved)
	}

	var sel struct {
		Selected []int `json:"selected"`
	}
	a.must(http.StatusOK, "GET", "/v1/sessions/"+sv.ID+"/rounds/1/selected", nil, &sel)
	if len(sel.Selected) != 4 {
		t.Fatalf("selected %d points, want 4", len(sel.Selected))
	}
	taken := map[int]bool{5: true, 6: true}
	for _, i := range sel.Selected {
		if i < 0 || i >= 300 || taken[i] {
			t.Fatalf("round 1 selected invalid or tombstoned index %d", i)
		}
		taken[i] = true
	}

	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 4}, &kicked)
	if rv := a.waitRound(sv.ID, 2, 30*time.Second); rv.Status != RoundDone {
		t.Fatalf("round 2 ended %s: %s", rv.Status, rv.Error)
	}
	a.must(http.StatusOK, "GET", "/v1/sessions/"+sv.ID+"/rounds/2/selected", nil, &sel)
	for _, i := range sel.Selected {
		if taken[i] {
			t.Fatalf("round 2 re-selected index %d", i)
		}
		taken[i] = true
	}

	a.must(http.StatusNoContent, "DELETE", "/v1/sessions/"+sv.ID, nil, nil)
	if code := a.do("GET", "/v1/sessions/"+sv.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session answered %d, want 404", code)
	}
}

// TestCreateValidation pins the 400-class errors: unknown selector (must
// list the registry), the unservable distributed selector, conflicting or
// absent pool registration, and shape mismatches.
func TestCreateValidation(t *testing.T) {
	shard, labX, labY := testPool(t, t.TempDir(), 50, 4, 2, 3)
	_, a := newTestServer(t, Config{})
	lab := labeledUpload{X: labX, Y: labY}

	cases := []struct {
		name string
		req  createRequest
		want string
	}{
		{"unknown selector", createRequest{Shards: []string{shard}, Labeled: lab, Selector: "gradient-boost"}, "Approx-FIRAL"},
		{"dist needs ranks", createRequest{Shards: []string{shard}, Labeled: lab, Selector: "dist"}, "-ranks"},
		{"no pool", createRequest{Labeled: lab}, "pool required"},
		{"both pools", createRequest{Shards: []string{shard}, PoolCSV: "1,2,3,4\n", Labeled: lab}, "not both"},
		{"no labels", createRequest{Shards: []string{shard}}, "labeled set required"},
		{"missing shard", createRequest{Shards: []string{shard + ".nope"}, Labeled: lab}, shard + ".nope"},
		{"dim mismatch", createRequest{Shards: []string{shard}, Labeled: labeledUpload{X: [][]float64{{1, 2}, {3, 4}}, Y: []int{0, 1}}}, "dimension"},
		{"label out of range", createRequest{Shards: []string{shard}, Labeled: labeledUpload{X: labX, Y: make([]int, len(labY))}}, "2 classes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e struct {
				Error string `json:"error"`
			}
			if code := a.do("POST", "/v1/sessions", &tc.req, &e); code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", code, e.Error)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}

// TestInlineCSVPool uploads the pool as CSV text; the server packs it into
// a session-local shard and selection runs against that.
func TestInlineCSVPool(t *testing.T) {
	ds := dataset.Generate(dataset.Config{
		Classes: 2, Dim: 3, PoolSize: 40, EvalSize: 2, InitPerClass: 3, Rounds: 1, Budget: 1,
	}, 21)
	var csv strings.Builder
	for i := 0; i < ds.PoolX.Rows; i++ {
		row := ds.PoolX.Row(i)
		for j, v := range row {
			if j > 0 {
				csv.WriteByte(',')
			}
			fmt.Fprintf(&csv, "%g", v)
		}
		csv.WriteByte('\n')
	}
	labX := make([][]float64, ds.LabeledX.Rows)
	for i := range labX {
		labX[i] = append([]float64(nil), ds.LabeledX.Row(i)...)
	}

	_, a := newTestServer(t, Config{})
	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		PoolCSV:  csv.String(),
		Labeled:  labeledUpload{X: labX, Y: ds.LabeledY},
		Selector: "entropy",
	}, &sv)
	if sv.Rows != 40 || sv.Dim != 3 {
		t.Fatalf("inline pool registered as %d×%d, want 40×3", sv.Rows, sv.Dim)
	}
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 5}, nil)
	if rv := a.waitRound(sv.ID, 1, 30*time.Second); rv.Status != RoundDone || len(rv.Selected) != 5 {
		t.Fatalf("inline round: %+v", rv)
	}
}

// TestResumeBitForBit is the kill-mid-round acceptance test, in-process
// for determinism: run a reference round to completion on one server;
// interrupt the identically-configured round on a second server once its
// first RELAX checkpoint hits disk; restart over the same data directory
// and let recovery resume the solve. The resumed selection must equal the
// uninterrupted one exactly — the checkpoint restores the mirror-descent
// trajectory bit-for-bit, so there is no tolerance in this comparison.
func TestResumeBitForBit(t *testing.T) {
	poolDir := t.TempDir()
	shard, labX, labY := testPool(t, poolDir, 500, 8, 3, 31)
	mk := func() *createRequest {
		return &createRequest{
			Shards:          []string{shard},
			Labeled:         labeledUpload{X: labX, Y: labY},
			Seed:            99,
			Selector:        "Approx-FIRAL",
			Probes:          4,
			FixedRelaxIters: 25,
			Workers:         2,
		}
	}

	// Reference: uninterrupted round.
	_, ref := newTestServer(t, Config{})
	var refSess sessionView
	ref.must(http.StatusCreated, "POST", "/v1/sessions", mk(), &refSess)
	ref.must(http.StatusAccepted, "POST", "/v1/sessions/"+refSess.ID+"/rounds", &roundRequest{Budget: 6}, nil)
	refRound := ref.waitRound(refSess.ID, 1, 60*time.Second)
	if refRound.Status != RoundDone {
		t.Fatalf("reference round: %s %s", refRound.Status, refRound.Error)
	}

	// Interrupted run: same pool, seed, and solver settings, own data dir.
	dataDir := t.TempDir()
	srv2, err := New(Config{DataDir: dataDir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	a2 := &api{t: t, base: hs2.URL}
	var sess sessionView
	a2.must(http.StatusCreated, "POST", "/v1/sessions", mk(), &sess)
	a2.must(http.StatusAccepted, "POST", "/v1/sessions/"+sess.ID+"/rounds", &roundRequest{Budget: 6}, nil)

	// Kill the server as soon as the round has checkpointed at least once
	// (the checkpoint file is the observable for "mid-RELAX").
	ckpt := checkpointPath(filepath.Join(dataDir, sess.ID))
	for deadline := time.Now().Add(60 * time.Second); ; {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	hs2.Close()
	srv2.Close() // cancels the running round; checkpoint stays on disk

	if _, ck, err := readCheckpoint(ckpt); err != nil {
		t.Fatalf("checkpoint unreadable after interrupt: %v", err)
	} else if ck.Done {
		t.Skip("round finished before the interrupt landed; nothing to resume")
	}

	// Restart over the same directory: recovery must re-enqueue and finish
	// the round without a new kick.
	srv3, err := New(Config{DataDir: dataDir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs3 := httptest.NewServer(srv3.Handler())
	t.Cleanup(func() { hs3.Close(); srv3.Close() })
	a3 := &api{t: t, base: hs3.URL}
	resumed := a3.waitRound(sess.ID, 1, 60*time.Second)
	if resumed.Status != RoundDone {
		t.Fatalf("resumed round: %s %s", resumed.Status, resumed.Error)
	}

	if len(resumed.Selected) != len(refRound.Selected) {
		t.Fatalf("resumed selected %d points, reference %d", len(resumed.Selected), len(refRound.Selected))
	}
	for i := range resumed.Selected {
		if resumed.Selected[i] != refRound.Selected[i] {
			t.Fatalf("selection diverged at position %d: resumed %v, reference %v",
				i, resumed.Selected, refRound.Selected)
		}
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleaned up after the round completed")
	}
}

// TestAdmissionBackpressure pins the HTTP contract: with capacity C and
// queue depth Q, C+Q+1 concurrent round starts produce exactly one 429,
// and the refused round succeeds on retry once the congestion clears. The
// capacity slot is pinned by a directly held admission ticket, so the
// outcome does not depend on solver timing.
func TestAdmissionBackpressure(t *testing.T) {
	shard, labX, labY := testPool(t, t.TempDir(), 60, 4, 2, 41)
	srv, a := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1})

	hold, _, err := srv.adm.Admit(false) // occupy the only slot (C=1)
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, 2)
	for i := range ids {
		var sv sessionView
		a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
			Shards: []string{shard}, Labeled: labeledUpload{X: labX, Y: labY}, Selector: "entropy",
		}, &sv)
		ids[i] = sv.ID
	}

	// Q=1: the first kick queues at position 1; the second is refused.
	var kicked struct {
		Round         int    `json:"round"`
		Status        string `json:"status"`
		QueuePosition int    `json:"queue_position"`
	}
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+ids[0]+"/rounds", &roundRequest{Budget: 3}, &kicked)
	if kicked.Status != RoundQueued || kicked.QueuePosition != 1 {
		t.Fatalf("first kick: %+v, want queued at position 1", kicked)
	}
	var rv roundView
	a.must(http.StatusOK, "GET", "/v1/sessions/"+ids[0]+"/rounds/1", nil, &rv)
	if rv.Status != RoundQueued || rv.QueuePosition != 1 {
		t.Fatalf("queued round reports %+v", rv)
	}
	if code := a.do("POST", "/v1/sessions/"+ids[1]+"/rounds", &roundRequest{Budget: 3}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-depth kick: status %d, want 429", code)
	}

	// Congestion clears: the queued round runs, and the refused one
	// succeeds on retry.
	hold.Release()
	if rv := a.waitRound(ids[0], 1, 30*time.Second); rv.Status != RoundDone {
		t.Fatalf("queued round ended %s: %s", rv.Status, rv.Error)
	}
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+ids[1]+"/rounds", &roundRequest{Budget: 3}, nil)
	if rv := a.waitRound(ids[1], 1, 30*time.Second); rv.Status != RoundDone {
		t.Fatalf("retried round ended %s: %s", rv.Status, rv.Error)
	}
}

// TestConcurrentSessions runs N full client lifecycles in parallel — the
// -race companion of the admission test. Every session must see only its
// own pool's indices, observe no more parallelism than its scoped worker
// limit, and leave nothing behind after delete.
func TestConcurrentSessions(t *testing.T) {
	const clients = 5
	poolDir := t.TempDir()
	srv, a := newTestServer(t, Config{Concurrency: 2, QueueDepth: clients})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: "+format, append([]any{k}, args...)...)
			}
			n := 80 + 20*k
			shard, labX, labY := testPool(t, poolDir, n, 5, 2, int64(100+k))
			var sv sessionView
			code := a.do("POST", "/v1/sessions", &createRequest{
				Shards: []string{shard}, Labeled: labeledUpload{X: labX, Y: labY},
				Selector: "Approx-FIRAL", Probes: 3, FixedRelaxIters: 2, Workers: 1, Seed: int64(k),
			}, &sv)
			if code != http.StatusCreated {
				fail("create: status %d", code)
				return
			}
			for round := 1; round <= 2; round++ {
				if code := a.do("POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 3}, nil); code != http.StatusAccepted {
					fail("round %d kick: status %d", round, code)
					return
				}
				deadline := time.Now().Add(60 * time.Second)
				for {
					var rv roundView
					if code := a.do("GET", fmt.Sprintf("/v1/sessions/%s/rounds/%d", sv.ID, round), nil, &rv); code != http.StatusOK {
						fail("round %d poll: status %d", round, code)
						return
					}
					if rv.Status == RoundDone {
						if len(rv.Selected) != 3 {
							fail("round %d selected %d", round, len(rv.Selected))
							return
						}
						for _, i := range rv.Selected {
							if i < 0 || i >= n {
								fail("round %d index %d outside own pool [0,%d)", round, i, n)
								return
							}
						}
						if rv.WorkersObserved != 1 {
							fail("round %d observed %d workers under AcquireLimit(1)", round, rv.WorkersObserved)
							return
						}
						break
					}
					if rv.Status == RoundFailed || rv.Status == RoundInterrupted {
						fail("round %d ended %s: %s", round, rv.Status, rv.Error)
						return
					}
					if time.Now().After(deadline) {
						fail("round %d timed out in %s", round, rv.Status)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			if code := a.do("DELETE", "/v1/sessions/"+sv.ID, nil, nil); code != http.StatusNoContent {
				fail("delete: status %d", code)
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if running, queued := srv.adm.Stats(); running != 0 || queued != 0 {
		t.Errorf("admission leaked: %d running, %d queued", running, queued)
	}
	var list struct {
		Sessions []sessionView `json:"sessions"`
	}
	a.must(http.StatusOK, "GET", "/v1/sessions", nil, &list)
	if len(list.Sessions) != 0 {
		t.Errorf("%d sessions left after deletes", len(list.Sessions))
	}
}

// TestNoGoroutineLeak pins that a full create→round→delete→Close cycle
// returns the process to its original goroutine count.
func TestNoGoroutineLeak(t *testing.T) {
	shard, labX, labY := testPool(t, t.TempDir(), 80, 4, 2, 51)
	before := runtime.NumGoroutine()

	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	a := &api{t: t, base: hs.URL}
	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards: []string{shard}, Labeled: labeledUpload{X: labX, Y: labY}, Selector: "margin",
	}, &sv)
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 3}, nil)
	a.waitRound(sv.ID, 1, 30*time.Second)
	a.must(http.StatusNoContent, "DELETE", "/v1/sessions/"+sv.ID, nil, nil)
	hs.Close()
	srv.Close()

	// The HTTP stack retires keep-alive and idle goroutines asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d → %d after full lifecycle\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestNoGoroutineLeakPrefetchedRound extends the leak pin to the
// prefetched Approx-FIRAL sweep: with a block size far below the pool
// the round's selection runs through dataset.WithPrefetch, so every
// solver sweep keeps an asynchronous shard read in flight. Both a round
// allowed to finish and a round cancelled mid-sweep by session delete
// must drain those reads and return the process to its original
// goroutine count.
func TestNoGoroutineLeakPrefetchedRound(t *testing.T) {
	shard, labX, labY := testPool(t, t.TempDir(), 400, 6, 3, 52)
	before := runtime.NumGoroutine()

	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	a := &api{t: t, base: hs.URL}

	// Round 1 runs to completion through the prefetched sweep path.
	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards: []string{shard}, Labeled: labeledUpload{X: labX, Y: labY},
		Selector: "Approx-FIRAL", Probes: 3, FixedRelaxIters: 2, BlockRows: 32, Seed: 3,
	}, &sv)
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 3}, nil)
	if rv := a.waitRound(sv.ID, 1, 30*time.Second); rv.Status != RoundDone {
		t.Fatalf("round 1 ended %s: %s", rv.Status, rv.Error)
	}
	a.must(http.StatusNoContent, "DELETE", "/v1/sessions/"+sv.ID, nil, nil)

	// Round 2 is torn down mid-flight: many mirror-descent iterations keep
	// the sweep busy while the delete cancels the round context, which the
	// prefetcher must answer by draining its in-flight read.
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards: []string{shard}, Labeled: labeledUpload{X: labX, Y: labY},
		Selector: "Approx-FIRAL", Probes: 4, FixedRelaxIters: 50, BlockRows: 32, Seed: 4,
	}, &sv)
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 3}, nil)
	time.Sleep(20 * time.Millisecond) // let the sweep get going
	a.must(http.StatusNoContent, "DELETE", "/v1/sessions/"+sv.ID, nil, nil)

	hs.Close()
	srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d → %d after prefetched rounds\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMultiTenantThroughput is the scaling acceptance check: 8 tenants
// running their rounds through a concurrency-4 server must finish within
// 2× the wall-clock of the same 8 rounds run strictly one at a time —
// i.e. multiplexing may cost coordination overhead but must not serialize
// pathologically. Skipped where the timing is meaningless.
func TestMultiTenantThroughput(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("timing under the race detector is not meaningful")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥ 2 CPUs")
	}
	const tenants = 8
	poolDir := t.TempDir()
	type tenant struct {
		shard string
		labX  [][]float64
		labY  []int
	}
	tens := make([]tenant, tenants)
	for k := range tens {
		shard, labX, labY := testPool(t, poolDir, 400, 8, 3, int64(200+k))
		tens[k] = tenant{shard, labX, labY}
	}
	run := func(concurrency int) time.Duration {
		_, a := newTestServer(t, Config{Concurrency: concurrency, QueueDepth: tenants})
		ids := make([]string, tenants)
		for k, tn := range tens {
			var sv sessionView
			a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
				Shards: []string{tn.shard}, Labeled: labeledUpload{X: tn.labX, Y: tn.labY},
				Selector: "Approx-FIRAL", Probes: 4, FixedRelaxIters: 4, Workers: 2, Seed: int64(k),
			}, &sv)
			ids[k] = sv.ID
		}
		start := time.Now()
		for _, id := range ids {
			a.must(http.StatusAccepted, "POST", "/v1/sessions/"+id+"/rounds", &roundRequest{Budget: 4}, nil)
		}
		for _, id := range ids {
			if rv := a.waitRound(id, 1, 120*time.Second); rv.Status != RoundDone {
				t.Fatalf("tenant round ended %s: %s", rv.Status, rv.Error)
			}
		}
		return time.Since(start)
	}
	sequential := run(1)
	concurrent := run(4)
	t.Logf("8 tenants: sequential %v, concurrent %v", sequential, concurrent)
	if concurrent > 2*sequential {
		t.Errorf("concurrent wall-clock %v exceeds 2× sequential %v", concurrent, sequential)
	}
}

// TestDistFIRALRounds serves Dist-FIRAL when the server is configured
// with in-process ranks: rounds complete, respect tombstones, and two
// servers with the same rank count reproduce identical selections (the
// distributed solver is deterministic at fixed geometry).
func TestDistFIRALRounds(t *testing.T) {
	shard, labX, labY := testPool(t, t.TempDir(), 200, 5, 3, 17)
	runOnce := func() [][]int {
		_, a := newTestServer(t, Config{Ranks: 3})
		var sv sessionView
		a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
			Shards:          []string{shard},
			Labeled:         labeledUpload{X: labX, Y: labY},
			Seed:            9,
			Selector:        "dist",
			Probes:          4,
			FixedRelaxIters: 3,
		}, &sv)
		if sv.Selector != "Dist-FIRAL" {
			t.Fatalf("alias not canonicalized: %q", sv.Selector)
		}
		var sels [][]int
		for round := 1; round <= 2; round++ {
			a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds", &roundRequest{Budget: 4}, nil)
			if rv := a.waitRound(sv.ID, round, 60*time.Second); rv.Status != RoundDone {
				t.Fatalf("dist round %d ended %s: %s", round, rv.Status, rv.Error)
			}
			var sel struct {
				Selected []int `json:"selected"`
			}
			a.must(http.StatusOK, "GET", fmt.Sprintf("/v1/sessions/%s/rounds/%d/selected", sv.ID, round), nil, &sel)
			if len(sel.Selected) != 4 {
				t.Fatalf("dist round %d selected %d points, want 4", round, len(sel.Selected))
			}
			sels = append(sels, sel.Selected)
		}
		taken := map[int]bool{}
		for _, sel := range sels {
			for _, i := range sel {
				if i < 0 || i >= 200 || taken[i] {
					t.Fatalf("invalid or re-selected index %d across rounds %v", i, sels)
				}
				taken[i] = true
			}
		}
		return sels
	}
	first := runOnce()
	second := runOnce()
	for r := range first {
		for i := range first[r] {
			if first[r][i] != second[r][i] {
				t.Fatalf("round %d not reproducible: %v vs %v", r+1, first[r], second[r])
			}
		}
	}
}
