package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/firal"
)

// Round checkpoints persist the resumable RELAX state of an in-flight
// selection round so a killed server resumes instead of recomputing. The
// format is fixed little-endian binary — float64 bits are written raw, so
// a resumed mirror-descent trajectory is bit-for-bit the uninterrupted
// one (a text codec that rounds weights would diverge):
//
//	offset 0   8 bytes  magic "FIRALCK1"
//	offset 8   uint32   round number the state belongs to
//	offset 12  uint32   completed mirror-descent iterations
//	offset 16  uint8    done flag (mirror descent finished; ROUND remained)
//	offset 17  uint64   cumulative CG iterations
//	offset 25  uint64   nz, then nz float64 simplex weights
//	...        uint64   nf, then nf float64 objective history
//
// Writes are atomic (temp file + rename in the same directory), so a
// crash mid-write leaves the previous checkpoint intact rather than a
// torn file.

const ckptMagic = "FIRALCK1"

// checkpointPath is the per-session location of the in-flight round's
// checkpoint. One file per session: a session runs at most one round at a
// time, and a completed round deletes it.
func checkpointPath(sessionDir string) string {
	return filepath.Join(sessionDir, "round.ckpt")
}

// warmPath is the per-session location of the last completed round's
// converged RELAX weights (same codec, round field = the round that wrote
// it). Unlike round.ckpt it survives round completion: the next round
// reads it to warm-start mirror descent, reprojecting the weights onto
// the grown simplex if the pool was appended to in between.
func warmPath(sessionDir string) string {
	return filepath.Join(sessionDir, "warm.ckpt")
}

// writeCheckpoint atomically persists the RELAX state of round `round`.
func writeCheckpoint(path string, round int, ck *firal.RelaxCheckpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var scratch [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		w.Write(scratch[:4])
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		w.Write(scratch[:])
	}
	putFloats := func(xs []float64) {
		put64(uint64(len(xs)))
		for _, x := range xs {
			put64(math.Float64bits(x))
		}
	}
	w.WriteString(ckptMagic)
	put32(uint32(round))
	put32(uint32(ck.Iteration))
	if ck.Done {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	put64(uint64(ck.CGIterations))
	putFloats(ck.Z)
	putFloats(ck.FHist)
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// readCheckpoint loads a checkpoint, reporting the round it belongs to.
// A missing file returns os.ErrNotExist (via os.ReadFile).
func readCheckpoint(path string) (round int, ck *firal.RelaxCheckpoint, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < len(ckptMagic)+4+4+1+8 || string(raw[:8]) != ckptMagic {
		return 0, nil, fmt.Errorf("server: %s is not a round checkpoint", path)
	}
	off := 8
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(raw[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(raw[off:])
		off += 8
		return v
	}
	round = int(u32())
	ck = &firal.RelaxCheckpoint{Iteration: int(u32())}
	ck.Done = raw[off] != 0
	off++
	ck.CGIterations = int(u64())
	floats := func(what string) ([]float64, error) {
		if off+8 > len(raw) {
			return nil, fmt.Errorf("server: checkpoint %s: truncated before %s length", path, what)
		}
		n := int(u64())
		if n < 0 || off+8*n > len(raw) {
			return nil, fmt.Errorf("server: checkpoint %s: truncated %s (want %d floats, %d bytes left)",
				path, what, n, len(raw)-off)
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Float64frombits(u64())
		}
		return xs, nil
	}
	if ck.Z, err = floats("weights"); err != nil {
		return 0, nil, err
	}
	if ck.FHist, err = floats("objective history"); err != nil {
		return 0, nil, err
	}
	return round, ck, nil
}
