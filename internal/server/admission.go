// Package server is the selection-as-a-service layer: a long-lived HTTP
// server multiplexing many tenant active-learning sessions over the shared
// worker pool. Each session registers an unlabeled pool (shard-path
// reference or inline CSV upload), accumulates labels through an ongoing
// labeled/unlabeled dialogue, and runs asynchronous train+select rounds
// whose RELAX state is periodically checkpointed so an interrupted solve
// resumes — bit-for-bit — after a crash or restart. An admission layer
// bounds concurrent rounds with a FIFO queue and sheds load past a
// configurable depth, so overload degrades into backpressure instead of
// thrashing the worker pool. See ARCHITECTURE.md § Service layer.
package server

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Admission.Admit when the concurrency slots
// and the waiting queue are both full; handlers map it to 429.
var ErrSaturated = errors.New("server: all round slots busy and admission queue full")

// Admission bounds the number of selection rounds in flight. At most
// `capacity` rounds run concurrently; up to `depth` more wait in FIFO
// order; beyond that Admit refuses, which the HTTP layer surfaces as
// backpressure (429). Invariants:
//
//   - running ≤ capacity at all times.
//   - Tickets are granted strictly in Admit order (FIFO): a later arrival
//     never runs before an earlier one that is still waiting.
//   - A released or abandoned ticket (context cancelled while queued)
//     frees its slot/queue position exactly once; Release is idempotent.
//   - force admission (crash recovery) may exceed depth but never
//     capacity: recovered rounds must not be dropped, yet still must not
//     thrash the worker pool.
type Admission struct {
	mu       sync.Mutex
	capacity int
	depth    int
	running  int
	queue    []*Ticket
}

// NewAdmission builds an admission controller with `capacity` concurrent
// slots and a waiting queue of `depth` (minimums 1 and 0).
func NewAdmission(capacity, depth int) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &Admission{capacity: capacity, depth: depth}
}

// Ticket is one admitted-or-waiting round. Wait blocks until the ticket
// holds a running slot; Release returns the slot (or abandons the queue
// position) and promotes the next waiter.
type Ticket struct {
	a        *Admission
	ready    chan struct{} // closed when a running slot is granted
	admitted bool          // guarded by a.mu
	released bool          // guarded by a.mu
}

// Admit requests a round slot. It never blocks: the return is either a
// ticket already holding a slot (position 0), a queued ticket with its
// 1-based FIFO position, or ErrSaturated. With force set, the depth bound
// is waived (the capacity bound never is) — used when re-enqueueing
// checkpointed rounds at startup, which must not be shed.
func (a *Admission) Admit(force bool) (*Ticket, int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := &Ticket{a: a, ready: make(chan struct{})}
	if a.running < a.capacity && len(a.queue) == 0 {
		a.running++
		t.admitted = true
		close(t.ready)
		return t, 0, nil
	}
	if !force && len(a.queue) >= a.depth {
		return nil, 0, ErrSaturated
	}
	a.queue = append(a.queue, t)
	return t, len(a.queue), nil
}

// Wait blocks until the ticket is granted a running slot or ctx is done.
// On cancellation the ticket is released (queue position abandoned, or
// slot returned if the grant raced the cancellation) and ctx.Err() is
// returned.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.ready:
		return nil
	case <-ctx.Done():
		t.Release()
		return ctx.Err()
	}
}

// Release frees the ticket's slot or queue position and promotes the next
// waiter. Idempotent; safe to defer alongside an explicit error-path call.
func (t *Ticket) Release() {
	a := t.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if t.released {
		return
	}
	t.released = true
	if t.admitted {
		a.running--
		a.promoteLocked()
		return
	}
	for i, q := range a.queue {
		if q == t {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
}

// promoteLocked grants slots to the head of the queue while capacity
// allows. Caller holds a.mu.
func (a *Admission) promoteLocked() {
	for a.running < a.capacity && len(a.queue) > 0 {
		t := a.queue[0]
		a.queue = a.queue[1:]
		a.running++
		t.admitted = true
		close(t.ready)
	}
}

// Position reports the ticket's place: 0 when it holds a running slot,
// otherwise its 1-based FIFO position in the waiting queue.
func (t *Ticket) Position() int {
	t.a.mu.Lock()
	defer t.a.mu.Unlock()
	if t.admitted {
		return 0
	}
	for i, q := range t.a.queue {
		if q == t {
			return i + 1
		}
	}
	return 0
}

// Stats reports the number of running and queued rounds.
func (a *Admission) Stats() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, len(a.queue)
}
