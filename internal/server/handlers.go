package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// The HTTP surface (all JSON):
//
//	POST   /v1/sessions                        create a session
//	GET    /v1/sessions                        list session summaries
//	GET    /v1/sessions/{id}                   one session's summary + rounds
//	DELETE /v1/sessions/{id}                   cancel + delete
//	POST   /v1/sessions/{id}/labels            upload/extend labels
//	POST   /v1/sessions/{id}/pool              append rows to the pool
//	POST   /v1/sessions/{id}/rounds            start an async round (202/429)
//	GET    /v1/sessions/{id}/rounds/{round}    round status + live progress
//	GET    /v1/sessions/{id}/rounds/{round}/selected  the chosen indices
//	GET    /v1/healthz                         liveness
//	GET    /v1/stats                           admission counters
//
// Errors are {"error": "..."} with the status carrying the class: 400
// malformed/invalid, 404 unknown session/round, 409 conflicting round
// state, 429 admission queue full, 503 shutting down.

// createRequest is the POST /v1/sessions body.
type createRequest struct {
	// Pool registration: exactly one of Shards (paths on the server's
	// filesystem) or PoolCSV (inline features-only CSV, packed server-side).
	Shards  []string `json:"shards,omitempty"`
	PoolCSV string   `json:"pool_csv,omitempty"`

	// Labeled is the initial labeled set (required, ≥ 2 classes).
	Labeled labeledUpload `json:"labeled"`

	// Classes overrides the class count inferred from the labels (set it
	// when the seed set does not yet cover every class).
	Classes int     `json:"classes,omitempty"`
	Lambda  float64 `json:"lambda,omitempty"`
	Seed    int64   `json:"seed,omitempty"`

	// Selector is any registered, servable strategy (default Approx-FIRAL;
	// aliases accepted).
	Selector        string  `json:"selector,omitempty"`
	Probes          int     `json:"probes,omitempty"`
	CGTol           float64 `json:"cgtol,omitempty"`
	RelaxIters      int     `json:"relax_iters,omitempty"`
	FixedRelaxIters int     `json:"fixed_relax_iters,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	BlockRows       int     `json:"block_rows,omitempty"`
}

// labeledUpload is a parallel feature/label pair.
type labeledUpload struct {
	X [][]float64 `json:"x"`
	Y []int       `json:"y"`
}

// labelsRequest is the POST /v1/sessions/{id}/labels body: new labeled
// examples by value, pool rows by index, or both.
type labelsRequest struct {
	Examples labeledUpload `json:"examples"`
	Pool     []IndexLabel  `json:"pool,omitempty"`
}

// roundRequest is the POST /v1/sessions/{id}/rounds body.
type roundRequest struct {
	Budget int `json:"budget"`
}

// appendPoolRequest is the POST /v1/sessions/{id}/pool body: exactly one
// of Shards or PoolCSV, same as pool registration at create time. The new
// rows land after the existing ones, so previously reported indices stay
// valid; the next round scores the grown pool.
type appendPoolRequest struct {
	Shards  []string `json:"shards,omitempty"`
	PoolCSV string   `json:"pool_csv,omitempty"`
}

// sessionView is the wire form of a session summary (the labeled features
// themselves are deliberately not echoed back).
type sessionView struct {
	ID       string       `json:"id"`
	Created  string       `json:"created"`
	Selector string       `json:"selector"`
	Rows     int          `json:"rows"`
	Dim      int          `json:"dim"`
	Classes  int          `json:"classes"`
	Labeled  int          `json:"labeled"`
	Rounds   []*RoundMeta `json:"rounds,omitempty"`
}

// roundView is the wire form of round status, including live progress for
// a running round.
type roundView struct {
	RoundMeta
	QueuePosition  int  `json:"queue_position,omitempty"`
	RelaxIteration int  `json:"relax_iteration,omitempty"`
	RelaxDone      bool `json:"relax_done,omitempty"`
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/labels", s.handleLabels)
	mux.HandleFunc("POST /v1/sessions/{id}/pool", s.handleAppendPool)
	mux.HandleFunc("POST /v1/sessions/{id}/rounds", s.handleStartRound)
	mux.HandleFunc("GET /v1/sessions/{id}/rounds/{round}", s.handleRound)
	mux.HandleFunc("GET /v1/sessions/{id}/rounds/{round}/selected", s.handleSelected)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps the package's typed errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrSessionNotFound), errors.Is(err, ErrRoundNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrRoundActive):
		status = http.StatusConflict
	case errors.Is(err, ErrSaturated):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: malformed request body: %w", err)
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	sess, err := s.createSession(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]*sessionView, 0, len(s.sessions))
	for _, sess := range s.sessions {
		views = append(views, sess.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.view())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.deleteSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req labelsRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.addLabels(sess, req.Examples.X, req.Examples.Y, req.Pool); err != nil {
		writeError(w, err)
		return
	}
	sess.mu.Lock()
	total := len(sess.meta.LabeledY) + len(sess.meta.IndexLabels)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"labeled": total})
}

func (s *Server) handleAppendPool(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req appendPoolRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	rows, gen, err := s.appendPool(sess, req.Shards, req.PoolCSV)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rows":       rows,
		"generation": gen,
	})
}

func (s *Server) handleStartRound(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var req roundRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	round, pos, err := s.startRound(sess, req.Budget)
	if err != nil {
		writeError(w, err)
		return
	}
	// Position 0 means the round holds a slot and is starting; otherwise
	// it waits in the admission queue. The RoundMeta itself now belongs to
	// the round goroutine — report the snapshot, not the live struct.
	status := RoundQueued
	if pos == 0 {
		status = RoundRunning
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"round":          round,
		"status":         status,
		"queue_position": pos,
	})
}

// roundByNumber finds a round; caller must hold sess.mu.
func roundByNumberLocked(sess *Session, number string) (*RoundMeta, error) {
	n, err := strconv.Atoi(number)
	if err != nil || n < 1 || n > len(sess.meta.Rounds) {
		return nil, fmt.Errorf("%w: session %s has rounds 1..%d, not %q",
			ErrRoundNotFound, sess.meta.ID, len(sess.meta.Rounds), number)
	}
	return sess.meta.Rounds[n-1], nil
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	sess.mu.Lock()
	rm, err := roundByNumberLocked(sess, r.PathValue("round"))
	if err != nil {
		sess.mu.Unlock()
		writeError(w, err)
		return
	}
	view := roundView{RoundMeta: *rm}
	view.Selected = append([]int(nil), rm.Selected...)
	if rm.Status == RoundQueued && sess.ticket != nil {
		view.QueuePosition = sess.ticket.Position()
	}
	if rm.Status == RoundRunning {
		view.RelaxIteration = sess.progress.RelaxIteration
		view.RelaxDone = sess.progress.RelaxDone
		view.CGIterations = sess.progress.CGIterations
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, &view)
}

func (s *Server) handleSelected(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	sess.mu.Lock()
	rm, err := roundByNumberLocked(sess, r.PathValue("round"))
	if err != nil {
		sess.mu.Unlock()
		writeError(w, err)
		return
	}
	status := rm.Status
	selected := append([]int(nil), rm.Selected...)
	sess.mu.Unlock()
	if status != RoundDone {
		writeError(w, fmt.Errorf("server: round is %s, selected indices exist only once it is %s", status, RoundDone))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"selected": selected})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	running, queued := s.adm.Stats()
	s.mu.Lock()
	sessions := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{
		"sessions":       sessions,
		"rounds_running": running,
		"rounds_queued":  queued,
	})
}

// view renders the session summary.
func (s *Session) view() *sessionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &sessionView{
		ID:       s.meta.ID,
		Created:  s.meta.Created,
		Selector: s.meta.Selector,
		Rows:     s.meta.Rows,
		Dim:      s.meta.Dim,
		Classes:  s.meta.Classes,
		Labeled:  len(s.meta.LabeledY) + len(s.meta.IndexLabels),
	}
	for _, rm := range s.meta.Rounds {
		c := *rm
		c.Selected = append([]int(nil), rm.Selected...)
		v.Rounds = append(v.Rounds, &c)
	}
	return v
}
