package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAdmissionCapacityAndDepth pins the headline invariant: with C slots
// and a queue of Q, C+Q+1 simultaneous admissions yield exactly C running,
// Q queued, and one ErrSaturated.
func TestAdmissionCapacityAndDepth(t *testing.T) {
	const capacity, depth = 2, 3
	a := NewAdmission(capacity, depth)
	var admitted, queued, refused int
	var tickets []*Ticket
	for i := 0; i < capacity+depth+1; i++ {
		tk, pos, err := a.Admit(false)
		switch {
		case errors.Is(err, ErrSaturated):
			refused++
		case err != nil:
			t.Fatal(err)
		case pos == 0:
			admitted++
			tickets = append(tickets, tk)
		default:
			queued++
			if pos != queued {
				t.Errorf("queue position %d, want %d (FIFO)", pos, queued)
			}
			tickets = append(tickets, tk)
		}
	}
	if admitted != capacity || queued != depth || refused != 1 {
		t.Fatalf("admitted/queued/refused = %d/%d/%d, want %d/%d/1",
			admitted, queued, refused, capacity, depth)
	}
	if r, q := a.Stats(); r != capacity || q != depth {
		t.Fatalf("Stats = %d running, %d queued", r, q)
	}
	for _, tk := range tickets {
		tk.Release()
	}
	if r, q := a.Stats(); r != 0 || q != 0 {
		t.Fatalf("after release Stats = %d running, %d queued, want 0/0", r, q)
	}
}

// TestAdmissionFIFO verifies waiters are granted strictly in arrival order.
func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(1, 4)
	first, _, err := a.Admit(false)
	if err != nil {
		t.Fatal(err)
	}
	var waiters []*Ticket
	for i := 0; i < 3; i++ {
		tk, pos, err := a.Admit(false)
		if err != nil || pos != i+1 {
			t.Fatalf("waiter %d: pos=%d err=%v", i, pos, err)
		}
		waiters = append(waiters, tk)
	}
	ctx := context.Background()
	first.Release()
	// Only the head should be runnable; later waiters still block.
	if err := waiters[0].Wait(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := waiters[2].Wait(short); err == nil {
		t.Fatal("tail waiter ran before its turn")
	}
	// The cancelled Wait abandoned waiters[2]'s queue slot; the rest still
	// promote in order.
	waiters[0].Release()
	if err := waiters[1].Wait(ctx); err != nil {
		t.Fatal(err)
	}
	waiters[1].Release()
	if r, q := a.Stats(); r != 0 || q != 0 {
		t.Fatalf("Stats = %d/%d, want 0/0", r, q)
	}
}

// TestAdmissionForce pins that force waives the depth bound but never the
// capacity bound.
func TestAdmissionForce(t *testing.T) {
	a := NewAdmission(1, 0)
	running, _, err := a.Admit(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Admit(false); !errors.Is(err, ErrSaturated) {
		t.Fatalf("depth 0 should refuse: %v", err)
	}
	forced, pos, err := a.Admit(true)
	if err != nil {
		t.Fatalf("forced admission refused: %v", err)
	}
	if pos == 0 {
		t.Fatal("forced admission exceeded capacity")
	}
	running.Release()
	if err := forced.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	forced.Release()
}

// TestTicketReleaseIdempotent pins double-release safety.
func TestTicketReleaseIdempotent(t *testing.T) {
	a := NewAdmission(1, 1)
	tk, _, err := a.Admit(false)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
	tk.Release()
	if r, _ := a.Stats(); r != 0 {
		t.Fatalf("running = %d after double release, want 0", r)
	}
}
