package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	pub "repro"
	"repro/internal/dataset"
	"repro/internal/mat"
)

// Round statuses. A round is created queued, becomes running when the
// admission layer grants it a slot, and ends done, failed, or interrupted.
// Interrupted rounds (cancelled by shutdown or a crash) are resumable:
// server startup re-enqueues them from their checkpoint.
const (
	RoundQueued      = "queued"
	RoundRunning     = "running"
	RoundDone        = "done"
	RoundFailed      = "failed"
	RoundInterrupted = "interrupted"
)

// IndexLabel is one revealed pool label: the client looked at pool row
// Index (a global row index into the registered shards) and reports its
// class. The row's features are read back from the pool at train time, so
// the upload is O(1) per label regardless of dimension.
type IndexLabel struct {
	Index int `json:"index"`
	Label int `json:"label"`
}

// RoundMeta is the persisted record of one selection round.
type RoundMeta struct {
	Round  int    `json:"round"`
	Budget int    `json:"budget"`
	Status string `json:"status"`
	// Selected holds the chosen global pool row indices, in selection
	// order, once the round is done.
	Selected []int  `json:"selected,omitempty"`
	Error    string `json:"error,omitempty"`
	// Eta, RelaxIterations, CGIterations, SelectSeconds and TrainSeconds
	// mirror the library's per-round reporting.
	Eta             float64 `json:"eta,omitempty"`
	RelaxIterations int     `json:"relax_iterations,omitempty"`
	CGIterations    int     `json:"cg_iterations,omitempty"`
	SelectSeconds   float64 `json:"select_seconds,omitempty"`
	TrainSeconds    float64 `json:"train_seconds,omitempty"`
	// WorkersObserved is parallel.Workers() sampled inside the round's
	// scoped limit — what the solver actually saw, pinned by the
	// concurrency tests to verify AcquireLimit scoping.
	WorkersObserved int `json:"workers_observed,omitempty"`
}

// sessionMeta is the JSON state persisted per session (everything needed
// to rebuild the session after a restart). Labeled features round-trip
// exactly: encoding/json writes float64s in shortest form that parses
// back to the same bits.
type sessionMeta struct {
	ID      string `json:"id"`
	Created string `json:"created"`

	// Pool registration: shard paths (external reference, or the packed
	// inline upload inside the session directory) and its validated shape.
	Shards []string `json:"shards"`
	Rows   int      `json:"rows"`
	Dim    int      `json:"dim"`

	Classes int     `json:"classes"`
	Lambda  float64 `json:"lambda,omitempty"`
	Seed    int64   `json:"seed"`

	Selector        string  `json:"selector"`
	Probes          int     `json:"probes,omitempty"`
	CGTol           float64 `json:"cgtol,omitempty"`
	RelaxIters      int     `json:"relax_iters,omitempty"`
	FixedRelaxIters int     `json:"fixed_relax_iters,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	BlockRows       int     `json:"block_rows,omitempty"`

	// LabeledX/LabeledY are directly uploaded labeled examples (the
	// initial seed set and any later example uploads); IndexLabels are
	// pool rows the client has labeled by index.
	LabeledX    [][]float64  `json:"labeled_x"`
	LabeledY    []int        `json:"labeled_y"`
	IndexLabels []IndexLabel `json:"index_labels,omitempty"`

	Rounds []*RoundMeta `json:"rounds,omitempty"`
}

// roundProgress is the live (not persisted) view of the in-flight round.
type roundProgress struct {
	RelaxIteration int
	RelaxDone      bool
	CGIterations   int
}

// Session is one tenant's active-learning dialogue: a registered pool,
// the labels revealed so far, and the round history. All mutable state is
// guarded by mu; the long-running round goroutine takes the lock only to
// update status/progress, never across solver work.
type Session struct {
	mu   sync.Mutex
	meta sessionMeta
	dir  string
	src  *dataset.LiveSource

	// Probability-pass cache for delta-aware rounds: probs holds the
	// reduced pool probabilities computed by the previous Approx-FIRAL
	// round, valid while the labeled set (and therefore the trained
	// model) is unchanged. A round over a grown pool then sweeps only
	// the appended rows. Guarded by mu; the round goroutine snapshots it.
	probs        *mat.Dense
	probsLabeled int // labeled-set size the cache was computed under

	// deleted flips when deleteSession claims the session; a round
	// enqueue that raced the delete observes it and aborts instead of
	// running against a closing pool.
	deleted bool

	// Round lifecycle: at most one round is queued or running per
	// session. cancelRound aborts it; roundWG lets delete/shutdown wait
	// for the goroutine to fully unwind.
	cancelRound func()
	ticket      *Ticket
	progress    roundProgress
	roundWG     sync.WaitGroup

	// observers receive the RoundReport of every completed round, wired
	// through the library's streaming observer type.
	observers []pub.RoundObserver
}

// activeRound returns the queued-or-running round, or nil. Caller holds mu.
func (s *Session) activeRoundLocked() *RoundMeta {
	if n := len(s.meta.Rounds); n > 0 {
		if rm := s.meta.Rounds[n-1]; rm.Status == RoundQueued || rm.Status == RoundRunning {
			return rm
		}
	}
	return nil
}

// excludeLocked assembles the tombstone set for the next round: every
// index a previous round selected plus every index-labeled row. Caller
// holds mu.
func (s *Session) excludeLocked() []int {
	seen := map[int]bool{}
	var out []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, rm := range s.meta.Rounds {
		for _, i := range rm.Selected {
			add(i)
		}
	}
	for _, il := range s.meta.IndexLabels {
		add(il.Index)
	}
	return out
}

// persistLocked atomically writes session.json. Caller holds mu.
func (s *Session) persistLocked() error {
	raw, err := json.Marshal(&s.meta)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, "session.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (s *Session) persist() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistLocked()
}

// loadSession restores a session from its directory, reopening the pool.
func loadSession(dir string) (*Session, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "session.json"))
	if err != nil {
		return nil, err
	}
	s := &Session{dir: dir}
	if err := json.Unmarshal(raw, &s.meta); err != nil {
		return nil, fmt.Errorf("server: session %s: corrupt session.json: %w", filepath.Base(dir), err)
	}
	src, err := dataset.OpenShards(s.meta.Shards...)
	if err != nil {
		return nil, fmt.Errorf("server: session %s: reopen pool: %w", s.meta.ID, err)
	}
	if src.NumRows() != s.meta.Rows || src.Dim() != s.meta.Dim {
		src.Close()
		return nil, fmt.Errorf("server: session %s: pool changed shape since registration: now %d×%d, registered %d×%d",
			s.meta.ID, src.NumRows(), src.Dim(), s.meta.Rows, s.meta.Dim)
	}
	// All shards — including any appended after creation — reopen as one
	// base segment; appends after restart stack on top of it.
	s.src = dataset.NewLiveSource(src)
	return s, nil
}

// close releases the session's pool handles.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.src != nil {
		s.src.Close()
		s.src = nil
	}
}

func nowStamp() string { return time.Now().UTC().Format(time.RFC3339) }
