package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	pub "repro"
	"repro/internal/csvdata"
	"repro/internal/dataset"
	"repro/internal/mat"
)

// Config configures a Server.
type Config struct {
	// DataDir is the root under which every session keeps its directory
	// (session.json, round checkpoint, packed inline pools). Required.
	DataDir string
	// Concurrency is the number of selection rounds allowed to run at
	// once (admission capacity C; default 2).
	Concurrency int
	// QueueDepth is the number of rounds allowed to wait beyond the
	// running ones (admission depth Q; default 8). Requests past C+Q are
	// refused with 429.
	QueueDepth int
	// CheckpointEvery checkpoints RELAX state every k mirror-descent
	// iterations (default 1: every iteration — an iteration on a
	// million-row pool costs seconds, the 8 MB checkpoint write is
	// noise).
	CheckpointEvery int
	// BlockRows is the streaming row-block size (0 = dataset default).
	BlockRows int
	// MaxResidentBytes caps pool materialization for selectors that need
	// a resident pool (Exact-FIRAL, K-Means). Default 1 GiB.
	MaxResidentBytes int64
	// Ranks enables the Dist-FIRAL selector with that many in-process
	// ranks per round (goroutine ranks over stream shards of the session
	// pool). Zero (the default) keeps Dist-FIRAL unservable.
	Ranks int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxResidentBytes <= 0 {
		c.MaxResidentBytes = 1 << 30
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server multiplexes tenant sessions over the shared worker pool.
type Server struct {
	cfg Config
	adm *Admission

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	closed   bool

	wg sync.WaitGroup // all round goroutines
}

// Typed errors the HTTP layer maps to status codes.
var (
	ErrSessionNotFound = errors.New("server: session not found")
	ErrRoundNotFound   = errors.New("server: round not found")
	ErrRoundActive     = errors.New("server: a round is already queued or running for this session")
	ErrClosed          = errors.New("server: shutting down")
)

// New builds a Server over DataDir, restoring every persisted session and
// re-enqueueing any round that was queued, running, or interrupted when
// the previous process died — those resume from their checkpoint rather
// than restarting. Recovery admission is forced past the queue depth
// (recovered work must not be shed) but still respects the concurrency
// bound.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		adm:      NewAdmission(cfg.Concurrency, cfg.QueueDepth),
		baseCtx:  ctx,
		cancel:   cancel,
		sessions: map[string]*Session{},
	}
	entries, err := os.ReadDir(cfg.DataDir)
	if err != nil {
		cancel()
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(cfg.DataDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "session.json")); err != nil {
			continue
		}
		sess, err := loadSession(dir)
		if err != nil {
			cfg.Logf("recover: skipping %s: %v", e.Name(), err)
			continue
		}
		s.sessions[sess.meta.ID] = sess
		if n := idNumber(sess.meta.ID); n >= s.nextID {
			s.nextID = n + 1
		}
	}
	// Re-enqueue interrupted rounds only after every session is loaded,
	// so recovery order does not depend on directory listing order more
	// than admission FIFO already implies.
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sess := s.sessions[id]
		sess.mu.Lock()
		var resume *RoundMeta
		if n := len(sess.meta.Rounds); n > 0 {
			if rm := sess.meta.Rounds[n-1]; rm.Status != RoundDone && rm.Status != RoundFailed {
				resume = rm
			}
		}
		sess.mu.Unlock()
		if resume != nil {
			s.cfg.Logf("recover: session %s round %d (%s) re-enqueued", id, resume.Round, resume.Status)
			if err := s.enqueueRound(sess, resume, true); err != nil {
				s.cfg.Logf("recover: session %s round %d: %v", id, resume.Round, err)
			}
		}
	}
	return s, nil
}

func idNumber(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "s"))
	return n
}

// Close drains the server: every running round is cancelled (its latest
// checkpoint stays on disk, marked interrupted for the next startup to
// resume), round goroutines are waited out, and pool handles close.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.close()
	}
	return nil
}

// session looks up a live session.
func (s *Server) session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return sess, nil
}

// createRequest is defined in handlers.go; createSession is the transport-
// independent core: validate, register the pool, persist, return the
// session.
func (s *Server) createSession(req *createRequest) (*Session, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	id := fmt.Sprintf("s%06d", s.nextID)
	s.nextID++
	s.mu.Unlock()

	if len(req.Labeled.X) == 0 || len(req.Labeled.X) != len(req.Labeled.Y) {
		return nil, fmt.Errorf("server: labeled set required: matching x (%d rows) and y (%d labels)",
			len(req.Labeled.X), len(req.Labeled.Y))
	}
	classes := req.Classes
	if classes == 0 {
		classes = csvdata.NumClasses(req.Labeled.Y)
	}
	if classes < 2 {
		return nil, fmt.Errorf("server: need at least 2 classes in the labeled set, got %d", classes)
	}
	for i, y := range req.Labeled.Y {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("server: labeled.y[%d] = %d out of range [0, %d)", i, y, classes)
		}
	}
	selector, err := servableSelector(req.Selector, s.cfg.Ranks)
	if err != nil {
		return nil, err
	}

	dir := filepath.Join(s.cfg.DataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fail := func(err error) (*Session, error) {
		os.RemoveAll(dir)
		return nil, err
	}

	// Pool registration: shard-path reference, or inline CSV packed into
	// the session directory (features only — the pool is unlabeled).
	shards := req.Shards
	switch {
	case len(shards) > 0 && req.PoolCSV != "":
		return fail(errors.New("server: give either shards or pool_csv, not both"))
	case len(shards) == 0 && req.PoolCSV == "":
		return fail(errors.New("server: pool required: shards (paths) or pool_csv (inline upload)"))
	case req.PoolCSV != "":
		shardPath := filepath.Join(dir, "pool.shard")
		if err := packInlinePool(shardPath, req.PoolCSV); err != nil {
			return fail(fmt.Errorf("server: pool_csv: %w", err))
		}
		shards = []string{shardPath}
	}
	src, err := dataset.OpenShards(shards...)
	if err != nil {
		return fail(err) // dataset errors name the offending shard and its expected shape
	}
	if d := len(req.Labeled.X[0]); src.Dim() != d {
		src.Close()
		return fail(fmt.Errorf("server: pool dimension %d does not match labeled dimension %d", src.Dim(), d))
	}

	sess := &Session{
		dir: dir,
		src: dataset.NewLiveSource(src),
		meta: sessionMeta{
			ID:              id,
			Created:         nowStamp(),
			Shards:          shards,
			Rows:            src.NumRows(),
			Dim:             src.Dim(),
			Classes:         classes,
			Lambda:          req.Lambda,
			Seed:            req.Seed,
			Selector:        selector,
			Probes:          req.Probes,
			CGTol:           req.CGTol,
			RelaxIters:      req.RelaxIters,
			FixedRelaxIters: req.FixedRelaxIters,
			Workers:         req.Workers,
			BlockRows:       req.BlockRows,
			LabeledX:        req.Labeled.X,
			LabeledY:        req.Labeled.Y,
		},
	}
	if err := sess.persist(); err != nil {
		src.Close()
		return fail(err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		src.Close()
		os.RemoveAll(dir)
		return nil, ErrClosed
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.cfg.Logf("session %s: pool %d×%d (%d shards), %d classes, selector %s",
		id, src.NumRows(), src.Dim(), len(shards), classes, selector)
	return sess, nil
}

// appendPool grows the session's pool in place: the new shards (or an
// inline CSV packed into the session directory) stack on top of the
// existing rows, keeping every already-assigned global index stable.
// Appends during an active round are refused for the same reason label
// uploads are — the round's checkpoint records a trajectory over the old
// pool and would be unresumable against a different one.
func (s *Server) appendPool(sess *Session, shardPaths []string, poolCSV string) (rows int, gen int64, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.deleted {
		return 0, 0, fmt.Errorf("%w: %q", ErrSessionNotFound, sess.meta.ID)
	}
	if rm := sess.activeRoundLocked(); rm != nil {
		return 0, 0, fmt.Errorf("%w (round %d is %s; wait for it or cancel the session)", ErrRoundActive, rm.Round, rm.Status)
	}
	switch {
	case len(shardPaths) > 0 && poolCSV != "":
		return 0, 0, errors.New("server: give either shards or pool_csv, not both")
	case len(shardPaths) == 0 && poolCSV == "":
		return 0, 0, errors.New("server: append requires shards (paths) or pool_csv (inline upload)")
	case poolCSV != "":
		shardPath := filepath.Join(sess.dir, fmt.Sprintf("pool-%d.shard", len(sess.meta.Shards)))
		if err := packInlinePool(shardPath, poolCSV); err != nil {
			return 0, 0, fmt.Errorf("server: pool_csv: %w", err)
		}
		shardPaths = []string{shardPath}
	}
	seg, err := dataset.OpenShards(shardPaths...)
	if err != nil {
		return 0, 0, err
	}
	gen, err = sess.src.Append(seg) // takes ownership of seg, dim-checked
	if err != nil {
		seg.Close()
		return 0, 0, fmt.Errorf("server: append pool: %w", err)
	}
	sess.meta.Shards = append(sess.meta.Shards, shardPaths...)
	sess.meta.Rows = sess.src.NumRows()
	if err := sess.persistLocked(); err != nil {
		return 0, 0, err
	}
	s.cfg.Logf("session %s: pool grown to %d×%d (+%d shards, generation %d)",
		sess.meta.ID, sess.meta.Rows, sess.meta.Dim, len(shardPaths), gen)
	return sess.meta.Rows, gen, nil
}

// deleteSession cancels any in-flight round, waits for it to unwind,
// removes the session from the store, and deletes its directory.
func (s *Server) deleteSession(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	sess.mu.Lock()
	sess.deleted = true
	cancel := sess.cancelRound
	sess.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	sess.roundWG.Wait()
	sess.close()
	return os.RemoveAll(sess.dir)
}

// addLabels appends uploaded labels. Mutating the training set under a
// running round would make its checkpoint unresumable (the resumed
// trajectory would train on different data), so uploads during an active
// round are refused.
func (s *Server) addLabels(sess *Session, examplesX [][]float64, examplesY []int, byIndex []IndexLabel) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if rm := sess.activeRoundLocked(); rm != nil {
		return fmt.Errorf("%w (round %d is %s; wait for it or cancel the session)", ErrRoundActive, rm.Round, rm.Status)
	}
	if len(examplesX) != len(examplesY) {
		return fmt.Errorf("server: x (%d rows) and y (%d labels) must match", len(examplesX), len(examplesY))
	}
	for i, x := range examplesX {
		if len(x) != sess.meta.Dim {
			return fmt.Errorf("server: x[%d] has %d features, pool dimension is %d", i, len(x), sess.meta.Dim)
		}
		if y := examplesY[i]; y < 0 || y >= sess.meta.Classes {
			return fmt.Errorf("server: y[%d] = %d out of range [0, %d)", i, y, sess.meta.Classes)
		}
	}
	already := map[int]bool{}
	for _, il := range sess.meta.IndexLabels {
		already[il.Index] = true
	}
	for _, il := range byIndex {
		if il.Index < 0 || il.Index >= sess.meta.Rows {
			return fmt.Errorf("server: pool index %d out of range [0, %d)", il.Index, sess.meta.Rows)
		}
		if il.Label < 0 || il.Label >= sess.meta.Classes {
			return fmt.Errorf("server: label %d for index %d out of range [0, %d)", il.Label, il.Index, sess.meta.Classes)
		}
		if already[il.Index] {
			return fmt.Errorf("server: pool index %d is already labeled", il.Index)
		}
		already[il.Index] = true
	}
	sess.meta.LabeledX = append(sess.meta.LabeledX, examplesX...)
	sess.meta.LabeledY = append(sess.meta.LabeledY, examplesY...)
	sess.meta.IndexLabels = append(sess.meta.IndexLabels, byIndex...)
	return sess.persistLocked()
}

// startRound creates the next round and enqueues it, returning the round
// number and queue position. The admission decision is synchronous: the
// caller learns immediately whether the round is running (position 0),
// queued (position ≥ 1), or refused (ErrSaturated → 429). The returned
// values are snapshots — the round goroutine owns the RoundMeta once it
// is enqueued.
func (s *Server) startRound(sess *Session, budget int) (round, pos int, err error) {
	if budget <= 0 {
		return 0, 0, errors.New("server: round budget must be positive")
	}
	sess.mu.Lock()
	if rm := sess.activeRoundLocked(); rm != nil {
		sess.mu.Unlock()
		return 0, 0, fmt.Errorf("%w (round %d)", ErrRoundActive, rm.Round)
	}
	if budget > sess.meta.Rows-len(sess.excludeLocked()) {
		sess.mu.Unlock()
		return 0, 0, fmt.Errorf("server: budget %d exceeds the %d unselected pool points",
			budget, sess.meta.Rows-len(sess.excludeLocked()))
	}
	sess.mu.Unlock()
	// The round number and the conflict re-check happen inside
	// enqueueRoundPos under the session lock — two concurrent starts
	// cannot both append.
	rm := &RoundMeta{Budget: budget, Status: RoundQueued}
	pos, err = s.enqueueRoundPos(sess, rm, false)
	if err != nil {
		return 0, 0, err
	}
	return rm.Round, pos, nil
}

// enqueueRound admits rm (forced for recovery) and launches its goroutine.
func (s *Server) enqueueRound(sess *Session, rm *RoundMeta, force bool) error {
	_, err := s.enqueueRoundPos(sess, rm, force)
	return err
}

func (s *Server) enqueueRoundPos(sess *Session, rm *RoundMeta, force bool) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	ticket, pos, err := s.adm.Admit(force)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.wg.Add(1)
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(s.baseCtx)
	sess.mu.Lock()
	abort := func(err error) (int, error) {
		sess.mu.Unlock()
		cancel()
		ticket.Release()
		s.wg.Done()
		return 0, err
	}
	if sess.deleted {
		return abort(fmt.Errorf("%w: %q", ErrSessionNotFound, sess.meta.ID))
	}
	if !force {
		// Re-check under the session lock: a concurrent start may have won
		// the race since the caller's fast-path check.
		if active := sess.activeRoundLocked(); active != nil {
			return abort(fmt.Errorf("%w (round %d)", ErrRoundActive, active.Round))
		}
		rm.Round = len(sess.meta.Rounds) + 1
		sess.meta.Rounds = append(sess.meta.Rounds, rm)
	}
	rm.Status = RoundQueued
	rm.Error = ""
	sess.cancelRound = cancel
	sess.ticket = ticket
	sess.progress = roundProgress{}
	if err := sess.persistLocked(); err != nil {
		s.cfg.Logf("session %s: persist: %v", sess.meta.ID, err)
	}
	sess.roundWG.Add(1)
	sess.mu.Unlock()

	go s.runRound(ctx, cancel, sess, rm, ticket)
	return pos, nil
}

// resident materializes the whole pool (selectors that need it), bounded
// by MaxResidentBytes.
func (s *Server) resident(src dataset.PoolSource) (*mat.Dense, error) {
	need := int64(src.NumRows()) * int64(src.Dim()) * 8
	if need > s.cfg.MaxResidentBytes {
		return nil, fmt.Errorf("server: selector needs a resident pool: %d×%d doubles = %d bytes exceeds the %d-byte cap",
			src.NumRows(), src.Dim(), need, s.cfg.MaxResidentBytes)
	}
	x := mat.NewDense(src.NumRows(), src.Dim())
	if err := src.ReadRows(0, src.NumRows(), x); err != nil {
		return nil, err
	}
	return x, nil
}

// servableSelector resolves name through the selector registry and
// rejects strategies the service cannot run, with the full registry list
// in the error — the service-side counterpart of `firal -select help`.
// Dist-FIRAL is servable only when the server was configured with ranks
// (firald -ranks), since a round then runs that many in-process ranks.
func servableSelector(name string, ranks int) (string, error) {
	if name == "" {
		return "Approx-FIRAL", nil
	}
	canonical, ok := pub.CanonicalName(name)
	if !ok {
		return "", fmt.Errorf("server: unknown selector %q (registered: %s)",
			name, strings.Join(pub.Names(), ", "))
	}
	if canonical == "Dist-FIRAL" && ranks <= 0 {
		return "", fmt.Errorf("server: selector %s needs the server started with -ranks (in-process rank count); use Approx-FIRAL or restart firald with -ranks", canonical)
	}
	return canonical, nil
}

// packInlinePool writes an uploaded features-only CSV into a shard file.
func packInlinePool(shardPath, csvText string) error {
	dir := filepath.Dir(shardPath)
	csvPath := filepath.Join(dir, "pool.csv")
	if err := os.WriteFile(csvPath, []byte(csvText), 0o644); err != nil {
		return err
	}
	defer os.Remove(csvPath) // the shard is the durable copy
	src, err := dataset.NewCSVSource(csvPath, dataset.NoLabelColumn)
	if err != nil {
		return err
	}
	defer src.Close()
	w, err := dataset.CreateShard(shardPath, src.Dim())
	if err != nil {
		return err
	}
	block := mat.NewDense(min(dataset.DefaultBlockRows, src.NumRows()), src.Dim())
	for lo := 0; lo < src.NumRows(); lo += block.Rows {
		hi := min(lo+block.Rows, src.NumRows())
		b := block.RowSlice(0, hi-lo)
		if err := src.ReadRows(lo, hi, b); err != nil {
			return err
		}
		if err := w.AppendBlock(b); err != nil {
			return err
		}
	}
	return w.Close()
}
