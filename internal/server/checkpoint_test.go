package server

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/firal"
)

// TestCheckpointRoundTrip pins that the binary codec restores weights and
// objective history bit-for-bit — including values a text format would
// mangle (subnormals, exact dyadic fractions, huge magnitudes).
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "round.ckpt")
	ck := &firal.RelaxCheckpoint{
		Iteration:    17,
		Done:         true,
		CGIterations: 423,
		Z:            []float64{0.1, 1.0 / 3.0, math.SmallestNonzeroFloat64, 1e300, 0.25},
		FHist:        []float64{3.75, math.Pi, -1e-12},
	}
	if err := writeCheckpoint(path, 5, ck); err != nil {
		t.Fatal(err)
	}
	round, got, err := readCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if round != 5 || got.Iteration != 17 || !got.Done || got.CGIterations != 423 {
		t.Fatalf("header mismatch: round=%d ck=%+v", round, got)
	}
	for i, z := range ck.Z {
		if math.Float64bits(got.Z[i]) != math.Float64bits(z) {
			t.Errorf("Z[%d]: %x != %x", i, math.Float64bits(got.Z[i]), math.Float64bits(z))
		}
	}
	for i, f := range ck.FHist {
		if math.Float64bits(got.FHist[i]) != math.Float64bits(f) {
			t.Errorf("FHist[%d] bits differ", i)
		}
	}
}

// TestCheckpointCorruption pins that truncated or foreign files are
// rejected with the path in the message, never partially decoded.
func TestCheckpointCorruption(t *testing.T) {
	dir := t.TempDir()

	bogus := filepath.Join(dir, "bogus.ckpt")
	os.WriteFile(bogus, []byte("not a checkpoint at all"), 0o644)
	if _, _, err := readCheckpoint(bogus); err == nil || !strings.Contains(err.Error(), bogus) {
		t.Fatalf("bogus file: %v", err)
	}

	path := filepath.Join(dir, "round.ckpt")
	ck := &firal.RelaxCheckpoint{Iteration: 3, Z: make([]float64, 100), FHist: []float64{1, 2, 3}}
	if err := writeCheckpoint(path, 1, ck); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-40], 0o644)
	if _, _, err := readCheckpoint(path); err == nil {
		t.Fatal("truncated checkpoint decoded without error")
	}
}
