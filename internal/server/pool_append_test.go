package server

import (
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/logreg"
	"repro/internal/mat"
)

// appendShard packs n synthetic rows into a fresh shard file and returns
// its path.
func appendShard(t *testing.T, dir string, n, d, c int, seed int64) string {
	t.Helper()
	ds := dataset.Generate(dataset.Config{
		Classes: c, Dim: d, PoolSize: n, EvalSize: c, InitPerClass: 3,
		Rounds: 1, Budget: 1,
	}, seed)
	shard := filepath.Join(dir, fmt.Sprintf("extra-%d.shard", seed))
	w, err := dataset.CreateShard(shard, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock(ds.PoolX); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return shard
}

// TestAppendPoolGrowsSession appends to a live session twice — once by
// shard path, once by inline CSV — and then runs a round over the grown
// pool. Existing row indices must stay stable and the round must be able
// to select from the full grown range.
func TestAppendPoolGrowsSession(t *testing.T) {
	dir := t.TempDir()
	shard, labX, labY := testPool(t, dir, 120, 5, 3, 21)
	srv, a := newTestServer(t, Config{})

	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards:  []string{shard},
		Labeled: labeledUpload{X: labX, Y: labY},
		Seed:    7,
		Probes:  4,
	}, &sv)
	if sv.Rows != 120 {
		t.Fatalf("created with %d rows, want 120", sv.Rows)
	}

	extra := appendShard(t, dir, 40, 5, 3, 22)
	var grow struct {
		Rows       int   `json:"rows"`
		Generation int64 `json:"generation"`
	}
	a.must(http.StatusOK, "POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{Shards: []string{extra}}, &grow)
	if grow.Rows != 160 || grow.Generation != 1 {
		t.Fatalf("after shard append: rows=%d gen=%d, want 160, 1", grow.Rows, grow.Generation)
	}

	csv := ""
	for i := 0; i < 8; i++ {
		csv += fmt.Sprintf("%d,%d,%d,%d,%d\n", i, i+1, i+2, i+3, i+4)
	}
	a.must(http.StatusOK, "POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{PoolCSV: csv}, &grow)
	if grow.Rows != 168 || grow.Generation != 2 {
		t.Fatalf("after CSV append: rows=%d gen=%d, want 168, 2", grow.Rows, grow.Generation)
	}

	// The session view and persisted metadata both reflect the growth.
	a.must(http.StatusOK, "GET", "/v1/sessions/"+sv.ID, nil, &sv)
	if sv.Rows != 168 {
		t.Fatalf("session view reports %d rows, want 168", sv.Rows)
	}
	sess, err := srv.session(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.src.NumRows(); got != 168 {
		t.Fatalf("live source has %d rows, want 168", got)
	}

	// Mixed-form appends are still rejected.
	if got := a.do("POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{Shards: []string{extra}, PoolCSV: "1,2,3,4,5\n"}, nil); got != http.StatusBadRequest {
		t.Fatalf("shards+csv append: status %d, want 400", got)
	}
	// Dimension mismatches surface as 400, not a poisoned pool.
	bad := appendShard(t, dir, 10, 3, 3, 23)
	if got := a.do("POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{Shards: []string{bad}}, nil); got != http.StatusBadRequest {
		t.Fatalf("dim-mismatched append: status %d, want 400", got)
	}
	if got := sess.src.NumRows(); got != 168 {
		t.Fatalf("failed append changed the pool to %d rows", got)
	}

	// A round over the grown pool completes and selects valid indices.
	var started map[string]any
	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds",
		&roundRequest{Budget: 3}, &started)
	rv := a.waitRound(sv.ID, 1, 30*time.Second)
	if rv.Status != RoundDone {
		t.Fatalf("round over grown pool: %s (%s)", rv.Status, rv.Error)
	}
	if len(rv.Selected) != 3 {
		t.Fatalf("selected %d, want 3", len(rv.Selected))
	}
	for _, i := range rv.Selected {
		if i < 0 || i >= 168 {
			t.Fatalf("selected index %d out of grown range [0, 168)", i)
		}
	}
}

// TestAppendPoolRefusedMidRound pins the consistency rule: while a round
// is queued or running, pool appends are refused with 409 — the round's
// checkpoint records a trajectory over a fixed simplex dimension.
func TestAppendPoolRefusedMidRound(t *testing.T) {
	dir := t.TempDir()
	shard, labX, labY := testPool(t, dir, 80, 4, 3, 31)
	srv, a := newTestServer(t, Config{})

	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards:  []string{shard},
		Labeled: labeledUpload{X: labX, Y: labY},
	}, &sv)
	sess, err := srv.session(sv.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Plant an active round directly — deterministic, no timing race with
	// a real solver run.
	sess.mu.Lock()
	rm := &RoundMeta{Round: 1, Budget: 1, Status: RoundRunning}
	sess.meta.Rounds = append(sess.meta.Rounds, rm)
	sess.mu.Unlock()

	extra := appendShard(t, dir, 10, 4, 3, 32)
	if got := a.do("POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{Shards: []string{extra}}, nil); got != http.StatusConflict {
		t.Fatalf("append during active round: status %d, want 409", got)
	}

	sess.mu.Lock()
	rm.Status = RoundDone
	sess.mu.Unlock()
	var grow struct {
		Rows int `json:"rows"`
	}
	a.must(http.StatusOK, "POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{Shards: []string{extra}}, &grow)
	if grow.Rows != 90 {
		t.Fatalf("post-round append: rows=%d, want 90", grow.Rows)
	}
}

// TestWarmStartedRounds runs round 1, appends a small delta, and runs
// round 2 without new labels: the server must leave a warm checkpoint
// whose weights sum to 1, reuse the cached probabilities for the old rows
// (sweeping only the delta), and complete the warm-started round over the
// grown pool.
func TestWarmStartedRounds(t *testing.T) {
	dir := t.TempDir()
	shard, labX, labY := testPool(t, dir, 200, 5, 3, 41)
	srv, a := newTestServer(t, Config{})

	var sv sessionView
	a.must(http.StatusCreated, "POST", "/v1/sessions", &createRequest{
		Shards:          []string{shard},
		Labeled:         labeledUpload{X: labX, Y: labY},
		Seed:            5,
		Probes:          4,
		FixedRelaxIters: 5,
	}, &sv)

	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds",
		&roundRequest{Budget: 2}, &map[string]any{})
	rv := a.waitRound(sv.ID, 1, 30*time.Second)
	if rv.Status != RoundDone {
		t.Fatalf("round 1: %s (%s)", rv.Status, rv.Error)
	}

	sess, err := srv.session(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	// round.ckpt is cleared on completion; warm.ckpt survives it.
	if _, err := os.Stat(checkpointPath(sess.dir)); !os.IsNotExist(err) {
		t.Fatalf("round.ckpt still present after completion: %v", err)
	}
	wr, wck, err := readCheckpoint(warmPath(sess.dir))
	if err != nil {
		t.Fatalf("warm checkpoint: %v", err)
	}
	if wr != 1 || len(wck.Z) != 200 {
		t.Fatalf("warm checkpoint: round %d with %d weights, want round 1 with 200", wr, len(wck.Z))
	}
	sum := 0.0
	for _, z := range wck.Z {
		sum += z
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("warm weights sum to %g, want 1 (pre-budget-scaling simplex point)", sum)
	}

	// The probability cache from round 1 covers the original rows.
	sess.mu.Lock()
	cached := sess.probs
	sess.mu.Unlock()
	if cached == nil || cached.Rows != 200 {
		t.Fatalf("probability cache missing after round 1")
	}

	extra := appendShard(t, dir, 20, 5, 3, 42)
	a.must(http.StatusOK, "POST", "/v1/sessions/"+sv.ID+"/pool",
		&appendPoolRequest{Shards: []string{extra}}, &map[string]any{})

	a.must(http.StatusAccepted, "POST", "/v1/sessions/"+sv.ID+"/rounds",
		&roundRequest{Budget: 2}, &map[string]any{})
	rv = a.waitRound(sv.ID, 2, 30*time.Second)
	if rv.Status != RoundDone {
		t.Fatalf("warm round 2: %s (%s)", rv.Status, rv.Error)
	}
	for _, i := range rv.Selected {
		if i < 0 || i >= 220 {
			t.Fatalf("round 2 selected %d outside grown pool [0, 220)", i)
		}
	}

	// Delta pass: the cache row that existed before round 2 must be the
	// same backing matrix rows, extended — not recomputed — and now cover
	// the grown pool; the warm checkpoint advanced to round 2.
	sess.mu.Lock()
	probs2 := sess.probs
	sess.mu.Unlock()
	if probs2.Rows != 220 {
		t.Fatalf("probability cache has %d rows after round 2, want 220", probs2.Rows)
	}
	for i := 0; i < cached.Rows; i++ {
		for j := 0; j < cached.Cols; j++ {
			if probs2.Row(i)[j] != cached.Row(i)[j] {
				t.Fatalf("cached probability row %d changed during the delta pass", i)
			}
		}
	}
	if wr, _, err := readCheckpoint(warmPath(sess.dir)); err != nil || wr != 2 {
		t.Fatalf("warm checkpoint after round 2: round %d, err %v; want round 2", wr, err)
	}
}

// TestStreamProbsRangeMatchesFull pins the delta sweep against the full
// sweep: filling a matrix with two arbitrary-split range calls must
// reproduce the single full pass bit for bit, reduced and unreduced.
func TestStreamProbsRangeMatchesFull(t *testing.T) {
	const n, d, c = 157, 4, 3
	dir := t.TempDir()
	shard, labX, labY := testPool(t, dir, n, d, c, 51)
	src, err := dataset.OpenShards(shard)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	labM := mat.NewDense(len(labX), d)
	for i, row := range labX {
		copy(labM.Row(i), row)
	}
	model, err := logreg.Train(labM, labY, c, nil, logreg.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, reduce := range []bool{true, false} {
		cols := c
		if reduce {
			cols = c - 1
		}
		full, err := streamProbs(src, model, c, 13, reduce)
		if err != nil {
			t.Fatal(err)
		}
		for _, split := range []int{0, 1, 13, 64, n - 1, n} {
			got := mat.NewDense(n, cols)
			if err := streamProbsRange(src, model, c, 13, reduce, 0, split, got); err != nil {
				t.Fatal(err)
			}
			if err := streamProbsRange(src, model, c, 13, reduce, split, n, got); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < cols; j++ {
					if got.Row(i)[j] != full.Row(i)[j] {
						t.Fatalf("reduce=%v split=%d: row %d col %d differs", reduce, split, i, j)
					}
				}
			}
		}
	}
}
