package parallel

import (
	"sync"
	"sync/atomic"
)

// The persistent worker pool. Before it existed, every For/ForChunk/Fork
// call forked O(workers) fresh goroutines, whose spawn cost and closure
// captures were the dominant transient-allocation source on multicore once
// the kernels themselves reached 0 allocs/op. The pool keeps long-lived
// workers parked on private channels; a dispatch hands each claimed worker
// a small by-value work item, so a steady-state kernel call forks zero
// goroutines and allocates nothing (job records are recycled through
// sync.Pools).
//
// Dispatch protocol:
//
//   - The caller always participates in its own job, so dispatch never
//     waits for a free worker and nested parallel calls cannot deadlock:
//     a dispatch that finds no idle workers simply runs serially.
//   - Chunked jobs (For/ForChunk) share one chunkJob whose participants
//     claim contiguous [lo, hi) ranges with an atomic cursor; work is
//     self-balancing across however many helpers actually joined.
//   - Fork jobs assign one fixed index per participant. Fork guarantees
//     all n tasks run concurrently, so any shortfall of idle workers is
//     covered by freshly spawned goroutines (steady state: none).
//   - A participant re-enqueues its worker on the idle list *before*
//     decrementing the job's exit counter, so the worker is reclaimable
//     immediately; the job itself is only recycled after the last
//     participant's decrement, which the caller observes via the job's
//     buffered done channel.
//
// Sizing: the pool grows on demand up to baseWorkers() (GOMAXPROCS, or
// the SetMaxWorkers override) and retires surplus workers as they go
// idle after the target shrinks. Session-scoped Limits cap how many
// helpers a dispatch claims but never shrink the shared pool — another
// session may still need it.
type pool struct {
	mu   sync.Mutex
	idle []*worker
	live int
}

// worker is one parked pool goroutine. Its wake channel has capacity 1
// and only ever receives while the worker is off the idle list, so sends
// never block (and may legally happen while the pool lock is held).
type worker struct {
	wake chan workItem
}

// workItem is the by-value message handed to a claimed worker: either a
// shared chunk-claiming job, or one index of a fork job.
type workItem struct {
	cj *chunkJob
	fj *forkJob
	i  int
}

// chunkJob is the shared state of one ForChunk dispatch. Participants
// (the caller plus every claimed helper) claim chunks via the atomic
// cursor until the range is exhausted, then decrement exits; the last
// one out signals done. The done channel is buffered and owned by the
// job for its pooled lifetime, so signalling never blocks.
type chunkJob struct {
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	exits atomic.Int64
	done  chan struct{}
}

var chunkJobPool = sync.Pool{New: func() any {
	return &chunkJob{done: make(chan struct{}, 1)}
}}

// run claims and executes chunks until none remain.
func (j *chunkJob) run() {
	n, chunk := j.n, j.chunk
	for {
		hi := int(j.next.Add(int64(chunk)))
		lo := hi - chunk
		if lo >= n {
			return
		}
		if hi > n {
			hi = n
		}
		j.fn(lo, hi)
	}
}

// exit records one participant leaving; the last signals the waiter.
func (j *chunkJob) exit() {
	if j.exits.Add(-1) == 0 {
		j.done <- struct{}{}
	}
}

// forkJob is the shared state of one Fork dispatch.
type forkJob struct {
	fn    func(i int)
	exits atomic.Int64
	done  chan struct{}
}

var forkJobPool = sync.Pool{New: func() any {
	return &forkJob{done: make(chan struct{}, 1)}
}}

func (j *forkJob) exit() {
	if j.exits.Add(-1) == 0 {
		j.done <- struct{}{}
	}
}

var defaultPool pool

// claim hands the job to up to max workers, popping idle ones and
// spawning fresh pool workers only while the pool is below its size
// target. Exactly one of cj/fj is non-nil; fork helpers receive indices
// i0, i0+1, … It returns the number of workers claimed.
func (p *pool) claim(cj *chunkJob, fj *forkJob, i0, max int) int {
	if max <= 0 {
		return 0
	}
	base := baseWorkers()
	p.mu.Lock()
	h := 0
	for h < max {
		var w *worker
		if k := len(p.idle); k > 0 {
			w = p.idle[k-1]
			p.idle[k-1] = nil
			p.idle = p.idle[:k-1]
		} else if p.live < base {
			w = &worker{wake: make(chan workItem, 1)}
			p.live++
			go p.run(w)
		} else {
			break
		}
		w.wake <- workItem{cj: cj, fj: fj, i: i0 + h}
		h++
	}
	p.mu.Unlock()
	return h
}

// putIdle re-enqueues a worker, or retires it when the pool has shrunk
// below its current population. It reports whether the worker stays
// alive.
func (p *pool) putIdle(w *worker) bool {
	p.mu.Lock()
	if p.live > baseWorkers() {
		p.live--
		p.mu.Unlock()
		close(w.wake)
		return false
	}
	p.idle = append(p.idle, w)
	p.mu.Unlock()
	return true
}

// run is the worker loop: execute one item, park again. The worker goes
// back on the idle list before the job's exit bookkeeping so it is
// reclaimable immediately; a new item then simply waits in the buffered
// wake channel until the loop comes around.
func (p *pool) run(w *worker) {
	for it := range w.wake {
		if it.cj != nil {
			it.cj.run()
			alive := p.putIdle(w)
			it.cj.exit()
			if !alive {
				return
			}
		} else {
			it.fj.fn(it.i)
			alive := p.putIdle(w)
			it.fj.exit()
			if !alive {
				return
			}
		}
	}
}

// resize spawns workers up to the current base target so that a grown
// SetMaxWorkers takes effect immediately rather than at the next
// dispatch. Shrinking happens lazily as busy workers go idle.
func (p *pool) resize() {
	base := baseWorkers()
	p.mu.Lock()
	for p.live < base {
		w := &worker{wake: make(chan workItem, 1)}
		p.live++
		p.idle = append(p.idle, w)
		go p.run(w)
	}
	p.mu.Unlock()
}

// spawnedFork runs one fork index on a fresh goroutine — the fallback
// when Fork needs more concurrent tasks than the pool has idle workers.
func spawnedFork(j *forkJob, i int) {
	j.fn(i)
	j.exit()
}
