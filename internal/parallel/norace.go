//go:build !race

package parallel

// RaceEnabled reports whether the race detector is active.
const RaceEnabled = false
