//go:build race

package parallel

// RaceEnabled reports whether the race detector is active. Allocation
// pins skip under -race: instrumentation allocates behind every kernel.
const RaceEnabled = true
