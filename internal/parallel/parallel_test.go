package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 10000} {
		var count int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != int64(n) {
			t.Fatalf("n=%d: ran %d iterations", n, count)
		}
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForChunkDisjointCoverage(t *testing.T) {
	n := 5000
	seen := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(1)", Workers())
	}
	// Serial path must still cover everything.
	var count int
	For(1000, func(i int) { count++ }) // safe: single worker
	if count != 1000 {
		t.Fatalf("serial run covered %d", count)
	}
	SetMaxWorkers(0)
	if Workers() < 1 {
		t.Fatal("default workers < 1")
	}
}

func TestForChunkCapsWorkersByMinWork(t *testing.T) {
	prev := SetMaxWorkers(64)
	defer SetMaxWorkers(prev)
	// n barely above minWork: forking 64 goroutines of ~5 iterations each
	// is the bug this guards against — every worker must get at least
	// minWork iterations, so n=300 runs serially and n=1024 uses ≤4 chunks.
	var chunks int64
	var smallest int64 = 1 << 60
	ForChunk(300, func(lo, hi int) {
		atomic.AddInt64(&chunks, 1)
	})
	if chunks != 1 {
		t.Fatalf("n=300 with 64 workers ran %d chunks, want 1 (serial)", chunks)
	}
	chunks = 0
	ForChunk(1024, func(lo, hi int) {
		atomic.AddInt64(&chunks, 1)
		for {
			s := atomic.LoadInt64(&smallest)
			if int64(hi-lo) >= s || atomic.CompareAndSwapInt64(&smallest, s, int64(hi-lo)) {
				break
			}
		}
	})
	if chunks > 4 {
		t.Fatalf("n=1024 ran %d chunks, want ≤ 4", chunks)
	}
	// n=1024 divides evenly into 4 chunks of exactly minWork; in general
	// the final chunk may fall slightly short from ceil-division rounding.
	if chunks > 1 && smallest < 256 {
		t.Fatalf("smallest chunk %d < minWork for evenly divisible n", smallest)
	}
	if !Serial(300) {
		t.Fatal("Serial(300) should be true under the n/minWork cap")
	}
	if Serial(10000) {
		t.Fatal("Serial(10000) should be false with 64 workers allowed")
	}
}

func TestForkAlwaysRunsConcurrently(t *testing.T) {
	// Fork must not inherit For's per-worker iteration floor: all n tasks
	// must be in flight at once. Every task blocks on a barrier that only
	// opens when all n have started, so a serializing Fork deadlocks the
	// test (caught by the test timeout) instead of passing silently.
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	var count atomic.Int32
	Fork(n, func(i int) {
		barrier.Done()
		barrier.Wait()
		count.Add(1)
	})
	if count.Load() != n {
		t.Fatalf("Fork ran %d of %d tasks", count.Load(), n)
	}
	// Degenerate sizes.
	ran := false
	Fork(1, func(i int) { ran = true })
	if !ran {
		t.Fatal("Fork(1) did not run")
	}
	Fork(0, func(i int) { t.Error("Fork(0) ran") })
}

func TestForChunkEmpty(t *testing.T) {
	called := false
	ForChunk(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ForChunk(0) should not call fn")
	}
	ForChunk(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("negative n should not call fn")
	}
}
