package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 10000} {
		var count int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != int64(n) {
			t.Fatalf("n=%d: ran %d iterations", n, count)
		}
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForChunkDisjointCoverage(t *testing.T) {
	n := 5000
	seen := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(1)", Workers())
	}
	// Serial path must still cover everything.
	var count int
	For(1000, func(i int) { count++ }) // safe: single worker
	if count != 1000 {
		t.Fatalf("serial run covered %d", count)
	}
	SetMaxWorkers(0)
	if Workers() < 1 {
		t.Fatal("default workers < 1")
	}
}

func TestForChunkEmpty(t *testing.T) {
	called := false
	ForChunk(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ForChunk(0) should not call fn")
	}
	ForChunk(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("negative n should not call fn")
	}
}
