package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 10000} {
		var count int64
		seen := make([]int32, n)
		For(n, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != int64(n) {
			t.Fatalf("n=%d: ran %d iterations", n, count)
		}
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForChunkDisjointCoverage(t *testing.T) {
	n := 5000
	seen := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetMaxWorkers(1)", Workers())
	}
	// Serial path must still cover everything.
	var count int
	For(1000, func(i int) { count++ }) // safe: single worker
	if count != 1000 {
		t.Fatalf("serial run covered %d", count)
	}
	SetMaxWorkers(0)
	if Workers() < 1 {
		t.Fatal("default workers < 1")
	}
}

func TestForChunkCapsWorkersByMinWork(t *testing.T) {
	prev := SetMaxWorkers(64)
	defer SetMaxWorkers(prev)
	// n barely above minWork: forking 64 goroutines of ~5 iterations each
	// is the bug this guards against — every worker must get at least
	// minWork iterations, so n=300 runs serially and n=1024 uses ≤4 chunks.
	var chunks int64
	var smallest int64 = 1 << 60
	ForChunk(300, func(lo, hi int) {
		atomic.AddInt64(&chunks, 1)
	})
	if chunks != 1 {
		t.Fatalf("n=300 with 64 workers ran %d chunks, want 1 (serial)", chunks)
	}
	chunks = 0
	ForChunk(1024, func(lo, hi int) {
		atomic.AddInt64(&chunks, 1)
		for {
			s := atomic.LoadInt64(&smallest)
			if int64(hi-lo) >= s || atomic.CompareAndSwapInt64(&smallest, s, int64(hi-lo)) {
				break
			}
		}
	})
	if chunks > 4 {
		t.Fatalf("n=1024 ran %d chunks, want ≤ 4", chunks)
	}
	// n=1024 divides evenly into 4 chunks of exactly minWork; in general
	// the final chunk may fall slightly short from ceil-division rounding.
	if chunks > 1 && smallest < 256 {
		t.Fatalf("smallest chunk %d < minWork for evenly divisible n", smallest)
	}
	if !Serial(300) {
		t.Fatal("Serial(300) should be true under the n/minWork cap")
	}
	if Serial(10000) {
		t.Fatal("Serial(10000) should be false with 64 workers allowed")
	}
}

func TestForkAlwaysRunsConcurrently(t *testing.T) {
	// Fork must not inherit For's per-worker iteration floor: all n tasks
	// must be in flight at once. Every task blocks on a barrier that only
	// opens when all n have started, so a serializing Fork deadlocks the
	// test (caught by the test timeout) instead of passing silently.
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	var count atomic.Int32
	Fork(n, func(i int) {
		barrier.Done()
		barrier.Wait()
		count.Add(1)
	})
	if count.Load() != n {
		t.Fatalf("Fork ran %d of %d tasks", count.Load(), n)
	}
	// Degenerate sizes.
	ran := false
	Fork(1, func(i int) { ran = true })
	if !ran {
		t.Fatal("Fork(1) did not run")
	}
	Fork(0, func(i int) { t.Error("Fork(0) ran") })
}

func TestForChunkEmpty(t *testing.T) {
	called := false
	ForChunk(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ForChunk(0) should not call fn")
	}
	ForChunk(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("negative n should not call fn")
	}
}

// TestForChunkBoundaryChunkCounts is the regression test for the
// ceil-division fan-out bug: when n is just over a chunk boundary the old
// dispatch could engage a worker whose [lo, hi) range was empty. For
// boundary values of n the body must see exactly ceil(n/chunk) non-empty,
// disjoint, complete ranges.
func TestForChunkBoundaryChunkCounts(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	cases := []int{
		1, 2, 255, 256, 257, // below/at/just above one chunk of work
		511, 512, 513, // serial/parallel threshold at w=4
		767, 768, 769, // 3-chunk boundary
		1023, 1024, 1025, // 4-chunk boundary
		2047, 2048, 2049,
	}
	for _, n := range cases {
		w := 4
		if lim := n / minWork; w > lim {
			w = lim
		}
		wantChunks := 1
		if w > 1 {
			chunk := (n + w - 1) / w
			wantChunks = (n + chunk - 1) / chunk
		}
		var calls int64
		seen := make([]int32, n)
		ForChunk(n, func(lo, hi int) {
			atomic.AddInt64(&calls, 1)
			if lo >= hi {
				t.Errorf("n=%d: empty chunk [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if int(calls) != wantChunks {
			t.Errorf("n=%d: %d chunks, want %d", n, calls, wantChunks)
		}
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestAcquireLimitComposesByMin(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	if Workers() != 8 {
		t.Fatalf("base workers = %d, want 8", Workers())
	}
	a := AcquireLimit(4)
	if Workers() != 4 {
		t.Fatalf("Workers() = %d under limit 4", Workers())
	}
	b := AcquireLimit(2)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d under limits {4,2}", Workers())
	}
	// Releasing the looser limit keeps the stricter one in force.
	a.Release()
	if Workers() != 2 {
		t.Fatalf("Workers() = %d after releasing looser limit", Workers())
	}
	b.Release()
	if Workers() != 8 {
		t.Fatalf("Workers() = %d after releasing all limits", Workers())
	}
	// Release is idempotent; a limit below 1 is clamped.
	b.Release()
	c := AcquireLimit(0)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d under clamped limit", Workers())
	}
	c.Release()
}

// TestConcurrentLimitsNeverExceedOwnCap is the safety property that
// replaced the SetMaxWorkers save/restore pattern: a session holding a
// limit never observes more parallelism than it asked for, no matter what
// other sessions do concurrently.
func TestConcurrentLimitsNeverExceedOwnCap(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(cap int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				l := AcquireLimit(cap)
				if w := Workers(); w > cap {
					t.Errorf("Workers() = %d exceeds own cap %d", w, cap)
				}
				ForChunk(2048, func(lo, hi int) {})
				l.Release()
			}
		}(g + 1)
	}
	wg.Wait()
	if Workers() != 8 {
		t.Fatalf("Workers() = %d after all limits released", Workers())
	}
}

// TestPoolStress hammers the pool from many goroutines mixing chunked
// loops, forks, nested dispatch, and live resizes — the -race companion
// of the pool's channel/atomic protocol.
func TestPoolStress(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				var sum int64
				ForChunk(3000, func(lo, hi int) {
					// Nested dispatch: the caller participates, so this
					// must complete even with every worker busy.
					Fork(2, func(i int) {
						atomic.AddInt64(&sum, int64(hi-lo))
					})
				})
				if sum != 2*3000 {
					t.Errorf("goroutine %d: sum = %d", g, sum)
				}
				if iter%10 == 0 {
					SetMaxWorkers(2 + iter%3)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolResize checks that growing and shrinking the worker target
// keeps dispatch correct (retired workers drain; new ones join).
func TestPoolResize(t *testing.T) {
	prev := SetMaxWorkers(2)
	defer SetMaxWorkers(prev)
	covered := func(n int) {
		seen := make([]int32, n)
		ForChunk(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("index %d visited %d times", i, v)
			}
		}
	}
	covered(4096)
	SetMaxWorkers(8)
	covered(8192)
	SetMaxWorkers(1)
	covered(4096)
	SetMaxWorkers(6)
	covered(8192)
}

// TestForChunkZeroAllocSteadyState pins the tentpole property: a warm
// dispatch through the persistent pool neither forks goroutines nor
// allocates. The body func is stored in a struct so the call site itself
// is capture-free, mirroring how the mat kernels dispatch.
func TestForChunkZeroAllocSteadyState(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	var sink int64
	body := struct{ fn func(lo, hi int) }{}
	body.fn = func(lo, hi int) { atomic.AddInt64(&sink, int64(hi-lo)) }
	fork := struct{ fn func(i int) }{}
	fork.fn = func(i int) { atomic.AddInt64(&sink, 1) }
	ForChunk(4096, body.fn) // warm the job pools and spawn the workers
	Fork(4, fork.fn)
	if allocs := testing.AllocsPerRun(50, func() {
		ForChunk(4096, body.fn)
	}); allocs != 0 {
		t.Errorf("ForChunk allocates %.1f objects per warm call", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		Fork(4, fork.fn)
	}); allocs != 0 {
		t.Errorf("Fork allocates %.1f objects per warm call", allocs)
	}
}
