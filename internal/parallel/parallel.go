// Package parallel provides small helpers for data-parallel loops over the
// local compute device. In the paper the device is a GPU driven by CuPy
// kernels; here the device is the set of host cores, and every batched
// kernel in internal/mat and internal/firal funnels through these helpers so
// the degree of parallelism is controlled in one place.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minWork is the smallest amount of per-worker work worth forking a
// goroutine for: the worker count is capped at n/minWork, so workers
// receive at least minWork iterations (the final chunk may fall slightly
// short of the floor from ceil-division rounding), and loops smaller
// than 2·minWork run serially rather than forking a goroutine for a
// sliver of work.
const minWork = 256

// maxWorkers bounds the number of workers; 0 means GOMAXPROCS. Atomic so
// concurrent sessions adjusting it (WithParallelism) never race with
// worker loops reading it — though the setting itself remains
// process-wide, not per-session.
var maxWorkers atomic.Int64

// SetMaxWorkers overrides the worker count used by For and ForChunk.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous value.
// The setting is process-wide; concurrent callers don't race, but the
// last restore wins.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers reports the number of workers parallel loops will use.
func Workers() int {
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n), distributing iterations across
// workers in contiguous blocks. fn must be safe to call concurrently for
// distinct i.
func For(n int, fn func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Fork runs fn(0), …, fn(n-1) each on its own goroutine and waits. Unlike
// For it always forks — no work floor — so it is for coarse-grained tasks
// whose count the caller has already sized to the available workers
// (e.g. one pre-partitioned reduction chunk per worker).
func Fork(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// chunkWorkers returns the number of workers a chunked loop will fork for
// n iterations with a per-worker floor of minPer: at most Workers(), and
// at most n/minPer so that every worker gets at least minPer iterations of
// real work.
func chunkWorkers(n, minPer int) int {
	w := Workers()
	if lim := n / minPer; w > lim {
		w = lim
	}
	return w
}

// Serial reports whether ForChunk(n, …) would run its body on the calling
// goroutine. Hot kernels use it to skip building the chunk closure — and
// its per-call allocation — when the loop would be serial anyway.
func Serial(n int) bool { return chunkWorkers(n, minWork) <= 1 }

// SerialMin is Serial for ForChunkMin's caller-chosen floor.
func SerialMin(n, minPer int) bool {
	if minPer < 1 {
		minPer = 1
	}
	return chunkWorkers(n, minPer) <= 1
}

// ForChunk splits [0, n) into at most Workers() contiguous chunks of at
// least minWork iterations each and runs fn(lo, hi) on each chunk,
// possibly concurrently. fn must be safe to call concurrently for
// disjoint ranges.
func ForChunk(n int, fn func(lo, hi int)) {
	forChunk(n, minWork, fn)
}

// ForChunkMin is ForChunk with a caller-chosen per-worker iteration floor,
// for loops whose per-iteration cost is far above the scalar work minWork
// is calibrated for (e.g. a GEMM output row costing n·k flops).
func ForChunkMin(n, minPer int, fn func(lo, hi int)) {
	if minPer < 1 {
		minPer = 1
	}
	forChunk(n, minPer, fn)
}

func forChunk(n, minPer int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := chunkWorkers(n, minPer)
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
