// Package parallel provides small helpers for data-parallel loops over the
// local compute device. In the paper the device is a GPU driven by CuPy
// kernels; here the device is the set of host cores, and every batched
// kernel in internal/mat and internal/firal funnels through these helpers so
// the degree of parallelism is controlled in one place.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minWork is the smallest amount of per-worker work worth forking a
// goroutine for. Loops smaller than this run serially.
const minWork = 256

// maxWorkers bounds the number of workers; 0 means GOMAXPROCS. Atomic so
// concurrent sessions adjusting it (WithParallelism) never race with
// worker loops reading it — though the setting itself remains
// process-wide, not per-session.
var maxWorkers atomic.Int64

// SetMaxWorkers overrides the worker count used by For and ForChunk.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous value.
// The setting is process-wide; concurrent callers don't race, but the
// last restore wins.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers reports the number of workers parallel loops will use.
func Workers() int {
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n), distributing iterations across
// workers in contiguous blocks. fn must be safe to call concurrently for
// distinct i.
func For(n int, fn func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunk splits [0, n) into at most Workers() contiguous chunks and runs
// fn(lo, hi) on each chunk, possibly concurrently. fn must be safe to call
// concurrently for disjoint ranges.
func ForChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || n < minWork {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
