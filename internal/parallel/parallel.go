// Package parallel provides small helpers for data-parallel loops over the
// local compute device. In the paper the device is a GPU driven by CuPy
// kernels; here the device is the set of host cores, and every batched
// kernel in internal/mat and internal/firal funnels through these helpers so
// the degree of parallelism is controlled in one place.
//
// # Worker-pool contract
//
// Loop bodies execute on a persistent pool of worker goroutines (see
// pool.go) plus the calling goroutine itself. The contract for hot paths:
//
//   - Workers live for the life of the process (parked on a channel when
//     idle) and are shared by every caller; the pool is resized by
//     SetMaxWorkers and grows lazily up to the target.
//   - A steady-state For/ForChunk/Fork call forks no goroutines and
//     performs no allocations of its own. The function value passed in is
//     the caller's responsibility: a closure literal that captures loop
//     variables is heap-allocated at every call site, so allocation-free
//     kernels must pass a func stored in reusable (pooled) state instead
//     of capturing ad hoc — see the kernel task pools in internal/mat.
//   - ForChunk bodies must not rely on chunks running concurrently with
//     one another (the pool may run them sequentially on the caller);
//     Fork is the primitive that guarantees all n tasks are in flight at
//     once.
//   - Loop bodies must not hold locks that the code launching the loop
//     also holds, as the caller participates in its own loop.
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// minWork is the smallest amount of per-worker work worth engaging a
// pool worker for: the worker count is capped at n/minWork, so workers
// receive at least minWork iterations (the final chunk may fall slightly
// short of the floor from ceil-division rounding), and loops smaller
// than 2·minWork run serially rather than waking a worker for a sliver
// of work.
const minWork = 256

// maxWorkers overrides the base worker count; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// limitMin caches the smallest active session Limit (0 = none) so the
// hot Workers() read stays a single atomic load.
var limitMin atomic.Int64

// limits is the registry of active session limits.
var limits struct {
	mu     sync.Mutex
	active map[*Limit]int
}

// SetMaxWorkers overrides the process-wide base worker count used by For,
// ForChunk and Fork, and resizes the persistent pool to match. n <= 0
// restores the default (GOMAXPROCS). It returns the previous value.
//
// The setting is process-wide; concurrent callers don't race, but the
// last restore wins. Scoped callers (one session among several) should
// use AcquireLimit instead, which composes safely.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	prev := int(maxWorkers.Swap(int64(n)))
	defaultPool.resize()
	return prev
}

// baseWorkers is the process-wide worker target, before session limits:
// the SetMaxWorkers override, or GOMAXPROCS. This also sizes the pool.
func baseWorkers() int {
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers reports the number of workers parallel loops will use: the
// process-wide base capped by the strictest active Limit.
func Workers() int {
	n := baseWorkers()
	if l := limitMin.Load(); l > 0 && int(l) < n {
		n = int(l)
	}
	return n
}

// Limit is a scoped cap on the parallelism a session observes, acquired
// with AcquireLimit and ended with Release. Unlike SetMaxWorkers —
// whose save/restore pattern races between concurrent sessions, with
// the last restore clobbering the rest — limits compose: while several
// are active, Workers() reports the smallest, and releasing one exactly
// removes its own contribution. A session therefore never observes MORE
// parallelism than it asked for, though it may observe less while a
// stricter session is active. Limits do not shrink the shared worker
// pool; they only cap how many pool workers a dispatch engages.
type Limit struct {
	n        int
	released atomic.Bool
}

// AcquireLimit registers a cap of n workers (n < 1 is treated as 1) and
// returns the Limit to Release when the session ends. Release is
// idempotent and safe to defer.
func AcquireLimit(n int) *Limit {
	if n < 1 {
		n = 1
	}
	l := &Limit{n: n}
	limits.mu.Lock()
	if limits.active == nil {
		limits.active = make(map[*Limit]int)
	}
	limits.active[l] = n
	recomputeLimitLocked()
	limits.mu.Unlock()
	return l
}

// Release removes the limit's contribution to Workers().
func (l *Limit) Release() {
	if l == nil || l.released.Swap(true) {
		return
	}
	limits.mu.Lock()
	delete(limits.active, l)
	recomputeLimitLocked()
	limits.mu.Unlock()
}

func recomputeLimitLocked() {
	m := math.MaxInt
	for _, n := range limits.active {
		if n < m {
			m = n
		}
	}
	if m == math.MaxInt {
		limitMin.Store(0)
	} else {
		limitMin.Store(int64(m))
	}
}

// For runs fn(i) for every i in [0, n), distributing iterations across
// workers in contiguous blocks. fn must be safe to call concurrently for
// distinct i.
func For(n int, fn func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Fork runs fn(0), …, fn(n-1) concurrently — all n tasks are guaranteed
// to be in flight at once — and waits. Unlike For it has no work floor,
// so it is for coarse-grained tasks whose count the caller has already
// sized to the available workers (e.g. one pre-partitioned reduction
// chunk per worker). Tasks run on idle pool workers when possible;
// any shortfall is covered by freshly spawned goroutines, so the
// concurrency guarantee holds even when the pool is busy.
func Fork(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	j := forkJobPool.Get().(*forkJob)
	j.fn = fn
	j.exits.Store(int64(n))
	h := defaultPool.claim(nil, j, 1, n-1)
	for i := h + 1; i < n; i++ {
		go spawnedFork(j, i)
	}
	fn(0)
	if j.exits.Add(-1) > 0 {
		<-j.done
	}
	j.fn = nil
	forkJobPool.Put(j)
}

// chunkWorkers returns the number of workers a chunked loop will engage
// for n iterations with a per-worker floor of minPer: at most Workers(),
// and at most n/minPer so that every worker gets at least minPer
// iterations of real work.
func chunkWorkers(n, minPer int) int {
	w := Workers()
	if lim := n / minPer; w > lim {
		w = lim
	}
	return w
}

// Serial reports whether ForChunk(n, …) would run its body on the calling
// goroutine. Hot kernels use it to skip building the chunk closure — and
// its per-call allocation — when the loop would be serial anyway.
func Serial(n int) bool { return chunkWorkers(n, minWork) <= 1 }

// SerialMin is Serial for ForChunkMin's caller-chosen floor.
func SerialMin(n, minPer int) bool {
	if minPer < 1 {
		minPer = 1
	}
	return chunkWorkers(n, minPer) <= 1
}

// ForChunk splits [0, n) into at most Workers() contiguous chunks of at
// least minWork iterations each and runs fn(lo, hi) on each chunk,
// possibly concurrently. fn must be safe to call concurrently for
// disjoint ranges, and is never called with an empty range.
func ForChunk(n int, fn func(lo, hi int)) {
	forChunk(n, minWork, fn)
}

// ForChunkMin is ForChunk with a caller-chosen per-worker iteration floor,
// for loops whose per-iteration cost is far above the scalar work minWork
// is calibrated for (e.g. a GEMM output row costing n·k flops).
func ForChunkMin(n, minPer int, fn func(lo, hi int)) {
	if minPer < 1 {
		minPer = 1
	}
	forChunk(n, minPer, fn)
}

func forChunk(n, minPer int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := chunkWorkers(n, minPer)
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	// Ceil division can produce fewer chunks than workers when n is just
	// over a chunk boundary (e.g. n = 2·chunk + 1 at w = 4); clamp so no
	// worker is woken for a guaranteed-empty range.
	if nchunks := (n + chunk - 1) / chunk; w > nchunks {
		w = nchunks
	}
	j := chunkJobPool.Get().(*chunkJob)
	j.fn, j.n, j.chunk = fn, n, chunk
	j.next.Store(0)
	// Participants = claimed helpers + the caller. exits starts at the
	// upper bound w and is corrected after claiming; it stays positive
	// throughout because at most h+1 participants can decrement it.
	j.exits.Store(int64(w))
	h := defaultPool.claim(j, nil, 0, w-1)
	if h+1 < w {
		j.exits.Add(int64(h + 1 - w))
	}
	j.run()
	if j.exits.Add(-1) > 0 {
		<-j.done
	}
	j.fn = nil
	chunkJobPool.Put(j)
}
