package csvdata

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBasic(t *testing.T) {
	path := writeTemp(t, "1.0,2.0,0\n3.5,4.5,1\n")
	x, y, err := Load(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 2 || len(x[0]) != 2 {
		t.Fatalf("features %v", x)
	}
	if y[0] != 0 || y[1] != 1 {
		t.Fatalf("labels %v", y)
	}
	if x[1][1] != 4.5 {
		t.Fatalf("feature value %g", x[1][1])
	}
}

func TestLoadHeaderSkipped(t *testing.T) {
	path := writeTemp(t, "f1,f2,label\n1,2,0\n3,4,1\n")
	x, y, err := Load(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 2 || len(y) != 2 {
		t.Fatalf("rows %d/%d", len(x), len(y))
	}
}

func TestLoadLabelColumnSelection(t *testing.T) {
	path := writeTemp(t, "2,0.5,0.7\n1,0.1,0.2\n")
	x, y, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 2 || y[1] != 1 {
		t.Fatalf("labels %v", y)
	}
	if len(x[0]) != 2 || x[0][0] != 0.5 {
		t.Fatalf("features %v", x)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, content string
		labelCol      int
	}{
		{"empty", "", -1},
		{"header only", "a,b\n", -1},
		{"one column", "1\n2\n", -1},
		// A non-numeric FIRST row is a header by design, so the malformed
		// cells below sit in second rows.
		{"bad label", "1,2,0\n1,2,x\n", -1},
		{"negative label", "1,2,0\n1,2,-1\n", -1},
		{"bad feature", "1,2,0\nx?,2,0\n", -1},
		{"label col out of range", "1,2,0\n", 7},
	}
	for _, tc := range cases {
		path := writeTemp(t, tc.content)
		if _, _, err := Load(path, tc.labelCol); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, _, err := Load("/nonexistent/file.csv", -1); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestRaggedRowsRejected(t *testing.T) {
	// encoding/csv itself rejects ragged rows; confirm the error surfaces.
	path := writeTemp(t, "1,2,0\n1,2\n")
	if _, _, err := Load(path, -1); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestNumClasses(t *testing.T) {
	if n := NumClasses([]int{0, 1, 2}, []int{5}); n != 6 {
		t.Fatalf("NumClasses %d", n)
	}
	if n := NumClasses(nil, []int{0}); n != 1 {
		t.Fatalf("NumClasses %d", n)
	}
}
