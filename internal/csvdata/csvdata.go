// Package csvdata loads feature/label matrices from CSV files for the
// cmd/firal end-user tool. One row per point; one column holds the
// integer class label, the rest are float features. A non-numeric first
// row is treated as a header and skipped.
package csvdata

import (
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
)

// Load reads a CSV file and splits it into features and labels. labelCol
// selects the label column; −1 means the last column. All rows must have
// the same width.
func Load(path string, labelCol int) ([][]float64, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("csvdata: %s: %w", path, err)
	}
	return Parse(records, labelCol, path)
}

// Parse converts CSV records into features and labels (see Load).
func Parse(records [][]string, labelCol int, name string) ([][]float64, []int, error) {
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("csvdata: %s: empty file", name)
	}
	start := 0
	if !numericRow(records[0]) {
		start = 1 // header
	}
	if start >= len(records) {
		return nil, nil, fmt.Errorf("csvdata: %s: no data rows", name)
	}
	width := len(records[start])
	if width < 2 {
		return nil, nil, fmt.Errorf("csvdata: %s: need at least one feature and one label column", name)
	}
	lc := labelCol
	if lc < 0 {
		lc = width - 1
	}
	if lc >= width {
		return nil, nil, fmt.Errorf("csvdata: %s: label column %d out of range (width %d)", name, lc, width)
	}
	var features [][]float64
	var labels []int
	for rowIdx := start; rowIdx < len(records); rowIdx++ {
		rec := records[rowIdx]
		if len(rec) != width {
			return nil, nil, fmt.Errorf("csvdata: %s: row %d has %d columns, want %d", name, rowIdx+1, len(rec), width)
		}
		feat := make([]float64, 0, width-1)
		var label int
		for col, cell := range rec {
			if col == lc {
				v, err := strconv.Atoi(cell)
				if err != nil {
					return nil, nil, fmt.Errorf("csvdata: %s: row %d: label %q is not an integer", name, rowIdx+1, cell)
				}
				if v < 0 {
					return nil, nil, fmt.Errorf("csvdata: %s: row %d: negative label %d", name, rowIdx+1, v)
				}
				label = v
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("csvdata: %s: row %d col %d: %q is not numeric", name, rowIdx+1, col+1, cell)
			}
			feat = append(feat, v)
		}
		features = append(features, feat)
		labels = append(labels, label)
	}
	return features, labels, nil
}

// NumClasses returns 1 + the maximum label across the given label slices.
func NumClasses(labelSets ...[]int) int {
	maxLabel := 0
	for _, ys := range labelSets {
		for _, y := range ys {
			if y > maxLabel {
				maxLabel = y
			}
		}
	}
	return maxLabel + 1
}

func numericRow(rec []string) bool {
	for _, cell := range rec {
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			return false
		}
	}
	return true
}
