package sketch

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

func TestHutchinsonUnbiasedOnDiagonal(t *testing.T) {
	// For diagonal A, vᵀAv = Σ a_ii v_i² = Trace(A) exactly for Rademacher
	// probes, so even one probe is exact.
	n := 10
	a := mat.NewDense(n, n)
	var trace float64
	for i := 0; i < n; i++ {
		a.Set(i, i, float64(i+1))
		trace += float64(i + 1)
	}
	got := HutchinsonTrace(func(dst, v []float64) { mat.MatVec(dst, a, v) }, n, 1, rnd.New(2))
	if math.Abs(got-trace) > 1e-10 {
		t.Fatalf("diagonal trace %g want %g", got, trace)
	}
}

func TestHutchinsonConvergesOnDense(t *testing.T) {
	rng := rnd.New(3)
	n := 30
	x := mat.NewDense(n+2, n)
	rng.Normal(x.Data, 0, 1)
	a := mat.MulTransA(nil, x, x)
	trace := a.Trace()
	est := HutchinsonTrace(func(dst, v []float64) { mat.MatVec(dst, a, v) }, n, 4000, rnd.New(4))
	if math.Abs(est-trace) > 0.1*math.Abs(trace) {
		t.Fatalf("Hutchinson estimate %g too far from %g", est, trace)
	}
}

func TestTraceFromProbes(t *testing.T) {
	rng := rnd.New(5)
	n, s := 12, 64
	a := mat.Eye(n)
	a.Scale(3)
	v := mat.NewDense(n, s)
	rng.Rademacher(v.Data)
	av := mat.Mul(nil, a, v)
	got := TraceFromProbes(v, av)
	if math.Abs(got-3*float64(n)) > 1e-9 {
		t.Fatalf("TraceFromProbes %g want %g", got, 3*float64(n))
	}
}

func TestProbes(t *testing.T) {
	ps := Probes(rnd.New(6), 8, 3)
	if len(ps) != 3 || len(ps[0]) != 8 {
		t.Fatal("Probes shape wrong")
	}
}
