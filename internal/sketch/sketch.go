// Package sketch implements the randomized trace estimation used by the
// fast RELAX solver (§ III-A): Hutchinson's estimator with Rademacher
// probes [15]. Trace(A) ≈ (1/s) Σ_j v_jᵀ A v_j for ±1 probe vectors v_j.
package sketch

import (
	"repro/internal/mat"
	"repro/internal/rnd"
)

// The probe block of Algorithm 2, line 4 is drawn directly into a hoisted
// buffer with rnd.Source.Rademacher (the RELAX solvers reuse one Dense
// across iterations), so no matrix-returning helper exists here.

// Probes returns s independent length-n Rademacher vectors as slices.
func Probes(rng *rnd.Source, n, s int) [][]float64 {
	out := make([][]float64, s)
	for j := range out {
		out[j] = make([]float64, n)
		rng.Rademacher(out[j])
	}
	return out
}

// HutchinsonTrace estimates Trace(A) for the linear operator apply
// (dst = A·v) acting on R^n using s Rademacher probes.
func HutchinsonTrace(apply func(dst, v []float64), n, s int, rng *rnd.Source) float64 {
	v := make([]float64, n)
	av := make([]float64, n)
	var acc float64
	for j := 0; j < s; j++ {
		rng.Rademacher(v)
		apply(av, v)
		acc += mat.Dot(v, av)
	}
	return acc / float64(s)
}

// TraceFromProbes estimates Trace(A) from precomputed probe columns V and
// their images AV = A·V (both n×s). This matches how Algorithm 2 reuses
// the CG solutions: the same probe block serves the trace estimates of all
// n gradient entries.
func TraceFromProbes(v, av *mat.Dense) float64 {
	if v.Rows != av.Rows || v.Cols != av.Cols {
		panic("sketch: probe shape mismatch")
	}
	var acc float64
	col1 := make([]float64, v.Rows)
	col2 := make([]float64, v.Rows)
	for j := 0; j < v.Cols; j++ {
		v.Col(col1, j)
		av.Col(col2, j)
		acc += mat.Dot(col1, col2)
	}
	return acc / float64(v.Cols)
}

// TraceFromProbesT is TraceFromProbes over transposed probe blocks (s×n,
// row j = probe j — the layout of the block-CG RELAX path): the rows are
// already contiguous, so the estimate needs no column extraction and no
// scratch. Summation order matches TraceFromProbes exactly.
func TraceFromProbesT(vt, avt *mat.Dense) float64 {
	if vt.Rows != avt.Rows || vt.Cols != avt.Cols {
		panic("sketch: probe shape mismatch")
	}
	var acc float64
	for j := 0; j < vt.Rows; j++ {
		acc += mat.Dot(vt.Row(j), avt.Row(j))
	}
	return acc / float64(vt.Rows)
}
