package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

// readAll drains a source through ReadRows in blocks of bs and returns
// the materialized matrix.
func readAll(t *testing.T, src PoolSource, bs int) *mat.Dense {
	t.Helper()
	n, d := src.NumRows(), src.Dim()
	out := mat.NewDense(n, d)
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		if err := src.ReadRows(lo, hi, out.RowSlice(lo, hi)); err != nil {
			t.Fatalf("ReadRows [%d, %d): %v", lo, hi, err)
		}
	}
	return out
}

func TestMatrixSourceRoundTrip(t *testing.T) {
	x := mat.NewDense(97, 7)
	rnd.New(1).Normal(x.Data, 0, 1)
	src := NewMatrixSource(x)
	got := readAll(t, src, 13) // ragged: 97 % 13 != 0
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			if got.At(i, j) != x.At(i, j) {
				t.Fatalf("row %d col %d: got %g want %g", i, j, got.At(i, j), x.At(i, j))
			}
		}
	}
	if v := src.ResidentRows(3, 5); &v[0] != &x.Data[3*7] {
		t.Fatal("ResidentRows is not a view of the backing storage")
	}
}

// TestShardRoundTrip writes a pool across two shard files and reads it
// back through every access path: full sweep, ragged blocks, windows
// crossing the file boundary. Values must match the float32 rounding of
// the originals exactly.
func TestShardRoundTrip(t *testing.T) {
	const n, d, split = 89, 5, 37
	x := mat.NewDense(n, d)
	rnd.New(2).Normal(x.Data, 0, 3)
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.shard"), filepath.Join(dir, "b.shard")}
	for s, span := range [][2]int{{0, split}, {split, n}} {
		w, err := CreateShard(paths[s], d)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBlock(x.RowSlice(span[0], span[1])); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	src, err := OpenShards(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.NumRows() != n || src.Dim() != d {
		t.Fatalf("shape %d×%d, want %d×%d", src.NumRows(), src.Dim(), n, d)
	}
	want := func(i, j int) float64 { return float64(float32(x.At(i, j))) }
	for _, bs := range []int{1, 7, n, n + 3} {
		got := readAll(t, src, bs)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if got.At(i, j) != want(i, j) {
					t.Fatalf("bs=%d row %d col %d: got %g want float32-rounded %g", bs, i, j, got.At(i, j), want(i, j))
				}
			}
		}
	}
	// A window straddling the file boundary.
	win := mat.NewDense(10, d)
	if err := src.ReadRows(split-4, split+6, win); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < d; j++ {
			if win.At(i, j) != want(split-4+i, j) {
				t.Fatalf("boundary window row %d: got %g want %g", i, win.At(i, j), want(split-4+i, j))
			}
		}
	}
}

func TestShardRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.shard")
	if err := os.WriteFile(path, []byte("NOTASHARDxxxxxxxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShards(path); err == nil {
		t.Fatal("OpenShards accepted a non-shard file")
	}
	w, err := CreateShard(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRow([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the payload below the declared row count.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShards(path); err == nil {
		t.Fatal("OpenShards accepted a truncated shard")
	}
}

func TestSubrangePreservesValuesAndResidency(t *testing.T) {
	x := mat.NewDense(50, 3)
	rnd.New(4).Normal(x.Data, 0, 1)
	sub := Subrange(NewMatrixSource(x), 10, 35)
	if sub.NumRows() != 25 {
		t.Fatalf("NumRows = %d, want 25", sub.NumRows())
	}
	if _, ok := sub.(Resident); !ok {
		t.Fatal("Subrange of a resident source lost the Resident fast path")
	}
	got := readAll(t, sub, 8)
	for i := 0; i < 25; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != x.At(10+i, j) {
				t.Fatalf("row %d: got %g want %g", i, got.At(i, j), x.At(10+i, j))
			}
		}
	}
	if err := sub.ReadRows(20, 26, mat.NewDense(6, 3)); err == nil {
		t.Fatal("out-of-range window accepted")
	}
}

func TestCSVSourceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.csv")
	content := "f1,f2,label\n" +
		"0.5, -1.25,2\n" +
		"3.0,4.5,0\n" +
		"-2.25,0.125,1\n" +
		"7.5,-3.75,2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.NumRows() != 4 || src.Dim() != 2 {
		t.Fatalf("shape %d×%d, want 4×2", src.NumRows(), src.Dim())
	}
	wantLabels := []int{2, 0, 1, 2}
	for i, l := range src.Labels() {
		if l != wantLabels[i] {
			t.Fatalf("label %d = %d, want %d", i, l, wantLabels[i])
		}
	}
	want := [][]float64{{0.5, -1.25}, {3, 4.5}, {-2.25, 0.125}, {7.5, -3.75}}
	got := readAll(t, src, 3)
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("row %d col %d: got %g want %g", i, j, got.At(i, j), want[i][j])
			}
		}
	}
	// Random-access window from the middle.
	win := mat.NewDense(2, 2)
	if err := src.ReadRows(1, 3, win); err != nil {
		t.Fatal(err)
	}
	if win.At(1, 0) != -2.25 {
		t.Fatalf("mid-window read got %g, want -2.25", win.At(1, 0))
	}
}

func TestCSVSourceRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"ragged.csv":   "1,2,0\n1,2,3,0\n",
		"nonnum.csv":   "1,x,0\n",
		"badlabel.csv": "1,2,1.5\n",
		"empty.csv":    "\n\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewCSVSource(path, -1); err == nil {
			t.Fatalf("%s: malformed CSV accepted", name)
		}
	}
}

// TestCSVSourceLeadingBlankAndHeader pins parity with csvdata.Load's
// blank-line handling: a blank line before the header must not demote
// the header to a parse error.
func TestCSVSourceLeadingBlankAndHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blank.csv")
	if err := os.WriteFile(path, []byte("\nf1,f2,label\n1.0,2.0,0\n3.0,4.0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(path, -1)
	if err != nil {
		t.Fatalf("blank line before header rejected: %v", err)
	}
	defer src.Close()
	if src.NumRows() != 2 || src.Dim() != 2 {
		t.Fatalf("shape %d×%d, want 2×2", src.NumRows(), src.Dim())
	}
}

// TestCSVSourceRejectsAmbiguousLabelCol pins the labelCol contract:
// negative values other than -1 (last) and NoLabelColumn are rejected so
// they can't silently pack the label column as a feature while
// csvdata.Load treats them as "last column".
func TestCSVSourceRejectsAmbiguousLabelCol(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.csv")
	if err := os.WriteFile(path, []byte("1.0,2.0,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCSVSource(path, -3); err == nil {
		t.Fatal("labelCol -3 accepted; want an explicit error")
	}
}

func TestCSVSourceFeatureOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feat.csv")
	if err := os.WriteFile(path, []byte("1.5,2.5\n3.5,4.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(path, NoLabelColumn)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Dim() != 2 || src.Labels() != nil {
		t.Fatalf("feature-only file: dim %d labels %v", src.Dim(), src.Labels())
	}
	got := readAll(t, src, 1)
	if got.At(1, 1) != 4.5 {
		t.Fatalf("got %g, want 4.5", got.At(1, 1))
	}
}

// TestShardWriterFloat32Rounding documents the shard precision contract:
// values survive exactly as their float32 rounding.
func TestShardWriterFloat32Rounding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pi.shard")
	w, err := CreateShard(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRow([]float64{math.Pi}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := mat.NewDense(1, 1)
	if err := src.ReadRows(0, 1, got); err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != float64(float32(math.Pi)) {
		t.Fatalf("got %v, want float32(π)", got.At(0, 0))
	}
	if got.At(0, 0) == math.Pi {
		t.Fatal("shard kept float64 precision; expected float32 storage")
	}
}
