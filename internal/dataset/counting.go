package dataset

import (
	"sync/atomic"

	"repro/internal/mat"
)

// CountingSource wraps a PoolSource and counts its decode traffic: the
// number of ReadRows calls and the total rows served. It exists to make
// sweep-cost claims testable — the streamed-RELAX contract is "one full
// pool decode per CG iteration, not one per probe column per iteration",
// and tests (and cmd/firal-bench) assert it by wrapping the source and
// dividing RowsRead by NumRows.
//
// Optional-interface policy — each decision is explicit, because a
// transparent wrapper that silently narrows a source changes consumer
// behaviour (Subrange's identity shortcut, Stream's fast paths):
//
//   - Resident is deliberately NOT forwarded even when the wrapped
//     source implements it: resident blocks bypass ReadRows entirely,
//     so forwarding it would make every count read zero. Wrapping
//     forces the decode path, which is exactly what a decode-counting
//     test wants to measure.
//   - BlockLender is likewise NOT forwarded: lent blocks would bypass
//     the counters the same way. To count a prefetched sweep, wrap the
//     CountingSource in WithPrefetch (counting below the prefetcher) —
//     every asynchronous read still lands on ReadRows and is counted.
//   - Generation IS forwarded (reporting 0 for fixed sources): it
//     carries the growable-pool snapshot decision, and hiding it would
//     let Subrange(counting-over-LiveSource, 0, n) identity-shortcut to
//     an unpinned view that tracks later appends.
//
// Counters are atomic, matching the PoolSource contract that ReadRows
// tolerates concurrent callers.
type CountingSource struct {
	src   PoolSource
	reads atomic.Int64
	rows  atomic.Int64
}

// NewCountingSource wraps src. Close closes the wrapped source.
func NewCountingSource(src PoolSource) *CountingSource {
	return &CountingSource{src: src}
}

// NumRows returns the pool size.
func (s *CountingSource) NumRows() int { return s.src.NumRows() }

// Dim returns the feature dimension.
func (s *CountingSource) Dim() int { return s.src.Dim() }

// Generation forwards the wrapped source's append-generation counter
// when it has one, and reports 0 for fixed-size sources, so views over a
// counted growable pool stay pinned exactly as they would uncounted (see
// the optional-interface policy above).
func (s *CountingSource) Generation() int64 {
	if g, ok := s.src.(interface{ Generation() int64 }); ok {
		return g.Generation()
	}
	return 0
}

// ReadRows forwards to the wrapped source, counting the call and the rows
// served (failed reads are counted too — the consumer paid for the
// attempt).
func (s *CountingSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	s.reads.Add(1)
	s.rows.Add(int64(hi - lo))
	return s.src.ReadRows(lo, hi, dst)
}

// Close closes the wrapped source.
func (s *CountingSource) Close() error { return s.src.Close() }

// Reads returns the number of ReadRows calls since construction/Reset.
func (s *CountingSource) Reads() int64 { return s.reads.Load() }

// RowsRead returns the total rows served since construction/Reset.
func (s *CountingSource) RowsRead() int64 { return s.rows.Load() }

// Sweeps returns RowsRead expressed in full passes over the pool. Blocked
// consumers sweep the pool end to end, so after k full sweeps this is
// exactly k; a fractional value means a partial or windowed access
// pattern.
func (s *CountingSource) Sweeps() float64 {
	n := s.src.NumRows()
	if n == 0 {
		return 0
	}
	return float64(s.rows.Load()) / float64(n)
}

// Reset zeroes both counters.
func (s *CountingSource) Reset() {
	s.reads.Store(0)
	s.rows.Store(0)
}
