package dataset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
)

// LiveSource is the delta layer over PoolSource: a pool that grows while
// it is being read. Appends add whole segments (any PoolSource — a fresh
// shard file, an in-memory matrix) without re-packing the existing data;
// readers route across segments exactly as ShardSource routes across
// shard files. The segment list is published through an atomic pointer to
// an immutable snapshot, so concurrent ReadRows — the blocked solver
// sweeps — never take a lock and never observe a half-installed append.
//
// Visibility contract:
//
//   - NumRows and ReadRows reflect every Append completed before the call
//     (rows only grow; indices of existing rows never move).
//   - Generation() counts completed appends. A consumer that must pin a
//     fixed n for one solve (a selection round needs a stable simplex
//     dimension) wraps the live source in Subrange(live, 0, n): the view
//     keeps serving exactly those rows while later appends land.
//   - Append takes ownership of the segment; Close closes every segment.
type LiveSource struct {
	mu    sync.Mutex // serializes appenders; readers never take it
	state atomic.Pointer[liveState]
}

// liveState is one immutable snapshot of the segment list.
type liveState struct {
	segs   []PoolSource
	starts []int // global row index of each segment's first row
	rows   int
	d      int
	gen    int64
}

// NewLiveSource wraps base as the first segment of a growable pool,
// taking ownership of it.
func NewLiveSource(base PoolSource) *LiveSource {
	s := &LiveSource{}
	s.state.Store(&liveState{
		segs:   []PoolSource{base},
		starts: []int{0},
		rows:   base.NumRows(),
		d:      base.Dim(),
	})
	return s
}

// Append adds src's rows after the current last row and returns the new
// generation count. The segment must match the pool dimension; on success
// the LiveSource owns it (Close closes it). Open readers see the new rows
// on their next NumRows/ReadRows without reopening anything.
func (s *LiveSource) Append(src PoolSource) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.state.Load()
	if src.Dim() != cur.d {
		return cur.gen, fmt.Errorf("dataset: appending a %d-dimensional segment to a %d-dimensional pool", src.Dim(), cur.d)
	}
	next := &liveState{
		segs:   append(append([]PoolSource(nil), cur.segs...), src),
		starts: append(append([]int(nil), cur.starts...), cur.rows),
		rows:   cur.rows + src.NumRows(),
		d:      cur.d,
		gen:    cur.gen + 1,
	}
	s.state.Store(next)
	return next.gen, nil
}

// Generation returns the number of completed appends. A changed
// generation tells a caching consumer (delta-only probability passes,
// incremental Fisher state) that rows were added since it last looked.
func (s *LiveSource) Generation() int64 { return s.state.Load().gen }

// NumRows returns the current total row count.
func (s *LiveSource) NumRows() int { return s.state.Load().rows }

// Dim returns the feature dimension.
func (s *LiveSource) Dim() int { return s.state.Load().d }

// ReadRows copies rows [lo, hi) into dst, crossing segment boundaries as
// needed. The snapshot is loaded once, so a concurrent Append cannot
// shift rows mid-read.
func (s *LiveSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	st := s.state.Load()
	if lo < 0 || hi > st.rows || lo > hi {
		return fmt.Errorf("dataset: row window [%d, %d) out of range [0, %d)", lo, hi, st.rows)
	}
	if dst != nil && (dst.Rows != hi-lo || dst.Cols != st.d) {
		return fmt.Errorf("dataset: ReadRows destination is %d×%d, want %d×%d",
			dst.Rows, dst.Cols, hi-lo, st.d)
	}
	// Linear scan for the segment containing lo: segment counts stay tiny
	// and the sweep access pattern revisits the same segment block to
	// block (same rationale as ShardSource).
	si := 0
	for si+1 < len(st.segs) && st.starts[si+1] <= lo {
		si++
	}
	row := lo
	for row < hi {
		seg := st.segs[si]
		segLo := row - st.starts[si]
		segHi := min(seg.NumRows(), hi-st.starts[si])
		if err := seg.ReadRows(segLo, segHi, dst.RowSlice(row-lo, row-lo+segHi-segLo)); err != nil {
			// Wrap, don't replace: segment errors carry typed causes
			// (fs errors, ErrResidentPool from a gated source) that
			// callers match with errors.Is through this context.
			return fmt.Errorf("dataset: live segment %d (rows [%d, %d)): %w",
				si, st.starts[si], st.starts[si]+seg.NumRows(), err)
		}
		row += segHi - segLo
		si++
	}
	return nil
}

// Close closes every segment.
func (s *LiveSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state.Load()
	var first error
	for _, seg := range st.segs {
		if err := seg.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.state.Store(&liveState{d: st.d, gen: st.gen})
	return first
}
