//go:build unix

package dataset

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. The mapping is shared and
// demand-paged, so opening a shard far larger than RAM is cheap and the
// kernel evicts cold pages under pressure.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
