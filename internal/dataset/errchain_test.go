package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
)

// TestShardWriterKeepsErrorChain pins that ShardWriter's contextual
// wrapping preserves the underlying cause: a filesystem error surfaced
// through Flush/Close must still satisfy errors.Is(err, os.ErrClosed) —
// callers distinguishing disk-full from corruption rely on the chain,
// not the message.
func TestShardWriterKeepsErrorChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.shard")
	w, err := CreateShard(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRow([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the writer: Close must report the
	// flush failure with the shard path AND the os cause intact.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	err = w.Close()
	if err == nil {
		t.Fatal("Close after losing the file: want an error")
	}
	if !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Close error %v does not wrap os.ErrClosed", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("Close error %q does not name the shard %s", err, path)
	}
	// The sticky error keeps the chain on later calls too.
	if err := w.AppendRow([]float64{4, 5, 6}); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("sticky AppendRow error %v does not wrap os.ErrClosed", err)
	}
}

// failingSource is a PoolSource whose reads fail with a fixed error.
type failingSource struct {
	rows, d int
	err     error
}

func (f *failingSource) NumRows() int                              { return f.rows }
func (f *failingSource) Dim() int                                  { return f.d }
func (f *failingSource) ReadRows(lo, hi int, dst *mat.Dense) error { return f.err }
func (f *failingSource) Close() error                              { return nil }

// TestLiveSourceKeepsErrorChain pins that LiveSource.ReadRows wraps a
// failing segment's error — adding which segment and row range — without
// breaking errors.Is on the typed cause.
func TestLiveSourceKeepsErrorChain(t *testing.T) {
	sentinel := errors.New("decode exploded")
	base := NewMatrixSource(mat.NewDense(4, 2))
	live := NewLiveSource(base)
	if _, err := live.Append(&failingSource{rows: 3, d: 2, err: sentinel}); err != nil {
		t.Fatal(err)
	}
	dst := mat.NewDense(2, 2)
	err := live.ReadRows(5, 7, dst) // lands in the failing second segment
	if !errors.Is(err, sentinel) {
		t.Fatalf("ReadRows error %v does not wrap the segment's cause", err)
	}
	if !strings.Contains(err.Error(), "segment 1") {
		t.Fatalf("ReadRows error %q does not identify the failing segment", err)
	}
}
