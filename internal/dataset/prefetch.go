package dataset

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/mat"
)

// This file adds the asynchronous double-buffered prefetch layer to the
// streaming path. The blocked solver kernels consume a pool strictly
// forward, block by block (ARCHITECTURE.md, Contract 3), which makes the
// next read perfectly predictable: while the caller chews block k, block
// k+1 can already be decoding on another goroutine. PrefetchSource
// exploits exactly that — it overlaps the mmap decode latency of a
// ShardSource (or the run-splicing of a TombstoneView, the segment
// routing of a LiveSource) with the Fisher/Gram kernels, without
// changing a single byte of what the consumer sees: the blocks served
// are the wrapped source's blocks, so selections stay bit-for-bit
// identical to the synchronous path.
//
// Two access styles are served:
//
//   - ReadRows keeps the full PoolSource contract (safe for concurrent
//     callers, copies into the caller's dst) so a PrefetchSource can
//     stand anywhere a PoolSource can.
//   - LendBlock/ReturnBlock (the BlockLender interface) is the zero-copy
//     fast path hessian.Stream uses: the caller borrows the prefetch
//     buffer itself for the duration of one block's kernels, skipping
//     the copy into workspace scratch entirely.

// BlockLender is the optional zero-copy handoff interface a prefetching
// source exposes: LendBlock returns a source-owned buffer holding rows
// [lo, hi) that stays valid until the matching ReturnBlock. Ownership
// rules:
//
//   - A lent block is read-only and owned by the caller until returned;
//     returning it and continuing to read it is a bug (the buffer is
//     immediately reused for the next asynchronous read).
//   - Lend/Return pairs must nest block-wise: the blocked engines lend
//     one block, run their kernels, return it, then lend the next —
//     which is what frees a buffer for the read-ahead of block k+2
//     while block k+1 is being chewed.
//
// hessian.Stream detects the interface and routes Block/PutBlock
// through it, so every blocked consumer — the Lemma-2 matvec, the
// gradient accumulation, the Gram blocks, the ROUND rescore, block-CG's
// per-iteration decode — overlaps I/O with compute without changing its
// own code.
type BlockLender interface {
	// LendBlock returns rows [lo, hi) in a lender-owned buffer, valid
	// until ReturnBlock.
	LendBlock(lo, hi int) (*mat.Dense, error)
	// ReturnBlock gives a lent block back for reuse.
	ReturnBlock(b *mat.Dense)
}

// pfBlock is one pooled prefetch buffer: the float64 storage, a reusable
// Dense header over it, and the window + error of the read that filled
// it. While a read is in flight the block is owned by the reader
// goroutine; afterwards it travels back through the 1-slot result
// channel. run is the goroutine body bound once at construction — `go
// b.run()` spawns without the per-call closure allocation that `go
// p.fill(b)` would cost, keeping the warm sweep at 0 allocs/op.
type pfBlock struct {
	m      mat.Dense
	buf    []float64
	lo, hi int
	err    error
	run    func()
}

// prep points the block's header at rows [lo, hi) of a d-column pool,
// growing the backing storage if the window outgrew it (only when the
// consumer's block size grows — amortized, never on the warm path).
func (b *pfBlock) prep(lo, hi, d int) {
	want := (hi - lo) * d
	if cap(b.buf) < want {
		b.buf = make([]float64, want)
	}
	b.lo, b.hi, b.err = lo, hi, nil
	b.m = mat.Dense{Rows: hi - lo, Cols: d, Stride: d, Data: b.buf[:want]}
}

// PrefetchSource wraps a PoolSource with asynchronous double-buffered
// block read-ahead. After serving a block read of [lo, hi) it starts
// decoding the next same-sized window [hi, hi+(hi−lo)) into its second
// buffer on a dedicated reader goroutine; when the consumer asks for
// exactly that window — the blocked sweep pattern — the decode has
// already happened under the previous block's compute and the request is
// a channel receive. Any other request degrades gracefully: single-row
// reads pass straight through to the wrapped source, and a mismatched
// block read drains the speculative result and reads synchronously, so
// arbitrary access stays correct, just unaccelerated.
//
// Concurrency: ReadRows keeps the PoolSource contract (concurrent
// callers are safe — the prefetch machinery is serialized under a
// mutex, so interleaved sweeps lose overlap but never correctness).
// LendBlock/ReturnBlock follow the BlockLender nesting discipline; a
// third concurrent borrower falls back to freshly allocated buffers
// rather than deadlocking.
//
// Lifecycle: the in-flight read is a single short-lived goroutine per
// block whose only obligation is a buffered-channel send, so an
// abandoned PrefetchSource leaks nothing. Close drains any in-flight
// read deterministically and closes the wrapped source (share-safe
// wrappers like Subrange make that a no-op chain). Cancelling the
// construction context stops the speculation, not the data: no new
// read-ahead is scheduled (an already in-flight read finishes and is
// served or drained — never torn mid-decode), while demand reads keep
// succeeding synchronously. Cancellation must not surface as a read
// error because the solvers treat mid-sweep read failures as corruption
// and panic; they exit a cancelled sweep at their own per-iteration ctx
// polls (the ctxpoll contract), and the prefetch layer just stops
// working ahead of a sweep that is about to stop.
type PrefetchSource struct {
	src    PoolSource
	ctx    context.Context
	stride int // initial buffer sizing; prediction uses the live request size

	mu       sync.Mutex
	closed   bool
	inflight bool // a result is owed on res
	pendLo   int  // window of the in-flight read, valid while inflight
	pendHi   int
	res      chan *pfBlock // 1-slot handoff from the reader goroutine
	free     []*pfBlock    // idle buffers (at most the two pooled ones)
	lent     []*pfBlock    // blocks currently borrowed via LendBlock
	hits     int64         // block requests served from a completed prefetch
	misses   int64         // block requests read synchronously
}

// compile-time interface checks: the prefetch layer must stand anywhere
// a PoolSource can and expose the zero-copy lender fast path.
var (
	_ PoolSource  = (*PrefetchSource)(nil)
	_ BlockLender = (*PrefetchSource)(nil)
)

// NewPrefetchSource wraps src with read-ahead sized for blockRows-row
// sweeps (≤ 0 selects DefaultBlockRows). ctx gates only the
// speculation: once ctx is cancelled no further read-ahead is
// scheduled, while demand reads continue synchronously (nil means no
// cancellation). The PrefetchSource owns src: Close closes it.
//
// Most callers want WithPrefetch, which skips wrapping when read-ahead
// cannot help.
func NewPrefetchSource(ctx context.Context, src PoolSource, blockRows int) *PrefetchSource {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := &PrefetchSource{
		src:    src,
		ctx:    ctx,
		stride: blockRows,
		res:    make(chan *pfBlock, 1),
		free:   make([]*pfBlock, 0, 2),
		lent:   make([]*pfBlock, 0, 2),
	}
	for i := 0; i < 2; i++ {
		p.free = append(p.free, p.newBlock())
	}
	return p
}

// newBlock builds a buffer with its reader body pre-bound (see pfBlock).
func (p *PrefetchSource) newBlock() *pfBlock {
	b := &pfBlock{}
	b.run = func() { p.fill(b) }
	return b
}

// WithPrefetch wraps src with asynchronous block read-ahead when that
// can actually overlap anything, and returns src unchanged otherwise:
// a Resident source serves blocks zero-copy with no decode to hide, and
// a pool of at most one block has no "next block" to read ahead. This is
// the composition hook the streaming entry points use — wrap the
// outermost view (after Subrange pinning or TombstoneView compaction),
// then hand the result to hessian.NewStream:
//
//	src := dataset.WithPrefetch(ctx, dataset.Subrange(live, 0, n), blockRows)
//	pool := hessian.NewStream(src, probs, blockRows)
//
// Pass the same blockRows to both so the read-ahead window matches the
// sweep granularity.
func WithPrefetch(ctx context.Context, src PoolSource, blockRows int) PoolSource {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	if _, resident := src.(Resident); resident {
		return src
	}
	if src.NumRows() <= blockRows {
		return src
	}
	return NewPrefetchSource(ctx, src, blockRows)
}

// NumRows returns the wrapped source's current row count.
func (p *PrefetchSource) NumRows() int { return p.src.NumRows() }

// Dim returns the feature dimension.
func (p *PrefetchSource) Dim() int { return p.src.Dim() }

// Generation forwards the wrapped source's append-generation counter
// when it has one, and reports 0 for fixed-size sources. Implementing
// the method unconditionally means Subrange never identity-shortcuts a
// prefetch wrapper — the conservative choice: a view over a growable
// pool stays pinned whether or not the prefetch layer sits in between.
func (p *PrefetchSource) Generation() int64 {
	if g, ok := p.src.(interface{ Generation() int64 }); ok {
		return g.Generation()
	}
	return 0
}

// Stats reports how many block requests were served from a completed
// prefetch (hits) versus read synchronously (misses). Test diagnostics;
// sweep k of a B-block pool scores B−1 hits once warm.
func (p *PrefetchSource) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// fill is the reader goroutine: decode the block's window from the
// wrapped source, then hand the block off through the 1-slot result
// channel. The send is buffered and at most one read is ever in flight,
// so the goroutine always terminates promptly — even if the consumer
// abandoned the source, cancelled, or closed it.
func (p *PrefetchSource) fill(b *pfBlock) {
	b.err = p.src.ReadRows(b.lo, b.hi, &b.m)
	p.res <- b
}

// takeFree pops an idle buffer, or allocates a fresh one when a
// concurrent borrower exhausted the pooled pair (degraded but
// deadlock-free; never taken by the single-sweeper pattern).
func (p *PrefetchSource) takeFree() *pfBlock {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return p.newBlock()
}

// drainLocked absorbs the in-flight read, recycling its buffer. Called
// with p.mu held; blocks until the reader goroutine finishes its decode
// (an in-flight read is never torn, matching the PoolSource rule that
// in-range reads on an open source are expected to succeed).
func (p *PrefetchSource) drainLocked() {
	if !p.inflight {
		return
	}
	b := <-p.res
	p.inflight = false
	p.free = append(p.free[:len(p.free)], b)
}

// scheduleLocked starts the read-ahead of the window following [lo, hi)
// — same size, clamped to the pool — if there is anything left to read
// and an idle buffer to read it into. Called with p.mu held.
func (p *PrefetchSource) scheduleLocked(lo, hi int) {
	n := p.src.NumRows()
	if hi >= n || p.closed || p.ctx.Err() != nil || len(p.free) == 0 {
		return
	}
	next := min(hi+(hi-lo), n)
	b := p.takeFree()
	b.prep(hi, next, p.src.Dim())
	p.inflight, p.pendLo, p.pendHi = true, hi, next
	go b.run()
}

// errLocked wraps a failed read with the request window; the wrapped
// source's own context (shard path, live segment, tombstone run) rides
// the %w chain below it.
func (p *PrefetchSource) errLocked(lo, hi int, err error) error {
	return fmt.Errorf("dataset: prefetch rows [%d, %d): %w", lo, hi, err)
}

// lendLocked is the core block engine behind LendBlock and ReadRows:
// serve [lo, hi) from the completed read-ahead when it matches, read
// synchronously otherwise, and in either case start the next window's
// read-ahead before handing the block to the caller. Called with p.mu
// held; returns a block owned by the caller (tracked in p.lent).
//
//firal:hotpath
func (p *PrefetchSource) lendLocked(lo, hi int) (*pfBlock, error) {
	if p.closed {
		return nil, p.errLocked(lo, hi, errClosed)
	}
	if p.inflight && p.pendLo == lo && p.pendHi == hi {
		b := <-p.res
		p.inflight = false
		if b.err != nil {
			err := b.err
			p.free = append(p.free[:len(p.free)], b)
			return nil, p.errLocked(lo, hi, err)
		}
		p.hits++
		p.scheduleLocked(lo, hi)
		p.lent = append(p.lent[:len(p.lent)], b)
		return b, nil
	}
	// Miss: absorb whatever speculative read is in flight (its window is
	// not the one the consumer wants), decode synchronously, and restart
	// the pipeline from the requested position.
	p.drainLocked()
	b := p.takeFree()
	b.prep(lo, hi, p.src.Dim())
	if err := p.src.ReadRows(lo, hi, &b.m); err != nil {
		p.free = append(p.free[:len(p.free)], b)
		return nil, p.errLocked(lo, hi, err)
	}
	p.misses++
	p.scheduleLocked(lo, hi)
	p.lent = append(p.lent[:len(p.lent)], b)
	return b, nil
}

// LendBlock returns rows [lo, hi) in a prefetch-owned buffer, valid
// until ReturnBlock (see BlockLender for the ownership rules). A request
// matching the in-flight read-ahead costs one channel receive; anything
// else is read synchronously. Either way the following window's
// read-ahead is launched before LendBlock returns, so the decode of
// block k+1 runs under the caller's compute on block k.
func (p *PrefetchSource) LendBlock(lo, hi int) (*mat.Dense, error) {
	if lo < 0 || hi > p.src.NumRows() || lo >= hi {
		return nil, fmt.Errorf("dataset: LendBlock window [%d, %d) out of range [0, %d)", lo, hi, p.src.NumRows())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b, err := p.lendLocked(lo, hi)
	if err != nil {
		return nil, err
	}
	return &b.m, nil
}

// ReturnBlock gives a block obtained from LendBlock back to the buffer
// pool, freeing it for the next read-ahead.
func (p *PrefetchSource) ReturnBlock(m *mat.Dense) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, b := range p.lent {
		if &b.m == m {
			copy(p.lent[i:], p.lent[i+1:])
			p.lent = p.lent[:len(p.lent)-1]
			p.free = append(p.free[:len(p.free)], b)
			return
		}
	}
	panic("dataset: ReturnBlock of a block this PrefetchSource did not lend")
}

// ReadRows copies rows [lo, hi) into dst. Block-sized windows flow
// through the prefetch machinery (one extra memcpy from the prefetch
// buffer — cheap against the float32 decode it hides); single-row reads
// pass straight through so per-point fetches (the ROUND winner's
// feature row) never perturb the sweep pipeline.
func (p *PrefetchSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(p, lo, hi, dst); err != nil {
		return err
	}
	if hi-lo <= 1 {
		return p.src.ReadRows(lo, hi, dst)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b, err := p.lendLocked(lo, hi)
	if err != nil {
		return err
	}
	for i := 0; i < b.m.Rows; i++ {
		copy(dst.Row(i), b.m.Row(i))
	}
	p.free = append(p.free[:len(p.free)], p.lent[len(p.lent)-1])
	p.lent = p.lent[:len(p.lent)-1]
	return nil
}

// errClosed reports reads on a closed prefetch layer.
var errClosed = fmt.Errorf("source is closed")

// Close drains any in-flight read (the reader goroutine finishes its
// decode and exits; nothing is torn mid-read) and closes the wrapped
// source. Safe to call more than once.
func (p *PrefetchSource) Close() error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.drainLocked()
	p.mu.Unlock()
	if already {
		return nil
	}
	return p.src.Close()
}
