package dataset

// Table V of the paper: the seven active-learning test configurations.
// Sizes are the paper's; use Config.Scale for CPU-sized runs.

// MNIST: balanced, 10 classes, spectral embedding of dimension 20.
func MNIST() Config {
	return Config{Name: "MNIST", Classes: 10, Dim: 20, InitPerClass: 1,
		PoolSize: 3000, EvalSize: 60000, Rounds: 3, Budget: 10}
}

// CIFAR10: balanced, SimCLR+spectral embedding of dimension 20.
func CIFAR10() Config {
	return Config{Name: "CIFAR-10", Classes: 10, Dim: 20, InitPerClass: 1,
		PoolSize: 3000, EvalSize: 50000, Rounds: 3, Budget: 10}
}

// ImbCIFAR10: CIFAR-10 with a 10:1 max class-size ratio in the pool.
func ImbCIFAR10() Config {
	c := CIFAR10()
	c.Name = "imb-CIFAR-10"
	c.ImbalanceRatio = 10
	return c
}

// ImageNet50: 50 random ImageNet classes, DINOv2 features (d = 50).
func ImageNet50() Config {
	return Config{Name: "ImageNet-50", Classes: 50, Dim: 50, InitPerClass: 1,
		PoolSize: 5000, EvalSize: 64273, Rounds: 6, Budget: 50}
}

// ImbImageNet50: ImageNet-50 with an 8:1 max class-size ratio.
func ImbImageNet50() Config {
	c := ImageNet50()
	c.Name = "imb-ImageNet-50"
	c.ImbalanceRatio = 8
	return c
}

// Caltech101: imbalanced (10:1), 101 classes, DINOv2 features (d = 100).
func Caltech101() Config {
	return Config{Name: "Caltech-101", Classes: 101, Dim: 100, InitPerClass: 1,
		PoolSize: 1715, EvalSize: 8677, Rounds: 6, Budget: 101,
		ImbalanceRatio: 10}
}

// ImageNet1k: balanced, 1000 classes, DINOv2 features (d = 383), two
// initial labels per class.
func ImageNet1k() Config {
	return Config{Name: "ImageNet-1k", Classes: 1000, Dim: 383, InitPerClass: 2,
		PoolSize: 50000, EvalSize: 1281167, Rounds: 5, Budget: 200}
}

// TableV returns all seven configurations in paper order.
func TableV() []Config {
	return []Config{
		MNIST(), CIFAR10(), ImbCIFAR10(),
		ImageNet50(), ImbImageNet50(),
		Caltech101(), ImageNet1k(),
	}
}

// ExtendedCIFAR10 is the strong-scaling pool of § IV-C ❷: CIFAR-10
// features (d = 512, c = 10) extended with random noise to n points
// (3 million in the paper).
func ExtendedCIFAR10(n int) Config {
	return Config{Name: "extended CIFAR-10", Classes: 10, Dim: 512,
		InitPerClass: 1, PoolSize: n, EvalSize: 10, Rounds: 1, Budget: 10,
		Noise: 0.6}
}

// ScalingImageNet1k is the strong-scaling pool of § IV-C ❶: ImageNet-1k
// features (d = 383, c = 1000) with n pool points (1.3 million in the
// paper).
func ScalingImageNet1k(n int) Config {
	return Config{Name: "ImageNet-1k (scaling)", Classes: 1000, Dim: 383,
		InitPerClass: 1, PoolSize: n, EvalSize: 1000, Rounds: 1, Budget: 10}
}
