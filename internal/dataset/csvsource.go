package dataset

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/mat"
)

// NoLabelColumn tells NewCSVSource the file holds features only.
const NoLabelColumn = -2

// CSVSource serves a numeric CSV file (one point per row, optional header,
// optionally one integer label column) as a PoolSource. Opening performs
// one full validation pass that records a byte offset per row and parses
// the labels, so the resident footprint is O(n) small integers while the
// O(n·d) features stay on disk; ReadRows then seeks straight to the
// requested window and parses only those lines. Unlike the zero-alloc
// shard path this is a convenience format — packing a CSV into a shard
// file (see ShardWriter) is the production route for repeated sweeps.
type CSVSource struct {
	f         *os.File
	d         int
	labelCol  int // column index in the file; NoLabelColumn when absent
	offsets   []int64
	labels    []int
	sawHeader bool
}

// NewCSVSource opens and validates path. labelCol selects the label
// column: −1 means the last column, NoLabelColumn means the file is
// features only (other negative values are rejected — csvdata.Load
// historically treats every negative as "last column", and silently
// packing the label as a feature under -2 would corrupt shards). A
// non-numeric first row is treated as a header.
func NewCSVSource(path string, labelCol int) (*CSVSource, error) {
	if labelCol < 0 && labelCol != -1 && labelCol != NoLabelColumn {
		return nil, fmt.Errorf("dataset: label column %d invalid (use ≥ 0, -1 for last, or NoLabelColumn)", labelCol)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src := &CSVSource{f: f, labelCol: labelCol}
	if err := src.index(path); err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

// index scans the file once: validates every cell, records row offsets,
// and collects labels.
func (s *CSVSource) index(path string) error {
	r := bufio.NewReaderSize(s.f, 1<<20)
	var off int64
	lineNo := 0
	for {
		line, err := r.ReadString('\n')
		if line == "" && err != nil {
			break
		}
		lineNo++
		start := off
		off += int64(len(line))
		trimmed := strings.TrimRight(line, "\r\n")
		if strings.TrimSpace(trimmed) == "" {
			if err != nil {
				break
			}
			continue
		}
		fields := strings.Split(trimmed, ",")
		// Header: the first non-blank line, when non-numeric (keyed on "no
		// data rows seen yet", not the physical line number, so leading
		// blank lines don't demote the header to a parse error — matching
		// encoding/csv's blank-line handling in csvdata.Load).
		if s.offsets == nil && !s.sawHeader && !numericFields(fields) {
			s.sawHeader = true
			if err != nil {
				break
			}
			continue
		}
		label, width, perr := s.parseRow(fields, nil)
		if perr != nil {
			return fmt.Errorf("dataset: %s: row %d: %w", path, lineNo, perr)
		}
		if s.offsets == nil {
			s.d = width
		} else if width != s.d {
			return fmt.Errorf("dataset: %s: row %d has %d features, want %d", path, lineNo, width, s.d)
		}
		s.offsets = append(s.offsets, start)
		if s.labelCol != NoLabelColumn {
			s.labels = append(s.labels, label)
		}
		if err != nil {
			break
		}
	}
	if len(s.offsets) == 0 {
		return fmt.Errorf("dataset: %s: no data rows", path)
	}
	s.offsets = append(s.offsets, off) // end sentinel
	return nil
}

// parseRow validates one line's cells, returning its label and feature
// width; when dst is non-nil the features are stored into it.
func (s *CSVSource) parseRow(fields []string, dst []float64) (label, width int, err error) {
	lc := s.labelCol
	if lc == -1 {
		lc = len(fields) - 1
	}
	if lc != NoLabelColumn && (lc < 0 || lc >= len(fields)) {
		return 0, 0, fmt.Errorf("label column %d out of range (width %d)", s.labelCol, len(fields))
	}
	for col, cell := range fields {
		cell = strings.TrimSpace(cell)
		if col == lc {
			v, perr := strconv.Atoi(cell)
			if perr != nil || v < 0 {
				return 0, 0, fmt.Errorf("label %q is not a non-negative integer", cell)
			}
			label = v
			continue
		}
		v, perr := strconv.ParseFloat(cell, 64)
		if perr != nil {
			return 0, 0, fmt.Errorf("column %d: %q is not numeric", col+1, cell)
		}
		if dst != nil {
			dst[width] = v
		}
		width++
	}
	if width == 0 {
		return 0, 0, fmt.Errorf("no feature columns")
	}
	return label, width, nil
}

func numericFields(fields []string) bool {
	for _, cell := range fields {
		if _, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err != nil {
			return false
		}
	}
	return true
}

// NumRows returns the number of data rows.
func (s *CSVSource) NumRows() int { return len(s.offsets) - 1 }

// Dim returns the feature dimension (label column excluded).
func (s *CSVSource) Dim() int { return s.d }

// Labels returns the parsed label column (nil when opened with
// NoLabelColumn). The slice is owned by the source.
func (s *CSVSource) Labels() []int { return s.labels }

// ReadRows parses rows [lo, hi) into dst.
func (s *CSVSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(s, lo, hi, dst); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	raw := make([]byte, s.offsets[hi]-s.offsets[lo])
	if _, err := s.f.ReadAt(raw, s.offsets[lo]); err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		line := string(raw[s.offsets[i]-s.offsets[lo] : s.offsets[i+1]-s.offsets[lo]])
		fields := strings.Split(strings.TrimRight(line, "\r\n"), ",")
		if _, _, err := s.parseRow(fields, dst.Row(i-lo)); err != nil {
			return fmt.Errorf("dataset: row %d: %w", i+1, err)
		}
	}
	return nil
}

// Close closes the underlying file.
func (s *CSVSource) Close() error { return s.f.Close() }
