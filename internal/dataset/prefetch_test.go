package dataset

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
)

// prefetchTestSources builds the source compositions the prefetch layer
// must be bit-transparent over: multi-file shard sets (seams inside
// blocks), Subrange views (offset windows), LiveSource segment routing,
// and TombstoneView run edges. Each returns a fresh source plus its
// cleanup; values are deterministic and distinct per row so a misrouted
// or stale block cannot collide with the expected bytes.
func prefetchTestSources(t *testing.T) map[string]func() (PoolSource, func()) {
	t.Helper()
	const d = 5
	dir := t.TempDir()
	var paths []string
	rowBase := 0
	for i, rows := range []int{37, 64, 29} { // seams at 37 and 101, ragged tail
		path := filepath.Join(dir, fmt.Sprintf("p%d.shard", i))
		w, err := CreateShard(path, d)
		if err != nil {
			t.Fatal(err)
		}
		x := mat.NewDense(rows, d)
		for r := 0; r < rows; r++ {
			for j := 0; j < d; j++ {
				x.Row(r)[j] = float64((rowBase+r)*d + j)
			}
		}
		if err := w.AppendBlock(x); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rowBase += rows
		paths = append(paths, path)
	}
	openAll := func() *ShardSource {
		src, err := OpenShards(paths...)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	segMatrix := func(rows, base int) *mat.Dense {
		x := mat.NewDense(rows, d)
		for i := range x.Data {
			x.Data[i] = float64(base + i)
		}
		return x
	}
	return map[string]func() (PoolSource, func()){
		"shards": func() (PoolSource, func()) {
			src := openAll()
			return src, func() { src.Close() }
		},
		"subrange": func() (PoolSource, func()) {
			src := openAll()
			return Subrange(src, 17, 103), func() { src.Close() } // crosses both seams
		},
		"live": func() (PoolSource, func()) {
			live := NewLiveSource(NewMatrixSource(segMatrix(41, 0)))
			if _, err := live.Append(NewMatrixSource(segMatrix(23, 41*d))); err != nil {
				t.Fatal(err)
			}
			if _, err := live.Append(NewMatrixSource(segMatrix(58, 64*d))); err != nil {
				t.Fatal(err)
			}
			return live, func() { live.Close() }
		},
		"tombstone": func() (PoolSource, func()) {
			src := openAll()
			// Dead rows straddling a shard seam plus isolated holes: run
			// edges land mid-block for every test block size.
			view, err := NewTombstoneView(src, []int{0, 5, 6, 36, 37, 38, 70, 99, 100, 129})
			if err != nil {
				t.Fatal(err)
			}
			return view, func() { src.Close() }
		},
	}
}

// syncSweep reads the whole source block by block without prefetch — the
// oracle every prefetched access must match bit for bit.
func syncSweep(t *testing.T, src PoolSource, bs int) *mat.Dense {
	t.Helper()
	n, d := src.NumRows(), src.Dim()
	out := mat.NewDense(n, d)
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		if err := src.ReadRows(lo, hi, out.RowSlice(lo, hi)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// requireBitIdentical compares a served block against the oracle rows
// [lo, hi) at float64 bit granularity.
func requireBitIdentical(t *testing.T, oracle *mat.Dense, b *mat.Dense, lo int, label string) {
	t.Helper()
	for i := 0; i < b.Rows; i++ {
		got, want := b.Row(i), oracle.Row(lo+i)
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("%s: row %d col %d = %g (bits %x), oracle %g (bits %x)",
					label, lo+i, j, got[j], math.Float64bits(got[j]), want[j], math.Float64bits(want[j]))
			}
		}
	}
}

// TestPrefetchBitIdentical is the transparency property test: across
// every source composition and ragged block sizes (seams, run edges, and
// tails all land mid-pipeline), both access styles of a PrefetchSource —
// the zero-copy LendBlock handoff and the copying ReadRows — serve
// exactly the synchronous sweep's bytes, over repeated sweeps.
func TestPrefetchBitIdentical(t *testing.T) {
	for name, make := range prefetchTestSources(t) {
		t.Run(name, func(t *testing.T) {
			for _, bs := range []int{7, 16, 33, 60} {
				// Fresh source per block size: Close on the wrapper below
				// closes the wrapped source (the prefetcher owns it).
				src, done := make()
				oracle := syncSweep(t, src, bs)
				p := NewPrefetchSource(context.Background(), src, bs)
				n := src.NumRows()
				for sweep := 0; sweep < 2; sweep++ {
					for lo := 0; lo < n; lo += bs {
						hi := min(lo+bs, n)
						b, err := p.LendBlock(lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						requireBitIdentical(t, oracle, b, lo, fmt.Sprintf("bs=%d sweep=%d lend", bs, sweep))
						p.ReturnBlock(b)
					}
				}
				// The forward-sweep prediction must actually hit: each lend
				// sweep pays exactly one synchronous read (its first block).
				hits, misses := p.Stats()
				blocks := int64((n + bs - 1) / bs)
				if misses != 2 || hits != 2*(blocks-1) {
					t.Fatalf("bs=%d: %d hits / %d misses over 2 sweeps of %d blocks; want %d / 2",
						bs, hits, misses, blocks, 2*(blocks-1))
				}
				dst := mat.NewDense(min(bs, n), src.Dim())
				for lo := 0; lo < n; lo += bs {
					hi := min(lo+bs, n)
					d := dst.RowSlice(0, hi-lo)
					if err := p.ReadRows(lo, hi, d); err != nil {
						t.Fatal(err)
					}
					requireBitIdentical(t, oracle, d, lo, fmt.Sprintf("bs=%d readrows", bs))
				}
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
				done()
			}
		})
	}
}

// TestPrefetchArbitraryAccess pins graceful degradation: requests that
// break the forward-sweep pattern (repeats, backward jumps, misaligned
// windows) still serve exact bytes — they just read synchronously.
func TestPrefetchArbitraryAccess(t *testing.T) {
	src, done := prefetchTestSources(t)["shards"]()
	defer done()
	oracle := syncSweep(t, src, 16)
	p := NewPrefetchSource(context.Background(), src, 16)
	defer p.Close()
	windows := [][2]int{{0, 16}, {16, 32}, {16, 32}, {5, 45}, {100, 130}, {0, 130}, {64, 80}, {80, 96}}
	for _, w := range windows {
		b, err := p.LendBlock(w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, oracle, b, w[0], fmt.Sprintf("window [%d,%d)", w[0], w[1]))
		p.ReturnBlock(b)
	}
	// The final pair [64,80) [80,96) is forward-sweep shaped again: the
	// pipeline must recover and hit after any amount of random access.
	if hits, _ := p.Stats(); hits == 0 {
		t.Fatal("pipeline did not recover a hit after random access")
	}
}

// TestPrefetchSingleRowPassthrough pins that per-point fetches (the ROUND
// winner's feature row mid-sweep) bypass the pipeline entirely: they
// neither drain the in-flight read nor count as hits or misses, so the
// sweep they interrupt keeps its overlap.
func TestPrefetchSingleRowPassthrough(t *testing.T) {
	src, done := prefetchTestSources(t)["shards"]()
	defer done()
	oracle := syncSweep(t, src, 16)
	p := NewPrefetchSource(context.Background(), src, 16)
	defer p.Close()
	b, err := p.LendBlock(0, 16) // miss; schedules [16, 32)
	if err != nil {
		t.Fatal(err)
	}
	p.ReturnBlock(b)
	row := mat.NewDense(1, src.Dim())
	if err := p.ReadRows(77, 78, row); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, oracle, row, 77, "single row")
	if b, err = p.LendBlock(16, 32); err != nil {
		t.Fatal(err)
	}
	p.ReturnBlock(b)
	if hits, misses := p.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("single-row read perturbed the pipeline: %d hits / %d misses, want 1 / 1", hits, misses)
	}
}

// TestWithPrefetch pins the composition hook's skip decisions: resident
// sources (no decode to hide) and single-block pools (nothing to read
// ahead) pass through unchanged; a multi-block streaming source gets
// wrapped.
func TestWithPrefetch(t *testing.T) {
	resident := NewMatrixSource(mat.NewDense(10000, 3))
	if got := WithPrefetch(context.Background(), resident, 64); got != PoolSource(resident) {
		t.Fatalf("WithPrefetch wrapped a Resident source: %T", got)
	}
	src, done := prefetchTestSources(t)["shards"]()
	defer done()
	if got := WithPrefetch(context.Background(), src, 1024); got != PoolSource(src) {
		t.Fatalf("WithPrefetch wrapped a single-block pool (n=%d ≤ blockRows=1024): %T", src.NumRows(), got)
	}
	got := WithPrefetch(context.Background(), src, 16)
	p, ok := got.(*PrefetchSource)
	if !ok {
		t.Fatalf("WithPrefetch returned %T for a multi-block streaming source, want *PrefetchSource", got)
	}
	p.Close()
}

// TestPrefetchGenerationPinning pins the growable-source interaction:
// the wrapper forwards Generation, so Subrange over a prefetched live
// pool refuses the identity shortcut and the pinned window ignores rows
// appended after the view was taken.
func TestPrefetchGenerationPinning(t *testing.T) {
	live := NewLiveSource(NewMatrixSource(mat.NewDense(40, 2)))
	defer live.Close()
	p := NewPrefetchSource(context.Background(), live, 8)
	if p.Generation() != 0 {
		t.Fatalf("fresh live pool at generation %d through the wrapper", p.Generation())
	}
	view := Subrange(p, 0, 40)
	if view == PoolSource(p) {
		t.Fatal("Subrange identity-shortcut a view over a growable source")
	}
	if _, err := live.Append(NewMatrixSource(mat.NewDense(20, 2))); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 1 {
		t.Fatalf("append not visible through the wrapper: generation %d", p.Generation())
	}
	if view.NumRows() != 40 {
		t.Fatalf("pinned view grew to %d rows after append", view.NumRows())
	}
}

// TestCountingSourceGenerationPinning is the regression for the wrapped-
// but-hidden optional interface: CountingSource must forward Generation
// so Subrange(counting-over-live, 0, n) stays pinned — before the fix the
// identity shortcut handed back the raw counting source and the "pinned"
// view tracked later appends.
func TestCountingSourceGenerationPinning(t *testing.T) {
	live := NewLiveSource(NewMatrixSource(mat.NewDense(30, 2)))
	defer live.Close()
	counting := NewCountingSource(live)
	view := Subrange(counting, 0, 30)
	if view == PoolSource(counting) {
		t.Fatal("Subrange identity-shortcut a counted growable source")
	}
	if _, err := live.Append(NewMatrixSource(mat.NewDense(12, 2))); err != nil {
		t.Fatal(err)
	}
	if counting.Generation() != 1 {
		t.Fatalf("CountingSource hides the generation: %d, want 1", counting.Generation())
	}
	if view.NumRows() != 30 {
		t.Fatalf("pinned view over a counted live pool grew to %d rows", view.NumRows())
	}
	// Fixed sources report generation 0 — the forward is unconditional.
	fixed := NewCountingSource(NewMatrixSource(mat.NewDense(5, 2)))
	if fixed.Generation() != 0 {
		t.Fatalf("fixed counted source at generation %d", fixed.Generation())
	}
}

// faultSource serves deterministic rows until failAt, then fails with a
// shard-style path-carrying error chain.
type faultSource struct {
	n, d   int
	failAt int
	cause  error
}

func (f *faultSource) NumRows() int { return f.n }
func (f *faultSource) Dim() int     { return f.d }
func (f *faultSource) Close() error { return nil }
func (f *faultSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(f, lo, hi, dst); err != nil {
		return err
	}
	if hi > f.failAt {
		return fmt.Errorf("dataset: shard /pool/p0.shard: %w", f.cause)
	}
	for i := lo; i < hi; i++ {
		for j := 0; j < f.d; j++ {
			dst.Row(i - lo)[j] = float64(i*f.d + j)
		}
	}
	return nil
}

// TestPrefetchErrorPropagation pins read-failure semantics: an error hit
// by the asynchronous read surfaces on the request that consumes it,
// wrapped with the prefetch window while preserving the source's own
// chain (the shard path and the typed cause stay reachable), and the
// source remains usable for windows that still succeed.
func TestPrefetchErrorPropagation(t *testing.T) {
	cause := errors.New("input/output error")
	src := &faultSource{n: 100, d: 3, failAt: 64, cause: cause}
	p := NewPrefetchSource(context.Background(), src, 32)
	defer p.Close()
	b, err := p.LendBlock(0, 32) // schedules [32, 64) — still readable
	if err != nil {
		t.Fatal(err)
	}
	p.ReturnBlock(b)
	if b, err = p.LendBlock(32, 64); err != nil { // schedules [64, 96) — fails async
		t.Fatal(err)
	}
	p.ReturnBlock(b)
	_, err = p.LendBlock(64, 96)
	if err == nil {
		t.Fatal("prefetched read past failAt succeeded")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("typed cause lost through the prefetch wrap: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"prefetch rows [64, 96)", "/pool/p0.shard"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// A failed window must not poison the pipeline: earlier rows still
	// serve, and the freed buffer is reusable.
	if b, err = p.LendBlock(0, 32); err != nil {
		t.Fatalf("source unusable after an async read error: %v", err)
	}
	p.ReturnBlock(b)
	// The same failure surfaces on the copying path too.
	dst := mat.NewDense(32, 3)
	if err := p.ReadRows(64, 96, dst); err == nil || !errors.Is(err, cause) {
		t.Fatalf("ReadRows past failAt: %v, want the wrapped cause", err)
	}
}

// slowSource delays each read so cancellation tests reliably catch a
// read in flight.
type slowSource struct {
	MatrixSource
	delay time.Duration
}

func (s *slowSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	time.Sleep(s.delay)
	return s.MatrixSource.ReadRows(lo, hi, dst)
}

func newSlowSource(n, d int, delay time.Duration) *slowSource {
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	return &slowSource{MatrixSource: *NewMatrixSource(x), delay: delay}
}

// settleGoroutines polls until the goroutine count returns to base (the
// TestNoGoroutineLeak pattern: prefetch readers exit on their own — a
// buffered send is their only obligation — but need a moment to unwind).
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPrefetchCancelAndCloseNoLeak pins the lifecycle contract under
// mid-sweep teardown: cancelling the construction context stops the
// read-ahead but NOT the demand reads — the solvers panic on mid-sweep
// read failures and exit cancelled sweeps at their own ctx polls, so
// cancellation must never masquerade as a read error — mid-sweep Close
// drains the in-flight decode deterministically, and neither path — nor
// an abandoned source with a read still in flight — leaves a reader
// goroutine behind.
func TestPrefetchCancelAndCloseNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	t.Run("ctx-cancel mid-sweep", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		src := newSlowSource(200, 4, 2*time.Millisecond)
		p := NewPrefetchSource(ctx, src, 32)
		b, err := p.LendBlock(0, 32) // read of [32, 64) now in flight
		if err != nil {
			t.Fatal(err)
		}
		p.ReturnBlock(b)
		cancel()
		// The sweep keeps reading correct data after the cancel (the
		// in-flight [32, 64) result may still be served)...
		oracle := mat.NewDense(200, 4)
		for i := range oracle.Data {
			oracle.Data[i] = float64(i)
		}
		for lo := 32; lo < 200; lo += 32 {
			hi := lo + 32
			if hi > 200 {
				hi = 200
			}
			b, err := p.LendBlock(lo, hi)
			if err != nil {
				t.Fatalf("LendBlock [%d, %d) after cancel: %v — cancellation must not fail demand reads", lo, hi, err)
			}
			requireBitIdentical(t, oracle, b, lo, "post-cancel block")
			p.ReturnBlock(b)
		}
		// ...but no new read-ahead is scheduled once the in-flight one
		// drains: everything past the cancel (after the possible single
		// pre-cancel hit) is a synchronous miss.
		if hits, misses := p.Stats(); hits+misses != 7 || hits > 2 {
			t.Fatalf("post-cancel sweep scored %d hits / %d misses; read-ahead should have stopped", hits, misses)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("close mid-sweep", func(t *testing.T) {
		src := newSlowSource(200, 4, 2*time.Millisecond)
		p := NewPrefetchSource(context.Background(), src, 32)
		b, err := p.LendBlock(0, 32)
		if err != nil {
			t.Fatal(err)
		}
		p.ReturnBlock(b)
		if err := p.Close(); err != nil { // drains the [32, 64) read
			t.Fatal(err)
		}
		if _, err := p.LendBlock(32, 64); err == nil {
			t.Fatal("LendBlock succeeded on a closed source")
		}
		if err := p.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})

	t.Run("abandoned mid-flight", func(t *testing.T) {
		// No Close at all: the reader's buffered send lets it exit anyway.
		src := newSlowSource(200, 4, 2*time.Millisecond)
		p := NewPrefetchSource(context.Background(), src, 32)
		if b, err := p.LendBlock(0, 32); err != nil {
			t.Fatal(err)
		} else {
			p.ReturnBlock(b)
		}
	})

	settleGoroutines(t, base)
}

// TestPrefetchLiveAppendStress is the -race stress test for the
// growable-pool composition: a prefetched sweep over a pinned
// Subrange(live, 0, n) view runs while appenders grow the pool
// underneath. Every block served must match the pre-append oracle — the
// LiveSource snapshots its segment list per read, the view pins [0, n),
// and the prefetch layer must preserve both through its asynchronous
// reads.
func TestPrefetchLiveAppendStress(t *testing.T) {
	const n, d, bs = 160, 3, 16
	seg := mat.NewDense(n, d)
	for i := range seg.Data {
		seg.Data[i] = float64(i)
	}
	live := NewLiveSource(NewMatrixSource(seg))
	defer live.Close()
	pinned := Subrange(live, 0, n)
	oracle := syncSweep(t, pinned, bs)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := live.Append(NewMatrixSource(mat.NewDense(7, d))); err != nil {
				t.Error(err)
				return
			}
			if i%4 == 0 {
				runtime.Gosched()
			}
		}
	}()

	p := NewPrefetchSource(context.Background(), pinned, bs)
	for sweep := 0; sweep < 20; sweep++ {
		for lo := 0; lo < n; lo += bs {
			hi := min(lo+bs, n)
			b, err := p.LendBlock(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, oracle, b, lo, fmt.Sprintf("sweep %d under append", sweep))
			p.ReturnBlock(b)
		}
	}
	close(stop)
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchConcurrentReadersStress pins the PoolSource concurrency
// clause under -race: ReadRows through one shared PrefetchSource from
// several goroutines (each with a private dst) stays correct — the
// pipeline serializes internally and interleaved sweeps may miss, but
// bytes are exact.
func TestPrefetchConcurrentReadersStress(t *testing.T) {
	src, done := prefetchTestSources(t)["shards"]()
	defer done()
	const bs = 16
	oracle := syncSweep(t, src, bs)
	p := NewPrefetchSource(context.Background(), src, bs)
	defer p.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := src.NumRows()
			dst := mat.NewDense(bs, src.Dim())
			for sweep := 0; sweep < 10; sweep++ {
				for lo := 0; lo < n; lo += bs {
					hi := min(lo+bs, n)
					d := dst.RowSlice(0, hi-lo)
					if err := p.ReadRows(lo, hi, d); err != nil {
						errc <- err
						return
					}
					for i := 0; i < d.Rows; i++ {
						for j := range d.Row(i) {
							if math.Float64bits(d.Row(i)[j]) != math.Float64bits(oracle.Row(lo + i)[j]) {
								errc <- fmt.Errorf("row %d col %d corrupted under concurrency", lo+i, j)
								return
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestPrefetchSweepZeroAllocWarm pins the steady-state allocation
// contract of the lend path: once the two pooled buffers are sized, a
// full prefetched sweep — lend, return, and the asynchronous read-ahead
// spawns — allocates nothing per operation. Named *Alloc* for the CI
// alloc-multicore job.
func TestPrefetchSweepZeroAllocWarm(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const n, d, bs = 4096, 8, 256
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	// MatrixSource.ReadRows is a pure copy, so every remaining allocation
	// is the prefetch machinery's own.
	p := NewPrefetchSource(context.Background(), NewMatrixSource(x), bs)
	defer p.Close()
	sweep := func() {
		for lo := 0; lo < n; lo += bs {
			b, err := p.LendBlock(lo, lo+bs)
			if err != nil {
				t.Fatal(err)
			}
			p.ReturnBlock(b)
		}
	}
	sweep() // size the double buffer
	if allocs := testing.AllocsPerRun(50, sweep); allocs != 0 {
		t.Fatalf("warm prefetched sweep allocates %.1f objects per sweep", allocs)
	}
}
