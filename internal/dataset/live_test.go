package dataset

import (
	"path/filepath"
	"testing"

	"repro/internal/mat"
)

func denseRows(n, d int, base float64) *mat.Dense {
	x := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, base+float64(i*d+j))
		}
	}
	return x
}

// TestLiveSourceAppendVisible pins the delta contract: rows appended to a
// live pool become visible to an already-open reader without reopening,
// existing row indices never move, and the generation counter ticks once
// per append.
func TestLiveSourceAppendVisible(t *testing.T) {
	const d = 3
	base := denseRows(4, d, 0)
	live := NewLiveSource(NewMatrixSource(base))
	if live.NumRows() != 4 || live.Dim() != d {
		t.Fatalf("fresh live pool is %d×%d, want 4×%d", live.NumRows(), live.Dim(), d)
	}
	if live.Generation() != 0 {
		t.Fatalf("fresh live pool at generation %d, want 0", live.Generation())
	}

	gen, err := live.Append(NewMatrixSource(denseRows(3, d, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || live.Generation() != 1 {
		t.Fatalf("after one append: gen=%d Generation()=%d, want 1", gen, live.Generation())
	}
	if live.NumRows() != 7 {
		t.Fatalf("after append: %d rows, want 7", live.NumRows())
	}

	// A window crossing the segment seam sees base rows then appended rows.
	got := mat.NewDense(4, d)
	if err := live.ReadRows(2, 6, got); err != nil {
		t.Fatal(err)
	}
	want := []float64{2 * d, 3 * d, 100, 100 + d}
	for r, w := range want {
		if got.At(r, 0) != w {
			t.Fatalf("row %d col 0 = %g, want %g", r, got.At(r, 0), w)
		}
	}

	// Dimension mismatches are refused without mutating the pool.
	if _, err := live.Append(NewMatrixSource(denseRows(2, d+1, 0))); err == nil {
		t.Fatal("appending a mismatched-dimension segment succeeded")
	}
	if live.NumRows() != 7 || live.Generation() != 1 {
		t.Fatalf("failed append mutated the pool: %d rows gen %d", live.NumRows(), live.Generation())
	}
}

// TestLiveSourceSubrangePins verifies the session idiom: a solver that
// needs a fixed n for one round wraps the live pool in Subrange and keeps
// seeing exactly those rows while appends land.
func TestLiveSourceSubrangePins(t *testing.T) {
	const d = 2
	live := NewLiveSource(NewMatrixSource(denseRows(5, d, 0)))
	pinned := Subrange(live, 0, 5)
	if _, err := live.Append(NewMatrixSource(denseRows(4, d, 500))); err != nil {
		t.Fatal(err)
	}
	if pinned.NumRows() != 5 {
		t.Fatalf("pinned view grew to %d rows", pinned.NumRows())
	}
	if live.NumRows() != 9 {
		t.Fatalf("live pool has %d rows, want 9", live.NumRows())
	}
	got := mat.NewDense(5, d)
	if err := pinned.ReadRows(0, 5, got); err != nil {
		t.Fatal(err)
	}
	if got.At(4, 0) != 4*d {
		t.Fatalf("pinned row 4 = %g, want %g", got.At(4, 0), float64(4*d))
	}
}

// TestLiveSourceOverShards drives the live layer over real shard files —
// the service configuration, where appends are freshly packed shards.
func TestLiveSourceOverShards(t *testing.T) {
	const d = 4
	dir := t.TempDir()
	write := func(name string, x *mat.Dense) string {
		path := filepath.Join(dir, name)
		w, err := CreateShard(path, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBlock(x); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base, err := OpenShards(write("base.shard", denseRows(6, d, 0)))
	if err != nil {
		t.Fatal(err)
	}
	live := NewLiveSource(base)
	defer live.Close()
	delta, err := OpenShards(write("delta.shard", denseRows(2, d, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Append(delta); err != nil {
		t.Fatal(err)
	}
	got := mat.NewDense(3, d)
	if err := live.ReadRows(5, 8, got); err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 5*d || got.At(1, 0) != 1000 || got.At(2, 0) != 1000+d {
		t.Fatalf("seam read = %g %g %g", got.At(0, 0), got.At(1, 0), got.At(2, 0))
	}
}
