package dataset

import (
	"path/filepath"
	"testing"

	"repro/internal/mat"
	"repro/internal/rnd"
)

// compactOracle materializes the surviving rows of src the slow, obvious
// way: copy everything, drop the dead rows.
func compactOracle(t *testing.T, src PoolSource, dead []int) (*mat.Dense, []int) {
	t.Helper()
	n, d := src.NumRows(), src.Dim()
	all := mat.NewDense(n, d)
	if err := src.ReadRows(0, n, all); err != nil {
		t.Fatal(err)
	}
	isDead := make([]bool, n)
	for _, i := range dead {
		isDead[i] = true
	}
	var keep []int
	for i := 0; i < n; i++ {
		if !isDead[i] {
			keep = append(keep, i)
		}
	}
	out := mat.NewDense(len(keep), d)
	for r, i := range keep {
		copy(out.Row(r), all.Row(i))
	}
	return out, keep
}

// TestTombstoneViewMatchesCompactedCopy is the streaming-vs-oracle
// property test: every ragged block boundary of the view must serve
// exactly the rows a compacted copy holds, and OriginalIndex must invert
// the compaction.
func TestTombstoneViewMatchesCompactedCopy(t *testing.T) {
	const n, d = 137, 5
	x := denseRows(n, d, 0)
	src := NewMatrixSource(x)
	rng := rnd.New(42)
	for _, deadFrac := range []float64{0, 0.1, 0.5, 0.93} {
		var dead []int
		for i := 0; i < n; i++ {
			if rng.Float64() < deadFrac {
				dead = append(dead, i)
			}
		}
		// Duplicates must be tolerated (overlapping round tombstones).
		dead = append(dead, dead...)
		view, err := NewTombstoneView(src, dead)
		if err != nil {
			t.Fatal(err)
		}
		oracle, keep := compactOracle(t, src, dead)
		if view.NumRows() != oracle.Rows {
			t.Fatalf("deadFrac=%g: view has %d rows, oracle %d", deadFrac, view.NumRows(), oracle.Rows)
		}
		// Ragged, prime-sized, and full-window blocks.
		for _, bs := range []int{1, 7, 32, view.NumRows()} {
			if bs == 0 {
				continue
			}
			got := mat.NewDense(bs, d)
			for lo := 0; lo < view.NumRows(); lo += bs {
				hi := min(lo+bs, view.NumRows())
				blk := got.RowSlice(0, hi-lo)
				if err := view.ReadRows(lo, hi, blk); err != nil {
					t.Fatal(err)
				}
				for r := 0; r < hi-lo; r++ {
					for j := 0; j < d; j++ {
						if blk.At(r, j) != oracle.At(lo+r, j) {
							t.Fatalf("deadFrac=%g bs=%d: view row %d col %d = %g, oracle %g",
								deadFrac, bs, lo+r, j, blk.At(r, j), oracle.At(lo+r, j))
						}
					}
				}
			}
		}
		for vi, orig := range keep {
			if got := view.OriginalIndex(vi); got != orig {
				t.Fatalf("deadFrac=%g: OriginalIndex(%d) = %d, want %d", deadFrac, vi, got, orig)
			}
		}
	}
}

// TestTombstoneViewAcrossShardSeams pins the layered case: a tombstone
// view over a multi-file ShardSource must stream surviving rows through
// windows that cross both run boundaries and shard seams.
func TestTombstoneViewAcrossShardSeams(t *testing.T) {
	const d = 3
	dir := t.TempDir()
	var paths []string
	rows := 0
	for s, cnt := range []int{11, 7, 19} {
		path := filepath.Join(dir, filepath.Base(dir)+string(rune('a'+s))+".shard")
		w, err := CreateShard(path, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBlock(denseRows(cnt, d, float64(rows*d))); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		rows += cnt
	}
	src, err := OpenShards(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Kill rows straddling both seams (10, 11 and 17, 18) plus scattered
	// singles, so runs and shard boundaries interleave.
	dead := []int{0, 5, 10, 11, 17, 18, 25, 36}
	view, err := NewTombstoneView(src, dead)
	if err != nil {
		t.Fatal(err)
	}
	oracle, keep := compactOracle(t, src, dead)
	for _, bs := range []int{4, 13, view.NumRows()} {
		got := mat.NewDense(bs, d)
		for lo := 0; lo < view.NumRows(); lo += bs {
			hi := min(lo+bs, view.NumRows())
			blk := got.RowSlice(0, hi-lo)
			if err := view.ReadRows(lo, hi, blk); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < hi-lo; r++ {
				if blk.At(r, 0) != oracle.At(lo+r, 0) {
					t.Fatalf("bs=%d: view row %d = %g, oracle %g (orig %d)",
						bs, lo+r, blk.At(r, 0), oracle.At(lo+r, 0), keep[lo+r])
				}
			}
		}
	}
}

// TestTombstoneViewValidation covers the error and edge contracts.
func TestTombstoneViewValidation(t *testing.T) {
	src := NewMatrixSource(denseRows(4, 2, 0))
	if _, err := NewTombstoneView(src, []int{4}); err == nil {
		t.Fatal("out-of-range tombstone accepted")
	}
	if _, err := NewTombstoneView(src, []int{-1}); err == nil {
		t.Fatal("negative tombstone accepted")
	}
	all, err := NewTombstoneView(src, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 0 {
		t.Fatalf("fully-tombstoned view has %d rows", all.NumRows())
	}
	none, err := NewTombstoneView(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if none.NumRows() != 4 || none.OriginalIndex(3) != 3 {
		t.Fatal("empty dead set must be the identity view")
	}
}
