// Package dataset generates the synthetic feature embeddings that stand in
// for the paper's datasets (Table V). The paper never feeds raw images to
// FIRAL: every dataset is first reduced to an (n, d) embedding with c
// classes by unsupervised feature extraction (spectral subspaces for
// MNIST/CIFAR-10, DINOv2 for Caltech-101/ImageNet), and FIRAL's theory
// assumes sub-Gaussian inputs. We therefore simulate each dataset as a
// sub-Gaussian class mixture with the same (n, d, c), the same
// labeled/pool/eval split sizes, the same imbalance ratios, and the same
// per-round budgets — preserving exactly the structure the selectors
// interact with. See DESIGN.md § 3 for the substitution argument.
//
// The package also defines the out-of-core pool abstraction the
// streaming solvers consume: PoolSource and its implementations
// (MatrixSource, ShardSource, CSVSource, LiveSource, plus the Subrange,
// TombstoneView, and CountingSource wrappers), and PrefetchSource /
// WithPrefetch, the async block read-ahead layer that overlaps shard
// decode with kernel compute. The streaming and prefetch contracts are
// specified in ARCHITECTURE.md § Contract 3.
package dataset

import (
	"math"

	"repro/internal/mat"
	"repro/internal/rnd"
)

// Config describes one active-learning dataset in the shape of Table V.
type Config struct {
	// Name identifies the dataset ("CIFAR-10", "imb-ImageNet-50", …).
	Name string
	// Classes (c) and Dim (d).
	Classes, Dim int
	// PoolSize is |Xu| and EvalSize the evaluation-set size.
	PoolSize, EvalSize int
	// InitPerClass is the number of initially labeled samples per class
	// (1 for most datasets, 2 for ImageNet-1k).
	InitPerClass int
	// Rounds and Budget are the active-learning schedule (budget points
	// per round).
	Rounds, Budget int
	// ImbalanceRatio is the max class-size ratio in the pool (1 =
	// balanced; 10 for imb-CIFAR-10/Caltech-101, 8 for imb-ImageNet-50).
	ImbalanceRatio float64
	// Separation scales class-mean distances; Noise is the within-class
	// standard deviation. Zero values take the defaults (1.0, 0.35) that
	// mimic good self-supervised embeddings.
	Separation, Noise float64
}

func (c Config) defaults() Config {
	if c.ImbalanceRatio <= 0 {
		c.ImbalanceRatio = 1
	}
	if c.Separation <= 0 {
		// Calibrated so the Random baseline lands in the paper's Fig. 2
		// accuracy bands (≈77% at 20 labels → ≈83% at 40 on CIFAR-10).
		c.Separation = 1.4
	}
	if c.Noise <= 0 {
		// Per-dimension noise. Within-class radius grows like σ·√d, so σ
		// shrinks as 1/√d beyond d = 20 to keep class overlap — and hence
		// the achievable accuracy band — comparable across the Table V
		// dimensions, as it is for the paper's real embeddings (good
		// self-supervised features have low intrinsic dimension
		// regardless of the ambient d).
		c.Noise = 0.35
		if c.Dim > 20 {
			c.Noise = 0.35 * math.Sqrt(20/float64(c.Dim))
		}
	}
	return c
}

// Scale returns a copy with pool and eval sizes multiplied by f (rounded,
// floored at one point per class), for CPU-sized runs of paper-scale
// configs.
func (c Config) Scale(f float64) Config {
	c.PoolSize = max(int(float64(c.PoolSize)*f), c.Classes)
	c.EvalSize = max(int(float64(c.EvalSize)*f), c.Classes)
	return c
}

// Dataset is a realized active-learning instance.
type Dataset struct {
	Config
	// LabeledX/LabeledY form the initial labeled set Xo.
	LabeledX *mat.Dense
	LabeledY []int
	// PoolX/PoolY form the unlabeled pool Xu (labels are hidden from the
	// selector and revealed when a point is "labeled").
	PoolX *mat.Dense
	PoolY []int
	// EvalX/EvalY form the held-out evaluation set.
	EvalX *mat.Dense
	EvalY []int
	// Means holds the class means actually used (Classes×Dim), kept for
	// diagnostics.
	Means *mat.Dense
}

// Generate realizes a Config as a synthetic embedding with the given seed.
func Generate(cfg Config, seed int64) *Dataset {
	cfg = cfg.defaults()
	rng := rnd.New(seed)
	c, d := cfg.Classes, cfg.Dim

	// Class means: random directions scaled so that neighbouring classes
	// overlap through the Noise level, plus per-class anisotropy factors
	// so clusters are not perfectly spherical.
	means := mat.NewDense(c, d)
	for k := 0; k < c; k++ {
		rng.UnitVector(means.Row(k))
		mat.Scal(cfg.Separation, means.Row(k))
	}
	aniso := make([]float64, c)
	for k := range aniso {
		aniso[k] = 0.75 + 0.5*rng.Float64()
	}

	sampleClass := func(x []float64, k int) {
		rng.Normal(x, 0, cfg.Noise*aniso[k])
		mat.Axpy(1, means.Row(k), x)
	}

	// Pool class counts: balanced, or geometric profile with the given
	// max ratio (largest class / smallest class).
	poolCounts := classCounts(cfg.PoolSize, c, cfg.ImbalanceRatio)
	evalCounts := classCounts(cfg.EvalSize, c, 1) // eval is the "whole training set": balanced

	ds := &Dataset{Config: cfg, Means: means}
	ds.PoolX, ds.PoolY = sampleSet(rng, poolCounts, d, sampleClass)
	ds.EvalX, ds.EvalY = sampleSet(rng, evalCounts, d, sampleClass)

	// Initial labeled set: InitPerClass per class.
	nInit := cfg.InitPerClass * c
	ds.LabeledX = mat.NewDense(nInit, d)
	ds.LabeledY = make([]int, nInit)
	for i := 0; i < nInit; i++ {
		k := i % c
		sampleClass(ds.LabeledX.Row(i), k)
		ds.LabeledY[i] = k
	}
	return ds
}

// classCounts splits total points over c classes; ratio is the
// largest/smallest class-size ratio (geometric profile when > 1).
func classCounts(total, c int, ratio float64) []int {
	weights := make([]float64, c)
	var sum float64
	for k := 0; k < c; k++ {
		if ratio <= 1 || c == 1 {
			weights[k] = 1
		} else {
			// w_k = ratio^{-k/(c-1)}: w_0/w_{c-1} = ratio.
			weights[k] = math.Pow(ratio, -float64(k)/float64(c-1))
		}
		sum += weights[k]
	}
	counts := make([]int, c)
	assigned := 0
	for k := 0; k < c; k++ {
		counts[k] = int(float64(total) * weights[k] / sum)
		if counts[k] < 1 {
			counts[k] = 1
		}
		assigned += counts[k]
	}
	// Fix rounding drift on the largest class.
	counts[0] += total - assigned
	if counts[0] < 1 {
		counts[0] = 1
	}
	return counts
}

// sampleSet draws points class-by-class and then applies a deterministic
// interleaving shuffle so class labels are not ordered.
func sampleSet(rng *rnd.Source, counts []int, d int, sample func(x []float64, k int)) (*mat.Dense, []int) {
	var total int
	for _, n := range counts {
		total += n
	}
	x := mat.NewDense(total, d)
	y := make([]int, total)
	i := 0
	for k, n := range counts {
		for j := 0; j < n; j++ {
			sample(x.Row(i), k)
			y[i] = k
			i++
		}
	}
	// Fisher–Yates shuffle of rows.
	for i := total - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		ri, rj := x.Row(i), x.Row(j)
		for t := range ri {
			ri[t], rj[t] = rj[t], ri[t]
		}
		y[i], y[j] = y[j], y[i]
	}
	return x, y
}
