package dataset

import (
	"fmt"
	"sort"

	"repro/internal/mat"
)

// TombstoneView is the first-class dead-row view over a PoolSource: rows
// tombstoned at construction disappear from the streamed row space while
// every surviving row keeps a stable mapping back to its original index.
// It honors the block-wise streaming contract — consumers sweep the view
// in fixed-size blocks and each ReadRows window issues one underlying
// read per surviving run it overlaps, so a view over an mmap'd shard set
// streams with the same scratch bounds as the shards themselves.
//
// A view shares its source (Close is a no-op; close the parent instead)
// and is immutable: pools that tombstone incrementally build a fresh view
// per round from the current dead set, which is O(dead·log dead) — noise
// against one block decode.
type TombstoneView struct {
	src  PoolSource
	runs [][2]int // surviving [lo, hi) windows of the source, ascending
	cum  []int    // cum[i] = surviving rows before runs[i]
	rows int
}

// NewTombstoneView builds a view of src without the dead rows. Indices
// are validated against the source (duplicates are tolerated — callers
// accumulate dead sets from overlapping rounds); dead is not retained or
// modified.
func NewTombstoneView(src PoolSource, dead []int) (*TombstoneView, error) {
	n := src.NumRows()
	sorted := append([]int(nil), dead...)
	sort.Ints(sorted)
	v := &TombstoneView{src: src}
	prev := 0
	last := -1
	for _, i := range sorted {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("dataset: tombstone index %d out of range [0, %d)", i, n)
		}
		if i == last {
			continue
		}
		last = i
		if i > prev {
			v.pushRun(prev, i)
		}
		prev = i + 1
	}
	if prev < n {
		v.pushRun(prev, n)
	}
	return v, nil
}

func (v *TombstoneView) pushRun(lo, hi int) {
	v.runs = append(v.runs, [2]int{lo, hi})
	v.cum = append(v.cum, v.rows)
	v.rows += hi - lo
}

// NumRows returns the surviving row count.
func (v *TombstoneView) NumRows() int { return v.rows }

// Dim returns the feature dimension.
func (v *TombstoneView) Dim() int { return v.src.Dim() }

// Close is a no-op; the view shares its source.
func (v *TombstoneView) Close() error { return nil }

// OriginalIndex maps view row i back to its index in the underlying
// source — how a selection over the compacted row space reports indices
// in the pool's stable global numbering.
func (v *TombstoneView) OriginalIndex(i int) int {
	if i < 0 || i >= v.rows {
		panic(fmt.Sprintf("dataset: OriginalIndex %d out of range [0, %d)", i, v.rows))
	}
	r := sort.Search(len(v.cum), func(k int) bool { return v.cum[k] > i }) - 1
	return v.runs[r][0] + (i - v.cum[r])
}

// ReadRows copies surviving rows [lo, hi) (view numbering) into dst,
// reading each overlapped surviving run of the source once.
func (v *TombstoneView) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(v, lo, hi, dst); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	r := sort.Search(len(v.cum), func(k int) bool { return v.cum[k] > lo }) - 1
	row := lo
	for row < hi {
		run := v.runs[r]
		runLo := run[0] + (row - v.cum[r])
		take := min(run[1]-runLo, hi-row)
		if err := v.src.ReadRows(runLo, runLo+take, dst.RowSlice(row-lo, row-lo+take)); err != nil {
			return err
		}
		row += take
		r++
	}
	return nil
}
