package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
)

// writeTestShard packs rows·dim counter features into a shard at path.
func writeTestShard(t *testing.T, path string, rows, dim int) {
	t.Helper()
	w, err := CreateShard(path, dim)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.NewDense(rows, dim)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	if err := w.AppendBlock(x); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenShardsActionableErrors pins that every open-time failure names
// the offending file and, where shapes are involved, spells out the
// expected row/dim arithmetic — a misregistered pool path must fail with a
// message the client can act on, not a bare errno.
func TestOpenShardsActionableErrors(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing file", func(t *testing.T) {
		missing := filepath.Join(dir, "nope.shard")
		_, err := OpenShards(missing)
		if err == nil {
			t.Fatal("want error for missing shard")
		}
		if !strings.Contains(err.Error(), missing) {
			t.Errorf("error does not name the missing path: %v", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		bogus := filepath.Join(dir, "bogus.shard")
		if err := os.WriteFile(bogus, []byte("definitely not a shard header"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenShards(bogus)
		if err == nil {
			t.Fatal("want error for non-shard file")
		}
		if !strings.Contains(err.Error(), bogus) || !strings.Contains(err.Error(), "FIRALSH1") {
			t.Errorf("error should name the path and the expected magic: %v", err)
		}
	})

	t.Run("truncated payload", func(t *testing.T) {
		trunc := filepath.Join(dir, "trunc.shard")
		writeTestShard(t, trunc, 10, 4)
		// Chop two rows off the payload; the header still promises 10.
		if err := os.Truncate(trunc, int64(shardHeaderSize+8*4*4)); err != nil {
			t.Fatal(err)
		}
		_, err := OpenShards(trunc)
		if err == nil {
			t.Fatal("want error for truncated shard")
		}
		msg := err.Error()
		for _, want := range []string{trunc, "10 rows", "4 dims", "truncated"} {
			if !strings.Contains(msg, want) {
				t.Errorf("truncation error missing %q: %v", want, err)
			}
		}
	})

	t.Run("append block mismatch names shard and row range", func(t *testing.T) {
		path := filepath.Join(dir, "ctx.shard")
		w, err := CreateShard(path, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBlock(mat.NewDense(10, 4)); err != nil {
			t.Fatal(err)
		}
		err = w.AppendBlock(mat.NewDense(6, 5))
		if err == nil {
			t.Fatal("mismatched block accepted")
		}
		for _, want := range []string{path, "[10, 16)", "5 features", "want 4"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
		// The writer latches the error; later appends re-report it so a
		// packing loop cannot silently continue past a bad producer.
		if err2 := w.AppendBlock(mat.NewDense(1, 4)); err2 == nil || !strings.Contains(err2.Error(), "[10, 16)") {
			t.Errorf("latched writer error = %v, want the original mismatch", err2)
		}
		w.Close()
	})

	t.Run("dimension mismatch names both shards", func(t *testing.T) {
		a := filepath.Join(dir, "a.shard")
		b := filepath.Join(dir, "b.shard")
		writeTestShard(t, a, 3, 4)
		writeTestShard(t, b, 3, 5)
		_, err := OpenShards(a, b)
		if err == nil {
			t.Fatal("want error for mismatched dimensions")
		}
		msg := err.Error()
		if !strings.Contains(msg, a) || !strings.Contains(msg, b) {
			t.Errorf("mismatch error should name both shards: %v", err)
		}
	})
}
