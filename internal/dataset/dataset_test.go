package dataset

import (
	"math"
	"testing"

	"repro/internal/logreg"
)

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Name: "toy", Classes: 4, Dim: 6, PoolSize: 200, EvalSize: 100,
		InitPerClass: 2, Rounds: 3, Budget: 5}
	ds := Generate(cfg, 1)
	if ds.PoolX.Rows != 200 || ds.PoolX.Cols != 6 {
		t.Fatalf("pool shape %dx%d", ds.PoolX.Rows, ds.PoolX.Cols)
	}
	if len(ds.PoolY) != 200 || len(ds.EvalY) != 100 {
		t.Fatalf("label lengths %d %d", len(ds.PoolY), len(ds.EvalY))
	}
	if ds.LabeledX.Rows != 8 {
		t.Fatalf("labeled %d", ds.LabeledX.Rows)
	}
	// Initial labeled set covers every class.
	seen := map[int]int{}
	for _, y := range ds.LabeledY {
		seen[y]++
	}
	for k := 0; k < 4; k++ {
		if seen[k] != 2 {
			t.Fatalf("class %d has %d initial labels", k, seen[k])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := MNIST().Scale(0.05)
	a := Generate(cfg, 42)
	b := Generate(cfg, 42)
	if a.PoolX.Rows != b.PoolX.Rows {
		t.Fatal("sizes differ")
	}
	for i := 0; i < a.PoolX.Rows; i++ {
		if a.PoolY[i] != b.PoolY[i] {
			t.Fatal("labels differ under same seed")
		}
		for j := 0; j < a.PoolX.Cols; j++ {
			if a.PoolX.At(i, j) != b.PoolX.At(i, j) {
				t.Fatal("features differ under same seed")
			}
		}
	}
	c := Generate(cfg, 43)
	if c.PoolX.At(0, 0) == a.PoolX.At(0, 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestImbalanceRatioRealized(t *testing.T) {
	cfg := ImbCIFAR10().Scale(0.5)
	ds := Generate(cfg, 3)
	counts := make([]int, cfg.Classes)
	for _, y := range ds.PoolY {
		counts[y]++
	}
	maxC, minC := counts[0], counts[0]
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	ratio := float64(maxC) / float64(minC)
	if ratio < 5 || ratio > 15 {
		t.Fatalf("imbalance ratio %g, want ≈10", ratio)
	}
}

func TestBalancedPoolRoughlyEven(t *testing.T) {
	ds := Generate(CIFAR10().Scale(0.5), 4)
	counts := make([]int, 10)
	for _, y := range ds.PoolY {
		counts[y]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-150) > 2 {
			t.Fatalf("class %d count %d, want ≈150", k, c)
		}
	}
}

// TestEmbeddingsAreLearnable: a classifier trained on a modest sample must
// beat chance decisively — the datasets must look like good self-supervised
// embeddings, not noise.
func TestEmbeddingsAreLearnable(t *testing.T) {
	ds := Generate(CIFAR10().Scale(0.2), 5)
	// Train on 300 pool points with revealed labels.
	n := 300
	x := ds.PoolX.Clone()
	x.Rows = n
	m, err := logreg.Train(x, ds.PoolY[:n], ds.Classes, nil, logreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc := m.Accuracy(ds.EvalX, ds.EvalY)
	if acc < 0.8 {
		t.Fatalf("eval accuracy %g on synthetic embedding; want ≥ 0.8", acc)
	}
}

func TestTableVConfigs(t *testing.T) {
	cfgs := TableV()
	if len(cfgs) != 7 {
		t.Fatalf("expected 7 Table V configs, got %d", len(cfgs))
	}
	want := map[string]struct{ c, d, pool, rounds, budget int }{
		"MNIST":           {10, 20, 3000, 3, 10},
		"CIFAR-10":        {10, 20, 3000, 3, 10},
		"imb-CIFAR-10":    {10, 20, 3000, 3, 10},
		"ImageNet-50":     {50, 50, 5000, 6, 50},
		"imb-ImageNet-50": {50, 50, 5000, 6, 50},
		"Caltech-101":     {101, 100, 1715, 6, 101},
		"ImageNet-1k":     {1000, 383, 50000, 5, 200},
	}
	for _, cfg := range cfgs {
		w, ok := want[cfg.Name]
		if !ok {
			t.Fatalf("unexpected config %q", cfg.Name)
		}
		if cfg.Classes != w.c || cfg.Dim != w.d || cfg.PoolSize != w.pool ||
			cfg.Rounds != w.rounds || cfg.Budget != w.budget {
			t.Fatalf("%s: config %+v does not match Table V", cfg.Name, cfg)
		}
	}
	// Imbalance ratios per the paper.
	if ImbCIFAR10().ImbalanceRatio != 10 || Caltech101().ImbalanceRatio != 10 {
		t.Fatal("10:1 ratios wrong")
	}
	if ImbImageNet50().ImbalanceRatio != 8 {
		t.Fatal("8:1 ratio wrong")
	}
}

func TestScale(t *testing.T) {
	cfg := ImageNet1k().Scale(0.01)
	// 50000·0.01 = 500 would drop below one point per class, so the floor
	// at Classes (1000) applies.
	if cfg.PoolSize != 1000 {
		t.Fatalf("scaled pool %d", cfg.PoolSize)
	}
	cfg2 := ImageNet1k().Scale(0.1)
	if cfg2.PoolSize != 5000 {
		t.Fatalf("scaled pool %d", cfg2.PoolSize)
	}
	// Scaling never drops below one point per class.
	tiny := Caltech101().Scale(1e-9)
	if tiny.PoolSize < tiny.Classes {
		t.Fatalf("scaled pool %d below class count", tiny.PoolSize)
	}
}

func TestClassCountsSumAndPositivity(t *testing.T) {
	for _, tc := range []struct {
		total, c int
		ratio    float64
	}{{100, 10, 1}, {100, 10, 10}, {57, 7, 8}, {10, 10, 10}} {
		counts := classCounts(tc.total, tc.c, tc.ratio)
		sum := 0
		for _, v := range counts {
			if v < 1 {
				t.Fatalf("%+v: class with %d points", tc, v)
			}
			sum += v
		}
		if sum != tc.total {
			t.Fatalf("%+v: counts sum %d", tc, sum)
		}
	}
}
