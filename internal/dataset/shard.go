package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/mat"
)

// Shard files hold pool features as float32, the precision the paper's
// GPU implementation uses, at half the footprint of the float64 solver
// state. The fixed little-endian layout is
//
//	offset 0   8 bytes   magic "FIRALSH1"
//	offset 8   uint32    feature dimension d
//	offset 12  uint64    row count
//	offset 20  rows·d    float32 features, row-major
//
// A pool may span several shard files (written by independent producers);
// ShardSource concatenates them in argument order. On unix the payload is
// memory-mapped, so scoring a million-row pool touches pages on demand
// instead of materializing an n×d float64 matrix; elsewhere reads fall
// back to pread.

const (
	shardMagic      = "FIRALSH1"
	shardHeaderSize = 20
)

// ShardWriter streams rows into one shard file. It never holds more than
// its bufio buffer in memory, so paper-scale pools can be packed block by
// block.
type ShardWriter struct {
	f    *os.File
	w    *bufio.Writer
	path string
	d    int
	rows int
	buf  []byte // one encoded row (d·4 bytes), reused across appends
	err  error
}

// CreateShard creates path and returns a writer for d-dimensional rows.
func CreateShard(path string, d int) (*ShardWriter, error) {
	if d <= 0 {
		return nil, fmt.Errorf("dataset: shard dimension must be positive, got %d", d)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sw := &ShardWriter{f: f, w: bufio.NewWriterSize(f, 1<<20), path: path, d: d, buf: make([]byte, d*4)}
	var hdr [shardHeaderSize]byte
	copy(hdr[:8], shardMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(d))
	// Row count is patched on Close.
	if _, err := sw.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: shard %s: write header: %w", path, err)
	}
	return sw, nil
}

// AppendRow writes one feature row (rounded to float32).
func (sw *ShardWriter) AppendRow(x []float64) error {
	if sw.err != nil {
		return sw.err
	}
	if len(x) != sw.d {
		sw.err = fmt.Errorf("dataset: shard %s: row has %d features, want %d", sw.path, len(x), sw.d)
		return sw.err
	}
	for j, v := range x {
		binary.LittleEndian.PutUint32(sw.buf[j*4:], math.Float32bits(float32(v)))
	}
	if _, err := sw.w.Write(sw.buf); err != nil {
		// Keep the cause in the chain: a caller distinguishing disk-full
		// from corruption needs errors.Is/As through the shard context.
		sw.err = fmt.Errorf("dataset: shard %s: write row %d: %w", sw.path, sw.rows, err)
		return sw.err
	}
	sw.rows++
	return nil
}

// AppendBlock writes every row of x. A dimension mismatch is reported
// with the shard path and the offending block's row range, so a
// multi-source packing job (several producers feeding one shard set)
// learns exactly which file and which rows were being appended.
func (sw *ShardWriter) AppendBlock(x *mat.Dense) error {
	if sw.err != nil {
		return sw.err
	}
	start := sw.rows
	if x.Cols != sw.d {
		sw.err = fmt.Errorf("dataset: shard %s: block for rows [%d, %d) has %d features, want %d",
			sw.path, start, start+x.Rows, x.Cols, sw.d)
		return sw.err
	}
	for i := 0; i < x.Rows; i++ {
		if err := sw.AppendRow(x.Row(i)); err != nil {
			return fmt.Errorf("dataset: shard %s: appending block rows [%d, %d): %w",
				sw.path, start, start+x.Rows, err)
		}
	}
	return nil
}

// Rows returns the number of rows appended so far.
func (sw *ShardWriter) Rows() int { return sw.rows }

// Close flushes the payload, patches the row count into the header, and
// closes the file.
func (sw *ShardWriter) Close() error {
	if flushErr := sw.w.Flush(); sw.err == nil && flushErr != nil {
		sw.err = fmt.Errorf("dataset: shard %s: flush: %w", sw.path, flushErr)
	}
	if sw.err == nil {
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], uint64(sw.rows))
		if _, err := sw.f.WriteAt(cnt[:], 12); err != nil {
			sw.err = fmt.Errorf("dataset: shard %s: patch row count: %w", sw.path, err)
		}
	}
	if closeErr := sw.f.Close(); sw.err == nil && closeErr != nil {
		sw.err = fmt.Errorf("dataset: shard %s: close: %w", sw.path, closeErr)
	}
	return sw.err
}

// shardFile is one opened shard: its payload either memory-mapped (data)
// or read on demand through f.
type shardFile struct {
	path string
	rows int
	data []byte   // mmap'd payload (header included); nil on the pread path
	f    *os.File // retained for pread when data == nil (and for munmap bookkeeping)

	// pread fallback state: one scratch buffer, serialized — only used on
	// platforms without mmap support, where ReadRows loses its lock-free
	// concurrency but keeps the same semantics.
	mu      sync.Mutex
	scratch []byte
}

// ShardSource serves the concatenation of one or more shard files.
type ShardSource struct {
	d      int
	rows   int
	files  []*shardFile
	starts []int // global row index of each file's first row
}

// OpenShards opens and validates the given shard files, concatenating
// their rows in argument order. All shards must share one dimension.
func OpenShards(paths ...string) (*ShardSource, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dataset: OpenShards needs at least one path")
	}
	src := &ShardSource{}
	for _, path := range paths {
		sf, d, err := openShardFile(path)
		if err != nil {
			src.Close()
			return nil, err
		}
		if src.files == nil {
			src.d = d
		} else if d != src.d {
			sf.close()
			src.Close()
			return nil, fmt.Errorf("dataset: shard %s has dimension %d, but %s has dimension %d — all shards of one pool must share a dimension",
				path, d, paths[0], src.d)
		}
		src.starts = append(src.starts, src.rows)
		src.files = append(src.files, sf)
		src.rows += sf.rows
	}
	return src, nil
}

func openShardFile(path string) (*shardFile, int, error) {
	f, err := os.Open(path)
	if err != nil {
		// The *PathError already names the file; the prefix says which
		// registration failed — a session creating over a misregistered
		// pool path sees exactly which shard is missing.
		return nil, 0, fmt.Errorf("dataset: open shard: %w", err)
	}
	var hdr [shardHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("dataset: shard %s: read %d-byte header: %w", path, shardHeaderSize, err)
	}
	if string(hdr[:8]) != shardMagic {
		f.Close()
		return nil, 0, fmt.Errorf("dataset: %s is not a shard file (magic %q, want %q — pack CSVs with firal -pack)", path, hdr[:8], shardMagic)
	}
	d := int(binary.LittleEndian.Uint32(hdr[8:12]))
	rows := int(binary.LittleEndian.Uint64(hdr[12:20]))
	if d <= 0 || rows < 0 {
		f.Close()
		return nil, 0, fmt.Errorf("dataset: shard %s: invalid header shape %d rows × %d dims", path, rows, d)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("dataset: shard %s: %w", path, err)
	}
	want := int64(shardHeaderSize) + int64(rows)*int64(d)*4
	if st.Size() < want {
		f.Close()
		return nil, 0, fmt.Errorf("dataset: shard %s: truncated: %d bytes on disk, want %d = %d-byte header + %d rows × %d dims × 4 bytes",
			path, st.Size(), want, shardHeaderSize, rows, d)
	}
	sf := &shardFile{path: path, rows: rows, f: f}
	if data, err := mmapFile(f, st.Size()); err == nil {
		sf.data = data
	}
	// On mmap failure keep the pread path; no error — the fallback is
	// exactly as correct, just slower.
	return sf, d, nil
}

func (sf *shardFile) close() {
	if sf.data != nil {
		munmapFile(sf.data)
		sf.data = nil
	}
	if sf.f != nil {
		sf.f.Close()
		sf.f = nil
	}
}

// NumRows returns the total row count across shards.
func (s *ShardSource) NumRows() int { return s.rows }

// Dim returns the feature dimension.
func (s *ShardSource) Dim() int { return s.d }

// Close unmaps and closes every shard file.
func (s *ShardSource) Close() error {
	for _, sf := range s.files {
		sf.close()
	}
	s.files = nil
	return nil
}

// ReadRows decodes rows [lo, hi) into dst, crossing shard boundaries as
// needed. The mmap path performs no allocation and is safe for concurrent
// callers with private destinations.
func (s *ShardSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(s, lo, hi, dst); err != nil {
		return err
	}
	// Find the file containing lo by linear scan: shard counts are tiny
	// and the sweep access pattern revisits the same file block to block.
	fi := 0
	for fi+1 < len(s.files) && s.starts[fi+1] <= lo {
		fi++
	}
	row := lo
	for row < hi {
		sf := s.files[fi]
		fileLo := row - s.starts[fi]
		fileHi := min(sf.rows, hi-s.starts[fi])
		if err := sf.decodeRows(fileLo, fileHi, s.d, dst, row-lo); err != nil {
			return fmt.Errorf("dataset: shard %s: %w", sf.path, err)
		}
		row += fileHi - fileLo
		fi++
	}
	return nil
}

// decodeRows converts the float32 payload rows [lo, hi) of this file into
// dst starting at dst row dstRow.
func (sf *shardFile) decodeRows(lo, hi, d int, dst *mat.Dense, dstRow int) error {
	off := shardHeaderSize + lo*d*4
	n := (hi - lo) * d * 4
	raw := sf.data
	if raw != nil {
		raw = raw[off : off+n]
	} else {
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if cap(sf.scratch) < n {
			sf.scratch = make([]byte, n)
		}
		raw = sf.scratch[:n]
		if _, err := sf.f.ReadAt(raw, int64(off)); err != nil {
			return err
		}
	}
	for r := lo; r < hi; r++ {
		out := dst.Row(dstRow + r - lo)
		base := (r - lo) * d * 4
		for j := 0; j < d; j++ {
			bits := binary.LittleEndian.Uint32(raw[base+j*4 : base+j*4+4])
			out[j] = float64(math.Float32frombits(bits))
		}
	}
	return nil
}
