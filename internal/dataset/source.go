package dataset

import (
	"fmt"

	"repro/internal/mat"
)

// This file defines the PoolSource abstraction: the paper's headline claim
// is selection from pools far larger than a memory-resident dense matrix
// comfortably allows, so the solver hot paths (the Lemma-2 matvec, the
// gradient estimator, the Gram accumulation, and the ROUND rescoring pass)
// consume the pool in fixed-size row blocks instead of assuming one
// resident n×d matrix. A PoolSource serves those blocks; implementations
// range from a wrapped in-memory matrix (MatrixSource) through
// memory-mapped float32 shard files (ShardSource) to CSV files
// (CSVSource).
//
// Contract:
//
//   - Rows are dense feature vectors of a fixed dimension Dim(); the pool
//     has NumRows() of them, globally indexed from 0.
//   - ReadRows(lo, hi, dst) copies rows [lo, hi) into the (hi−lo)×Dim()
//     matrix dst as float64. Implementations must support arbitrary
//     in-range [lo, hi) windows, though consumers overwhelmingly sweep
//     forward in fixed-size blocks.
//   - Sources must surface data errors (missing files, malformed rows,
//     shape mismatches) at open/validation time. After a successful open,
//     ReadRows on an in-range window is expected to succeed; the blocked
//     solver kernels treat a mid-sweep read failure as unrecoverable and
//     panic with the source error.
//   - ReadRows must be safe for concurrent use by multiple goroutines
//     (each with its own dst); the simulated MPI ranks of
//     internal/distfiral share one source through Subrange views.
//   - Close releases file handles and mappings. In-memory sources are
//     no-ops. Reading after Close is undefined.
type PoolSource interface {
	// NumRows returns the pool size n.
	NumRows() int
	// Dim returns the feature dimension d.
	Dim() int
	// ReadRows copies rows [lo, hi) into dst, a (hi−lo)×Dim() matrix.
	ReadRows(lo, hi int, dst *mat.Dense) error
	// Close releases any underlying resources.
	Close() error
}

// Resident is the optional zero-copy fast path: sources whose rows
// already sit in memory as one compact row-major float64 slab expose them
// directly, so blocked consumers wrap the storage in a view instead of
// copying every block through scratch. MatrixSource implements it (for
// compact matrices); Subrange preserves it.
type Resident interface {
	// ResidentRows returns the backing storage of rows [lo, hi): exactly
	// (hi−lo)·Dim() float64s, row-major, compact. The slice aliases the
	// source and must be treated as read-only.
	ResidentRows(lo, hi int) []float64
}

// DefaultBlockRows is the row-block size blocked consumers use when the
// caller does not choose one. It balances scratch footprint (a block of
// d=64 features is 2 MiB) against per-block kernel dispatch overhead, and
// is deliberately larger than every test-sized pool so the resident fast
// paths keep their historical single-block behaviour.
const DefaultBlockRows = 4096

// checkWindow validates a [lo, hi) row window against a source's shape.
func checkWindow(src PoolSource, lo, hi int, dst *mat.Dense) error {
	if lo < 0 || hi > src.NumRows() || lo > hi {
		return fmt.Errorf("dataset: row window [%d, %d) out of range [0, %d)", lo, hi, src.NumRows())
	}
	if dst != nil && (dst.Rows != hi-lo || dst.Cols != src.Dim()) {
		return fmt.Errorf("dataset: ReadRows destination is %d×%d, want %d×%d",
			dst.Rows, dst.Cols, hi-lo, src.Dim())
	}
	return nil
}

// MatrixSource serves an in-memory matrix as a PoolSource. It is the
// bridge between the resident datasets (Generate, the learner pool) and
// the blocked solver kernels: compact matrices are exposed zero-copy
// through the Resident interface.
type MatrixSource struct {
	x *mat.Dense
}

// NewMatrixSource wraps x (not copied, so the caller must not mutate rows
// while the source is in use). A non-compact view is cloned to compact
// storage so ResidentRows always holds.
func NewMatrixSource(x *mat.Dense) *MatrixSource {
	if x.Stride != x.Cols {
		x = x.Clone()
	}
	return &MatrixSource{x: x}
}

// NumRows returns the pool size.
func (s *MatrixSource) NumRows() int { return s.x.Rows }

// Dim returns the feature dimension.
func (s *MatrixSource) Dim() int { return s.x.Cols }

// ReadRows copies rows [lo, hi) into dst.
func (s *MatrixSource) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(s, lo, hi, dst); err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		copy(dst.Row(i-lo), s.x.Row(i))
	}
	return nil
}

// ResidentRows exposes the backing storage zero-copy (the constructor
// guarantees compact storage).
func (s *MatrixSource) ResidentRows(lo, hi int) []float64 {
	return s.x.Data[lo*s.x.Cols : hi*s.x.Cols]
}

// Close is a no-op.
func (s *MatrixSource) Close() error { return nil }

// subrange is a row-window view of another source, used by the
// distributed sharding to hand each rank its contiguous pool partition
// without materializing it.
type subrange struct {
	src    PoolSource
	lo, hi int
}

// Subrange returns a PoolSource view of rows [lo, hi) of src. The view
// shares src (Close is a no-op; close the parent instead) and preserves
// the Resident fast path when src supports it.
func Subrange(src PoolSource, lo, hi int) PoolSource {
	if lo < 0 || hi > src.NumRows() || lo > hi {
		panic(fmt.Sprintf("dataset: Subrange [%d, %d) out of range [0, %d)", lo, hi, src.NumRows()))
	}
	if lo == 0 && hi == src.NumRows() {
		// The identity shortcut is only sound for fixed-size sources: a
		// growable pool (LiveSource) must still be wrapped so the window
		// stays pinned while appends land.
		if _, growable := src.(interface{ Generation() int64 }); !growable {
			return src
		}
	}
	if res, ok := src.(Resident); ok {
		return &residentSubrange{subrange{src: src, lo: lo, hi: hi}, res}
	}
	return &subrange{src: src, lo: lo, hi: hi}
}

func (s *subrange) NumRows() int { return s.hi - s.lo }
func (s *subrange) Dim() int     { return s.src.Dim() }
func (s *subrange) Close() error { return nil }

func (s *subrange) ReadRows(lo, hi int, dst *mat.Dense) error {
	if err := checkWindow(s, lo, hi, dst); err != nil {
		return err
	}
	return s.src.ReadRows(s.lo+lo, s.lo+hi, dst)
}

// residentSubrange adds the zero-copy path to a subrange of a Resident
// source.
type residentSubrange struct {
	subrange
	res Resident
}

func (s *residentSubrange) ResidentRows(lo, hi int) []float64 {
	return s.res.ResidentRows(s.lo+lo, s.lo+hi)
}
