//go:build !unix

package dataset

import (
	"errors"
	"os"
)

// mmapFile always fails on platforms without unix mmap; ShardSource then
// serves reads through pread, which is slower but semantically identical.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("dataset: mmap unsupported on this platform")
}

func munmapFile(data []byte) {}
