// Package cli holds small helpers shared by the cmd/ binaries.
package cli

import (
	"context"
	"os"
	"os/signal"
)

// InterruptContext returns a context cancelled by the first Ctrl-C
// (SIGINT). Once that first signal cancels the context the default signal
// disposition is restored, so a second Ctrl-C terminates the process
// immediately even if the current phase polls the context only coarsely.
// The returned stop function releases the signal registration.
func InterruptContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() { <-ctx.Done(); stop() }()
	return ctx, stop
}
