package firal

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/hessian"
	"repro/internal/logreg"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/softmax"
)

// Config describes an active-learning instance: an initial labeled set, an
// unlabeled pool whose true labels are revealed only when points are
// selected, and an optional held-out evaluation set.
type Config struct {
	// PoolX/PoolY are the unlabeled pool Xu and its oracle labels.
	PoolX [][]float64
	PoolY []int
	// LabeledX/LabeledY are the initial labeled set Xo.
	LabeledX [][]float64
	LabeledY []int
	// EvalX/EvalY are held-out evaluation data (may be empty).
	EvalX [][]float64
	EvalY []int
	// Classes is the number of classes c.
	Classes int
	// Lambda is the classifier's L2 penalty (0 → 1e-3).
	Lambda float64
	// Seed seeds stochastic selectors driven through this learner.
	Seed int64
	// Rounds and Budget are the default session schedule: RunContext uses
	// them when WithRounds / WithBudget are not supplied. The Synthetic
	// benchmarks populate them with the paper's Table V values.
	Rounds, Budget int
}

// RoundReport records one active-learning round.
type RoundReport struct {
	// Round is 1-based; LabeledCount is the label total after this round.
	Round        int
	LabeledCount int
	// PoolRemaining is the number of still-unlabeled points after this
	// round.
	PoolRemaining int
	// EvalCount is the evaluation-set size; 0 means no evaluation set was
	// configured and the Eval* accuracies are meaningless.
	EvalCount int
	// Selected holds the selected points' indices into the original pool.
	Selected []int
	// PoolAccuracy is the classifier accuracy on the full original pool
	// (the paper's "pool accuracy"); EvalAccuracy on the evaluation set;
	// BalancedEvalAccuracy weights every class equally (Fig. 3(B)).
	PoolAccuracy         float64
	EvalAccuracy         float64
	BalancedEvalAccuracy float64
	// SelectSeconds and TrainSeconds are wall-clock costs of this round.
	SelectSeconds float64
	TrainSeconds  float64
}

// Learner drives the batch active-learning loop of § IV-A: train the
// classifier on the labeled set, hand the pool to a Selector, reveal the
// selected labels, retrain, and report accuracies.
type Learner struct {
	classes int
	lambda  float64
	seed    int64
	// defaultRounds/defaultBudget are the Config schedule used by
	// RunContext when the caller passes no WithRounds / WithBudget.
	defaultRounds int
	defaultBudget int

	poolX    *mat.Dense // full original pool (accuracy target)
	poolY    []int
	alive    []int // original indices still unlabeled
	labeledX [][]float64
	labeledY []int
	evalX    *mat.Dense
	evalY    []int

	model *logreg.Model
	round int
}

// ErrBadConfig is returned when a Config is inconsistent.
var ErrBadConfig = errors.New("firal: invalid learner configuration")

// NewLearner validates the configuration and trains the initial
// classifier on the labeled set.
func NewLearner(cfg Config) (*Learner, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("%w: need at least 2 classes", ErrBadConfig)
	}
	if len(cfg.PoolX) == 0 || len(cfg.PoolX) != len(cfg.PoolY) {
		return nil, fmt.Errorf("%w: pool features/labels mismatch", ErrBadConfig)
	}
	if len(cfg.LabeledX) == 0 || len(cfg.LabeledX) != len(cfg.LabeledY) {
		return nil, fmt.Errorf("%w: labeled features/labels mismatch", ErrBadConfig)
	}
	if len(cfg.EvalX) != len(cfg.EvalY) {
		return nil, fmt.Errorf("%w: eval features/labels mismatch", ErrBadConfig)
	}
	for _, y := range cfg.PoolY {
		if y < 0 || y >= cfg.Classes {
			return nil, fmt.Errorf("%w: pool label out of range", ErrBadConfig)
		}
	}
	for _, y := range cfg.LabeledY {
		if y < 0 || y >= cfg.Classes {
			return nil, fmt.Errorf("%w: initial label out of range", ErrBadConfig)
		}
	}
	l := &Learner{
		classes:       cfg.Classes,
		lambda:        cfg.Lambda,
		seed:          cfg.Seed,
		defaultRounds: max(cfg.Rounds, 0),
		defaultBudget: max(cfg.Budget, 0),
		poolX:         mat.FromRows(cfg.PoolX),
		poolY:         append([]int(nil), cfg.PoolY...),
		labeledX:      cloneRows(cfg.LabeledX),
		labeledY:      append([]int(nil), cfg.LabeledY...),
		evalY:         append([]int(nil), cfg.EvalY...),
	}
	if len(cfg.EvalX) > 0 {
		l.evalX = mat.FromRows(cfg.EvalX)
	}
	l.alive = make([]int, len(cfg.PoolY))
	for i := range l.alive {
		l.alive[i] = i
	}
	if err := l.retrain(); err != nil {
		return nil, err
	}
	return l, nil
}

func cloneRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

func (l *Learner) retrain() error {
	x := mat.FromRows(l.labeledX)
	var warm *mat.Dense
	if l.model != nil {
		warm = l.model.Theta
	}
	m, err := logreg.Train(x, l.labeledY, l.classes, warm, logreg.Options{Lambda: l.lambda})
	if err != nil {
		return err
	}
	l.model = m
	return nil
}

// LabeledCount returns the current number of labeled samples.
func (l *Learner) LabeledCount() int { return len(l.labeledY) }

// PoolRemaining returns the number of still-unlabeled pool points.
func (l *Learner) PoolRemaining() int { return len(l.alive) }

// Model returns the current classifier.
func (l *Learner) Model() *Model { return &Model{inner: l.model, classes: l.classes} }

// state assembles the Selector view for the current pool and model.
func (l *Learner) state() *State {
	aliveX := mat.NewDense(len(l.alive), l.poolX.Cols)
	for r, i := range l.alive {
		copy(aliveX.Row(r), l.poolX.Row(i))
	}
	poolProbs := softmax.Probabilities(nil, aliveX, l.model.Theta)
	labX := mat.FromRows(l.labeledX)
	labProbs := softmax.Probabilities(nil, labX, l.model.Theta)
	return &State{
		poolX:     aliveX,
		poolProbs: poolProbs,
		labX:      labX,
		labProbs:  labProbs,
		pool:      hessian.NewSet(aliveX, hessian.ReduceProbs(poolProbs)),
		labeled:   hessian.NewSet(labX, hessian.ReduceProbs(labProbs)),
		seed:      l.seed + int64(l.round)*7919,
	}
}

// StepContext runs one active-learning round with the given selector and
// budget: select b points under the current model, reveal their labels,
// retrain, and report accuracies. Cancelling the context aborts the
// selection (mid-RELAX for the FIRAL selectors) with an error wrapping
// ctx.Err().
func (l *Learner) StepContext(ctx context.Context, sel Selector, b int) (*RoundReport, error) {
	if b <= 0 {
		return nil, fmt.Errorf("%w: non-positive budget", ErrBadConfig)
	}
	if len(l.alive) == 0 {
		return nil, errors.New("firal: pool exhausted")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.round++
	st := l.state()

	t0 := time.Now()
	picked, err := sel.Select(ctx, st, min(b, len(l.alive)))
	selectSecs := time.Since(t0).Seconds()
	if err != nil {
		return nil, fmt.Errorf("firal: selector %s: %w", sel.Name(), err)
	}
	if err := validateSelection(picked, len(l.alive)); err != nil {
		return nil, fmt.Errorf("firal: selector %s: %w", sel.Name(), err)
	}

	// Reveal labels and move points from pool to labeled set.
	report := &RoundReport{Round: l.round}
	chosen := make(map[int]bool, len(picked))
	for _, r := range picked {
		chosen[r] = true
		orig := l.alive[r]
		report.Selected = append(report.Selected, orig)
		l.labeledX = append(l.labeledX, append([]float64(nil), l.poolX.Row(orig)...))
		l.labeledY = append(l.labeledY, l.poolY[orig])
	}
	remaining := l.alive[:0]
	for r, orig := range l.alive {
		if !chosen[r] {
			remaining = append(remaining, orig)
		}
	}
	l.alive = remaining

	t1 := time.Now()
	if err := l.retrain(); err != nil {
		return nil, err
	}
	report.TrainSeconds = time.Since(t1).Seconds()
	report.SelectSeconds = selectSecs
	report.LabeledCount = len(l.labeledY)
	report.PoolRemaining = len(l.alive)
	report.PoolAccuracy = l.model.Accuracy(l.poolX, l.poolY)
	if l.evalX != nil {
		report.EvalCount = len(l.evalY)
		report.EvalAccuracy = l.model.Accuracy(l.evalX, l.evalY)
		report.BalancedEvalAccuracy = l.model.ClassBalancedAccuracy(l.evalX, l.evalY)
	}
	return report, nil
}

// Step runs one round with a background context.
//
// Deprecated: use StepContext, which supports cancellation.
func (l *Learner) Step(sel Selector, b int) (*RoundReport, error) {
	return l.StepContext(context.Background(), sel, b)
}

// RunContext drives an active-learning session: repeated StepContext
// rounds under the given selector, configured by functional options.
//
// The schedule defaults to the Config's Rounds/Budget; WithRounds and
// WithBudget override it, WithStopCriterion ends the session on policy
// (target accuracy, wall-clock budget, ...), and WithObserver streams
// each RoundReport as its round completes. The session always ends when
// the pool is exhausted.
//
// On context cancellation the reports of the rounds completed so far are
// returned together with an error wrapping ctx.Err(); a stop criterion
// firing is a clean end, not an error.
func (l *Learner) RunContext(ctx context.Context, sel Selector, opts ...RunOption) ([]*RoundReport, error) {
	rc := runConfig{rounds: l.defaultRounds, budget: l.defaultBudget}
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.budget <= 0 {
		return nil, fmt.Errorf("%w: non-positive budget (set Config.Budget or WithBudget)", ErrBadConfig)
	}
	if rc.workers > 0 {
		// A scoped limit rather than SetMaxWorkers: concurrent sessions
		// compose by min instead of racing on save/restore, so this
		// session never observes more parallelism than requested and
		// releasing never clobbers another session's setting.
		lim := parallel.AcquireLimit(rc.workers)
		defer lim.Release()
	}
	var reports []*RoundReport
	for r := 0; (rc.rounds <= 0 || r < rc.rounds) && len(l.alive) > 0; r++ {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		rep, err := l.StepContext(ctx, sel, rc.budget)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
		for _, observe := range rc.observers {
			observe(rep)
		}
		for _, criterion := range rc.stops {
			if stop, _ := criterion(rep); stop {
				return reports, nil
			}
		}
	}
	return reports, nil
}

// Run executes rounds active-learning rounds of budget b each and returns
// the per-round reports. It stops early if the pool is exhausted.
//
// Deprecated: use RunContext, which supports cancellation, stop criteria,
// and streaming round reports.
func (l *Learner) Run(sel Selector, rounds, b int) ([]*RoundReport, error) {
	if rounds <= 0 {
		return nil, nil // historical behavior: a non-positive schedule runs no rounds
	}
	return l.RunContext(context.Background(), sel, WithRounds(rounds), WithBudget(b))
}

func validateSelection(picked []int, n int) error {
	seen := make(map[int]bool, len(picked))
	for _, r := range picked {
		if r < 0 || r >= n {
			return fmt.Errorf("selected index %d out of range [0,%d)", r, n)
		}
		if seen[r] {
			return fmt.Errorf("selected index %d twice", r)
		}
		seen[r] = true
	}
	return nil
}

// Model is a trained multiclass logistic-regression classifier.
type Model struct {
	inner   *logreg.Model
	classes int
}

// Predict returns the most likely class of each row of x.
func (m *Model) Predict(x [][]float64) []int {
	return m.inner.Predict(mat.FromRows(x))
}

// Probabilities returns the class-probability rows for x.
func (m *Model) Probabilities(x [][]float64) [][]float64 {
	p := m.inner.Probabilities(mat.FromRows(x))
	out := make([][]float64, p.Rows)
	for i := range out {
		out[i] = append([]float64(nil), p.Row(i)...)
	}
	return out
}

// Accuracy returns the fraction of rows of x classified as y.
func (m *Model) Accuracy(x [][]float64, y []int) float64 {
	return m.inner.Accuracy(mat.FromRows(x), y)
}
