package firal_test

// Ablation benchmarks for the design choices called out in DESIGN.md § 5:
// the Woodbury-accelerated exact ROUND vs the literal dense objective, the
// block-diagonal CG preconditioner on/off inside a full RELAX solve, probe
// batching, and the recursive-doubling vs ring allreduce paths.

import (
	"context"
	"testing"

	"repro/internal/firal"
	"repro/internal/mat"
	"repro/internal/mpi"
)

// --- Exact ROUND: Woodbury identity vs naive dense inverses. ---

func benchmarkRoundExact(b *testing.B, naive bool) {
	p := benchProblem(60, 8, 5, 21)
	z := make([]float64, p.N())
	mat.Fill(z, 2/float64(p.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := firal.RoundExact(p, z, 2, firal.RoundOptions{Naive: naive}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_RoundExactWoodbury(b *testing.B) { benchmarkRoundExact(b, false) }
func BenchmarkAblation_RoundExactNaive(b *testing.B)    { benchmarkRoundExact(b, true) }

// --- RELAX: preconditioned vs unpreconditioned full solves. ---
// (BenchmarkFig1_* measures a single linear system; this measures the
// end-to-end mirror-descent iteration cost difference.)

func benchmarkRelaxPrecondAblation(b *testing.B, cgTol float64, iters int) {
	p := benchProblem(1500, 24, 9, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := firal.RelaxFast(context.Background(), p, 10, firal.RelaxOptions{
			FixedIterations: iters, Probes: 10, CGTol: cgTol, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CGIterations), "total-cg-iters")
	}
}

func BenchmarkAblation_RelaxCGTolLoose(b *testing.B) { benchmarkRelaxPrecondAblation(b, 0.1, 2) }
func BenchmarkAblation_RelaxCGTolTight(b *testing.B) { benchmarkRelaxPrecondAblation(b, 1e-3, 2) }

// --- Probe count: gradient-estimation cost scaling in s. ---

func benchmarkRelaxProbes(b *testing.B, s int) {
	p := benchProblem(1500, 24, 9, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := firal.RelaxFast(context.Background(), p, 10, firal.RelaxOptions{
			FixedIterations: 1, Probes: s, CGTol: 1e-30, CGMaxIter: 8, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Probes5(b *testing.B)  { benchmarkRelaxProbes(b, 5) }
func BenchmarkAblation_Probes10(b *testing.B) { benchmarkRelaxProbes(b, 10) }
func BenchmarkAblation_Probes40(b *testing.B) { benchmarkRelaxProbes(b, 40) }

// --- MPI allreduce algorithm selection: power-of-two (recursive doubling)
// vs non-power-of-two (ring reduce-scatter + allgather). ---

func benchmarkAllreduceWords(b *testing.B, ranks, words int) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(ranks, func(c *mpi.Comm) {
			data := make([]float64, words)
			for j := range data {
				data[j] = float64(c.Rank() + j)
			}
			c.Allreduce(data, mpi.Sum)
		})
	}
}

func BenchmarkAblation_AllreduceRecDoubleP4(b *testing.B) { benchmarkAllreduceWords(b, 4, 1<<14) }
func BenchmarkAblation_AllreduceRingP6(b *testing.B)      { benchmarkAllreduceWords(b, 6, 1<<14) }

// --- Eigenvalue solver: values-only vs full decomposition (the ROUND step
// needs only eigenvalues; Algorithm 3 line 9). ---

func benchmarkEig(b *testing.B, valsOnly bool, n int) {
	rngMat := mat.NewDense(n+4, n)
	for i := range rngMat.Data {
		rngMat.Data[i] = float64((i*2654435761)%1000)/500 - 1
	}
	a := mat.MulTransA(nil, rngMat, rngMat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if valsOnly {
			if _, err := mat.SymEigvals(a); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := mat.SymEig(a); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblation_EigvalsOnly64(b *testing.B) { benchmarkEig(b, true, 64) }
func BenchmarkAblation_EigFull64(b *testing.B)     { benchmarkEig(b, false, 64) }
