package firal

import (
	"fmt"
	"sync"
	"time"
)

// A StopCriterion inspects the report of a just-completed round and
// decides whether the session should end. The reason is a short
// human-readable explanation, surfaced by callers that report why a run
// terminated. Criteria let long sessions terminate on policy — pool
// exhausted, accuracy target met, wall-clock budget spent — rather than
// only on a fixed round count.
type StopCriterion func(r *RoundReport) (stop bool, reason string)

// PoolExhausted stops when no unlabeled points remain. RunContext always
// ends an exhausted session; this criterion exists so callers can detect
// and report that outcome explicitly.
func PoolExhausted() StopCriterion {
	return func(r *RoundReport) (bool, string) {
		if r.PoolRemaining == 0 {
			return true, "pool exhausted"
		}
		return false, ""
	}
}

// TargetAccuracy stops once the evaluation accuracy reaches target; on
// configurations without an evaluation set it falls back to pool
// accuracy.
func TargetAccuracy(target float64) StopCriterion {
	return func(r *RoundReport) (bool, string) {
		acc, kind := r.EvalAccuracy, "eval"
		if r.EvalCount == 0 {
			acc, kind = r.PoolAccuracy, "pool"
		}
		if acc >= target {
			return true, fmt.Sprintf("target accuracy reached (%s %.4f ≥ %.4f)", kind, acc, target)
		}
		return false, ""
	}
}

// MaxDuration stops the session once d of wall-clock time has elapsed,
// measured from the first round report rather than from construction — a
// criterion built before an expensive NewLearner or warm-up must not have
// that setup time charged against the run budget. The running round is
// always finished — for a hard mid-round abort, use a context deadline
// instead.
//
// The lazy anchor makes the criterion stateful: build a fresh one per
// run (reusing an instance carries the first run's anchor into the
// next). The anchor itself is mutex-guarded, so sharing one instance
// across concurrent runs is memory-safe, just not meaningful.
func MaxDuration(d time.Duration) StopCriterion {
	var mu sync.Mutex
	var deadline time.Time
	return func(r *RoundReport) (bool, string) {
		now := time.Now()
		mu.Lock()
		if deadline.IsZero() {
			deadline = now.Add(d)
		}
		expired := now.After(deadline)
		mu.Unlock()
		if expired {
			return true, fmt.Sprintf("wall-clock budget %s exhausted", d)
		}
		return false, ""
	}
}

// AnyOf combines criteria; the first that fires wins. Equivalent to
// repeating WithStopCriterion, provided for composing criteria outside
// run options.
func AnyOf(criteria ...StopCriterion) StopCriterion {
	return func(r *RoundReport) (bool, string) {
		for _, c := range criteria {
			if c == nil {
				continue
			}
			if stop, reason := c(r); stop {
				return true, reason
			}
		}
		return false, ""
	}
}
