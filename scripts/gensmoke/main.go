// Command gensmoke writes a small synthetic pool and labeled seed as CSV
// files for the CI dist-smoke script: pool.csv carries features plus a
// trailing label column (cmd/firal -pack strips the label when packing
// the shard), seed.csv is the initial labeled set in the same layout.
// Deterministic for a fixed -seed, so every rank of the smoke run (and
// its golden single-process reference) sees identical data.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/mat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gensmoke: ")
	var (
		poolPath = flag.String("pool", "pool.csv", "output CSV for the unlabeled pool")
		seedPath = flag.String("labeled", "seed.csv", "output CSV for the labeled seed set")
		n        = flag.Int("n", 240, "pool rows")
		d        = flag.Int("d", 6, "feature dimension")
		c        = flag.Int("c", 3, "classes")
		perClass = flag.Int("init-per-class", 4, "labeled seed rows per class")
		seed     = flag.Int64("seed", 5, "generator seed")
	)
	flag.Parse()

	ds := dataset.Generate(dataset.Config{
		Classes: *c, Dim: *d, PoolSize: *n, EvalSize: *c,
		InitPerClass: *perClass, Rounds: 1, Budget: 1,
	}, *seed)
	if err := writeCSV(*poolPath, ds.PoolX, ds.PoolY); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(*seedPath, ds.LabeledX, ds.LabeledY); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d×%d) and %s (%d×%d), %d classes",
		*poolPath, ds.PoolX.Rows, *d, *seedPath, ds.LabeledX.Rows, *d, *c)
}

// writeCSV emits one row per point: features, then the integer label in
// the last column (cmd/firal's default -labelcol -1 layout).
func writeCSV(path string, x *mat.Dense, y []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := 0; i < x.Rows; i++ {
		for _, v := range x.Row(i) {
			fmt.Fprintf(w, "%.17g,", v)
		}
		fmt.Fprintf(w, "%d\n", y[i])
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
