#!/usr/bin/env bash
# dist-smoke: real multi-process distributed selection over TCP.
#
# Part 1 — three OS processes (one per rank) bootstrap through the
# rendezvous port and stream-select from a shared shard file; every
# rank's selection must be bit-identical to the in-process -ranks 3 run
# over the same data (the transport-transparency contract).
#
# Part 2 — the same run with rank 2 crash-stopped mid-solve
# (-kill-after) and an operation timeout armed: the survivors must time
# out on the dead rank, agree on the dead set, re-shard, resume from the
# last global checkpoint, and finish with the full budget, agreeing with
# each other.
#
# Run from the repository root: scripts/dist_smoke.sh
set -euo pipefail

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
bin="$work/firal"

go build -o "$bin" ./cmd/firal
go run ./scripts/gensmoke -pool "$work/pool.csv" -labeled "$work/seed.csv" \
    -n 240 -d 6 -c 3 -seed 5
"$bin" -pack "$work/pool.shard" -pool "$work/pool.csv"

common=(-shards "$work/pool.shard" -labeled "$work/seed.csv" -select dist-firal
        -ranks 3 -budget 6 -seed 2 -probes 6 -relaxiters 8)

# Golden reference: the in-process (goroutine-rank) run.
"$bin" "${common[@]}" >"$work/golden.txt" 2>"$work/golden.log"
picked=$(wc -l <"$work/golden.txt")
if [ "$picked" -ne 6 ]; then
    echo "golden run selected $picked points, want 6" >&2
    cat "$work/golden.log" >&2
    exit 1
fi

port=$((21000 + $$ % 20000))

echo "== part 1: 3-process TCP run vs in-process golden (port $port)"
pids=()
for r in 0 1 2; do
    "$bin" "${common[@]}" -transport tcp -peers "127.0.0.1:$port" -rank "$r" \
        >"$work/tcp$r.txt" 2>"$work/tcp$r.log" &
    pids+=($!)
done
for i in 0 1 2; do
    if ! wait "${pids[$i]}"; then
        echo "TCP rank $i failed:" >&2
        cat "$work/tcp$i.log" >&2
        exit 1
    fi
done
for r in 0 1 2; do
    if ! diff -u "$work/golden.txt" "$work/tcp$r.txt"; then
        echo "rank $r TCP selection diverged from the in-process run" >&2
        exit 1
    fi
done
echo "   all 3 ranks bit-identical to the in-process selection"

port=$((port + 1))
echo "== part 2: kill rank 2 mid-solve, survivors recover (port $port)"
pids=()
for r in 0 1; do
    "$bin" "${common[@]}" -transport tcp -peers "127.0.0.1:$port" -rank "$r" \
        -op-timeout 1s >"$work/kill$r.txt" 2>"$work/kill$r.log" &
    pids+=($!)
done
set +e
"$bin" "${common[@]}" -transport tcp -peers "127.0.0.1:$port" -rank 2 \
    -op-timeout 1s -kill-after 25 >"$work/kill2.txt" 2>"$work/kill2.log"
victim=$?
set -e
if [ "$victim" -ne 3 ]; then
    echo "victim exited $victim, want 3 (the -kill-after crash)" >&2
    cat "$work/kill2.log" >&2
    exit 1
fi
for i in 0 1; do
    if ! wait "${pids[$i]}"; then
        echo "survivor rank $i failed:" >&2
        cat "$work/kill$i.log" >&2
        exit 1
    fi
done
for r in 0 1; do
    picked=$(wc -l <"$work/kill$r.txt")
    if [ "$picked" -ne 6 ]; then
        echo "survivor rank $r selected $picked points, want the full budget 6" >&2
        cat "$work/kill$r.log" >&2
        exit 1
    fi
    if ! grep -q "recovered from lost rank" "$work/kill$r.log"; then
        echo "survivor rank $r never reported the recovery:" >&2
        cat "$work/kill$r.log" >&2
        exit 1
    fi
done
if ! diff -u "$work/kill0.txt" "$work/kill1.txt"; then
    echo "survivors disagree on the recovered selection" >&2
    exit 1
fi
echo "   survivors recovered from the killed rank with an agreed full-budget selection"
echo "dist-smoke: ok"
