#!/usr/bin/env sh
# vet.sh — the repo's `make vet`: stock go vet plus the firal-vet
# contract analyzers (internal/analysis), exactly what the contracts-vet
# CI job runs. Usage: scripts/vet.sh [packages...] (defaults to ./...).
set -eu

cd "$(dirname "$0")/.."
pkgs="${*:-./...}"

go vet $pkgs

mkdir -p bin
go build -o bin/firal-vet ./cmd/firal-vet
go vet -vettool="$(pwd)/bin/firal-vet" $pkgs
