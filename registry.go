package firal

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SelectorOptions parameterize selectors built through the registry. The
// zero value yields the paper's defaults for every strategy.
type SelectorOptions struct {
	// FIRAL configures the FIRAL-family selectors; the baselines ignore
	// it.
	FIRAL FIRALOptions
	// Ranks is the simulated rank count for the distributed selector
	// (minimum 1); the serial selectors ignore it.
	Ranks int
}

// SelectorFactory builds a Selector from registry options.
type SelectorFactory func(o SelectorOptions) (Selector, error)

var selectorRegistry = struct {
	sync.RWMutex
	factories map[string]SelectorFactory // canonical name → factory
	lookup    map[string]string          // normalized name or alias → canonical
}{
	factories: map[string]SelectorFactory{},
	lookup:    map[string]string{},
}

func normalizeSelectorName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a selector factory under a canonical name. Lookup through
// New is case-insensitive. Register panics on an empty name, a nil
// factory, or a duplicate registration — misregistration is a programming
// error, caught at init time like database/sql driver registration.
func Register(name string, factory SelectorFactory) {
	key := normalizeSelectorName(name)
	if key == "" {
		panic("firal: Register with empty selector name")
	}
	if factory == nil {
		panic("firal: Register with nil factory for " + name)
	}
	selectorRegistry.Lock()
	defer selectorRegistry.Unlock()
	if _, dup := selectorRegistry.lookup[key]; dup {
		panic("firal: Register called twice for selector " + name)
	}
	selectorRegistry.factories[name] = factory
	selectorRegistry.lookup[key] = name
}

// RegisterAlias makes alias resolve to an already-registered canonical
// selector name. Aliases are looked up case-insensitively but do not
// appear in Names().
func RegisterAlias(alias, canonical string) {
	aliasKey := normalizeSelectorName(alias)
	canonKey := normalizeSelectorName(canonical)
	if aliasKey == "" {
		panic("firal: RegisterAlias with empty alias")
	}
	selectorRegistry.Lock()
	defer selectorRegistry.Unlock()
	target, ok := selectorRegistry.lookup[canonKey]
	if !ok {
		panic("firal: RegisterAlias target not registered: " + canonical)
	}
	if _, dup := selectorRegistry.lookup[aliasKey]; dup {
		panic("firal: RegisterAlias called twice for " + alias)
	}
	selectorRegistry.lookup[aliasKey] = target
}

// New instantiates a registered selector by name (case-insensitive;
// aliases such as "firal" for "Approx-FIRAL" are accepted). Unknown names
// return an error listing the registered strategies.
func New(name string, o SelectorOptions) (Selector, error) {
	selectorRegistry.RLock()
	canonical, ok := selectorRegistry.lookup[normalizeSelectorName(name)]
	var factory SelectorFactory
	if ok {
		factory = selectorRegistry.factories[canonical]
	}
	selectorRegistry.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("firal: unknown selector %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return factory(o)
}

// CanonicalName resolves a selector name — case-insensitively, aliases
// included — to its registered canonical form. It reports false for
// unknown names.
func CanonicalName(name string) (string, bool) {
	selectorRegistry.RLock()
	defer selectorRegistry.RUnlock()
	canonical, ok := selectorRegistry.lookup[normalizeSelectorName(name)]
	return canonical, ok
}

// Names returns the sorted canonical names of every registered selector.
func Names() []string {
	selectorRegistry.RLock()
	names := make([]string, 0, len(selectorRegistry.factories))
	for name := range selectorRegistry.factories {
		names = append(names, name)
	}
	selectorRegistry.RUnlock()
	sort.Strings(names)
	return names
}

// The eight built-in strategies self-register so that user code — and the
// cmd/ binaries and experiment harnesses — can construct any of them from
// a configuration string without a hard-coded switch.
func init() {
	Register("Random", func(o SelectorOptions) (Selector, error) { return Random(), nil })
	Register("K-Means", func(o SelectorOptions) (Selector, error) { return KMeans(), nil })
	Register("Entropy", func(o SelectorOptions) (Selector, error) { return Entropy(), nil })
	Register("Margin", func(o SelectorOptions) (Selector, error) { return Margin(), nil })
	Register("Least-Confidence", func(o SelectorOptions) (Selector, error) { return LeastConfidence(), nil })
	Register("Approx-FIRAL", func(o SelectorOptions) (Selector, error) { return ApproxFIRAL(o.FIRAL), nil })
	Register("Exact-FIRAL", func(o SelectorOptions) (Selector, error) { return ExactFIRAL(o.FIRAL), nil })
	Register("Dist-FIRAL", func(o SelectorOptions) (Selector, error) {
		ranks := o.Ranks
		if ranks < 1 {
			ranks = 1
		}
		return DistributedFIRAL(ranks, o.FIRAL), nil
	})

	RegisterAlias("kmeans", "K-Means")
	RegisterAlias("leastconfidence", "Least-Confidence")
	RegisterAlias("least-conf", "Least-Confidence")
	RegisterAlias("firal", "Approx-FIRAL")
	RegisterAlias("approx", "Approx-FIRAL")
	RegisterAlias("exact", "Exact-FIRAL")
	RegisterAlias("distributed-firal", "Dist-FIRAL")
	RegisterAlias("dist", "Dist-FIRAL")
}
