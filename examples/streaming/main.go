// Streaming: select a batch from a pool that never materializes as one
// in-memory matrix. The walkthrough packs a synthetic pool into the
// float32 shard format block by block, memory-maps it back through
// dataset.OpenShards, attaches classifier probabilities in one streamed
// pass, and runs Approx-FIRAL over a hessian.Stream — the same path
// `firal -shards` uses, and the one that scales selection past resident
// RAM (the BENCH_round.json pool_stream_n1e6_d64 entry scores a
// 1,000,000×64 pool this way at 0 allocs/op steady state).
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/logreg"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

func main() {
	const (
		n, d, classes = 20_000, 32, 4
		budget        = 10
		blockRows     = 2048
	)
	dir, err := os.MkdirTemp("", "firal-streaming")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ❶ Pack the pool into two shard files, block by block: a producer
	// (feature-extraction job, DINOv2 embedding pass, …) would do this
	// once; selection then re-reads the shards for every query. Only one
	// block is ever in memory here.
	rng := rnd.New(7)
	paths := []string{filepath.Join(dir, "pool-0.shard"), filepath.Join(dir, "pool-1.shard")}
	block := mat.NewDense(blockRows, d)
	row := 0
	for s, span := range [][2]int{{0, n / 3}, {n / 3, n}} {
		w, err := dataset.CreateShard(paths[s], d)
		if err != nil {
			log.Fatal(err)
		}
		for lo := span[0]; lo < span[1]; lo += blockRows {
			hi := min(lo+blockRows, span[1])
			b := block.RowSlice(0, hi-lo)
			for i := 0; i < b.Rows; i++ {
				rng.Normal(b.Row(i), float64((row+i)%classes), 1) // crude class structure
			}
			row += b.Rows
			if err := w.AppendBlock(b); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// ❷ Memory-map the shards back. ReadRows decodes float32 → float64 on
	// demand; the kernel pages the file lazily, so the pool may exceed RAM.
	src, err := dataset.OpenShards(paths...)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	fmt.Printf("pool: %d × %d across %d shards\n", src.NumRows(), src.Dim(), len(paths))

	// ❸ Train a small classifier on a labeled seed set, then attach
	// reduced probabilities to the pool in one streamed pass. The n×(c−1)
	// probability matrix is the only resident per-point state.
	labX := mat.NewDense(4*classes, d)
	labY := make([]int, labX.Rows)
	for i := range labY {
		labY[i] = i % classes
		rng.Normal(labX.Row(i), float64(labY[i]), 1)
	}
	model, err := logreg.Train(labX, labY, classes, nil, logreg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	reduced := mat.NewDense(n, classes-1)
	for lo := 0; lo < n; lo += blockRows {
		hi := min(lo+blockRows, n)
		xb := block.RowSlice(0, hi-lo)
		if err := src.ReadRows(lo, hi, xb); err != nil {
			log.Fatal(err)
		}
		probs := softmax.Probabilities(nil, xb, model.Theta)
		for i := lo; i < hi; i++ {
			copy(reduced.Row(i), probs.Row(i - lo)[:classes-1])
		}
	}

	// ❹ Select through the block-streaming solver path. hessian.NewStream
	// implements the same Pool contract as a resident set, so RELAX and
	// ROUND run unchanged — their kernels just iterate shard blocks.
	// dataset.WithPrefetch decodes block k+1 asynchronously while the
	// kernels chew block k; selections are bit-identical with or without
	// it (this demo pool fits one block, so the hook returns src as-is).
	labeled := hessian.NewSet(labX, hessian.ReduceProbs(softmax.Probabilities(nil, labX, model.Theta)))
	swept := dataset.WithPrefetch(context.Background(), src, blockRows)
	defer swept.Close()
	pool := hessian.NewStream(swept, reduced, blockRows)
	problem := firal.NewProblem(labeled, pool)
	res, err := firal.SelectApprox(context.Background(), problem, budget, firal.Options{
		Relax: firal.RelaxOptions{Seed: 1, MaxIter: 20}, // capped so the demo stays snappy
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d pool rows for labeling: %v\n", len(res.Selected), res.Selected)
	fmt.Printf("RELAX: %d mirror-descent iterations, %d CG iterations total\n",
		res.Relax.Iterations, res.Relax.CGIterations)
}
