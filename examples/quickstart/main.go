// Quickstart: run Approx-FIRAL active learning end to end on a small
// CIFAR-10-like synthetic embedding and watch accuracy grow per round.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	firal "repro"
)

func main() {
	// A Table V benchmark at 10% of the paper's pool/eval size, so this
	// runs in seconds on a laptop.
	bench := firal.CIFAR10Like().Scale(0.1)
	cfg := bench.Generate(42)

	learner, err := firal.NewLearner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset=%s classes=%d dim=%d pool=%d initial labels=%d\n",
		bench.Name, bench.Classes, bench.Dim, len(cfg.PoolX), len(cfg.LabeledX))

	selector := firal.ApproxFIRAL(firal.FIRALOptions{}) // paper defaults: s=10, cgtol=0.1
	reports, err := learner.Run(selector, bench.Rounds, bench.Budget)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("round %d: labels=%-3d pool acc=%.3f eval acc=%.3f (select %.2fs, train %.2fs)\n",
			r.Round, r.LabeledCount, r.PoolAccuracy, r.EvalAccuracy,
			r.SelectSeconds, r.TrainSeconds)
	}
}
