// Quickstart: run Approx-FIRAL active learning end to end on a small
// CIFAR-10-like synthetic embedding and watch accuracy grow per round.
// The session API used here is registry + options + observer: the
// strategy comes from the selector registry by name, the schedule from
// functional run options, and each round's report streams through a
// RoundObserver the moment the round finishes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	firal "repro"
)

func main() {
	// A Table V benchmark at 10% of the paper's pool/eval size, so this
	// runs in seconds on a laptop.
	bench := firal.CIFAR10Like().Scale(0.1)
	cfg := bench.Generate(42)

	learner, err := firal.NewLearner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset=%s classes=%d dim=%d pool=%d initial labels=%d\n",
		bench.Name, bench.Classes, bench.Dim, len(cfg.PoolX), len(cfg.LabeledX))

	// Paper defaults: s=10, cgtol=0.1. Any name from firal.Names() works.
	selector, err := firal.New("approx-firal", firal.SelectorOptions{})
	if err != nil {
		log.Fatal(err)
	}

	_, err = learner.RunContext(context.Background(), selector,
		firal.WithRounds(bench.Rounds),
		firal.WithBudget(bench.Budget),
		firal.WithObserver(func(r *firal.RoundReport) {
			fmt.Printf("round %d: labels=%-3d pool acc=%.3f eval acc=%.3f (select %.2fs, train %.2fs)\n",
				r.Round, r.LabeledCount, r.PoolAccuracy, r.EvalAccuracy,
				r.SelectSeconds, r.TrainSeconds)
		}),
		// Don't keep labeling once the model is already this good.
		firal.WithStopCriterion(firal.TargetAccuracy(0.99)),
	)
	if err != nil {
		log.Fatal(err)
	}
}
