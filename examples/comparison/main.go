// Comparison: run all five selection strategies of the paper's § IV-A on
// the same dataset and print the accuracy table — a miniature Fig. 2.
// Strategies are resolved by name through the selector registry.
//
//	go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"

	firal "repro"
)

func main() {
	bench := firal.MNISTLike().Scale(0.1)
	opts := firal.SelectorOptions{FIRAL: firal.FIRALOptions{Probes: 10, CGTol: 0.1}}
	names := []string{"Random", "K-Means", "Entropy", "Exact-FIRAL", "Approx-FIRAL"}

	fmt.Printf("%-14s", "selector")
	cfgProbe := bench.Generate(7)
	labels := len(cfgProbe.LabeledX)
	for r := 0; r < bench.Rounds; r++ {
		labels += bench.Budget
		fmt.Printf("  acc@%-4d", labels)
	}
	fmt.Println()

	for _, name := range names {
		sel, err := firal.New(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		// Every selector sees the identical dataset realization.
		cfg := bench.Generate(7)
		learner, err := firal.NewLearner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Config.Rounds/Budget carry the bench schedule, so the session
		// needs no explicit WithRounds/WithBudget.
		reports, err := learner.RunContext(context.Background(), sel)
		if err != nil {
			log.Fatalf("%s: %v", sel.Name(), err)
		}
		fmt.Printf("%-14s", sel.Name())
		for _, r := range reports {
			fmt.Printf("  %8.3f", r.EvalAccuracy)
		}
		fmt.Println()
	}
}
