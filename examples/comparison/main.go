// Comparison: run all five selection strategies of the paper's § IV-A on
// the same dataset and print the accuracy table — a miniature Fig. 2.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	firal "repro"
)

func main() {
	bench := firal.MNISTLike().Scale(0.1)
	opts := firal.FIRALOptions{Probes: 10, CGTol: 0.1}
	selectors := []firal.Selector{
		firal.Random(),
		firal.KMeans(),
		firal.Entropy(),
		firal.ExactFIRAL(opts),
		firal.ApproxFIRAL(opts),
	}

	fmt.Printf("%-14s", "selector")
	cfgProbe := bench.Generate(7)
	labels := len(cfgProbe.LabeledX)
	for r := 0; r < bench.Rounds; r++ {
		labels += bench.Budget
		fmt.Printf("  acc@%-4d", labels)
	}
	fmt.Println()

	for _, sel := range selectors {
		// Every selector sees the identical dataset realization.
		cfg := bench.Generate(7)
		learner, err := firal.NewLearner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reports, err := learner.Run(sel, bench.Rounds, bench.Budget)
		if err != nil {
			log.Fatalf("%s: %v", sel.Name(), err)
		}
		fmt.Printf("%-14s", sel.Name())
		for _, r := range reports {
			fmt.Printf("  %8.3f", r.EvalAccuracy)
		}
		fmt.Println()
	}
}
