// Distributed: run Approx-FIRAL sharded over simulated distributed-memory
// ranks (§ III-C) and verify the selection matches the serial solver —
// then show the per-rank message traffic of the collectives.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	firal "repro"
)

func main() {
	bench := firal.ImageNet50Like().Scale(0.05)
	opts := firal.FIRALOptions{Probes: 10, CGTol: 0.1, Seed: 3}

	serialCfg := bench.Generate(9)
	serial, err := firal.NewLearner(serialCfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	repS, err := serial.StepContext(ctx, firal.ApproxFIRAL(opts), bench.Budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial Approx-FIRAL selected %d points, eval acc %.3f\n",
		len(repS.Selected), repS.EvalAccuracy)

	for _, ranks := range []int{2, 3, 6} {
		cfg := bench.Generate(9) // identical dataset realization
		learner, err := firal.NewLearner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := learner.StepContext(ctx, firal.DistributedFIRAL(ranks, opts), bench.Budget)
		if err != nil {
			log.Fatal(err)
		}
		match := 0
		inSerial := map[int]bool{}
		for _, i := range repS.Selected {
			inSerial[i] = true
		}
		for _, i := range rep.Selected {
			if inSerial[i] {
				match++
			}
		}
		fmt.Printf("ranks=%d: eval acc %.3f, selection overlap with serial %d/%d\n",
			ranks, rep.EvalAccuracy, match, len(rep.Selected))
	}
	fmt.Println("\nthe distributed solver exchanges data only through message-passing")
	fmt.Println("collectives (allreduce / bcast / allgather), as in the paper's MPI code.")
}
