// Distributed: run Approx-FIRAL sharded over distributed-memory ranks
// (§ III-C) three ways — simulated in-process ranks through the
// high-level learner, then the same solver over real TCP sockets on
// localhost (the transport cmd/firal uses between machines), verifying
// the socket run selects bit-for-bit what the in-process run selects —
// and finally the multi-process walkthrough: three firal processes, one
// killed mid-run, survivors recovering.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	firal "repro"
	"repro/internal/distfiral"
	ifiral "repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/rnd"
	"repro/internal/softmax"
)

func main() {
	learnerComparison()
	tcpBitIdentity()
	walkthrough()
}

// learnerComparison drives the registry-level Dist-FIRAL selector over
// simulated ranks and compares its selection with the serial solver.
func learnerComparison() {
	bench := firal.ImageNet50Like().Scale(0.05)
	opts := firal.FIRALOptions{Probes: 10, CGTol: 0.1, Seed: 3}

	serialCfg := bench.Generate(9)
	serial, err := firal.NewLearner(serialCfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	repS, err := serial.StepContext(ctx, firal.ApproxFIRAL(opts), bench.Budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial Approx-FIRAL selected %d points, eval acc %.3f\n",
		len(repS.Selected), repS.EvalAccuracy)

	for _, ranks := range []int{2, 3, 6} {
		cfg := bench.Generate(9) // identical dataset realization
		learner, err := firal.NewLearner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := learner.StepContext(ctx, firal.DistributedFIRAL(ranks, opts), bench.Budget)
		if err != nil {
			log.Fatal(err)
		}
		match := 0
		inSerial := map[int]bool{}
		for _, i := range repS.Selected {
			inSerial[i] = true
		}
		for _, i := range rep.Selected {
			if inSerial[i] {
				match++
			}
		}
		fmt.Printf("ranks=%d: eval acc %.3f, selection overlap with serial %d/%d\n",
			ranks, rep.EvalAccuracy, match, len(rep.Selected))
	}
}

// exampleSets builds a small labeled set and pool with class structure
// (reduced probabilities, as the FIRAL solvers require).
func exampleSets(seed int64, nLabeled, nPool, d, c int) (*hessian.Set, *hessian.Set) {
	rng := rnd.New(seed)
	means := mat.NewDense(c, d)
	for k := 0; k < c; k++ {
		rng.UnitVector(means.Row(k))
		mat.Scal(2, means.Row(k))
	}
	sample := func(n int) *mat.Dense {
		x := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			rng.Normal(x.Row(i), 0, 0.4)
			mat.Axpy(1, means.Row(i%c), x.Row(i))
		}
		return x
	}
	theta := means.T()
	xo, xu := sample(nLabeled), sample(nPool)
	ho := hessian.ReduceProbs(softmax.Probabilities(nil, xo, theta))
	hu := hessian.ReduceProbs(softmax.Probabilities(nil, xu, theta))
	return hessian.NewSet(xo, ho), hessian.NewSet(xu, hu)
}

// tcpBitIdentity runs the same distributed Select over the in-process
// mailbox transport and over real length-prefixed TCP on localhost —
// rank 0 listens, ranks 1 and 2 dial — and checks the selections match
// bit for bit. Between machines the only change is the address.
func tcpBitIdentity() {
	const p, b = 3, 5
	labeled, pool := exampleSets(21, 12, 90, 6, 3)
	opts := ifiral.RelaxOptions{FixedIterations: 12, Probes: 6, CGTol: 0.05, Seed: 4}
	ctx := context.Background()

	run := func(ts []mpi.Transport) []int {
		var sel []int
		mpi.RunTransports(ts, func(c *mpi.Comm) {
			c.SetChunk(64) // pipelined allreduce; bit-identical either way
			sh := distfiral.MakeShard(labeled, pool, c.Size(), c.Rank())
			s, _, _, err := distfiral.Select(ctx, c, sh, b, 0, opts)
			if err != nil {
				log.Fatalf("rank %d: %v", c.Rank(), err)
			}
			if c.Rank() == 0 {
				sel = s
			}
		})
		return sel
	}

	inproc := run(mpi.NewLocalWorld(p))

	rz, err := mpi.ListenTCP("127.0.0.1:0", p)
	if err != nil {
		log.Fatal(err)
	}
	addr := rz.Addr()
	bctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	ts := make([]mpi.Transport, p)
	errc := make(chan error, p-1)
	for r := 1; r < p; r++ {
		go func(r int) {
			t, err := mpi.DialTCP(bctx, addr, r, p)
			ts[r] = t
			errc <- err
		}(r)
	}
	if ts[0], err = rz.Accept(bctx); err != nil {
		log.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
	}
	overTCP := run(ts)
	for _, t := range ts {
		t.Close()
	}

	fmt.Printf("\nTCP rendezvous at %s:\n  in-process selection %v\n  socket     selection %v\n",
		addr, inproc, overTCP)
	if len(inproc) != len(overTCP) {
		log.Fatal("transport changed the selection size")
	}
	for i := range inproc {
		if inproc[i] != overTCP[i] {
			log.Fatal("transport changed the selection — contract violated")
		}
	}
	fmt.Println("bit-identical selection over mailbox and TCP transports ✓")
}

// walkthrough prints the real multi-process recipe: the same binary on
// three machines (or shells), and what happens when one dies.
func walkthrough() {
	fmt.Println(`
multi-process walkthrough (three shells; between machines replace
127.0.0.1 with rank 0's hostname):

  # rank 0 listens on the rendezvous port; ranks 1 and 2 dial it
  firal -shards pool.shard -labeled seed.csv -select dist-firal \
        -transport tcp -peers 127.0.0.1:9907 -ranks 3 -rank 0 -budget 10 -op-timeout 5s
  firal ... -rank 1 ...   # identical flags except -rank
  firal ... -rank 2 ...

All three print the same selection — bit-identical to a single-process
run over the same shards (-select dist-firal without -transport).

Fault recovery: give one rank -kill-after N (it exits mid-RELAX after N
collectives; a stand-in for a real crash). With -op-timeout set, the
survivors time out on the dead rank, agree on who is gone, re-shard the
pool across the remaining ranks, and resume the interrupted iteration
from the last checkpoint:

  firal ... -rank 2 -kill-after 40 ...

The two survivors log the lost rank and finish with the full budget —
selecting exactly what a fresh 2-rank run resumed from that checkpoint
would. scripts/dist_smoke.sh automates this end to end in CI.`)
}
