// Imbalanced: the paper's key robustness result (Fig. 2 (H) and (J)) — on
// class-imbalanced pools, density-following selectors (Random, Entropy)
// under-sample minority classes, while FIRAL's Fisher-information
// objective keeps selecting them. This example runs the imb-CIFAR-10-like
// benchmark (10:1 pool imbalance) and reports both the final accuracy and
// how many selections came from the five smallest classes. Selectors are
// resolved by registry name; the per-round selections are consumed
// through a streaming RoundObserver rather than the returned slice.
//
//	go run ./examples/imbalanced
package main

import (
	"context"
	"fmt"
	"log"

	firal "repro"
)

const trials = 4

type outcome struct {
	acc      float64 // final eval accuracy, mean over trials
	minority int     // selections drawn from the 5 smallest classes
	total    int
}

func run(bench firal.Synthetic, name string) outcome {
	var out outcome
	for s := int64(0); s < trials; s++ {
		cfg := bench.Generate(300 + s)
		counts := make([]int, bench.Classes)
		for _, y := range cfg.PoolY {
			counts[y]++
		}
		// The geometric imbalance profile puts the five smallest classes
		// well under the mean size.
		mean := len(cfg.PoolY) / bench.Classes
		small := make(map[int]bool)
		for k, c := range counts {
			small[k] = c < mean*2/3
		}
		learner, err := firal.NewLearner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := firal.New(name, firal.SelectorOptions{})
		if err != nil {
			log.Fatal(err)
		}
		reports, err := learner.RunContext(context.Background(), sel,
			firal.WithRounds(bench.Rounds),
			firal.WithBudget(bench.Budget),
			firal.WithObserver(func(r *firal.RoundReport) {
				for _, i := range r.Selected {
					out.total++
					if small[cfg.PoolY[i]] {
						out.minority++
					}
				}
			}),
		)
		if err != nil {
			log.Fatal(err)
		}
		out.acc += reports[len(reports)-1].EvalAccuracy / trials
	}
	return out
}

func main() {
	bench := firal.ImbCIFAR10Like().Scale(0.1)
	fmt.Printf("imb-CIFAR-10-like pool (%d points, 10:1 class imbalance), %d trials\n\n",
		bench.PoolSize, trials)
	fmt.Printf("%-14s  %-10s  %s\n", "selector", "eval acc", "minority-class selections")
	for _, name := range []string{"Random", "Entropy", "Approx-FIRAL"} {
		out := run(bench, name)
		fmt.Printf("%-14s  %-10.3f  %d/%d\n", name, out.acc, out.minority, out.total)
	}
	fmt.Println("\nexpected shape (paper Fig. 2 (H)): FIRAL selects minority classes at a")
	fmt.Println("higher rate than density-following baselines and ends with the best")
	fmt.Println("accuracy on the imbalanced pool.")
}
