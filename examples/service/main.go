// Service: drive the selection-as-a-service layer end to end. The
// walkthrough starts an in-process server (the same internal/server that
// cmd/firald wraps), then speaks to it exclusively over HTTP — creating a
// session from a packed shard pool, labeling pool rows by index, kicking
// off an asynchronous Approx-FIRAL round, polling its RELAX progress,
// fetching the selected indices, appending freshly crawled rows to the
// live pool, and running a second, warm-started round whose tombstones
// exclude everything already taken. Each step prints the
// equivalent curl command, so the transcript doubles as the API
// reference for a real firald deployment:
//
//	firald -data /var/lib/firal -addr :8080 &
//	go run ./examples/service            # the in-process variant below
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	const (
		n, d, classes = 5_000, 16, 4
		budget        = 8
	)
	dir, err := os.MkdirTemp("", "firal-service")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A pool shard, as produced by `firal -pack` (features only).
	ds := dataset.Generate(dataset.Config{
		Classes: classes, Dim: d, PoolSize: n, EvalSize: classes,
		InitPerClass: 2, Rounds: 1, Budget: budget,
	}, 1)
	shard := filepath.Join(dir, "pool.shard")
	w, err := dataset.CreateShard(shard, d)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AppendBlock(ds.PoolX); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// The service: cmd/firald does exactly this behind `-data`/-addr`.
	srv, err := server.New(server.Config{
		DataDir:     filepath.Join(dir, "data"),
		Concurrency: 2,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fmt.Printf("service up at %s (state in %s)\n\n", hs.URL, filepath.Join(dir, "data"))

	// 1. Create a session: pool by shard path, initial labeled seed set,
	// selector from the registry (aliases like "firal" resolve).
	labX := make([][]float64, ds.LabeledX.Rows)
	for i := range labX {
		labX[i] = ds.LabeledX.Row(i)
	}
	create := map[string]any{
		"shards":   []string{shard},
		"labeled":  map[string]any{"x": labX, "y": ds.LabeledY},
		"selector": "firal",
		"seed":     42,
		"workers":  2,
	}
	curl("POST", "/v1/sessions", `-d '{"shards":["pool.shard"],"labeled":{...},"selector":"firal"}'`)
	var sess struct {
		ID      string `json:"id"`
		Rows    int    `json:"rows"`
		Dim     int    `json:"dim"`
		Classes int    `json:"classes"`
	}
	post(hs.URL+"/v1/sessions", create, &sess)
	fmt.Printf("  → session %s: pool %d×%d, %d classes\n\n", sess.ID, sess.Rows, sess.Dim, sess.Classes)

	// 2. The labeling team looked at two pool rows: report them by index.
	// They become tombstones — still in the pool, never re-selected.
	curl("POST", "/v1/sessions/"+sess.ID+"/labels", `-d '{"pool":[{"index":17,"label":2},{"index":40,"label":0}]}'`)
	var labeled map[string]int
	post(hs.URL+"/v1/sessions/"+sess.ID+"/labels", map[string]any{
		"pool": []map[string]int{{"index": 17, "label": 2}, {"index": 40, "label": 0}},
	}, &labeled)
	fmt.Printf("  → %d labels on record\n\n", labeled["labeled"])

	// 3. Kick off an asynchronous round. 202 comes back immediately;
	// position 0 means a slot was free (a saturated server answers 429).
	curl("POST", "/v1/sessions/"+sess.ID+"/rounds", fmt.Sprintf(`-d '{"budget":%d}'`, budget))
	var kicked struct {
		Round         int    `json:"round"`
		Status        string `json:"status"`
		QueuePosition int    `json:"queue_position"`
	}
	post(hs.URL+"/v1/sessions/"+sess.ID+"/rounds", map[string]int{"budget": budget}, &kicked)
	fmt.Printf("  → round %d %s (queue position %d)\n\n", kicked.Round, kicked.Status, kicked.QueuePosition)

	// 4. Poll: a running round reports live RELAX progress; the state
	// behind it is checkpointed, so a crashed server resumes mid-solve.
	curl("GET", fmt.Sprintf("/v1/sessions/%s/rounds/%d", sess.ID, kicked.Round), "")
	var rv struct {
		Status          string `json:"status"`
		Error           string `json:"error"`
		Selected        []int  `json:"selected"`
		RelaxIteration  int    `json:"relax_iteration"`
		WorkersObserved int    `json:"workers_observed"`
	}
	for {
		get(hs.URL+fmt.Sprintf("/v1/sessions/%s/rounds/%d", sess.ID, kicked.Round), &rv)
		if rv.Status == "done" || rv.Status == "failed" {
			break
		}
		fmt.Printf("  … %s (relax iteration %d)\n", rv.Status, rv.RelaxIteration)
		time.Sleep(50 * time.Millisecond)
	}
	if rv.Status != "done" {
		log.Fatalf("round ended %s: %s", rv.Status, rv.Error)
	}
	fmt.Printf("  → done under %d scoped workers\n\n", rv.WorkersObserved)

	// 5. Fetch the selection: these are the global pool rows to label.
	curl("GET", fmt.Sprintf("/v1/sessions/%s/rounds/%d/selected", sess.ID, kicked.Round), "")
	var sel struct {
		Selected []int `json:"selected"`
	}
	get(hs.URL+fmt.Sprintf("/v1/sessions/%s/rounds/%d/selected", sess.ID, kicked.Round), &sel)
	fmt.Printf("  → label these rows next: %v\n\n", sel.Selected)

	// 6. The crawler found more unlabeled data: append it to the live
	// pool. Existing row indices stay stable (the selections above remain
	// valid), the new rows land behind them, and the next round scores the
	// grown pool. Appends are refused with 409 while a round is running —
	// a round's checkpoint assumes a fixed pool.
	ds2 := dataset.Generate(dataset.Config{
		Classes: classes, Dim: d, PoolSize: 1_000, EvalSize: classes,
		InitPerClass: 2, Rounds: 1, Budget: budget,
	}, 2)
	more := filepath.Join(dir, "more.shard")
	w2, err := dataset.CreateShard(more, d)
	if err != nil {
		log.Fatal(err)
	}
	if err := w2.AppendBlock(ds2.PoolX); err != nil {
		log.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		log.Fatal(err)
	}
	curl("POST", "/v1/sessions/"+sess.ID+"/pool", `-d '{"shards":["more.shard"]}'`)
	var grown struct {
		Rows       int   `json:"rows"`
		Generation int64 `json:"generation"`
	}
	post(hs.URL+"/v1/sessions/"+sess.ID+"/pool", map[string]any{"shards": []string{more}}, &grown)
	fmt.Printf("  → pool grown to %d rows (generation %d)\n\n", grown.Rows, grown.Generation)

	// 7. A second round excludes everything selected or index-labeled so
	// far and covers the appended rows. It is a delta round server-side:
	// mirror descent warm-starts from round 1's converged weights
	// (reprojected onto the grown simplex) and, with the labeled set
	// unchanged, only the appended rows go through the model for
	// probabilities.
	post(hs.URL+fmt.Sprintf("/v1/sessions/%s/rounds", sess.ID), map[string]int{"budget": budget}, &kicked)
	for {
		get(hs.URL+fmt.Sprintf("/v1/sessions/%s/rounds/%d", sess.ID, kicked.Round), &rv)
		if rv.Status == "done" || rv.Status == "failed" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("round 2 selected %v — disjoint from round 1 and the tombstones\n\n", rv.Selected)

	// 8. Done: delete the session (cancels any running round, removes the
	// session directory).
	curl("DELETE", "/v1/sessions/"+sess.ID, "")
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/sessions/"+sess.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  → %s\n", resp.Status)
}

// curl prints the equivalent command for a real firald deployment.
func curl(method, path, body string) {
	cmd := "curl"
	if method != "GET" {
		cmd += " -X " + method
	}
	if body != "" {
		cmd += " " + body
	}
	fmt.Printf("$ %s http://localhost:8080%s\n", cmd, path)
}

func post(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
