package firal_test

import (
	"context"
	"fmt"

	firal "repro"
)

// ExampleNew shows the selector registry: strategies are instantiated by
// case-insensitive name, and custom strategies Register themselves
// alongside the built-ins.
func ExampleNew() {
	sel, err := firal.New("approx-firal", firal.SelectorOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(sel.Name())

	// Unknown names report the registered alternatives.
	if _, err := firal.New("no-such-strategy", firal.SelectorOptions{}); err != nil {
		fmt.Println("unknown strategies are rejected")
	}
	// Output:
	// Approx-FIRAL
	// unknown strategies are rejected
}

// ExampleLearner_RunContext drives a tiny end-to-end session: a synthetic
// CIFAR-10-like instance, the Random baseline selector, and per-round
// reports streaming through an observer.
func ExampleLearner_RunContext() {
	cfg := firal.CIFAR10Like().Scale(0.01).Generate(42)
	learner, err := firal.NewLearner(cfg)
	if err != nil {
		panic(err)
	}
	sel, err := firal.New("random", firal.SelectorOptions{})
	if err != nil {
		panic(err)
	}
	reports, err := learner.RunContext(context.Background(), sel,
		firal.WithRounds(2), firal.WithBudget(5))
	if err != nil {
		panic(err)
	}
	for _, r := range reports {
		fmt.Printf("round %d: %d labels\n", r.Round, r.LabeledCount)
	}
	// Output:
	// round 1: 15 labels
	// round 2: 20 labels
}
